// Unit tests for polynomial evaluation and least-squares fitting.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/polynomial.hpp"

namespace ivory {
namespace {

TEST(Polynomial, HornerEvaluation) {
  const Polynomial p({1.0, -2.0, 3.0});  // 1 - 2x + 3x^2
  EXPECT_NEAR(p(0.0), 1.0, 1e-15);
  EXPECT_NEAR(p(1.0), 2.0, 1e-15);
  EXPECT_NEAR(p(-2.0), 17.0, 1e-15);
}

TEST(Polynomial, DefaultIsZero) {
  const Polynomial p;
  EXPECT_NEAR(p(123.0), 0.0, 1e-15);
}

TEST(Polynomial, Derivative) {
  const Polynomial p({5.0, 1.0, -4.0, 2.0});  // 5 + x - 4x^2 + 2x^3
  const Polynomial d = p.derivative();        // 1 - 8x + 6x^2
  EXPECT_NEAR(d(0.0), 1.0, 1e-15);
  EXPECT_NEAR(d(1.0), -1.0, 1e-15);
  EXPECT_EQ(d.degree(), 2u);
}

TEST(Polynomial, DerivativeOfConstantIsZero) {
  const Polynomial p({7.0});
  EXPECT_NEAR(p.derivative()(3.0), 0.0, 1e-15);
}

TEST(Polyfit, RecoversExactQuadratic) {
  const std::vector<double> xs{-2.0, -1.0, 0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(0.5 - 1.5 * x + 0.25 * x * x);
  const Polynomial p = polyfit(xs, ys, 2);
  EXPECT_NEAR(p.coeffs()[0], 0.5, 1e-9);
  EXPECT_NEAR(p.coeffs()[1], -1.5, 1e-9);
  EXPECT_NEAR(p.coeffs()[2], 0.25, 1e-9);
}

TEST(Polyfit, SmoothsNoisyLine) {
  // Symmetric noise about y = 2x: the fitted slope stays close to 2.
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(2.0 * x + ((i % 2 == 0) ? 0.1 : -0.1));
  }
  const Polynomial p = polyfit(xs, ys, 1);
  EXPECT_NEAR(p.coeffs()[1], 2.0, 5e-3);
}

TEST(Polyfit, TooFewPointsThrows) {
  EXPECT_THROW(polyfit({1.0, 2.0}, {1.0, 2.0}, 2), InvalidParameter);
}

TEST(Polyfit, MismatchedLengthsThrow) {
  EXPECT_THROW(polyfit({1.0, 2.0, 3.0}, {1.0, 2.0}, 1), InvalidParameter);
}

}  // namespace
}  // namespace ivory
