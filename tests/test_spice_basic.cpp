// Unit tests for waveforms, the netlist parser, and DC operating point.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "spice/spice.hpp"

namespace ivory::spice {
namespace {

// --- Waveforms -------------------------------------------------------------

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(3.3);
  EXPECT_NEAR(w(0.0), 3.3, 1e-15);
  EXPECT_NEAR(w(1e9), 3.3, 1e-15);
}

TEST(Waveform, PulseShape) {
  // 0->1 pulse: 1 ns rise, 3 ns width, 1 ns fall, 10 ns period, no delay.
  const Waveform w = Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 3e-9, 10e-9);
  EXPECT_NEAR(w(0.0), 0.0, 1e-12);
  EXPECT_NEAR(w(0.5e-9), 0.5, 1e-12);   // Mid-rise.
  EXPECT_NEAR(w(2e-9), 1.0, 1e-12);     // Flat top.
  EXPECT_NEAR(w(4.5e-9), 0.5, 1e-12);   // Mid-fall.
  EXPECT_NEAR(w(7e-9), 0.0, 1e-12);     // Off.
  EXPECT_NEAR(w(12e-9), 1.0, 1e-12);    // Periodic repeat.
}

TEST(Waveform, PulseDelayHoldsInitialValue) {
  const Waveform w = Waveform::pulse(1.0, 2.0, 5e-9, 0.0, 0.0, 2e-9, 10e-9);
  EXPECT_NEAR(w(1e-9), 1.0, 1e-12);
  EXPECT_NEAR(w(5.5e-9), 2.0, 1e-12);
}

TEST(Waveform, SineOffsetAmplitude) {
  const Waveform w = Waveform::sine(1.0, 0.5, 1e6);
  EXPECT_NEAR(w(0.0), 1.0, 1e-12);
  EXPECT_NEAR(w(0.25e-6), 1.5, 1e-9);  // Quarter period: peak.
}

TEST(Waveform, PwlClampsAndInterpolates) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1e-6, 2.0}});
  EXPECT_NEAR(w(0.5e-6), 1.0, 1e-12);
  EXPECT_NEAR(w(2e-6), 2.0, 1e-12);
}

TEST(Waveform, InvalidPulseThrows) {
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 5e-9, 5e-9, 5e-9, 10e-9), InvalidParameter);
}

// --- Value parsing ----------------------------------------------------------

TEST(Parser, SpiceValueSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("4.7k"), 4700.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("100meg"), 1e8);
  EXPECT_DOUBLE_EQ(parse_spice_value("1u"), 1e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2.2n"), 2.2e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("10p"), 1e-11);
  EXPECT_DOUBLE_EQ(parse_spice_value("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("2G"), 2e9);
}

TEST(Parser, BadValueThrows) {
  EXPECT_THROW(parse_spice_value("abc"), InvalidParameter);
  EXPECT_THROW(parse_spice_value("1x"), InvalidParameter);
}

TEST(Parser, ParsesDividerNetlist) {
  const Circuit c = parse_netlist(R"(
* simple divider
V1 in 0 DC 10
R1 in out 1k
R2 out 0 1k
.end
)");
  EXPECT_EQ(c.resistors().size(), 2u);
  EXPECT_EQ(c.vsources().size(), 1u);
  const DcResult op = dc_operating_point(c);
  EXPECT_NEAR(op.voltage(c.find_node("out")), 5.0, 1e-9);
}

TEST(Parser, ParsesIcClause) {
  const Circuit c = parse_netlist("V1 a 0 DC 1\nR1 a b 1k\nC1 b 0 1n IC=0.5\n");
  ASSERT_EQ(c.capacitors().size(), 1u);
  EXPECT_TRUE(c.capacitors()[0].use_ic);
  EXPECT_NEAR(c.capacitors()[0].v0, 0.5, 1e-15);
}

TEST(Parser, UnknownElementThrows) {
  EXPECT_THROW(parse_netlist("Q1 a b c 1k\n"), StructuralError);
}

TEST(Parser, ShortLineThrows) {
  EXPECT_THROW(parse_netlist("R1 a b\n"), StructuralError);
}

// --- Circuit construction ---------------------------------------------------

TEST(Circuit, NodeNamesAreStable) {
  Circuit c;
  const NodeId a = c.node("vin");
  EXPECT_EQ(c.node("vin"), a);
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node_name(a), "vin");
}

TEST(Circuit, SelfLoopElementThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_THROW(c.add_resistor("r", a, a, 1.0), InvalidParameter);
}

TEST(Circuit, NegativeValuesThrow) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_THROW(c.add_resistor("r", a, kGround, -1.0), InvalidParameter);
  EXPECT_THROW(c.add_capacitor("c", a, kGround, 0.0), InvalidParameter);
  EXPECT_THROW(c.add_inductor("l", a, kGround, -1e-9), InvalidParameter);
}

// --- DC operating point ------------------------------------------------------

TEST(DcOp, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId n = c.node("n");
  // 1 mA pulled from ground into n through the source (pos=gnd convention):
  // I flows gnd -> source -> n, raising v(n) = I * R.
  c.add_isource("i1", kGround, n, Waveform::dc(1e-3));
  c.add_resistor("r1", n, kGround, 2000.0);
  const DcResult op = dc_operating_point(c);
  EXPECT_NEAR(op.voltage(n), 2.0, 1e-9);
}

TEST(DcOp, InductorActsAsShort) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(5.0));
  c.add_inductor("l1", in, out, 1e-6);
  c.add_resistor("r1", out, kGround, 100.0);
  const DcResult op = dc_operating_point(c);
  EXPECT_NEAR(op.voltage(out), 5.0, 1e-9);
  ASSERT_EQ(op.inductor_i.size(), 1u);
  EXPECT_NEAR(op.inductor_i[0], 0.05, 1e-9);
}

TEST(DcOp, CapacitorActsAsOpen) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(3.0));
  c.add_resistor("r1", in, out, 1000.0);
  c.add_capacitor("c1", out, kGround, 1e-9);
  // A weak bleeder keeps the node from floating.
  c.add_resistor("r2", out, kGround, 1e9);
  const DcResult op = dc_operating_point(c);
  EXPECT_NEAR(op.voltage(out), 3.0, 1e-4);
}

TEST(DcOp, VSourceCurrentSign) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
  c.add_resistor("r1", in, kGround, 1.0);
  const DcResult op = dc_operating_point(c);
  // 1 A flows out of the + terminal through the resistor and back: SPICE
  // convention makes the source branch current (pos -> neg inside) negative.
  ASSERT_EQ(op.vsource_i.size(), 1u);
  EXPECT_NEAR(op.vsource_i[0], -1.0, 1e-9);
}

TEST(DcOp, TimeSwitchUsesStateAtZero) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
  c.add_switch("s1", in, out, 1.0, 1e9, [](double t) { return t >= 1e-6; });
  c.add_resistor("r1", out, kGround, 1000.0);
  const DcResult op = dc_operating_point(c);
  EXPECT_LT(op.voltage(out), 1e-3);  // Open at t = 0.
}

TEST(DcOp, VoltageControlledSwitchSettles) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(2.0));
  // Switch controlled by its own input: closes because v(in) > 1 V.
  c.add_vcswitch("s1", in, out, in, kGround, 1.0, 0.1, 1.0, 1e9);
  c.add_resistor("r1", out, kGround, 1000.0);
  const DcResult op = dc_operating_point(c);
  EXPECT_NEAR(op.voltage(out), 2.0, 5e-3);  // ron forms a divider with r1.
}

TEST(DcOp, EmptyCircuitThrows) {
  Circuit c;
  EXPECT_THROW(dc_operating_point(c), InvalidParameter);
}

}  // namespace
}  // namespace ivory::spice
