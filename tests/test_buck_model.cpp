// Tests for the buck static model: duty, ripple, interleaving, losses,
// frequency-dependent inductance.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/buck_model.hpp"

namespace ivory::core {
namespace {

// A FIVR-class 4-phase buck: 5 nH interposer inductors at 100 MHz.
BuckDesign reference_design() {
  BuckDesign d;
  d.node = tech::Node::n32;
  d.inductor = tech::InductorKind::IntegratedInterposer;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.l_per_phase_h = 5e-9;
  d.f_sw_hz = 100e6;
  d.n_phases = 4;
  d.w_high_m = 0.08;
  d.w_low_m = 0.10;
  d.c_out_f = 1e-6;
  return d;
}

TEST(BuckModel, DutyNearIdealRatio) {
  const BuckAnalysis a = analyze_buck(reference_design(), 3.3, 1.0, 10.0);
  EXPECT_NEAR(a.duty, 1.0 / 3.3, 0.05);
  EXPECT_GT(a.duty, 1.0 / 3.3);  // Conduction drops push duty slightly up.
}

TEST(BuckModel, PowerBookkeepingCloses) {
  const BuckAnalysis a = analyze_buck(reference_design(), 3.3, 1.0, 10.0);
  const double losses = a.p_conduction_w + a.p_gate_w + a.p_overlap_w + a.p_coss_w +
                        a.p_deadtime_w + a.p_peripheral_w;
  EXPECT_NEAR(a.p_in_w, a.p_out_w + losses, 1e-9 * a.p_in_w);
  EXPECT_GT(a.efficiency, 0.5);
  EXPECT_LT(a.efficiency, 1.0);
}

TEST(BuckModel, EfficiencyVsFrequencyHasInteriorPeak) {
  BuckDesign d = reference_design();
  double eff_first = 0.0, eff_last = 0.0, best = 0.0;
  bool first = true;
  for (double f = 2e6; f <= 2e9; f *= 1.5) {
    d.f_sw_hz = f;
    const double eff = analyze_buck(d, 3.3, 1.0, 10.0).efficiency;
    if (first) {
      eff_first = eff;
      first = false;
    }
    eff_last = eff;
    best = std::max(best, eff);
  }
  EXPECT_GT(best, eff_first);
  EXPECT_GT(best, eff_last);
}

TEST(BuckModel, RippleCurrentScalesInverselyWithLandF) {
  BuckDesign d = reference_design();
  const BuckAnalysis a1 = analyze_buck(d, 3.3, 1.0, 10.0);
  d.f_sw_hz *= 2.0;
  const BuckAnalysis a2 = analyze_buck(d, 3.3, 1.0, 10.0);
  // Doubling f at least halves the current ripple (inductance rolloff can
  // only make the baseline ripple larger, not smaller).
  EXPECT_LT(a2.i_ripple_phase_a, a1.i_ripple_phase_a / 1.6);
}

TEST(BuckModel, InterleavingCancellation) {
  EXPECT_NEAR(interleave_cancellation(1, 0.3), 1.0, 1e-12);
  // N*D integer: perfect cancellation.
  EXPECT_NEAR(interleave_cancellation(2, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(interleave_cancellation(4, 0.25), 0.0, 1e-12);
  // Always within [0, 1].
  for (int n : {2, 3, 4, 8, 16}) {
    for (double duty : {0.1, 0.3, 0.33, 0.47, 0.7, 0.9}) {
      const double k = interleave_cancellation(n, duty);
      EXPECT_GE(k, 0.0);
      EXPECT_LE(k, 1.0);
    }
  }
  EXPECT_THROW(interleave_cancellation(0, 0.3), InvalidParameter);
  EXPECT_THROW(interleave_cancellation(2, 0.0), InvalidParameter);
}

TEST(BuckModel, MorePhasesReduceOutputRipple) {
  BuckDesign d = reference_design();
  d.n_phases = 1;
  const BuckAnalysis a1 = analyze_buck(d, 3.3, 1.0, 10.0);
  d.n_phases = 4;
  const BuckAnalysis a4 = analyze_buck(d, 3.3, 1.0, 10.0);
  EXPECT_LT(a4.ripple_pp_v, a1.ripple_pp_v);
}

TEST(BuckModel, InductanceRollsOffAtHighFrequency) {
  BuckDesign d = reference_design();
  d.f_sw_hz = 20e6;  // Below the interposer-inductor knee (50 MHz).
  const BuckAnalysis lo = analyze_buck(d, 3.3, 1.0, 10.0);
  EXPECT_NEAR(lo.l_eff_h, d.l_per_phase_h, 1e-15);
  d.f_sw_hz = 1e9;  // Well above the knee.
  const BuckAnalysis hi = analyze_buck(d, 3.3, 1.0, 10.0);
  EXPECT_LT(hi.l_eff_h, d.l_per_phase_h);
}

TEST(BuckModel, ConductionLossGrowsQuadratically) {
  const BuckDesign d = reference_design();
  const BuckAnalysis a1 = analyze_buck(d, 3.3, 1.0, 5.0);
  const BuckAnalysis a2 = analyze_buck(d, 3.3, 1.0, 10.0);
  // DC term dominates at these currents: ~4x conduction loss for 2x current.
  EXPECT_GT(a2.p_conduction_w, 3.0 * a1.p_conduction_w);
}

TEST(BuckModel, ShallowerConversionIsMoreEfficient) {
  const BuckDesign d = reference_design();
  const double eff_deep = analyze_buck(d, 3.3, 1.0, 10.0).efficiency;
  const double eff_shallow = analyze_buck(d, 1.8, 1.0, 10.0).efficiency;
  EXPECT_GT(eff_shallow, eff_deep);
}

TEST(BuckModel, OnDieInductorCountsAsDieArea) {
  BuckDesign d = reference_design();
  d.inductor = tech::InductorKind::MagneticFilm;
  const BuckAnalysis on_die = analyze_buck(d, 3.3, 1.0, 10.0);
  EXPECT_NEAR(on_die.area_offdie_m2, 0.0, 1e-18);
  d.inductor = tech::InductorKind::IntegratedInterposer;
  const BuckAnalysis off_die = analyze_buck(d, 3.3, 1.0, 10.0);
  EXPECT_GT(off_die.area_offdie_m2, 0.0);
  EXPECT_LT(off_die.area_die_m2, on_die.area_die_m2);
}

TEST(BuckModel, InvalidInputsThrow) {
  const BuckDesign good = reference_design();
  EXPECT_THROW(analyze_buck(good, 1.0, 1.0, 10.0), InvalidParameter);  // vout == vin.
  EXPECT_THROW(analyze_buck(good, 3.3, 1.0, 0.0), InvalidParameter);
  BuckDesign d = good;
  d.w_high_m = 0.0;
  EXPECT_THROW(analyze_buck(d, 3.3, 1.0, 10.0), InvalidParameter);
  d = good;
  d.c_out_f = 0.0;
  EXPECT_THROW(analyze_buck(d, 3.3, 1.0, 10.0), InvalidParameter);
  d = good;
  d.n_phases = 0;
  EXPECT_THROW(analyze_buck(d, 3.3, 1.0, 10.0), InvalidParameter);
}

}  // namespace
}  // namespace ivory::core
