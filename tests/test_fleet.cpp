// Supervised serve-fleet tests: multi-worker serving through the mux, a
// SIGKILLed worker mid-request answered with a structured retryable error
// (never a hang), restart-with-backoff recovery, the flap limit parking a
// crash-looper, and graceful drain finishing in-flight work. Workers are
// real `ivory serve --worker 1` processes (IVORY_CLI_BIN), so this is the
// same process tree `ivory serve --workers N` runs in production.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "serve/frame.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "serve/wave_codec.hpp"

namespace ivory::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

const std::string kFastRequest =
    R"({"op":"ldo_static","id":1,"vin":1.2,"vout":1.0,"iload":5})";

/// A transient long enough (~3.2M BE steps, ~0.7 s of solve on this class
/// of machine) to reliably straddle a SIGKILL or a drain issued a few
/// hundred milliseconds after submission.
const std::string kSlowRequest =
    R"({"op":"transient","id":2,"topology":"spice",)"
    R"("netlist":"vin in 0 DC 3.3\ns1 in fly 0.01 1e8 CLOCK(20meg 2 0.48 0)\n)"
    R"(s2 fly out 0.01 1e8 CLOCK(20meg 2 0.48 1)\ncfly fly 0 100n IC=1.65\n)"
    R"(cout out 0 100n IC=1.65\nrl out 0 3.3\n.end\n",)"
    R"("tstop":4e-4,"dt":1.25e-10,"method":"be","uic":true,"record":["out"]})";

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = (fs::temp_directory_path() / "ivory-fleet-XXXXXX").string();
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  SupervisorOptions base_options(int workers) const {
    SupervisorOptions o;
    o.socket_path = dir_ + "/sock";
    o.workers = workers;
    o.exe = IVORY_CLI_BIN;
    o.backoff_initial_ms = 50;
    o.health_interval_ms = 50;
    return o;
  }

  /// Healthy worker pids right now.
  static std::vector<pid_t> healthy_pids(const Supervisor& fleet) {
    std::vector<pid_t> pids;
    for (const WorkerStatus& w : fleet.stats().workers)
      if (w.state == "healthy" && w.pid > 0) pids.push_back(w.pid);
    return pids;
  }

  /// Polls until `pred()` holds or `deadline` elapses.
  template <typename Pred>
  static bool eventually(std::chrono::milliseconds deadline, Pred pred) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      if (pred()) return true;
      std::this_thread::sleep_for(20ms);
    }
    return pred();
  }

  /// One request/response round-trip on a fresh connection; empty string
  /// when the fleet refuses or drops the connection.
  static std::string round_trip(const std::string& socket, const std::string& req) {
    try {
      BlockingClient client(socket);
      client.send_line(req);
      return client.recv_line();
    } catch (const std::exception&) {
      return {};
    }
  }

  std::string dir_;
};

TEST_F(FleetTest, ServesAcrossWorkersWithOrderedResponses) {
  Supervisor fleet(base_options(2));
  fleet.start();
  // Several connections so round-robin pins work to both workers.
  for (int c = 0; c < 4; ++c) {
    BlockingClient client(fleet.socket_path());
    for (int i = 0; i < 3; ++i) {
      client.send_line(kFastRequest);
      const std::string resp = client.recv_line();
      EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
    }
  }
  const FleetStats s = fleet.stats();
  EXPECT_EQ(s.workers.size(), 2u);
  EXPECT_EQ(s.connections, 4u);
  EXPECT_EQ(s.retry_errors, 0u);
  EXPECT_EQ(healthy_pids(fleet).size(), 2u);
  fleet.stop();
}

TEST_F(FleetTest, RetryableErrorLineIsStructuredAndMarkedRetryable) {
  const std::string line = Supervisor::retryable_error_line();
  const json::Value v = json::Value::parse(line);
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("error")->find("code")->as_string(), "worker_unavailable");
  EXPECT_TRUE(v.find("error")->find("retryable")->as_bool());
}

TEST_F(FleetTest, KilledWorkerMidRequestYieldsRetryableErrorThenRecovers) {
  Supervisor fleet(base_options(2));
  fleet.start();

  BlockingClient client(fleet.socket_path());
  client.send_line(kSlowRequest);
  std::this_thread::sleep_for(250ms);  // let the worker get deep into the solve

  // SIGKILL every healthy worker: whichever one held the request dies with
  // it in flight. This is the crash the mux must convert into a structured
  // retryable error rather than a hang or a dropped connection.
  std::vector<pid_t> pids = healthy_pids(fleet);
  ASSERT_FALSE(pids.empty());
  for (const pid_t pid : pids) ::kill(pid, SIGKILL);

  const std::string resp = client.recv_line();
  const json::Value v = json::Value::parse(resp);
  ASSERT_FALSE(v.find("ok")->as_bool()) << resp;
  EXPECT_EQ(v.find("error")->find("code")->as_string(), "worker_unavailable");
  EXPECT_TRUE(v.find("error")->find("retryable")->as_bool());
  EXPECT_GE(fleet.stats().retry_errors, 1u);

  // The monitor restarts the dead workers; the same client contract then
  // succeeds on a fresh connection (exactly what "retryable" promises).
  ASSERT_TRUE(eventually(15000ms, [&] {
    return round_trip(fleet.socket_path(), kFastRequest).find("\"ok\":true") !=
           std::string::npos;
  }));
  std::uint64_t restarts = 0;
  for (const WorkerStatus& w : fleet.stats().workers) restarts += w.restarts;
  EXPECT_GE(restarts, 1u);
  fleet.stop();
}

TEST_F(FleetTest, KilledWorkerMidStreamYieldsRetryableErrorFrame) {
  Supervisor fleet(base_options(1));
  fleet.start();

  // The slow solve as a wave1 stream with small chunks: frames start flowing
  // within milliseconds, so a SIGKILL after the first CHUNK provably lands
  // mid-stream — the case the mux must terminate with an ERROR frame (a bare
  // JSON line here would corrupt the client's frame parser).
  json::Value req = json::Value::parse(kSlowRequest);
  req.set("return_waveform", json::Value(true));
  req.set("stream", json::Value(true));
  req.set("encoding", json::Value(std::string("wave1")));
  req.set("chunk_bytes", json::Value(std::uint64_t{1024}));

  BlockingClient client(fleet.socket_path());
  client.send_line(req.write());

  FrameDecoder dec;
  StreamAssembler out;
  bool killed = false;
  char buf[4096];
  while (!out.done()) {
    const std::size_t n = client.recv_raw(buf, sizeof buf);
    ASSERT_GT(n, 0u) << "connection closed without a terminal frame";
    dec.feed(std::string_view(buf, n));
    while (!out.done()) {
      const std::optional<Frame> f = dec.next();
      if (!f) break;
      out.on_frame(*f);
      if (!killed && f->type == FrameType::Chunk) {
        const std::vector<pid_t> pids = healthy_pids(fleet);
        ASSERT_FALSE(pids.empty());
        for (const pid_t pid : pids) ::kill(pid, SIGKILL);
        killed = true;
      }
    }
  }
  ASSERT_TRUE(killed);
  EXPECT_EQ(out.status(), "error");
  EXPECT_EQ(out.decoded(), Supervisor::retryable_error_line());
  EXPECT_GE(fleet.stats().retry_errors, 1u);

  // The monitor restarts the worker and the same contract succeeds again.
  ASSERT_TRUE(eventually(15000ms, [&] {
    return round_trip(fleet.socket_path(), kFastRequest).find("\"ok\":true") !=
           std::string::npos;
  }));
  fleet.stop();
}

TEST_F(FleetTest, FlapLimitParksACrashLoopingWorker) {
  SupervisorOptions o = base_options(2);
  o.flap_limit = 3;
  o.flap_reset_ms = 60000;  // nothing clears the streak within this test
  Supervisor fleet(o);
  fleet.start();

  // Keep killing worker 0's replacement as soon as it comes back. After
  // flap_limit consecutive deaths the supervisor parks it as failed instead
  // of burning CPU in a crash loop.
  pid_t target = fleet.stats().workers[0].pid;
  ASSERT_GT(target, 0);
  for (int round = 0; round < 3; ++round) {
    ::kill(target, SIGKILL);
    const pid_t dead = target;
    ASSERT_TRUE(eventually(15000ms, [&] {
      const WorkerStatus w = fleet.stats().workers[0];
      if (w.state == "failed") return true;
      if (w.state == "healthy" && w.pid != dead) {
        target = w.pid;
        return true;
      }
      return false;
    }));
    if (fleet.stats().workers[0].state == "failed") break;
  }
  ASSERT_TRUE(eventually(15000ms,
                         [&] { return fleet.stats().workers[0].state == "failed"; }));

  // The surviving worker keeps the fleet serving.
  const std::string resp = round_trip(fleet.socket_path(), kFastRequest);
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  fleet.stop();
}

TEST_F(FleetTest, GracefulDrainFinishesInFlightRequests) {
  Supervisor fleet(base_options(2));
  fleet.start();

  BlockingClient client(fleet.socket_path());
  client.send_line(kSlowRequest);
  std::this_thread::sleep_for(200ms);  // request is mid-solve when drain begins

  std::thread drainer([&] { fleet.stop(); });
  // The worker finishes the in-flight solve during the drain window, so the
  // client sees its real response, not a retryable error and not a hang.
  const std::string resp = client.recv_line();
  drainer.join();
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  EXPECT_FALSE(fleet.running());
}

TEST_F(FleetTest, StartFailsCleanlyWhenWorkersCannotComeUp) {
  SupervisorOptions o = base_options(1);
  o.exe = "/bin/false";  // exits immediately; the socket never accepts
  o.spawn_wait_ms = 500;
  Supervisor fleet(o);
  EXPECT_THROW(fleet.start(), std::exception);
  EXPECT_FALSE(fleet.running());
}

}  // namespace
}  // namespace ivory::serve
