// Tests for SC topology generators and the generic charge-multiplier solver,
// including cross-validation against switch-level simulation in ivory_spice.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/sc_model.hpp"
#include "core/sc_topology.hpp"
#include "spice/spice.hpp"

namespace ivory::core {
namespace {

// --- Hand-derived charge multipliers (Seeman & Sanders) ----------------------

TEST(ChargeVectors, SeriesParallel2to1) {
  const ScTopology t = series_parallel(2);
  ASSERT_EQ(t.caps.size(), 1u);
  ASSERT_EQ(t.switches.size(), 4u);
  const ChargeVectors cv = charge_vectors(t);
  EXPECT_NEAR(cv.a_cap[0], 0.5, 1e-9);
  for (double ar : cv.a_switch) EXPECT_NEAR(ar, 0.5, 1e-9);
  EXPECT_NEAR(cv.sum_ac(), 0.5, 1e-9);
  EXPECT_NEAR(cv.sum_ar(), 2.0, 1e-9);
  EXPECT_NEAR(cv.q_in, 0.5, 1e-9);  // Ideal conversion: q_in = m/n.
}

TEST(ChargeVectors, SeriesParallelGeneralN) {
  // n:1 series-parallel: each of the n-1 caps carries 1/n, sum a_c = (n-1)/n,
  // switches: 3n-2 of them, each carrying 1/n, sum a_r = (3n-2)/n.
  for (int n = 2; n <= 6; ++n) {
    const ScTopology t = series_parallel(n);
    EXPECT_EQ(t.caps.size(), static_cast<std::size_t>(n - 1));
    EXPECT_EQ(t.switches.size(), static_cast<std::size_t>(3 * n - 2));
    const ChargeVectors cv = charge_vectors(t);
    for (double ac : cv.a_cap) EXPECT_NEAR(ac, 1.0 / n, 1e-9) << "n=" << n;
    EXPECT_NEAR(cv.sum_ac(), (n - 1.0) / n, 1e-8) << "n=" << n;
    EXPECT_NEAR(cv.sum_ar(), (3.0 * n - 2.0) / n, 1e-8) << "n=" << n;
    EXPECT_NEAR(cv.q_in, 1.0 / n, 1e-9) << "n=" << n;
  }
}

TEST(ChargeVectors, Ladder2to1MatchesSeriesParallel) {
  // The 2:1 ladder is electrically the classic single-fly-cap doubler.
  const ScTopology t = ladder(2, 1);
  ASSERT_EQ(t.caps.size(), 1u);  // Output bypass excluded.
  const ChargeVectors cv = charge_vectors(t);
  EXPECT_NEAR(cv.a_cap[0], 0.5, 1e-9);
  EXPECT_NEAR(cv.sum_ar(), 2.0, 1e-9);
  EXPECT_NEAR(cv.q_in, 0.5, 1e-9);
}

TEST(ChargeVectors, LadderInputChargeMatchesRatio) {
  // Charge conservation pins q_in = m/n for ideal two-phase converters.
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{{3, 1}, {3, 2}, {4, 3}, {5, 2}}) {
    const ScTopology t = ladder(n, m);
    const ChargeVectors cv = charge_vectors(t);
    EXPECT_NEAR(cv.q_in, static_cast<double>(m) / n, 1e-8) << n << ":" << m;
    EXPECT_GT(cv.sum_ac(), 0.0);
    EXPECT_GT(cv.sum_ar(), 0.0);
  }
}

TEST(ChargeVectors, HigherStepDownCostsMoreCharge) {
  // Deeper conversion moves more charge per unit output: sum a_c grows with n.
  double prev = 0.0;
  for (int n = 2; n <= 6; ++n) {
    const double s = charge_vectors(series_parallel(n)).sum_ac();
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(ChargeVectors, MalformedTopologyThrows) {
  ScTopology t;  // No caps, no switches.
  EXPECT_THROW(charge_vectors(t), InvalidParameter);
  t.caps.push_back({3, 0, 0.5, false});
  t.node_count = 4;
  EXPECT_THROW(charge_vectors(t), InvalidParameter);  // Still no switches.
}

TEST(Topology, MakeTopologyPicksFamilies) {
  EXPECT_NE(make_topology(3, 1).name.find("series-parallel"), std::string::npos);
  EXPECT_NE(make_topology(3, 2).name.find("ladder"), std::string::npos);
  EXPECT_THROW(make_topology(1, 1), InvalidParameter);
  EXPECT_THROW(make_topology(3, 3), InvalidParameter);
}

// --- Node ratios and switch stress -------------------------------------------

TEST(NodeRatios, SeriesParallel2to1PhaseVoltages) {
  const ScTopology t = series_parallel(2);
  const NodeRatios nr = ideal_node_ratios(t);
  // Phase A: cap between Vin and Vout: pos node at 1.0, neg at 0.5.
  const ScCap& c = t.caps[0];
  EXPECT_NEAR(nr.phase_a[static_cast<std::size_t>(c.pos)], 1.0, 1e-6);
  EXPECT_NEAR(nr.phase_a[static_cast<std::size_t>(c.neg)], 0.5, 1e-6);
  // Phase B: cap across the output.
  EXPECT_NEAR(nr.phase_b[static_cast<std::size_t>(c.pos)], 0.5, 1e-6);
  EXPECT_NEAR(nr.phase_b[static_cast<std::size_t>(c.neg)], 0.0, 1e-6);
}

TEST(NodeRatios, SwitchStressBoundedByVin) {
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{{2, 1}, {3, 1}, {3, 2}, {4, 1}}) {
    const ScTopology t = make_topology(n, m);
    for (double s : switch_stress_ratios(t)) {
      EXPECT_GT(s, 0.0) << n << ":" << m;
      EXPECT_LE(s, 1.0 + 1e-9) << n << ":" << m;
    }
  }
}

TEST(NodeRatios, LadderSwitchStressIsOneRung) {
  // Every ladder switch blocks exactly one rung voltage Vin/n — the property
  // that lets ladder SC converters use core devices even from a high rail.
  const ScTopology t = ladder(3, 2);
  for (double s : switch_stress_ratios(t)) EXPECT_NEAR(s, 1.0 / 3.0, 1e-6);
}

// --- Cross-validation against the circuit simulator --------------------------

// Simulates the generated netlist under load and compares steady-state output
// voltage against the charge-multiplier prediction vout = (m/n)vin - I*Rout.
void validate_against_spice(int n, int m, double f_sw, double c_tot, double g_tot,
                            double i_load, double tol_mv, double c_out = 10e-9) {
  const ScTopology topo = make_topology(n, m);
  const ChargeVectors cv = charge_vectors(topo);

  const double vin = 3.3;
  spice::Circuit ckt;
  const ScNetlistResult nodes = build_sc_netlist(ckt, topo, cv, vin, c_tot, g_tot, f_sw, c_out);
  ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(i_load));

  spice::TranSpec spec;
  spec.tstop = 60.0 / f_sw;
  spec.dt = 1.0 / (f_sw * 200.0);
  spec.use_ic = true;
  spec.method = spice::Integrator::BackwardEuler;
  spec.record_nodes = {nodes.vout};
  const spice::TranResult res = spice::transient(ckt, spec);

  // Average the last 10 cycles.
  const std::vector<double>& v = res.at(nodes.vout);
  const double t_start = spec.tstop - 10.0 / f_sw;
  double acc = 0.0;
  int count = 0;
  for (std::size_t i = 0; i < res.time.size(); ++i) {
    if (res.time[i] < t_start) continue;
    acc += v[i];
    ++count;
  }
  ASSERT_GT(count, 0);
  const double v_sim = acc / count;

  const double rssl = cv.sum_ac() * cv.sum_ac() / (c_tot * f_sw);
  const double rfsl = cv.sum_ar() * cv.sum_ar() / (g_tot * 0.48);
  const double v_model = vin * topo.ideal_ratio() - i_load * std::hypot(rssl, rfsl);
  EXPECT_NEAR(v_sim, v_model, tol_mv * 1e-3)
      << n << ":" << m << " f=" << f_sw << " (sim " << v_sim << " vs model " << v_model << ")";
}

TEST(SpiceCrossCheck, SeriesParallel2to1SlowSwitchingLimit) {
  // SSL-dominated: small caps, strong switches. A stiff output decap keeps
  // the ripple small so the time-average isolates the SSL droop itself.
  validate_against_spice(2, 1, 5e6, 20e-9, 10.0, 0.05, 30.0, /*c_out=*/300e-9);
}

TEST(SpiceCrossCheck, SeriesParallel2to1FastSwitchingLimit) {
  // FSL-dominated: big caps, weak switches.
  validate_against_spice(2, 1, 50e6, 200e-9, 0.5, 0.05, 30.0);
}

TEST(SpiceCrossCheck, SeriesParallel3to1) {
  validate_against_spice(3, 1, 10e6, 40e-9, 8.0, 0.04, 40.0);
}

TEST(SpiceCrossCheck, Ladder3to2) {
  validate_against_spice(3, 2, 10e6, 60e-9, 8.0, 0.05, 40.0);
}

TEST(SpiceCrossCheck, OutputTracksConversionRatio) {
  // Unloaded (tiny load), the output settles at (m/n) vin for every family.
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{{2, 1}, {3, 1}, {3, 2}}) {
    const ScTopology topo = make_topology(n, m);
    const ChargeVectors cv = charge_vectors(topo);
    spice::Circuit ckt;
    const ScNetlistResult nodes =
        build_sc_netlist(ckt, topo, cv, 3.0, 50e-9, 5.0, 20e6, 5e-9);
    ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(1e-4));
    spice::TranSpec spec;
    spec.tstop = 30.0 / 20e6;
    spec.dt = 1.0 / (20e6 * 200.0);
    spec.use_ic = true;
    spec.method = spice::Integrator::BackwardEuler;
    spec.record_nodes = {nodes.vout};
    const spice::TranResult res = spice::transient(ckt, spec);
    EXPECT_NEAR(res.at(nodes.vout).back(), 3.0 * m / n, 0.02) << n << ":" << m;
  }
}


// --- Dickson family -----------------------------------------------------------

TEST(ChargeVectors, DicksonMatchesSeriesParallelMetrics) {
  // Known result: Dickson and series-parallel n:1 share the optimized SSL
  // and FSL metrics; they differ in capacitor voltage ratings.
  for (int n = 2; n <= 5; ++n) {
    const ChargeVectors dk = charge_vectors(dickson(n));
    const ChargeVectors sp = charge_vectors(series_parallel(n));
    EXPECT_NEAR(dk.sum_ac(), sp.sum_ac(), 1e-8) << "n=" << n;
    EXPECT_NEAR(dk.sum_ar(), sp.sum_ar(), 1e-8) << "n=" << n;
    EXPECT_NEAR(dk.q_in, 1.0 / n, 1e-8) << "n=" << n;
  }
}

TEST(ChargeVectors, DicksonCapsAreGraded) {
  const ScTopology t = dickson(4);
  ASSERT_EQ(t.caps.size(), 3u);
  EXPECT_NEAR(t.caps[0].ideal_v_ratio, 0.25, 1e-12);
  EXPECT_NEAR(t.caps[1].ideal_v_ratio, 0.50, 1e-12);
  EXPECT_NEAR(t.caps[2].ideal_v_ratio, 0.75, 1e-12);
}

TEST(SpiceCrossCheck, DicksonOutputTracksRatio) {
  for (int n : {2, 3, 4}) {
    const ScTopology topo = dickson(n);
    const ChargeVectors cv = charge_vectors(topo);
    spice::Circuit ckt;
    const ScNetlistResult nodes = build_sc_netlist(ckt, topo, cv, 3.0, 50e-9, 5.0, 20e6, 5e-9);
    ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(1e-4));
    spice::TranSpec spec;
    spec.tstop = 30.0 / 20e6;
    spec.dt = 1.0 / (20e6 * 200.0);
    spec.use_ic = true;
    spec.method = spice::Integrator::BackwardEuler;
    spec.record_nodes = {nodes.vout};
    const spice::TranResult res = spice::transient(ckt, spec);
    EXPECT_NEAR(res.at(nodes.vout).back(), 3.0 / n, 0.03) << "Dickson " << n << ":1";
  }
}

TEST(ScModelRating, GradedDicksonRejectedByLowRatedCaps) {
  // A 3:1 Dickson from 3.3 V stacks 2.2 V on its top cap — beyond a 32 nm
  // deep-trench rating — while the equal-rating ladder passes.
  ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 3;
  d.m = 1;
  d.family = ScFamily::Dickson;
  d.c_fly_f = 1e-6;
  d.c_out_f = 0.2e-6;
  d.g_tot_s = 5000.0;
  d.f_sw_hz = 80e6;
  EXPECT_THROW(analyze_sc(d, 3.3, 5.0), InvalidParameter);
  d.family = ScFamily::Ladder;
  EXPECT_NO_THROW(analyze_sc(d, 3.3, 5.0));
}

TEST(Netlist, MismatchedChargeVectorsThrow) {
  const ScTopology t2 = series_parallel(2);
  const ChargeVectors cv3 = charge_vectors(series_parallel(3));
  spice::Circuit ckt;
  EXPECT_THROW(build_sc_netlist(ckt, t2, cv3, 3.3, 1e-9, 1.0, 1e6, 1e-9), InvalidParameter);
}

}  // namespace
}  // namespace ivory::core
