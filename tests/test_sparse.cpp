// Sparse/banded MNA kernel tests: dense-vs-sparse agreement on seeded random
// circuits, automatic kernel selection, symbolic reuse across switch-state
// changes, LU-cache byte-identity with sparse kernels, deterministic
// parallel DSE over grid candidates, and singular-matrix diagnostics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/sparse.hpp"
#include "pdn/pdn.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/phase_clock.hpp"

using namespace ivory;

namespace {

double max_rel_diff(const spice::TranResult& a, const spice::TranResult& b) {
  EXPECT_EQ(a.time.size(), b.time.size());
  EXPECT_EQ(a.voltages.size(), b.voltages.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.voltages.size() && i < b.voltages.size(); ++i)
    for (std::size_t k = 0; k < a.voltages[i].size() && k < b.voltages[i].size(); ++k) {
      const double x = a.voltages[i][k], y = b.voltages[i][k];
      const double denom = std::max({std::fabs(x), std::fabs(y), 1e-12});
      worst = std::max(worst, std::fabs(x - y) / denom);
    }
  return worst;
}

bool byte_identical(const spice::TranResult& a, const spice::TranResult& b) {
  if (a.time.size() != b.time.size() || a.voltages.size() != b.voltages.size()) return false;
  if (!a.time.empty() &&
      std::memcmp(a.time.data(), b.time.data(), a.time.size() * sizeof(double)) != 0)
    return false;
  for (std::size_t i = 0; i < a.voltages.size(); ++i) {
    if (a.voltages[i].size() != b.voltages[i].size()) return false;
    if (!a.voltages[i].empty() &&
        std::memcmp(a.voltages[i].data(), b.voltages[i].data(),
                    a.voltages[i].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

// Seeded random RC(L) network: a guaranteed-connected resistive spanning
// tree plus random extra resistors, caps, series inductors, and loads. The
// spanning tree plus the single source keep every instance nonsingular.
spice::Circuit random_circuit(std::uint64_t seed, int n_nodes) {
  Pcg32 rng(seed, 7);
  spice::Circuit c;
  std::vector<spice::NodeId> nodes;
  nodes.push_back(c.node("n0"));
  c.add_vsource("vs", nodes[0], spice::kGround, spice::Waveform::dc(rng.uniform(0.8, 3.0)));
  for (int i = 1; i < n_nodes; ++i) {
    const spice::NodeId ni = c.node("n" + std::to_string(i));
    const spice::NodeId prev =
        nodes[rng.next_u32() % static_cast<std::uint32_t>(nodes.size())];
    c.add_resistor("rt" + std::to_string(i), prev, ni, rng.uniform(0.01, 5.0));
    if (rng.bernoulli(0.6))
      c.add_capacitor("c" + std::to_string(i), ni, spice::kGround, rng.uniform(1e-12, 1e-9));
    if (rng.bernoulli(0.25))
      c.add_resistor("rx" + std::to_string(i), ni,
                     nodes[rng.next_u32() % static_cast<std::uint32_t>(nodes.size())],
                     rng.uniform(0.1, 20.0));
    if (rng.bernoulli(0.15) && i >= 2)
      c.add_inductor("l" + std::to_string(i), ni, nodes[nodes.size() / 2],
                     rng.uniform(1e-10, 1e-8));
    if (rng.bernoulli(0.3))
      c.add_isource("i" + std::to_string(i), ni, spice::kGround,
                    spice::Waveform::dc(rng.uniform(0.0, 0.05)));
    nodes.push_back(ni);
  }
  return c;
}

// RC ladder with an optional mid-chain clocked switch — low bandwidth by
// construction, the banded kernel's home turf.
spice::Circuit ladder_circuit(int n_stages, bool with_switch) {
  spice::Circuit c;
  spice::NodeId prev = c.node("in");
  c.add_vsource("vs", prev, spice::kGround, spice::Waveform::dc(1.0));
  spice::NodeId mid_a = prev, mid_b = prev;
  for (int i = 0; i < n_stages; ++i) {
    const spice::NodeId ni = c.node("n" + std::to_string(i));
    c.add_resistor("r" + std::to_string(i), prev, ni, 0.1);
    c.add_capacitor("c" + std::to_string(i), ni, spice::kGround, 1e-9);
    if (i == n_stages / 2) mid_a = ni;
    if (i == n_stages / 2 + 1) mid_b = ni;
    prev = ni;
  }
  c.add_isource("load", prev, spice::kGround, spice::Waveform::dc(0.02));
  if (with_switch) {
    const spice::PhaseClock clk(50e6, 1, 0.5);
    c.add_switch("sw", mid_a, mid_b, 0.01, 1e6, clk.control(0), clk.edge_fn(0));
  }
  return c;
}

spice::TranSpec base_spec(sparse::Kernel k) {
  spice::TranSpec spec;
  spec.tstop = 100e-9;
  spec.dt = 1e-9;
  spec.method = spice::Integrator::BackwardEuler;
  spec.use_ic = true;
  spec.kernel = k;
  return spec;
}

}  // namespace

// ---------------------------------------------------------------------------
// Dense vs sparse vs banded agreement on seeded random circuits
// ---------------------------------------------------------------------------

TEST(SparseAgreement, RandomCircuitsAllKernelsAgree) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SCOPED_TRACE("random_circuit seed=" + std::to_string(seed) +
                 " (reproduce: random_circuit(seed, 120))");
    const spice::Circuit c = random_circuit(seed, 120);
    const spice::TranResult dense = spice::transient(c, base_spec(sparse::Kernel::Dense));
    const spice::TranResult banded = spice::transient(c, base_spec(sparse::Kernel::Banded));
    const spice::TranResult gen = spice::transient(c, base_spec(sparse::Kernel::Sparse));
    EXPECT_EQ(dense.kernel, "dense");
    EXPECT_EQ(banded.kernel, "banded");
    EXPECT_EQ(gen.kernel, "sparse");
    EXPECT_LE(max_rel_diff(dense, banded), 1e-9);
    EXPECT_LE(max_rel_diff(dense, gen), 1e-9);
  }
}

TEST(SparseAgreement, DcOperatingPointMatchesAcrossKernels) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    SCOPED_TRACE("random_circuit seed=" + std::to_string(seed));
    const spice::Circuit c = random_circuit(seed, 90);
    const spice::DcResult dense = spice::dc_operating_point(c, sparse::Kernel::Dense);
    const spice::DcResult banded = spice::dc_operating_point(c, sparse::Kernel::Banded);
    const spice::DcResult gen = spice::dc_operating_point(c, sparse::Kernel::Sparse);
    ASSERT_EQ(dense.node_v.size(), banded.node_v.size());
    ASSERT_EQ(dense.node_v.size(), gen.node_v.size());
    for (std::size_t i = 0; i < dense.node_v.size(); ++i) {
      const double denom = std::max(std::fabs(dense.node_v[i]), 1e-12);
      EXPECT_LE(std::fabs(dense.node_v[i] - banded.node_v[i]) / denom, 1e-9) << "node " << i;
      EXPECT_LE(std::fabs(dense.node_v[i] - gen.node_v[i]) / denom, 1e-9) << "node " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Automatic kernel selection
// ---------------------------------------------------------------------------

TEST(SparseSelection, LadderPicksBanded) {
  const spice::Circuit c = ladder_circuit(200, false);
  const spice::TranResult res = spice::transient(c, base_spec(sparse::Kernel::Auto));
  EXPECT_EQ(res.kernel, "banded");
  EXPECT_EQ(res.symbolic_analyses, 1u);
}

TEST(SparseSelection, GridPicksBanded) {
  pdn::GridParams gp;
  gp.nx = gp.ny = 16;
  const spice::Circuit c = pdn::make_grid_circuit(gp);
  spice::TranSpec spec = base_spec(sparse::Kernel::Auto);
  spec.use_ic = false;
  const spice::TranResult res = spice::transient(c, spec);
  EXPECT_EQ(res.kernel, "banded");
  EXPECT_GT(res.factor_nnz, 0u);
}

TEST(SparseSelection, SmallCircuitStaysDense) {
  // n <= 48: the legacy dense path, byte for byte.
  const spice::Circuit c = ladder_circuit(10, false);
  const spice::TranResult res = spice::transient(c, base_spec(sparse::Kernel::Auto));
  EXPECT_EQ(res.kernel, "dense");
}

// ---------------------------------------------------------------------------
// Symbolic reuse across switch-state changes
// ---------------------------------------------------------------------------

TEST(SparseSymbolic, ReusedAcrossSwitchStates) {
  const spice::Circuit c = ladder_circuit(120, true);
  spice::TranSpec spec = base_spec(sparse::Kernel::Auto);
  spec.tstop = 200e-9;
  const spice::TranResult res = spice::transient(c, spec);
  EXPECT_EQ(res.kernel, "banded");
  // The clocked switch toggles the matrix values every half period, forcing
  // multiple numeric factorizations — but the sparsity pattern never moves,
  // so exactly one structural analysis serves the whole run.
  EXPECT_GE(res.lu_factorizations, 2u);
  EXPECT_EQ(res.symbolic_analyses, 1u);
}

// ---------------------------------------------------------------------------
// LU-cache byte-identity with sparse kernels
// ---------------------------------------------------------------------------

TEST(SparseCache, ByteIdenticalAcrossCapacities) {
  const spice::Circuit c = ladder_circuit(120, true);
  for (const sparse::Kernel k : {sparse::Kernel::Banded, sparse::Kernel::Sparse}) {
    spice::TranSpec spec = base_spec(k);
    spec.tstop = 200e-9;
    spec.lu_cache_capacity = 0;
    const spice::TranResult cap0 = spice::transient(c, spec);
    spec.lu_cache_capacity = 1;
    const spice::TranResult cap1 = spice::transient(c, spec);
    spec.lu_cache_capacity = spice::TranSpec{}.lu_cache_capacity;
    const spice::TranResult capN = spice::transient(c, spec);
    EXPECT_TRUE(byte_identical(cap0, cap1)) << "kernel " << sparse::kernel_name(k);
    EXPECT_TRUE(byte_identical(cap0, capN)) << "kernel " << sparse::kernel_name(k);
    EXPECT_GT(capN.lu_cache_hits, 0u);
  }
}

// ---------------------------------------------------------------------------
// Parallel DSE over grid candidates (ThreadSanitizer suite)
// ---------------------------------------------------------------------------

TEST(SparseParallel, GridCandidateSweepIsDeterministic) {
  std::vector<pdn::GridParams> candidates;
  for (const int pitch : {2, 4})
    for (const double decap : {20e-12, 50e-12, 100e-12}) {
      pdn::GridParams gp;
      gp.nx = gp.ny = 8;
      gp.bump_pitch = pitch;
      gp.tile_cap_f = decap;
      candidates.push_back(gp);
    }

  const auto run = [&](std::size_t i) {
    spice::Circuit ckt;
    const pdn::GridNodes nodes = pdn::build_grid_netlist(ckt, candidates[i]);
    spice::TranSpec spec = base_spec(sparse::Kernel::Auto);
    spec.tstop = 20e-9;
    spec.dt = 0.2e-9;
    spec.use_ic = false;
    spec.record_nodes = {nodes.center};
    return spice::transient(ckt, spec).voltages.at(0);
  };

  std::vector<std::vector<double>> serial;
  serial.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) serial.push_back(run(i));

  par::set_global_threads(4);
  const std::vector<std::vector<double>> parallel =
      par::parallel_map<std::vector<double>>(candidates.size(), run);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size()) << "candidate " << i;
    EXPECT_EQ(0, std::memcmp(serial[i].data(), parallel[i].data(),
                             serial[i].size() * sizeof(double)))
        << "candidate " << i << ": parallel result differs from serial";
  }
}

// ---------------------------------------------------------------------------
// Singular-matrix diagnostics
// ---------------------------------------------------------------------------

TEST(SparseDiagnostics, SingularNamesDimensionPivotAndUnknown) {
  // Two ideal sources in parallel with different values: structurally
  // singular (dependent branch rows).
  spice::Circuit c;
  const spice::NodeId n1 = c.node("rail");
  c.add_vsource("v1", n1, spice::kGround, spice::Waveform::dc(1.0));
  c.add_vsource("v2", n1, spice::kGround, spice::Waveform::dc(2.0));
  c.add_resistor("rl", n1, spice::kGround, 1.0);
  try {
    spice::dc_operating_point(c);
    FAIL() << "expected SingularMatrixError";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.dim(), 3u);  // 1 node + 2 branch currents.
    EXPECT_LT(e.pivot_col(), 3u);
    const std::string what = e.what();
    EXPECT_NE(what.find("singular"), std::string::npos) << what;
    EXPECT_NE(what.find("n=3"), std::string::npos) << what;
    EXPECT_NE(what.find("offending unknown"), std::string::npos) << what;
    EXPECT_NE(what.find("branch current"), std::string::npos) << what;
  }
}

TEST(SparseDiagnostics, SingularIsStillANumericalError) {
  // Existing callers catching NumericalError keep working.
  spice::Circuit c;
  const spice::NodeId n1 = c.node("a");
  c.add_vsource("v1", n1, spice::kGround, spice::Waveform::dc(1.0));
  c.add_vsource("v2", n1, spice::kGround, spice::Waveform::dc(2.0));
  c.add_resistor("rl", n1, spice::kGround, 1.0);
  EXPECT_THROW(spice::dc_operating_point(c), NumericalError);
}

// ---------------------------------------------------------------------------
// Kernel-level: compression and structural analysis
// ---------------------------------------------------------------------------

TEST(SparseKernel, CompressSumsDuplicatesInInsertionOrder) {
  sparse::SparseStamp s(3);
  s.add(0, 0, 1.0);
  s.add(1, 1, 2.0);
  s.add(0, 0, 0.5);   // Duplicate: summed with the first stamp.
  s.add(2, 1, -1.0);
  s.add(1, 2, 4.0);
  s.add(2, 2, 3.0);
  sparse::CscMatrix m;
  sparse::compress(s, m);
  EXPECT_EQ(m.n, 3u);
  EXPECT_EQ(m.nnz(), 5u);
  // Column 0: single (0,0) entry holding 1.0 + 0.5.
  EXPECT_EQ(m.col_ptr[0], 0);
  EXPECT_EQ(m.col_ptr[1], 1);
  EXPECT_EQ(m.row_ind[0], 0);
  EXPECT_DOUBLE_EQ(m.val[0], 1.5);
  // Column 1: rows 1, 2 sorted.
  EXPECT_EQ(m.row_ind[1], 1);
  EXPECT_EQ(m.row_ind[2], 2);
}

TEST(SparseKernel, PatternHashIgnoresValues) {
  sparse::SparseStamp a(2), b(2);
  a.add(0, 0, 1.0);
  a.add(1, 1, 2.0);
  b.add(0, 0, 5.0);
  b.add(1, 1, -3.0);
  sparse::CscMatrix ma, mb;
  sparse::compress(a, ma);
  sparse::compress(b, mb);
  EXPECT_EQ(ma.pattern_hash(), mb.pattern_hash());
  b.add(0, 1, 1.0);
  sparse::compress(b, mb);
  EXPECT_NE(ma.pattern_hash(), mb.pattern_hash());
}

TEST(SparseKernel, ForcedKernelsSolveIdenticalSystem) {
  // 1D Laplacian-ish SPD band system, solved by all three kernels.
  const std::size_t n = 60;
  sparse::SparseStamp s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.add(i, i, 2.5);
    if (i + 1 < n) {
      s.add(i, i + 1, -1.0);
      s.add(i + 1, i, -1.0);
    }
  }
  sparse::CscMatrix m;
  sparse::compress(s, m);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i % 7) - 3.0;

  const auto xd =
      sparse::MnaFactorization(m, sparse::analyze(m, sparse::Kernel::Dense)).solve(b);
  const auto xb =
      sparse::MnaFactorization(m, sparse::analyze(m, sparse::Kernel::Banded)).solve(b);
  const auto xs =
      sparse::MnaFactorization(m, sparse::analyze(m, sparse::Kernel::Sparse)).solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xb[i], xd[i], 1e-9 * std::max(1.0, std::fabs(xd[i]))) << i;
    EXPECT_NEAR(xs[i], xd[i], 1e-9 * std::max(1.0, std::fabs(xd[i]))) << i;
  }
}
