// Unit tests for scalar optimization and root finding.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/optimize.hpp"

namespace ivory {
namespace {

TEST(GoldenSection, FindsParabolaMinimum) {
  const ScalarOptimum r = golden_minimize([](double x) { return (x - 3.0) * (x - 3.0) + 2.0; },
                                          -10.0, 10.0);
  EXPECT_NEAR(r.x, 3.0, 1e-6);
  EXPECT_NEAR(r.f, 2.0, 1e-10);
}

TEST(GoldenSection, MaximizeNegatesCorrectly) {
  const ScalarOptimum r = golden_maximize([](double x) { return -(x - 1.0) * (x - 1.0) + 5.0; },
                                          -4.0, 4.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
  EXPECT_NEAR(r.f, 5.0, 1e-10);
}

TEST(GoldenSection, MinimumAtBoundary) {
  const ScalarOptimum r = golden_minimize([](double x) { return x; }, 2.0, 5.0);
  EXPECT_NEAR(r.x, 2.0, 1e-5);
}

TEST(GoldenSection, InvalidIntervalThrows) {
  EXPECT_THROW(golden_minimize([](double x) { return x; }, 1.0, 1.0), InvalidParameter);
}

TEST(LogGrid, FindsMinimumOfLossShapedCurve) {
  // Classic converter loss curve: a/f + b*f has its minimum at sqrt(a/b).
  const double a = 1e7, b = 1e-7;
  const ScalarOptimum r =
      log_grid_minimize([&](double f) { return a / f + b * f; }, 1e3, 1e12, 128);
  EXPECT_NEAR(r.x / std::sqrt(a / b), 1.0, 1e-3);
}

TEST(LogGrid, HandlesPlateaus) {
  // Piecewise-constant objective: should return a point on the low plateau.
  const ScalarOptimum r =
      log_grid_minimize([](double x) { return x < 1e6 ? 2.0 : 1.0; }, 1e3, 1e9, 64);
  EXPECT_NEAR(r.f, 1.0, 1e-12);
  EXPECT_GE(r.x, 1e6);
}

TEST(Bisect, FindsSqrtTwo) {
  const double root = bisect_root([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, EndpointRootReturnedExactly) {
  EXPECT_EQ(bisect_root([](double x) { return x; }, 0.0, 1.0), 0.0);
}

TEST(Bisect, NoSignChangeThrows) {
  EXPECT_THROW(bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0), InvalidParameter);
}

}  // namespace
}  // namespace ivory
