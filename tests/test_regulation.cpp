// Regulation-scenario validation (paper Section 4: "The Ivory dynamic
// response model is validated under various line regulation, reference
// regulation, and load regulation scenarios"): the trace-driven cycle model
// against closed-loop switch-level simulation built from gated switches.
#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hpp"
#include "core/ivory.hpp"

namespace ivory::core {
namespace {

// Packet granularity matters for hysteretic control: the per-cycle charge
// (scaled by Ceq ~ 4*c_fly for a 2:1) must be small against the output
// capacitance, or a single fire overshoots the reference — real converters
// self-limit mid-phase, the cycle model cannot. The test converter keeps
// Ceq/Co ~ 0.15, the regime the model (and any sane design) targets.
ScDesign converter() {
  ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 2;
  d.m = 1;
  d.c_fly_f = 20e-9;
  d.c_out_f = 500e-9;
  d.g_tot_s = 2000.0;
  d.f_sw_hz = 40e6;
  return d;
}

// Simulates the closed-loop (hysteretically gated) converter and returns the
// output waveform at the simulation step.
spice::TranResult simulate_regulated(const ScDesign& d, const spice::Waveform& vin_wave,
                                     double vref, const spice::Waveform& load, double tstop,
                                     spice::NodeId* vout, spice::Circuit& ckt) {
  const ScTopology topo = make_topology(d.n, d.m, d.family);
  const ChargeVectors cv = charge_vectors(topo);
  const ScNetlistResult nodes = build_sc_netlist_regulated(
      ckt, topo, cv, vin_wave, vref, /*vhyst=*/2e-3, d.c_fly_f, d.g_tot_s, d.f_sw_hz,
      d.c_out_f);
  ckt.add_isource("iload", nodes.vout, spice::kGround, load);
  spice::TranSpec spec;
  spec.tstop = tstop;
  spec.dt = 1.0 / (200.0 * d.f_sw_hz);
  spec.use_ic = true;
  spec.method = spice::Integrator::BackwardEuler;
  spec.record_nodes = {nodes.vout};
  *vout = nodes.vout;
  return spice::transient(ckt, spec);
}

double tail_mean(const std::vector<double>& v, std::size_t frac = 4) {
  return mean(std::vector<double>(v.end() - static_cast<long>(v.size() / frac), v.end()));
}

TEST(Regulation, ClosedLoopNetlistHoldsVref) {
  // The gated-switch netlist alone: pulse skipping must pin the mean output
  // at vref even though the unloaded ideal output would be far higher.
  const ScDesign d = converter();
  const double vref = 0.8;  // Ideal 2:1 output from 2.0 V would be 1.0 V.
  spice::Circuit ckt;
  spice::NodeId vout;
  const spice::TranResult res = simulate_regulated(
      d, spice::Waveform::dc(2.0), vref, spice::Waveform::dc(0.05), 15e-6, &vout, ckt);
  EXPECT_NEAR(tail_mean(res.at(vout)), vref, 0.015);
}

TEST(Regulation, ReferenceStepTrackedByModelAndCircuit) {
  // Reference regulation (fast DVFS): vref steps 0.80 -> 0.90 at 10 us. The
  // cycle model and the closed-loop circuit must agree on both plateaus.
  const ScDesign d = converter();
  const double dt = 2e-9, tstop = 20e-6, t_step = 10e-6;
  const double v_lo = 0.80, v_hi = 0.90;
  const std::size_t n = static_cast<std::size_t>(tstop / dt);

  std::vector<double> vin(n, 2.0), vref(n), load(n, 0.05);
  for (std::size_t k = 0; k < n; ++k)
    vref[k] = static_cast<double>(k) * dt < t_step ? v_lo : v_hi;
  const DynWaveform model = sc_cycle_response_traces(d, vin, vref, load, dt);

  // Circuit: two runs stitched is unnecessary — gate threshold cannot vary
  // in the netlist, so validate each plateau against its own run.
  for (double vr : {v_lo, v_hi}) {
    spice::Circuit ckt;
    spice::NodeId vout;
    const spice::TranResult res = simulate_regulated(
        d, spice::Waveform::dc(2.0), vr, spice::Waveform::dc(0.05), 12e-6, &vout, ckt);
    const double sim = tail_mean(res.at(vout));
    const double mdl = vr == v_lo ? model.v[static_cast<std::size_t>(9e-6 / dt)]
                                  : model.v[n - 10];
    EXPECT_NEAR(mdl, sim, 0.02) << "vref=" << vr;
  }

  // And the model transitions between the plateaus promptly (within 2 us).
  EXPECT_NEAR(model.v[static_cast<std::size_t>((t_step + 2e-6) / dt)], v_hi, 0.02);
}

TEST(Regulation, LineStepRejectedByBothModelAndCircuit) {
  // Line regulation: vin steps 2.0 -> 2.4 V at 10 us; a regulated converter
  // must keep the output at vref in both the model and the circuit.
  const ScDesign d = converter();
  const double vref = 0.85;
  const double dt = 2e-9, tstop = 20e-6, t_step = 10e-6;
  const std::size_t n = static_cast<std::size_t>(tstop / dt);

  std::vector<double> vin(n), vrefs(n, vref), load(n, 0.05);
  for (std::size_t k = 0; k < n; ++k)
    vin[k] = static_cast<double>(k) * dt < t_step ? 2.0 : 2.4;
  const DynWaveform model = sc_cycle_response_traces(d, vin, vrefs, load, dt);

  const spice::Waveform vin_wave =
      spice::Waveform::pwl({{0.0, 2.0}, {t_step, 2.0}, {t_step + 50e-9, 2.4}});
  spice::Circuit ckt;
  spice::NodeId vout;
  const spice::TranResult res = simulate_regulated(d, vin_wave, vref,
                                                   spice::Waveform::dc(0.05), tstop, &vout, ckt);

  const double sim_after = tail_mean(res.at(vout));
  const double mdl_after = tail_mean(model.v);
  // Hysteretic control rides slightly above vref by half a charge packet,
  // and the packet grows with line headroom (videal - vref) — so the means
  // shift a little with vin. Both model and circuit must stay regulated.
  EXPECT_NEAR(mdl_after, vref, 0.03);
  EXPECT_NEAR(sim_after, vref, 0.03);
  EXPECT_NEAR(mdl_after, sim_after, 0.02);

  // The line step shifts the regulated mean by at most the packet-growth
  // effect (tens of mV here), never by the 0.4 V input step itself.
  std::vector<double> before(model.v.begin() + static_cast<long>(n / 4),
                             model.v.begin() + static_cast<long>(n / 2));
  std::vector<double> after(model.v.begin() + static_cast<long>(3 * n / 4), model.v.end());
  EXPECT_NEAR(mean(before), mean(after), 0.02);
}

TEST(Regulation, LoadStepMatchesOpenLoopTest) {
  // Load regulation under closed loop: a doubling load leaves the regulated
  // mean unchanged (the converter has capability margin).
  const ScDesign d = converter();
  const double vref = 0.85;
  const spice::Waveform load = spice::Waveform::custom(
      [](double t) { return t < 10e-6 ? 0.04 : 0.08; });
  spice::Circuit ckt;
  spice::NodeId vout;
  const spice::TranResult res =
      simulate_regulated(d, spice::Waveform::dc(2.0), vref, load, 20e-6, &vout, ckt);
  const std::vector<double>& v = res.at(vout);
  std::vector<double> before(v.begin() + static_cast<long>(v.size() / 4),
                             v.begin() + static_cast<long>(v.size() / 2));
  std::vector<double> after(v.begin() + static_cast<long>(3 * v.size() / 4), v.end());
  EXPECT_NEAR(mean(before), vref, 0.02);
  EXPECT_NEAR(mean(after), vref, 0.02);
}

TEST(Regulation, TraceLengthMismatchThrows) {
  const ScDesign d = converter();
  EXPECT_THROW(sc_cycle_response_traces(d, {2.0, 2.0}, {0.8}, {0.1, 0.1}, 1e-9),
               InvalidParameter);
  EXPECT_THROW(sc_cycle_response_traces(d, {2.0, -1.0}, {0.8, 0.8}, {0.1, 0.1}, 1e-9),
               InvalidParameter);
}

}  // namespace
}  // namespace ivory::core
