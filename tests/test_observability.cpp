// Observability layer: registry semantics, Prometheus exposition format,
// the "metrics never perturb results" contract, and the lock-free counter
// discipline of the serve result cache under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/ivory.hpp"
#include "core/report_json.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"

namespace ivory {
namespace {

/// Every test starts from a zeroed registry so counter assertions are about
/// this test's work, not whatever ran before it in the process.
class Observability : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(true);
    metrics::registry().reset();
    trace::set_enabled(true);
    trace::clear();
  }
};

TEST_F(Observability, CounterSumsAcrossThreadsExactly) {
  metrics::Counter& c = metrics::registry().counter("test.obs.counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (std::thread& w : workers) w.join();
  // Striped relaxed adds must still sum to the exact total: counters carry
  // the determinism contract (sums of work done), unlike latency metrics.
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(Observability, RegistryReturnsStableReferencesAndSortedJson) {
  metrics::Counter& a = metrics::registry().counter("test.obs.zeta");
  metrics::Counter& b = metrics::registry().counter("test.obs.alpha");
  EXPECT_EQ(&a, &metrics::registry().counter("test.obs.zeta"));
  a.add(3);
  b.add(1);
  const std::string doc = metrics::registry().to_json().write_canonical();
  // Canonical form sorts keys bytewise, so alpha serializes before zeta.
  const std::size_t pa = doc.find("test.obs.alpha");
  const std::size_t pz = doc.find("test.obs.zeta");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pz, std::string::npos);
  EXPECT_LT(pa, pz);
}

TEST_F(Observability, GaugeSetMaxIsAHighWaterMark) {
  metrics::Gauge& g = metrics::registry().gauge("test.obs.gauge");
  g.set_max(5);
  g.set_max(3);
  EXPECT_EQ(g.value(), 5);
  g.set_max(9);
  EXPECT_EQ(g.value(), 9);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST_F(Observability, HistogramBucketsAreCumulativeInJson) {
  metrics::Histogram& h =
      metrics::registry().histogram("test.obs.hist", std::vector<double>{1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);  // lands in the implicit +inf bucket
  const metrics::Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // three finite bounds + inf
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.sum, 555.5, 1e-9);

  const json::Value doc = metrics::registry().to_json();
  const json::Value* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* hj = hists->find("test.obs.hist");
  ASSERT_NE(hj, nullptr);
  const json::Value::Array& buckets = hj->find("buckets")->as_array();
  ASSERT_EQ(buckets.size(), 3u);
  // Prometheus convention: bucket counts are cumulative (<= le).
  EXPECT_EQ(buckets[0].find("count")->as_number(), 1.0);
  EXPECT_EQ(buckets[1].find("count")->as_number(), 2.0);
  EXPECT_EQ(buckets[2].find("count")->as_number(), 3.0);
  EXPECT_EQ(hj->find("count")->as_number(), 4.0);
}

TEST_F(Observability, RuntimeDisableStopsRecording) {
  metrics::Counter& c = metrics::registry().counter("test.obs.disabled");
  c.add(2);
  metrics::set_enabled(false);
  c.add(40);
  metrics::set_enabled(true);
  EXPECT_EQ(c.value(), 2u);
}

// ---------------------------------------------------------------------------
// Prometheus exposition format (text version 0.0.4).
// ---------------------------------------------------------------------------

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' || s[0] == ':'))
    return false;
  for (const char ch : s)
    if (!(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' || ch == ':'))
      return false;
  return true;
}

/// Line-level validator: every non-comment line is `name[{labels}] value`
/// with a grammar-legal metric name and a parseable number.
void check_prometheus_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t n_samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0 || line.rfind("# HELP ", 0) == 0) continue;
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      const std::string labels = name.substr(brace + 1, name.size() - brace - 2);
      EXPECT_EQ(labels.rfind("le=\"", 0), 0u) << line;
      name = name.substr(0, brace);
    }
    EXPECT_TRUE(valid_metric_name(name)) << line;
    EXPECT_EQ(name.find('.'), std::string::npos) << "unmangled dot: " << line;
    if (value != "+Inf" && value != "NaN") {
      std::size_t consumed = 0;
      EXPECT_NO_THROW({ (void)std::stod(value, &consumed); }) << line;
      EXPECT_EQ(consumed, value.size()) << line;
    }
    ++n_samples;
  }
  EXPECT_GT(n_samples, 0u);
}

TEST_F(Observability, PrometheusRenderPassesFormatCheck) {
  metrics::registry().counter("test.prom.requests").add(7);
  metrics::registry().gauge("test.prom.depth").set(-3);
  metrics::Histogram& h =
      metrics::registry().histogram("test.prom.latency_ms", std::vector<double>{0.5, 5.0});
  h.observe(0.2);
  h.observe(50.0);

  const std::string text = metrics::render_prometheus();
  check_prometheus_text(text);
  EXPECT_NE(text.find("# TYPE test_prom_requests counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_depth -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_latency_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_ms_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_prom_latency_ms_count 2"), std::string::npos);
  // The renderer consumes the JSON snapshot, so a remote snapshot renders
  // identically to the local registry.
  EXPECT_EQ(text, metrics::render_prometheus(metrics::registry().to_json()));
}

// ---------------------------------------------------------------------------
// The core contract: metrics must never perturb results.
// ---------------------------------------------------------------------------

std::string run_explore_json() {
  core::SystemParams sys;
  SweepReport report;
  json::Value::Array arr;
  for (const core::DseResult& r : core::explore(sys, core::OptTarget::Efficiency, &report))
    arr.push_back(core::to_json(r));
  return json::Value(std::move(arr)).write_canonical();
}

TEST_F(Observability, ResultsAreByteIdenticalWithMetricsOnAndOff) {
  const std::string on = run_explore_json();
  metrics::set_enabled(false);
  trace::set_enabled(false);
  const std::string off = run_explore_json();
  metrics::set_enabled(true);
  trace::set_enabled(true);
  const std::string on2 = run_explore_json();
  EXPECT_EQ(on, off) << "disabling metrics changed a DSE result";
  EXPECT_EQ(on, on2);
}

TEST_F(Observability, ServeResponsesAreByteIdenticalWithMetricsOnAndOff) {
  const std::string req =
      R"({"id":1,"op":"sc_static","n":3,"m":1,"cfly":"4u","gtot":"15k","fsw":"80meg"})";
  serve::Service a{serve::ServiceOptions{}};
  const std::string with_metrics = a.handle_line(req);
  metrics::set_enabled(false);
  serve::Service b{serve::ServiceOptions{}};
  const std::string without_metrics = b.handle_line(req);
  metrics::set_enabled(true);
  EXPECT_EQ(with_metrics, without_metrics);
}

TEST_F(Observability, WorkCountersAreDeterministicAcrossRuns) {
  // Counters mirror work performed; for a fixed input the whole counters
  // section must be byte-identical run over run (gauges/histograms are
  // timing-dependent and carry no such contract).
  auto counters_json = [&] {
    metrics::registry().reset();
    (void)run_explore_json();
    const json::Value doc = metrics::registry().to_json();
    return doc.find("counters")->write_canonical();
  };
  const std::string first = counters_json();
  const std::string second = counters_json();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("dse.candidates.evaluated"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serve cache counter discipline: stats() reads must be lock-free-correct
// while four threads hammer lookups and inserts. Run under -L tsan.
// ---------------------------------------------------------------------------

TEST_F(Observability, CacheCountersConsistentUnderConcurrentHammer) {
  serve::ResultCache cache(64, 4);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 20000;
  std::atomic<bool> stop{false};

  // A reader polling stats() concurrently with the writers: with atomic
  // counters this is race-free (tsan-clean) and never observes torn values.
  // Only per-counter properties hold mid-flight — cross-counter invariants
  // (evictions <= misses) need a quiesced cache, because stats() reads the
  // counters one after another while events keep landing in between.
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const serve::CacheStats s = cache.stats();
      EXPECT_LE(s.entries, s.capacity);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&cache, t] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t k = (i * 7 + static_cast<std::uint64_t>(t)) % 256;
        const std::string key = "key-" + std::to_string(k);
        if (!cache.lookup(k, key)) cache.insert(k, key, "payload-" + std::to_string(k));
      }
    });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  poller.join();

  const serve::CacheStats s = cache.stats();
  // Every lookup was exactly a hit or a miss; nothing lost to data races.
  EXPECT_EQ(s.hits + s.misses, kThreads * kOpsPerThread);
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);
  EXPECT_LE(s.entries, s.capacity);
}

// ---------------------------------------------------------------------------
// Trace ring.
// ---------------------------------------------------------------------------

TEST_F(Observability, TraceSpansLandInChromeJson) {
  { IVORY_TRACE("test.obs.span"); }
  const std::vector<trace::Event> events = trace::snapshot();
  ASSERT_FALSE(events.empty());
  bool found = false;
  for (const trace::Event& e : events)
    if (std::string(e.name) == "test.obs.span") found = true;
  EXPECT_TRUE(found);

  // The dump must be strict JSON in trace_event form.
  const json::Value doc = json::Value::parse(trace::to_chrome_json());
  const json::Value* te = doc.find("traceEvents");
  ASSERT_NE(te, nullptr);
  ASSERT_TRUE(te->is_array());
  ASSERT_FALSE(te->as_array().empty());
  const json::Value& ev = te->as_array().front();
  EXPECT_EQ(ev.find("ph")->as_string(), "X");
  EXPECT_NE(ev.find("name"), nullptr);
  EXPECT_NE(ev.find("ts"), nullptr);
  EXPECT_NE(ev.find("dur"), nullptr);
}

TEST_F(Observability, TraceRingDropsOldestBeyondCapacity) {
  trace::set_capacity(4);
  for (int i = 0; i < 10; ++i) trace::record("test.obs.ring", i, 1);
  std::uint64_t dropped = 0;
  const std::vector<trace::Event> events = trace::snapshot(&dropped);
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(dropped, 6u);
  // Oldest-first snapshot of the most recent spans.
  EXPECT_EQ(events.front().start_us, 6);
  EXPECT_EQ(events.back().start_us, 9);
  trace::set_capacity(65536);
}

}  // namespace
}  // namespace ivory
