// Transient-analysis tests: analytic RC/RL/RLC responses, integrator
// accuracy, initial conditions, switches, and edge alignment.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"
#include "spice/spice.hpp"

namespace ivory::spice {
namespace {

// RC step response: v(t) = V * (1 - exp(-t/RC)).
TEST(Transient, RcChargeMatchesAnalyticSolution) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const double r = 1000.0, cap = 1e-9;
  c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
  c.add_resistor("r1", in, out, r);
  c.add_capacitor("c1", out, kGround, cap);

  TranSpec spec;
  spec.tstop = 5e-6;
  spec.dt = 1e-9;
  spec.use_ic = true;  // Start discharged.
  const TranResult res = transient(c, spec);
  const std::vector<double>& v = res.at(out);
  for (std::size_t i = 0; i < res.time.size(); i += 100) {
    const double expect = 1.0 - std::exp(-res.time[i] / (r * cap));
    EXPECT_NEAR(v[i], expect, 2e-3) << "t=" << res.time[i];
  }
  EXPECT_NEAR(v.back(), 1.0 - std::exp(-spec.tstop / (r * cap)), 1e-3);
}

// With the DC operating point as the start, the output begins settled.
TEST(Transient, DcStartIsAlreadySettled) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(2.0));
  c.add_resistor("r1", in, out, 1000.0);
  c.add_capacitor("c1", out, kGround, 1e-9);
  c.add_resistor("rload", out, kGround, 1e6);

  TranSpec spec;
  spec.tstop = 1e-6;
  spec.dt = 1e-9;
  const TranResult res = transient(c, spec);
  const std::vector<double>& v = res.at(out);
  const double v_expected = 2.0 * 1e6 / (1e6 + 1e3);
  EXPECT_NEAR(v.front(), v_expected, 1e-6);
  EXPECT_NEAR(peak_to_peak(v), 0.0, 1e-9);
}

// Capacitor IC: discharge through a resistor, v(t) = v0 * exp(-t/RC).
TEST(Transient, RcDischargeFromInitialCondition) {
  Circuit c;
  const NodeId out = c.node("out");
  const double r = 500.0, cap = 2e-9, v0 = 1.5;
  c.add_capacitor_ic("c1", out, kGround, cap, v0);
  c.add_resistor("r1", out, kGround, r);

  TranSpec spec;
  spec.tstop = 4e-6;
  spec.dt = 0.5e-9;
  spec.use_ic = true;
  const TranResult res = transient(c, spec);
  const std::vector<double>& v = res.at(out);
  EXPECT_NEAR(v.front(), v0, 1e-9);
  for (std::size_t i = 0; i < res.time.size(); i += 500) {
    EXPECT_NEAR(v[i], v0 * std::exp(-res.time[i] / (r * cap)), 3e-3);
  }
}

// RL current ramp: i(t) = (V/R) * (1 - exp(-R t / L)).
TEST(Transient, RlCurrentRise) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  const double r = 10.0, l = 1e-6;
  c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
  c.add_inductor("l1", in, mid, l);
  c.add_resistor("r1", mid, kGround, r);

  TranSpec spec;
  spec.tstop = 1e-6;
  spec.dt = 0.2e-9;
  spec.use_ic = true;
  const TranResult res = transient(c, spec);
  // Current is v(mid)/R; compare at the end (several time constants).
  const double tau = l / r;
  const double i_end = (1.0 / r) * (1.0 - std::exp(-res.time.back() / tau));
  EXPECT_NEAR(res.at(mid).back() / r, i_end, 1e-3);
}

// Series RLC: underdamped ringing frequency ~= 1/(2*pi*sqrt(LC)).
TEST(Transient, RlcRingingFrequency) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  const NodeId out = c.node("out");
  const double l = 1e-6, cap = 1e-9, r = 5.0;  // Q ~ 6.3: clearly underdamped.
  c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
  c.add_resistor("r1", in, a, r);
  c.add_inductor("l1", a, out, l);
  c.add_capacitor("c1", out, kGround, cap);

  TranSpec spec;
  spec.tstop = 2e-6;
  spec.dt = 0.25e-9;
  spec.use_ic = true;
  const TranResult res = transient(c, spec);
  const std::vector<double>& v = res.at(out);

  // Measure the ringing period between the first two positive-going
  // crossings of the final value.
  std::vector<double> crossings;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i - 1] < 1.0 && v[i] >= 1.0) crossings.push_back(res.time[i]);
  ASSERT_GE(crossings.size(), 2u);
  const double period = crossings[1] - crossings[0];
  const double f_expected = 1.0 / (2.0 * pi * std::sqrt(l * cap));
  EXPECT_NEAR(1.0 / period, f_expected, 0.03 * f_expected);
}

// Trapezoidal integration is second order: halving dt cuts the sine-tracking
// error by ~4x. Backward Euler is first order and visibly lossier.
TEST(Transient, TrapezoidalBeatsBackwardEulerOnSine) {
  auto run = [](Integrator method, double dt) {
    Circuit c;
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    const double r = 100.0, cap = 1e-9;
    const double f0 = 1e6;
    c.add_vsource("v1", in, kGround, Waveform::sine(0.0, 1.0, f0));
    c.add_resistor("r1", in, out, r);
    c.add_capacitor("c1", out, kGround, cap);
    TranSpec spec;
    spec.tstop = 4e-6;
    spec.dt = dt;
    spec.method = method;
    spec.use_ic = true;
    const TranResult res = transient(c, spec);
    // Compare against the steady-state analytic response in the last period.
    const double w = 2.0 * pi * f0;
    const double mag = 1.0 / std::sqrt(1.0 + w * w * r * r * cap * cap);
    const double ph = -std::atan(w * r * cap);
    double err = 0.0;
    int count = 0;
    const std::vector<double>& v = res.at(out);
    for (std::size_t i = 0; i < res.time.size(); ++i) {
      if (res.time[i] < 3e-6) continue;
      const double expect = mag * std::sin(w * res.time[i] + ph);
      err = std::max(err, std::fabs(v[i] - expect));
      ++count;
    }
    EXPECT_GT(count, 0);
    return err;
  };
  const double err_trap = run(Integrator::Trapezoidal, 2e-9);
  const double err_be = run(Integrator::BackwardEuler, 2e-9);
  EXPECT_LT(err_trap, err_be * 0.5);
  const double err_trap_half = run(Integrator::Trapezoidal, 1e-9);
  EXPECT_LT(err_trap_half, err_trap * 0.35);
}

// A switched capacitor charge pump: switch edges must be honoured exactly via
// next_edge, and the output must step toward the input in charge packets.
TEST(Transient, SwitchedCapChargeSharing) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId fly = c.node("fly");
  const NodeId out = c.node("out");
  const double cfly = 1e-9, cout = 10e-9;
  c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
  const PhaseClock clk(1e6, 2, 0.45);
  c.add_switch("s1", in, fly, 1.0, 1e9, clk.control(0), clk.edge_fn(0));
  c.add_switch("s2", fly, out, 1.0, 1e9, clk.control(1), clk.edge_fn(1));
  c.add_capacitor("cfly", fly, kGround, cfly);
  c.add_capacitor("cout", out, kGround, cout);

  TranSpec spec;
  spec.tstop = 100e-6;
  spec.dt = 10e-9;
  spec.use_ic = true;
  // Backward Euler: L-stable, so the stiff charge-sharing transients decay
  // monotonically and the per-cycle staircase is clean.
  spec.method = Integrator::BackwardEuler;
  const TranResult res = transient(c, spec);
  const std::vector<double>& v = res.at(out);
  // After many cycles the output converges to the input (no load).
  EXPECT_NEAR(v.back(), 1.0, 0.01);
  // And it rises monotonically (within numerical noise).
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GE(v[i], v[i - 1] - 1e-6);
}

TEST(Transient, EdgeAlignmentReducesStepsToHitEdges) {
  // A 1 MHz clock with edges at multiples of 0.45/2 us; a 0.3 us step would
  // miss them badly without alignment.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
  const PhaseClock clk(1e6, 1, 0.5);
  c.add_switch("s1", in, out, 1.0, 1e9, clk.control(0), clk.edge_fn(0));
  c.add_resistor("r1", out, kGround, 1000.0);
  TranSpec spec;
  spec.tstop = 5e-6;
  spec.dt = 0.3e-6;
  const TranResult res = transient(c, spec);
  // Edge times (0.5 us grid) must be present in the time vector.
  bool found = false;
  for (double t : res.time)
    if (std::fabs(t - 0.5e-6) < 1e-12) found = true;
  EXPECT_TRUE(found);
}

TEST(Transient, FactorizationsAreCachedAcrossUniformSteps) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::sine(0.0, 1.0, 1e6));
  c.add_resistor("r1", in, out, 100.0);
  c.add_capacitor("c1", out, kGround, 1e-9);
  TranSpec spec;
  spec.tstop = 10e-6;
  spec.dt = 1e-9;
  const TranResult res = transient(c, spec);
  EXPECT_GT(res.steps_taken, 9000u);
  // First step (BE) + steady trapezoidal = 2 factorizations.
  EXPECT_LE(res.lu_factorizations, 4u);
}

TEST(Transient, VoltageControlledSwitchActsAsComparator) {
  // A hysteretic switch shorts a charging cap to ground when it passes the
  // threshold: the waveform must stay bounded near vth.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(2.0));
  c.add_resistor("r1", in, out, 1000.0);
  c.add_capacitor("c1", out, kGround, 1e-9);
  c.add_vcswitch("s1", out, kGround, out, kGround, 1.0, 0.05, 10.0, 1e9);
  TranSpec spec;
  spec.tstop = 20e-6;
  spec.dt = 1e-9;
  spec.use_ic = true;
  const TranResult res = transient(c, spec);
  const std::vector<double>& v = res.at(out);
  EXPECT_LT(max_value(v), 1.2);
  EXPECT_GT(max_value(v), 0.9);
}



TEST(Transient, AdaptiveSteppingAccurateWithFarFewerSteps) {
  // PDN-style scenario: long quiet stretch, one fast load step. Adaptive
  // stepping must hit comparable accuracy with far fewer steps than a
  // uniformly fine grid.
  auto build = [](Circuit& c, NodeId* out) {
    const NodeId in = c.node("in");
    *out = c.node("out");
    c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
    c.add_resistor("r1", in, *out, 2.0);
    c.add_capacitor("c1", *out, kGround, 100e-9);
    c.add_isource("iload", *out, kGround,
                  Waveform::pwl({{0.0, 0.01}, {40e-6, 0.01}, {40.05e-6, 0.2}}));
  };

  TranSpec fine;
  fine.tstop = 80e-6;
  fine.dt = 10e-9;
  Circuit c1;
  NodeId out1;
  build(c1, &out1);
  const TranResult ref = transient(c1, fine);

  TranSpec ad = fine;
  ad.adaptive = true;
  ad.dv_max_v = 0.5e-3;
  Circuit c2;
  NodeId out2;
  build(c2, &out2);
  const TranResult res = transient(c2, ad);

  EXPECT_LT(res.steps_taken, ref.steps_taken / 5);

  // Compare waveforms at common probe instants.
  auto sample = [](const TranResult& r, NodeId n, double t) {
    const std::vector<double>& v = r.at(n);
    std::size_t lo = 0, hi = r.time.size() - 1;
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      (r.time[mid] <= t ? lo : hi) = mid;
    }
    return v[lo];
  };
  for (double t : {10e-6, 39e-6, 41e-6, 45e-6, 70e-6})
    EXPECT_NEAR(sample(res, out2, t), sample(ref, out1, t), 2e-3) << "t=" << t;
}

TEST(Transient, AdaptiveRespectsSwitchEdges) {
  // Even with a grown step, switching edges must still land exactly and the
  // converter staircase must match the fixed-step result.
  auto build = [](Circuit& c, NodeId* out) {
    const NodeId in = c.node("in");
    const NodeId fly = c.node("fly");
    *out = c.node("out");
    c.add_vsource("v1", in, kGround, Waveform::dc(1.0));
    const PhaseClock clk(1e6, 2, 0.45);
    c.add_switch("s1", in, fly, 1.0, 1e9, clk.control(0), clk.edge_fn(0));
    c.add_switch("s2", fly, *out, 1.0, 1e9, clk.control(1), clk.edge_fn(1));
    c.add_capacitor("cfly", fly, kGround, 1e-9);
    c.add_capacitor("cout", *out, kGround, 10e-9);
  };
  TranSpec spec;
  spec.tstop = 60e-6;
  spec.dt = 10e-9;
  spec.use_ic = true;
  spec.method = Integrator::BackwardEuler;
  Circuit c1;
  NodeId out1;
  build(c1, &out1);
  const TranResult fixed = transient(c1, spec);
  spec.adaptive = true;
  spec.dv_max_v = 20e-3;
  Circuit c2;
  NodeId out2;
  build(c2, &out2);
  const TranResult ad = transient(c2, spec);
  EXPECT_LT(ad.steps_taken, fixed.steps_taken);
  EXPECT_NEAR(ad.at(out2).back(), fixed.at(out1).back(), 5e-3);
}

TEST(Transient, AdaptiveInvalidSpecThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("v", a, kGround, Waveform::dc(1.0));
  c.add_resistor("r", a, kGround, 1.0);
  TranSpec spec;
  spec.tstop = 1e-6;
  spec.dt = 1e-9;
  spec.adaptive = true;
  spec.dv_max_v = 0.0;
  EXPECT_THROW(transient(c, spec), InvalidParameter);
  spec.dv_max_v = 1e-3;
  spec.dt_max = 1e-10;  // Below dt.
  EXPECT_THROW(transient(c, spec), InvalidParameter);
}

TEST(Transient, GatedSwitchActsAsHystereticRegulator) {
  // A time+voltage gated switch: clocked charging of a cap, enabled only
  // while the output is under the reference — the output must settle at the
  // threshold and stop rising.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(2.0));
  const PhaseClock clk(5e6, 1, 0.5);
  c.add_gated_switch("sg", in, out, 10.0, 1e9, clk.control(0), clk.edge_fn(0), out, kGround,
                     /*vth=*/1.0, /*vhyst=*/0.01);
  c.add_capacitor("c1", out, kGround, 10e-9);
  c.add_resistor("rl", out, kGround, 10e3);
  TranSpec spec;
  spec.tstop = 30e-6;
  spec.dt = 5e-9;
  spec.use_ic = true;
  spec.method = Integrator::BackwardEuler;
  spec.record_nodes = {out};
  const TranResult res = transient(c, spec);
  const std::vector<double>& v = res.at(out);
  std::vector<double> tail(v.end() - 1000, v.end());
  EXPECT_NEAR(mean(tail), 1.0, 0.03);
  EXPECT_LT(max_value(v), 1.1);  // Never charges far past the gate.
}

TEST(Transient, GatedSwitchNeedsBothConditions) {
  // With the voltage gate permanently satisfied but the clock never active,
  // the switch must stay open.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("v1", in, kGround, Waveform::dc(2.0));
  c.add_gated_switch("sg", in, out, 10.0, 1e9, [](double) { return false; }, nullptr, out,
                     kGround, 1.0, 0.01);
  c.add_capacitor("c1", out, kGround, 1e-9);
  c.add_resistor("rl", out, kGround, 1e4);
  TranSpec spec;
  spec.tstop = 5e-6;
  spec.dt = 5e-9;
  spec.use_ic = true;
  const TranResult res = transient(c, spec);
  EXPECT_LT(max_value(res.at(out)), 0.05);
}

TEST(Transient, InvalidSpecThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("v", a, kGround, Waveform::dc(1.0));
  c.add_resistor("r", a, kGround, 1.0);
  TranSpec spec;
  spec.tstop = 1e-6;
  spec.dt = 0.0;
  EXPECT_THROW(transient(c, spec), InvalidParameter);
  spec.dt = 2e-6;
  EXPECT_THROW(transient(c, spec), InvalidParameter);
}

TEST(Transient, RecordEveryDecimatesOutput) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("v", a, kGround, Waveform::dc(1.0));
  c.add_resistor("r", a, kGround, 1.0);
  TranSpec spec;
  spec.tstop = 1e-6;
  spec.dt = 1e-9;
  spec.record_every = 10;
  const TranResult res = transient(c, spec);
  EXPECT_LT(res.time.size(), 150u);
  EXPECT_GT(res.time.size(), 50u);
}

TEST(Transient, UnrecordedNodeThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add_vsource("v", a, kGround, Waveform::dc(1.0));
  c.add_resistor("r", a, b, 1.0);
  c.add_resistor("r2", b, kGround, 1.0);
  TranSpec spec;
  spec.tstop = 1e-6;
  spec.dt = 1e-8;
  spec.record_nodes = {a};
  const TranResult res = transient(c, spec);
  EXPECT_NO_THROW(res.at(a));
  EXPECT_THROW(res.at(b), InvalidParameter);
}

}  // namespace
}  // namespace ivory::spice
