// Tests for the cycle-by-cycle + in-cycle dynamic models and the noise
// transfer functions, including consistency with the static model and
// cross-validation against switch-level simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"
#include "core/dynamic.hpp"
#include "spice/spice.hpp"

namespace ivory::core {
namespace {

// A 3:1 ladder with ~6 mohm output impedance: regulates 10-15 A loads to
// 1.0 V from its 1.1 V ideal output with headroom to spare.
ScDesign sc_design() {
  ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 3;
  d.m = 1;
  d.family = ScFamily::Ladder;
  d.c_fly_f = 4e-6;
  d.c_out_f = 1e-6;
  d.g_tot_s = 15000.0;
  d.f_sw_hz = 80e6;
  d.n_interleave = 8;
  return d;
}

std::vector<double> constant_load(double i, std::size_t n) { return std::vector<double>(n, i); }

TEST(ScCycle, FreeRunningSettlesToStaticPrediction) {
  const ScDesign d = sc_design();
  const double i_load = 10.0;
  const double dt = 2e-9;
  const auto wave =
      sc_cycle_response(d, 3.3, 0.0, constant_load(i_load, 20000), dt, ScControl::FreeRunning);
  const ScAnalysis a = analyze_sc(d, 3.3, i_load);
  // Average the settled tail.
  std::vector<double> tail(wave.v.end() - 5000, wave.v.end());
  EXPECT_NEAR(mean(tail), a.vout_v, 0.02);
}

TEST(ScCycle, LowerBoundControlRegulatesToVref) {
  const ScDesign d = sc_design();
  const double vref = 1.0;
  const auto wave = sc_cycle_response(d, 3.3, vref, constant_load(10.0, 20000), 2e-9);
  std::vector<double> tail(wave.v.end() - 5000, wave.v.end());
  EXPECT_NEAR(mean(tail), vref, 0.02);
}

TEST(ScCycle, LoadStepCausesDroopThenRecovery) {
  const ScDesign d = sc_design();
  std::vector<double> load(40000, 5.0);
  for (std::size_t k = 20000; k < load.size(); ++k) load[k] = 15.0;
  const auto wave = sc_cycle_response(d, 3.3, 1.0, load, 1e-9);
  // Settled means before and shortly after the step.
  std::vector<double> pre(wave.v.begin() + 15000, wave.v.begin() + 20000);
  std::vector<double> post(wave.v.begin() + 20000, wave.v.begin() + 24000);
  std::vector<double> late(wave.v.end() - 5000, wave.v.end());
  EXPECT_LT(min_value(post), mean(pre) - 0.003);  // Visible droop.
  EXPECT_NEAR(mean(late), 1.0, 0.03);             // Recovered to regulation.
}

TEST(ScCycle, MoreInterleavingSmoothsRipple) {
  ScDesign d = sc_design();
  d.n_interleave = 1;
  const auto w1 = sc_cycle_response(d, 3.3, 1.0, constant_load(10.0, 30000), 1e-9);
  d.n_interleave = 16;
  const auto w16 = sc_cycle_response(d, 3.3, 1.0, constant_load(10.0, 30000), 1e-9);
  std::vector<double> tail1(w1.v.end() - 10000, w1.v.end());
  std::vector<double> tail16(w16.v.end() - 10000, w16.v.end());
  EXPECT_LT(peak_to_peak(tail16), peak_to_peak(tail1));
}

// The headline validation (paper Fig. 9a): the cycle-by-cycle model tracks a
// switch-level transient of the same converter.
TEST(ScCycle, MatchesSpiceTransientSteadyState) {
  ScDesign d = sc_design();
  d.n_interleave = 1;
  d.f_sw_hz = 20e6;
  d.c_fly_f = 100e-9;
  d.c_out_f = 50e-9;
  d.g_tot_s = 200.0;
  const double i_load = 0.3;  // Moderate droop: the lumped model's regime.

  // Ivory model, free-running.
  const double dt = 1e-9;
  const auto wave = sc_cycle_response(d, 3.3, 0.0, constant_load(i_load, 8000), dt,
                                      ScControl::FreeRunning);
  std::vector<double> model_tail(wave.v.end() - 2000, wave.v.end());

  // Switch-level simulation of the identical design.
  const ScTopology topo = make_topology(d.n, d.m, d.family);
  const ChargeVectors cv = charge_vectors(topo);
  spice::Circuit ckt;
  const ScNetlistResult nodes =
      build_sc_netlist(ckt, topo, cv, 3.3, d.c_fly_f, d.g_tot_s, d.f_sw_hz, d.c_out_f);
  ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(i_load));
  spice::TranSpec spec;
  spec.tstop = 8e-6;
  spec.dt = 1e-9;
  spec.use_ic = true;
  spec.method = spice::Integrator::BackwardEuler;
  spec.record_nodes = {nodes.vout};
  const spice::TranResult res = spice::transient(ckt, spec);
  const std::vector<double>& vsim = res.at(nodes.vout);
  std::vector<double> sim_tail(vsim.end() - 2000, vsim.end());

  EXPECT_NEAR(mean(model_tail), mean(sim_tail), 0.03);
}

TEST(BuckCycle, SettlesToVref) {
  BuckDesign d;
  d.node = tech::Node::n32;
  d.l_per_phase_h = 10e-9;
  d.f_sw_hz = 50e6;
  d.n_phases = 4;
  d.w_high_m = 0.3;
  d.w_low_m = 0.4;
  d.c_out_f = 1e-6;
  const auto wave = buck_cycle_response(d, 3.3, 1.0, constant_load(10.0, 50000), 2e-9);
  std::vector<double> tail(wave.v.end() - 10000, wave.v.end());
  EXPECT_NEAR(mean(tail), 1.0, 0.02);
  EXPECT_LT(peak_to_peak(tail), 0.05);  // Stable, not limit-cycling wildly.
}

TEST(BuckCycle, RecoversFromLoadStep) {
  BuckDesign d;
  d.node = tech::Node::n32;
  d.l_per_phase_h = 10e-9;
  d.f_sw_hz = 50e6;
  d.n_phases = 4;
  d.w_high_m = 0.3;
  d.w_low_m = 0.4;
  d.c_out_f = 1e-6;
  std::vector<double> load(100000, 5.0);
  for (std::size_t k = 50000; k < load.size(); ++k) load[k] = 12.0;
  const auto wave = buck_cycle_response(d, 3.3, 1.0, load, 2e-9);
  std::vector<double> post(wave.v.begin() + 50000, wave.v.begin() + 60000);
  std::vector<double> late(wave.v.end() - 10000, wave.v.end());
  EXPECT_LT(min_value(post), 1.0 - 0.005);
  EXPECT_NEAR(mean(late), 1.0, 0.02);
}

TEST(LdoCycle, RegulatesWithBoundedRipple) {
  LdoDesign d;
  d.node = tech::Node::n32;
  d.w_pass_m = 0.2;
  d.n_bits = 8;
  d.f_clk_hz = 200e6;
  d.c_out_f = 0.5e-6;
  const auto wave = ldo_cycle_response(d, 3.3, 1.0, constant_load(5.0, 40000), 1e-9);
  std::vector<double> tail(wave.v.end() - 10000, wave.v.end());
  EXPECT_NEAR(mean(tail), 1.0, 0.02);
  EXPECT_LT(peak_to_peak(tail), 0.05);
}

TEST(InCycle, ConstantCurrentProducesNoDeviation) {
  const auto dev = in_cycle_response(constant_load(5.0, 1000), 1e-9, 20e-9, 1e-6);
  for (double v : dev) EXPECT_NEAR(v, 0.0, 1e-15);
}

TEST(InCycle, HighFrequencyToneIntegratesOnCapacitance) {
  // A tone far above the cycle rate: dv ~ (I/(w*C)) in amplitude.
  const double dt = 0.1e-9, f_noise = 500e6, amp = 2.0, c = 100e-9;
  std::vector<double> load(20000);
  for (std::size_t k = 0; k < load.size(); ++k)
    load[k] = 10.0 + amp * std::sin(2.0 * pi * f_noise * static_cast<double>(k) * dt);
  const auto dev = in_cycle_response(load, dt, 100e-9, c);
  const double expect = amp / (2.0 * pi * f_noise * c);
  EXPECT_NEAR(0.5 * peak_to_peak(dev), expect, 0.25 * expect);
}

TEST(InCycle, DeviationBoundedWithinCycle) {
  // Integration resets each cycle: a slow drift does not accumulate.
  const double dt = 1e-9;
  std::vector<double> load(10000);
  for (std::size_t k = 0; k < load.size(); ++k) load[k] = 0.001 * static_cast<double>(k);
  const auto dev = in_cycle_response(load, dt, 50e-9, 1e-7);
  EXPECT_LT(max_value(dev) - min_value(dev), 0.05);
}

TEST(GridNoise, ZeroForConstantCurrent) {
  const auto noise = grid_noise(constant_load(3.0, 100), 1e-9, 1e-3, 1e-12);
  for (double v : noise) EXPECT_NEAR(v, 0.0, 1e-15);
}

TEST(GridNoise, StepProducesLdiDtSpike) {
  std::vector<double> load(100, 1.0);
  for (std::size_t k = 50; k < load.size(); ++k) load[k] = 2.0;
  const double dt = 1e-9, l = 10e-12;
  const auto noise = grid_noise(load, dt, 0.0, l);
  // di/dt = 1 A / 1 ns at the step: spike = -L di/dt = -10 mV.
  EXPECT_NEAR(min_value(noise), -l * 1.0 / dt, 1e-6);
}

TEST(Combined, IsSumOfCycleAndInCycle) {
  const ScDesign d = sc_design();
  std::vector<double> load(5000);
  for (std::size_t k = 0; k < load.size(); ++k)
    load[k] = 10.0 + std::sin(0.01 * static_cast<double>(k));
  const double dt = 1e-9;
  const auto combined = sc_combined_response(d, 3.3, 1.0, load, dt);
  const auto cycle = sc_cycle_response(d, 3.3, 1.0, load, dt);
  const auto hf = in_cycle_response(
      load, dt, 1.0 / (d.f_sw_hz * static_cast<double>(d.n_interleave)), sc_output_hf_cap(d));
  for (std::size_t k = 0; k < load.size(); k += 500)
    EXPECT_NEAR(combined.v[k], cycle.v[k] + hf[k], 1e-12);
}

TEST(NoiseTransfer, AboveSwitchingFrequencyLoopVanishes) {
  NoiseTransfer nt;
  nt.f_sw_hz = 100e6;
  nt.c_hf_f = 1e-9;
  nt.r_out_ohm = 0.1;
  nt.ctrl_gain = 20.0;
  // At multiples of f_sw the ZOH nulls: H equals F_L exactly (paper eq. 5).
  for (double f : {1e8, 2e8, 5e8}) {
    const double h = std::abs(nt.rejection(f));
    const double fl = std::abs(nt.f_load(f));
    EXPECT_NEAR(h, fl, 0.05 * fl) << "f=" << f;
  }
}

TEST(NoiseTransfer, BelowSwitchingFrequencyLoopSuppresses) {
  NoiseTransfer nt;
  nt.f_sw_hz = 100e6;
  nt.c_hf_f = 1e-9;
  nt.r_out_ohm = 0.1;
  nt.ctrl_gain = 20.0;
  const double f = 1e6;  // Two decades below f_sw.
  EXPECT_LT(std::abs(nt.rejection(f)), std::abs(nt.f_load(f)) / 5.0);
}

TEST(NoiseTransfer, ZohShape) {
  NoiseTransfer nt;
  nt.f_sw_hz = 100e6;
  // |F_sw| -> 1 at low frequency, 0 at exact multiples of f_sw.
  EXPECT_NEAR(std::abs(nt.f_zoh(1e3)), 1.0, 1e-4);
  EXPECT_NEAR(std::abs(nt.f_zoh(100e6)), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(nt.f_zoh(200e6)), 0.0, 1e-9);
}

TEST(Dynamic, InvalidInputsThrow) {
  const ScDesign d = sc_design();
  EXPECT_THROW(sc_cycle_response(d, 3.3, 1.0, {}, 1e-9), InvalidParameter);
  EXPECT_THROW(sc_cycle_response(d, 3.3, 1.0, {1.0, 1.0}, 0.0), InvalidParameter);
  EXPECT_THROW(in_cycle_response({1.0, 1.0}, 1e-9, 0.0, 1e-9), InvalidParameter);
  EXPECT_THROW(grid_noise({1.0, 1.0}, 1e-9, -1.0, 0.0), InvalidParameter);
}

TEST(Dynamic, MismatchedTraceLengthsThrowWithSizes) {
  // The cycle loop indexes vin/vref/load with one shared index; mismatched
  // lengths must be an explicit error, not out-of-bounds reads.
  const ScDesign d = sc_design();
  const std::vector<double> load = constant_load(10.0, 64);
  const std::vector<double> vin_short(32, 3.3);
  const std::vector<double> vref_ok(64, 1.0);
  try {
    sc_cycle_response_traces(d, vin_short, vref_ok, load, 2e-9);
    FAIL() << "expected InvalidParameter";
  } catch (const InvalidParameter& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("share length"), std::string::npos) << msg;
    EXPECT_NE(msg.find("32"), std::string::npos) << msg;   // The offending size...
    EXPECT_NE(msg.find("64"), std::string::npos) << msg;   // ...and the expected one.
  }
  const std::vector<double> vin_ok(64, 3.3);
  const std::vector<double> vref_long(65, 1.0);
  EXPECT_THROW(sc_cycle_response_traces(d, vin_ok, vref_long, load, 2e-9), InvalidParameter);
}

TEST(WindowMean, CycleEdgesSurviveFpResidue) {
  // Pathological f_sw * dt: dt = 1/3e6 is not exactly representable, and the
  // cycle period 2*dt recovered as k * t_cycle / dt undershoots an integer by
  // a few ULP (k = 31 gives 61.999...93, truncating to sample 61 instead of
  // 62). The trace alternates per cycle, so any off-by-one at a cycle edge
  // mixes samples from the neighbouring cycle and shifts the mean off 0/1.
  const double dt = 1.0 / 3e6;
  const double t_cycle = 2.0 * dt;
  std::vector<double> trace(400);
  for (std::size_t k = 0; k < trace.size(); ++k) trace[k] = (k / 2) % 2 ? 1.0 : 0.0;
  const WindowMean wm(trace, dt);
  // Sanity: the residue really is there for this pair.
  EXPECT_LT(31.0 * t_cycle / dt, 62.0);
  for (std::size_t k = 0; k + 1 < trace.size() / 2; ++k) {
    const double want = k % 2 ? 1.0 : 0.0;
    EXPECT_EQ(wm.over_cycle(k, t_cycle), want) << "cycle " << k;
    const double t0 = static_cast<double>(k) * t_cycle;
    EXPECT_EQ(wm(t0, t0 + t_cycle), want) << "cycle " << k;
  }
}

TEST(WindowMean, IndexOfSnapsOnlyNearIntegers) {
  const std::vector<double> trace(16, 1.0);
  const WindowMean wm(trace, 1.0);
  EXPECT_EQ(wm.index_of(5.0), 5u);
  EXPECT_EQ(wm.index_of(std::nextafter(5.0, 0.0)), 5u);   // snapped up
  EXPECT_EQ(wm.index_of(std::nextafter(5.0, 10.0)), 5u);  // snapped down
  EXPECT_EQ(wm.index_of(5.4), 5u);                        // plain truncation
  EXPECT_EQ(wm.index_of(-1.0), 0u);
}

}  // namespace
}  // namespace ivory::core
