// Tests for the advanced-user hooks (paper Section 3.2): plugging in a
// custom switch topology and overriding technology parameters directly.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "core/ivory.hpp"

namespace ivory::core {
namespace {

// A custom 2:1 doubler wired by hand (equivalent to the built-in family but
// constructed through the public topology API, as an advanced user would).
std::shared_ptr<ScTopology> custom_doubler() {
  auto t = std::make_shared<ScTopology>();
  t->name = "user 2:1";
  t->n = 2;
  t->m = 1;
  const int p = t->new_node();
  const int q = t->new_node();
  t->caps.push_back({p, q, 0.5, false});
  t->switches.push_back({0, kScVin, p});
  t->switches.push_back({0, q, kScVout});
  t->switches.push_back({1, p, kScVout});
  t->switches.push_back({1, q, kScGnd});
  return t;
}

TEST(CustomTopology, ChargeVectorsMatchBuiltin) {
  const ChargeVectors user = charge_vectors(*custom_doubler());
  const ChargeVectors builtin = charge_vectors(series_parallel(2));
  EXPECT_NEAR(user.sum_ac(), builtin.sum_ac(), 1e-9);
  EXPECT_NEAR(user.sum_ar(), builtin.sum_ar(), 1e-9);
  EXPECT_NEAR(user.q_in, builtin.q_in, 1e-9);
}

TEST(CustomTopology, AnalyzeScUsesPluggedTopology) {
  ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.custom_topology = custom_doubler();
  d.n = 99;  // Ignored when a custom topology is set.
  d.m = 98;
  d.c_fly_f = 400e-9;
  d.c_out_f = 100e-9;
  d.g_tot_s = 2000.0;
  d.f_sw_hz = 100e6;
  const ScAnalysis a = analyze_sc(d, 1.8, 2.0);
  EXPECT_NEAR(a.vout_ideal_v, 0.9, 1e-9);
  EXPECT_GT(a.efficiency, 0.6);
  EXPECT_LT(a.efficiency, 1.0);

  // Equivalent built-in design gives the same answer.
  ScDesign b = d;
  b.custom_topology.reset();
  b.n = 2;
  b.m = 1;
  b.family = ScFamily::SeriesParallel;
  const ScAnalysis a2 = analyze_sc(b, 1.8, 2.0);
  EXPECT_NEAR(a.rout_ohm, a2.rout_ohm, 1e-9);
  EXPECT_NEAR(a.efficiency, a2.efficiency, 0.02);  // kappa differs slightly.
}

TEST(CustomTopology, DynamicModelAcceptsPluggedTopology) {
  ScDesign d;
  d.custom_topology = custom_doubler();
  d.cap_kind = tech::CapKind::DeepTrench;
  d.c_fly_f = 100e-9;
  d.c_out_f = 500e-9;
  d.g_tot_s = 2000.0;
  d.f_sw_hz = 40e6;
  const auto wave = sc_cycle_response(d, 2.0, 0.85, std::vector<double>(10000, 0.05), 2e-9);
  std::vector<double> tail(wave.v.end() - 2000, wave.v.end());
  double m = 0.0;
  for (double v : tail) m += v;
  EXPECT_NEAR(m / tail.size(), 0.85, 0.03);
}

TEST(CustomTopology, BrokenNetworkRejected) {
  // A topology whose output is never connected must be diagnosed.
  auto t = std::make_shared<ScTopology>();
  const int p = t->new_node();
  const int q = t->new_node();
  t->caps.push_back({p, q, 0.5, false});
  t->switches.push_back({0, kScVin, p});
  t->switches.push_back({1, q, kScGnd});
  EXPECT_THROW(charge_vectors(*t), StructuralError);
}

TEST(CustomTech, CapacitorOverrideBypassesDatabase) {
  ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::MosCap;
  d.n = 2;
  d.m = 1;
  d.c_fly_f = 400e-9;
  d.c_out_f = 100e-9;
  d.g_tot_s = 2000.0;
  d.f_sw_hz = 100e6;
  const ScAnalysis base = analyze_sc(d, 1.8, 2.0);

  // A user-supplied exotic capacitor: 1 uF/mm^2, 0.1% bottom plate.
  tech::CapacitorTech exotic{1.0, 0.001, 1e-7, 10e-12, 2.0};
  d.custom_cap = exotic;
  const ScAnalysis ex = analyze_sc(d, 1.8, 2.0);
  EXPECT_LT(ex.area_caps_m2, base.area_caps_m2 / 10.0);
  EXPECT_LT(ex.p_bottom_plate_w, base.p_bottom_plate_w / 10.0);
  EXPECT_GT(ex.efficiency, base.efficiency);
}

}  // namespace
}  // namespace ivory::core
