// Scenario-engine tests: power-state residency sweeps over hybrid
// VRM/IVR delivery. The contracts locked down here are the subsystem's
// spine: byte-identical results at any thread count, residency-weighted
// aggregation, the FlexWatts gating asymmetry (a power-gated IVR domain
// draws nothing, a power-gated VRM domain still pays the converter's fixed
// losses), and the digital-LDO topology reaching end to end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/outcome.hpp"
#include "common/parallel.hpp"
#include "core/report_json.hpp"
#include "scenario/scenario.hpp"
#include "workload/workload.hpp"

namespace ivory::scenario {
namespace {

/// Small, fast spec: two states, short traces. Residencies are exact binary
/// fractions so weighting sums reproduce bitwise.
ScenarioSpec fast_spec() {
  ScenarioSpec spec;
  spec.name = "test";
  spec.states = {{"hi", 1.0, 1.0e9, 1.0, 0.75, false}, {"lo", 0.9, 0.8e9, 0.5, 0.25, false}};
  spec.duration_s = 4e-6;
  spec.dt_s = 4e-9;
  return spec;
}

core::SystemParams small_sys() {
  core::SystemParams sys;
  sys.p_load_w = 10.0;
  return sys;
}

TEST(Scenario, PresetsAreValidResidencyMixes) {
  for (const std::string& name : workload::residency_preset_names()) {
    const std::vector<workload::PowerStateSpec> states = workload::residency_preset(name);
    EXPECT_NO_THROW(workload::check_power_states(states)) << name;
    EXPECT_GE(states.size(), 2u) << name;
  }
  EXPECT_THROW(workload::residency_preset("no-such-preset"), InvalidParameter);
}

TEST(Scenario, BadResidencySumNamesTheProblem) {
  ScenarioSpec spec = fast_spec();
  spec.states[0].residency = 0.9;  // 0.9 + 0.25 != 1
  try {
    evaluate_scenario(small_sys(), core::IvrTopology::SwitchedCapacitor, 2, spec);
    FAIL() << "expected InvalidParameter";
  } catch (const InvalidParameter& e) {
    EXPECT_NE(std::string(e.what()).find("residenc"), std::string::npos) << e.what();
  }
}

TEST(Scenario, DomainFractionsMustSumToOne) {
  ScenarioSpec spec = fast_spec();
  DomainSpec a, b;
  a.name = "core";
  a.power_frac = 0.7;
  b.name = "uncore";
  b.power_frac = 0.7;  // 1.4 total
  spec.domains = {a, b};
  EXPECT_THROW(
      evaluate_scenario(small_sys(), core::IvrTopology::SwitchedCapacitor, 2, spec),
      InvalidParameter);
}

TEST(Scenario, WeightedAggregatesAreConsistentWithCells) {
  SweepReport report;
  const ScenarioReport r = evaluate_scenario(
      small_sys(), core::IvrTopology::SwitchedCapacitor, 2, fast_spec(), &report);
  ASSERT_TRUE(r.complete);
  ASSERT_EQ(r.cells.size(), 2u);
  double p_out = 0.0, p_in = 0.0, res_sum = 0.0;
  for (const StateEval& c : r.cells) {
    p_out += c.residency * c.p_out_w;
    p_in += c.residency * c.p_in_w;
    res_sum += c.residency;
    EXPECT_GE(c.droop_pp_v, 0.0);
  }
  EXPECT_DOUBLE_EQ(res_sum, 1.0);
  EXPECT_DOUBLE_EQ(r.p_out_avg_w, p_out);
  EXPECT_DOUBLE_EQ(r.p_in_avg_w, p_in);
  EXPECT_DOUBLE_EQ(r.weighted_efficiency, p_out / p_in);
  EXPECT_GT(r.weighted_efficiency, 0.0);
  EXPECT_LT(r.weighted_efficiency, 1.0);
}

TEST(Scenario, GatedAsymmetryIvrFreeVrmPaysFixedLoss) {
  ScenarioSpec spec = fast_spec();
  spec.states = {{"on", 1.0, 1.0e9, 1.0, 0.5, false}, {"off", 0.7, 0.2e9, 0.05, 0.5, true}};
  DomainSpec ivr_dom, vrm_dom;
  ivr_dom.name = "core";
  ivr_dom.power_frac = 0.5;
  ivr_dom.delivery = Delivery::OnChipIvr;
  vrm_dom.name = "uncore";
  vrm_dom.power_frac = 0.5;
  vrm_dom.delivery = Delivery::OffChipVrm;
  spec.domains = {ivr_dom, vrm_dom};

  const ScenarioReport r =
      evaluate_scenario(small_sys(), core::IvrTopology::SwitchedCapacitor, 2, spec);
  ASSERT_TRUE(r.complete);
  ASSERT_EQ(r.cells.size(), 4u);
  const StateEval* ivr_gated = nullptr;
  const StateEval* vrm_gated = nullptr;
  for (const StateEval& c : r.cells) {
    if (!c.gated) continue;
    if (c.delivery == Delivery::OnChipIvr) ivr_gated = &c;
    if (c.delivery == Delivery::OffChipVrm) vrm_gated = &c;
  }
  ASSERT_NE(ivr_gated, nullptr);
  ASSERT_NE(vrm_gated, nullptr);
  // A power-gated IVR domain is disconnected: no output, no input.
  EXPECT_EQ(ivr_gated->p_out_w, 0.0);
  EXPECT_EQ(ivr_gated->p_in_w, 0.0);
  // A power-gated VRM domain still pays the board converter's fixed loss.
  EXPECT_EQ(vrm_gated->p_out_w, 0.0);
  EXPECT_GT(vrm_gated->p_in_w, 0.0);
}

TEST(Scenario, VrmOnlyScenarioSkipsTheIvrDesign) {
  ScenarioSpec spec = fast_spec();
  DomainSpec dom;
  dom.name = "core";
  dom.power_frac = 1.0;
  dom.delivery = Delivery::OffChipVrm;
  spec.domains = {dom};
  const ScenarioReport r =
      evaluate_scenario(small_sys(), core::IvrTopology::SwitchedCapacitor, 2, spec);
  EXPECT_FALSE(r.has_ivr);
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.weighted_efficiency, 0.0);
}

TEST(Scenario, DigitalLdoTopologyReachesEndToEnd) {
  core::SystemParams sys = small_sys();
  sys.vin_v = 1.5;  // Low dropout: the regime linear regulators are for.
  SweepReport report;
  const ScenarioReport r = evaluate_scenario(sys, core::IvrTopology::DigitalLdo, 2,
                                             fast_spec(), &report);
  ASSERT_TRUE(r.has_ivr);
  EXPECT_EQ(r.design.topology, core::IvrTopology::DigitalLdo);
  EXPECT_TRUE(r.design.feasible);
  // A linear pass device cannot beat vout/vin.
  for (const StateEval& c : r.cells)
    if (!c.gated) EXPECT_LE(c.efficiency, c.v_v / sys.vin_v + 1e-12);
}

TEST(Scenario, BytesIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = fast_spec();
  const core::SystemParams sys = small_sys();
  std::string reference;
  for (const unsigned threads : {1u, 2u, 4u}) {
    par::set_global_threads(threads);
    const ScenarioReport r =
        evaluate_scenario(sys, core::IvrTopology::SwitchedCapacitor, 2, spec);
    const std::string bytes = to_json(r).write_canonical();
    if (reference.empty())
      reference = bytes;
    else
      EXPECT_EQ(bytes, reference) << "thread count " << threads << " changed bytes";
  }
  par::set_global_threads(1);
  EXPECT_FALSE(reference.empty());
}

TEST(Scenario, InfeasibleStateIsQuarantinedNotFatal) {
  // A step-down SC ratio picked for 1.0 V cannot regulate *up* to 3.2 V:
  // that cell dies inside its quarantine, the rest of the sweep survives,
  // and the report carries the diagnostics.
  ScenarioSpec spec = fast_spec();
  spec.states = {{"hi", 1.0, 1.0e9, 1.0, 0.5, false}, {"deep", 3.2, 1.5e9, 1.0, 0.5, false}};
  SweepReport report;
  const ScenarioReport r = evaluate_scenario(
      small_sys(), core::IvrTopology::SwitchedCapacitor, 2, spec, &report);
  EXPECT_FALSE(r.complete);
  ASSERT_EQ(report.skips.size(), 1u);
  EXPECT_EQ(report.skips[0].code, ErrorCode::InvalidParameter);
  EXPECT_NE(report.skips[0].detail.find("deep"), std::string::npos);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_EQ(r.cells[0].state, "hi");
}

}  // namespace
}  // namespace ivory::scenario
