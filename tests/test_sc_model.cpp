// Tests for the SC static model: impedances, losses, regulation, ripple,
// area, and technology trends.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/sc_model.hpp"

namespace ivory::core {
namespace {

// A 3:1 ladder sized for the 20 A GPU case-study load: ~6 mohm output
// impedance at 80 MHz.
ScDesign reference_design() {
  ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 3;
  d.m = 1;
  d.family = ScFamily::Ladder;
  d.c_fly_f = 4e-6;
  d.c_out_f = 1e-6;
  d.g_tot_s = 15000.0;
  d.f_sw_hz = 80e6;
  d.n_interleave = 16;
  return d;
}

// Same power train with a high design-frequency ceiling, for regulation
// tests (the controller only ever slows down from the design frequency).
ScDesign regulated_design() {
  ScDesign d = reference_design();
  d.f_sw_hz = 600e6;
  return d;
}

TEST(ScModel, BasicSanity) {
  const ScAnalysis a = analyze_sc(reference_design(), 3.3, 20.0);
  EXPECT_GT(a.efficiency, 0.5);
  EXPECT_LT(a.efficiency, 1.0);
  EXPECT_NEAR(a.vout_ideal_v, 1.1, 1e-12);
  EXPECT_LT(a.vout_v, a.vout_ideal_v);
  EXPECT_GT(a.vout_v, 0.8);
  EXPECT_GT(a.rout_ohm, 0.0);
  EXPECT_GT(a.area_m2, 0.0);
}

TEST(ScModel, PowerBookkeepingCloses) {
  const ScAnalysis a = analyze_sc(reference_design(), 3.3, 20.0);
  // p_in - p_out must equal the sum of all modeled losses.
  const double losses = a.p_conduction_w + a.p_gate_w + a.p_bottom_plate_w + a.p_leakage_w +
                        a.p_peripheral_w;
  EXPECT_NEAR(a.p_in_w - a.p_out_w, losses, 1e-9 * a.p_in_w);
  EXPECT_NEAR(a.efficiency, a.p_out_w / a.p_in_w, 1e-12);
}

TEST(ScModel, ImpedanceLimitsBehave) {
  ScDesign d = reference_design();
  const ScAnalysis a1 = analyze_sc(d, 3.3, 20.0);
  d.f_sw_hz *= 4.0;
  const ScAnalysis a2 = analyze_sc(d, 3.3, 20.0);
  // R_SSL scales as 1/f; R_FSL is frequency independent.
  EXPECT_NEAR(a2.rssl_ohm, a1.rssl_ohm / 4.0, 1e-12);
  EXPECT_NEAR(a2.rfsl_ohm, a1.rfsl_ohm, 1e-15);
  EXPECT_LT(a2.rout_ohm, a1.rout_ohm);
}

TEST(ScModel, EfficiencyVsFrequencyHasInteriorPeak) {
  // Low f: SSL conduction dominates. High f: gate drive and bottom plate
  // dominate. A light load keeps the output alive across the whole sweep.
  ScDesign d = reference_design();
  double best_f = 0.0, best_eff = 0.0;
  double eff_lo = 0.0, eff_hi = 0.0;
  for (double f = 2e6; f <= 2e9; f *= 1.3) {
    d.f_sw_hz = f;
    const double eff = analyze_sc(d, 3.3, 2.0).efficiency;
    if (f < 3e6) eff_lo = eff;
    eff_hi = eff;
    if (eff > best_eff) {
      best_eff = eff;
      best_f = f;
    }
  }
  EXPECT_GT(best_eff, eff_lo);
  EXPECT_GT(best_eff, eff_hi);
  EXPECT_GT(best_f, 2e6);
  EXPECT_LT(best_f, 2e9);
}

TEST(ScModel, InterleavingCutsRippleNotImpedance) {
  ScDesign d = reference_design();
  d.n_interleave = 1;
  const ScAnalysis a1 = analyze_sc(d, 3.3, 20.0);
  d.n_interleave = 8;
  const ScAnalysis a8 = analyze_sc(d, 3.3, 20.0);
  EXPECT_NEAR(a8.ripple_pp_v, a1.ripple_pp_v / 8.0, 1e-9);
  EXPECT_NEAR(a8.rout_ohm, a1.rout_ohm, 1e-15);
}

TEST(ScModel, DeepTrenchBeatsMosCapAtSameCapacitance) {
  ScDesign d = reference_design();
  d.cap_kind = tech::CapKind::DeepTrench;
  const ScAnalysis trench = analyze_sc(d, 3.3, 20.0);
  d.cap_kind = tech::CapKind::MosCap;
  const ScAnalysis mos = analyze_sc(d, 3.3, 20.0);
  // Lower bottom-plate ratio -> less switching loss; higher density -> less area.
  EXPECT_GT(trench.efficiency, mos.efficiency);
  EXPECT_LT(trench.area_caps_m2, mos.area_caps_m2);
}

TEST(ScModel, TechnologyScalingImprovesEfficiency) {
  // Compare at a stress level (0.8 V per switch) that core devices tolerate
  // at both nodes, so the comparison isolates the Ron*Cg improvement.
  ScDesign d = reference_design();
  d.n = 2;
  d.m = 1;
  d.node = tech::Node::n32;
  const double eff32 = analyze_sc(d, 1.6, 5.0).efficiency;
  d.node = tech::Node::n10;
  const double eff10 = analyze_sc(d, 1.6, 5.0).efficiency;
  EXPECT_GT(eff10, eff32);
}

TEST(ScModel, RegulatedHitsTarget) {
  const ScDesign d = regulated_design();
  const ScRegulated r = analyze_sc_regulated(d, 3.3, 1.0, 20.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.analysis.vout_v, 1.0, 1e-6);
  EXPECT_LE(r.f_sw_used_hz, d.f_sw_hz * 1.001);
}

TEST(ScModel, RegulatedEfficiencyFollowsVoutLinearly) {
  // In the linear regime below the peak (Fig. 7), SC efficiency tracks
  // vout/videal: regulating lower costs efficiency roughly proportionally.
  const ScDesign d = regulated_design();
  const ScRegulated hi = analyze_sc_regulated(d, 3.3, 0.95, 20.0);
  const ScRegulated lo = analyze_sc_regulated(d, 3.3, 0.80, 20.0);
  ASSERT_TRUE(hi.feasible);
  ASSERT_TRUE(lo.feasible);
  EXPECT_GT(hi.analysis.efficiency, lo.analysis.efficiency);
  const double ratio = lo.analysis.efficiency / hi.analysis.efficiency;
  EXPECT_NEAR(ratio, 0.80 / 0.95, 0.08);
}

TEST(ScModel, RegulationPastCliffInfeasible) {
  // Asking for vout at (or above) the ideal ratio cannot be regulated.
  const ScDesign d = regulated_design();
  EXPECT_FALSE(analyze_sc_regulated(d, 3.3, 1.10, 20.0).feasible);
  EXPECT_FALSE(analyze_sc_regulated(d, 3.3, 1.2, 20.0).feasible);
}

TEST(ScModel, HeavyLoadPastFslFloorInfeasible) {
  ScDesign d = regulated_design();
  d.g_tot_s = 50.0;  // Weak switches: R_FSL floor above the needed headroom.
  EXPECT_FALSE(analyze_sc_regulated(d, 3.3, 1.0, 20.0).feasible);
}

TEST(ScModel, OutputHfCapCombinesOutAndFly) {
  ScDesign d = reference_design();
  EXPECT_NEAR(sc_output_hf_cap(d), d.c_out_f + 0.5 * d.c_fly_f, 1e-18);
}

TEST(ScModel, InvalidDesignsThrow) {
  ScDesign d = reference_design();
  d.c_fly_f = 0.0;
  EXPECT_THROW(analyze_sc(d, 3.3, 20.0), InvalidParameter);
  d = reference_design();
  d.n = 1;
  EXPECT_THROW(analyze_sc(d, 3.3, 20.0), InvalidParameter);
  d = reference_design();
  EXPECT_THROW(analyze_sc(d, 3.3, 0.0), InvalidParameter);
  EXPECT_THROW(analyze_sc(d, -1.0, 20.0), InvalidParameter);
}

TEST(ScModel, CollapsedOutputThrows) {
  ScDesign d = reference_design();
  d.f_sw_hz = 1e4;  // R_SSL enormous: output collapses under 20 A.
  EXPECT_THROW(analyze_sc(d, 3.3, 20.0), InvalidParameter);
}

}  // namespace
}  // namespace ivory::core
