// Unit tests for piecewise-linear interpolation and the deterministic RNG.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/interp.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace ivory {
namespace {

TEST(PiecewiseLinear, InterpolatesBetweenBreakpoints) {
  const PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_NEAR(f(0.5), 5.0, 1e-12);
  EXPECT_NEAR(f(1.0), 10.0, 1e-12);
  EXPECT_NEAR(f(1.75), 2.5, 1e-12);
}

TEST(PiecewiseLinear, ClampsOutsideRange) {
  const PiecewiseLinear f({1.0, 2.0}, {3.0, 7.0});
  EXPECT_NEAR(f(0.0), 3.0, 1e-15);
  EXPECT_NEAR(f(5.0), 7.0, 1e-15);
}

TEST(PiecewiseLinear, NonIncreasingXThrows) {
  EXPECT_THROW(PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), InvalidParameter);
  EXPECT_THROW(PiecewiseLinear({1.0, 0.5}, {1.0, 2.0}), InvalidParameter);
}

TEST(PiecewiseLinear, IntegralExactForTriangle) {
  const PiecewiseLinear f({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  EXPECT_NEAR(f.integral(0.0, 2.0), 1.0, 1e-12);
  EXPECT_NEAR(f.integral(0.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(f.integral(0.5, 1.5), 0.75, 1e-12);
}

TEST(PiecewiseLinear, IntegralReversedBoundsNegates) {
  const PiecewiseLinear f({0.0, 1.0}, {2.0, 2.0});
  EXPECT_NEAR(f.integral(1.0, 0.0), -2.0, 1e-12);
}

TEST(PiecewiseLinear, IntegralIncludesClampedRegions) {
  const PiecewiseLinear f({0.0, 1.0}, {1.0, 1.0});
  EXPECT_NEAR(f.integral(-1.0, 2.0), 3.0, 1e-12);
}

TEST(SampleUniform, EndpointsIncluded) {
  const PiecewiseLinear f({0.0, 1.0}, {0.0, 1.0});
  const std::vector<double> s = sample_uniform(f, 0.0, 1.0, 5);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_NEAR(s.front(), 0.0, 1e-15);
  EXPECT_NEAR(s.back(), 1.0, 1e-15);
  EXPECT_NEAR(s[2], 0.5, 1e-12);
}

TEST(Rng, DeterministicAcrossInstances) {
  Pcg32 a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Pcg32 r(123);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Pcg32 r(99);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(r.normal());
  EXPECT_NEAR(mean(xs), 0.0, 0.03);
  EXPECT_NEAR(stddev(xs), 1.0, 0.03);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Pcg32 r(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (r.bernoulli(0.25)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace ivory
