// Unit tests for descriptive statistics and box-plot summaries.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace ivory {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(variance(xs), 4.0, 1e-12);
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
}

TEST(Stats, MinMaxPeakToPeak) {
  const std::vector<double> xs{0.95, 1.02, 0.87, 1.0};
  EXPECT_NEAR(min_value(xs), 0.87, 1e-15);
  EXPECT_NEAR(max_value(xs), 1.02, 1e-15);
  EXPECT_NEAR(peak_to_peak(xs), 0.15, 1e-12);
}

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW(mean({}), InvalidParameter);
  EXPECT_THROW(peak_to_peak({}), InvalidParameter);
  EXPECT_THROW(box_stats({}), InvalidParameter);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(quantile(xs, 0.0), 1.0, 1e-15);
  EXPECT_NEAR(quantile(xs, 1.0), 4.0, 1e-15);
  EXPECT_NEAR(quantile(xs, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.25), 1.75, 1e-12);
}

TEST(Stats, QuantileSingleElement) {
  EXPECT_NEAR(quantile({42.0}, 0.5), 42.0, 1e-15);
}

TEST(Stats, BoxStatsQuartilesOrdered) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const BoxStats b = box_stats(xs);
  EXPECT_LE(b.minimum, b.whisker_low);
  EXPECT_LE(b.whisker_low, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.whisker_high);
  EXPECT_LE(b.whisker_high, b.maximum);
  EXPECT_NEAR(b.median, 50.5, 1e-9);
  EXPECT_EQ(b.n, 100u);
}

TEST(Stats, BoxStatsOutlierBeyondWhisker) {
  // 20 values near 1.0 plus one far outlier: whisker excludes the outlier.
  std::vector<double> xs(20, 1.0);
  for (int i = 0; i < 20; ++i) xs[static_cast<std::size_t>(i)] += 0.01 * i;
  xs.push_back(50.0);
  const BoxStats b = box_stats(xs);
  EXPECT_LT(b.whisker_high, 50.0);
  EXPECT_NEAR(b.maximum, 50.0, 1e-12);
}

TEST(Stats, RmsDeviationOfConstantIsZero) {
  EXPECT_NEAR(rms_deviation({5.0, 5.0, 5.0}), 0.0, 1e-15);
}

TEST(Stats, RmsDeviationMatchesStddev) {
  const std::vector<double> xs{1.0, 3.0, -2.0, 0.5};
  EXPECT_NEAR(rms_deviation(xs), stddev(xs), 1e-12);
}

}  // namespace
}  // namespace ivory
