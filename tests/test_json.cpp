// Tests for the strict JSON codec (src/common/json.*): round-trip fixpoint,
// rejection of every malformed class the service must never accept, and the
// canonical form the result cache hashes.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>

#include "common/error.hpp"

namespace ivory::json {
namespace {

// ---------------------------------------------------------------------------
// Basics
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_EQ(Value::parse("true").as_bool(), true);
  EXPECT_EQ(Value::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Value::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Value::parse("-0.5e2").as_number(), -50.0);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesContainersAndWhitespace) {
  const Value v = Value::parse(" { \"a\" : [ 1 , 2 , 3 ] , \"b\" : { } } ");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
  ASSERT_NE(v.find("b"), nullptr);
  EXPECT_TRUE(v.find("b")->as_object().empty());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, WriteIsCompactAndInsertionOrdered) {
  Value obj{Value::Object{}};
  obj.set("zeta", 1);
  obj.set("alpha", Value::Array{Value(true), Value(nullptr)});
  EXPECT_EQ(obj.write(), "{\"zeta\":1,\"alpha\":[true,null]}");
  EXPECT_EQ(obj.write_canonical(), "{\"alpha\":[true,null],\"zeta\":1}");
}

TEST(Json, NumbersUseShortestRoundTrip) {
  EXPECT_EQ(Value(3.0).write(), "3");
  EXPECT_EQ(Value(0.1).write(), "0.1");
  EXPECT_EQ(Value(-0.0).write(), "-0");
  EXPECT_EQ(Value(1e22).write(), "1e+22");
  // The two spellings of the same double normalize to identical bytes —
  // the property the cache key depends on.
  EXPECT_EQ(Value::parse("4e-06").write(), Value::parse("0.000004").write());
  EXPECT_EQ(Value::parse("10.0").write(), Value::parse("1e1").write());
}

// ---------------------------------------------------------------------------
// Round-trip fixpoint property: parse(write(v)) == v and the bytes are a
// fixpoint (write(parse(write(v))) == write(v)), over randomized documents.
// ---------------------------------------------------------------------------

Value random_value(std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 3 : 5);
  switch (pick(rng)) {
    case 0:
      return Value(nullptr);
    case 1:
      return Value(rng() % 2 == 0);
    case 2: {
      // Mix of integers, small reals and harsh exponents.
      std::uniform_int_distribution<int> kind(0, 2);
      switch (kind(rng)) {
        case 0:
          return Value(static_cast<int>(rng() % 20000) - 10000);
        case 1:
          return Value(std::uniform_real_distribution<double>(-1e3, 1e3)(rng));
        default:
          return Value(std::uniform_real_distribution<double>(-1.0, 1.0)(rng) * 1e-18);
      }
    }
    case 3: {
      std::string s;
      const std::size_t n = rng() % 12;
      for (std::size_t i = 0; i < n; ++i) {
        // Includes characters that must be escaped.
        static const char alphabet[] = "ab\"\\\n\t/\x01 é€";
        s.push_back(alphabet[rng() % (sizeof alphabet - 1)]);
      }
      return Value(std::move(s));
    }
    case 4: {
      Value::Array a;
      const std::size_t n = rng() % 4;
      for (std::size_t i = 0; i < n; ++i) a.push_back(random_value(rng, depth - 1));
      return Value(std::move(a));
    }
    default: {
      Value::Object o;
      const std::size_t n = rng() % 4;
      for (std::size_t i = 0; i < n; ++i)
        o.emplace_back("k" + std::to_string(i), random_value(rng, depth - 1));
      return Value(std::move(o));
    }
  }
}

TEST(Json, RoundTripFixpointProperty) {
  std::mt19937 rng(20260807);
  for (int trial = 0; trial < 500; ++trial) {
    const Value v = random_value(rng, 4);
    const std::string bytes = v.write();
    const Value back = Value::parse(bytes);
    EXPECT_EQ(back, v) << bytes;
    EXPECT_EQ(back.write(), bytes);
    // Canonicalization is idempotent too.
    const std::string canon = v.write_canonical();
    EXPECT_EQ(Value::parse(canon).write_canonical(), canon);
  }
}

// ---------------------------------------------------------------------------
// Strictness: everything the service must reject.
// ---------------------------------------------------------------------------

TEST(Json, RejectsNonFiniteLiterals) {
  EXPECT_THROW(Value::parse("NaN"), ParseError);
  EXPECT_THROW(Value::parse("nan"), ParseError);
  EXPECT_THROW(Value::parse("Infinity"), ParseError);
  EXPECT_THROW(Value::parse("-Infinity"), ParseError);
  EXPECT_THROW(Value::parse("inf"), ParseError);
  // Literals that overflow double are NOT silently clamped to inf.
  EXPECT_THROW(Value::parse("1e999"), ParseError);
  EXPECT_THROW(Value::parse("-1e999"), ParseError);
}

TEST(Json, RejectsNonFiniteOnWrite) {
  EXPECT_THROW(Value(std::numeric_limits<double>::quiet_NaN()).write(), NumericalError);
  EXPECT_THROW(Value(std::numeric_limits<double>::infinity()).write_canonical(),
               NumericalError);
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(Value::parse("{\"a\":1,\"a\":2}"), ParseError);
  EXPECT_THROW(Value::parse("{\"x\":{\"a\":1,\"a\":1}}"), ParseError);
  // Distinct keys are fine even when one prefixes the other.
  EXPECT_NO_THROW(Value::parse("{\"a\":1,\"ab\":2}"));
}

TEST(Json, RejectsExcessiveDepth) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 80; ++i) deep += "]";
  EXPECT_THROW(Value::parse(deep), ParseError);       // default max_depth = 64
  EXPECT_NO_THROW(Value::parse(deep, 128));           // explicit allowance
  std::string ok(40, '[');
  ok += "1";
  ok += std::string(40, ']');
  EXPECT_NO_THROW(Value::parse(ok));
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW(Value::parse("1 2"), ParseError);
  EXPECT_THROW(Value::parse("{} x"), ParseError);
  EXPECT_THROW(Value::parse("truefalse"), ParseError);
  EXPECT_THROW(Value::parse(""), ParseError);
  EXPECT_NO_THROW(Value::parse("{}  "));  // trailing whitespace is not garbage
}

TEST(Json, RejectsMalformedSyntax) {
  EXPECT_THROW(Value::parse("{"), ParseError);
  EXPECT_THROW(Value::parse("[1,]"), ParseError);
  EXPECT_THROW(Value::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(Value::parse("{'a':1}"), ParseError);
  EXPECT_THROW(Value::parse("[01]"), ParseError);    // leading zero
  EXPECT_THROW(Value::parse("[+1]"), ParseError);    // leading plus
  EXPECT_THROW(Value::parse("[1.]"), ParseError);    // bare decimal point
  EXPECT_THROW(Value::parse("[.5]"), ParseError);
}

TEST(Json, ParseErrorCarriesOffset) {
  try {
    Value::parse("[1, oops]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

// ---------------------------------------------------------------------------
// Strings: escapes, UTF-8, surrogate pairs, control characters.
// ---------------------------------------------------------------------------

TEST(Json, HandlesStandardEscapes) {
  EXPECT_EQ(Value::parse("\"a\\n\\t\\\"\\\\b\\/\"").as_string(), "a\n\t\"\\b/");
  EXPECT_EQ(Value::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Value("line\nbreak").write(), "\"line\\nbreak\"");
  EXPECT_EQ(Value(std::string(1, '\x01')).write(), "\"\\u0001\"");
}

TEST(Json, DecodesUnicodeEscapesToUtf8) {
  EXPECT_EQ(Value::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(Value::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");      // €
  // Surrogate pair -> U+1D11E (musical G clef), 4-byte UTF-8.
  EXPECT_EQ(Value::parse("\"\\ud834\\udd1e\"").as_string(), "\xf0\x9d\x84\x9e");
}

TEST(Json, RawUtf8PassesThroughUnchanged) {
  const std::string s = "caf\xc3\xa9 \xe2\x82\xac";
  EXPECT_EQ(Value::parse(Value(s).write()).as_string(), s);
}

TEST(Json, RejectsBadStrings) {
  EXPECT_THROW(Value::parse("\"\\ud834\""), ParseError);         // lone high surrogate
  EXPECT_THROW(Value::parse("\"\\udd1e\""), ParseError);         // lone low surrogate
  EXPECT_THROW(Value::parse("\"\\ud834\\u0041\""), ParseError);  // pair broken
  EXPECT_THROW(Value::parse("\"\\uZZZZ\""), ParseError);
  EXPECT_THROW(Value::parse("\"\\q\""), ParseError);             // unknown escape
  EXPECT_THROW(Value::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Value::parse(std::string("\"a\nb\"")), ParseError);  // raw control char
}

// ---------------------------------------------------------------------------
// Canonical form: recursive key sorting.
// ---------------------------------------------------------------------------

TEST(Json, CanonicalSortsKeysRecursively) {
  const Value v = Value::parse("{\"b\":{\"y\":1,\"x\":2},\"a\":[{\"q\":0,\"p\":1}]}");
  EXPECT_EQ(v.write_canonical(), "{\"a\":[{\"p\":1,\"q\":0}],\"b\":{\"x\":2,\"y\":1}}");
  // Same document with different spelling -> identical canonical bytes.
  const Value w = Value::parse("{ \"a\": [ {\"p\": 1.0, \"q\": 0} ], \"b\": {\"x\":2,\"y\":1} }");
  EXPECT_EQ(w.write_canonical(), v.write_canonical());
}

TEST(Json, AccessorsThrowOnKindMismatch) {
  EXPECT_THROW(Value(1.5).as_string(), InvalidParameter);
  EXPECT_THROW(Value("x").as_number(), InvalidParameter);
  EXPECT_THROW(Value(nullptr).as_array(), InvalidParameter);
}

}  // namespace
}  // namespace ivory::json
