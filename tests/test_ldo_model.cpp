// Tests for the digital LDO model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/ldo_model.hpp"

namespace ivory::core {
namespace {

LdoDesign reference_design() {
  LdoDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.w_pass_m = 0.2;
  d.n_bits = 8;
  d.f_clk_hz = 200e6;
  d.c_out_f = 0.5e-6;
  d.i_quiescent_a = 0.01;
  return d;
}

TEST(LdoModel, EfficiencyPinnedByVoltageRatio) {
  const LdoAnalysis a = analyze_ldo(reference_design(), 3.3, 1.0, 5.0);
  // eta = (vout/vin) * eta_I with eta_I near 99%+.
  EXPECT_LT(a.efficiency, 1.0 / 3.3);
  EXPECT_GT(a.efficiency, 0.95 / 3.3);
  EXPECT_GT(a.current_efficiency, 0.99);
}

TEST(LdoModel, HighCurrentEfficiencyRegime) {
  // "Current efficiency close to 99% can usually be achieved ... for
  // moderate load current": conversion efficiency approaches vout/vin.
  const LdoAnalysis a = analyze_ldo(reference_design(), 1.8, 1.5, 5.0);
  EXPECT_NEAR(a.efficiency, 1.5 / 1.8, 0.02);
}

TEST(LdoModel, PowerBookkeepingCloses) {
  const LdoAnalysis a = analyze_ldo(reference_design(), 3.3, 1.0, 5.0);
  EXPECT_NEAR(a.p_in_w, a.p_out_w + a.p_pass_w + a.p_quiescent_w + a.p_peripheral_w,
              1e-9 * a.p_in_w);
  // The pass loss is exactly the headroom times the current.
  EXPECT_NEAR(a.p_pass_w, (3.3 - 1.0) * 5.0, 1e-9);
}

TEST(LdoModel, DropoutViolationThrows) {
  LdoDesign d = reference_design();
  d.w_pass_m = 1e-4;  // Tiny pass device: huge fully-on drop.
  EXPECT_THROW(analyze_ldo(d, 1.1, 1.0, 5.0), InvalidParameter);
}

TEST(LdoModel, RippleScalesWithClockAndCap) {
  LdoDesign d = reference_design();
  const LdoAnalysis a1 = analyze_ldo(d, 3.3, 1.0, 5.0);
  d.f_clk_hz *= 4.0;
  const LdoAnalysis a2 = analyze_ldo(d, 3.3, 1.0, 5.0);
  EXPECT_NEAR(a2.ripple_pp_v, a1.ripple_pp_v / 4.0, 1e-9);
  d = reference_design();
  d.c_out_f *= 2.0;
  const LdoAnalysis a3 = analyze_ldo(d, 3.3, 1.0, 5.0);
  EXPECT_NEAR(a3.ripple_pp_v, a1.ripple_pp_v / 2.0, 1e-9);
}

TEST(LdoModel, MoreBitsFinerRipple) {
  LdoDesign d = reference_design();
  d.n_bits = 4;
  const LdoAnalysis coarse = analyze_ldo(d, 3.3, 1.0, 5.0);
  d.n_bits = 10;
  const LdoAnalysis fine = analyze_ldo(d, 3.3, 1.0, 5.0);
  EXPECT_LT(fine.ripple_pp_v, coarse.ripple_pp_v);
}

TEST(LdoModel, QuiescentCurrentDegradesLightLoadEfficiency) {
  LdoDesign d = reference_design();
  d.i_quiescent_a = 0.0;
  const double eff_ideal = analyze_ldo(d, 3.3, 1.0, 0.1).efficiency;
  d.i_quiescent_a = 0.05;
  const double eff_biased = analyze_ldo(d, 3.3, 1.0, 0.1).efficiency;
  EXPECT_LT(eff_biased, eff_ideal * 0.85);
}

TEST(LdoModel, InvalidInputsThrow) {
  const LdoDesign good = reference_design();
  EXPECT_THROW(analyze_ldo(good, 1.0, 1.0, 5.0), InvalidParameter);
  EXPECT_THROW(analyze_ldo(good, 3.3, 1.0, 0.0), InvalidParameter);
  LdoDesign d = good;
  d.n_bits = 0;
  EXPECT_THROW(analyze_ldo(d, 3.3, 1.0, 5.0), InvalidParameter);
  d = good;
  d.c_out_f = 0.0;
  EXPECT_THROW(analyze_ldo(d, 3.3, 1.0, 5.0), InvalidParameter);
}

}  // namespace
}  // namespace ivory::core
