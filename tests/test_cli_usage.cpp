// Shells the actual `ivory` binary (path injected via IVORY_CLI_BIN) and
// checks the CLI contract: unknown subcommands and missing required flags
// print usage to *stderr* and exit non-zero; stdout stays clean so pipelines
// never see error text.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#ifndef IVORY_CLI_BIN
#error "IVORY_CLI_BIN must point at the ivory binary"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_command(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult r;
  std::array<char, 512> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) r.output += buf.data();
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

/// Runs `ivory <args>` with the given stream captured ("2>&1 1>/dev/null"
/// keeps stderr only; "2>/dev/null" keeps stdout only).
RunResult run_cli(const std::string& args, const std::string& redirect) {
  return run_command(std::string(IVORY_CLI_BIN) + " " + args + " " + redirect);
}

TEST(CliUsage, UnknownSubcommandPrintsUsageToStderrAndExits2) {
  const RunResult r = run_cli("frobnicate", "2>&1 1>/dev/null");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown subcommand 'frobnicate'"), std::string::npos);
  EXPECT_NE(r.output.find("ivory explore"), std::string::npos);  // usage text
  // Nothing leaked to stdout.
  EXPECT_TRUE(run_cli("frobnicate", "2>/dev/null").output.empty());
}

TEST(CliUsage, NoArgumentsPrintsUsageAndExits2) {
  const RunResult r = run_cli("", "2>&1 1>/dev/null");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("ivory serve"), std::string::npos);
}

TEST(CliUsage, MissingRequiredFlagExits2WithUsage) {
  const RunResult r = run_cli("serve", "2>&1 1>/dev/null");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing required flag --socket"), std::string::npos);
  EXPECT_NE(r.output.find("ivory serve"), std::string::npos);
  EXPECT_TRUE(run_cli("serve", "2>/dev/null").output.empty());
}

TEST(CliUsage, DanglingFlagValueExits2) {
  const RunResult r = run_cli("sc --n", "2>&1 1>/dev/null");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("every flag needs a value"), std::string::npos);
}

TEST(CliUsage, RuntimeFailureExits1WithoutUsageSpam) {
  // A well-formed invocation that fails evaluation: exit 1 and no usage dump.
  const RunResult r = run_cli("sc --n 0 --m 1", "2>&1 1>/dev/null");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.output.find("ivory explore"), std::string::npos);
}

TEST(CliUsage, BatchPropagatesResponsesToStdout) {
  const RunResult r = run_command(std::string("echo '{\"op\":\"stats\",\"id\":1}' | ") +
                                  IVORY_CLI_BIN + " batch 2>/dev/null");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("\"ok\":true"), std::string::npos);
}

}  // namespace
