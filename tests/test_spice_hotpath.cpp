// Transient hot-path tests: the keyed LU-factorization cache must bound
// factorization work by the number of distinct (step, integrator,
// switch-state) configurations — not by step count — while producing output
// that is byte-identical at every cache capacity, including disabled.
#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "spice/parser.hpp"
#include "spice/spice.hpp"

namespace ivory::spice {
namespace {

// A 2:1 two-phase switched-capacitor converter: the canonical steady-state
// switched workload. Two non-overlapping phases plus dead time give a small,
// fixed set of switch configurations that recur every cycle.
Circuit two_phase_sc() {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId fly = c.node("fly");
  const NodeId out = c.node("out");
  c.add_vsource("vin", in, kGround, Waveform::dc(3.3));
  const PhaseClock clk(20e6, 2, 0.48);
  c.add_switch("s1", in, fly, 0.01, 1e8, clk.control(0), clk.edge_fn(0));
  c.add_switch("s2", fly, out, 0.01, 1e8, clk.control(1), clk.edge_fn(1));
  c.add_capacitor_ic("cfly", fly, kGround, 100e-9, 1.65);
  c.add_capacitor_ic("cout", out, kGround, 100e-9, 1.65);
  c.add_resistor("rl", out, kGround, 3.3);
  return c;
}

TranSpec sc_spec(int lu_cache_capacity, bool adaptive = false) {
  TranSpec spec;
  spec.tstop = 5e-6;  // 100 switching cycles.
  spec.dt = 1.0 / (400.0 * 20e6);
  spec.use_ic = true;
  spec.method = Integrator::BackwardEuler;
  spec.adaptive = adaptive;
  spec.lu_cache_capacity = lu_cache_capacity;
  return spec;
}

bool byte_identical(const TranResult& a, const TranResult& b) {
  if (a.time.size() != b.time.size() || a.voltages.size() != b.voltages.size()) return false;
  if (std::memcmp(a.time.data(), b.time.data(), a.time.size() * sizeof(double)) != 0)
    return false;
  for (std::size_t i = 0; i < a.voltages.size(); ++i) {
    if (a.voltages[i].size() != b.voltages[i].size() ||
        std::memcmp(a.voltages[i].data(), b.voltages[i].data(),
                    a.voltages[i].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

TEST(HotPath, FactorizationsBoundedByDistinctConfigsNotSteps) {
  // With a roomy cache, steady state factors once per distinct configuration
  // (phase states x {regular step, edge-shortened steps, first-step BE}).
  // Doubling the horizon must add steps but no new configurations.
  const Circuit c = two_phase_sc();
  TranSpec spec = sc_spec(64);
  const TranResult res = transient(c, spec);
  EXPECT_GE(res.steps_taken, 40000u);
  EXPECT_LE(res.lu_factorizations, 40u);

  // Doubling the horizon doubles the steps but adds at most a handful of new
  // keys: edge-aligned shortened steps pick up fresh floating-point residue
  // as absolute time grows, so the key set creeps (28 -> ~34 here) instead
  // of staying frozen — what matters is that it does not scale with steps.
  spec.tstop *= 2.0;
  const TranResult longer = transient(c, spec);
  EXPECT_GT(longer.steps_taken, res.steps_taken);
  EXPECT_LE(longer.lu_factorizations, res.lu_factorizations + res.lu_factorizations / 2)
      << "factorization count grew with simulated time: the cache key set is "
         "not recurring";
  EXPECT_LE(longer.lu_factorizations, 60u);
}

TEST(HotPath, FixedStepCountersAreConsistent) {
  const Circuit c = two_phase_sc();
  const TranResult res = transient(c, sc_spec(8));
  // Fixed-step: every accepted step either hit the cache or factored.
  EXPECT_EQ(res.lu_cache_hits + res.lu_factorizations, res.steps_taken);
  EXPECT_LE(res.max_resident_factorizations, 8u);
  EXPECT_GT(res.lu_cache_hits, res.lu_factorizations);

  const TranResult uncached = transient(c, sc_spec(0));
  EXPECT_EQ(uncached.lu_cache_hits, 0u);
  EXPECT_EQ(uncached.lu_cache_evictions, 0u);
  EXPECT_EQ(uncached.lu_factorizations, uncached.steps_taken);
  EXPECT_EQ(uncached.max_resident_factorizations, 1u);
}

TEST(HotPath, ByteIdenticalAcrossCacheCapacities) {
  const Circuit c = two_phase_sc();
  for (const bool adaptive : {false, true}) {
    const TranResult reference = transient(c, sc_spec(1, adaptive));
    for (const int capacity : {0, 2, 8, 64}) {
      const TranResult got = transient(c, sc_spec(capacity, adaptive));
      EXPECT_TRUE(byte_identical(reference, got))
          << "capacity " << capacity << (adaptive ? " adaptive" : " fixed-step")
          << " diverged from the single-slot baseline";
    }
  }
}

TEST(HotPath, ParsedSwitchNetlistMatchesProgrammaticCircuit) {
  // The S-card must build the same switched circuit the C++ API builds: same
  // steps, same factorization count, byte-identical waveform.
  const Circuit api = two_phase_sc();
  // Values are written so the parser's arithmetic reproduces the exact API
  // doubles ("1e-7" parses to the same bits as the 100e-9 literal; a "100n"
  // suffix would compute 100 * 1e-9, one ULP away).
  const Circuit parsed = parse_netlist(
      "* two-phase 2:1 SC converter\n"
      "vin in 0 DC 3.3\n"
      "s1 in fly 0.01 1e8 CLOCK(20meg 2 0.48 0)\n"
      "s2 fly out 0.01 1e8 CLOCK(20meg 2 0.48 1)\n"
      "cfly fly 0 1e-7 IC=1.65\n"
      "cout out 0 1e-7 IC=1.65\n"
      "rl out 0 3.3\n"
      ".end\n");
  TranSpec spec = sc_spec(8);
  spec.record_nodes = {api.find_node("out")};
  TranSpec pspec = spec;
  pspec.record_nodes = {parsed.find_node("out")};
  const TranResult a = transient(api, spec);
  const TranResult b = transient(parsed, pspec);
  EXPECT_EQ(a.steps_taken, b.steps_taken);
  EXPECT_EQ(a.lu_factorizations, b.lu_factorizations);
  ASSERT_EQ(a.time.size(), b.time.size());
  EXPECT_EQ(0, std::memcmp(a.voltages[0].data(), b.voltages[0].data(),
                           a.voltages[0].size() * sizeof(double)));
}

TEST(HotPath, InvalidCapacityThrows) {
  const Circuit c = two_phase_sc();
  TranSpec spec = sc_spec(-1);
  EXPECT_THROW(transient(c, spec), InvalidParameter);
}

}  // namespace
}  // namespace ivory::spice
