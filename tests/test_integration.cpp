// End-to-end integration tests: the full case-study pipeline (traces ->
// currents -> DSE -> dynamic noise -> PDS efficiency), run small enough for
// the test suite but exercising every module boundary the benches use.
#include <gtest/gtest.h>

#include "common/statistics.hpp"
#include "core/ivory.hpp"

namespace ivory {
namespace {

// Shortened case-study configuration (20 us traces at 4 ns).
struct MiniStudy {
  core::SystemParams sys;
  pdn::PdnParams pdn = pdn::PdnParams::gpuvolt_default();
  double duration = 20e-6;
  double dt = 4e-9;
};

std::vector<double> total_current(const MiniStudy& ms, workload::Benchmark bench) {
  const auto traces = workload::generate_gpu_traces(bench, 4, 5.0, ms.duration, ms.dt);
  const workload::DigitalLoadModel load =
      workload::DigitalLoadModel::from_average_power(5.0, ms.sys.vout_v, 1e9, 0.2);
  std::vector<double> total;
  for (const auto& t : traces) {
    const std::vector<double> i = workload::power_to_current(t, load, ms.sys.vout_v);
    if (total.empty())
      total = i;
    else
      for (std::size_t k = 0; k < total.size(); ++k) total[k] += i[k];
  }
  return total;
}

double settled_pp(const std::vector<double>& v) {
  const std::vector<double> tail(v.begin() + static_cast<long>(v.size() / 5), v.end());
  return peak_to_peak(tail);
}

TEST(Integration, WorkloadCurrentsMatchPowerBudget) {
  const MiniStudy ms;
  const std::vector<double> i = total_current(ms, workload::Benchmark::CFD);
  // 20 W at 1.0 V: ~20 A average.
  EXPECT_NEAR(mean(i), 20.0, 3.0);
  EXPECT_GT(peak_to_peak(i), 5.0);  // Real transient content.
}

TEST(Integration, OffchipPdnNoiseExceedsDistributedIvrNoise) {
  const MiniStudy ms;
  const std::vector<double> i_total = total_current(ms, workload::Benchmark::CFD);

  // Off-chip VRM configuration: full current across the PDN at 1.0 V.
  const std::vector<double> v_off =
      pdn::simulate_die_voltage(ms.pdn, ms.sys.vout_v, i_total, ms.dt);

  // Four distributed IVRs: quarter current each, local regulation.
  const core::DseResult ivr =
      core::optimize_topology(ms.sys, core::IvrTopology::SwitchedCapacitor, 4);
  ASSERT_TRUE(ivr.feasible);
  std::vector<double> i_q = i_total;
  for (double& x : i_q) x *= 0.25;
  core::DynWaveform w = core::sc_combined_response(ivr.sc, ms.sys.vin_v, ms.sys.vout_v, i_q,
                                                   ms.dt);
  const std::vector<double> grid =
      core::grid_noise(i_q, ms.dt, ms.pdn.grid_r_ohm / 4.0, ms.pdn.grid_l_h / 2.0);
  for (std::size_t k = 0; k < w.v.size(); ++k) w.v[k] += grid[k];

  const double pp_off = settled_pp(v_off);
  const double pp_ivr = settled_pp(w.v);
  EXPECT_GT(pp_off, 2.0 * pp_ivr)
      << "off-chip " << pp_off * 1e3 << " mV vs 4-IVR " << pp_ivr * 1e3 << " mV";
}

TEST(Integration, IvrRegulatesMeanToTarget) {
  const MiniStudy ms;
  const core::DseResult ivr =
      core::optimize_topology(ms.sys, core::IvrTopology::SwitchedCapacitor, 4);
  ASSERT_TRUE(ivr.feasible);
  std::vector<double> i_q = total_current(ms, workload::Benchmark::KMN);
  for (double& x : i_q) x *= 0.25;
  const core::DynWaveform w =
      core::sc_combined_response(ivr.sc, ms.sys.vin_v, ms.sys.vout_v, i_q, ms.dt);
  const std::vector<double> tail(w.v.begin() + static_cast<long>(w.v.size() / 5), w.v.end());
  EXPECT_NEAR(mean(tail), ms.sys.vout_v, 0.02);
}

TEST(Integration, HeadlinePdsImprovementReproduces) {
  // The paper's bottom line, end to end: the distributed-IVR PDS beats the
  // off-chip VRM PDS by several points of delivery efficiency once the
  // measured guardbands are applied.
  const MiniStudy ms;
  const core::DseResult ivr =
      core::optimize_topology(ms.sys, core::IvrTopology::SwitchedCapacitor, 4);
  ASSERT_TRUE(ivr.feasible);

  const std::vector<double> i_total = total_current(ms, workload::Benchmark::CFD);
  const double guard_off =
      settled_pp(pdn::simulate_die_voltage(ms.pdn, ms.sys.vout_v, i_total, ms.dt));
  std::vector<double> i_q = i_total;
  for (double& x : i_q) x *= 0.25;
  core::DynWaveform w =
      core::sc_combined_response(ivr.sc, ms.sys.vin_v, ms.sys.vout_v, i_q, ms.dt);
  const std::vector<double> grid =
      core::grid_noise(i_q, ms.dt, ms.pdn.grid_r_ohm / 4.0, ms.pdn.grid_l_h / 2.0);
  for (std::size_t k = 0; k < w.v.size(); ++k) w.v[k] += grid[k];
  const double guard_ivr = settled_pp(w.v);

  const core::PdsBreakdown off = core::evaluate_pds_offchip(ms.sys, ms.pdn, 0.85, guard_off);
  const core::PdsBreakdown on = core::evaluate_pds_ivr(ms.sys, ms.pdn, ivr, 0.85, guard_ivr);
  EXPECT_GT(on.efficiency - off.efficiency, 0.04)
      << "off " << off.efficiency << " (guard " << guard_off << ") vs ivr " << on.efficiency
      << " (guard " << guard_ivr << ")";
  EXPECT_LT(on.efficiency - off.efficiency, 0.20);
}

TEST(Integration, DseRankingStableAcrossBenchmarkSeeds) {
  // The optimal topology choice must not depend on the trace seed (it is a
  // static decision); dynamic noise may vary but stays ordered.
  const MiniStudy ms;
  const core::DseResult best = core::best_design(ms.sys);
  EXPECT_EQ(best.topology, core::IvrTopology::SwitchedCapacitor);
  EXPECT_EQ(best.sc.n, 3);
  EXPECT_EQ(best.sc.m, 1);
}

}  // namespace
}  // namespace ivory
