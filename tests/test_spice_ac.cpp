// AC-analysis tests against closed-form transfer functions.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "spice/spice.hpp"

namespace ivory::spice {
namespace {

TEST(Ac, RcLowPassMagnitudeAndPhase) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const double r = 1000.0, cap = 1e-9;  // f_c = 159 kHz.
  Waveform src = Waveform::dc(0.0);
  src.set_ac_magnitude(1.0);
  c.add_vsource("v1", in, kGround, src);
  c.add_resistor("r1", in, out, r);
  c.add_capacitor("c1", out, kGround, cap);

  const std::vector<double> freqs = log_frequencies(1e3, 1e8, 26);
  const AcResult res = ac_analysis(c, freqs, {out});
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const double w = 2.0 * pi * freqs[k];
    const std::complex<double> expect = 1.0 / std::complex<double>(1.0, w * r * cap);
    EXPECT_NEAR(std::abs(res.at(out)[k] - expect), 0.0, 1e-9) << "f=" << freqs[k];
  }
}

TEST(Ac, CornerFrequencyAtMinus3dB) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const double r = 1591.549, cap = 1e-9;  // f_c = 100 kHz.
  Waveform src = Waveform::dc(0.0);
  src.set_ac_magnitude(1.0);
  c.add_vsource("v1", in, kGround, src);
  c.add_resistor("r1", in, out, r);
  c.add_capacitor("c1", out, kGround, cap);
  const AcResult res = ac_analysis(c, {1e5}, {out});
  EXPECT_NEAR(std::abs(res.at(out)[0]), 1.0 / std::sqrt(2.0), 1e-4);
}

TEST(Ac, SeriesRlcResonancePeaksAtF0) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  const NodeId out = c.node("out");
  const double l = 1e-6, cap = 1e-9, r = 1.0;
  Waveform src = Waveform::dc(0.0);
  src.set_ac_magnitude(1.0);
  c.add_vsource("v1", in, kGround, src);
  c.add_resistor("r1", in, a, r);
  c.add_inductor("l1", a, out, l);
  c.add_capacitor("c1", out, kGround, cap);

  const double f0 = 1.0 / (2.0 * pi * std::sqrt(l * cap));
  const AcResult res = ac_analysis(c, {f0 / 4.0, f0, f0 * 4.0}, {out});
  const double g_lo = std::abs(res.at(out)[0]);
  const double g_res = std::abs(res.at(out)[1]);
  const double g_hi = std::abs(res.at(out)[2]);
  // Cap voltage peaks near resonance with Q = sqrt(L/C)/R ~ 31.6.
  EXPECT_GT(g_res, 10.0 * g_lo);
  EXPECT_GT(g_res, 10.0 * g_hi);
  EXPECT_NEAR(g_res, std::sqrt(l / cap) / r, 0.05 * g_res);
}

TEST(Ac, CurrentSourceDrivesImpedance) {
  // Z(jw) of a parallel RC seen by a 1 A AC current source.
  Circuit c;
  const NodeId n = c.node("n");
  Waveform src = Waveform::dc(0.0);
  src.set_ac_magnitude(1.0);
  c.add_isource("i1", kGround, n, src);
  const double r = 50.0, cap = 1e-9;
  c.add_resistor("r1", n, kGround, r);
  c.add_capacitor("c1", n, kGround, cap);
  const std::vector<double> freqs = log_frequencies(1e4, 1e9, 21);
  const AcResult res = ac_analysis(c, freqs, {n});
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const std::complex<double> jw(0.0, 2.0 * pi * freqs[k]);
    const std::complex<double> z = 1.0 / (1.0 / r + jw * cap);
    EXPECT_NEAR(std::abs(res.at(n)[k] - z), 0.0, 1e-6 * std::abs(z));
  }
}

TEST(Ac, SwitchStateFrozenFromTimeZero) {
  // A switch closed at t = 0 conducts in AC; one open at t = 0 does not.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  Waveform src = Waveform::dc(0.0);
  src.set_ac_magnitude(1.0);
  c.add_vsource("v1", in, kGround, src);
  c.add_switch("s1", in, out, 1.0, 1e12, [](double) { return true; });
  c.add_resistor("r1", out, kGround, 1000.0);
  const AcResult closed = ac_analysis(c, {1e6}, {out});
  EXPECT_NEAR(std::abs(closed.at(out)[0]), 1000.0 / 1001.0, 1e-6);

  Circuit c2;
  const NodeId in2 = c2.node("in");
  const NodeId out2 = c2.node("out");
  c2.add_vsource("v1", in2, kGround, src);
  c2.add_switch("s1", in2, out2, 1.0, 1e12, [](double) { return false; });
  c2.add_resistor("r1", out2, kGround, 1000.0);
  const AcResult open = ac_analysis(c2, {1e6}, {out2});
  EXPECT_LT(std::abs(open.at(out2)[0]), 1e-6);
}

TEST(Ac, EmptyFrequencyListThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("v", a, kGround, Waveform::dc(1.0));
  c.add_resistor("r", a, kGround, 1.0);
  EXPECT_THROW(ac_analysis(c, {}), InvalidParameter);
  EXPECT_THROW(ac_analysis(c, {0.0}), InvalidParameter);
}

TEST(Ac, LogFrequenciesEndpointsAndCount) {
  const std::vector<double> f = log_frequencies(1e3, 1e6, 4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_NEAR(f.front(), 1e3, 1e-9);
  EXPECT_NEAR(f.back(), 1e6, 1e-3);
  EXPECT_NEAR(f[1], 1e4, 1e-6);
}

}  // namespace
}  // namespace ivory::spice
