// Property-based (parameterized) test sweeps over the model space:
// invariants that must hold for EVERY topology, ratio, technology node,
// capacitor kind, and operating point — not just the hand-picked cases of
// the unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hpp"
#include "core/ivory.hpp"

namespace ivory::core {
namespace {

// ---------------------------------------------------------------------------
// Charge-vector invariants across every supported ratio and family.
// ---------------------------------------------------------------------------

struct RatioCase {
  int n, m;
  ScFamily family;
};

class ChargeVectorProperty : public ::testing::TestWithParam<RatioCase> {};

TEST_P(ChargeVectorProperty, ChargeConservationAndBounds) {
  const RatioCase& rc = GetParam();
  const ScTopology topo = make_topology(rc.n, rc.m, rc.family);
  const ChargeVectors cv = charge_vectors(topo);

  // Ideal two-phase converters conserve energy: q_in per unit output charge
  // equals the conversion ratio m/n.
  EXPECT_NEAR(cv.q_in, topo.ideal_ratio(), 1e-8);

  // Output charge split across phases is a partition of 1.
  EXPECT_GE(cv.q_out_phase_a, -1e-9);
  EXPECT_LE(cv.q_out_phase_a, 1.0 + 1e-9);

  // Multipliers are non-negative; internal rungs of deep ladders circulate
  // more charge than the output delivers, but never more than n units.
  for (double ac : cv.a_cap) {
    EXPECT_GE(ac, -1e-12);
    EXPECT_LE(ac, static_cast<double>(rc.n) + 1e-9);
  }
  for (double ar : cv.a_switch) {
    EXPECT_GE(ar, -1e-12);
    EXPECT_LE(ar, static_cast<double>(rc.n) + 1e-9);
  }
  EXPECT_GT(cv.sum_ac(), 0.0);
  EXPECT_GT(cv.sum_ar(), 0.0);
}

TEST_P(ChargeVectorProperty, SwitchStressWithinRailAndPositive) {
  const RatioCase& rc = GetParam();
  const ScTopology topo = make_topology(rc.n, rc.m, rc.family);
  for (double s : switch_stress_ratios(topo)) {
    EXPECT_GT(s, 1e-6);
    EXPECT_LE(s, 1.0 + 1e-9);
  }
}

TEST_P(ChargeVectorProperty, UnloadedNetlistSettlesAtIdealRatio) {
  const RatioCase& rc = GetParam();
  const ScTopology topo = make_topology(rc.n, rc.m, rc.family);
  const ChargeVectors cv = charge_vectors(topo);
  spice::Circuit ckt;
  const ScNetlistResult nodes = build_sc_netlist(ckt, topo, cv, 3.0, 50e-9, 5.0, 20e6, 5e-9);
  ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(1e-4));
  spice::TranSpec spec;
  spec.tstop = 30.0 / 20e6;
  spec.dt = 1.0 / (20e6 * 200.0);
  spec.use_ic = true;
  spec.method = spice::Integrator::BackwardEuler;
  spec.record_nodes = {nodes.vout};
  const spice::TranResult res = spice::transient(ckt, spec);
  EXPECT_NEAR(res.at(nodes.vout).back(), 3.0 * rc.m / rc.n, 0.03)
      << topo.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRatios, ChargeVectorProperty,
    ::testing::Values(RatioCase{2, 1, ScFamily::SeriesParallel},
                      RatioCase{3, 1, ScFamily::SeriesParallel},
                      RatioCase{4, 1, ScFamily::SeriesParallel},
                      RatioCase{5, 1, ScFamily::SeriesParallel},
                      RatioCase{6, 1, ScFamily::SeriesParallel},
                      RatioCase{2, 1, ScFamily::Ladder}, RatioCase{3, 1, ScFamily::Ladder},
                      RatioCase{3, 2, ScFamily::Ladder}, RatioCase{4, 3, ScFamily::Ladder},
                      RatioCase{5, 2, ScFamily::Ladder}, RatioCase{5, 3, ScFamily::Ladder},
                      RatioCase{5, 4, ScFamily::Ladder}, RatioCase{6, 5, ScFamily::Ladder}),
    [](const ::testing::TestParamInfo<RatioCase>& info) {
      return std::to_string(info.param.n) + "to" + std::to_string(info.param.m) +
             (info.param.family == ScFamily::Ladder ? "_ladder" : "_sp");
    });

// ---------------------------------------------------------------------------
// SC static-model invariants across every node and capacitor kind.
// ---------------------------------------------------------------------------

class ScModelProperty
    : public ::testing::TestWithParam<std::tuple<tech::Node, tech::CapKind>> {};

TEST_P(ScModelProperty, BookkeepingAndBoundsHoldEverywhere) {
  ScDesign d;
  d.node = std::get<0>(GetParam());
  d.cap_kind = std::get<1>(GetParam());
  d.n = 2;
  d.m = 1;
  d.c_fly_f = 1e-6;
  d.c_out_f = 0.2e-6;
  d.g_tot_s = 3000.0;
  d.f_sw_hz = 60e6;
  d.n_interleave = 4;
  const double vin = 1.6, i_load = 3.0;
  const ScAnalysis a = analyze_sc(d, vin, i_load);

  EXPECT_GT(a.efficiency, 0.0);
  EXPECT_LT(a.efficiency, 1.0);
  EXPECT_LT(a.vout_v, a.vout_ideal_v);
  EXPECT_GT(a.p_in_w, a.p_out_w);
  const double losses = a.p_conduction_w + a.p_gate_w + a.p_bottom_plate_w + a.p_leakage_w +
                        a.p_peripheral_w;
  EXPECT_NEAR(a.p_in_w - a.p_out_w, losses, 1e-9 * a.p_in_w);
  EXPECT_GT(a.area_m2, 0.0);
  EXPECT_GT(a.ripple_pp_v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllNodesAndCaps, ScModelProperty,
    ::testing::Combine(::testing::ValuesIn(tech::kAllNodes),
                       ::testing::Values(tech::CapKind::MosCap, tech::CapKind::Mim,
                                         tech::CapKind::DeepTrench)),
    [](const ::testing::TestParamInfo<std::tuple<tech::Node, tech::CapKind>>& info) {
      std::string name = tech::node_name(std::get<0>(info.param));
      name.resize(name.size() - 2);  // Strip "nm".
      return "n" + name + "_cap" + std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------------
// Buck-model invariants over an operating grid.
// ---------------------------------------------------------------------------

class BuckGridProperty
    : public ::testing::TestWithParam<std::tuple<double /*vin*/, double /*vout frac*/,
                                                 double /*iload*/>> {};

TEST_P(BuckGridProperty, DutyAndBookkeeping) {
  const auto [vin, vfrac, i_load] = GetParam();
  const double vout = vfrac * vin;
  BuckDesign d;
  d.node = tech::Node::n32;
  d.inductor = tech::InductorKind::IntegratedInterposer;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.l_per_phase_h = 5e-9;
  d.f_sw_hz = 100e6;
  d.n_phases = 4;
  d.w_high_m = 0.08;
  d.w_low_m = 0.10;
  d.c_out_f = 1e-6;
  const BuckAnalysis a = analyze_buck(d, vin, vout, i_load);

  EXPECT_GT(a.duty, vout / vin - 1e-9);  // Drops only push duty up.
  EXPECT_LT(a.duty, 1.0);
  EXPECT_GT(a.efficiency, 0.0);
  EXPECT_LT(a.efficiency, 1.0);
  const double losses = a.p_conduction_w + a.p_gate_w + a.p_overlap_w + a.p_coss_w +
                        a.p_deadtime_w + a.p_peripheral_w;
  EXPECT_NEAR(a.p_in_w, a.p_out_w + losses, 1e-9 * a.p_in_w);
  EXPECT_GT(a.i_ripple_phase_a, 0.0);
  EXPECT_LE(a.i_ripple_out_a, a.i_ripple_phase_a + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(OperatingGrid, BuckGridProperty,
                         ::testing::Combine(::testing::Values(1.8, 2.5, 3.3),
                                            ::testing::Values(0.3, 0.5, 0.7),
                                            ::testing::Values(2.0, 8.0, 15.0)));

// ---------------------------------------------------------------------------
// Transient-integrator convergence order (parameterized over dt).
// ---------------------------------------------------------------------------

class TranConvergence : public ::testing::TestWithParam<double> {};

TEST_P(TranConvergence, RcErrorBoundedByStep) {
  const double dt = GetParam();
  spice::Circuit c;
  const spice::NodeId in = c.node("in");
  const spice::NodeId out = c.node("out");
  const double r = 1000.0, cap = 1e-9;
  c.add_vsource("v1", in, spice::kGround, spice::Waveform::dc(1.0));
  c.add_resistor("r1", in, out, r);
  c.add_capacitor("c1", out, spice::kGround, cap);
  spice::TranSpec spec;
  spec.tstop = 3e-6;
  spec.dt = dt;
  spec.use_ic = true;
  spec.record_nodes = {out};
  const spice::TranResult res = spice::transient(c, spec);
  double max_err = 0.0;
  const std::vector<double>& v = res.at(out);
  for (std::size_t i = 0; i < res.time.size(); ++i)
    max_err = std::max(max_err, std::fabs(v[i] - (1.0 - std::exp(-res.time[i] / (r * cap)))));
  // Second-order trapezoidal: error well under (dt/tau)^2.
  const double bound = 2.0 * (dt / (r * cap)) * (dt / (r * cap)) + 1e-9;
  EXPECT_LT(max_err, bound) << "dt=" << dt;
}

INSTANTIATE_TEST_SUITE_P(StepSizes, TranConvergence,
                         ::testing::Values(4e-9, 2e-9, 1e-9, 0.5e-9));

// ---------------------------------------------------------------------------
// Dynamic-model regulation invariant across load levels.
// ---------------------------------------------------------------------------

class ScRegulationProperty : public ::testing::TestWithParam<double> {};

TEST_P(ScRegulationProperty, LowerBoundControlHoldsVrefAtAnyFeasibleLoad) {
  const double i_load = GetParam();
  ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 3;
  d.m = 1;
  d.family = ScFamily::Ladder;
  d.c_fly_f = 4e-6;
  d.c_out_f = 1e-6;
  d.g_tot_s = 15000.0;
  d.f_sw_hz = 300e6;  // Capability well beyond any of these loads.
  d.n_interleave = 8;
  const auto wave = sc_cycle_response(d, 3.3, 1.0, std::vector<double>(20000, i_load), 2e-9);
  std::vector<double> tail(wave.v.end() - 5000, wave.v.end());
  EXPECT_NEAR(mean(tail), 1.0, 0.02) << "i=" << i_load;
}

INSTANTIATE_TEST_SUITE_P(LoadLevels, ScRegulationProperty,
                         ::testing::Values(1.0, 5.0, 10.0, 20.0, 30.0));

}  // namespace
}  // namespace ivory::core
