// Tests for the synthetic GPU workload generator, digital load model, and
// DVFS schedules.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include <cmath>
#include <sstream>

#include "workload/workload.hpp"

namespace ivory::workload {
namespace {

constexpr double kDur = 50e-6;
constexpr double kDt = 10e-9;

TEST(Traces, DeterministicForSameSeed) {
  const auto a = generate_gpu_traces(Benchmark::CFD, 2, 15.0, kDur, kDt, 7);
  const auto b = generate_gpu_traces(Benchmark::CFD, 2, 15.0, kDur, kDt, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t sm = 0; sm < a.size(); ++sm) EXPECT_EQ(a[sm].watts, b[sm].watts);
}

TEST(Traces, DifferentSeedsDiffer) {
  const auto a = generate_gpu_traces(Benchmark::CFD, 1, 15.0, kDur, kDt, 1);
  const auto b = generate_gpu_traces(Benchmark::CFD, 1, 15.0, kDur, kDt, 2);
  EXPECT_NE(a[0].watts, b[0].watts);
}

TEST(Traces, MeanTracksRequestedAverage) {
  for (Benchmark bench : kAllBenchmarks) {
    const auto t = generate_gpu_traces(bench, 1, 15.0, kDur, kDt);
    EXPECT_NEAR(t[0].average(), 15.0, 2.0) << benchmark_name(bench);
  }
}

TEST(Traces, PhysicalClampsRespected) {
  const auto t = generate_gpu_traces(Benchmark::BFS2, 4, 15.0, kDur, kDt);
  for (const PowerTrace& sm : t) {
    EXPECT_GE(min_value(sm.watts), 0.2 * 15.0 - 1e-12);
    EXPECT_LE(sm.peak(), 2.5 * 15.0 + 1e-12);
  }
}

TEST(Traces, CfdNoisierThanHotsp) {
  // The paper's Figs. 10-11 show CFD with the deepest noise and HOTSP calm.
  const auto cfd = generate_gpu_traces(Benchmark::CFD, 1, 15.0, kDur, kDt);
  const auto hotsp = generate_gpu_traces(Benchmark::HOTSP, 1, 15.0, kDur, kDt);
  EXPECT_GT(stddev(cfd[0].watts), 1.5 * stddev(hotsp[0].watts));
}

TEST(Traces, SmsAreCorrelatedButNotIdentical) {
  const auto t = generate_gpu_traces(Benchmark::CFD, 2, 15.0, kDur, kDt);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_NE(t[0].watts, t[1].watts);
  // Correlation of the two SM traces should be clearly positive.
  const double m0 = mean(t[0].watts), m1 = mean(t[1].watts);
  double cov = 0.0;
  for (std::size_t k = 0; k < t[0].watts.size(); ++k)
    cov += (t[0].watts[k] - m0) * (t[1].watts[k] - m1);
  cov /= static_cast<double>(t[0].watts.size());
  const double corr = cov / (stddev(t[0].watts) * stddev(t[1].watts));
  EXPECT_GT(corr, 0.3);
  EXPECT_LT(corr, 0.99);
}

TEST(Traces, SumAddsSampleWise) {
  const auto t = generate_gpu_traces(Benchmark::KMN, 4, 15.0, kDur, kDt);
  const PowerTrace total = PowerTrace::sum(t);
  EXPECT_NEAR(total.average(), t[0].average() + t[1].average() + t[2].average() + t[3].average(),
              1e-9);
}

TEST(Traces, SumRejectsMismatched) {
  PowerTrace a{1e-9, {1.0, 2.0}};
  PowerTrace b{2e-9, {1.0, 2.0}};
  EXPECT_THROW(PowerTrace::sum({a, b}), InvalidParameter);
  PowerTrace c{1e-9, {1.0}};
  EXPECT_THROW(PowerTrace::sum({a, c}), InvalidParameter);
  EXPECT_THROW(PowerTrace::sum({}), InvalidParameter);
}

TEST(Traces, InvalidArgsThrow) {
  EXPECT_THROW(generate_gpu_traces(Benchmark::CFD, 0, 15.0, kDur, kDt), InvalidParameter);
  EXPECT_THROW(generate_gpu_traces(Benchmark::CFD, 1, -1.0, kDur, kDt), InvalidParameter);
  EXPECT_THROW(generate_gpu_traces(Benchmark::CFD, 1, 15.0, kDt, kDt), InvalidParameter);
}

TEST(LoadModel, NominalPowerRecovered) {
  const DigitalLoadModel m = DigitalLoadModel::from_average_power(15.0, 0.85, 1e9, 0.2);
  EXPECT_NEAR(m.power(0.85, 1e9, 1.0), 15.0, 1e-9);
  EXPECT_NEAR(m.current(0.85, 1e9, 1.0), 15.0 / 0.85, 1e-9);
}

TEST(LoadModel, VoltageAndFrequencyScaling) {
  const DigitalLoadModel m = DigitalLoadModel::from_average_power(15.0, 0.85, 1e9, 0.0);
  // Pure dynamic: P ~ V^2 * f.
  EXPECT_NEAR(m.power(0.85 * 1.1, 1e9, 1.0), 15.0 * 1.21, 1e-6);
  EXPECT_NEAR(m.power(0.85, 0.5e9, 1.0), 7.5, 1e-9);
  EXPECT_NEAR(m.power(0.85, 1e9, 0.5), 7.5, 1e-9);
}

TEST(LoadModel, LeakageGrowsSuperlinearly) {
  const DigitalLoadModel m = DigitalLoadModel::from_average_power(10.0, 1.0, 1e9, 0.5);
  const double leak_lo = m.power(0.8, 1e9, 0.0);
  const double leak_hi = m.power(1.2, 1e9, 0.0);
  EXPECT_GT(leak_hi / leak_lo, std::pow(1.2 / 0.8, 2.5));
}

TEST(LoadModel, PowerToCurrentAtNominal) {
  const DigitalLoadModel m = DigitalLoadModel::from_average_power(15.0, 0.85, 1e9, 0.2);
  PowerTrace t{1e-9, {15.0, 10.0, 20.0}};
  const std::vector<double> i = power_to_current(t, m, 0.85);
  ASSERT_EQ(i.size(), 3u);
  EXPECT_NEAR(i[0], 15.0 / 0.85, 1e-9);
  EXPECT_NEAR(i[1], 10.0 / 0.85, 1e-9);
}

TEST(Dvfs, LookupIsPiecewiseConstant) {
  const DvfsSchedule s({{0.0, 1.0, 1e9}, {10e-6, 0.8, 0.6e9}, {20e-6, 1.1, 1.2e9}});
  EXPECT_NEAR(s.at(5e-6).v_v, 1.0, 1e-12);
  EXPECT_NEAR(s.at(10e-6).v_v, 0.8, 1e-12);
  EXPECT_NEAR(s.at(15e-6).f_hz, 0.6e9, 1e-3);
  EXPECT_NEAR(s.at(1.0).v_v, 1.1, 1e-12);
}

TEST(Dvfs, ValidationErrors) {
  EXPECT_THROW(DvfsSchedule({}), InvalidParameter);
  EXPECT_THROW(DvfsSchedule({{1e-6, 1.0, 1e9}}), InvalidParameter);  // Not at t=0.
  EXPECT_THROW(DvfsSchedule({{0.0, 1.0, 1e9}, {0.0, 0.9, 1e9}}), InvalidParameter);
  EXPECT_THROW(DvfsSchedule({{0.0, -1.0, 1e9}}), InvalidParameter);
}

TEST(Dvfs, ConstantHelper) {
  const DvfsSchedule s = DvfsSchedule::constant(0.9, 1.4e9);
  EXPECT_NEAR(s.at(123.0).v_v, 0.9, 1e-12);
  EXPECT_NEAR(s.at(0.0).f_hz, 1.4e9, 1e-3);
}


TEST(TraceCsv, RoundTripPreservesData) {
  const auto orig = generate_gpu_traces(Benchmark::LUD, 3, 15.0, 2e-6, 10e-9);
  std::stringstream ss;
  write_traces_csv(ss, orig);
  const auto back = read_traces_csv(ss);
  ASSERT_EQ(back.size(), orig.size());
  for (std::size_t s = 0; s < orig.size(); ++s) {
    EXPECT_NEAR(back[s].dt_s, orig[s].dt_s, 1e-15);
    ASSERT_EQ(back[s].watts.size(), orig[s].watts.size());
    for (std::size_t k = 0; k < orig[s].watts.size(); k += 17)
      EXPECT_NEAR(back[s].watts[k], orig[s].watts[k], 1e-6);
  }
}

TEST(TraceCsv, HeaderAndShapeValidation) {
  std::stringstream empty;
  EXPECT_THROW(read_traces_csv(empty), InvalidParameter);
  std::stringstream no_traces("time_s\n0\n1\n");
  EXPECT_THROW(read_traces_csv(no_traces), InvalidParameter);
  std::stringstream nonuniform("time_s,sm0_w\n0,1\n1e-9,2\n5e-9,3\n");
  EXPECT_THROW(read_traces_csv(nonuniform), InvalidParameter);
  std::stringstream short_row("time_s,sm0_w,sm1_w\n0,1\n");
  EXPECT_THROW(read_traces_csv(short_row), InvalidParameter);
}

TEST(TraceCsv, ExternalSimulatorShapeAccepted) {
  // A hand-written file in the documented shape (e.g. from GPUWattch).
  std::stringstream ss("time_s,sm0_w\n0,5.0\n2e-9,5.5\n4e-9,4.5\n6e-9,5.0\n");
  const auto traces = read_traces_csv(ss);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_NEAR(traces[0].dt_s, 2e-9, 1e-15);
  EXPECT_NEAR(traces[0].average(), 5.0, 1e-9);
}

}  // namespace
}  // namespace ivory::workload
