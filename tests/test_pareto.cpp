// Multi-fidelity DSE funnel tests: exact Pareto extraction (property-tested
// against a quadratic reference on seeded random sets), thread-count and
// warm-cache byte-identity of the funnel, and incremental re-exploration
// through the content-addressed stage-3 simulation cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/pareto.hpp"
#include "core/report_json.hpp"

namespace ivory {
namespace {

using core::FunnelObjectives;
using core::FunnelSpec;
using core::ParetoFront;
using core::ScreenMetrics;
using core::SystemParams;

class ParetoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    par::set_global_threads(1);
    core::funnel_sim_cache_clear();
  }
};

bool equal_in_enabled(const ScreenMetrics& a, const ScreenMetrics& b,
                      const FunnelObjectives& obj) {
  if (obj.efficiency && a.efficiency != b.efficiency) return false;
  if (obj.area && a.area_m2 != b.area_m2) return false;
  if (obj.ripple && a.ripple_pp_v != b.ripple_pp_v) return false;
  return true;
}

bool weak(const ScreenMetrics& a, const ScreenMetrics& b, const FunnelObjectives& obj) {
  return core::dominates(a, b, obj) || equal_in_enabled(a, b, obj);
}

// Quadratic reference for the extraction contract: position i survives iff
// no earlier point weakly dominates it and no later point strictly
// dominates it (the "duplicates keep the earliest index" rule).
std::vector<std::size_t> reference_front(const std::vector<ScreenMetrics>& pts,
                                         const FunnelObjectives& obj) {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    bool dead = false;
    for (std::size_t j = 0; j < pts.size() && !dead; ++j) {
      if (j == i) continue;
      dead = j < i ? weak(pts[j], pts[i], obj) : core::dominates(pts[j], pts[i], obj);
    }
    if (!dead) keep.push_back(i);
  }
  return keep;
}

std::vector<ScreenMetrics> random_points(std::mt19937_64& rng, std::size_t n) {
  // A few discrete levels per axis so exact ties (and therefore genuine
  // duplicates and weak-dominance edges) actually occur.
  std::uniform_int_distribution<int> level(0, 7);
  std::vector<ScreenMetrics> pts(n);
  for (ScreenMetrics& p : pts) {
    p.efficiency = 0.5 + 0.05 * level(rng);
    p.area_m2 = 1e-6 * (1 + level(rng));
    p.ripple_pp_v = 1e-3 * (1 + level(rng));
  }
  return pts;
}

// --- Dominance semantics --------------------------------------------------

TEST_F(ParetoTest, DominanceRequiresStrictImprovement) {
  const ScreenMetrics a{0.9, 10e-6, 5e-3};
  const ScreenMetrics equal = a;
  const ScreenMetrics better_eff{0.95, 10e-6, 5e-3};
  const ScreenMetrics mixed{0.95, 20e-6, 5e-3};  // better eff, worse area

  EXPECT_FALSE(core::dominates(a, equal));
  EXPECT_FALSE(core::dominates(equal, a));
  EXPECT_TRUE(core::dominates(better_eff, a));
  EXPECT_FALSE(core::dominates(a, better_eff));
  EXPECT_FALSE(core::dominates(mixed, a));
  EXPECT_FALSE(core::dominates(a, mixed));

  // Disabling the area objective collapses the trade-off: now `mixed` wins.
  FunnelObjectives no_area;
  no_area.area = false;
  EXPECT_TRUE(core::dominates(mixed, a, no_area));
}

TEST_F(ParetoTest, DuplicatesKeepTheEarliestIndex) {
  const ScreenMetrics p{0.9, 10e-6, 5e-3};
  const std::vector<ScreenMetrics> pts{p, p, p};
  EXPECT_EQ(core::pareto_filter(pts), (std::vector<std::size_t>{0}));
}

// --- Extraction property test ---------------------------------------------

TEST_F(ParetoTest, FilterMatchesQuadraticReferenceOnSeededRandomSets) {
  const FunnelObjectives kObjSets[] = {
      {},                       // all three
      {true, true, false},      // efficiency + area
      {true, false, false},     // efficiency only
      {false, true, true},      // area + ripple
  };
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    const std::vector<ScreenMetrics> pts = random_points(rng, 250);
    for (const FunnelObjectives& obj : kObjSets) {
      const std::vector<std::size_t> front = core::pareto_filter(pts, obj);
      EXPECT_EQ(front, reference_front(pts, obj)) << "seed " << seed;

      // No member dominates (or duplicates) another member.
      for (const std::size_t i : front)
        for (const std::size_t j : front)
          if (i != j) {
            EXPECT_FALSE(weak(pts[i], pts[j], obj))
                << "seed " << seed << ": member " << i << " weakly dominates member " << j;
          }

      // Every non-member is strictly dominated by some member, or is a
      // duplicate of an earlier member.
      std::set<std::size_t> members(front.begin(), front.end());
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (members.count(i)) continue;
        bool covered = false;
        for (const std::size_t m : front)
          if (core::dominates(pts[m], pts[i], obj) ||
              (m < i && equal_in_enabled(pts[m], pts[i], obj))) {
            covered = true;
            break;
          }
        EXPECT_TRUE(covered) << "seed " << seed << ": non-member " << i << " is uncovered";
      }
    }
  }
}

TEST_F(ParetoTest, FrontSetIsInvariantToInputOrdering) {
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    std::mt19937_64 rng(seed);
    std::vector<ScreenMetrics> pts = random_points(rng, 200);

    const auto metric_set = [](const std::vector<ScreenMetrics>& all,
                               const std::vector<std::size_t>& front) {
      std::vector<std::array<double, 3>> s;
      for (const std::size_t i : front)
        s.push_back({all[i].efficiency, all[i].area_m2, all[i].ripple_pp_v});
      std::sort(s.begin(), s.end());
      return s;
    };
    const auto base = metric_set(pts, core::pareto_filter(pts));
    std::shuffle(pts.begin(), pts.end(), rng);
    EXPECT_EQ(metric_set(pts, core::pareto_filter(pts)), base) << "seed " << seed;
  }
}

// --- Funnel determinism ---------------------------------------------------

// Small-density spec shared by the determinism/cache tests. front_cap large
// enough that the true (untruncated) front survives, which keeps a mix of
// all four topologies on the frontier.
FunnelSpec small_spec() {
  FunnelSpec spec = FunnelSpec{}.scaled(0.15);
  spec.front_cap = 512;
  return spec;
}

TEST_F(ParetoTest, FrontIsByteIdenticalAtAnyThreadCount) {
  const SystemParams sys;
  const FunnelSpec spec = small_spec();

  par::set_global_threads(1);
  core::funnel_sim_cache_clear();
  const std::string ref = core::to_json(core::funnel_explore(sys, spec)).write_canonical();
  ASSERT_FALSE(ref.empty());

  for (const unsigned n : {2u, 4u}) {
    par::set_global_threads(n);
    core::funnel_sim_cache_clear();
    EXPECT_EQ(core::to_json(core::funnel_explore(sys, spec)).write_canonical(), ref)
        << "thread count " << n;
  }
}

TEST_F(ParetoTest, WarmCacheRerunIsByteIdenticalAndAllHits) {
  const SystemParams sys;
  const FunnelSpec spec = small_spec();

  core::funnel_sim_cache_clear();
  const ParetoFront cold = core::funnel_explore(sys, spec);
  EXPECT_GT(cold.stats.sim_cache_misses, 0u);
  EXPECT_EQ(cold.stats.sim_cache_hits, 0u);

  const ParetoFront warm = core::funnel_explore(sys, spec);
  EXPECT_EQ(warm.stats.sim_cache_misses, 0u);
  EXPECT_EQ(warm.stats.sim_cache_hits, cold.stats.sim_cache_misses);
  for (const core::ParetoPoint& p : warm.points)
    if (p.simulated) {
      EXPECT_TRUE(p.sim_cached);
    }

  // The serialized front excludes cache provenance, so warm == cold bytes.
  EXPECT_EQ(core::to_json(warm).write_canonical(), core::to_json(cold).write_canonical());
}

TEST_F(ParetoTest, ExploreOverloadSortsTheFrontierLikeExplore) {
  const SystemParams sys;
  FunnelSpec spec = small_spec();
  spec.simulate = false;
  const std::vector<core::DseResult> designs =
      core::explore(sys, spec, core::OptTarget::Efficiency);
  ASSERT_FALSE(designs.empty());
  for (std::size_t i = 1; i < designs.size(); ++i) {
    if (designs[i - 1].feasible == designs[i].feasible)
      EXPECT_GE(designs[i - 1].efficiency, designs[i].efficiency) << "position " << i;
    else
      EXPECT_TRUE(designs[i - 1].feasible) << "infeasible sorted above feasible at " << i;
  }
}

// --- Incremental re-exploration -------------------------------------------

// Changing the inductor technology only changes buck candidate designs (the
// inductor kind is part of the buck design's canonical JSON, and no other
// topology references it), so a re-exploration must re-simulate exactly the
// frontier points whose simulation inputs changed — the rest hit the cache.
TEST_F(ParetoTest, IncrementalReexplorationResimulatesOnlyChangedCandidates) {
  SystemParams a;
  a.inductor = tech::InductorKind::MagneticFilm;
  SystemParams b = a;
  b.inductor = tech::InductorKind::IntegratedInterposer;
  const FunnelSpec spec = small_spec();

  core::funnel_sim_cache_clear();
  const ParetoFront front_a = core::funnel_explore(a, spec);
  const std::uint64_t sims_a = front_a.stats.sim_cache_misses;
  ASSERT_GT(sims_a, 0u);

  // Expected hits for run B: points whose (design, IVR load share) pair
  // already appeared on A's frontier — the exact inputs the sim key hashes
  // (vin/vout/load are identical between A and B).
  const auto key_of = [](const core::ParetoPoint& p) {
    return std::make_pair(core::to_json(p.design).write_canonical(), p.ivr_load_frac);
  };
  std::set<std::pair<std::string, double>> seen;
  for (const core::ParetoPoint& p : front_a.points)
    if (p.simulated) seen.insert(key_of(p));

  const ParetoFront front_b = core::funnel_explore(b, spec);
  std::uint64_t expect_hits = 0, expect_misses = 0, n_buck = 0;
  for (const core::ParetoPoint& p : front_b.points) {
    if (!p.simulated) continue;
    if (seen.count(key_of(p))) ++expect_hits;
    else ++expect_misses;
    if (p.design.topology == core::IvrTopology::Buck) ++n_buck;
  }
  ASSERT_GT(n_buck, 0u) << "frontier lost its buck points; the test needs a topology mix";
  EXPECT_EQ(front_b.stats.sim_cache_hits, expect_hits);
  EXPECT_EQ(front_b.stats.sim_cache_misses, expect_misses);
  EXPECT_GT(expect_hits, 0u) << "unaffected candidates should have hit the cache";
  EXPECT_LE(expect_misses, front_b.points.size() - expect_hits);
  // Every buck design embeds the new inductor kind, so none can hit A's
  // cache entries.
  EXPECT_GE(expect_misses, n_buck);

  // The warm (incremental) result is byte-identical to a cold run of B.
  const std::string warm_json = core::to_json(front_b).write_canonical();
  core::funnel_sim_cache_clear();
  const ParetoFront cold_b = core::funnel_explore(b, spec);
  EXPECT_EQ(cold_b.stats.sim_cache_hits, 0u);
  EXPECT_EQ(core::to_json(cold_b).write_canonical(), warm_json);
}

// --- Spec validation ------------------------------------------------------

TEST_F(ParetoTest, ScaledClampsEveryAxis) {
  const FunnelSpec tiny = FunnelSpec{}.scaled(1e-6);
  EXPECT_GE(tiny.sc_split_steps, 2);
  EXPECT_GE(tiny.buck_fsw_steps, 2);
  EXPECT_GE(tiny.dldo_decap_steps, 2);
  EXPECT_GE(tiny.hybrid_steps, 1);
  EXPECT_THROW(FunnelSpec{}.scaled(0.0), InvalidParameter);
  EXPECT_THROW(FunnelSpec{}.scaled(-1.0), InvalidParameter);
}

TEST_F(ParetoTest, InvalidSystemOrSpecThrows) {
  SystemParams bad;
  bad.p_load_w = -1.0;
  EXPECT_THROW(core::funnel_explore(bad), InvalidParameter);

  FunnelSpec spec;
  spec.front_cap = 0;
  EXPECT_THROW(core::funnel_explore(SystemParams{}, spec), InvalidParameter);
}

}  // namespace
}  // namespace ivory
