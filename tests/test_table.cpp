// Unit tests for the ASCII table renderer and SI formatting.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/table.hpp"

namespace ivory {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"topology", "eff(%)"});
  t.add_row({"3:1 SC", "80.3"});
  t.add_row({"buck", "71.4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("topology"), std::string::npos);
  EXPECT_NE(out.find("3:1 SC"), std::string::npos);
  EXPECT_NE(out.find("71.4"), std::string::npos);
  // Header + rule + two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidParameter);
}

TEST(TextTable, NumFormatsSignificantDigits) {
  EXPECT_EQ(TextTable::num(0.123456, 3), "0.123");
  EXPECT_EQ(TextTable::num(1234.0, 4), "1234");
}

TEST(TextTable, SiPicksSensiblePrefixes) {
  EXPECT_EQ(TextTable::si(125e6, "Hz"), "125 MHz");
  EXPECT_EQ(TextTable::si(1.2e-9, "F"), "1.2 nF");
  EXPECT_EQ(TextTable::si(0.059, "V"), "59 mV");
  EXPECT_EQ(TextTable::si(15.0, "W"), "15 W");
  EXPECT_EQ(TextTable::si(0.0, "A"), "0 A");
}

TEST(TextTable, SiHandlesNegativeValues) {
  EXPECT_EQ(TextTable::si(-3.3, "V"), "-3.3 V");
}

}  // namespace
}  // namespace ivory
