// Golden-file regression: shells the real `ivory batch` binary over a fixed
// NDJSON request set and diffs stdout *bytes* against the checked-in
// expectation. Any change to number formatting, canonicalization, response
// envelopes, field order or model arithmetic shows up here first.
//
// When an intentional model change shifts the numbers, regenerate with
//   tools/update_golden.sh
// and review the diff like any other code change.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#ifndef IVORY_CLI_BIN
#error "IVORY_CLI_BIN must point at the ivory binary"
#endif
#ifndef IVORY_GOLDEN_DIR
#error "IVORY_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream s;
  s << in.rdbuf();
  return s.str();
}

std::string run_stdout(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) out.append(buf.data(), n);
  const int status = pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << cmd;
  return out;
}

std::string diff_hint(const std::string& expected, const std::string& actual) {
  std::size_t line = 1, col = 0;
  for (std::size_t i = 0; i < std::min(expected.size(), actual.size()); ++i) {
    if (expected[i] != actual[i]) {
      return "first byte difference at line " + std::to_string(line) + ", column " +
             std::to_string(col + 1);
    }
    if (expected[i] == '\n') {
      ++line;
      col = 0;
    } else {
      ++col;
    }
  }
  return "lengths differ: expected " + std::to_string(expected.size()) + " bytes, got " +
         std::to_string(actual.size());
}

TEST(Golden, BatchSmokeOutputIsByteIdentical) {
  const std::string dir = IVORY_GOLDEN_DIR;
  const std::string expected = read_file(dir + "/batch_smoke.expected");
  ASSERT_FALSE(expected.empty());
  // --threads 2 on purpose: responses must come back in submission order and
  // with identical bytes regardless of pool parallelism.
  const std::string actual = run_stdout(std::string(IVORY_CLI_BIN) +
                                        " batch --threads 2 < " + dir +
                                        "/batch_smoke.ndjson 2>/dev/null");
  EXPECT_EQ(expected, actual) << diff_hint(expected, actual)
                              << "\nif the change is intentional, regenerate with "
                                 "tools/update_golden.sh and review the diff";
}

TEST(Golden, RepeatAndThreadCountDoNotChangeBytes) {
  const std::string dir = IVORY_GOLDEN_DIR;
  const std::string expected = read_file(dir + "/batch_smoke.expected");
  // --repeat 2 re-submits the same set; the second pass is served from the
  // result cache and must produce the same bytes again.
  const std::string twice = run_stdout(std::string(IVORY_CLI_BIN) + " batch --repeat 2 < " +
                                       dir + "/batch_smoke.ndjson 2>/dev/null");
  EXPECT_EQ(twice, expected + expected);
  const std::string serial = run_stdout(std::string(IVORY_CLI_BIN) +
                                        " batch --threads 1 < " + dir +
                                        "/batch_smoke.ndjson 2>/dev/null");
  EXPECT_EQ(serial, expected);
}

}  // namespace
