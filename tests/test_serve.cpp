// Tests for the batch-evaluation service (src/serve): request validation,
// cache correctness (cold/warm byte-identity at several thread counts,
// eviction, fault-poisoning resistance), scheduler cancellation/deadlines,
// and the Unix-domain-socket transport against the in-process baseline.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "core/sc_model.hpp"
#include "serve/batch.hpp"
#include "serve/cache.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace ivory::serve {
namespace {

json::Value parsed(const std::string& line) { return json::Value::parse(line); }

bool response_ok(const std::string& line) {
  return parsed(line).find("ok")->as_bool();
}

std::string error_code(const std::string& line) {
  return parsed(line).find("error")->find("code")->as_string();
}

/// A small, fast, deterministic request mix covering several ops, with
/// sc_static id=1 and id=7 sharing a body (same cache entry despite ids).
std::vector<std::string> request_mix() {
  return {
      R"({"op":"sc_static","id":1,"n":3,"m":1,"cfly":4e-6,"gtot":15e3,"fsw":80e6,"iload":20})",
      R"({"op":"sc_static","id":2,"n":2,"m":1,"cfly":2e-6,"gtot":8e3,"fsw":60e6,"iload":10,"regulate":1.0})",
      R"({"op":"buck_static","id":3,"l":5e-9,"fsw":100e6,"phases":4,"iload":10})",
      R"({"op":"ldo_static","id":4,"vin":1.2,"vout":1.0,"iload":5})",
      R"({"op":"optimize","id":5,"topology":"sc","dist":4,"power":20,"area":20})",
      R"({"op":"sc_static","id":7,"m":1,"n":3,"gtot":"15k","cfly":"4u","fsw":"80meg","iload":20})",
  };
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string all;
  for (const std::string& l : lines) {
    all += l;
    all += '\n';
  }
  return all;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(Serve, MalformedLineBecomesStructuredError) {
  Service svc;
  const std::string r = svc.handle_line("this is not json");
  EXPECT_FALSE(response_ok(r));
  EXPECT_EQ(error_code(r), "bad_request");
  EXPECT_TRUE(parsed(r).find("id")->is_null());
  EXPECT_EQ(svc.stats().n_errors, 1u);
}

TEST(Serve, UnknownOpAndMissingOpAreRejected) {
  Service svc;
  EXPECT_EQ(error_code(svc.handle_line(R"({"id":1,"op":"frobnicate"})")), "bad_request");
  EXPECT_EQ(error_code(svc.handle_line(R"({"id":2})")), "bad_request");
  // The id is still echoed on envelope errors.
  EXPECT_DOUBLE_EQ(
      parsed(svc.handle_line(R"({"id":2})")).find("id")->as_number(), 2.0);
}

TEST(Serve, UnknownAndMistypedFieldsAreNamed) {
  Service svc;
  const std::string unknown =
      svc.handle_line(R"({"op":"sc_static","id":1,"cflyy":4e-6})");
  EXPECT_FALSE(response_ok(unknown));
  EXPECT_NE(parsed(unknown).find("error")->find("detail")->as_string().find("cflyy"),
            std::string::npos);

  const std::string mistyped =
      svc.handle_line(R"({"op":"sc_static","id":1,"n":2.5})");
  EXPECT_FALSE(response_ok(mistyped));
  EXPECT_NE(parsed(mistyped).find("error")->find("detail")->as_string().find("'n'"),
            std::string::npos);

  const std::string badspice =
      svc.handle_line(R"({"op":"sc_static","id":1,"cfly":"4lightyears"})");
  EXPECT_FALSE(response_ok(badspice));
  // Validation failures are not cached as successes.
  EXPECT_EQ(svc.stats().cache.entries, 0u);
}

TEST(Serve, DldoStaticSchemaIsStrict) {
  Service svc;
  // Unknown member: named in the diagnostic, not silently defaulted.
  const std::string unknown =
      svc.handle_line(R"({"op":"dldo_static","id":1,"fclkk":5e8})");
  EXPECT_FALSE(response_ok(unknown));
  EXPECT_NE(parsed(unknown).find("error")->find("detail")->as_string().find("fclkk"),
            std::string::npos);

  // Mistyped member: a fractional comparator count names the field.
  const std::string mistyped =
      svc.handle_line(R"({"op":"dldo_static","id":2,"ncomp":2.5})");
  EXPECT_FALSE(response_ok(mistyped));
  EXPECT_NE(parsed(mistyped).find("error")->find("detail")->as_string().find("'ncomp'"),
            std::string::npos);
  EXPECT_EQ(svc.stats().cache.entries, 0u);

  // The happy path evaluates and reports the TI-comparator ripple division.
  const std::string ok1 =
      svc.handle_line(R"({"op":"dldo_static","id":3,"ncomp":1,"iload":2})");
  const std::string ok4 =
      svc.handle_line(R"({"op":"dldo_static","id":4,"ncomp":4,"iload":2})");
  ASSERT_TRUE(response_ok(ok1));
  ASSERT_TRUE(response_ok(ok4));
  const double r1 =
      parsed(ok1).find("result")->find("analysis")->find("ripple_pp_v")->as_number();
  const double r4 =
      parsed(ok4).find("result")->find("analysis")->find("ripple_pp_v")->as_number();
  EXPECT_NEAR(r4, r1 / 4.0, 1e-15);
}

TEST(Serve, ScenarioEvalSchemaIsStrict) {
  Service svc;
  // preset and states are mutually exclusive and one is required.
  const std::string neither = svc.handle_line(R"({"op":"scenario_eval","id":1})");
  EXPECT_FALSE(response_ok(neither));
  EXPECT_NE(parsed(neither).find("error")->find("detail")->as_string().find("exactly one"),
            std::string::npos);
  const std::string both = svc.handle_line(
      R"({"op":"scenario_eval","id":2,"preset":"active-idle","states":[{"name":"a","v":1.0,"f":1e9,"residency":1.0}]})");
  EXPECT_FALSE(response_ok(both));

  // Unknown member inside a state object: named with its array index.
  const std::string badstate = svc.handle_line(
      R"({"op":"scenario_eval","id":3,"states":[{"name":"a","v":1.0,"f":1e9,"residencyy":1.0}]})");
  EXPECT_FALSE(response_ok(badstate));
  const std::string detail =
      parsed(badstate).find("error")->find("detail")->as_string();
  EXPECT_NE(detail.find("states[0]"), std::string::npos) << detail;
  EXPECT_NE(detail.find("residencyy"), std::string::npos) << detail;

  // Unknown preset: rejected with the known names.
  const std::string badpreset =
      svc.handle_line(R"({"op":"scenario_eval","id":4,"preset":"no-such"})");
  EXPECT_FALSE(response_ok(badpreset));
  EXPECT_NE(parsed(badpreset).find("error")->find("detail")->as_string().find("preset"),
            std::string::npos);

  // Unknown top-level member next to a valid preset.
  const std::string unknown = svc.handle_line(
      R"({"op":"scenario_eval","id":5,"preset":"active-idle","topologyy":"sc"})");
  EXPECT_FALSE(response_ok(unknown));
  EXPECT_NE(parsed(unknown).find("error")->find("detail")->as_string().find("topologyy"),
            std::string::npos);
  EXPECT_EQ(svc.stats().cache.entries, 0u);
}

TEST(Serve, ScenarioEvalEvaluatesAndCaches) {
  Service svc;
  const std::string req =
      R"({"op":"scenario_eval","id":9,"preset":"gpu-dvfs-step","dist":2,"power":10,"duration":"2u","dt":"4n"})";
  const std::string cold = svc.handle_line(req);
  ASSERT_TRUE(response_ok(cold)) << cold;
  const json::Value root = parsed(cold);
  const json::Value* scen = root.find("result")->find("scenario");
  ASSERT_NE(scen, nullptr);
  EXPECT_TRUE(scen->find("complete")->as_bool());
  EXPECT_GT(scen->find("weighted_efficiency")->as_number(), 0.0);
  EXPECT_EQ(scen->find("cells")->as_array().size(), 2u);
  // Warm hit: byte-identical, no second evaluation.
  const std::string warm = svc.handle_line(req);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(svc.stats().cache.hits, 1u);
}

TEST(Serve, ParetoEvaluatesAndCaches) {
  Service svc;
  const std::string req =
      R"({"op":"pareto","id":1,"power":20,"area":20,"density":0.2,"simulate":false})";
  const std::string cold = svc.handle_line(req);
  ASSERT_TRUE(response_ok(cold)) << cold;
  const json::Value root = parsed(cold);
  const json::Value* front = root.find("result")->find("front");
  ASSERT_NE(front, nullptr);
  EXPECT_GT(front->find("points")->as_array().size(), 0u);
  EXPECT_GT(front->find("stats")->find("n_screened")->as_number(), 0.0);
  // Warm hit: byte-identical, no second funnel run.
  const std::string warm = svc.handle_line(req);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(svc.stats().cache.hits, 1u);
}

TEST(Serve, ParetoTopKTruncatesTheResponse) {
  Service svc;
  const std::string all = svc.handle_line(
      R"({"op":"pareto","id":1,"density":0.2,"simulate":false})");
  ASSERT_TRUE(response_ok(all)) << all;
  const std::size_t n_all =
      parsed(all).find("result")->find("front")->find("points")->as_array().size();
  ASSERT_GT(n_all, 3u);

  const std::string top3 = svc.handle_line(
      R"({"op":"pareto","id":2,"density":0.2,"simulate":false,"top_k":3})");
  ASSERT_TRUE(response_ok(top3)) << top3;
  const json::Value doc = parsed(top3);
  EXPECT_EQ(doc.find("result")->find("front")->find("points")->as_array().size(), 3u);
  // top_k bounds the response, not the sweep: the stats still cover the
  // whole frontier.
  EXPECT_EQ(doc.find("result")->find("front")->find("stats")->find("frontier_size")
                ->as_number(),
            static_cast<double>(n_all));
}

TEST(Serve, ParetoSchemaIsStrict) {
  Service svc;
  // Unknown field is named.
  const std::string unknown =
      svc.handle_line(R"({"op":"pareto","id":1,"densityy":0.2})");
  EXPECT_FALSE(response_ok(unknown));
  EXPECT_NE(parsed(unknown).find("error")->find("detail")->as_string().find("densityy"),
            std::string::npos);
  // top_k must be a positive integer; the diagnostic names the field.
  const std::string zero =
      svc.handle_line(R"({"op":"pareto","id":2,"top_k":0})");
  EXPECT_FALSE(response_ok(zero));
  EXPECT_NE(parsed(zero).find("error")->find("detail")->as_string().find("top_k"),
            std::string::npos);
  const std::string frac =
      svc.handle_line(R"({"op":"pareto","id":3,"top_k":2.5})");
  EXPECT_FALSE(response_ok(frac));
  EXPECT_NE(parsed(frac).find("error")->find("detail")->as_string().find("top_k"),
            std::string::npos);
  // Out-of-range density is rejected before any screening happens.
  const std::string bad_density =
      svc.handle_line(R"({"op":"pareto","id":4,"density":0})");
  EXPECT_FALSE(response_ok(bad_density));
  EXPECT_NE(parsed(bad_density).find("error")->find("detail")->as_string().find("density"),
            std::string::npos);
  EXPECT_EQ(svc.stats().cache.entries, 0u);
}

TEST(Serve, ExploreTopKTruncatesTheResponse) {
  Service svc;
  const std::string all = svc.handle_line(R"({"op":"explore","id":1,"power":10})");
  ASSERT_TRUE(response_ok(all)) << all;
  const std::size_t n_all =
      parsed(all).find("result")->find("results")->as_array().size();
  ASSERT_GT(n_all, 2u);

  const std::string top2 =
      svc.handle_line(R"({"op":"explore","id":2,"power":10,"top_k":2})");
  ASSERT_TRUE(response_ok(top2)) << top2;
  const json::Value doc = parsed(top2);
  EXPECT_EQ(doc.find("result")->find("results")->as_array().size(), 2u);
  // The report still covers the full sweep.
  EXPECT_EQ(doc.find("result")->find("report")->find("n_evaluated")->as_number(),
            parsed(all).find("result")->find("report")->find("n_evaluated")->as_number());

  const std::string bad =
      svc.handle_line(R"({"op":"explore","id":3,"power":10,"top_k":-1})");
  EXPECT_FALSE(response_ok(bad));
  EXPECT_NE(parsed(bad).find("error")->find("detail")->as_string().find("top_k"),
            std::string::npos);
}

TEST(Serve, ScStaticMatchesDirectModelCall) {
  Service svc;
  const std::string r = svc.handle_line(request_mix()[0]);
  ASSERT_TRUE(response_ok(r));
  const json::Value doc = parsed(r);
  const json::Value* analysis = doc.find("result")->find("analysis");
  ASSERT_NE(analysis, nullptr);

  core::ScDesign d;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 3;
  d.m = 1;
  d.c_fly_f = 4e-6;
  d.c_out_f = 0.2e-6;
  d.g_tot_s = 15e3;
  d.f_sw_hz = 80e6;
  d.n_interleave = 8;
  const core::ScAnalysis a = core::analyze_sc(d, 3.3, 20.0);
  EXPECT_DOUBLE_EQ(analysis->find("efficiency")->as_number(), a.efficiency);
  EXPECT_DOUBLE_EQ(analysis->find("vout_v")->as_number(), a.vout_v);
  EXPECT_DOUBLE_EQ(analysis->find("area_m2")->as_number(), a.area_m2);
}

TEST(Serve, StatsOpReportsCountersAndIsNeverCached) {
  Service svc;
  (void)svc.handle_line(request_mix()[0]);
  const std::string r = svc.handle_line(R"({"op":"stats","id":0})");
  ASSERT_TRUE(response_ok(r));
  const json::Value doc = parsed(r);
  const json::Value* res = doc.find("result");
  EXPECT_DOUBLE_EQ(res->find("n_requests")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(res->find("n_evaluations")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(res->find("cache")->find("entries")->as_number(), 1.0);
  // A second stats call sees different counters — proof it was not cached.
  const std::string r2 = svc.handle_line(R"({"op":"stats","id":0})");
  EXPECT_DOUBLE_EQ(parsed(r2).find("result")->find("n_requests")->as_number(), 3.0);
}

// ---------------------------------------------------------------------------
// Cache correctness
// ---------------------------------------------------------------------------

TEST(Serve, EnvelopeFieldsAndSpellingDoNotSplitCacheEntries) {
  Service svc;
  const std::string cold = svc.handle_line(request_mix()[0]);
  // id=7 spells the same body with reordered keys and SPICE-suffixed
  // strings... but strings hash differently (structural normalization);
  // only the *number spelling* and member order normalize.
  const std::string reordered = svc.handle_line(
      R"({"id":99,"iload":20,"fsw":8e7,"gtot":15000,"cfly":0.000004,"n":3,"m":1,"op":"sc_static"})");
  EXPECT_EQ(svc.stats().cache.hits, 1u);
  // Identical result payload, different echoed id.
  EXPECT_EQ(*parsed(cold).find("result"), *parsed(reordered).find("result"));
}

TEST(Serve, ColdAndWarmBytesIdenticalAcrossThreadCounts) {
  const std::string input = join_lines(request_mix());
  std::string reference;
  for (const unsigned threads : {1u, 2u, 4u}) {
    par::set_global_threads(threads);
    Service svc;
    std::istringstream in(input);
    std::ostringstream out;
    BatchOptions opt;
    opt.repeat = 2;
    const BatchSummary summary = run_batch(in, out, svc, opt);

    // Pass 2 replays the identical stream: all hits, zero evaluations, and
    // (the acceptance criterion) strictly fewer model evaluations.
    ASSERT_EQ(summary.passes.size(), 2u);
    EXPECT_GT(summary.passes[1].hits, 0u);
    EXPECT_GT(summary.passes[1].hit_rate(), 0.0);
    EXPECT_LT(summary.passes[1].evaluations, summary.passes[0].evaluations);
    EXPECT_EQ(summary.passes[1].evaluations, 0u);
    EXPECT_EQ(summary.passes[1].errors, 0u);

    // Warm pass bytes == cold pass bytes, and all thread counts agree.
    const std::string all = out.str();
    const std::size_t half = all.size() / 2;
    ASSERT_EQ(all.size() % 2, 0u);
    EXPECT_EQ(all.substr(0, half), all.substr(half));
    if (reference.empty())
      reference = all;
    else
      EXPECT_EQ(all, reference) << "thread count " << threads << " changed bytes";
  }
  par::set_global_threads(1);
}

TEST(Serve, LruEvictionUnderTinyCapacity) {
  ResultCache cache(2, 1);  // one shard of two entries
  const auto h = [](const std::string& k) { return fnv1a64(k); };
  cache.insert(h("a"), "a", "pa");
  cache.insert(h("b"), "b", "pb");
  ASSERT_TRUE(cache.lookup(h("a"), "a").has_value());  // promotes "a"
  cache.insert(h("c"), "c", "pc");                     // evicts LRU = "b"
  EXPECT_EQ(cache.lookup(h("a"), "a").value(), "pa");
  EXPECT_EQ(cache.lookup(h("c"), "c").value(), "pc");
  EXPECT_FALSE(cache.lookup(h("b"), "b").has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(Serve, HashCollisionDegradesToMissNotWrongAnswer) {
  ResultCache cache(4, 1);
  // Same forged hash, different canonical keys: the second lookup must not
  // return the first entry's payload.
  cache.insert(42, "key-one", "payload-one");
  EXPECT_FALSE(cache.lookup(42, "key-two").has_value());
  EXPECT_EQ(cache.lookup(42, "key-one").value(), "payload-one");
}

TEST(Serve, ServiceEvictionStillServesCorrectBytes) {
  ServiceOptions opt;
  opt.cache_capacity = 2;
  opt.cache_shards = 1;
  Service svc(opt);
  // 5 distinct requests through a 2-entry cache, then replay: every response
  // must match its cold bytes even though most were evicted.
  std::vector<std::string> reqs;
  for (int n = 2; n <= 6; ++n)
    reqs.push_back(R"({"op":"sc_static","id":)" + std::to_string(n) +
                   R"(,"n":)" + std::to_string(n) + R"(,"m":1,"iload":10})");
  std::vector<std::string> cold;
  for (const std::string& r : reqs) cold.push_back(svc.handle_line(r));
  EXPECT_GT(svc.stats().cache.evictions, 0u);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    EXPECT_EQ(svc.handle_line(reqs[i]), cold[i]) << reqs[i];
  EXPECT_LE(svc.stats().cache.entries, 2u);
}

TEST(Serve, FaultedEvaluationIsNotCached) {
  fault::disarm_all();
  Service svc;
  const std::string line = request_mix()[0];

  fault::arm_on_hit("sc_static_analysis", fault::Action::Throw, 1);
  const std::string failed = svc.handle_line(line);
  fault::disarm_all();

  EXPECT_FALSE(response_ok(failed));
  EXPECT_EQ(error_code(failed), "numerical");
  EXPECT_EQ(parsed(failed).find("error")->find("site")->as_string(), "serve.sc_static");
  EXPECT_EQ(svc.stats().cache.entries, 0u);  // the failure was not cached

  // With the fault disarmed the same request succeeds and caches normally.
  const std::string ok = svc.handle_line(line);
  EXPECT_TRUE(response_ok(ok));
  EXPECT_EQ(svc.stats().cache.entries, 1u);
  EXPECT_EQ(svc.handle_line(line), ok);  // served from cache, same bytes
  EXPECT_EQ(svc.stats().cache.hits, 1u);
}

// ---------------------------------------------------------------------------
// Scheduler: ordering, fairness bookkeeping, cancellation, deadlines.
// ---------------------------------------------------------------------------

TEST(Serve, SchedulerPreservesPerClientOrder) {
  Service svc;
  Scheduler::Options opt;
  opt.wave = 2;
  Scheduler sched(svc, opt);
  const int client = sched.open_client();
  std::mutex mu;
  std::vector<std::string> got;
  for (int i = 0; i < 8; ++i) {
    std::string line = R"({"op":"stats","id":)" + std::to_string(i) + "}";
    sched.submit(client, std::move(line), [&](const std::string& r) {
      std::lock_guard<std::mutex> lock(mu);
      got.push_back(r);
    });
  }
  sched.drain();
  ASSERT_EQ(got.size(), 8u);
  for (int i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(parsed(got[i]).find("id")->as_number(), i) << "position " << i;
  sched.close_client(client);
}

TEST(Serve, SchedulerCancelsQueuedJob) {
  Service svc;
  Scheduler::Options opt;
  opt.start_paused = true;
  Scheduler sched(svc, opt);
  const int client = sched.open_client();
  std::mutex mu;
  std::vector<std::string> got;
  const auto sink = [&](const std::string& r) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(r);
  };
  sched.submit(client, R"({"op":"stats","id":1})", sink);
  sched.submit(client, R"({"op":"stats","id":2})", sink);
  EXPECT_TRUE(sched.cancel(client, json::Value(2.0)));
  EXPECT_FALSE(sched.cancel(client, json::Value(99.0)));  // no such job
  sched.resume();
  sched.drain();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(response_ok(got[0]));
  EXPECT_FALSE(response_ok(got[1]));
  EXPECT_EQ(error_code(got[1]), "cancelled");
  sched.close_client(client);
}

TEST(Serve, SchedulerExpiresDeadlinedJob) {
  Service svc;
  Scheduler::Options opt;
  opt.start_paused = true;
  Scheduler sched(svc, opt);
  const int client = sched.open_client();
  std::mutex mu;
  std::vector<std::string> got;
  const auto sink = [&](const std::string& r) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(r);
  };
  // 1 ms deadline, held paused for 50 ms: expired before dispatch. The
  // deadline-free sibling must still evaluate.
  sched.submit(client, R"({"op":"stats","id":1,"deadline_ms":1})", sink);
  sched.submit(client, R"({"op":"stats","id":2})", sink);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sched.resume();
  sched.drain();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_FALSE(response_ok(got[0]));
  EXPECT_EQ(error_code(got[0]), "deadline_exceeded");
  EXPECT_TRUE(response_ok(got[1]));
  sched.close_client(client);
}

// ---------------------------------------------------------------------------
// Unix-domain-socket transport vs in-process baseline.
// ---------------------------------------------------------------------------

TEST(Serve, SocketClientsGetBatchIdenticalBytes) {
  // Baseline: single-threaded in-process service.
  par::set_global_threads(1);
  const std::vector<std::string> reqs = request_mix();
  std::vector<std::string> expected;
  {
    Service svc;
    for (const std::string& r : reqs) expected.push_back(svc.handle_line(r));
  }

  par::set_global_threads(4);
  ServerOptions opt;
  opt.socket_path = "/tmp/ivory_test_serve_" + std::to_string(::getpid()) + ".sock";
  Server server(std::move(opt));
  server.start();

  // Two concurrent clients interleave the same request stream; each must get
  // its responses in its own submission order with baseline-identical bytes.
  std::vector<std::vector<std::string>> got(2);
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient cli(server.socket_path());
      for (const std::string& r : reqs) cli.send_line(r);
      for (std::size_t i = 0; i < reqs.size(); ++i)
        got[c].push_back(cli.recv_line());
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();
  par::set_global_threads(1);

  for (int c = 0; c < 2; ++c) {
    ASSERT_EQ(got[c].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(got[c][i], expected[i]) << "client " << c << " line " << i;
  }
}

// ---------------------------------------------------------------------------
// Switch-level transient op (topology "spice"): inline netlist through the
// MNA engine, with the keyed LU cache behind it.
// ---------------------------------------------------------------------------

/// Inline two-phase SC netlist request at a given LU-cache capacity. 40
/// switching cycles at 400 steps/cycle: long enough for the cache to cycle
/// through every phase configuration, small enough for tier 1.
std::string spice_transient_request(int lu_cache, int id) {
  std::ostringstream req;
  req << R"({"op":"transient","id":)" << id << R"(,"topology":"spice",)"
      << R"("netlist":"vin in 0 DC 3.3\ns1 in fly 0.01 1e8 CLOCK(20meg 2 0.48 0)\n)"
      << R"(s2 fly out 0.01 1e8 CLOCK(20meg 2 0.48 1)\ncfly fly 0 100n IC=1.65\n)"
      << R"(cout out 0 100n IC=1.65\nrl out 0 3.3\n.end\n",)"
      << R"("tstop":2e-6,"dt":1.25e-10,"method":"be","uic":true,"record":["out"],)"
      << R"("return_waveform":true,"lu_cache":)" << lu_cache << "}";
  return req.str();
}

/// Everything from the per-node stats onward: node summaries, waveform
/// arrays, and the time grid. The cache counters that precede it
/// legitimately differ with capacity; these bytes must not.
std::string waveform_payload(const std::string& line) {
  const std::size_t at = line.find("\"nodes\"");
  return at == std::string::npos ? line : line.substr(at);
}

TEST(Serve, SpiceTransientBytesIdenticalAcrossCacheCapacities) {
  Service svc;
  const std::string ref_line = svc.handle_line(spice_transient_request(1, 1));
  ASSERT_TRUE(response_ok(ref_line)) << ref_line;
  ASSERT_NE(ref_line.find("\"lu_factorizations\""), std::string::npos);
  const std::string reference = waveform_payload(ref_line);
  ASSERT_NE(reference.find("\"time_s\""), std::string::npos);
  int id = 2;
  for (const int capacity : {0, 8, 64}) {
    const std::string line = svc.handle_line(spice_transient_request(capacity, id++));
    ASSERT_TRUE(response_ok(line)) << line;
    EXPECT_EQ(waveform_payload(line), reference)
        << "lu_cache=" << capacity << " changed the waveform bytes";
  }
}

TEST(Serve, SpiceTransientBytesIdenticalAcrossThreadCounts) {
  // The serve path must give the same bytes whether the pool runs 1, 2, or 4
  // threads: the transient op itself is sequential, so this guards against
  // any thread-count-dependent state leaking into the response.
  const std::string input = spice_transient_request(8, 0) + "\n";
  std::string reference;
  for (const unsigned threads : {1u, 2u, 4u}) {
    par::set_global_threads(threads);
    Service svc;
    std::istringstream in(input);
    std::ostringstream out;
    const BatchSummary summary = run_batch(in, out, svc, BatchOptions{});
    EXPECT_EQ(summary.passes.back().errors, 0u);
    if (reference.empty())
      reference = out.str();
    else
      EXPECT_EQ(out.str(), reference) << "thread count " << threads << " changed bytes";
  }
  par::set_global_threads(1);
}

TEST(Serve, SpiceTransientSchemaIsStrict) {
  Service svc;
  // Missing netlist.
  const std::string no_netlist = svc.handle_line(
      R"({"op":"transient","id":1,"topology":"spice","tstop":1e-6,"dt":1e-9})");
  EXPECT_FALSE(response_ok(no_netlist));
  EXPECT_NE(parsed(no_netlist).find("error")->find("detail")->as_string().find("netlist"),
            std::string::npos);
  // Negative cache capacity.
  const std::string bad_cap = svc.handle_line(spice_transient_request(-1, 2));
  EXPECT_FALSE(response_ok(bad_cap));
  EXPECT_NE(parsed(bad_cap).find("error")->find("detail")->as_string().find("lu_cache"),
            std::string::npos);
  // Step budget: tstop/dt beyond max_samples must be rejected, not simulated.
  ServiceOptions tiny;
  tiny.max_samples = 100;
  Service small(tiny);
  const std::string over = svc.handle_line(spice_transient_request(8, 3));
  EXPECT_TRUE(response_ok(over));
  const std::string rejected = small.handle_line(spice_transient_request(8, 4));
  EXPECT_FALSE(response_ok(rejected));
}

// ---------------------------------------------------------------------------
// Robustness: dead clients and enriched numerical failures.
// ---------------------------------------------------------------------------

TEST(Serve, ClientDroppingMidResponseDoesNotKillTheServer) {
  // Regression for the SIGPIPE hole: a client that sends a request and
  // disconnects before reading the response used to be able to kill the
  // whole process (write to a closed socket -> SIGPIPE -> default terminate).
  // The failure mode must cost exactly that one connection.
  ServerOptions opt;
  opt.socket_path = "/tmp/ivory_test_sigpipe_" + std::to_string(::getpid()) + ".sock";
  Server server(std::move(opt));
  server.start();

  for (int round = 0; round < 3; ++round) {
    // An expensive-enough request that the response is still being computed
    // when the client's socket is already closed.
    BlockingClient dropper(server.socket_path());
    dropper.send_line(spice_transient_request(8, 100 + round));
    // ~BlockingClient closes the fd immediately; the server's response write
    // hits a dead peer.
  }
  // Give the in-flight evaluations time to finish and write into the void.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The server is still alive and serves a well-behaved client.
  BlockingClient client(server.socket_path());
  client.send_line(request_mix()[0]);
  EXPECT_TRUE(response_ok(client.recv_line()));
  server.stop();
}

TEST(Serve, SingularMatrixErrorNamesTheOffendingUnknown) {
  // Two ideal voltage sources forcing the same node: structurally singular
  // MNA system. The serve error envelope must surface the enriched
  // diagnostic (which unknown's pivot collapsed), not a bare "singular".
  Service svc;
  const std::string resp = svc.handle_line(
      R"({"op":"transient","id":1,"topology":"spice",)"
      R"("netlist":"v1 rail 0 DC 1.0\nv2 rail 0 DC 2.0\nr1 rail 0 1.0\n.end\n",)"
      R"("tstop":1e-8,"dt":1e-9})");
  EXPECT_FALSE(response_ok(resp));
  const json::Value err = *parsed(resp).find("error");
  EXPECT_EQ(err.find("code")->as_string(), "numerical");
  EXPECT_EQ(err.find("site")->as_string(), "serve.transient");
  const std::string detail = err.find("detail")->as_string();
  EXPECT_NE(detail.find("singular"), std::string::npos) << detail;
  EXPECT_NE(detail.find("offending unknown"), std::string::npos) << detail;
  // The colliding unknown is one of the source branch currents.
  EXPECT_NE(detail.find("branch current"), std::string::npos) << detail;
}

TEST(Serve, FailedEvaluationsNeverReachTheDurableStore) {
  std::string dir = "/tmp/ivory_test_failstore_XXXXXX";
  ASSERT_NE(::mkdtemp(dir.data()), nullptr);
  ServiceOptions opt;
  opt.cache_dir = dir;
  Service svc(opt);
  const std::string resp = svc.handle_line(
      R"({"op":"transient","id":1,"topology":"spice",)"
      R"("netlist":"v1 rail 0 DC 1.0\nv2 rail 0 DC 2.0\nr1 rail 0 1.0\n.end\n",)"
      R"("tstop":1e-8,"dt":1e-9})");
  EXPECT_FALSE(response_ok(resp));
  // Neither tier may remember the failure: the next identical request (with
  // the singularity fixed upstream, or transiently absent) must re-evaluate.
  EXPECT_EQ(svc.stats().cache.entries, 0u);
  EXPECT_EQ(svc.stats().store.puts, 0u);
  EXPECT_EQ(svc.stats().store.entries, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ivory::serve
