// Durable content-addressed store tests: crash-safe publish, verified
// reads (corruption -> quarantine + miss, collision -> miss, never a wrong
// answer), deterministic filesystem fault injection at every publish site,
// the GC size cap, and warm-restart byte-identity through for_each().
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/hash.hpp"
#include "serve/service.hpp"
#include "serve/store.hpp"

namespace ivory::serve {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test store directory under TMPDIR, removed on teardown.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = (fs::temp_directory_path() / "ivory-store-XXXXXX").string();
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    fault::disarm_all();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  DurableStore open(std::uint64_t max_bytes = 256ull << 20) {
    StoreOptions o;
    o.dir = dir_;
    o.max_bytes = max_bytes;
    return DurableStore(o);
  }

  /// Files in the store directory matching a prefix (e.g. "e", "quar-", "tmp-").
  std::vector<std::string> files_with_prefix(const std::string& prefix) const {
    std::vector<std::string> out;
    for (const auto& e : fs::directory_iterator(dir_)) {
      const std::string name = e.path().filename().string();
      if (name.rfind(prefix, 0) == 0) out.push_back(name);
    }
    return out;
  }

  std::string dir_;
};

std::uint64_t key_hash(std::string_view key) { return fnv1a64(key); }

TEST_F(StoreTest, RoundTripAndStats) {
  DurableStore store = open();
  const std::string key = R"({"op":"sc_static","n":3})";
  const std::string payload = R"({"analysis":{"eff":0.91}})";

  EXPECT_FALSE(store.get(key_hash(key), key).has_value());
  EXPECT_TRUE(store.put(key_hash(key), key, payload));
  const std::optional<std::string> got = store.get(key_hash(key), key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);

  const StoreStats s = store.stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, payload.size());
  EXPECT_EQ(s.quarantined, 0u);
}

TEST_F(StoreTest, SurvivesProcessRestartByteIdentical) {
  const std::string key = R"({"op":"optimize","power":20})";
  const std::string payload = std::string(4096, 'x') + "tail";
  {
    DurableStore store = open();
    ASSERT_TRUE(store.put(key_hash(key), key, payload));
  }
  DurableStore reopened = open();
  const std::optional<std::string> got = reopened.get(key_hash(key), key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);  // byte-identical across the "restart"
  EXPECT_EQ(reopened.stats().entries, 1u);
}

TEST_F(StoreTest, HashCollisionIsAMissNeverAWrongAnswer) {
  DurableStore store = open();
  const std::string key_a = "request-a";
  const std::string key_b = "request-b";  // pretend it hashes identically
  ASSERT_TRUE(store.put(key_hash(key_a), key_a, "payload-a"));

  // Probe the same slot with a different canonical key: full-key compare
  // must report a miss and leave the intact entry alone.
  EXPECT_FALSE(store.get(key_hash(key_a), key_b).has_value());
  EXPECT_EQ(store.stats().quarantined, 0u);
  EXPECT_EQ(store.stats().entries, 1u);
  const std::optional<std::string> got = store.get(key_hash(key_a), key_a);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload-a");
}

TEST_F(StoreTest, BitFlippedEntryIsQuarantinedNotServed) {
  const std::string key = "flip-me";
  const std::string payload(512, 'p');
  DurableStore store = open();
  ASSERT_TRUE(store.put(key_hash(key), key, payload));

  // Flip one payload byte on disk, behind the store's back.
  const std::vector<std::string> entries = files_with_prefix("e");
  ASSERT_EQ(entries.size(), 1u);
  const std::string path = dir_ + "/" + entries[0];
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-7, std::ios::end);
    f.put('Q');
  }

  EXPECT_FALSE(store.get(key_hash(key), key).has_value());
  EXPECT_EQ(store.stats().quarantined, 1u);
  EXPECT_EQ(store.stats().entries, 0u);
  // The entry is no longer addressable, only quarantined for post-mortem.
  EXPECT_TRUE(files_with_prefix("e").empty());
  EXPECT_EQ(files_with_prefix("quar-").size(), 1u);
}

TEST_F(StoreTest, TruncatedEntryIsQuarantinedOnReadAndOnScan) {
  const std::string key = "truncate-me";
  DurableStore store = open();
  ASSERT_TRUE(store.put(key_hash(key), key, std::string(2048, 't')));
  const std::vector<std::string> entries = files_with_prefix("e");
  ASSERT_EQ(entries.size(), 1u);
  fs::resize_file(dir_ + "/" + entries[0], 100);  // torn write after a crash

  EXPECT_FALSE(store.get(key_hash(key), key).has_value());
  EXPECT_EQ(store.stats().quarantined, 1u);

  // A restart over a directory holding only quarantine leftovers indexes
  // nothing and warm-loads nothing.
  DurableStore reopened = open();
  std::size_t delivered = reopened.for_each(
      [](std::uint64_t, const std::string&, const std::string&) {});
  EXPECT_EQ(delivered, 0u);
}

TEST_F(StoreTest, EnospcFaultFailsPutButStoreStaysReadable) {
  DurableStore store = open();
  ASSERT_TRUE(store.put(key_hash("keep"), "keep", "kept-payload"));

  fault::arm_on_hit("cas.enospc", fault::Action::Throw, 1);
  EXPECT_FALSE(store.put(key_hash("new"), "new", "lost-payload"));
  fault::disarm_all();

  EXPECT_EQ(store.stats().put_failures, 1u);
  EXPECT_FALSE(store.get(key_hash("new"), "new").has_value());
  const std::optional<std::string> kept = store.get(key_hash("keep"), "keep");
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(*kept, "kept-payload");
  // The failed publish left no addressable debris.
  EXPECT_EQ(files_with_prefix("e").size(), 1u);
}

TEST_F(StoreTest, ShortWriteFaultLeavesNoAddressableEntry) {
  DurableStore store = open();
  fault::arm_on_hit("cas.short_write", fault::Action::Throw, 1);
  EXPECT_FALSE(store.put(key_hash("short"), "short", std::string(1024, 's')));
  fault::disarm_all();

  EXPECT_FALSE(store.get(key_hash("short"), "short").has_value());
  EXPECT_TRUE(files_with_prefix("e").empty());  // tmp debris is not addressable
  EXPECT_EQ(store.stats().put_failures, 1u);
}

TEST_F(StoreTest, TornRenameFaultIsCaughtByTheReadSideChecksum) {
  DurableStore store = open();
  fault::arm_on_hit("cas.torn_rename", fault::Action::Throw, 1);
  // Worst case: a truncated file lands under the final addressable name.
  EXPECT_FALSE(store.put(key_hash("torn"), "torn", std::string(1024, 'r')));
  fault::disarm_all();
  ASSERT_EQ(files_with_prefix("e").size(), 1u);

  // The verified read refuses to serve it and quarantines instead.
  EXPECT_FALSE(store.get(key_hash("torn"), "torn").has_value());
  EXPECT_EQ(store.stats().quarantined, 1u);
  EXPECT_TRUE(files_with_prefix("e").empty());
}

TEST_F(StoreTest, BitflipFaultIsCaughtByTheReadSideChecksum) {
  DurableStore store = open();
  fault::arm_on_hit("cas.bitflip", fault::Action::Throw, 1);
  // The publish itself "succeeds" — silent corruption in flight.
  EXPECT_TRUE(store.put(key_hash("silent"), "silent", std::string(256, 'b')));
  fault::disarm_all();

  EXPECT_FALSE(store.get(key_hash("silent"), "silent").has_value());
  EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST_F(StoreTest, GcEvictsLeastRecentlyUsedFirst) {
  // Each entry is ~1KB; cap the store at ~3 of them.
  const std::string payload(1024, 'g');
  DurableStore store = open(3 * 1100);
  ASSERT_TRUE(store.put(key_hash("a"), "a", payload));
  ASSERT_TRUE(store.put(key_hash("b"), "b", payload));
  ASSERT_TRUE(store.put(key_hash("c"), "c", payload));
  // Touch "a" so "b" becomes the LRU victim when "d" arrives.
  ASSERT_TRUE(store.get(key_hash("a"), "a").has_value());
  ASSERT_TRUE(store.put(key_hash("d"), "d", payload));

  EXPECT_GE(store.stats().gc_evictions, 1u);
  EXPECT_LE(store.stats().bytes, 3u * 1100u);
  EXPECT_FALSE(store.get(key_hash("b"), "b").has_value());  // evicted
  EXPECT_TRUE(store.get(key_hash("a"), "a").has_value());   // recently used
  EXPECT_TRUE(store.get(key_hash("d"), "d").has_value());   // just published
}

TEST_F(StoreTest, ForEachDeliversOldestFirstForWarmLoad) {
  {
    DurableStore store = open();
    // File mtimes seed the restart LRU order, and Linux stamps them at
    // jiffy granularity — space the publishes out so the order is real.
    ASSERT_TRUE(store.put(key_hash("first"), "first", "1"));
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ASSERT_TRUE(store.put(key_hash("second"), "second", "2"));
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ASSERT_TRUE(store.put(key_hash("third"), "third", "3"));
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    // Refresh "first" so it is the most recently used entry.
    ASSERT_TRUE(store.get(key_hash("first"), "first").has_value());
  }
  DurableStore reopened = open();
  std::vector<std::string> order;
  const std::size_t delivered = reopened.for_each(
      [&](std::uint64_t, const std::string& key, const std::string&) {
        order.push_back(key);
      });
  EXPECT_EQ(delivered, 3u);
  ASSERT_EQ(order.size(), 3u);
  // Oldest-first: feeding an LRU in this order leaves the most recently
  // used entry warmest. (mtime granularity can tie the two cold entries;
  // the load-bearing property is that a tie never puts "first" first.)
  EXPECT_EQ(order.back(), "first");
}

TEST_F(StoreTest, ServiceWarmLoadsAndShortCircuitsEvaluation) {
  const std::string req =
      R"({"op":"sc_static","id":1,"n":3,"m":1,"cfly":4e-6,"gtot":15e3,"fsw":80e6,"iload":20})";
  std::string cold;
  {
    ServiceOptions o;
    o.cache_dir = dir_;
    Service svc(o);
    cold = svc.handle_line(req);
    ASSERT_EQ(svc.stats().store.puts, 1u);
    ASSERT_EQ(svc.stats().n_evaluations, 1u);
  }
  ServiceOptions o;
  o.cache_dir = dir_;
  Service warm(o);
  EXPECT_EQ(warm.stats().warm_loaded, 1u);
  const std::string hit = warm.handle_line(req);
  EXPECT_EQ(hit, cold);  // byte-identical across the restart
  EXPECT_EQ(warm.stats().n_evaluations, 0u);
  EXPECT_EQ(warm.stats().cache.hits, 1u);  // served from the warmed LRU
}

TEST_F(StoreTest, ServiceFallsBackToDiskWhenMemoryCacheMisses) {
  const std::string req =
      R"({"op":"ldo_static","id":9,"vin":1.2,"vout":1.0,"iload":5})";
  std::string cold;
  {
    ServiceOptions o;
    o.cache_dir = dir_;
    Service svc(o);
    cold = svc.handle_line(req);
  }
  ServiceOptions o;
  o.cache_dir = dir_;
  o.warm_load = false;  // cold LRU, populated store: forces the durable tier
  Service svc(o);
  const std::string hit = svc.handle_line(req);
  EXPECT_EQ(hit, cold);
  EXPECT_EQ(svc.stats().n_evaluations, 0u);
  EXPECT_EQ(svc.stats().store_hits, 1u);
  EXPECT_EQ(svc.stats().store.hits, 1u);
}

TEST_F(StoreTest, ServicePutFailureDegradesDurabilityNotCorrectness) {
  ServiceOptions o;
  o.cache_dir = dir_;
  Service svc(o);
  fault::arm_on_hit("cas.enospc", fault::Action::Throw, 1);
  const std::string r = svc.handle_line(
      R"({"op":"ldo_static","id":1,"vin":1.2,"vout":1.0,"iload":5})");
  fault::disarm_all();
  // The response is still served from the in-memory value...
  EXPECT_TRUE(r.find("\"ok\":true") != std::string::npos);
  EXPECT_EQ(svc.stats().store.put_failures, 1u);
  // ...and the durable tier simply has nothing for the next restart.
  EXPECT_EQ(svc.stats().store.entries, 0u);
}

}  // namespace
}  // namespace ivory::serve
