// Unit tests for the technology database: values, scaling trends, lookups.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "tech/tech.hpp"

namespace ivory::tech {
namespace {

TEST(TechNode, NameRoundTrip) {
  for (Node n : kAllNodes) EXPECT_EQ(node_from_string(node_name(n)), n);
}

TEST(TechNode, ParsesBareNumbers) {
  EXPECT_EQ(node_from_string("45"), Node::n45);
  EXPECT_EQ(node_from_string("32nm"), Node::n32);
}

TEST(TechNode, UnknownNodeThrows) {
  EXPECT_THROW(node_from_string("28nm"), InvalidParameter);
  EXPECT_THROW(node_from_string("foo"), InvalidParameter);
}

TEST(SwitchTech, VddScalesDownWithFeatureSize) {
  double prev = 1e9;
  for (Node n : kAllNodes) {
    const double vdd = switch_tech(n, DeviceClass::Core).vdd_nom_v;
    EXPECT_LE(vdd, prev);
    prev = vdd;
  }
}

TEST(SwitchTech, FomImprovesMonotonically) {
  // Ron*Cg (the switch figure of merit) must improve at every shrink.
  double prev = 1e9;
  for (Node n : kAllNodes) {
    const double fom = switch_tech(n, DeviceClass::Core).fom_s();
    EXPECT_LT(fom, prev);
    prev = fom;
  }
}

TEST(SwitchTech, IoDevicesTolerate3v3) {
  for (Node n : kAllNodes) {
    const SwitchTech& io = switch_tech(n, DeviceClass::Io);
    const SwitchTech& core = switch_tech(n, DeviceClass::Core);
    EXPECT_GE(io.vmax_v, 3.3);
    EXPECT_GT(io.ron_w_ohm_m, core.ron_w_ohm_m);
    EXPECT_GT(io.area_per_w_m, core.area_per_w_m);
  }
}

TEST(SwitchTech, PerWidthAccessorsScaleLinearly) {
  const SwitchTech& t = switch_tech(Node::n45, DeviceClass::Core);
  const double w = 1e-3;  // 1 mm of width.
  EXPECT_NEAR(t.ron(w) * w, t.ron_w_ohm_m, 1e-18);
  EXPECT_NEAR(t.cgate(2.0 * w), 2.0 * t.cgate(w), 1e-21);
  EXPECT_GT(t.area(w), 0.0);
}

TEST(CapacitorTech, TrenchBeatsMosDensityEverywhere) {
  for (Node n : kAllNodes) {
    const CapacitorTech& mos = capacitor_tech(n, CapKind::MosCap);
    const CapacitorTech& trench = capacitor_tech(n, CapKind::DeepTrench);
    EXPECT_GT(trench.density_f_m2, 5.0 * mos.density_f_m2);
    EXPECT_LT(trench.bottom_plate_ratio, mos.bottom_plate_ratio);
  }
}

TEST(CapacitorTech, MosDensityGrowsWithScaling) {
  double prev = 0.0;
  for (Node n : kAllNodes) {
    const double d = capacitor_tech(n, CapKind::MosCap).density_f_m2;
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(CapacitorTech, AreaInverseOfDensity) {
  const CapacitorTech& t = capacitor_tech(Node::n32, CapKind::DeepTrench);
  const double c = 10.0 * nano;
  EXPECT_NEAR(t.area(c) * t.density_f_m2, c, 1e-18);
}

TEST(InductorTech, NoRolloffBelowKnee) {
  for (InductorKind k : {InductorKind::SurfaceMount, InductorKind::IntegratedInterposer,
                         InductorKind::MagneticFilm}) {
    const InductorTech& t = inductor_tech(k);
    const double l0 = 10.0 * nano;
    EXPECT_NEAR(t.inductance_at(l0, t.f_knee_hz * 0.5), l0, 1e-18);
  }
}

TEST(InductorTech, InductanceRollsOffAboveKnee) {
  const InductorTech& t = inductor_tech(InductorKind::MagneticFilm);
  const double l0 = 10.0 * nano;
  const double l1 = t.inductance_at(l0, t.f_knee_hz * 10.0);
  const double l2 = t.inductance_at(l0, t.f_knee_hz * 100.0);
  EXPECT_LT(l1, l0);
  EXPECT_LT(l2, l1);
  EXPECT_GE(l2, l0 * t.rolloff_floor);
}

TEST(InductorTech, RolloffClampedAtFloor) {
  const InductorTech& t = inductor_tech(InductorKind::MagneticFilm);
  const double l0 = 10.0 * nano;
  EXPECT_NEAR(t.inductance_at(l0, t.f_knee_hz * 1e6), l0 * t.rolloff_floor, 1e-18);
}

TEST(InductorTech, OnlyMagneticFilmIsOnDie) {
  EXPECT_FALSE(inductor_tech(InductorKind::SurfaceMount).on_die);
  EXPECT_FALSE(inductor_tech(InductorKind::IntegratedInterposer).on_die);
  EXPECT_TRUE(inductor_tech(InductorKind::MagneticFilm).on_die);
}

TEST(InductorTech, InvalidInputsThrow) {
  const InductorTech& t = inductor_tech(InductorKind::SurfaceMount);
  EXPECT_THROW(t.inductance_at(-1.0, 1e6), ivory::InvalidParameter);
  EXPECT_THROW(t.inductance_at(1e-9, 0.0), ivory::InvalidParameter);
}

}  // namespace
}  // namespace ivory::tech
