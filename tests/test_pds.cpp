// Tests for the end-to-end PDS composition, including the paper's headline
// result: the optimal distributed-IVR PDS beats the off-chip-VRM PDS by
// roughly 9.5% in delivery efficiency.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/pds.hpp"

namespace ivory::core {
namespace {

SystemParams case_study() { return SystemParams{}; }

TEST(Pds, OffchipBreakdownIsConsistent) {
  const SystemParams sys = case_study();
  const pdn::PdnParams p = pdn::PdnParams::gpuvolt_default();
  const PdsBreakdown b = evaluate_pds_offchip(sys, p, 0.85, 0.15);
  EXPECT_NEAR(b.v_core_actual_v, 1.0, 1e-12);
  EXPECT_GT(b.p_guardband_w, 0.0);
  EXPECT_GT(b.p_pdn_ir_w, 0.0);
  EXPECT_GT(b.p_vrm_loss_w, 0.0);
  // Total = core actual + wire losses + VRM loss.
  const double p_core_actual = b.p_core_useful_w + b.p_guardband_w;
  EXPECT_NEAR(b.p_total_w,
              p_core_actual + b.p_grid_ir_w + b.p_pdn_ir_w + b.p_vrm_loss_w, 1e-9 * b.p_total_w);
  EXPECT_NEAR(b.efficiency, b.p_core_useful_w / b.p_total_w, 1e-12);
}

TEST(Pds, ZeroGuardbandMeansNoGuardbandLoss) {
  const PdsBreakdown b = evaluate_pds_offchip(case_study(), pdn::PdnParams::gpuvolt_default(),
                                              0.85, 0.0);
  EXPECT_NEAR(b.p_guardband_w, 0.0, 1e-12);
}

TEST(Pds, LargerGuardbandLowersEfficiency) {
  const SystemParams sys = case_study();
  const pdn::PdnParams p = pdn::PdnParams::gpuvolt_default();
  const double e1 = evaluate_pds_offchip(sys, p, 0.85, 0.05).efficiency;
  const double e2 = evaluate_pds_offchip(sys, p, 0.85, 0.15).efficiency;
  EXPECT_GT(e1, e2);
}

TEST(Pds, IvrBreakdownIsConsistent) {
  const SystemParams sys = case_study();
  const DseResult ivr = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 4);
  ASSERT_TRUE(ivr.feasible);
  const PdsBreakdown b =
      evaluate_pds_ivr(sys, pdn::PdnParams::gpuvolt_default(), ivr, 0.85, 0.025);
  const double p_core_actual = b.p_core_useful_w + b.p_guardband_w;
  EXPECT_NEAR(b.p_total_w,
              p_core_actual + b.p_grid_ir_w + b.p_pdn_ir_w + b.p_ivr_loss_w + b.p_vrm_loss_w,
              1e-9 * b.p_total_w);
  EXPECT_GT(b.p_ivr_loss_w, 0.0);
}

TEST(Pds, IvrPdnCurrentLossIsTiny) {
  // Delivering at 3.3 V cuts the PDN current ~3.3x and its I^2 R loss ~10x.
  const SystemParams sys = case_study();
  const pdn::PdnParams p = pdn::PdnParams::gpuvolt_default();
  const DseResult ivr = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 4);
  ASSERT_TRUE(ivr.feasible);
  const PdsBreakdown off = evaluate_pds_offchip(sys, p, 0.85, 0.15);
  const PdsBreakdown on = evaluate_pds_ivr(sys, p, ivr, 0.85, 0.025);
  EXPECT_LT(on.p_pdn_ir_w, off.p_pdn_ir_w / 5.0);
}

TEST(Pds, HeadlineResultDistributedIvrBeatsOffchipByAbout10Points) {
  // Paper Section 5.4: "The optimal PDS solution by Ivory achieves a 9.5%
  // power efficiency improvement over the previous off-chip VRM-based PDS."
  // Guardbands follow the noise analysis: ~150 mV for the off-chip VRM
  // configuration, ~25 mV for four distributed IVRs (Fig. 11).
  const SystemParams sys = case_study();
  const pdn::PdnParams p = pdn::PdnParams::gpuvolt_default();
  const DseResult ivr = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 4);
  ASSERT_TRUE(ivr.feasible);
  const PdsBreakdown off = evaluate_pds_offchip(sys, p, 0.85, 0.150);
  const PdsBreakdown on = evaluate_pds_ivr(sys, p, ivr, 0.85, 0.025);
  const double gain = on.efficiency - off.efficiency;
  EXPECT_GT(gain, 0.04) << "off " << off.efficiency << " vs ivr " << on.efficiency;
  EXPECT_LT(gain, 0.20) << "off " << off.efficiency << " vs ivr " << on.efficiency;
}

TEST(Pds, InfeasibleIvrRejected) {
  const SystemParams sys = case_study();
  DseResult bogus;
  bogus.feasible = false;
  EXPECT_THROW(evaluate_pds_ivr(sys, pdn::PdnParams::gpuvolt_default(), bogus, 0.85, 0.02),
               InvalidParameter);
}

TEST(Pds, InvalidInputsThrow) {
  const SystemParams sys = case_study();
  const pdn::PdnParams p = pdn::PdnParams::gpuvolt_default();
  EXPECT_THROW(evaluate_pds_offchip(sys, p, 0.0, 0.1), InvalidParameter);
  EXPECT_THROW(evaluate_pds_offchip(sys, p, 0.85, -0.1), InvalidParameter);
}

}  // namespace
}  // namespace ivory::core
