// Unit tests for the FFT and spectrum helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/fft.hpp"
#include "common/units.hpp"

namespace ivory {
namespace {

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<std::complex<double>> d(3);
  EXPECT_THROW(fft_radix2(d), InvalidParameter);
}

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<std::complex<double>> d(8, 0.0);
  d[0] = 1.0;
  fft_radix2(d);
  for (const auto& v : d) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, RoundTripRecoversSignal) {
  std::vector<std::complex<double>> d;
  for (int i = 0; i < 16; ++i) d.emplace_back(std::sin(0.3 * i), std::cos(0.7 * i));
  const auto orig = d;
  fft_radix2(d);
  fft_radix2(d, /*inverse=*/true);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_NEAR(std::abs(d[i] / 16.0 - orig[i]), 0.0, 1e-12);
}

TEST(Fft, ParsevalHolds) {
  std::vector<std::complex<double>> d;
  for (int i = 0; i < 64; ++i) d.emplace_back(std::sin(0.1 * i * i), 0.0);
  double time_energy = 0.0;
  for (const auto& v : d) time_energy += std::norm(v);
  fft_radix2(d);
  double freq_energy = 0.0;
  for (const auto& v : d) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 64.0, time_energy, 1e-9 * time_energy);
}

TEST(Spectrum, PureToneAmplitudeAndFrequency) {
  const double fs = 1024.0, f0 = 128.0, amp = 2.5;
  std::vector<double> sig(1024);
  for (int i = 0; i < 1024; ++i)
    sig[static_cast<std::size_t>(i)] = amp * std::sin(2.0 * pi * f0 * i / fs);
  const auto spec = amplitude_spectrum(sig, fs);
  EXPECT_NEAR(spectrum_amplitude_at(spec, f0), amp, 1e-9);
  // Away from the tone the spectrum is near zero.
  EXPECT_NEAR(spectrum_amplitude_at(spec, 400.0), 0.0, 1e-9);
}

TEST(Spectrum, DcOffsetInBinZero) {
  std::vector<double> sig(256, 3.0);
  const auto spec = amplitude_spectrum(sig, 100.0);
  EXPECT_NEAR(spec[0].amplitude, 3.0, 1e-12);
}

TEST(Spectrum, TwoTonesResolved) {
  const double fs = 4096.0;
  std::vector<double> sig(4096);
  for (int i = 0; i < 4096; ++i)
    sig[static_cast<std::size_t>(i)] = 1.0 * std::sin(2.0 * pi * 256.0 * i / fs) +
                                       0.5 * std::sin(2.0 * pi * 1024.0 * i / fs);
  const auto spec = amplitude_spectrum(sig, fs);
  EXPECT_NEAR(spectrum_amplitude_at(spec, 256.0), 1.0, 1e-9);
  EXPECT_NEAR(spectrum_amplitude_at(spec, 1024.0), 0.5, 1e-9);
}

TEST(Spectrum, ZeroPaddingPreservesToneAmplitude) {
  // 1000 samples (not a power of two) of a bin-aligned-after-padding tone:
  // amplitude stays within a few percent despite leakage.
  const double fs = 1000.0, f0 = 125.0;
  std::vector<double> sig(1000);
  for (int i = 0; i < 1000; ++i)
    sig[static_cast<std::size_t>(i)] = std::sin(2.0 * pi * f0 * i / fs);
  const auto spec = amplitude_spectrum(sig, fs);
  EXPECT_NEAR(spectrum_amplitude_at(spec, f0), 1.0, 0.1);
}

}  // namespace
}  // namespace ivory
