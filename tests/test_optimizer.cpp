// Tests for the design-space-exploration optimizer.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include <numeric>

#include "core/optimizer.hpp"

namespace ivory::core {
namespace {

TEST(Ratios, CandidatesAreCoprimeAndFeasible) {
  const auto ratios = candidate_sc_ratios(3.3, 1.0);
  ASSERT_FALSE(ratios.empty());
  for (const auto& [n, m] : ratios) {
    EXPECT_GE(3.3 * m / n, 1.0 * 1.02) << n << ":" << m;
    EXPECT_EQ(std::gcd(n, m), 1);
  }
  // Sorted by ideal output ascending: the first entry wastes the least.
  for (std::size_t i = 1; i < ratios.size(); ++i) {
    EXPECT_LE(static_cast<double>(ratios[i - 1].second) / ratios[i - 1].first,
              static_cast<double>(ratios[i].second) / ratios[i].first);
  }
  // 3:1 must be the tightest ratio for 3.3 -> 1.0.
  EXPECT_EQ(ratios.front().first, 3);
  EXPECT_EQ(ratios.front().second, 1);
}

TEST(Ratios, InvalidInputThrows) {
  EXPECT_THROW(candidate_sc_ratios(1.0, 1.0), InvalidParameter);
}

TEST(Optimizer, ScMeetsConstraintsOnCaseStudy) {
  const SystemParams sys;  // Paper Table-1 defaults.
  const DseResult r = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 1);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.efficiency, 0.72);  // Paper: 80.3%.
  EXPECT_LT(r.efficiency, 0.90);
  EXPECT_LE(r.area_m2, sys.area_max_m2 * 1.05);
  EXPECT_LE(r.ripple_pp_v, sys.ripple_max_v * 1.05);
  // The chosen ratio should be the tight 3:1.
  EXPECT_EQ(r.sc.n, 3);
  EXPECT_EQ(r.sc.m, 1);
  EXPECT_GT(r.n_interleave, 4);  // Heavily interleaved (paper: 32).
}

TEST(Optimizer, ScWinsTheGpuCaseStudy) {
  // Paper Section 5.2: the 3:1 SC beats buck and LDO under the 20 mm^2
  // on-chip budget.
  const SystemParams sys;
  const std::vector<DseResult> all = explore(sys);
  ASSERT_FALSE(all.empty());
  EXPECT_TRUE(all.front().feasible);
  EXPECT_EQ(all.front().topology, IvrTopology::SwitchedCapacitor);
}

TEST(Optimizer, LdoEfficiencyPinnedByRatio) {
  const SystemParams sys;
  const DseResult r = optimize_topology(sys, IvrTopology::LinearRegulator, 1);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.efficiency, 1.0 / 3.3, 0.02);
}

TEST(Optimizer, BuckFeasibleButBelowSc) {
  const SystemParams sys;
  const DseResult buck = optimize_topology(sys, IvrTopology::Buck, 1);
  const DseResult sc = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 1);
  ASSERT_TRUE(buck.feasible);
  ASSERT_TRUE(sc.feasible);
  EXPECT_LT(buck.efficiency, sc.efficiency);
  EXPECT_GT(buck.efficiency, 1.0 / 3.3);  // But clearly better than an LDO.
}

TEST(Optimizer, EfficiencyMonotonicInAreaBudget) {
  SystemParams sys;
  sys.area_max_m2 = 8e-6;
  const double eff_small = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 1).efficiency;
  sys.area_max_m2 = 40e-6;
  const double eff_large = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 1).efficiency;
  EXPECT_GE(eff_large, eff_small - 1e-3);
}

TEST(Optimizer, DistributionCostsLittleEfficiency) {
  // Paper Table 2: 80.3 / 80.2 / 80.0 across 1/2/4 distributed IVRs.
  const SystemParams sys;
  const DseResult d1 = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 1);
  const DseResult d4 = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 4);
  ASSERT_TRUE(d1.feasible);
  ASSERT_TRUE(d4.feasible);
  // Near-flat: splitting the converter four ways moves efficiency by at most
  // a few points in either direction (search-grid granularity included).
  EXPECT_NEAR(d4.efficiency, d1.efficiency, 0.03);
}

TEST(Optimizer, ExploreCoversAllTopologiesAndCounts) {
  const SystemParams sys;
  const std::vector<DseResult> all = explore(sys);
  EXPECT_EQ(all.size(), 12u);  // 4 topologies x {1, 2, 4}.
  int sc = 0, buck = 0, ldo = 0, dldo = 0;
  for (const DseResult& r : all) {
    if (r.topology == IvrTopology::SwitchedCapacitor) ++sc;
    if (r.topology == IvrTopology::Buck) ++buck;
    if (r.topology == IvrTopology::LinearRegulator) ++ldo;
    if (r.topology == IvrTopology::DigitalLdo) ++dldo;
  }
  EXPECT_EQ(sc, 3);
  EXPECT_EQ(buck, 3);
  EXPECT_EQ(ldo, 3);
  EXPECT_EQ(dldo, 3);
}

TEST(Optimizer, NoiseTargetPrefersLowRipple) {
  const SystemParams sys;
  const std::vector<DseResult> by_noise = explore(sys, OptTarget::Noise);
  for (std::size_t i = 1; i < by_noise.size(); ++i) {
    if (!by_noise[i].feasible) break;
    EXPECT_GE(by_noise[i].ripple_pp_v, by_noise[i - 1].ripple_pp_v - 1e-12);
  }
}

TEST(Optimizer, AreaTargetPrefersSmall) {
  const SystemParams sys;
  const std::vector<DseResult> by_area = explore(sys, OptTarget::Area);
  for (std::size_t i = 1; i < by_area.size(); ++i) {
    if (!by_area[i].feasible) break;
    EXPECT_GE(by_area[i].area_m2, by_area[i - 1].area_m2 - 1e-12);
  }
}

TEST(Optimizer, BestDesignReturnsTop) {
  const SystemParams sys;
  const DseResult b = best_design(sys);
  EXPECT_TRUE(b.feasible);
  EXPECT_GT(b.efficiency, 0.7);
}

TEST(Optimizer, InvalidSystemThrows) {
  SystemParams sys;
  sys.area_max_m2 = 0.0;
  EXPECT_THROW(explore(sys), InvalidParameter);
  sys = SystemParams{};
  sys.vout_v = 4.0;  // Above vin.
  EXPECT_THROW(explore(sys), InvalidParameter);
  sys = SystemParams{};
  EXPECT_THROW(optimize_topology(sys, IvrTopology::Buck, 9), InvalidParameter);
}


TEST(TwoStage, CascadeFeasibleButBelowSingleStageHere) {
  // For the 3.3:1 GPU case a single tight-ratio SC wins; the hierarchical
  // cascade must still produce a consistent, feasible design.
  const SystemParams sys;
  const TwoStageResult two = optimize_two_stage(sys, 4);
  ASSERT_TRUE(two.feasible);
  EXPECT_GT(two.v_mid_v, sys.vout_v);
  EXPECT_LT(two.v_mid_v, sys.vin_v);
  EXPECT_NEAR(two.efficiency, two.stage1.efficiency * two.stage2.efficiency, 1e-12);
  EXPECT_GT(two.efficiency, 0.5);
  const DseResult single = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 4);
  EXPECT_GT(single.efficiency, two.efficiency);
}

TEST(TwoStage, StagesRespectAreaSplit) {
  const SystemParams sys;
  const TwoStageResult two = optimize_two_stage(sys, 2);
  ASSERT_TRUE(two.feasible);
  EXPECT_LE(two.stage1.area_m2, sys.area_max_m2 * two.area_frac_stage1 * 1.1);
  EXPECT_LE(two.stage2.area_m2, sys.area_max_m2 * (1.0 - two.area_frac_stage1) * 1.1);
}

TEST(TwoStage, InvalidDistributionThrows) {
  const SystemParams sys;
  EXPECT_THROW(optimize_two_stage(sys, 99), InvalidParameter);
}

TEST(Blocks, PeripheralBudgetScalesWithFrequencyAndPhases) {
  const PeripheralBudget a = peripheral_budget(tech::Node::n32, 50e6, 2, 1e-9, 1.0);
  const PeripheralBudget b = peripheral_budget(tech::Node::n32, 100e6, 2, 1e-9, 1.0);
  EXPECT_NEAR(b.total_power(), 2.0 * a.total_power(), 1e-9);
  const PeripheralBudget c = peripheral_budget(tech::Node::n32, 50e6, 8, 1e-9, 1.0);
  EXPECT_GT(c.total_power(), a.total_power());
  EXPECT_GT(c.area_m2, a.area_m2);
  EXPECT_THROW(peripheral_budget(tech::Node::n32, 0.0, 2, 1e-9, 1.0), InvalidParameter);
}

}  // namespace
}  // namespace ivory::core
