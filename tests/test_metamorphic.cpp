// Metamorphic tests: instead of asserting absolute numbers, each test
// applies a transformation to a design whose effect the paper's analytical
// models predict exactly (invariance, monotone direction, or a hard bound)
// and checks the model tracks it. These survive retuning of technology
// constants where golden-number tests would not.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/buck_model.hpp"
#include "core/dldo_model.hpp"
#include "core/ldo_model.hpp"
#include "core/sc_model.hpp"

namespace ivory::core {
namespace {

ScDesign base_sc() {
  ScDesign d;
  d.n = 3;
  d.m = 1;
  d.c_fly_f = 4e-6;
  d.c_out_f = 0.5e-6;
  d.g_tot_s = 15e3;
  d.f_sw_hz = 80e6;
  d.n_interleave = 4;
  return d;
}

BuckDesign base_buck() {
  BuckDesign d;
  d.l_per_phase_h = 5e-9;
  d.f_sw_hz = 100e6;
  d.n_phases = 4;
  d.w_high_m = 0.08;
  d.w_low_m = 0.10;
  d.c_out_f = 1e-6;
  return d;
}

/// Efficiency from the loss breakdown excluding the peripheral overhead,
/// which is a fixed per-module cost and intentionally does not scale with
/// the power stage.
double sc_core_efficiency(const ScAnalysis& r) {
  return r.p_out_w /
         (r.p_out_w + r.p_conduction_w + r.p_gate_w + r.p_bottom_plate_w + r.p_leakage_w);
}

TEST(MetamorphicSc, EfficiencyInvariantUnderProportionalScaling) {
  // Seeman's SSL/FSL output-impedance model: R_SSL = (sum a_c)^2 / (C_fly
  // f_sw) and R_FSL = (sum a_r)^2 / (G_tot D). Scaling {I_load, G_tot,
  // C_fly, C_out} by a common factor k scales every impedance by 1/k and
  // every power-stage loss term (I^2 R conduction, gate charge ~ width,
  // bottom-plate ~ C_fly, leakage ~ width) linearly with k, so the
  // power-stage efficiency is exactly scale-free.
  const double vin = 3.3, i_load = 10.0;
  const ScAnalysis ref = analyze_sc(base_sc(), vin, i_load);
  const double eff_ref = sc_core_efficiency(ref);
  for (const double k : {2.0, 5.0, 10.0, 0.5}) {
    ScDesign d = base_sc();
    d.c_fly_f *= k;
    d.c_out_f *= k;
    d.g_tot_s *= k;
    const ScAnalysis scaled = analyze_sc(d, vin, i_load * k);
    EXPECT_NEAR(sc_core_efficiency(scaled), eff_ref, 1e-9)
        << "power stage is not scale-free at k=" << k;
    // The operating point itself is invariant: same I*R drop.
    EXPECT_NEAR(scaled.vout_v, ref.vout_v, 1e-9) << "k=" << k;
    // Output ripple ~ I_load / (n_ilv C_out f_sw) is invariant too when
    // C_out scales with the load.
    EXPECT_NEAR(scaled.ripple_pp_v, ref.ripple_pp_v, ref.ripple_pp_v * 1e-9) << "k=" << k;
  }
}

TEST(MetamorphicSc, InterleavingNeverIncreasesRipple) {
  // N-way interleaving staggers the charge transfers across the period, so
  // each phase delivers 1/N of the charge into C_out: ripple falls ~1/N and
  // can never rise with more phases.
  const double vin = 3.3, i_load = 10.0;
  double prev = -1.0;
  for (const int ilv : {1, 2, 4, 8, 16}) {
    ScDesign d = base_sc();
    d.n_interleave = ilv;
    const ScAnalysis r = analyze_sc(d, vin, i_load);
    if (prev >= 0.0)
      EXPECT_LE(r.ripple_pp_v, prev * (1.0 + 1e-12))
          << "ripple rose when interleaving " << ilv << " ways";
    prev = r.ripple_pp_v;
  }
}

TEST(MetamorphicBuck, RippleMonotoneDecreasingInInductance) {
  // Inductor current ripple obeys the volt-second law di = (Vin - Vout) D /
  // (L f_sw) exactly, and the output ripple a single phase dumps into C_out
  // inherits the 1/L decrease. Single phase on purpose: with N staggered
  // phases the DCR (which grows with L) shifts the duty, which moves the
  // cancellation factor non-monotonically — a real effect, covered by the
  // interleaving test. `ignore_l_rolloff` isolates the law from the
  // self-resonance derating, which is asserted one-sided instead.
  const double vin = 3.3, vout = 1.0, i_load = 2.0;
  double prev = -1.0;
  for (const double l : {2e-9, 4e-9, 8e-9, 16e-9}) {
    BuckDesign d = base_buck();
    d.n_phases = 1;
    d.l_per_phase_h = l;
    d.ignore_l_rolloff = true;
    const BuckAnalysis r = analyze_buck(d, vin, vout, i_load);
    // The paper equation, to machine precision.
    EXPECT_NEAR(r.i_ripple_phase_a, (vin - vout) * r.duty / (r.l_eff_h * d.f_sw_hz),
                r.i_ripple_phase_a * 1e-12)
        << "volt-second law broken at L=" << l;
    if (prev >= 0.0)
      EXPECT_LE(r.ripple_pp_v, prev * (1.0 + 1e-12)) << "ripple rose at L=" << l;
    prev = r.ripple_pp_v;

    // The self-resonance rolloff can only ever *reduce* the effective
    // inductance (raising ripple), never add inductance out of nowhere.
    d.ignore_l_rolloff = false;
    const BuckAnalysis rolled = analyze_buck(d, vin, vout, i_load);
    EXPECT_LE(rolled.l_eff_h, l * (1.0 + 1e-12)) << "rolloff added inductance at L=" << l;
    EXPECT_GE(rolled.ripple_pp_v, r.ripple_pp_v * (1.0 - 1e-12)) << "L=" << l;
  }
}

TEST(MetamorphicBuck, RippleMonotoneDecreasingInSwitchingFrequency) {
  // di = Vout (1-D) / (L f_sw) and the C_out integration window both shrink
  // with f_sw: ripple is monotone decreasing in switching frequency (the
  // frequency-dependent losses are what keeps f_sw finite, not ripple).
  const double vin = 3.3, vout = 1.0, i_load = 10.0;
  double prev = -1.0;
  for (const double f : {50e6, 75e6, 100e6, 150e6, 200e6}) {
    BuckDesign d = base_buck();
    d.f_sw_hz = f;
    const BuckAnalysis r = analyze_buck(d, vin, vout, i_load);
    if (prev >= 0.0)
      EXPECT_LE(r.ripple_pp_v, prev * (1.0 + 1e-12)) << "ripple rose at f_sw=" << f;
    prev = r.ripple_pp_v;
  }
}

TEST(MetamorphicBuck, InterleavingNeverIncreasesOutputRipple) {
  // Multiphase ripple cancellation: the summed inductor-current ripple of N
  // staggered phases is frac(ND)(1-frac(ND)) / (N D (1-D)) of one phase's
  // ripple — never more than the single-phase ripple, exactly zero when ND
  // is an integer. It is *not* monotone in N at fixed D (N=2 at D=0.5
  // cancels perfectly, N=3 does not), so the invariant is the <= 1 bound
  // plus the integer-ND zeros, not monotonicity.
  for (const double duty : {0.15, 0.25, 0.3380731503307733, 0.5, 0.72}) {
    for (const int phases : {1, 2, 3, 4, 6, 8}) {
      const double factor = interleave_cancellation(phases, duty);
      EXPECT_GE(factor, 0.0) << "N=" << phases << " D=" << duty;
      EXPECT_LE(factor, 1.0 + 1e-12)
          << "interleaving amplified ripple at N=" << phases << " D=" << duty;
      const double nd = phases * duty;
      if (std::abs(nd - std::round(nd)) < 1e-12 && phases > 1)
        EXPECT_NEAR(factor, 0.0, 1e-9) << "no perfect cancellation at N*D=" << nd;
    }
  }

  // And end-to-end: the N-phase design's summed ripple never exceeds the
  // per-phase ripple that N independent (non-staggered) converters would
  // dump into the output capacitor together.
  const double vin = 3.3, vout = 1.0, i_load = 10.0;
  for (const int phases : {2, 4, 8}) {
    BuckDesign d = base_buck();
    d.n_phases = phases;
    const BuckAnalysis r = analyze_buck(d, vin, vout, i_load);
    EXPECT_LE(r.i_ripple_out_a, r.i_ripple_phase_a * (1.0 + 1e-12))
        << "n_phases=" << phases;
  }
}

TEST(MetamorphicLdo, EfficiencyBoundedByConversionRatio) {
  // A linear regulator passes the full load current from Vin: even with
  // zero quiescent current, eta = P_out / P_in = Vout / Vin. The model must
  // never beat that bound, at any operating point.
  LdoDesign d;
  d.w_pass_m = 0.5;
  d.f_clk_hz = 100e6;
  d.c_out_f = 1e-6;
  d.i_quiescent_a = 1e-3;
  for (const double vin : {1.0, 1.2, 1.8, 2.5}) {
    for (const double ratio : {0.5, 0.7, 0.85}) {
      const double vout = vin * ratio;
      for (const double i_load : {0.1, 1.0, 5.0}) {
        const LdoAnalysis r = analyze_ldo(d, vin, vout, i_load);
        EXPECT_LE(r.efficiency, vout / vin + 1e-12)
            << "LDO beat the Vout/Vin bound at vin=" << vin << " vout=" << vout
            << " iload=" << i_load;
        // And with quiescent overhead it must be strictly below.
        EXPECT_LT(r.efficiency, vout / vin)
            << "quiescent draw vanished at vin=" << vin << " iload=" << i_load;
      }
    }
  }
}

DldoDesign base_dldo() {
  DldoDesign d;
  d.w_pass_m = 0.3;
  d.n_bits = 7;
  d.f_clk_hz = 200e6;
  d.c_out_f = 0.5e-6;
  d.i_quiescent_a = 1e-3;
  return d;
}

TEST(MetamorphicDldo, RippleMonotoneDecreasingInComparatorInterleave) {
  // Time-interleaved comparator slices multiply the decision rate: the
  // one-LSB limit cycle dumps i_lsb into c_out for 1/(n_comp * f_clk), so
  // doubling the slices halves the ripple. Monotone strictly decreasing.
  const double vin = 1.2, vout = 0.9, i_load = 2.0;
  double prev = 0.0;
  for (const int n_comp : {1, 2, 4, 8, 16}) {
    DldoDesign d = base_dldo();
    d.n_comparators = n_comp;
    const DldoAnalysis r = analyze_dldo(d, vin, vout, i_load);
    if (n_comp > 1)
      EXPECT_LT(r.ripple_pp_v, prev) << "ripple did not shrink at n_comp=" << n_comp;
    prev = r.ripple_pp_v;
    // Exact scaling, not just direction: ripple * n_comp is invariant.
    const DldoAnalysis one = analyze_dldo(base_dldo(), vin, vout, i_load);
    EXPECT_NEAR(r.ripple_pp_v * n_comp, one.ripple_pp_v, 1e-15 * n_comp);
  }
}

TEST(MetamorphicDldo, ResponseTimeScalesWithCodeDepthOverDecisionRate) {
  // Full-scale recovery walks all 2^bits codes at the interleaved decision
  // rate. One more bit doubles it; one more comparator halves it.
  const double vin = 1.2, vout = 0.9, i_load = 2.0;
  const DldoAnalysis ref = analyze_dldo(base_dldo(), vin, vout, i_load);
  DldoDesign deeper = base_dldo();
  deeper.n_bits += 1;
  EXPECT_DOUBLE_EQ(analyze_dldo(deeper, vin, vout, i_load).t_response_s,
                   2.0 * ref.t_response_s);
  DldoDesign wider = base_dldo();
  wider.n_comparators = 2;
  EXPECT_DOUBLE_EQ(analyze_dldo(wider, vin, vout, i_load).t_response_s,
                   0.5 * ref.t_response_s);
}

TEST(MetamorphicDldo, EfficiencyBoundedByConversionRatio) {
  // The pass array is linear: like the analog LDO, eta can never beat
  // Vout/Vin, and with quiescent + comparator overhead it is strictly below.
  for (const double vin : {1.0, 1.2, 1.8}) {
    for (const double ratio : {0.6, 0.75, 0.9}) {
      const double vout = vin * ratio;
      for (const double i_load : {0.1, 1.0, 5.0}) {
        const DldoAnalysis r = analyze_dldo(base_dldo(), vin, vout, i_load);
        EXPECT_LE(r.efficiency, vout / vin + 1e-12)
            << "DLDO beat the Vout/Vin bound at vin=" << vin << " vout=" << vout
            << " iload=" << i_load;
        EXPECT_LT(r.efficiency, vout / vin)
            << "overhead vanished at vin=" << vin << " iload=" << i_load;
      }
    }
  }
}

}  // namespace
}  // namespace ivory::core
