// Streaming protocol conformance suite.
//
// Covers the full stack of the streamed serve path: the frame grammar
// (round-trips and every named violation), the wave1 waveform codec
// (arithmetic/literal time runs, multi-block accumulation), the
// DeliveryQueue ordering/window/discard semantics, the supervisor's
// ResponseScanner, and the end-to-end byte-identity contract — a decoded
// stream must equal the non-streaming JSON line at chunk sizes {1,7,4096},
// thread counts {1,2,4} and worker counts {1,2}. Backpressure isolation,
// cancel-mid-stream and a seeded frame-corruption fuzzer (>=10k iterations,
// seed printed on failure) round it out. Run alone with `ctest -L stream`;
// the suite is in both the ThreadSanitizer and AddressSanitizer trees.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "serve/frame.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/supervisor.hpp"
#include "serve/wave_codec.hpp"

namespace ivory::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Request corpus (same bodies the non-streaming tests use).
// ---------------------------------------------------------------------------

/// Behavioural SC transient, 10 samples, with the waveform in the response.
const std::string kBehaviouralRequest =
    R"({"id":1,"op":"transient","topology":"sc",)"
    R"("design":{"n":3,"m":1,"cfly":4e-6,"gtot":15000,"fsw":8e7},)"
    R"("vin":3.3,"vref":1.0,"dt":1e-8,)"
    R"("iload":[1,2,3,4,5,6,7,8,9,10],"return_waveform":true})";

/// Tiny RC SPICE transient: 101 fixed-step rows, two recorded nodes.
const std::string kSpiceRequest =
    R"({"id":2,"op":"transient","topology":"spice",)"
    R"("netlist":"* rc\nV1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1n\n.end",)"
    R"("tstop":1e-6,"dt":1e-8,"return_waveform":true})";

/// Bigger RC transient (~50k rows, still a trivial solve): the JSON response
/// is megabytes, so it separates "buffered the waveform" from "streamed it".
const std::string kBigSpiceRequest =
    R"({"id":3,"op":"transient","topology":"spice",)"
    R"("netlist":"* rc\nV1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1n\n.end",)"
    R"("tstop":5e-6,"dt":1e-10,"return_waveform":true})";

/// A transient long enough (~3.2M BE steps, ~0.7 s of solve) that a cancel
/// issued a couple hundred milliseconds in reliably lands mid-stream.
const std::string kSlowSpiceRequest =
    R"({"id":4,"op":"transient","topology":"spice",)"
    R"("netlist":"vin in 0 DC 3.3\ns1 in fly 0.01 1e8 CLOCK(20meg 2 0.48 0)\n)"
    R"(s2 fly out 0.01 1e8 CLOCK(20meg 2 0.48 1)\ncfly fly 0 100n IC=1.65\n)"
    R"(cout out 0 100n IC=1.65\nrl out 0 3.3\n.end\n",)"
    R"("tstop":4e-4,"dt":1.25e-10,"method":"be","uic":true,"record":["out"],)"
    R"("return_waveform":true})";

/// A non-transient op, for the json-encoding streaming path.
const std::string kStaticRequest =
    R"({"op":"sc_static","id":5,"n":3,"m":1,"cfly":4e-6,"gtot":15e3,)"
    R"("fsw":80e6,"iload":20})";

/// Returns `request` with the streaming envelope fields added.
std::string with_stream(const std::string& request, const std::string& encoding,
                        std::size_t chunk_bytes) {
  json::Value root = json::Value::parse(request);
  root.set("stream", json::Value(true));
  root.set("encoding", json::Value(encoding));
  root.set("chunk_bytes", json::Value(static_cast<std::uint64_t>(chunk_bytes)));
  return root.write();
}

/// A StreamEmitter that appends every frame write to `sink` (never "gone").
StreamEmitter capture_emitter(std::string& sink) {
  return StreamEmitter(
      [&sink](std::string&& bytes) {
        sink.append(bytes);
        return true;
      },
      nullptr, 0.0, std::chrono::steady_clock::now());
}

/// Reassembles one stream from `bytes` starting at `pos` (advanced past the
/// terminal frame), so back-to-back streams in one buffer parse in sequence.
/// Reads one byte at a time: read_stream discards its decoder on return, so
/// a gulp past the terminal frame would eat the next stream's magic.
StreamAssembler assemble_at(const std::string& bytes, std::size_t& pos) {
  return read_stream([&bytes, &pos](char* out, std::size_t) -> std::size_t {
    if (pos >= bytes.size()) return 0;
    *out = bytes[pos++];
    return 1;
  });
}

StreamAssembler assemble(const std::string& bytes) {
  std::size_t pos = 0;
  return assemble_at(bytes, pos);
}

/// Runs one streamed request through an in-process Service and returns the
/// reassembled line. `expect_status` guards against silent error terminals.
std::string service_stream(Service& svc, const std::string& stream_request,
                           const std::string& expect_status = "ok") {
  std::string bytes;
  StreamEmitter em = capture_emitter(bytes);
  const TransportDirective d = classify_line(stream_request);
  EXPECT_TRUE(d.is_stream) << stream_request;
  svc.handle_stream(stream_request, em);
  StreamAssembler out = assemble(bytes);
  EXPECT_EQ(out.status(), expect_status) << out.decoded();
  return out.decoded();
}

/// Sends `stream_request` over a live socket and reassembles the response.
StreamAssembler client_stream(BlockingClient& client, const std::string& stream_request) {
  client.send_line(stream_request);
  return read_stream(
      [&client](char* out, std::size_t cap) { return client.recv_raw(out, cap); });
}

std::string unique_socket(const char* tag) {
  return "/tmp/ivory_test_stream_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// ---------------------------------------------------------------------------
// Frame grammar: round-trips and every named violation.
// ---------------------------------------------------------------------------

TEST(Frame, RoundTripsAllTypesBytewise) {
  const std::vector<std::pair<FrameType, std::string>> frames = {
      {FrameType::Header, R"({"id":1,"encoding":"wave1"})"},
      {FrameType::Chunk, std::string("\x00\x01\xff binary \n bytes", 19)},
      {FrameType::Chunk, ""},  // empty payload is legal
      {FrameType::End, stream_status_payload("1", "ok")},
      {FrameType::Error, R"({"id":1,"ok":false})"},
      {FrameType::CancelAck, stream_status_payload("\"a\"", "cancelled")},
  };
  std::string bytes(kStreamMagic);
  for (const auto& [type, payload] : frames) encode_frame(bytes, type, payload);

  // Feed one byte at a time: the decoder must never mis-frame on partial
  // input, and pending_bytes() must drop back to zero at each boundary.
  FrameDecoder dec;
  std::size_t got = 0;
  for (const char c : bytes) {
    dec.feed(std::string_view(&c, 1));
    while (const auto f = dec.next()) {
      ASSERT_LT(got, frames.size());
      EXPECT_EQ(f->type, frames[got].first);
      EXPECT_EQ(f->payload, frames[got].second);
      ++got;
      EXPECT_EQ(dec.pending_bytes(), 0u);
    }
  }
  EXPECT_EQ(got, frames.size());
  EXPECT_TRUE(dec.saw_magic());
}

TEST(Frame, ChecksumCoversTypeByte) {
  // Same payload, different type => different checksum, so a flipped type
  // byte can never pass verification.
  EXPECT_NE(frame_checksum(FrameType::Chunk, "abc"),
            frame_checksum(FrameType::End, "abc"));
}

TEST(Frame, TruncationIsNotAnError) {
  std::string bytes(kStreamMagic);
  encode_frame(bytes, FrameType::Header, "{\"id\":1}");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(dec.next().has_value()) << "cut=" << cut;
    // The remaining bytes complete the frame.
    dec.feed(std::string_view(bytes).substr(cut));
    const auto f = dec.next();
    ASSERT_TRUE(f.has_value()) << "cut=" << cut;
    EXPECT_EQ(f->payload, "{\"id\":1}");
  }
}

TEST(Frame, BadMagicThrows) {
  FrameDecoder dec;
  dec.feed("ivorystreamX????????????");
  EXPECT_THROW(dec.next(), StreamProtocolError);
}

TEST(Frame, BadChecksumThrows) {
  std::string bytes(kStreamMagic);
  encode_frame(bytes, FrameType::Header, "{\"id\":1}");
  bytes.back() ^= 0x01;  // corrupt the checksum's last byte
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_THROW(dec.next(), StreamProtocolError);
}

TEST(Frame, UnknownTypeThrows) {
  std::string bytes(kStreamMagic);
  encode_frame(bytes, FrameType::Header, "x");
  bytes[kStreamMagic.size() + 4] = 0x7f;  // type byte after the u32 length
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_THROW(dec.next(), StreamProtocolError);
}

TEST(Frame, OversizedLengthThrows) {
  std::string bytes(kStreamMagic);
  const std::uint32_t huge = (17u << 20);  // > kMaxFramePayload
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  bytes.push_back(1);
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_THROW(dec.next(), StreamProtocolError);
  EXPECT_THROW(encode_frame(bytes, FrameType::Chunk, std::string(huge, 'x')),
               InvalidParameter);
}

TEST(Frame, EmitterSplitsTextIntoChunkBudget) {
  std::string bytes;
  StreamEmitter em = capture_emitter(bytes);
  em.set_chunk_bytes(7);
  em.header("{}");
  em.chunk_split(std::string(23, 'a'));  // 7+7+7+2 => 4 chunks
  em.end(stream_status_payload("null", "ok"));
  EXPECT_EQ(em.chunks_emitted(), 4u);
  FrameDecoder dec;
  dec.feed(bytes);
  std::size_t chunks = 0, total = 0;
  while (const auto f = dec.next()) {
    if (f->type == FrameType::Chunk) {
      EXPECT_LE(f->payload.size(), 7u);
      ++chunks;
      total += f->payload.size();
    }
  }
  EXPECT_EQ(chunks, 4u);
  EXPECT_EQ(total, 23u);
}

TEST(Frame, EmitterAbortReasons) {
  // Cancel flag -> Abort{Cancelled} before the next chunk.
  auto flag = std::make_shared<std::atomic<bool>>(false);
  std::string sink;
  StreamEmitter em(
      [&sink](std::string&& b) {
        sink.append(b);
        return true;
      },
      flag, 0.0, std::chrono::steady_clock::now());
  em.header("{}");
  flag->store(true);
  try {
    em.chunk("x");
    FAIL() << "expected Abort";
  } catch (const StreamEmitter::Abort& a) {
    EXPECT_EQ(a.reason, StreamEmitter::Abort::Reason::Cancelled);
  }

  // Consumer gone: the write function returns false -> Abort{ConsumerGone},
  // but terminal frames swallow the failure (nobody left to tell).
  StreamEmitter gone([](std::string&&) { return false; }, nullptr, 0.0,
                     std::chrono::steady_clock::now());
  try {
    gone.header("{}");
    FAIL() << "expected Abort";
  } catch (const StreamEmitter::Abort& a) {
    EXPECT_EQ(a.reason, StreamEmitter::Abort::Reason::ConsumerGone);
  }
  EXPECT_NO_THROW(gone.end("{}"));

  // Expired deadline -> Abort{Expired}.
  StreamEmitter late([](std::string&&) { return true; }, nullptr, 1.0,
                     std::chrono::steady_clock::now() - 50ms);
  try {
    late.check_abort();
    FAIL() << "expected Abort";
  } catch (const StreamEmitter::Abort& a) {
    EXPECT_EQ(a.reason, StreamEmitter::Abort::Reason::Expired);
  }
}

// ---------------------------------------------------------------------------
// wave1 codec.
// ---------------------------------------------------------------------------

TEST(Wave1, FixedStepTimeAxisCollapsesToArithmeticRun) {
  // Time generated the way the engine does — t += dt — which the encoder's
  // bitwise replay verification can collapse to one arithmetic run.
  Wave1Encoder enc(2, /*has_time=*/true);
  const std::size_t n = 1000;
  std::vector<double> t(n);
  double cur = 0.0;
  for (std::size_t i = 0; i < n; ++i, cur += 1e-9) {
    t[i] = cur;
    const double v[2] = {std::sin(static_cast<double>(i)), 1.0 / (1.0 + i)};
    enc.add_row(t[i], v, 2);
  }
  const std::string block = enc.encode_block();
  // Literal time would add n*8 bytes; an arithmetic run is 25. The block
  // must be close to the two value columns alone.
  EXPECT_LT(block.size(), 2 * n * 8 + 64);

  Wave1Decoder dec(2, true);
  dec.decode_block(block);
  ASSERT_EQ(dec.rows(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dec.time()[i], t[i]) << i;
    EXPECT_EQ(dec.column(0)[i], std::sin(static_cast<double>(i))) << i;
    EXPECT_EQ(dec.column(1)[i], 1.0 / (1.0 + i)) << i;
  }
}

TEST(Wave1, JitteredTimeAxisRoundTripsBitExact) {
  // Adaptive-stepping-style time values that no arithmetic run reproduces:
  // the encoder must degrade to literal records and still round-trip bits.
  Pcg32 rng(7);
  Wave1Encoder enc(1, true);
  std::vector<double> t, v;
  double cur = 0.0;
  for (std::size_t i = 0; i < 257; ++i) {
    cur += rng.uniform(1e-12, 1e-9);
    t.push_back(cur);
    v.push_back(rng.uniform(-1.0, 1.0));
    enc.add_row(t.back(), &v.back(), 1);
  }
  Wave1Decoder dec(1, true);
  dec.decode_block(enc.encode_block());
  ASSERT_EQ(dec.rows(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(std::memcmp(&dec.time()[i], &t[i], 8), 0) << i;
    EXPECT_EQ(std::memcmp(&dec.column(0)[i], &v[i], 8), 0) << i;
  }
}

TEST(Wave1, AccumulatesAcrossBlocksAtTinyChunkBudget) {
  Wave1Encoder enc(1, false);
  Wave1Decoder dec(1, false);
  std::size_t blocks = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    const double v = static_cast<double>(i) * 0.25;
    enc.add_row(0.0, &v, 1);
    if (enc.full(64)) {
      dec.decode_block(enc.encode_block());
      ++blocks;
    }
  }
  if (!enc.empty()) dec.decode_block(enc.encode_block());
  EXPECT_GT(blocks, 10u);  // the budget actually bounded block size
  ASSERT_EQ(dec.rows(), 500u);
  for (std::size_t i = 0; i < 500; ++i)
    EXPECT_EQ(dec.column(0)[i], static_cast<double>(i) * 0.25);
}

TEST(Wave1, DecoderRejectsMalformedBlocks) {
  Wave1Decoder dec(1, true);
  EXPECT_THROW(dec.decode_block(""), StreamProtocolError);
  EXPECT_THROW(dec.decode_block(std::string("\x00\x00\x00\x00", 4)),
               StreamProtocolError);  // zero rows
  // Truncated: claims one row but carries no samples.
  EXPECT_THROW(dec.decode_block(std::string("\x01\x00\x00\x00", 4)),
               StreamProtocolError);
}

TEST(Wave1, AssemblerEnforcesFrameSequencing) {
  const std::string header = R"({"id":1,"encoding":"json"})";
  {
    StreamAssembler a;
    EXPECT_THROW(a.on_frame(Frame{FrameType::Chunk, "x"}), StreamProtocolError);
  }
  {
    StreamAssembler a;
    a.on_frame(Frame{FrameType::Header, header});
    EXPECT_THROW(a.on_frame(Frame{FrameType::Header, header}), StreamProtocolError);
  }
  {
    StreamAssembler a;
    a.on_frame(Frame{FrameType::Header, header});
    a.on_frame(Frame{FrameType::Chunk, "{}"});
    a.on_frame(Frame{FrameType::End, stream_status_payload("1", "ok")});
    EXPECT_TRUE(a.done());
    EXPECT_THROW(a.on_frame(Frame{FrameType::Chunk, "x"}), StreamProtocolError);
  }
}

// ---------------------------------------------------------------------------
// DeliveryQueue: ordering, window flow control, discard, shutdown.
// ---------------------------------------------------------------------------

TEST(DeliveryQueue, DeliversSlotsInOpenOrderAcrossKinds) {
  DeliveryQueue dq(8);
  auto a = dq.open_plain();
  auto b = dq.open_stream();
  auto c = dq.open_plain();
  // Complete them out of order; the consumer must still see A, B, C.
  c->set("C\n");
  ASSERT_TRUE(b->push("B1"));
  ASSERT_TRUE(b->push("B2"));
  b->finish();
  a->set("A\n");
  dq.close_submit();
  std::string wire, piece;
  while (dq.next(piece)) wire += piece;
  EXPECT_EQ(wire, "A\nB1B2C\n");
}

TEST(DeliveryQueue, WindowBlocksExactlyOneProducer) {
  DeliveryQueue dq(2);
  auto s = dq.open_stream();
  ASSERT_TRUE(s->push("1"));
  ASSERT_TRUE(s->push("2"));
  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(s->push("3"));  // blocks until the consumer drains one
    third_done.store(true);
    s->finish();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(third_done.load()) << "push did not block at the window";
  std::string wire, piece;
  dq.close_submit();
  while (dq.next(piece)) wire += piece;
  producer.join();
  EXPECT_TRUE(third_done.load());
  EXPECT_EQ(wire, "123");
}

TEST(DeliveryQueue, DiscardPendingWakesProducerWithoutPoisoningSlot) {
  DeliveryQueue dq(1);
  auto s = dq.open_stream();
  ASSERT_TRUE(s->push("old"));
  std::atomic<bool> unblocked{false};
  std::thread producer([&] {
    EXPECT_TRUE(s->push("blocked"));
    unblocked.store(true);
  });
  std::this_thread::sleep_for(50ms);
  ASSERT_FALSE(unblocked.load());
  s->discard_pending();  // cancel path: drop frames, wake the producer
  producer.join();
  EXPECT_TRUE(unblocked.load());
  // The slot still delivers: the terminal CANCEL_ACK must get through.
  s->discard_pending();
  ASSERT_TRUE(s->push("ack"));
  s->finish();
  dq.close_submit();
  std::string wire, piece;
  while (dq.next(piece)) wire += piece;
  EXPECT_EQ(wire, "ack");
}

TEST(DeliveryQueue, ShutdownFailsPushesButKeepsDraining) {
  DeliveryQueue dq(4);
  auto a = dq.open_plain();
  auto s = dq.open_stream();
  a->set("A\n");
  ASSERT_TRUE(s->push("S"));
  dq.shutdown();
  EXPECT_FALSE(s->push("late"));  // producer unwinds via Abort{ConsumerGone}
  s->finish();
  dq.close_submit();
  // next() stays usable so already-blocked producers always finish.
  std::string piece;
  while (dq.next(piece)) {
  }
}

// ---------------------------------------------------------------------------
// ResponseScanner (the supervisor's acceptor mux accounting).
// ---------------------------------------------------------------------------

std::size_t scan_all(ResponseScanner& sc, std::string_view bytes,
                     std::size_t feed_size, std::string& forward) {
  std::size_t completed = 0;
  for (std::size_t i = 0; i < bytes.size(); i += feed_size)
    completed +=
        sc.feed(bytes.data() + i, std::min(feed_size, bytes.size() - i), forward);
  return completed;
}

TEST(Scanner, CountsLinesAndWholeStreamsAtAnyFeedSize) {
  std::string stream(kStreamMagic);
  encode_frame(stream, FrameType::Header, R"({"id":2,"encoding":"json"})");
  encode_frame(stream, FrameType::Chunk, "{\"ok\":true}");
  encode_frame(stream, FrameType::End, stream_status_payload("2", "ok"));
  const std::string bytes = "{\"id\":1}\n" + stream + "{\"id\":3}\n";
  for (const std::size_t feed : {std::size_t{1}, std::size_t{7}, bytes.size()}) {
    ResponseScanner sc;
    std::string forward;
    // 3 responses: line, stream (counted once, at its terminal), line.
    EXPECT_EQ(scan_all(sc, bytes, feed, forward), 3u) << "feed=" << feed;
    EXPECT_EQ(forward, bytes) << "feed=" << feed;  // forwards byte-identically
    EXPECT_FALSE(sc.mid_stream());
  }
}

TEST(Scanner, WithholdsPartialFrameAndReportsMidStream) {
  std::string stream(kStreamMagic);
  encode_frame(stream, FrameType::Header, R"({"id":1,"encoding":"wave1"})");
  const std::size_t whole = stream.size();
  encode_frame(stream, FrameType::Chunk, std::string(64, 'x'));

  ResponseScanner sc;
  std::string forward;
  // Deliver the full header frame plus half of the chunk frame: the scanner
  // must forward only complete frames — a worker crash here leaks nothing.
  const std::size_t cut = whole + (stream.size() - whole) / 2;
  EXPECT_EQ(sc.feed(stream.data(), cut, forward), 0u);
  EXPECT_EQ(forward, stream.substr(0, whole));
  EXPECT_TRUE(sc.mid_stream());
  // The rest arrives: chunk forwarded, still mid-stream (no terminal yet).
  EXPECT_EQ(sc.feed(stream.data() + cut, stream.size() - cut, forward), 0u);
  EXPECT_EQ(forward, stream);
  EXPECT_TRUE(sc.mid_stream());
  std::string terminal;
  encode_frame(terminal, FrameType::End, stream_status_payload("1", "ok"));
  EXPECT_EQ(sc.feed(terminal.data(), terminal.size(), forward), 1u);
  EXPECT_FALSE(sc.mid_stream());
}

// ---------------------------------------------------------------------------
// Byte-identity: decoded stream == non-streaming line (service level,
// chunk sizes x encodings x request kinds).
// ---------------------------------------------------------------------------

TEST(StreamIdentity, ServiceLevelAcrossChunkSizesAndEncodings) {
  Service svc;
  for (const std::string& request :
       {kBehaviouralRequest, kSpiceRequest, kStaticRequest}) {
    const std::string reference = svc.handle_line(request);
    const bool has_waveform = request != kStaticRequest;
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
      EXPECT_EQ(service_stream(svc, with_stream(request, "json", chunk)), reference)
          << "encoding=json chunk=" << chunk;
      if (has_waveform) {
        EXPECT_EQ(service_stream(svc, with_stream(request, "wave1", chunk)), reference)
            << "encoding=wave1 chunk=" << chunk;
      }
    }
  }
}

TEST(StreamIdentity, Wave1BypassesResultCache) {
  Service svc;
  const auto before = svc.stats();
  const std::string line = service_stream(svc, with_stream(kSpiceRequest, "wave1", 512));
  const std::string again = service_stream(svc, with_stream(kSpiceRequest, "wave1", 512));
  EXPECT_EQ(line, again);
  const auto after = svc.stats();
  // Both streamed runs evaluated (no cache hit), and neither populated the
  // cache for the buffered path to consume.
  EXPECT_EQ(after.n_evaluations, before.n_evaluations + 2);
}

TEST(StreamIdentity, StreamErrorEnvelopeMatchesBufferedShape) {
  Service svc;
  const std::string bad =
      R"({"id":9,"op":"transient","topology":"spice","tstop":1e-6,"dt":1e-9,)"
      R"("stream":true,"encoding":"wave1","return_waveform":true})";
  std::string bytes;
  StreamEmitter em = capture_emitter(bytes);
  svc.handle_stream(bad, em);
  StreamAssembler out = assemble(bytes);
  EXPECT_EQ(out.status(), "error");
  const json::Value v = json::Value::parse(out.decoded());
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_NE(v.find("error")->find("detail")->as_string().find("netlist"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Byte-identity over the socket transport: chunk sizes x thread counts.
// ---------------------------------------------------------------------------

TEST(StreamIdentity, SocketLevelAcrossChunkSizesAndThreadCounts) {
  std::string reference_plain, reference_stream;
  for (const unsigned threads : {1u, 2u, 4u}) {
    par::set_global_threads(threads);
    ServerOptions opt;
    opt.socket_path = unique_socket("threads");
    Server server(opt);
    server.start();
    {
      BlockingClient client(server.socket_path());
      client.send_line(kSpiceRequest);
      const std::string plain = client.recv_line();
      if (reference_plain.empty()) reference_plain = plain;
      EXPECT_EQ(plain, reference_plain) << "threads=" << threads;
      for (const std::size_t chunk :
           {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
        StreamAssembler wave = client_stream(client, with_stream(kSpiceRequest, "wave1", chunk));
        EXPECT_EQ(wave.status(), "ok") << wave.decoded();
        EXPECT_EQ(wave.decoded(), reference_plain)
            << "threads=" << threads << " chunk=" << chunk;
        StreamAssembler js = client_stream(client, with_stream(kSpiceRequest, "json", chunk));
        EXPECT_EQ(js.decoded(), reference_plain)
            << "threads=" << threads << " chunk=" << chunk;
      }
      // Behavioural wave1 too (single column, no time axis).
      StreamAssembler beh = client_stream(client, with_stream(kBehaviouralRequest, "wave1", 7));
      ASSERT_EQ(beh.status(), "ok") << beh.decoded();
      if (reference_stream.empty()) reference_stream = beh.decoded();
      EXPECT_EQ(beh.decoded(), reference_stream) << "threads=" << threads;
      // And the connection drops back to line-delimited JSON afterwards.
      client.send_line(kStaticRequest);
      EXPECT_NE(client.recv_line().find("\"ok\":true"), std::string::npos);
    }
    server.stop();
  }
  par::set_global_threads(1);
  // The behavioural streamed line equals the buffered line.
  Service svc;
  EXPECT_EQ(reference_stream, svc.handle_line(kBehaviouralRequest));
}

// ---------------------------------------------------------------------------
// Byte-identity through the supervised fleet: worker counts {1,2}.
// ---------------------------------------------------------------------------

TEST(StreamIdentity, FleetLevelAcrossWorkerCounts) {
  std::string tmpl = (fs::temp_directory_path() / "ivory-stream-XXXXXX").string();
  ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
  std::string reference;
  for (const int workers : {1, 2}) {
    SupervisorOptions o;
    o.socket_path = tmpl + "/sock" + std::to_string(workers);
    o.workers = workers;
    o.exe = IVORY_CLI_BIN;
    Supervisor fleet(o);
    fleet.start();
    {
      BlockingClient client(fleet.socket_path());
      client.send_line(kSpiceRequest);
      const std::string plain = client.recv_line();
      if (reference.empty()) reference = plain;
      EXPECT_EQ(plain, reference) << "workers=" << workers;
      for (const std::size_t chunk : {std::size_t{7}, std::size_t{4096}}) {
        StreamAssembler wave = client_stream(client, with_stream(kSpiceRequest, "wave1", chunk));
        EXPECT_EQ(wave.status(), "ok") << wave.decoded();
        EXPECT_EQ(wave.decoded(), reference)
            << "workers=" << workers << " chunk=" << chunk;
      }
      // Back to plain lines on the same muxed connection.
      client.send_line(kSpiceRequest);
      EXPECT_EQ(client.recv_line(), reference);
    }
    EXPECT_EQ(fleet.stats().retry_errors, 0u);
    fleet.stop();
  }
  std::error_code ec;
  fs::remove_all(tmpl, ec);
}

// ---------------------------------------------------------------------------
// Bounded buffering: the server's resident response bytes scale with the
// chunk budget, not the waveform length (the acceptance-criteria gauge).
// ---------------------------------------------------------------------------

TEST(StreamBackpressure, PeakBufferBoundedByChunkBudgetNotWaveformLength) {
  auto& peak = metrics::registry().gauge("serve.stream.buffer_peak_bytes");
  peak.reset();
  ServerOptions opt;
  opt.socket_path = unique_socket("buffer");
  Server server(opt);
  server.start();
  std::string decoded;
  {
    BlockingClient client(server.socket_path());
    StreamAssembler wave = client_stream(client, with_stream(kBigSpiceRequest, "wave1", 4096));
    ASSERT_EQ(wave.status(), "ok") << wave.decoded().substr(0, 200);
    decoded = wave.decoded();
  }
  server.stop();
  // The decoded response is megabytes; the high-water mark of undelivered
  // stream bytes must stay within (window + a frame in flight) chunks.
  const std::int64_t bound =
      static_cast<std::int64_t>((opt.stream_window + 4) * (4096 + 1024));
  EXPECT_GT(decoded.size(), 1u << 20);
  EXPECT_GT(peak.value(), 0);
  EXPECT_LE(peak.value(), bound);
  EXPECT_LT(peak.value(), static_cast<std::int64_t>(decoded.size() / 8))
      << "peak tracked the waveform length, not the chunk budget";
}

// ---------------------------------------------------------------------------
// Cancel mid-stream frees the wave slot for the next request.
// ---------------------------------------------------------------------------

TEST(StreamCancel, MidStreamCancelFreesTheOnlyWaveSlot) {
  Service svc;
  Scheduler::Options sopt;
  sopt.stream_slots = 1;  // one wave slot: a stuck stream would starve B
  Scheduler sched(svc, sopt);
  DeliveryQueue dq(2);
  std::string wire;
  std::thread consumer([&] {
    std::string piece;
    while (dq.next(piece)) wire += piece;
  });

  const int client = sched.open_client();
  sched.submit_stream(client, with_stream(kSlowSpiceRequest, "wave1", 1024),
                      dq.open_stream());
  std::this_thread::sleep_for(200ms);  // let the solve stream some chunks
  EXPECT_TRUE(sched.cancel(client, json::Value::parse("4")));
  // The slot must come free: a second stream on the same lane completes.
  sched.submit_stream(client, with_stream(kSpiceRequest, "wave1", 512),
                      dq.open_stream());
  sched.drain();
  sched.close_client(client);
  dq.close_submit();
  consumer.join();

  std::size_t pos = 0;
  StreamAssembler first = assemble_at(wire, pos);
  EXPECT_EQ(first.status(), "cancelled") << first.decoded();
  StreamAssembler second = assemble_at(wire, pos);
  EXPECT_EQ(second.status(), "ok") << second.decoded();
  EXPECT_EQ(second.decoded(), svc.handle_line(kSpiceRequest));
  EXPECT_EQ(pos, wire.size());
}

TEST(StreamCancel, OverSocketCancelAcknowledgesAndAnswersTheCancelLine) {
  ServerOptions opt;
  opt.socket_path = unique_socket("cancel");
  Server server(opt);
  server.start();
  {
    BlockingClient client(server.socket_path());
    client.send_line(with_stream(kSlowSpiceRequest, "wave1", 1024));
    std::this_thread::sleep_for(150ms);
    client.send_line(R"({"id":99,"cancel":4})");
    // One byte per read: the cancel-response line follows the terminal frame
    // on the wire, and a larger gulp would swallow its first bytes.
    StreamAssembler wave = read_stream(
        [&client](char* out, std::size_t) { return client.recv_raw(out, 1); });
    // Either the cancel landed mid-stream (the common case) or the stream
    // finished first; both are legal, and the cancel line is answered after
    // the stream's terminal frame either way.
    EXPECT_TRUE(wave.status() == "cancelled" || wave.status() == "ok")
        << wave.status();
    const json::Value ack = json::Value::parse(client.recv_line());
    EXPECT_TRUE(ack.find("ok")->as_bool());
    const bool hit = ack.find("result")->find("cancelled")->as_bool();
    if (wave.status() == "cancelled") {
      EXPECT_TRUE(hit);
    }
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Backpressure isolation: a slow reader stalls only its own stream.
// ---------------------------------------------------------------------------

TEST(StreamBackpressure, SlowReaderDoesNotStallAnotherClient) {
  ServerOptions opt;
  opt.socket_path = unique_socket("slow");
  opt.stream_slots = 1;
  opt.stream_window = 2;
  Server server(opt);
  server.start();
  {
    // Client A starts a long stream and never reads: its stream worker ends
    // up blocked on A's delivery window once the socket buffer fills.
    BlockingClient slow(server.socket_path());
    slow.send_line(with_stream(kSlowSpiceRequest, "wave1", 1024));
    std::this_thread::sleep_for(200ms);

    // Client B's plain request rides the dispatcher, not the stream lane:
    // it must answer promptly even though the only wave slot is wedged.
    std::future<std::string> answer = std::async(std::launch::async, [&] {
      BlockingClient fast(server.socket_path());
      fast.send_line(kStaticRequest);
      return fast.recv_line();
    });
    ASSERT_EQ(answer.wait_for(20s), std::future_status::ready)
        << "plain request stalled behind a slow stream reader";
    EXPECT_NE(answer.get().find("\"ok\":true"), std::string::npos);
    // Dropping `slow` unreads the stream: the worker must unwind via
    // Abort{ConsumerGone} so server.stop() below cannot hang.
  }
  server.stop();
}

// ---------------------------------------------------------------------------
// Seeded frame-corruption fuzzer: >=10k corrupted streams, every one must
// end in a structured error or a clean truncation — never a crash or hang.
// ---------------------------------------------------------------------------

/// One seeded corruption of `bytes`: truncation, bit flips, range swaps
/// (frame reordering), duplication, garbage insertion, or field overwrites
/// (oversized lengths, unknown types, bad checksums all arise here).
std::string corrupt(const std::string& bytes, Pcg32& rng) {
  std::string out = bytes;
  const int ops = 1 + static_cast<int>(rng.uniform(0.0, 3.0));
  for (int k = 0; k < ops && !out.empty(); ++k) {
    switch (static_cast<int>(rng.uniform(0.0, 5.0))) {
      case 0:  // truncate
        out.resize(static_cast<std::size_t>(rng.uniform(0.0, 1.0) * out.size()));
        break;
      case 1: {  // flip 1..8 bits
        const int flips = 1 + static_cast<int>(rng.uniform(0.0, 8.0));
        for (int f = 0; f < flips; ++f) {
          const std::size_t at = rng.next_u32() % out.size();
          out[at] = static_cast<char>(out[at] ^ (1u << (rng.next_u32() & 7u)));
        }
        break;
      }
      case 2: {  // swap two ranges (reorders frames when cuts hit boundaries)
        const std::size_t a = rng.next_u32() % out.size();
        const std::size_t b = rng.next_u32() % out.size();
        const std::size_t lo = std::min(a, b), hi = std::max(a, b);
        const std::size_t len =
            std::min<std::size_t>(1 + rng.next_u32() % 64, (hi - lo) / 2 + 1);
        if (lo + len <= hi && hi + len <= out.size())
          for (std::size_t i = 0; i < len; ++i) std::swap(out[lo + i], out[hi + i]);
        break;
      }
      case 3: {  // duplicate a slice (repeated/oversized frames)
        const std::size_t at = rng.next_u32() % out.size();
        const std::size_t len = std::min<std::size_t>(1 + rng.next_u32() % 64,
                                                      out.size() - at);
        out.insert(at, out.substr(at, len));
        break;
      }
      default: {  // overwrite 4 bytes (length fields, type bytes, checksums)
        const std::size_t at = rng.next_u32() % out.size();
        for (std::size_t i = at; i < std::min(at + 4, out.size()); ++i)
          out[i] = static_cast<char>(rng.next_u32());
        break;
      }
    }
  }
  return out;
}

TEST(StreamFuzz, CorruptedFramesNeverCrashOrHang) {
  // A genuine template stream (header + several wave1 chunks + end).
  Service svc;
  std::string valid;
  StreamEmitter em = capture_emitter(valid);
  svc.handle_stream(with_stream(kSpiceRequest, "wave1", 256), em);
  ASSERT_EQ(assemble(valid).status(), "ok");
  ASSERT_GT(valid.size(), 1024u);

  std::size_t rejected = 0, truncated = 0, completed = 0;
  for (std::uint64_t seed = 0; seed < 10000; ++seed) {
    Pcg32 rng(seed, 0x5717);
    const std::string bytes = corrupt(valid, rng);
    FrameDecoder dec;
    StreamAssembler out;
    bool threw = false;
    try {
      // Feed in rng-sized slices so partial-frame paths fuzz too.
      std::size_t pos = 0;
      while (pos < bytes.size() && !out.done()) {
        const std::size_t n =
            std::min<std::size_t>(1 + rng.next_u32() % 512, bytes.size() - pos);
        dec.feed(std::string_view(bytes).substr(pos, n));
        pos += n;
        while (!out.done()) {
          const auto f = dec.next();
          if (!f) break;
          out.on_frame(*f);
        }
      }
    } catch (const InvalidParameter&) {
      threw = true;  // structured rejection: the only acceptable throw
    } catch (const std::exception& e) {
      FAIL() << "seed=" << seed << " unexpected exception type: " << e.what();
    }
    if (threw)
      ++rejected;
    else if (out.done())
      ++completed;
    else
      ++truncated;  // EOF mid-frame: caller's clean-close path
  }
  // The corpus must actually exercise all three outcomes.
  EXPECT_GT(rejected, 1000u);
  EXPECT_GT(truncated, 100u);
  EXPECT_GT(completed, 0u);  // some corruptions land in payload slack
  ::testing::Test::RecordProperty("fuzz_rejected", static_cast<int>(rejected));
  ::testing::Test::RecordProperty("fuzz_truncated", static_cast<int>(truncated));
}

}  // namespace
}  // namespace ivory::serve
