// Error-path coverage: the failure modes the quarantine machinery classifies
// must themselves be raised with the right exception type and a message that
// names the offending input (sample index, netlist line, token).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/outcome.hpp"
#include "core/dynamic.hpp"
#include "core/sc_topology.hpp"
#include "spice/parser.hpp"
#include "workload/workload.hpp"

namespace ivory {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// --- Linear algebra -------------------------------------------------------

TEST(ErrorPaths, SingularLuThrowsNumerical) {
  Matrix<double> a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // Rank 1.
  EXPECT_THROW(LuFactorization<double>{a}, NumericalError);
}

TEST(ErrorPaths, NonFiniteMatrixThrowsNumerical) {
  Matrix<double> a(2, 2);
  a(0, 0) = kNan;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  // The NaN poisons the pivot comparison; the factorization must notice
  // instead of silently producing a NaN solution.
  EXPECT_THROW(LuFactorization<double>{a}, NumericalError);
}

TEST(ErrorPaths, RankDeficientLeastSquaresThrows) {
  // Second column identically zero: rank 1, no reflector can fix it.
  Matrix<double> a(3, 2);
  for (std::size_t r = 0; r < 3; ++r) a(r, 0) = static_cast<double>(r + 1);
  EXPECT_THROW(solve_least_squares(a, {1.0, 2.0, 3.0}), NumericalError);
}

// --- Workload trace loading -----------------------------------------------

workload::PowerTrace read_one(const std::string& csv) {
  std::istringstream in(csv);
  return workload::read_traces_csv(in).front();
}

TEST(ErrorPaths, EmptyTraceRejected) {
  std::istringstream in("");
  EXPECT_THROW(workload::read_traces_csv(in), InvalidParameter);
}

TEST(ErrorPaths, SingleSampleTraceRejected) {
  EXPECT_THROW(read_one("time_s,sm0_w\n0.0,1.0\n"), InvalidParameter);
}

TEST(ErrorPaths, NanSampleRejectedWithIndex) {
  try {
    read_one("time_s,sm0_w\n0.0,1.0\n1e-9,nan\n2e-9,1.0\n");
    FAIL() << "expected InvalidParameter";
  } catch (const InvalidParameter& e) {
    EXPECT_NE(std::string(e.what()).find("sample 1"), std::string::npos) << e.what();
  }
}

TEST(ErrorPaths, InfSampleRejected) {
  EXPECT_THROW(read_one("time_s,sm0_w\n0.0,1.0\n1e-9,inf\n"), InvalidParameter);
}

TEST(ErrorPaths, NonIncreasingTimestampRejectedWithIndex) {
  try {
    read_one("time_s,sm0_w\n0.0,1.0\n1e-9,1.0\n1e-9,1.0\n");
    FAIL() << "expected InvalidParameter";
  } catch (const InvalidParameter& e) {
    EXPECT_NE(std::string(e.what()).find("sample 2"), std::string::npos) << e.what();
  }
}

TEST(ErrorPaths, UnparseableCellRejectedNamingCell) {
  try {
    read_one("time_s,sm0_w\n0.0,1.0\n1e-9,bogus\n");
    FAIL() << "expected InvalidParameter";
  } catch (const InvalidParameter& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sample 1"), std::string::npos) << msg;
  }
}

TEST(ErrorPaths, TraceSumMismatchNamesTheOffendingTrace) {
  // PowerTrace::sum over inconsistent traces must say *which* trace broke
  // the contract and how, not just that "traces differ".
  const workload::PowerTrace a{1e-9, {1.0, 2.0, 3.0}};
  const workload::PowerTrace bad_dt{2e-9, {1.0, 2.0, 3.0}};
  const workload::PowerTrace bad_len{1e-9, {1.0, 2.0}};
  try {
    workload::PowerTrace::sum({a, a, bad_dt});
    FAIL() << "expected InvalidParameter";
  } catch (const InvalidParameter& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("trace 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dt"), std::string::npos) << msg;
  }
  try {
    workload::PowerTrace::sum({a, bad_len});
    FAIL() << "expected InvalidParameter";
  } catch (const InvalidParameter& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("trace 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("length"), std::string::npos) << msg;
  }
}

TEST(ErrorPaths, TraceSumMismatchIsQuarantinable) {
  // Inside a sweep the same failure classifies as InvalidParameter with the
  // trace index preserved in the diagnostics, so a SweepReport names it.
  const workload::PowerTrace a{1e-9, {1.0, 2.0}};
  const workload::PowerTrace b{3e-9, {1.0, 2.0}};
  const EvalOutcome<double> out = quarantine("trace_sum", "mixed traces", [&] {
    return workload::PowerTrace::sum({a, b}).average();
  });
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.diagnostics().code, ErrorCode::InvalidParameter);
  EXPECT_NE(out.diagnostics().detail.find("trace 1"), std::string::npos)
      << out.diagnostics().detail;
}

// --- SC topology construction ---------------------------------------------

TEST(ErrorPaths, TopologyRatioOutOfRange) {
  EXPECT_THROW(core::make_topology(1, 1), InvalidParameter);
  EXPECT_THROW(core::make_topology(3, 3), InvalidParameter);
  EXPECT_THROW(core::make_topology(3, 2, core::ScFamily::SeriesParallel), InvalidParameter);
}

TEST(ErrorPaths, DisconnectedOutputIsStructural) {
  // One cap and one switch, neither touching Vout: the charge-flow solver
  // must flag the topology rather than produce a degenerate system.
  core::ScTopology t;
  t.name = "disconnected";
  t.n = 2;
  t.m = 1;
  const int mid = t.new_node();
  t.caps.push_back({mid, core::kScGnd, 0.5, false});
  t.switches.push_back({0, core::kScVin, mid});
  t.switches.push_back({1, mid, core::kScGnd});
  EXPECT_THROW(core::charge_vectors(t), StructuralError);
}

// --- SPICE netlist parsing ------------------------------------------------

TEST(ErrorPaths, ParserNamesLineAndToken) {
  const char* netlist =
      "* comment\n"
      "r1 in out 1k\n"
      "c1 out 0 1x5\n"
      ".end\n";
  try {
    spice::parse_netlist(netlist);
    FAIL() << "expected StructuralError";
  } catch (const StructuralError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'1x5'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("capacitance"), std::string::npos) << msg;
  }
}

TEST(ErrorPaths, ParserNamesShortElementLine) {
  try {
    spice::parse_netlist("r1 in out\n");
    FAIL() << "expected StructuralError";
  } catch (const StructuralError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3 tokens"), std::string::npos) << msg;
  }
}

TEST(ErrorPaths, ParserNamesBadSourceToken) {
  try {
    spice::parse_netlist("v1 in 0 pulse 0 1 0 1n 1n bad 2u\n");
    FAIL() << "expected StructuralError";
  } catch (const StructuralError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("PULSE"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'bad'"), std::string::npos) << msg;
  }
}

// --- Cycle models ---------------------------------------------------------

TEST(ErrorPaths, ShortTraceCycleResponseRejected) {
  core::ScDesign d;
  d.n = 2;
  d.m = 1;
  d.c_fly_f = 1e-6;
  d.c_out_f = 0.2e-6;
  d.g_tot_s = 5000.0;
  d.f_sw_hz = 100e6;
  EXPECT_THROW(core::sc_cycle_response(d, 3.3, 1.0, {1.0}, 1e-9), InvalidParameter);
  EXPECT_THROW(core::sc_cycle_response(d, 3.3, 1.0, {}, 1e-9), InvalidParameter);
}

}  // namespace
}  // namespace ivory
