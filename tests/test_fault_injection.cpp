// Fault-injection harness tests: sweeps must survive injected failures with
// the surviving candidates and the skip report byte-identical at any thread
// count, and degrade to a single aggregated error only when every candidate
// dies.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/fft.hpp"
#include "common/matrix.hpp"
#include "common/outcome.hpp"
#include "common/parallel.hpp"
#include "core/dynamic.hpp"
#include "core/optimizer.hpp"

namespace ivory {
namespace {

using core::DseResult;
using core::OptTarget;
using core::SystemParams;

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::disarm_all();
    par::set_global_threads(1);
  }
};

// --- Probe mechanics ------------------------------------------------------

TEST_F(FaultInjectionTest, KthHitThrowFiresExactlyOnce) {
  const LuFactorization<double> lu(Matrix<double>::identity(3));
  const std::vector<double> b{1.0, 2.0, 3.0};

  fault::arm_on_hit("lu_solve", fault::Action::Throw, 2);
  EXPECT_NO_THROW(lu.solve(b));  // Hit 1: passes.
  try {
    lu.solve(b);  // Hit 2: armed.
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_NE(std::string(e.what()).find("fault-injection"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("lu_solve"), std::string::npos) << e.what();
  }
  EXPECT_NO_THROW(lu.solve(b));  // Hit 3: fires exactly once.
  EXPECT_EQ(fault::trip_count("lu_solve"), 1u);
}

TEST_F(FaultInjectionTest, EmitNanTripsTheSolveGuard) {
  const LuFactorization<double> lu(Matrix<double>::identity(2));
  fault::arm_on_hit("lu_solve", fault::Action::EmitNan, 1);
  // The injected NaN rides into the solution vector and must be caught by
  // the finite guard rather than escaping to the caller's arithmetic.
  EXPECT_THROW(lu.solve({1.0, 1.0}), NonFiniteError);
  EXPECT_EQ(fault::trip_count("lu_solve"), 1u);
}

TEST_F(FaultInjectionTest, FftThrowInjection) {
  std::vector<std::complex<double>> data(8, {1.0, 0.0});
  fault::arm_on_hit("fft", fault::Action::Throw, 1);
  EXPECT_THROW(fft_radix2(data), NumericalError);
}

TEST_F(FaultInjectionTest, FftNanInjectionTripsOutputGuard) {
  std::vector<std::complex<double>> data(8, {1.0, 0.0});
  fault::arm_on_hit("fft", fault::Action::EmitNan, 1);
  EXPECT_THROW(fft_radix2(data), NonFiniteError);
}

TEST_F(FaultInjectionTest, CycleModelNanInjectionTripsWaveformGuard) {
  core::ScDesign d;
  d.n = 2;
  d.m = 1;
  d.c_fly_f = 1e-6;
  d.c_out_f = 0.2e-6;
  d.g_tot_s = 5000.0;
  d.f_sw_hz = 100e6;
  const std::vector<double> iload(64, 1.0);
  fault::arm_on_hit("cycle_model", fault::Action::EmitNan, 1);
  EXPECT_THROW(core::sc_cycle_response(d, 2.4, 1.0, iload, 1e-9), NonFiniteError);
}

TEST_F(FaultInjectionTest, RearmResetsCounters) {
  const LuFactorization<double> lu(Matrix<double>::identity(2));
  fault::arm_on_hit("lu_solve", fault::Action::Throw, 1);
  EXPECT_THROW(lu.solve({1.0, 1.0}), NumericalError);
  fault::arm_on_hit("lu_solve", fault::Action::Throw, 1);  // Fresh stream.
  EXPECT_THROW(lu.solve({1.0, 1.0}), NumericalError);
  EXPECT_EQ(fault::trip_count("lu_solve"), 1u);  // Re-arm cleared the count.
}

// --- Sweep-level quarantine under injected faults -------------------------

struct SweepRun {
  std::vector<DseResult> results;
  SweepReport report;
};

SweepRun run_explore(unsigned threads, const SystemParams& sys) {
  par::set_global_threads(threads);
  fault::reset_hits();
  SweepRun run;
  run.results = core::explore(sys, OptTarget::Efficiency, &run.report);
  return run;
}

void expect_same_result(const DseResult& a, const DseResult& b, std::size_t i) {
  EXPECT_EQ(a.topology, b.topology) << "survivor " << i;
  EXPECT_EQ(a.label, b.label) << "survivor " << i;
  EXPECT_EQ(a.n_distributed, b.n_distributed) << "survivor " << i;
  EXPECT_EQ(a.feasible, b.feasible) << "survivor " << i;
  EXPECT_EQ(bits(a.efficiency), bits(b.efficiency)) << "survivor " << i;
  EXPECT_EQ(bits(a.ripple_pp_v), bits(b.ripple_pp_v)) << "survivor " << i;
  EXPECT_EQ(bits(a.f_sw_hz), bits(b.f_sw_hz)) << "survivor " << i;
  EXPECT_EQ(bits(a.area_m2), bits(b.area_m2)) << "survivor " << i;
  EXPECT_EQ(a.n_interleave, b.n_interleave) << "survivor " << i;
}

void expect_same_run(const SweepRun& a, const SweepRun& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i)
    expect_same_result(a.results[i], b.results[i], i);
  EXPECT_EQ(a.report.n_evaluated, b.report.n_evaluated);
  EXPECT_EQ(a.report.n_survived, b.report.n_survived);
  ASSERT_EQ(a.report.skips.size(), b.report.skips.size());
  for (std::size_t i = 0; i < a.report.skips.size(); ++i) {
    EXPECT_EQ(a.report.skips[i].code, b.report.skips[i].code) << "skip " << i;
    EXPECT_EQ(a.report.skips[i].site, b.report.skips[i].site) << "skip " << i;
    EXPECT_EQ(a.report.skips[i].candidate, b.report.skips[i].candidate) << "skip " << i;
    EXPECT_EQ(a.report.skips[i].detail, b.report.skips[i].detail) << "skip " << i;
  }
}

TEST_F(FaultInjectionTest, ExploreSurvivesPointLevelFaultsIdenticallyAcrossThreads) {
  const SystemParams sys;
  core::explore(sys);  // Warm the static-analysis caches before arming.

  // Seeded so a minority (<= 30%) of the twelve explore points die; the rest
  // of the sweep must come through untouched and identical at 1/2/4 threads.
  fault::arm_probability("optimize_topology", fault::Action::Throw, 0.18, 42);
  const SweepRun r1 = run_explore(1, sys);

  ASSERT_FALSE(r1.report.skips.empty()) << "injection never fired; pick another seed";
  ASSERT_FALSE(r1.results.empty());
  std::size_t point_skips = 0;
  for (const Diagnostics& d : r1.report.skips) {
    EXPECT_EQ(d.site, "explore");
    EXPECT_EQ(d.code, ErrorCode::Numerical);
    EXPECT_NE(d.detail.find("fault-injection"), std::string::npos) << d.detail;
    ++point_skips;
  }
  EXPECT_LE(static_cast<double>(point_skips), 0.30 * 12.0)
      << "injected failures must stay a minority of the 12 explore points";
  EXPECT_EQ(r1.results.size() + point_skips, 12u);

  const SweepRun r2 = run_explore(2, sys);
  const SweepRun r4 = run_explore(4, sys);
  expect_same_run(r1, r2);
  expect_same_run(r1, r4);
}

TEST_F(FaultInjectionTest, ExploreSurvivesModelLevelFaultsIdenticallyAcrossThreads) {
  const SystemParams sys;
  core::explore(sys);  // Warm the static-analysis caches before arming.

  // Low per-hit probability: the SC static-analysis probe is hit many times
  // per variant, so this kills some variants (and possibly whole points)
  // while leaving survivors.
  fault::arm_probability("sc_static_analysis", fault::Action::Throw, 0.001, 1234);
  const SweepRun r1 = run_explore(1, sys);

  ASSERT_FALSE(r1.report.skips.empty()) << "injection never fired; pick another seed";
  ASSERT_FALSE(r1.results.empty());
  EXPECT_GT(fault::trip_count("sc_static_analysis"), 0u);

  const SweepRun r2 = run_explore(2, sys);
  const SweepRun r4 = run_explore(4, sys);
  expect_same_run(r1, r2);
  expect_same_run(r1, r4);
}

TEST_F(FaultInjectionTest, AllCandidatesDeadRaisesAggregatedError) {
  const SystemParams sys;
  fault::arm_probability("optimize_topology", fault::Action::Throw, 1.0, 7);
  SweepReport report;
  try {
    core::explore(sys, OptTarget::Efficiency, &report);
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_EQ(e.dominant().code, ErrorCode::Numerical);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("explore"), std::string::npos) << msg;
    EXPECT_NE(msg.find("all 12 candidates failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fault-injection"), std::string::npos) << msg;
  }
  // The report still lists every skip even though the sweep threw.
  EXPECT_EQ(report.skips.size(), 12u);
}

TEST_F(FaultInjectionTest, AllCandidatesNanRaisesNonFiniteDominant) {
  const SystemParams sys;
  // NaN load power poisons every candidate; the model entry guards must
  // classify the deaths as NonFinite, and the aggregate must say so.
  fault::arm_probability("optimize_topology", fault::Action::EmitNan, 1.0, 7);
  try {
    core::explore(sys);
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_EQ(e.dominant().code, ErrorCode::NonFinite);
  }
}

}  // namespace
}  // namespace ivory
