// Tests for the PDN models: closed-form impedance vs. circuit simulation,
// transient die-voltage simulation, domain slicing, and the VRM model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "pdn/pdn.hpp"
#include "spice/spice.hpp"

namespace ivory::pdn {
namespace {

TEST(PdnImpedance, DcLimitIsSeriesResistance) {
  const PdnParams p = PdnParams::gpuvolt_default();
  const double r_total = p.board.r_ohm + p.package.r_ohm + p.c4.r_ohm + p.grid_r_ohm;
  const std::complex<double> z = input_impedance(p, 1.0);  // 1 Hz ~ DC.
  EXPECT_NEAR(z.real(), r_total, 0.05 * r_total);
  EXPECT_NEAR(z.imag(), 0.0, 0.2 * r_total);
}

TEST(PdnImpedance, ResonancePeakInTensOfMHz) {
  const PdnParams p = PdnParams::gpuvolt_default();
  const ImpedancePeak peak = find_impedance_peak(p, 1e3, 1e10);
  // First-droop resonance for this class of system: ~10-200 MHz, a few mohm.
  EXPECT_GT(peak.f_hz, 1e7);
  EXPECT_LT(peak.f_hz, 2e8);
  EXPECT_GT(peak.z_ohm, 1e-3);
  EXPECT_LT(peak.z_ohm, 50e-3);
}

TEST(PdnImpedance, CoarseGridPeakMatchesDenseGridAfterPolish) {
  // The golden-section polish inside the best coarse cell must land on the
  // same resonance a 100x denser scan finds: a 20-point grid over 7 decades
  // (~0.37 decades/cell) would otherwise alias the peak frequency badly.
  const PdnParams p = PdnParams::gpuvolt_default();
  const ImpedancePeak coarse = find_impedance_peak(p, 1e3, 1e10, 20);
  const ImpedancePeak dense = find_impedance_peak(p, 1e3, 1e10, 2000);
  EXPECT_NEAR(coarse.f_hz, dense.f_hz, 0.01 * dense.f_hz);
  EXPECT_NEAR(coarse.z_ohm, dense.z_ohm, 1e-3 * dense.z_ohm);
  // The polished coarse answer can only beat a pure grid scan, never trail it.
  EXPECT_GE(coarse.z_ohm, dense.z_ohm * (1.0 - 1e-9));
}

TEST(PdnImpedance, ClosedFormMatchesSpiceAc) {
  const PdnParams p = PdnParams::gpuvolt_default();
  spice::Circuit c;
  const PdnNodes nodes = build_pdn_netlist(c, p, 1.0);
  spice::Waveform probe = spice::Waveform::dc(0.0);
  probe.set_ac_magnitude(1.0);
  c.add_isource("iprobe", nodes.die, spice::kGround, probe);

  const std::vector<double> freqs = spice::log_frequencies(1e4, 1e9, 26);
  const spice::AcResult ac = spice::ac_analysis(c, freqs, {nodes.die});
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const double z_form = std::abs(input_impedance(p, freqs[k]));
    const double z_sim = std::abs(ac.at(nodes.die)[k]);
    EXPECT_NEAR(z_sim, z_form, 0.02 * z_form + 1e-9) << "f=" << freqs[k];
  }
}

TEST(PdnTransient, ConstantLoadGivesIrDrop) {
  const PdnParams p = PdnParams::gpuvolt_default();
  const double i = 10.0, v_supply = 1.0;
  const std::vector<double> load(4000, i);
  const std::vector<double> v = simulate_die_voltage(p, v_supply, load, 5e-9);
  const double r_total = p.board.r_ohm + p.package.r_ohm + p.c4.r_ohm + p.grid_r_ohm;
  EXPECT_NEAR(v.back(), v_supply - i * r_total, 2e-3);
}

TEST(PdnTransient, LoadStepCausesDroopBeyondDc) {
  const PdnParams p = PdnParams::gpuvolt_default();
  std::vector<double> load(8000, 2.0);
  for (std::size_t k = 4000; k < load.size(); ++k) load[k] = 18.0;
  const std::vector<double> v = simulate_die_voltage(p, 1.0, load, 2e-9);
  const double r_total = p.board.r_ohm + p.package.r_ohm + p.c4.r_ohm + p.grid_r_ohm;
  const double v_dc_final = 1.0 - 18.0 * r_total;
  // The first droop undershoots the final DC value (inductive kick).
  std::vector<double> post(v.begin() + 4000, v.begin() + 7000);
  EXPECT_LT(min_value(post), v_dc_final - 1e-3);
}

TEST(PdnDomains, SymmetricSlicingPreservesSharedImpedanceScale) {
  const PdnParams p = PdnParams::gpuvolt_default();
  const PdnParams p4 = p.per_domain(4);
  EXPECT_NEAR(p4.board.r_ohm, 4.0 * p.board.r_ohm, 1e-12);
  EXPECT_NEAR(p4.board.decap_f, p.board.decap_f / 4.0, 1e-12);
  EXPECT_NEAR(p4.ondie_decap_f, p.ondie_decap_f / 4.0, 1e-15);
  // A quarter of the current through the 4x shared slice reproduces the
  // shared-network drop exactly; the grid term is intentionally NOT scaled
  // (a distributed domain's local path shortens as its slice narrows), so
  // the per-domain die sits (3/4) * i * R_grid higher.
  const double i = 12.0;
  const std::vector<double> load_full(2000, i);
  const std::vector<double> load_q(2000, i / 4.0);
  const std::vector<double> v_full = simulate_die_voltage(p, 1.0, load_full, 5e-9);
  const std::vector<double> v_q = simulate_die_voltage(p4, 1.0, load_q, 5e-9);
  EXPECT_NEAR(v_q.back() - v_full.back(), 0.75 * i * p.grid_r_ohm, 1e-4);
}

TEST(PdnDomains, InvalidCountThrows) {
  EXPECT_THROW(PdnParams::gpuvolt_default().per_domain(0), ivory::InvalidParameter);
}

TEST(Vrm, EfficiencyCurvePeaksNearRating) {
  const VrmModel vrm = VrmModel::board_vrm(3.3, 10.0);
  const double eta_light = vrm.efficiency(0.5);
  const double eta_rated = vrm.efficiency(10.0);
  const double eta_over = vrm.efficiency(40.0);
  EXPECT_GT(eta_rated, eta_light);
  EXPECT_GT(eta_rated, eta_over);
  EXPECT_GT(eta_rated, 0.85);
  EXPECT_LT(eta_rated, 0.95);
}

TEST(Vrm, HigherOutputVoltageIsMoreEfficient) {
  const double eta_33 = VrmModel::board_vrm(3.3, 10.0).efficiency(10.0);
  const double eta_10 = VrmModel::board_vrm(1.0, 33.0).efficiency(33.0);
  EXPECT_GT(eta_33, eta_10);
}

TEST(Vrm, InputPowerConsistentWithEfficiency) {
  const VrmModel vrm = VrmModel::board_vrm(3.3, 10.0);
  const double p_out = 16.5;  // 5 A.
  EXPECT_NEAR(vrm.input_power(p_out) * vrm.efficiency(5.0), p_out, 1e-9);
}

TEST(Vrm, InvalidInputsThrow) {
  const VrmModel vrm = VrmModel::board_vrm(3.3, 10.0);
  EXPECT_THROW(vrm.efficiency(0.0), ivory::InvalidParameter);
  EXPECT_THROW(vrm.input_power(-1.0), ivory::InvalidParameter);
  EXPECT_THROW(VrmModel::board_vrm(0.0, 1.0), ivory::InvalidParameter);
}

TEST(PdnTransient, InvalidInputsThrow) {
  const PdnParams p = PdnParams::gpuvolt_default();
  EXPECT_THROW(simulate_die_voltage(p, 1.0, {1.0}, 1e-9), ivory::InvalidParameter);
  EXPECT_THROW(simulate_die_voltage(p, 1.0, {1.0, 1.0}, 0.0), ivory::InvalidParameter);
  EXPECT_THROW(input_impedance(p, 0.0), ivory::InvalidParameter);
}

}  // namespace
}  // namespace ivory::pdn
