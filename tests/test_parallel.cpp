// Tests for the deterministic thread pool (src/common/parallel.*) and the
// determinism contract of the parallel DSE engine: explore() must produce
// byte-identical ordered results no matter how many threads run the sweep.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/optimizer.hpp"

namespace ivory {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u;
  static_assert(sizeof(u) == sizeof(x));
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

TEST(ThreadPool, StartStopResize) {
  par::set_global_threads(1);
  EXPECT_EQ(par::global_threads(), 1u);
  par::set_global_threads(4);
  EXPECT_EQ(par::global_threads(), 4u);
  // Resizing to the current size is a no-op; back to 2 spawns a fresh pool.
  par::set_global_threads(4);
  EXPECT_EQ(par::global_threads(), 4u);
  par::set_global_threads(2);
  EXPECT_EQ(par::global_threads(), 2u);
  EXPECT_THROW(par::set_global_threads(0), InvalidParameter);
  par::set_global_threads(1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (unsigned threads : {1u, 2u, 5u}) {
    par::set_global_threads(threads);
    std::vector<std::atomic<int>> hits(1000);
    par::parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
  par::set_global_threads(1);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  par::set_global_threads(4);
  const std::vector<double> out =
      par::parallel_map<double>(257, [](std::size_t i) { return 3.0 * static_cast<double>(i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], 3.0 * static_cast<double>(i));
  par::set_global_threads(1);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  par::set_global_threads(4);
  try {
    par::parallel_for(100, [](std::size_t i) {
      if (i >= 17) throw InvalidParameter("task " + std::to_string(i));
    });
    FAIL() << "expected InvalidParameter";
  } catch (const InvalidParameter& e) {
    // Every throwing index is recorded; the rethrown one is deterministic —
    // always the lowest — regardless of which thread hit it first.
    EXPECT_STREQ(e.what(), "task 17");
  }
  par::set_global_threads(1);
}

TEST(ThreadPool, PoolSurvivesAndReportsTaskExceptions) {
  par::set_global_threads(3);
  EXPECT_THROW(par::parallel_for(8, [](std::size_t) { throw NumericalError("boom"); }),
               NumericalError);
  // The pool must still be usable after a failed batch.
  std::atomic<int> sum{0};
  par::parallel_for(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
  par::set_global_threads(1);
}

TEST(ThreadPool, NestedParallelForIsRejectedFromThePool) {
  par::set_global_threads(4);
  std::atomic<int> nested_total{0};
  std::atomic<bool> saw_region_flag{false};
  std::atomic<bool> nested_changed_thread{false};
  par::parallel_for(8, [&](std::size_t) {
    if (par::in_parallel_region()) saw_region_flag = true;
    const std::thread::id outer = std::this_thread::get_id();
    // The nested loop must run inline (serially, on this worker) instead of
    // re-entering the pool — re-entry could deadlock a bounded pool.
    par::parallel_for(16, [&](std::size_t) {
      nested_total.fetch_add(1);
      if (std::this_thread::get_id() != outer) nested_changed_thread = true;
    });
  });
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_FALSE(nested_changed_thread.load());
  EXPECT_EQ(nested_total.load(), 8 * 16);
  // Outside any region the flag must be clear again.
  EXPECT_FALSE(par::in_parallel_region());
  par::set_global_threads(1);
}

TEST(ThreadPool, ConfiguredThreadsReadsEnv) {
  ::setenv("IVORY_THREADS", "3", 1);
  EXPECT_EQ(par::configured_threads(), 3u);
  ::setenv("IVORY_THREADS", "not-a-number", 1);
  EXPECT_GE(par::configured_threads(), 1u);  // Falls back to hardware_concurrency.
  ::unsetenv("IVORY_THREADS");
  EXPECT_GE(par::configured_threads(), 1u);
}

TEST(ThreadPool, EmptyAndSingleIndexLoops) {
  par::set_global_threads(4);
  int calls = 0;
  par::parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  par::parallel_for(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
  par::set_global_threads(1);
}

// --- Determinism contract of the DSE engine --------------------------------

void expect_bitwise_equal(const core::DseResult& a, const core::DseResult& b,
                          std::size_t index) {
  EXPECT_EQ(a.topology, b.topology) << "point " << index;
  EXPECT_EQ(a.label, b.label) << "point " << index;
  EXPECT_EQ(a.n_distributed, b.n_distributed) << "point " << index;
  EXPECT_EQ(a.feasible, b.feasible) << "point " << index;
  EXPECT_EQ(bits(a.efficiency), bits(b.efficiency)) << "point " << index;
  EXPECT_EQ(bits(a.ripple_pp_v), bits(b.ripple_pp_v)) << "point " << index;
  EXPECT_EQ(bits(a.f_sw_hz), bits(b.f_sw_hz)) << "point " << index;
  EXPECT_EQ(bits(a.area_m2), bits(b.area_m2)) << "point " << index;
  EXPECT_EQ(a.n_interleave, b.n_interleave) << "point " << index;
  // The concrete winning designs, field by field.
  EXPECT_EQ(a.sc.n, b.sc.n) << "point " << index;
  EXPECT_EQ(a.sc.m, b.sc.m) << "point " << index;
  EXPECT_EQ(a.sc.family, b.sc.family) << "point " << index;
  EXPECT_EQ(bits(a.sc.c_fly_f), bits(b.sc.c_fly_f)) << "point " << index;
  EXPECT_EQ(bits(a.sc.c_out_f), bits(b.sc.c_out_f)) << "point " << index;
  EXPECT_EQ(bits(a.sc.g_tot_s), bits(b.sc.g_tot_s)) << "point " << index;
  EXPECT_EQ(bits(a.sc.f_sw_hz), bits(b.sc.f_sw_hz)) << "point " << index;
  EXPECT_EQ(a.sc.n_interleave, b.sc.n_interleave) << "point " << index;
  EXPECT_EQ(bits(a.buck.l_per_phase_h), bits(b.buck.l_per_phase_h)) << "point " << index;
  EXPECT_EQ(bits(a.buck.f_sw_hz), bits(b.buck.f_sw_hz)) << "point " << index;
  EXPECT_EQ(a.buck.n_phases, b.buck.n_phases) << "point " << index;
  EXPECT_EQ(bits(a.buck.w_high_m), bits(b.buck.w_high_m)) << "point " << index;
  EXPECT_EQ(bits(a.buck.w_low_m), bits(b.buck.w_low_m)) << "point " << index;
  EXPECT_EQ(bits(a.buck.c_out_f), bits(b.buck.c_out_f)) << "point " << index;
  EXPECT_EQ(bits(a.ldo.w_pass_m), bits(b.ldo.w_pass_m)) << "point " << index;
  EXPECT_EQ(bits(a.ldo.f_clk_hz), bits(b.ldo.f_clk_hz)) << "point " << index;
  EXPECT_EQ(bits(a.ldo.c_out_f), bits(b.ldo.c_out_f)) << "point " << index;
}

TEST(Determinism, ExploreIsByteIdenticalAcrossThreadCounts) {
  // The GPU case study (paper Table 1 defaults): the full sweep with one
  // thread and with eight must produce identical ordered result vectors —
  // same winners, same bit patterns, same order.
  const core::SystemParams sys;
  par::set_global_threads(1);
  const std::vector<core::DseResult> serial = core::explore(sys);
  par::set_global_threads(8);
  const std::vector<core::DseResult> parallel = core::explore(sys);
  par::set_global_threads(1);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    expect_bitwise_equal(serial[i], parallel[i], i);
}

TEST(Determinism, TwoStageIsByteIdenticalAcrossThreadCounts) {
  const core::SystemParams sys;
  par::set_global_threads(1);
  const core::TwoStageResult serial = core::optimize_two_stage(sys, 4);
  par::set_global_threads(8);
  const core::TwoStageResult parallel = core::optimize_two_stage(sys, 4);
  par::set_global_threads(1);

  ASSERT_EQ(serial.feasible, parallel.feasible);
  EXPECT_EQ(bits(serial.v_mid_v), bits(parallel.v_mid_v));
  EXPECT_EQ(bits(serial.area_frac_stage1), bits(parallel.area_frac_stage1));
  EXPECT_EQ(bits(serial.efficiency), bits(parallel.efficiency));
  expect_bitwise_equal(serial.stage1, parallel.stage1, 0);
  expect_bitwise_equal(serial.stage2, parallel.stage2, 1);
}

}  // namespace
}  // namespace ivory
