// Unit tests for the dense matrix, LU, and least-squares solvers.
#include <gtest/gtest.h>

#include <complex>

#include "common/error.hpp"
#include "common/matrix.hpp"

namespace ivory {
namespace {

TEST(Matrix, IdentitySolveReturnsRhs) {
  const auto eye = Matrix<double>::identity(4);
  const std::vector<double> b{1.0, -2.0, 3.5, 0.0};
  EXPECT_EQ(solve_linear(eye, b), b);
}

TEST(Matrix, SolvesKnown3x3System) {
  Matrix<double> a(3, 3);
  a(0, 0) = 2;  a(0, 1) = 1;  a(0, 2) = -1;
  a(1, 0) = -3; a(1, 1) = -1; a(1, 2) = 2;
  a(2, 0) = -2; a(2, 1) = 1;  a(2, 2) = 2;
  const std::vector<double> b{8.0, -11.0, -3.0};
  const std::vector<double> x = solve_linear(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Matrix, PivotingHandlesZeroDiagonal) {
  Matrix<double> a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const std::vector<double> x = solve_linear(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(Matrix, SingularMatrixThrows) {
  Matrix<double> a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(solve_linear(a, {1.0, 2.0}), NumericalError);
}

TEST(Matrix, FactorizationReusableAcrossRhs) {
  Matrix<double> a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const LuFactorization<double> lu(a);
  const std::vector<double> x1 = lu.solve({1.0, 2.0});
  const std::vector<double> x2 = lu.solve({0.0, 1.0});
  EXPECT_NEAR(4.0 * x1[0] + x1[1], 1.0, 1e-12);
  EXPECT_NEAR(x1[0] + 3.0 * x1[1], 2.0, 1e-12);
  EXPECT_NEAR(4.0 * x2[0] + x2[1], 0.0, 1e-12);
  EXPECT_NEAR(x2[0] + 3.0 * x2[1], 1.0, 1e-12);
}

TEST(Matrix, ComplexSolve) {
  using C = std::complex<double>;
  Matrix<C> a(2, 2);
  a(0, 0) = C(1, 1); a(0, 1) = C(0, 0);
  a(1, 0) = C(0, 0); a(1, 1) = C(0, 2);
  const std::vector<C> x = solve_linear(a, {C(2, 0), C(4, 0)});
  EXPECT_NEAR(std::abs(x[0] - C(1, -1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - C(0, -2)), 0.0, 1e-12);
}

TEST(Matrix, MulMatchesHandComputation) {
  Matrix<double> a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<double> y = a.mul(std::vector<double>{1.0, 0.0, -1.0});
  EXPECT_NEAR(y[0], -2.0, 1e-15);
  EXPECT_NEAR(y[1], -2.0, 1e-15);
}

TEST(LeastSquares, ExactSystemRecovered) {
  // Overdetermined but consistent: y = 2x + 1 at four points.
  Matrix<double> a(4, 2);
  std::vector<double> b(4);
  const double xs[] = {0.0, 1.0, 2.0, 3.0};
  for (int i = 0; i < 4; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = xs[i];
    b[static_cast<std::size_t>(i)] = 2.0 * xs[i] + 1.0;
  }
  const std::vector<double> coef = solve_least_squares(a, b);
  EXPECT_NEAR(coef[0], 1.0, 1e-10);
  EXPECT_NEAR(coef[1], 2.0, 1e-10);
  EXPECT_NEAR(residual_norm(a, coef, b), 0.0, 1e-10);
}

TEST(LeastSquares, MinimizesResidualOfInconsistentSystem) {
  // x = argmin ||Ax - b||: for A = [1;1;1], b = (0, 3, 6), x = mean = 3.
  Matrix<double> a(3, 1);
  a(0, 0) = a(1, 0) = a(2, 0) = 1.0;
  const std::vector<double> x = solve_least_squares(a, {0.0, 3.0, 6.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
}

TEST(LeastSquares, RankDeficientThrows) {
  Matrix<double> a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = 2.0;  // Column 2 = 2 * column 1.
  }
  EXPECT_THROW(solve_least_squares(a, {1.0, 1.0, 1.0}), NumericalError);
}

TEST(Matrix, DimensionMismatchThrows) {
  const auto a = Matrix<double>::identity(2);
  EXPECT_THROW(a.mul(std::vector<double>{1.0}), InvalidParameter);
  EXPECT_THROW(solve_linear(a, {1.0, 2.0, 3.0}), InvalidParameter);
}

}  // namespace
}  // namespace ivory
