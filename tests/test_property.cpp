// Property-based tests over deterministic random inputs (Pcg32 seeds, so a
// failure is replayable: the seed is in the assertion message).
//
//  1. JSON canonicalization is a fixpoint: for any generated document,
//     parse(write_canonical(v)) re-serializes to the identical bytes, and
//     the content hash (fnv1a64 over the canonical form) is stable. This is
//     the property the serve result cache's content addressing rests on.
//  2. The transient LU-factorization cache is invisible in outputs: for
//     random circuit and TranSpec perturbations, waveforms are byte-identical
//     at every cache capacity, including disabled.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "spice/spice.hpp"

namespace ivory {
namespace {

// ---------------------------------------------------------------------------
// Random JSON documents.
// ---------------------------------------------------------------------------

std::string random_string(Pcg32& rng) {
  static const char* kAlphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-./\\\"\n\t";
  const std::size_t len = rng.next_u32() % 12;
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(kAlphabet[rng.next_u32() % std::strlen(kAlphabet)]);
  return s;
}

double random_number(Pcg32& rng) {
  switch (rng.next_u32() % 4) {
    case 0:  // small integers (exercise the integral fast path)
      return static_cast<double>(static_cast<std::int32_t>(rng.next_u32())) / 8.0;
    case 1:  // SPICE-sized magnitudes
      return rng.uniform(-1.0, 1.0) * 1e-9;
    case 2:  // large magnitudes
      return rng.uniform(-1.0, 1.0) * 1e12;
    default:  // values with awkward shortest round-trips
      return rng.uniform(-1.0, 1.0);
  }
}

json::Value random_value(Pcg32& rng, int depth) {
  const std::uint32_t kind = rng.next_u32() % (depth > 0 ? 6 : 4);
  switch (kind) {
    case 0: return json::Value();
    case 1: return json::Value(rng.bernoulli(0.5));
    case 2: return json::Value(random_number(rng));
    case 3: return json::Value(random_string(rng));
    case 4: {
      json::Value::Array a;
      const std::size_t n = rng.next_u32() % 5;
      for (std::size_t i = 0; i < n; ++i) a.push_back(random_value(rng, depth - 1));
      return json::Value(std::move(a));
    }
    default: {
      json::Value::Object o;
      const std::size_t n = rng.next_u32() % 5;
      for (std::size_t i = 0; i < n; ++i) {
        // Unique keys: canonical ordering of duplicate keys is unspecified.
        std::string key = std::to_string(i) + ":" + random_string(rng);
        o.emplace_back(std::move(key), random_value(rng, depth - 1));
      }
      return json::Value(std::move(o));
    }
  }
}

TEST(PropertyJson, CanonicalFormIsAParseWriteFixpoint) {
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Pcg32 rng(seed);
    const json::Value v = random_value(rng, 4);
    const std::string c1 = v.write_canonical();
    json::Value reparsed;
    ASSERT_NO_THROW(reparsed = json::Value::parse(c1)) << "seed=" << seed << " doc=" << c1;
    const std::string c2 = reparsed.write_canonical();
    ASSERT_EQ(c1, c2) << "canonical form not a fixpoint at seed=" << seed;
    // Content hashing is a pure function of those bytes.
    ASSERT_EQ(fnv1a64(c1), fnv1a64(c2)) << "seed=" << seed;
    // Semantic equality survives the round trip.
    ASSERT_TRUE(v == reparsed) << "seed=" << seed << " doc=" << c1;
  }
}

TEST(PropertyJson, MemberOrderNeverChangesTheCanonicalForm) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Pcg32 rng(seed ^ 0x9e3779b97f4a7c15ULL);
    json::Value v = random_value(rng, 3);
    if (!v.is_object() || v.as_object().size() < 2) continue;
    json::Value shuffled = v;
    json::Value::Object& o = shuffled.as_object();
    // Deterministic Fisher-Yates on the member order.
    for (std::size_t i = o.size(); i > 1; --i)
      std::swap(o[i - 1], o[rng.next_u32() % i]);
    ASSERT_EQ(v.write_canonical(), shuffled.write_canonical()) << "seed=" << seed;
    ASSERT_EQ(fnv1a64(v.write_canonical()), fnv1a64(shuffled.write_canonical()))
        << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Random switched circuits: the LU cache must never change a waveform.
// ---------------------------------------------------------------------------

/// A randomized 2:1 switched-capacitor cell with an RC ladder load: random
/// element values, clock rate/duty and load depth, but always structurally
/// valid and numerically tame.
spice::Circuit random_switched_circuit(Pcg32& rng) {
  spice::Circuit c;
  const spice::NodeId in = c.node("in");
  const spice::NodeId fly = c.node("fly");
  const spice::NodeId out = c.node("out");
  c.add_vsource("vin", in, spice::kGround, spice::Waveform::dc(rng.uniform(2.0, 5.0)));
  const spice::PhaseClock clk(rng.uniform(5e6, 40e6), 2, rng.uniform(0.35, 0.48));
  const double ron = rng.uniform(0.005, 0.05);
  c.add_switch("s1", in, fly, ron, 1e8, clk.control(0), clk.edge_fn(0));
  c.add_switch("s2", fly, out, ron, 1e8, clk.control(1), clk.edge_fn(1));
  c.add_capacitor_ic("cfly", fly, spice::kGround, rng.uniform(20e-9, 200e-9), 1.5);
  c.add_capacitor_ic("cout", out, spice::kGround, rng.uniform(20e-9, 200e-9), 1.5);
  // RC ladder load of random depth.
  const int depth = 1 + static_cast<int>(rng.next_u32() % 3);
  spice::NodeId prev = out;
  for (int i = 0; i < depth; ++i) {
    const spice::NodeId n = c.node("l" + std::to_string(i));
    c.add_resistor("rl" + std::to_string(i), prev, n, rng.uniform(0.5, 5.0));
    c.add_capacitor("cl" + std::to_string(i), n, spice::kGround, rng.uniform(1e-9, 20e-9));
    prev = n;
  }
  c.add_resistor("rload", prev, spice::kGround, rng.uniform(1.0, 10.0));
  return c;
}

spice::TranSpec random_spec(Pcg32& rng) {
  spice::TranSpec spec;
  spec.dt = rng.uniform(1e-10, 5e-9);
  spec.tstop = spec.dt * (200.0 + static_cast<double>(rng.next_u32() % 800));
  spec.method =
      rng.bernoulli(0.5) ? spice::Integrator::Trapezoidal : spice::Integrator::BackwardEuler;
  spec.use_ic = rng.bernoulli(0.7);
  spec.adaptive = rng.bernoulli(0.3);
  spec.dv_max_v = rng.uniform(5e-4, 5e-3);
  return spec;
}

bool byte_identical(const spice::TranResult& a, const spice::TranResult& b) {
  if (a.time.size() != b.time.size() || a.voltages.size() != b.voltages.size()) return false;
  if (std::memcmp(a.time.data(), b.time.data(), a.time.size() * sizeof(double)) != 0)
    return false;
  for (std::size_t i = 0; i < a.voltages.size(); ++i) {
    if (a.voltages[i].size() != b.voltages[i].size() ||
        std::memcmp(a.voltages[i].data(), b.voltages[i].data(),
                    a.voltages[i].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

TEST(PropertyTransient, LuCacheCapacityNeverChangesWaveformBytes) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Pcg32 rng(seed);
    const spice::Circuit c = random_switched_circuit(rng);
    spice::TranSpec spec = random_spec(rng);

    spec.lu_cache_capacity = 0;  // cache disabled: factor every step
    const spice::TranResult uncached = spice::transient(c, spec);
    for (const int capacity : {1, 8, 64}) {
      spec.lu_cache_capacity = capacity;
      const spice::TranResult cached = spice::transient(c, spec);
      ASSERT_TRUE(byte_identical(uncached, cached))
          << "waveform changed with lu_cache_capacity=" << capacity << " at seed=" << seed;
      ASSERT_EQ(uncached.steps_taken, cached.steps_taken) << "seed=" << seed;
    }
  }
}

TEST(PropertyTransient, RepeatedRunsAreByteIdentical) {
  // Same circuit, same spec, two fresh runs: the engine is deterministic
  // (no time-of-day, no address-dependent iteration anywhere in the path).
  for (std::uint64_t seed = 100; seed <= 110; ++seed) {
    Pcg32 rng(seed);
    const spice::Circuit c = random_switched_circuit(rng);
    const spice::TranSpec spec = random_spec(rng);
    const spice::TranResult a = spice::transient(c, spec);
    const spice::TranResult b = spice::transient(c, spec);
    ASSERT_TRUE(byte_identical(a, b)) << "seed=" << seed;
    ASSERT_EQ(a.lu_factorizations, b.lu_factorizations) << "seed=" << seed;
    ASSERT_EQ(a.lu_cache_hits, b.lu_cache_hits) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace ivory
