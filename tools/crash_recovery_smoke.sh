#!/usr/bin/env bash
# End-to-end crash recovery smoke over the real `ivory` binary.
#
#   1. Start a 2-worker supervised fleet with a durable store.
#   2. Send a slow request, kill -9 every worker while it is in flight, and
#      assert the client gets a structured *retryable* error — not a hang,
#      not a dropped connection.
#   3. Assert the supervisor restarts the workers (a plain retry succeeds).
#   4. Evaluate a reference request, SIGTERM the whole fleet (graceful
#      drain), start a fresh fleet over the same store directory, and assert
#      the warm answer is byte-identical to the cold one without
#      re-evaluation (store hit visible in the stats op).
#
# Usage: crash_recovery_smoke.sh /path/to/ivory
set -u

IVORY="${1:?usage: crash_recovery_smoke.sh /path/to/ivory}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/ivory-crash-smoke-XXXXXX")"
SOCK="$WORK/sock"
STORE="$WORK/store"
FLEET_PID=""

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

cleanup() {
  if [ -n "$FLEET_PID" ] && kill -0 "$FLEET_PID" 2>/dev/null; then
    kill -TERM "$FLEET_PID" 2>/dev/null
    wait "$FLEET_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

start_fleet() {
  "$IVORY" serve --socket "$SOCK" --workers 2 --cache-dir "$STORE" \
    --backoff-ms 50 --health-ms 50 </dev/null 2>"$WORK/fleet.log" &
  FLEET_PID=$!
  # The public socket accepts only after every worker is up.
  for _ in $(seq 1 100); do
    if echo '{"op":"stats","id":0}' | "$IVORY" client --socket "$SOCK" \
        >/dev/null 2>&1; then
      return 0
    fi
    kill -0 "$FLEET_PID" 2>/dev/null || fail "fleet died during startup: $(cat "$WORK/fleet.log")"
    sleep 0.1
  done
  fail "fleet did not come up: $(cat "$WORK/fleet.log")"
}

stop_fleet() {
  kill -TERM "$FLEET_PID"
  wait "$FLEET_PID" 2>/dev/null
  FLEET_PID=""
}

worker_pids() {
  # Workers were exec'd as `<ivory> serve --socket <sock>.wN --worker 1 ...`.
  pgrep -f "serve --socket $SOCK\.w" || true
}

# A transient long enough (~3.2M implicit-Euler steps, ~0.7 s of solve)
# that kill -9 lands while it is still being computed.
SLOW_REQ='{"op":"transient","id":7,"topology":"spice","netlist":"vin in 0 DC 3.3\ns1 in fly 0.01 1e8 CLOCK(20meg 2 0.48 0)\ns2 fly out 0.01 1e8 CLOCK(20meg 2 0.48 1)\ncfly fly 0 100n IC=1.65\ncout out 0 100n IC=1.65\nrl out 0 3.3\n.end\n","tstop":4e-4,"dt":1.25e-10,"method":"be","uic":true,"record":["out"]}'
REF_REQ='{"op":"sc_static","id":1,"n":3,"m":1,"cfly":4e-6,"gtot":15e3,"fsw":80e6,"iload":20}'

# --- 1. fleet up -----------------------------------------------------------
start_fleet
[ "$(worker_pids | wc -l)" -ge 2 ] || fail "expected 2 worker processes"

# --- 2. kill -9 mid-request -> structured retryable error ------------------
( echo "$SLOW_REQ" | "$IVORY" client --socket "$SOCK" > "$WORK/killed.out" ) &
CLIENT_PID=$!
sleep 0.5  # the worker is now deep inside the transient solve
for pid in $(worker_pids); do kill -KILL "$pid" 2>/dev/null; done
wait "$CLIENT_PID" 2>/dev/null
grep -q '"retryable":true' "$WORK/killed.out" ||
  fail "no retryable error after worker kill: $(cat "$WORK/killed.out")"
grep -q '"worker_unavailable"' "$WORK/killed.out" ||
  fail "wrong error code after worker kill: $(cat "$WORK/killed.out")"
echo "ok: kill -9 mid-request produced a structured retryable error"

# --- 3. supervisor restarts the workers ------------------------------------
RECOVERED=""
for _ in $(seq 1 150); do
  if echo "$REF_REQ" | "$IVORY" client --socket "$SOCK" 2>/dev/null |
      grep -q '"ok":true'; then
    RECOVERED=yes
    break
  fi
  sleep 0.1
done
[ -n "$RECOVERED" ] || fail "fleet did not recover after worker kill"
echo "ok: fleet recovered (retry of the same contract succeeded)"

# --- 4. warm restart is byte-identical and served from the store -----------
echo "$REF_REQ" | "$IVORY" client --socket "$SOCK" > "$WORK/cold.out"
grep -q '"ok":true' "$WORK/cold.out" || fail "cold reference request failed"
stop_fleet

start_fleet
echo "$REF_REQ" | "$IVORY" client --socket "$SOCK" > "$WORK/warm.out"
cmp -s "$WORK/cold.out" "$WORK/warm.out" ||
  fail "warm response differs from cold response after fleet restart"
# The answer must have come from the durable tier, not a re-evaluation:
# the worker that served it reports a warm-loaded store and zero evaluations
# for this key (cache hit or store hit, never n_evaluations for it).
STATS="$(echo '{"op":"stats","id":9}' | "$IVORY" client --socket "$SOCK")"
echo "$STATS" | grep -q '"store":{' || fail "stats response lacks store section: $STATS"
echo "$STATS" | grep -Eq '"warm_loaded":[1-9]' ||
  fail "restarted worker warm-loaded nothing: $STATS"
echo "ok: warm restart byte-identical, store warm-loaded"
stop_fleet

echo "PASS: crash recovery smoke"
