// ivory — command-line front end to the Ivory IVR design-space exploration
// library.
//
//   ivory explore   --vin 3.3 --vout 1.0 --power 20 --area 20m  [--cap trench]
//   ivory pareto    --density 1.0 --front-cap 32 [--top-k 10 + explore flags]
//   ivory sc        --n 3 --m 1 --cfly 4u --gtot 15k --fsw 80meg --vin 3.3 --iload 20
//   ivory buck      --l 5n --fsw 100meg --phases 4 --whs 80m --wls 100m
//                   --cout 1u --vin 3.3 --vout 1.0 --iload 10
//   ivory topology  --n 3 --m 2 [--family ladder]
//   ivory dynamic   --benchmark CFD --dist 4
//   ivory pds       [--guard-off 110m --guard-ivr 25m]
//   ivory transient --netlist circuit.sp --tstop 10u --dt 1n [--record out]
//   ivory batch     [--repeat 2 --threads 4]  < requests.ndjson
//   ivory serve     --socket /tmp/ivory.sock [--threads 4]
//
// Numeric flags accept SPICE suffixes (4u, 15k, 80meg, 20m, ...). Areas are
// in mm^2 (e.g. --area 20).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <csignal>
#include <sys/prctl.h>
#include <unistd.h>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "core/ivory.hpp"
#include "scenario/scenario.hpp"
#include "serve/batch.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "serve/wave_codec.hpp"

#include <chrono>

using namespace ivory;

namespace {

/// Command-line misuse (as opposed to a failed evaluation): main prints the
/// message plus the usage text to stderr and exits 2.
class UsageError : public InvalidParameter {
 public:
  explicit UsageError(const std::string& what) : InvalidParameter(what) {}
};

class Args {
 public:
  Args(int argc, char** argv, int first) {
    if (first < argc && (argc - first) % 2 != 0)
      throw UsageError("every flag needs a value");
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) throw UsageError("flags must start with --: " + key);
      kv_[key.substr(2)] = argv[i + 1];
    }
  }

  double num(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : spice::parse_spice_value(it->second);
  }
  int integer(const std::string& key, int fallback) const {
    return static_cast<int>(num(key, fallback));
  }
  std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }
  std::string require_str(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) throw UsageError("missing required flag --" + key);
    return it->second;
  }
  bool has(const std::string& key) const { return kv_.count(key) != 0; }

 private:
  std::map<std::string, std::string> kv_;
};

tech::CapKind cap_kind_from(const std::string& s) {
  if (s == "mos") return tech::CapKind::MosCap;
  if (s == "mim") return tech::CapKind::Mim;
  if (s == "trench") return tech::CapKind::DeepTrench;
  throw InvalidParameter("unknown capacitor kind '" + s + "' (mos|mim|trench)");
}

/// `--metrics-out FILE`: dump the process metrics registry plus the trace
/// ring to FILE as one canonical JSON document once the command has run.
/// `{"metrics": <registry snapshot>, "trace": <chrome trace_event doc>}` —
/// the "trace" member can be pasted into chrome://tracing as-is.
void write_metrics_out(const Args& a) {
  const std::string path = a.str("metrics-out", "");
  if (path.empty()) return;
  json::Value::Object o;
  o.emplace_back("metrics", metrics::registry().to_json());
  o.emplace_back("trace", json::Value::parse(trace::to_chrome_json()));
  std::ofstream out(path);
  if (!out) throw InvalidParameter("cannot open --metrics-out file '" + path + "'");
  out << json::Value(std::move(o)).write_canonical() << "\n";
}

core::SystemParams system_from(const Args& a) {
  core::SystemParams sys;
  sys.vin_v = a.num("vin", sys.vin_v);
  sys.vout_v = a.num("vout", sys.vout_v);
  sys.p_load_w = a.num("power", sys.p_load_w);
  sys.area_max_m2 = a.num("area", sys.area_max_m2 * 1e6) * 1e-6;  // mm^2.
  sys.node = tech::node_from_string(a.str("node", "32"));
  sys.cap_kind = cap_kind_from(a.str("cap", "trench"));
  sys.max_distributed = a.integer("max-dist", sys.max_distributed);
  sys.ripple_max_v = a.num("ripple", sys.ripple_max_v);
  return sys;
}

int cmd_explore(const Args& a) {
  const core::SystemParams sys = system_from(a);
  std::printf("exploring: %.2f V -> %.2f V, %.1f W, %.1f mm^2, %s, %s caps\n\n", sys.vin_v,
              sys.vout_v, sys.p_load_w, sys.area_max_m2 * 1e6, tech::node_name(sys.node),
              tech::cap_kind_name(sys.cap_kind));
  TextTable t({"design", "dist", "eff (%)", "ripple (mV)", "f_sw (MHz)", "ilv", "area (mm^2)",
               "feasible"});
  SweepReport report;
  for (const core::DseResult& r : core::explore(sys, core::OptTarget::Efficiency, &report)) {
    t.add_row({r.label.empty() ? core::topology_name(r.topology) : r.label,
               std::to_string(r.n_distributed), TextTable::num(r.efficiency * 100, 3),
               TextTable::num(r.ripple_pp_v * 1e3, 3), TextTable::num(r.f_sw_hz / 1e6, 3),
               std::to_string(r.n_interleave), TextTable::num(r.area_m2 * 1e6, 3),
               r.feasible ? "yes" : "no"});
  }
  std::printf("%s", t.render().c_str());
  if (!report.skips.empty()) {
    std::printf("\n%zu of %zu candidates quarantined:\n", report.skips.size(),
                report.n_evaluated);
    for (const Diagnostics& d : report.skips)
      std::printf("  - %s\n", d.to_string().c_str());
  }
  write_metrics_out(a);
  return 0;
}

int cmd_pareto(const Args& a) {
  const core::SystemParams sys = system_from(a);
  core::FunnelSpec spec;
  const double density = a.num("density", 1.0);
  if (!(density > 0.0)) throw UsageError("--density must be > 0");
  spec = spec.scaled(density);
  spec.front_cap = static_cast<std::size_t>(a.integer("front-cap", static_cast<int>(spec.front_cap)));
  if (spec.front_cap < 1) throw UsageError("--front-cap must be >= 1");
  spec.simulate = a.integer("simulate", 1) != 0;
  const int top_k = a.integer("top-k", 0);
  if (a.has("top-k") && top_k < 1) throw UsageError("--top-k must be >= 1 (omit to show all)");

  std::printf("funnel: %.2f V -> %.2f V, %.1f W, %.1f mm^2, %s, %s caps (density %.2f)\n\n",
              sys.vin_v, sys.vout_v, sys.p_load_w, sys.area_max_m2 * 1e6,
              tech::node_name(sys.node), tech::cap_kind_name(sys.cap_kind), density);
  SweepReport report;
  const core::ParetoFront front = core::funnel_explore(sys, spec, &report);

  TextTable t({"#", "design", "dist", "ivr%", "eff (%)", "area (mm^2)", "ripple (mV)",
               "droop (mV)", "sim"});
  std::size_t shown = 0;
  for (const core::ParetoPoint& p : front.points) {
    if (top_k > 0 && shown == static_cast<std::size_t>(top_k)) break;
    ++shown;
    t.add_row({std::to_string(shown),
               p.design.label.empty() ? core::topology_name(p.design.topology) : p.design.label,
               std::to_string(p.design.n_distributed),
               std::to_string(static_cast<int>(p.ivr_load_frac * 100.0 + 0.5)),
               TextTable::num(p.screen.efficiency * 100, 3),
               TextTable::num(p.screen.area_m2 * 1e6, 3),
               TextTable::num(p.screen.ripple_pp_v * 1e3, 3),
               p.simulated ? TextTable::num(p.droop_pp_v * 1e3, 3) : "-",
               p.simulated ? (p.sim_cached ? "cached" : "yes") : "no"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("screened %llu candidates (%llu feasible) in %llu blocks -> frontier %llu "
              "(%.0f candidates/s; sim cache: %llu hit, %llu miss)\n",
              static_cast<unsigned long long>(front.stats.n_screened),
              static_cast<unsigned long long>(front.stats.n_feasible),
              static_cast<unsigned long long>(front.stats.n_blocks),
              static_cast<unsigned long long>(front.stats.frontier_size),
              front.stats.screen_s > 0.0
                  ? static_cast<double>(front.stats.n_screened) / front.stats.screen_s
                  : 0.0,
              static_cast<unsigned long long>(front.stats.sim_cache_hits),
              static_cast<unsigned long long>(front.stats.sim_cache_misses));
  if (!report.skips.empty()) {
    std::printf("\n%zu of %zu candidates quarantined:\n", report.skips.size(),
                report.n_evaluated);
    for (const Diagnostics& d : report.skips)
      std::printf("  - %s\n", d.to_string().c_str());
  }
  write_metrics_out(a);
  return 0;
}

int cmd_sc(const Args& a) {
  core::ScDesign d;
  d.node = tech::node_from_string(a.str("node", "32"));
  d.cap_kind = cap_kind_from(a.str("cap", "trench"));
  d.n = a.integer("n", 2);
  d.m = a.integer("m", 1);
  const std::string fam = a.str("family", "auto");
  d.family = fam == "ladder"           ? core::ScFamily::Ladder
             : fam == "series-parallel" ? core::ScFamily::SeriesParallel
                                        : core::ScFamily::Auto;
  d.c_fly_f = a.num("cfly", 1e-6);
  d.c_out_f = a.num("cout", 0.2e-6);
  d.g_tot_s = a.num("gtot", 5000.0);
  d.f_sw_hz = a.num("fsw", 80e6);
  d.n_interleave = a.integer("interleave", 8);
  const double vin = a.num("vin", 3.3);
  const double i_load = a.num("iload", 10.0);

  const core::ScAnalysis r = core::analyze_sc(d, vin, i_load);
  TextTable t({"metric", "value"});
  t.add_row({"ideal output", TextTable::num(r.vout_ideal_v, 4) + " V"});
  t.add_row({"actual output", TextTable::num(r.vout_v, 4) + " V"});
  t.add_row({"R_out (SSL/FSL)", TextTable::si(r.rout_ohm, "ohm") + " (" +
                                    TextTable::si(r.rssl_ohm, "ohm") + " / " +
                                    TextTable::si(r.rfsl_ohm, "ohm") + ")"});
  t.add_row({"efficiency", TextTable::num(r.efficiency * 100, 4) + " %"});
  t.add_row({"ripple p-p", TextTable::si(r.ripple_pp_v, "V")});
  t.add_row({"loss: conduction", TextTable::si(r.p_conduction_w, "W")});
  t.add_row({"loss: gate", TextTable::si(r.p_gate_w, "W")});
  t.add_row({"loss: bottom plate", TextTable::si(r.p_bottom_plate_w, "W")});
  t.add_row({"loss: leakage", TextTable::si(r.p_leakage_w, "W")});
  t.add_row({"loss: peripherals", TextTable::si(r.p_peripheral_w, "W")});
  t.add_row({"area", TextTable::num(r.area_m2 * 1e6, 4) + " mm^2"});
  std::printf("%s", t.render().c_str());

  const double vtarget = a.num("regulate", 0.0);
  if (vtarget > 0.0) {
    const core::ScRegulated reg = core::analyze_sc_regulated(d, vin, vtarget, i_load);
    if (reg.feasible)
      std::printf("\nregulated to %.3f V: eff %.2f %% at f_sw %.2f MHz\n", vtarget,
                  reg.analysis.efficiency * 100, reg.f_sw_used_hz / 1e6);
    else
      std::printf("\nregulation to %.3f V infeasible (past the cliff or FSL floor)\n", vtarget);
  }
  return 0;
}

int cmd_buck(const Args& a) {
  core::BuckDesign d;
  d.node = tech::node_from_string(a.str("node", "32"));
  d.cap_kind = cap_kind_from(a.str("cap", "trench"));
  const std::string ind = a.str("inductor", "interposer");
  d.inductor = ind == "smt"        ? tech::InductorKind::SurfaceMount
               : ind == "magnetic" ? tech::InductorKind::MagneticFilm
                                   : tech::InductorKind::IntegratedInterposer;
  d.l_per_phase_h = a.num("l", 5e-9);
  d.f_sw_hz = a.num("fsw", 100e6);
  d.n_phases = a.integer("phases", 4);
  d.w_high_m = a.num("whs", 0.08);
  d.w_low_m = a.num("wls", 0.10);
  d.c_out_f = a.num("cout", 1e-6);
  const core::BuckAnalysis r =
      core::analyze_buck(d, a.num("vin", 3.3), a.num("vout", 1.0), a.num("iload", 10.0));
  TextTable t({"metric", "value"});
  t.add_row({"duty", TextTable::num(r.duty, 4)});
  t.add_row({"L_eff / L0", TextTable::num(r.l_eff_h / d.l_per_phase_h, 4)});
  t.add_row({"efficiency", TextTable::num(r.efficiency * 100, 4) + " %"});
  t.add_row({"inductor ripple/phase", TextTable::si(r.i_ripple_phase_a, "A")});
  t.add_row({"output ripple p-p", TextTable::si(r.ripple_pp_v, "V")});
  t.add_row({"loss: conduction", TextTable::si(r.p_conduction_w, "W")});
  t.add_row({"loss: gate", TextTable::si(r.p_gate_w, "W")});
  t.add_row({"loss: overlap+coss+deadtime",
             TextTable::si(r.p_overlap_w + r.p_coss_w + r.p_deadtime_w, "W")});
  t.add_row({"die area", TextTable::num(r.area_die_m2 * 1e6, 4) + " mm^2"});
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_topology(const Args& a) {
  const int n = a.integer("n", 2);
  const int m = a.integer("m", 1);
  const std::string fam = a.str("family", "auto");
  const core::ScFamily family = fam == "ladder"           ? core::ScFamily::Ladder
                                : fam == "series-parallel" ? core::ScFamily::SeriesParallel
                                : fam == "dickson"          ? core::ScFamily::Dickson
                                                           : core::ScFamily::Auto;
  const core::ScTopology topo = core::make_topology(n, m, family);
  const core::ChargeVectors cv = core::charge_vectors(topo);
  const std::vector<double> stress = core::switch_stress_ratios(topo);
  std::printf("%s: %zu caps, %zu switches, q_in = %.4f per unit output charge\n",
              topo.name.c_str(), topo.caps.size(), topo.switches.size(), cv.q_in);
  std::printf("R_SSL = %.4f / (C_tot f_sw)    R_FSL = %.4f / (G_tot D)\n",
              cv.sum_ac() * cv.sum_ac(), cv.sum_ar() * cv.sum_ar());
  TextTable t({"element", "a (charge mult.)", "stress (x Vin)"});
  for (std::size_t i = 0; i < topo.caps.size(); ++i)
    t.add_row({std::string(topo.caps[i].is_dc ? "C(dc) " : "C(fly) ") + std::to_string(i),
               TextTable::num(cv.a_cap[i], 4), TextTable::num(topo.caps[i].ideal_v_ratio, 4)});
  for (std::size_t i = 0; i < topo.switches.size(); ++i) {
    std::string sname = "S";
    sname += std::to_string(i);
    sname += topo.switches[i].phase == 0 ? " (A)" : " (B)";
    t.add_row({std::move(sname), TextTable::num(cv.a_switch[i], 4),
               TextTable::num(stress[i], 4)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_dynamic(const Args& a) {
  const core::SystemParams sys = system_from(a);
  const std::string bname = a.str("benchmark", "CFD");
  workload::Benchmark bench = workload::Benchmark::CFD;
  for (workload::Benchmark b : workload::kAllBenchmarks)
    if (bname == workload::benchmark_name(b)) bench = b;
  const int dist = a.integer("dist", 4);

  const core::DseResult ivr =
      core::optimize_topology(sys, core::IvrTopology::SwitchedCapacitor, dist);
  require(ivr.feasible, "no feasible IVR design for these constraints");
  std::printf("design: %s x%d distributed, %d-way interleaved, f_sw %.1f MHz\n",
              ivr.label.c_str(), dist, ivr.n_interleave, ivr.f_sw_hz / 1e6);

  const double dt = a.num("dt", 2e-9), dur = a.num("duration", 60e-6);
  const auto traces = workload::generate_gpu_traces(bench, 4, sys.p_load_w / 4.0, dur, dt);
  const workload::DigitalLoadModel load = workload::DigitalLoadModel::from_average_power(
      sys.p_load_w / 4.0, sys.vout_v, 1e9, 0.2);
  std::vector<double> i_dom(traces[0].watts.size(), 0.0);
  const int sm_per_dom = 4 / dist;
  for (int s = 0; s < sm_per_dom; ++s) {
    const auto i = workload::power_to_current(traces[static_cast<std::size_t>(s)], load,
                                              sys.vout_v);
    for (std::size_t k = 0; k < i_dom.size(); ++k) i_dom[k] += i[k];
  }
  const core::DynWaveform w =
      core::sc_combined_response(ivr.sc, sys.vin_v, sys.vout_v, i_dom, dt);
  const std::vector<double> tail(w.v.begin() + static_cast<long>(w.v.size() / 5), w.v.end());
  const BoxStats b = box_stats(tail);
  std::printf("%s supply voltage (one domain): mean %.4f V, p-p %.1f mV, "
              "[min %.4f | q1 %.4f | med %.4f | q3 %.4f | max %.4f]\n",
              bname.c_str(), mean(tail), peak_to_peak(tail) * 1e3, b.minimum, b.q1, b.median,
              b.q3, b.maximum);
  return 0;
}

int cmd_scenario(const Args& a) {
  const core::SystemParams sys = system_from(a);
  scenario::ScenarioSpec spec;
  const std::string preset = a.str("preset", "gpu-dvfs-step");
  spec.states = workload::residency_preset(preset);
  spec.name = preset;

  const std::string topo_name = a.str("topology", "sc");
  core::IvrTopology topo = core::IvrTopology::SwitchedCapacitor;
  if (topo_name == "sc") topo = core::IvrTopology::SwitchedCapacitor;
  else if (topo_name == "buck") topo = core::IvrTopology::Buck;
  else if (topo_name == "ldo") topo = core::IvrTopology::LinearRegulator;
  else if (topo_name == "dldo") topo = core::IvrTopology::DigitalLdo;
  else throw UsageError("unknown --topology '" + topo_name + "' (sc|buck|ldo|dldo)");

  const workload::Benchmark bench = workload::benchmark_from_string(a.str("benchmark", "CFD"));
  const std::string delivery = a.str("delivery", "ivr");
  if (delivery == "ivr" || delivery == "vrm") {
    scenario::DomainSpec dom;
    dom.name = "core";
    dom.power_frac = 1.0;
    dom.delivery = scenario::delivery_from_string(delivery);
    dom.benchmark = bench;
    spec.domains = {dom};
  } else if (delivery == "hybrid") {
    // FlexWatts-style split: the latency-critical core domain rides the
    // on-chip IVR, the uncore stays on the board VRM rail.
    scenario::DomainSpec core_dom, uncore_dom;
    core_dom.name = "core";
    core_dom.power_frac = 0.7;
    core_dom.delivery = scenario::Delivery::OnChipIvr;
    core_dom.benchmark = bench;
    uncore_dom.name = "uncore";
    uncore_dom.power_frac = 0.3;
    uncore_dom.delivery = scenario::Delivery::OffChipVrm;
    uncore_dom.benchmark = bench;
    spec.domains = {core_dom, uncore_dom};
  } else {
    throw UsageError("unknown --delivery '" + delivery + "' (ivr|vrm|hybrid)");
  }

  spec.f_nom_hz = a.num("f-nom", spec.f_nom_hz);
  spec.duration_s = a.num("duration", spec.duration_s);
  spec.dt_s = a.num("dt", spec.dt_s);
  spec.seed = static_cast<std::uint64_t>(a.integer("seed", 1));
  const int dist = a.integer("dist", 4);

  std::printf("scenario '%s': %zu states x %zu domains, %s IVR x%d, delivery %s\n\n",
              spec.name.c_str(), spec.states.size(), spec.domains.size(),
              core::topology_name(topo), dist, delivery.c_str());
  SweepReport report;
  const scenario::ScenarioReport res =
      scenario::evaluate_scenario(sys, topo, dist, spec, &report);
  if (res.has_ivr)
    std::printf("IVR design: %s, f_sw %.1f MHz, area %.3f mm^2\n",
                res.design.label.empty() ? core::topology_name(res.design.topology)
                                         : res.design.label.c_str(),
                res.design.f_sw_hz / 1e6, res.design.area_m2 * 1e6);
  TextTable t({"domain", "state", "delivery", "res (%)", "V", "f (GHz)", "I (A)", "eff (%)",
               "droop (mV)"});
  for (const scenario::StateEval& c : res.cells)
    t.add_row({c.domain, c.state, c.gated ? "gated" : scenario::delivery_name(c.delivery),
               TextTable::num(c.residency * 100, 3), TextTable::num(c.v_v, 3),
               TextTable::num(c.f_hz / 1e9, 3), TextTable::num(c.i_avg_a, 3),
               TextTable::num(c.efficiency * 100, 3),
               TextTable::num(c.droop_pp_v * 1e3, 3)});
  std::printf("%s", t.render().c_str());
  std::printf("\nresidency-weighted: eff %.2f %%, P_out %.2f W, P_in %.2f W, "
              "worst droop %.1f mV%s\n",
              res.weighted_efficiency * 100, res.p_out_avg_w, res.p_in_avg_w,
              res.worst_droop_pp_v * 1e3, res.complete ? "" : " (incomplete)");
  if (!report.skips.empty()) {
    std::printf("\n%zu of %zu cells quarantined:\n", report.skips.size(), report.n_evaluated);
    for (const Diagnostics& d : report.skips)
      std::printf("  - %s\n", d.to_string().c_str());
  }
  write_metrics_out(a);
  return 0;
}

int cmd_pds(const Args& a) {
  const core::SystemParams sys = system_from(a);
  const pdn::PdnParams pdn_params = pdn::PdnParams::gpuvolt_default();
  const double v_nom = a.num("vnom", 0.85);
  const double guard_off = a.num("guard-off", 0.110);
  const double guard_ivr = a.num("guard-ivr", 0.025);
  const int dist = a.integer("dist", 4);

  const core::DseResult ivr =
      core::optimize_topology(sys, core::IvrTopology::SwitchedCapacitor, dist);
  require(ivr.feasible, "no feasible IVR design for these constraints");
  // Quarantined evaluations: a failing composition prints its diagnostics
  // (code, site, candidate) instead of aborting with a bare what() string.
  const EvalOutcome<core::PdsBreakdown> off_out =
      core::try_evaluate_pds_offchip(sys, pdn_params, v_nom, guard_off);
  const EvalOutcome<core::PdsBreakdown> on_out =
      core::try_evaluate_pds_ivr(sys, pdn_params, ivr, v_nom, guard_ivr);
  if (!off_out.ok() || !on_out.ok()) {
    if (!off_out.ok())
      std::fprintf(stderr, "pds: %s\n", off_out.diagnostics().to_string().c_str());
    if (!on_out.ok())
      std::fprintf(stderr, "pds: %s\n", on_out.diagnostics().to_string().c_str());
    return 1;
  }
  const core::PdsBreakdown& off = off_out.value();
  const core::PdsBreakdown& on = on_out.value();

  TextTable t({"PDS", "guardband", "grid IR", "PDN IR", "IVR loss", "VRM loss", "total (W)",
               "eff (%)"});
  auto row = [&](const char* name, double guard, const core::PdsBreakdown& b) {
    t.add_row({name, TextTable::si(guard, "V"), TextTable::num(b.p_grid_ir_w, 3),
               TextTable::num(b.p_pdn_ir_w, 3), TextTable::num(b.p_ivr_loss_w, 3),
               TextTable::num(b.p_vrm_loss_w, 3), TextTable::num(b.p_total_w, 4),
               TextTable::num(b.efficiency * 100, 3)});
  };
  row("off-chip VRM", guard_off, off);
  row(("IVR x" + std::to_string(dist)).c_str(), guard_ivr, on);
  std::printf("%s", t.render().c_str());
  std::printf("improvement: %.1f points\n", (on.efficiency - off.efficiency) * 100.0);
  return 0;
}

int cmd_transient(const Args& a) {
  const std::string path = a.require_str("netlist");
  std::ifstream in(path);
  if (!in) throw InvalidParameter("cannot open netlist file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  const spice::Circuit ckt = spice::parse_netlist(text.str());

  spice::TranSpec spec;
  spec.tstop = a.num("tstop", 0.0);
  if (!(spec.tstop > 0.0)) throw UsageError("missing or non-positive --tstop");
  spec.dt = a.num("dt", 0.0);
  if (!(spec.dt > 0.0)) throw UsageError("missing or non-positive --dt");
  const std::string method = a.str("method", "trap");
  if (method == "trap") spec.method = spice::Integrator::Trapezoidal;
  else if (method == "be") spec.method = spice::Integrator::BackwardEuler;
  else throw UsageError("unknown --method '" + method + "' (trap|be)");
  spec.use_ic = a.integer("uic", 0) != 0;
  spec.record_every = a.integer("record-every", 1);
  spec.adaptive = a.integer("adaptive", 0) != 0;
  spec.dv_max_v = a.num("dv-max", spec.dv_max_v);
  spec.dt_max = a.num("dt-max", spec.dt_max);
  spec.lu_cache_capacity = a.integer("lu-cache", spec.lu_cache_capacity);
  const std::string kernel = a.str("kernel", "auto");
  if (kernel == "auto") spec.kernel = sparse::Kernel::Auto;
  else if (kernel == "dense") spec.kernel = sparse::Kernel::Dense;
  else if (kernel == "banded") spec.kernel = sparse::Kernel::Banded;
  else if (kernel == "sparse") spec.kernel = sparse::Kernel::Sparse;
  else throw UsageError("unknown --kernel '" + kernel + "' (auto|dense|banded|sparse)");
  const std::string record = a.str("record", "");
  for (std::size_t pos = 0; pos < record.size();) {
    const std::size_t comma = std::min(record.find(',', pos), record.size());
    if (comma > pos) spec.record_nodes.push_back(ckt.find_node(record.substr(pos, comma - pos)));
    pos = comma + 1;
  }

  if (a.str("encoding", "table") == "wave1") {
    // Raw wave1 frame stream on stdout (magic + HEADER/CHUNK/END), exactly
    // the bytes `ivory serve` would stream for this transient — pipe it to a
    // decoder or a file. The cost summary stays on stderr as usual.
    std::vector<std::string> names;
    std::vector<spice::NodeId> nodes = spec.record_nodes;
    if (nodes.empty())
      for (int n = 1; n < ckt.node_count(); ++n) nodes.push_back(n);
    for (const spice::NodeId n : nodes) names.push_back(ckt.node_name(n));
    serve::StreamEmitter em(
        [](std::string&& bytes) {
          return std::fwrite(bytes.data(), 1, bytes.size(), stdout) == bytes.size();
        },
        nullptr, 0.0, std::chrono::steady_clock::now());
    const int chunk = a.integer("chunk-bytes", 0);
    if (chunk > 0) em.set_chunk_bytes(static_cast<std::size_t>(chunk));
    serve::Wave1TransientStream ws(em, "null", std::move(names));
    spec.sample_sink = ws.sink();
    const spice::TranResult res = spice::transient(ckt, spec);
    ws.finish(res);
    std::fflush(stdout);
    std::fprintf(stderr, "ivory transient: streamed %llu rows in %llu chunks (wave1)\n",
                 static_cast<unsigned long long>(ws.rows()),
                 static_cast<unsigned long long>(em.chunks_emitted()));
    write_metrics_out(a);
    return 0;
  }

  const spice::TranResult res = spice::transient(ckt, spec);

  TextTable t({"node", "final (V)", "mean (V)", "min (V)", "max (V)"});
  for (std::size_t i = 0; i < res.nodes.size(); ++i) {
    const std::vector<double>& v = res.voltages[i];
    double lo = v.front(), hi = lo, sum = 0.0;
    for (double s : v) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
      sum += s;
    }
    t.add_row({ckt.node_name(res.nodes[i]), TextTable::num(v.back(), 5),
               TextTable::num(sum / static_cast<double>(v.size()), 5), TextTable::num(lo, 5),
               TextTable::num(hi, 5)});
  }
  std::printf("%s", t.render().c_str());

  // Simulator cost on stderr (like the batch/serve summaries) so validation
  // runs expose the hot-path behaviour without a debugger.
  const double per_1k = res.steps_taken > 0
                            ? 1e3 * static_cast<double>(res.lu_factorizations) /
                                  static_cast<double>(res.steps_taken)
                            : 0.0;
  std::fprintf(stderr,
               "ivory transient: %llu steps, %llu LU factorizations (%.2f per 1k steps), "
               "%llu cache hits, %llu evictions, max resident %llu (capacity %d), "
               "kernel %s, %llu symbolic analyses, factor nnz %llu\n",
               static_cast<unsigned long long>(res.steps_taken),
               static_cast<unsigned long long>(res.lu_factorizations), per_1k,
               static_cast<unsigned long long>(res.lu_cache_hits),
               static_cast<unsigned long long>(res.lu_cache_evictions),
               static_cast<unsigned long long>(res.max_resident_factorizations),
               spec.lu_cache_capacity, res.kernel.c_str(),
               static_cast<unsigned long long>(res.symbolic_analyses),
               static_cast<unsigned long long>(res.factor_nnz));
  write_metrics_out(a);
  return 0;
}

int cmd_batch(const Args& a) {
  const int threads = a.integer("threads", 0);
  if (threads > 0) par::set_global_threads(static_cast<unsigned>(threads));
  serve::ServiceOptions sopt;
  sopt.cache_capacity = static_cast<std::size_t>(a.integer("cache", 4096));
  sopt.cache_dir = a.str("cache-dir", "");
  if (a.has("store-max-bytes"))
    sopt.store_max_bytes = static_cast<std::uint64_t>(a.num("store-max-bytes", 0));
  serve::Service service(sopt);
  serve::BatchOptions bopt;
  bopt.repeat = a.integer("repeat", 1);
  bopt.wave = static_cast<std::size_t>(a.integer("wave", 0));
  bopt.queue_capacity = static_cast<std::size_t>(a.integer("queue", 1024));
  const serve::BatchSummary summary = serve::run_batch(std::cin, std::cout, service, bopt);
  // Counters live on stderr so response bytes on stdout stay replayable.
  std::fprintf(stderr, "%s\n", serve::summary_json(summary).c_str());
  write_metrics_out(a);
  return 0;
}

int cmd_metrics(const Args& a) {
  // With --socket, snapshot a running server's registry over the serve
  // protocol; without, render this process's own (freshly started, hence
  // empty) registry — still useful as a format self-check.
  const std::string socket = a.str("socket", "");
  json::Value snapshot;
  if (!socket.empty()) {
    serve::BlockingClient client(socket);
    client.send_line("{\"id\":0,\"op\":\"metrics\"}");
    const json::Value root = json::Value::parse(client.recv_line());
    const json::Value* ok = root.find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool())
      throw NumericalError("metrics: server returned an error envelope");
    const json::Value* result = root.find("result");
    require(result != nullptr, "metrics: response carries no result");
    snapshot = *result;
  } else {
    snapshot = metrics::registry().to_json();
  }
  const std::string format = a.str("format", "json");
  if (format == "prometheus")
    std::printf("%s", metrics::render_prometheus(snapshot).c_str());
  else if (format == "json")
    std::printf("%s\n", snapshot.write_canonical().c_str());
  else
    throw UsageError("unknown --format '" + format + "' (json|prometheus)");
  return 0;
}

/// Blocks SIGTERM/SIGINT in the calling thread (threads started afterwards
/// inherit the mask), then waits for one. Returns the signal number.
int wait_for_termination_signal() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);
  return sig;
}

void print_serve_stats(const serve::ServiceStats& s) {
  std::fprintf(stderr,
               "ivory serve: handled %llu requests (%llu evaluated, %llu errors), "
               "cache %llu/%llu hit/miss, %llu evictions",
               static_cast<unsigned long long>(s.n_requests),
               static_cast<unsigned long long>(s.n_evaluations),
               static_cast<unsigned long long>(s.n_errors),
               static_cast<unsigned long long>(s.cache.hits),
               static_cast<unsigned long long>(s.cache.misses),
               static_cast<unsigned long long>(s.cache.evictions));
  if (s.durable)
    std::fprintf(stderr, ", store %llu hits / %llu puts (%llu warm-loaded, %llu quarantined)",
                 static_cast<unsigned long long>(s.store.hits),
                 static_cast<unsigned long long>(s.store.puts),
                 static_cast<unsigned long long>(s.warm_loaded),
                 static_cast<unsigned long long>(s.store.quarantined));
  std::fprintf(stderr, "\n");
}

int cmd_serve(const Args& a) {
  const int threads = a.integer("threads", 0);
  if (threads > 0) par::set_global_threads(static_cast<unsigned>(threads));
  const std::string socket = a.require_str("socket");
  const int workers = a.integer("workers", 1);
  const bool worker_mode = a.integer("worker", 0) != 0;

  if (workers > 1 && !worker_mode) {
    // Supervised fleet: N worker processes behind one acceptor/mux.
    serve::SupervisorOptions o;
    o.socket_path = socket;
    o.workers = workers;
    for (const char* flag : {"threads", "cache", "queue", "wave", "cache-dir",
                             "store-max-bytes"})
      if (a.has(flag)) {
        o.worker_args.push_back(std::string("--") + flag);
        o.worker_args.push_back(a.str(flag, ""));
      }
    o.backoff_initial_ms = a.integer("backoff-ms", o.backoff_initial_ms);
    o.flap_limit = a.integer("flap-limit", o.flap_limit);
    o.drain_deadline_ms = a.integer("drain-ms", o.drain_deadline_ms);
    o.health_interval_ms = a.integer("health-ms", o.health_interval_ms);
    serve::Supervisor fleet(std::move(o));
    // Block the termination signals before the fleet's threads exist so
    // SIGTERM always lands in this sigwait, never kills a pump thread.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGINT);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    fleet.start();
    std::fprintf(stderr, "ivory serve: fleet of %d workers on %s (SIGTERM drains)\n",
                 workers, fleet.socket_path().c_str());
    int sig = 0;
    sigwait(&set, &sig);
    std::fprintf(stderr, "ivory serve: signal %d, draining fleet\n", sig);
    fleet.stop();
    const serve::FleetStats fs = fleet.stats();
    std::uint64_t restarts = 0, crashes = 0;
    for (const serve::WorkerStatus& w : fs.workers) {
      restarts += w.restarts;
      crashes += w.crashes;
    }
    std::fprintf(stderr,
                 "ivory serve: fleet handled %llu connections (%llu retryable errors, "
                 "%llu worker crashes, %llu restarts)\n",
                 static_cast<unsigned long long>(fs.connections),
                 static_cast<unsigned long long>(fs.retry_errors),
                 static_cast<unsigned long long>(crashes),
                 static_cast<unsigned long long>(restarts));
    return 0;
  }

  serve::ServerOptions o;
  o.socket_path = socket;
  o.service.cache_capacity = static_cast<std::size_t>(a.integer("cache", 4096));
  o.service.cache_dir = a.str("cache-dir", "");
  if (a.has("store-max-bytes"))
    o.service.store_max_bytes = static_cast<std::uint64_t>(a.num("store-max-bytes", 0));
  o.queue_capacity = static_cast<std::size_t>(a.integer("queue", 1024));
  o.wave = static_cast<std::size_t>(a.integer("wave", 0));
  serve::Server server(std::move(o));

  if (worker_mode) {
    // Fleet worker: die with the supervisor, drain gracefully on SIGTERM.
    ::prctl(PR_SET_PDEATHSIG, SIGTERM);
    if (::getppid() == 1) return 0;  // supervisor already gone
    server.start();
    std::fprintf(stderr, "ivory serve: worker %d on %s\n", ::getpid(),
                 server.socket_path().c_str());
    wait_for_termination_signal();
    server.stop();  // finishes in-flight requests before returning
    print_serve_stats(server.stats());
    return 0;
  }

  server.start();
  std::fprintf(stderr, "ivory serve: listening on %s (EOF on stdin stops the server)\n",
               server.socket_path().c_str());
  char buf[256];
  while (std::fgets(buf, sizeof buf, stdin) != nullptr) {
  }
  server.stop();
  print_serve_stats(server.stats());
  return 0;
}

int cmd_client(const Args& a) {
  // Minimal socket client for scripts and smoke tests: NDJSON requests on
  // stdin, one response line per request on stdout (strict ordering is the
  // transport contract). Exit 1 when the connection dies mid-stream.
  //
  // --stream json|wave1 adds the stream envelope fields to every request and
  // reassembles each frame stream back into the exact non-streaming response
  // line, so the output is byte-identical to --stream off against the same
  // server. --stream frames sends lines verbatim (the caller's JSON carries
  // its own stream fields) and prints a deterministic per-frame transcript —
  // the conformance surface the golden stream test diffs.
  const std::string mode = a.str("stream", "off");
  if (mode != "off" && mode != "json" && mode != "wave1" && mode != "frames")
    throw UsageError("unknown --stream '" + mode + "' (off|json|wave1|frames)");
  const int chunk_bytes = a.integer("chunk-bytes", 0);
  serve::BlockingClient client(a.require_str("socket"));
  const auto raw_read = [&client](char* out, std::size_t cap) {
    return client.recv_raw(out, cap);
  };
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    if (mode == "json" || mode == "wave1") {
      json::Value root = json::Value::parse(line);
      root.set("stream", json::Value(true));
      root.set("encoding", json::Value(mode));
      if (chunk_bytes > 0)
        root.set("chunk_bytes", json::Value(static_cast<std::uint64_t>(chunk_bytes)));
      client.send_line(root.write());
      const serve::StreamAssembler asm_ = serve::read_stream(raw_read);
      std::printf("%s\n", asm_.decoded().c_str());
      std::fflush(stdout);
      continue;
    }

    client.send_line(line);
    const serve::TransportDirective d = serve::classify_line(line);
    if (mode == "frames" && d.is_stream) {
      const serve::StreamAssembler asm_ =
          serve::read_stream(raw_read, [](const serve::Frame& f) {
            if (f.type == serve::FrameType::Chunk)
              std::printf("CHUNK bytes=%zu fnv=%016llx\n", f.payload.size(),
                          static_cast<unsigned long long>(
                              serve::frame_checksum(f.type, f.payload)));
            else
              std::printf("%s %s\n", serve::frame_type_name(f.type), f.payload.c_str());
          });
      std::printf("%s\n", asm_.decoded().c_str());
    } else {
      std::printf("%s\n", client.recv_line().c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "ivory — early-stage IVR design space exploration (DAC'17 reproduction)\n\n"
      "  ivory explore  [--vin V --vout V --power W --area mm2 --node N --cap K]\n"
      "  ivory pareto   [--density D --front-cap N --top-k N --simulate 0|1\n"
      "                  + explore flags]  multi-fidelity funnel: cheap-screen a\n"
      "                  dense grid, print the efficiency/area/ripple Pareto front\n"
      "  ivory sc       [--n N --m M --family F --cfly F --gtot S --fsw Hz --vin V\n"
      "                  --iload A --regulate V]\n"
      "  ivory buck     [--l H --fsw Hz --phases N --whs m --wls m --cout F\n"
      "                  --vin V --vout V --iload A --inductor smt|interposer|magnetic]\n"
      "  ivory topology [--n N --m M --family ladder|series-parallel]\n"
      "  ivory dynamic  [--benchmark B --dist N --duration s --dt s + explore flags]\n"
      "  ivory pds      [--guard-off V --guard-ivr V --dist N + explore flags]\n"
      "  ivory scenario [--preset P --topology sc|buck|ldo|dldo --delivery ivr|vrm|hybrid\n"
      "                  --benchmark B --dist N --duration s --dt s --seed N\n"
      "                  + explore flags]  residency-weighted power-state evaluation\n"
      "                  (presets: gpu-dvfs-step, active-idle, race-to-halt,\n"
      "                  server-diurnal)\n"
      "  ivory transient --netlist FILE --tstop s --dt s [--method trap|be --uic 1\n"
      "                  --record n1,n2 --record-every N --adaptive 1 --dv-max V\n"
      "                  --dt-max s --lu-cache N --kernel auto|dense|banded|sparse\n"
      "                  --encoding wave1 --chunk-bytes N]\n"
      "                  (cost counters on stderr; --encoding wave1 streams raw\n"
      "                  binary waveform frames on stdout)\n"
      "  ivory batch    [--repeat N --threads N --cache N --queue N --wave N\n"
      "                  --cache-dir PATH --store-max-bytes B]\n"
      "                  NDJSON requests on stdin -> NDJSON responses on stdout\n"
      "  ivory serve    --socket PATH [--workers N --threads N --cache N --queue N\n"
      "                  --wave N --cache-dir PATH --store-max-bytes B]\n"
      "                  same protocol over a Unix-domain socket; EOF on stdin stops\n"
      "                  --workers N>1 runs a supervised multi-process fleet\n"
      "                  (SIGTERM drains; tuning: --backoff-ms --flap-limit\n"
      "                  --drain-ms --health-ms); --cache-dir adds a durable\n"
      "                  content-addressed result store shared by all workers\n"
      "  ivory client   --socket PATH [--stream off|json|wave1|frames --chunk-bytes N]\n"
      "                  NDJSON on stdin -> response lines on stdout (for scripts);\n"
      "                  --stream json|wave1 negotiates framed streaming and decodes\n"
      "                  back to the identical lines, frames prints a transcript\n"
      "  ivory metrics  [--socket PATH --format json|prometheus]\n"
      "                  metrics-registry snapshot (of a running server with --socket)\n\n"
      "batch/transient/explore also take --metrics-out FILE to dump the process\n"
      "metrics registry + trace ring as canonical JSON after the run.\n\n"
      "Values accept SPICE suffixes: 4u, 15k, 80meg, 110m, ...\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  int (*handler)(const Args&) = nullptr;
  if (cmd == "explore") handler = cmd_explore;
  else if (cmd == "pareto") handler = cmd_pareto;
  else if (cmd == "sc") handler = cmd_sc;
  else if (cmd == "buck") handler = cmd_buck;
  else if (cmd == "topology") handler = cmd_topology;
  else if (cmd == "dynamic") handler = cmd_dynamic;
  else if (cmd == "pds") handler = cmd_pds;
  else if (cmd == "scenario") handler = cmd_scenario;
  else if (cmd == "transient") handler = cmd_transient;
  else if (cmd == "batch") handler = cmd_batch;
  else if (cmd == "serve") handler = cmd_serve;
  else if (cmd == "client") handler = cmd_client;
  else if (cmd == "metrics") handler = cmd_metrics;
  if (handler == nullptr) {
    std::fprintf(stderr, "ivory: unknown subcommand '%s'\n\n", cmd.c_str());
    usage();
    return 2;
  }
  try {
    const Args args(argc, argv, 2);
    return handler(args);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "ivory %s: %s\n\n", cmd.c_str(), e.what());
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ivory %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
