#!/usr/bin/env bash
# Golden stream transcript over the real `ivory` binary.
#
# Starts a single-process server, replays tests/golden/stream_smoke.ndjson
# through `ivory client --stream frames` (each streamed request prints its
# frame-by-frame transcript — HEADER/END payloads, CHUNK sizes + checksums —
# followed by the reassembled response line; plain lines pass through
# unframed), and byte-diffs the transcript against
# tests/golden/stream_smoke.expected.
#
# Usage: stream_smoke.sh [--update] /path/to/ivory
#
# --update rewrites the expected file from the current build instead of
# diffing (invoked by tools/update_golden.sh; review the diff like any other
# code change).
set -u

UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi
IVORY="${1:?usage: stream_smoke.sh [--update] /path/to/ivory}"

repo="$(cd "$(dirname "$0")/.." && pwd)"
golden="$repo/tests/golden"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/ivory-stream-smoke-XXXXXX")"
SOCK="$WORK/sock"
SERVE_PID=""

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

cleanup() {
  exec 3>&- 2>/dev/null || true
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -TERM "$SERVE_PID" 2>/dev/null
    wait "$SERVE_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# A single-mode server exits on stdin EOF, so hold its stdin open through a
# FIFO for the duration of the test.
mkfifo "$WORK/stdin.fifo"
exec 3<>"$WORK/stdin.fifo"
"$IVORY" serve --socket "$SOCK" --threads 2 <"$WORK/stdin.fifo" \
  2>"$WORK/serve.log" &
SERVE_PID=$!

for _ in $(seq 1 100); do
  if echo '{"op":"stats","id":0}' | "$IVORY" client --socket "$SOCK" \
      >/dev/null 2>&1; then
    break
  fi
  kill -0 "$SERVE_PID" 2>/dev/null \
    || fail "server died during startup: $(cat "$WORK/serve.log")"
  sleep 0.1
done

"$IVORY" client --socket "$SOCK" --stream frames \
  <"$golden/stream_smoke.ndjson" >"$WORK/actual" 2>"$WORK/client.log" \
  || fail "client exited non-zero: $(cat "$WORK/client.log")"

if [ "$UPDATE" = 1 ]; then
  cp "$WORK/actual" "$golden/stream_smoke.expected"
  lines=$(wc -l <"$golden/stream_smoke.expected")
  echo "stream_smoke: wrote $golden/stream_smoke.expected ($lines lines)"
  exit 0
fi

if ! cmp -s "$golden/stream_smoke.expected" "$WORK/actual"; then
  diff -u "$golden/stream_smoke.expected" "$WORK/actual" | head -40 >&2
  fail "stream transcript differs from tests/golden/stream_smoke.expected"
fi
echo "PASS: stream transcript matches golden ($(wc -l <"$WORK/actual") lines)"
