#!/bin/sh
# Regenerates the golden batch expectation from the current build.
#
#   tools/update_golden.sh [path/to/ivory]
#
# Run after an *intentional* model or formatting change, then review the
# golden diff like any other code change before committing it. The expected
# bytes are platform/toolchain-shaped (shortest-round-trip double
# formatting); CI compares against the binary it just built.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
ivory="${1:-$repo/build/tools/ivory}"
golden="$repo/tests/golden"

if [ ! -x "$ivory" ]; then
  echo "update_golden: no ivory binary at $ivory (build first or pass a path)" >&2
  exit 1
fi

"$ivory" batch --threads 2 < "$golden/batch_smoke.ndjson" \
  > "$golden/batch_smoke.expected" 2>/dev/null

lines=$(wc -l < "$golden/batch_smoke.expected")
echo "update_golden: wrote $golden/batch_smoke.expected ($lines responses)"

# The streamed-frame transcript golden (server + `client --stream frames`).
"$repo/tools/stream_smoke.sh" --update "$ivory"

echo "update_golden: review 'git diff tests/golden' before committing"
