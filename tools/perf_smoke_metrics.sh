#!/bin/sh
# Metrics-overhead smoke check.
#
#   tools/perf_smoke_metrics.sh BENCH_WITH_METRICS BENCH_NOMETRICS [max_pct]
#
# Runs the transient hotpath bench in --smoke mode with the observability
# layer compiled in (A) and compiled out via IVORY_NO_METRICS (B) — both
# built from the same unified source list so the define is the only delta —
# interleaved A/B over several rounds. Each side's score is the sum of
# *per-point* minima across rounds (row-wise min rejects scheduler noise on
# each measurement independently; a min of round totals would need one
# entirely quiet round). Fails when the instrumented build exceeds the
# stripped build by more than max_pct percent (default 2).
#
# The instrumentation contract being enforced: counter folds happen once per
# run at batch granularity, never inside per-step loops, so the overhead must
# be in the noise even on the tightest kernel in the tree.
set -eu

bench_on="$1"
bench_off="$2"
max_pct="${3:-2}"
rounds=5

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Per-point wall_s list, one per line, in the bench's deterministic
# scenario x capacity order (so line N is the same measurement every round).
walls() {
  grep -o '"wall_s": [0-9.e+-]*' "$1" | awk '{print $2}'
}

# Sum of row-wise minima across several walls files.
rowmin_sum() {
  awk '{ if (!(FNR in m) || $1 + 0 < m[FNR]) m[FNR] = $1 + 0 }
       END { s = 0; for (k in m) s += m[k]; printf "%.9e", s }' "$@"
}

i=0
while [ "$i" -lt "$rounds" ]; do
  "$bench_on" --smoke "$workdir/on.json" > /dev/null 2>&1
  "$bench_off" --smoke "$workdir/off.json" > /dev/null 2>&1
  walls "$workdir/on.json" > "$workdir/on.$i.walls"
  walls "$workdir/off.json" > "$workdir/off.$i.walls"
  i=$((i + 1))
done

best_on="$(rowmin_sum "$workdir"/on.*.walls)"
best_off="$(rowmin_sum "$workdir"/off.*.walls)"

awk -v on="$best_on" -v off="$best_off" -v max="$max_pct" 'BEGIN {
  pct = (on / off - 1.0) * 100.0
  printf "perf_smoke_metrics: metrics=%.3es nometrics=%.3es overhead=%+.2f%% (limit %s%%)\n",
         on, off, pct, max
  if (pct > max + 0) {
    print "perf_smoke_metrics: FAIL — instrumentation overhead above limit" > "/dev/stderr"
    exit 1
  }
  print "perf_smoke_metrics: OK"
}'
