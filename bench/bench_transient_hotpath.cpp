// Transient hot-path throughput benchmark.
//
// Times the switch-level transient engine on the two converters that define
// its steady-state workload — the Fig. 9 two-phase SC converter and the
// Fig. 8 buck power stage — in fixed-step and adaptive modes, at LU-cache
// capacity 1 (the old single-slot behaviour), the default LRU, and 0
// (refactorize every step). Reports steps/s and LU factorizations per 1k
// steps, self-checks that every capacity produces byte-identical waveforms,
// and writes the measurements to BENCH_transient.json so the perf trajectory
// is tracked across PRs.
//
// Also sweeps N x N on-chip power grids (8x8 up to 100x100, ~10k MNA
// unknowns) across the dense, banded, and sparse factorization kernels,
// cross-checks the kernels agree to 1e-9 relative tolerance, and records the
// dense -> sparse crossover (steps/s ratio at the largest grid dense can
// still handle) into the same JSON.
//
// Usage: bench_transient_hotpath [--smoke] [output.json]
//   --smoke  tiny sizes, min of two reps (used by the perf-smoke ctest label)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/ivory.hpp"
#include "pdn/pdn.hpp"

using namespace ivory;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool identical(const spice::TranResult& a, const spice::TranResult& b) {
  if (a.time.size() != b.time.size() || a.voltages.size() != b.voltages.size()) return false;
  if (!a.time.empty() &&
      std::memcmp(a.time.data(), b.time.data(), a.time.size() * sizeof(double)) != 0)
    return false;
  for (std::size_t i = 0; i < a.voltages.size(); ++i) {
    if (a.voltages[i].size() != b.voltages[i].size()) return false;
    if (!a.voltages[i].empty() &&
        std::memcmp(a.voltages[i].data(), b.voltages[i].data(),
                    a.voltages[i].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

// Fig. 9's converter: 2:1 ladder SC, 100 nF fly/out, 20 MHz.
core::ScDesign sc_converter() {
  core::ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 2;
  d.m = 1;
  d.c_fly_f = 100e-9;
  d.c_out_f = 100e-9;
  d.g_tot_s = 2000.0;
  d.f_sw_hz = 20e6;
  return d;
}

void build_sc(spice::Circuit& ckt, spice::NodeId* vout) {
  const core::ScDesign d = sc_converter();
  const core::ScTopology topo = core::make_topology(d.n, d.m, d.family);
  const core::ChargeVectors cv = core::charge_vectors(topo);
  const core::ScNetlistResult nodes =
      core::build_sc_netlist(ckt, topo, cv, 3.3, d.c_fly_f, d.g_tot_s, d.f_sw_hz, d.c_out_f);
  ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(0.25));
  *vout = nodes.vout;
}

// The same two-phase SC stage fed from the GPUVolt PDN ladder instead of an
// ideal source: board/package/C4 stages, on-die grid, and their decaps push
// the MNA system from ~7 to ~20 unknowns — the regime where factoring
// (O(n^3)) visibly outweighs a cached solve (O(n^2)).
void build_sc_pdn(spice::Circuit& ckt, spice::NodeId* vout) {
  const pdn::PdnParams pp = pdn::PdnParams::gpuvolt_default();
  const pdn::PdnNodes pn = pdn::build_pdn_netlist(ckt, pp, 3.3);
  const spice::NodeId fly = ckt.node("fly");
  const spice::NodeId out = ckt.node("out");
  const spice::PhaseClock clk(20e6, 2, 0.48);
  ckt.add_switch("s1", pn.die, fly, 0.01, 1e8, clk.control(0), clk.edge_fn(0));
  ckt.add_switch("s2", fly, out, 0.01, 1e8, clk.control(1), clk.edge_fn(1));
  ckt.add_capacitor_ic("cfly", fly, spice::kGround, 100e-9, 1.65);
  ckt.add_capacitor_ic("cout", out, spice::kGround, 100e-9, 1.65);
  ckt.add_resistor("rl", out, spice::kGround, 3.3);
  *vout = out;
}

// Fig. 8's power stage, folded to the single-phase equivalent: complementary
// high/low switches into L + DCR + output cap, DC load.
void build_buck(spice::Circuit& ckt, spice::NodeId* vout) {
  const double f_sw = 100e6, duty = 0.55, i_load = 1.0;
  const spice::NodeId vin = ckt.node("vin");
  const spice::NodeId sw = ckt.node("sw");
  const spice::NodeId lx = ckt.node("lx");
  const spice::NodeId out = ckt.node("out");
  ckt.add_vsource("v1", vin, spice::kGround, spice::Waveform::dc(1.8));
  const spice::PhaseClock clk(f_sw, 1, duty);
  ckt.add_switch("s_hs", vin, sw, 5e-3, 1e8, clk.control(0), clk.edge_fn(0));
  ckt.add_switch("s_ls", sw, spice::kGround, 5e-3, 1e8,
                 [clk](double t) { return !clk.active(0, t); }, clk.edge_fn(0));
  ckt.add_inductor_ic("l1", sw, lx, 4e-9, i_load);
  ckt.add_resistor("r_dcr", lx, out, 1e-3);
  ckt.add_capacitor_ic("cout", out, spice::kGround, 150e-9, 1.0);
  ckt.add_isource("iload", out, spice::kGround, spice::Waveform::dc(i_load));
  *vout = out;
}

struct Scenario {
  std::string name;
  std::function<void(spice::Circuit&, spice::NodeId*)> build;
  double tstop = 0.0;
  double dt = 0.0;
  bool adaptive = false;
};

struct Point {
  int capacity = 0;
  double wall_s = 0.0;
  spice::TranResult res;
};

struct GridPoint {
  std::string kernel;       ///< Requested kernel name.
  std::string selected;     ///< Kernel actually used (differs only for auto).
  double wall_s = 0.0;
  double steps_per_s = 0.0;
  std::size_t steps = 0;
  std::size_t factor_nnz = 0;
  double max_rel_err = 0.0;  ///< vs the first kernel run at this size.
};

struct GridRow {
  int nx = 0;
  std::size_t n_mna = 0;
  std::vector<GridPoint> points;
};

// Largest relative waveform difference between two same-spec runs.
double max_rel_diff(const spice::TranResult& a, const spice::TranResult& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.voltages.size(); ++i)
    for (std::size_t k = 0; k < a.voltages[i].size(); ++k) {
      const double x = a.voltages[i][k], y = b.voltages[i][k];
      const double denom = std::max({std::fabs(x), std::fabs(y), 1e-12});
      worst = std::max(worst, std::fabs(x - y) / denom);
    }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_transient.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out_path = argv[i];
  }
  // Smoke still takes min-of-2 per point: the first rep absorbs one-time
  // process warmup (allocator, page faults, registry/tracer init) that would
  // otherwise dominate millisecond-scale points and poison A/B comparisons.
  const int reps = smoke ? 2 : 3;
  // SC: 100 steps/cycle at 20 MHz — the regime the cache targets: coarse
  // enough that edge-triggered refactorization is a real share of the work
  // (at very fine resolution factoring amortizes away regardless). Buck: 800
  // steps/cycle at 100 MHz. Smoke shrinks the horizon ~20x, keeping enough
  // cycles for the cache to reach steady state.
  const double sc_tstop = smoke ? 2e-6 : 40e-6;
  const double sc_dt = 1.0 / (100.0 * 20e6);
  const double buck_tstop = smoke ? 20e-9 : 400e-9;
  const double buck_dt = 1.0 / (800.0 * 100e6);

  const std::vector<Scenario> scenarios = {
      {"sc2_fixed", build_sc, sc_tstop, sc_dt, false},
      {"sc2_adaptive", build_sc, sc_tstop, sc_dt, true},
      {"sc2_pdn_fixed", build_sc_pdn, sc_tstop, sc_dt, false},
      {"buck_fixed", build_buck, buck_tstop, buck_dt, false},
      {"buck_adaptive", build_buck, buck_tstop, buck_dt, true},
  };
  const int kDefaultCapacity = spice::TranSpec{}.lu_cache_capacity;
  const std::vector<int> capacities = {0, 1, kDefaultCapacity};

  std::printf("=== Transient hot path: keyed LU cache throughput%s ===\n\n",
              smoke ? " (smoke)" : "");

  bool all_identical = true;
  double sc_fixed_factor_ratio = 0.0, sc_fixed_speedup = 0.0, sc_fixed_speedup_vs_off = 0.0;
  double sc_pdn_speedup = 0.0;
  std::vector<std::pair<Scenario, std::vector<Point>>> all;

  for (const Scenario& s : scenarios) {
    spice::Circuit ckt;
    spice::NodeId vout = spice::kGround;
    s.build(ckt, &vout);

    std::vector<Point> points;
    for (int cap : capacities) {
      spice::TranSpec spec;
      spec.tstop = s.tstop;
      spec.dt = s.dt;
      spec.method = spice::Integrator::BackwardEuler;
      spec.use_ic = true;
      spec.record_nodes = {vout};
      spec.adaptive = s.adaptive;
      spec.lu_cache_capacity = cap;

      Point p;
      p.capacity = cap;
      p.wall_s = 1e300;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        spice::TranResult res = spice::transient(ckt, spec);
        p.wall_s = std::min(p.wall_s, seconds_since(t0));
        p.res = std::move(res);
      }
      points.push_back(std::move(p));
    }

    // Byte-identity self-check: every capacity must reproduce the same
    // waveform bit for bit — a cache hit replays the exact factorization the
    // same matrix would produce, so any difference is a bug.
    for (std::size_t i = 1; i < points.size(); ++i)
      if (!identical(points[0].res, points[i].res)) {
        std::printf("ERROR: %s waveform differs between lu_cache_capacity=%d and %d\n",
                    s.name.c_str(), points[0].capacity, points[i].capacity);
        all_identical = false;
      }

    TextTable table({"capacity", "steps", "wall", "steps/s", "LU factors", "per 1k steps",
                     "hits", "evictions", "resident"});
    for (const Point& p : points) {
      const double steps = static_cast<double>(p.res.steps_taken);
      table.add_row({std::to_string(p.capacity), std::to_string(p.res.steps_taken),
                     TextTable::si(p.wall_s, "s"), TextTable::si(steps / p.wall_s, ""),
                     std::to_string(p.res.lu_factorizations),
                     TextTable::num(1e3 * static_cast<double>(p.res.lu_factorizations) / steps, 2),
                     std::to_string(p.res.lu_cache_hits),
                     std::to_string(p.res.lu_cache_evictions),
                     std::to_string(p.res.max_resident_factorizations)});
    }
    std::printf("--- %s (tstop %.3g s, dt %.3g s%s) ---\n%s\n", s.name.c_str(), s.tstop, s.dt,
                s.adaptive ? ", adaptive" : "", table.render().c_str());

    const Point& cap1 = points[1];
    const Point& capN = points[2];
    if (s.name == "sc2_fixed") {
      sc_fixed_factor_ratio = static_cast<double>(cap1.res.lu_factorizations) /
                              static_cast<double>(std::max<std::size_t>(capN.res.lu_factorizations, 1));
      sc_fixed_speedup = cap1.wall_s / capN.wall_s;
      sc_fixed_speedup_vs_off = points[0].wall_s / capN.wall_s;
    }
    if (s.name == "sc2_pdn_fixed") sc_pdn_speedup = cap1.wall_s / capN.wall_s;
    all.emplace_back(s, std::move(points));
  }

  // --- Grid-size sweep: dense vs banded vs sparse kernels on N x N on-chip
  // power grids. Dense is capped at the largest size where an O(n^3) factor
  // still completes in benchmark time; the sparse kernels run the full
  // range, demonstrating the asymptotic crossover.
  const std::vector<int> grid_sizes = smoke ? std::vector<int>{8, 12}
                                            : std::vector<int>{8, 16, 32, 48, 64, 100};
  const int dense_cap_nx = smoke ? 12 : 48;
  std::vector<GridRow> grid_rows;
  bool grid_agree = true;
  double crossover_speedup = 0.0;
  int crossover_nx = 0;

  std::printf("=== Grid-size sweep: dense vs banded vs sparse ===\n\n");
  for (const int nx : grid_sizes) {
    pdn::GridParams gp;
    gp.nx = gp.ny = nx;
    spice::Circuit ckt;
    const pdn::GridNodes nodes = pdn::build_grid_netlist(ckt, gp);

    GridRow row;
    row.nx = nx;
    row.n_mna = static_cast<std::size_t>(ckt.mna_size());

    std::vector<std::pair<std::string, sparse::Kernel>> kernels = {
        {"auto", sparse::Kernel::Auto},
        {"banded", sparse::Kernel::Banded},
        {"sparse", sparse::Kernel::Sparse}};
    if (nx <= dense_cap_nx)
      kernels.insert(kernels.begin() + 1, {"dense", sparse::Kernel::Dense});

    std::vector<spice::TranResult> results;
    results.reserve(kernels.size());
    double dense_sps = 0.0, best_sparse_sps = 0.0;
    for (const auto& [kname, kreq] : kernels) {
      spice::TranSpec spec;
      spec.tstop = 10e-9;
      spec.dt = 0.1e-9;
      spec.method = spice::Integrator::BackwardEuler;
      spec.record_nodes = {nodes.center};
      spec.kernel = kreq;

      GridPoint p;
      p.kernel = kname;
      p.wall_s = 1e300;
      spice::TranResult res;
      for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        res = spice::transient(ckt, spec);
        p.wall_s = std::min(p.wall_s, seconds_since(t0));
      }
      p.selected = res.kernel;
      p.steps = res.steps_taken;
      p.steps_per_s = static_cast<double>(res.steps_taken) / p.wall_s;
      p.factor_nnz = res.factor_nnz;
      if (!results.empty()) {
        p.max_rel_err = max_rel_diff(results.front(), res);
        if (p.max_rel_err > 1e-9) {
          std::printf("ERROR: grid %dx%d kernel %s deviates from %s by %.3e (> 1e-9)\n", nx,
                      nx, kname.c_str(), results.front().kernel.c_str(), p.max_rel_err);
          grid_agree = false;
        }
      }
      if (kname == "dense") dense_sps = p.steps_per_s;
      if (kname == "banded" || kname == "sparse")
        best_sparse_sps = std::max(best_sparse_sps, p.steps_per_s);
      results.push_back(std::move(res));
      row.points.push_back(std::move(p));
    }
    if (dense_sps > 0.0 && best_sparse_sps > 0.0) {
      // Track the crossover at the largest mutually-feasible size.
      crossover_nx = nx;
      crossover_speedup = best_sparse_sps / dense_sps;
    }

    TextTable table({"kernel", "selected", "steps", "wall", "steps/s", "factor nnz",
                     "max rel err"});
    for (const GridPoint& p : row.points)
      table.add_row({p.kernel, p.selected, std::to_string(p.steps),
                     TextTable::si(p.wall_s, "s"), TextTable::si(p.steps_per_s, ""),
                     std::to_string(p.factor_nnz), TextTable::num(p.max_rel_err, 3)});
    std::printf("--- grid %dx%d (%zu MNA unknowns) ---\n%s\n", nx, nx, row.n_mna,
                table.render().c_str());
    grid_rows.push_back(std::move(row));
  }
  if (crossover_nx > 0)
    std::printf("grid crossover: at %dx%d the best sparse kernel sustains %.1fx the dense "
                "steps/s\n",
                crossover_nx, crossover_nx, crossover_speedup);

  std::printf("sc2_fixed: default capacity does %.1fx fewer factorizations than capacity 1 "
              "(wall-clock speedup %.2fx vs capacity 1, %.2fx vs no cache)\n",
              sc_fixed_factor_ratio, sc_fixed_speedup, sc_fixed_speedup_vs_off);
  std::printf("sc2_pdn_fixed: wall-clock speedup %.2fx vs capacity 1 (the ~20-unknown MNA "
              "system, where factoring outweighs a cached solve)\n",
              sc_pdn_speedup);
  if (!all_identical)
    std::printf("ERROR: waveforms are NOT byte-identical across cache capacities!\n");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("ERROR: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"transient_hotpath\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"byte_identical\": %s,\n", all_identical ? "true" : "false");
  std::fprintf(f, "  \"sc2_fixed_factorization_ratio_cap1_vs_default\": %.3f,\n",
               sc_fixed_factor_ratio);
  std::fprintf(f, "  \"sc2_fixed_speedup_default_vs_cap1\": %.3f,\n", sc_fixed_speedup);
  std::fprintf(f, "  \"sc2_fixed_speedup_default_vs_nocache\": %.3f,\n", sc_fixed_speedup_vs_off);
  std::fprintf(f, "  \"sc2_pdn_speedup_default_vs_cap1\": %.3f,\n", sc_pdn_speedup);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t si = 0; si < all.size(); ++si) {
    const Scenario& s = all[si].first;
    const std::vector<Point>& points = all[si].second;
    std::fprintf(f, "    {\"name\": \"%s\", \"adaptive\": %s, \"points\": [\n", s.name.c_str(),
                 s.adaptive ? "true" : "false");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      const double steps = static_cast<double>(p.res.steps_taken);
      std::fprintf(f,
                   "      {\"capacity\": %d, \"steps\": %zu, \"wall_s\": %.6e, "
                   "\"steps_per_s\": %.6e, \"lu_factorizations\": %zu, "
                   "\"factorizations_per_1k_steps\": %.3f, \"cache_hits\": %zu, "
                   "\"cache_evictions\": %zu, \"max_resident\": %zu}%s\n",
                   p.capacity, p.res.steps_taken, p.wall_s, steps / p.wall_s,
                   p.res.lu_factorizations,
                   1e3 * static_cast<double>(p.res.lu_factorizations) / steps,
                   p.res.lu_cache_hits, p.res.lu_cache_evictions,
                   p.res.max_resident_factorizations, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", si + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"grid_kernels_agree_1e-9\": %s,\n", grid_agree ? "true" : "false");
  std::fprintf(f, "  \"grid_crossover_nx\": %d,\n", crossover_nx);
  std::fprintf(f, "  \"grid_crossover_sparse_vs_dense_steps_per_s\": %.3f,\n",
               crossover_speedup);
  std::fprintf(f, "  \"grid\": [\n");
  for (std::size_t gi = 0; gi < grid_rows.size(); ++gi) {
    const GridRow& row = grid_rows[gi];
    std::fprintf(f, "    {\"nx\": %d, \"n_mna\": %zu, \"points\": [\n", row.nx, row.n_mna);
    for (std::size_t i = 0; i < row.points.size(); ++i) {
      const GridPoint& p = row.points[i];
      std::fprintf(f,
                   "      {\"kernel\": \"%s\", \"selected\": \"%s\", \"steps\": %zu, "
                   "\"wall_s\": %.6e, \"steps_per_s\": %.6e, \"factor_nnz\": %zu, "
                   "\"max_rel_err\": %.3e}%s\n",
                   p.kernel.c_str(), p.selected.c_str(), p.steps, p.wall_s, p.steps_per_s,
                   p.factor_nnz, p.max_rel_err, i + 1 < row.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", gi + 1 < grid_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("Wrote %s\n", out_path.c_str());
  return all_identical && grid_agree ? 0 : 1;
}
