// Google-benchmark microbenchmarks of Ivory's computational kernels: the
// charge-multiplier solver, static analyses, the cycle-by-cycle dynamic
// model, one MNA transient step stream, and the FFT.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/fft.hpp"
#include "core/ivory.hpp"

using namespace ivory;

namespace {

void BM_ChargeVectors_SeriesParallel5(benchmark::State& state) {
  const core::ScTopology topo = core::series_parallel(5);
  for (auto _ : state) benchmark::DoNotOptimize(core::charge_vectors(topo));
}
BENCHMARK(BM_ChargeVectors_SeriesParallel5);

void BM_ChargeVectors_Ladder6to5(benchmark::State& state) {
  const core::ScTopology topo = core::ladder(6, 5);
  for (auto _ : state) benchmark::DoNotOptimize(core::charge_vectors(topo));
}
BENCHMARK(BM_ChargeVectors_Ladder6to5);

void BM_AnalyzeSc(benchmark::State& state) {
  core::ScDesign d;
  d.n = 3;
  d.m = 1;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.c_fly_f = 4e-6;
  d.c_out_f = 1e-6;
  d.g_tot_s = 15000.0;
  d.f_sw_hz = 80e6;
  d.n_interleave = 16;
  for (auto _ : state) benchmark::DoNotOptimize(core::analyze_sc(d, 3.3, 20.0));
}
BENCHMARK(BM_AnalyzeSc);

void BM_AnalyzeBuck(benchmark::State& state) {
  core::BuckDesign d;
  d.inductor = tech::InductorKind::IntegratedInterposer;
  d.l_per_phase_h = 5e-9;
  d.f_sw_hz = 100e6;
  d.n_phases = 4;
  d.w_high_m = 0.08;
  d.w_low_m = 0.10;
  d.c_out_f = 1e-6;
  for (auto _ : state) benchmark::DoNotOptimize(core::analyze_buck(d, 3.3, 1.0, 10.0));
}
BENCHMARK(BM_AnalyzeBuck);

void BM_ScCycleModel_PerSample(benchmark::State& state) {
  core::ScDesign d;
  d.n = 3;
  d.m = 1;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.c_fly_f = 4e-6;
  d.c_out_f = 1e-6;
  d.g_tot_s = 15000.0;
  d.f_sw_hz = 80e6;
  d.n_interleave = 8;
  const std::vector<double> load(10000, 10.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::sc_cycle_response(d, 3.3, 1.0, load, 2e-9));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_ScCycleModel_PerSample);

void BM_SpiceTransient_RlcSteps(benchmark::State& state) {
  for (auto _ : state) {
    spice::Circuit c;
    const spice::NodeId in = c.node("in");
    const spice::NodeId a = c.node("a");
    const spice::NodeId out = c.node("out");
    c.add_vsource("v", in, spice::kGround, spice::Waveform::sine(0.0, 1.0, 1e6));
    c.add_resistor("r", in, a, 5.0);
    c.add_inductor("l", a, out, 1e-6);
    c.add_capacitor("cc", out, spice::kGround, 1e-9);
    spice::TranSpec spec;
    spec.tstop = 10e-6;
    spec.dt = 1e-9;
    spec.record_nodes = {out};
    benchmark::DoNotOptimize(spice::transient(c, spec));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SpiceTransient_RlcSteps);

void BM_Fft64k(benchmark::State& state) {
  std::vector<double> sig(65536);
  for (std::size_t i = 0; i < sig.size(); ++i) sig[i] = std::sin(0.01 * static_cast<double>(i));
  for (auto _ : state) benchmark::DoNotOptimize(amplitude_spectrum(sig, 1e9));
}
BENCHMARK(BM_Fft64k);

// A/B of the memoized per-stage twiddle tables: `TwiddleCache` serves every
// stage from the size-indexed table (built once, on the first transform of
// each size); `TwiddleRecompute` rebuilds the `w *= wlen` chains on every
// call, which is what fft_radix2 used to do unconditionally.
void BM_FftRadix2_64k_TwiddleCache(benchmark::State& state) {
  std::vector<std::complex<double>> base(65536);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = std::sin(0.01 * static_cast<double>(i));
  const bool prev = fft_use_twiddle_cache(true);
  for (auto _ : state) {
    std::vector<std::complex<double>> data = base;
    fft_radix2(data);
    benchmark::DoNotOptimize(data.data());
  }
  fft_use_twiddle_cache(prev);
}
BENCHMARK(BM_FftRadix2_64k_TwiddleCache);

void BM_FftRadix2_64k_TwiddleRecompute(benchmark::State& state) {
  std::vector<std::complex<double>> base(65536);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = std::sin(0.01 * static_cast<double>(i));
  const bool prev = fft_use_twiddle_cache(false);
  for (auto _ : state) {
    std::vector<std::complex<double>> data = base;
    fft_radix2(data);
    benchmark::DoNotOptimize(data.data());
  }
  fft_use_twiddle_cache(prev);
}
BENCHMARK(BM_FftRadix2_64k_TwiddleRecompute);

void BM_PdnImpedanceSweep(benchmark::State& state) {
  const pdn::PdnParams p = pdn::PdnParams::gpuvolt_default();
  for (auto _ : state) benchmark::DoNotOptimize(pdn::find_impedance_peak(p, 1e3, 1e10, 200));
}
BENCHMARK(BM_PdnImpedanceSweep);

void BM_OptimizeScTopology(benchmark::State& state) {
  const core::SystemParams sys;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::optimize_topology(sys, core::IvrTopology::SwitchedCapacitor, 1));
}
BENCHMARK(BM_OptimizeScTopology);

}  // namespace

BENCHMARK_MAIN();
