// Reproduces Fig. 6: the regulation effect of an SC converter at high
// frequency, compared against a bare decoupling capacitor of the same value.
//
// A synthetic noise current with tones at 1 MHz, 5 MHz and 100 MHz drives
// (a) a 2 MHz-switching SC converter with 1 nF of fly capacitance
// (simulated switch-level in ivory_spice) and (b) a bare 1 nF capacitor.
// Above the switching frequency the two FFT spectra must coincide — the
// converter has no regulation authority there (eqs. 3-5) — while below it
// the converter suppresses the noise. The analytical transfer function of
// the dynamic model is printed alongside.
#include <cmath>
#include <cstdio>

#include "common/fft.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/ivory.hpp"

using namespace ivory;

int main() {
  std::printf("=== Fig. 6: IVR regulation vs a decoupling capacitor (FFT) ===\n");
  std::printf("2 MHz 2:1 SC with 1 nF fly cap vs bare 1 nF cap; tones at 1/5/100 MHz.\n\n");

  const double f_sw = 2e6;
  const double c_fly = 1e-9;
  const double dt = 1e-9;
  const int n_samples = 1 << 16;  // 65.5 us window.
  const double i_dc = 0.0;  // Pure noise: a DC load would ramp the bare-cap arm.

  // Tones are injected one at a time: the converter's switching action
  // spreads each response into f0 +/- k*f_sw sidebands, and with all three
  // tones at once the 1 MHz tone's second sideband lands exactly on 5 MHz.
  auto run = [&](bool converter, double f_tone) {
    const spice::Waveform noise = spice::Waveform::custom([=](double t) {
      return i_dc + 0.01 * std::sin(2.0 * pi * f_tone * t);
    });
    spice::Circuit ckt;
    spice::NodeId vout;
    if (converter) {
      const core::ScTopology topo = core::make_topology(2, 1);
      const core::ChargeVectors cv = core::charge_vectors(topo);
      const core::ScNetlistResult nodes =
          core::build_sc_netlist(ckt, topo, cv, 2.0, c_fly, 10.0, f_sw, /*c_out=*/0.0,
                                 /*duty=*/0.5);  // No dead time: the fly cap
                                                 // must face the load at every
                                                 // instant (no output decap).
      vout = nodes.vout;
    } else {
      vout = ckt.node("vout");
      // Bare capacitor biased to the same operating point.
      ckt.add_capacitor_ic("c", vout, spice::kGround, c_fly, 1.0);
      // A very weak keeper pins the DC level without touching the MHz-range
      // response (1 Mohm >> the capacitor impedance at every tone).
      const spice::NodeId ref = ckt.node("ref");
      ckt.add_vsource("vref", ref, spice::kGround, spice::Waveform::dc(1.0));
      ckt.add_resistor("rkeep", ref, vout, 1e6);
    }
    ckt.add_isource("inoise", vout, spice::kGround, noise);
    spice::TranSpec spec;
    spec.tstop = n_samples * dt;
    spec.dt = dt;
    spec.use_ic = true;
    spec.method = spice::Integrator::BackwardEuler;
    spec.record_nodes = {vout};
    const spice::TranResult res = spice::transient(ckt, spec);
    std::vector<double> v = res.at(vout);
    v.resize(static_cast<std::size_t>(n_samples));
    return amplitude_spectrum(v, 1.0 / dt);
  };

  // The switched network chops part of a tone's stored-charge response into
  // f0 +/- k*f_sw sidebands, so the fair comparison is the RMS noise in a
  // band around each tone rather than the single FFT bin.
  auto band_rms = [&](const std::vector<SpectrumPoint>& spec, double f0) {
    const double half_band = 1.6 * f_sw;
    double acc = 0.0;
    for (const SpectrumPoint& pt : spec) {
      if (pt.frequency_hz < 1e5) continue;  // Exclude the DC/keeper bin.
      if (std::fabs(pt.frequency_hz - f0) <= half_band) acc += pt.amplitude * pt.amplitude;
    }
    return std::sqrt(acc / 2.0);
  };

  core::NoiseTransfer nt;
  nt.f_sw_hz = f_sw;
  // For a dead-time-free 2:1 converter the full fly capacitance faces the
  // output incrementally in BOTH phases (across it in one, to the stiff
  // input in the other).
  nt.c_hf_f = c_fly;
  nt.r_out_ohm = 1.0 / (4.0 * f_sw * c_fly);
  nt.ctrl_gain = 10.0;

  TextTable table({"tone", "SC band rms (mV)", "cap band rms (mV)", "SC/cap ratio",
                   "model |H|/|F_L|"});
  for (double f0 : {1e6, 5e6, 100e6}) {
    const double a_conv = band_rms(run(true, f0), f0) * 1e3;
    const double a_cap = band_rms(run(false, f0), f0) * 1e3;
    const double model = std::abs(nt.rejection(f0)) / std::abs(nt.f_load(f0));
    table.add_row({TextTable::si(f0, "Hz"), TextTable::num(a_conv, 3), TextTable::num(a_cap, 3),
                   TextTable::num(a_conv / a_cap, 3), TextTable::num(model, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: ratio ~1 at tones >= f_sw — the converter decouples exactly\n"
              "like its fly capacitance there (paper eq. 5). Below f_sw the passive ratio\n"
              "already dips (input re-referencing); the model column shows the additional\n"
              "suppression a closed feedback loop contributes (captured by the\n"
              "cycle-by-cycle model, not by this open-loop netlist).\n");
  return 0;
}
