#include "support/refdata.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ivory::bench {

namespace {

// Small deterministic waviness so the regenerated curves carry
// measurement-like texture without hiding the underlying shape.
double wiggle(double x, double scale) { return scale * std::sin(37.0 * x + 1.3); }

// SC efficiency vs regulated output: near-linear SSL region below the peak
// (eta ~ k * vout / videal - c0, the offset being the fixed controller/bias
// overhead every silicon part shows), then the non-functional cliff just
// under the ideal ratio.
std::vector<CurvePoint> sc_curve(double videal, double k, double v_lo, double v_peak,
                                 int n_points, double c0 = 0.03) {
  std::vector<CurvePoint> out;
  for (int i = 0; i < n_points; ++i) {
    const double v = v_lo + (v_peak - v_lo) * i / (n_points - 1);
    out.push_back({v, k * v / videal - c0 + wiggle(v, 0.004)});
  }
  // Cliff: two rapidly collapsing points past the peak (the converter can no
  // longer sustain regulation; measurements show leakage-driven collapse).
  out.push_back({v_peak + 0.02, k * v_peak / videal * 0.80});
  out.push_back({v_peak + 0.04, k * v_peak / videal * 0.45});
  return out;
}

}  // namespace

std::vector<CurvePoint> measured_sc_32nm_3to2() {
  // 1.8 V rail, 3:2 ratio: ideal output 1.2 V, peak near 1.13 V.
  return sc_curve(1.2, 0.93, 0.78, 1.10, 12, 0.02);
}

std::vector<CurvePoint> measured_sc_32nm_2to1() {
  // 1.8 V rail, 2:1 ratio: ideal output 0.9 V, peak near 0.84 V.
  return sc_curve(0.9, 0.93, 0.58, 0.82, 12, 0.02);
}

std::vector<CurvePoint> measured_buck_45nm(double i_load_a) {
  ivory::require(i_load_a > 0.0, "measured_buck_45nm: current must be positive");
  // Efficiency dome vs output voltage at Vin = 1.8 V: rises toward the
  // high-duty end and flattens (fixed switching losses amortize over more
  // output power), peaking near 1.15 V. Peak efficiency shifts mildly with
  // load (conduction vs switching balance).
  // Peak efficiency improves with load as the fixed switching losses
  // amortize; the dome also flattens (less curvature at heavier load).
  const double eta_peak = 0.70 + 0.08 * (1.0 - std::exp(-(i_load_a - 1.0) / 1.8));
  const double dome_k = 0.12 / std::sqrt(i_load_a);
  const double v0 = 1.15 + 0.01 * i_load_a;
  std::vector<CurvePoint> out;
  for (int i = 0; i < 13; ++i) {
    const double v = 0.6 + (1.25 - 0.6) * i / 12.0;
    const double dome = 1.0 - dome_k * (v - v0) * (v - v0) / (0.45 * 0.45);
    out.push_back({v, eta_peak * dome + wiggle(v + i_load_a, 0.004)});
  }
  return out;
}

}  // namespace ivory::bench
