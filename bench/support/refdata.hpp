// Reference curves for the validation benches (Figs. 7 and 8).
//
// The paper validates Ivory against silicon measurements (a 32 nm SOI
// reconfigurable SC converter [Tong, CICC'13]; a 45 nm SOI 2.5D buck with
// interposer inductors [Sturcken, JSSC'13]) and against Cadence simulations
// of 10 nm-class designs. Those data sets are not redistributable, so the
// curves below are regenerated from the published model forms and peak
// numbers (peak efficiency, peak location, linear SSL slope below the peak,
// cliff above it). They exercise the identical validation code path; see
// DESIGN.md, substitutions table.
#pragma once

#include <vector>

namespace ivory::bench {

struct CurvePoint {
  double x;  ///< Vout [V] (Fig. 7) or Vout [V] at fixed current (Fig. 8).
  double y;  ///< Measured conversion efficiency, 0..1.
};

/// 32 nm SOI reconfigurable SC, 3:2 configuration from a 1.8 V rail:
/// peak ~0.79 near 1.1 V output, linear below, cliff above.
std::vector<CurvePoint> measured_sc_32nm_3to2();

/// Same part, 2:1 configuration: peak ~0.77 near 0.82 V.
std::vector<CurvePoint> measured_sc_32nm_2to1();

/// 45 nm SOI 2.5D buck converter, efficiency vs output voltage at fixed
/// load currents of 1, 3 and 4 A (Vin = 1.8 V).
std::vector<CurvePoint> measured_buck_45nm(double i_load_a);

}  // namespace ivory::bench
