#include "support/case_study.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"

namespace ivory::bench {

const char* vr_config_name(VrConfig c) {
  switch (c) {
    case VrConfig::OffChipVrm: return "Off VRM";
    case VrConfig::CentralizedIvr: return "1 Cen IVR";
    case VrConfig::TwoDistributedIvrs: return "2 Dis IVRs";
    case VrConfig::FourDistributedIvrs: return "4 Dis IVRs";
  }
  return "?";
}

int vr_config_domains(VrConfig c) {
  switch (c) {
    case VrConfig::OffChipVrm: return 0;
    case VrConfig::CentralizedIvr: return 1;
    case VrConfig::TwoDistributedIvrs: return 2;
    case VrConfig::FourDistributedIvrs: return 4;
  }
  return 0;
}

CaseStudy::CaseStudy() : pdn(pdn::PdnParams::gpuvolt_default()) {
  // SystemParams defaults already match paper Table 1 (3.3 V in, 1.0 V out,
  // 20 W, 20 mm^2, up to 4 distributed IVRs).
}

std::vector<std::vector<double>> sm_current_traces(const CaseStudy& cs,
                                                   workload::Benchmark bench, double v_core,
                                                   std::uint64_t seed) {
  const std::vector<workload::PowerTrace> traces = workload::generate_gpu_traces(
      bench, cs.n_sm, cs.sm_avg_w, cs.trace_duration_s, cs.trace_dt_s, seed);
  const workload::DigitalLoadModel load =
      workload::DigitalLoadModel::from_average_power(cs.sm_avg_w, cs.sys.vout_v, 1e9, 0.2);
  std::vector<std::vector<double>> out;
  out.reserve(traces.size());
  for (const workload::PowerTrace& t : traces)
    out.push_back(workload::power_to_current(t, load, v_core));
  return out;
}

namespace {

std::vector<double> sum_traces(const std::vector<std::vector<double>>& traces, int first,
                               int count) {
  std::vector<double> out(traces[static_cast<std::size_t>(first)].size(), 0.0);
  for (int k = first; k < first + count; ++k)
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] += traces[static_cast<std::size_t>(k)][i];
  return out;
}

double settled_peak_to_peak(const std::vector<double>& v) {
  // Skip the first 15% (regulator start-up / PDN settling).
  const std::size_t skip = v.size() * 3 / 20;
  const std::vector<double> tail(v.begin() + static_cast<long>(skip), v.end());
  return ivory::peak_to_peak(tail);
}

}  // namespace

std::vector<double> supply_waveform(const CaseStudy& cs, VrConfig config,
                                    const core::DseResult& ivr,
                                    const std::vector<std::vector<double>>& sm_currents) {
  require(static_cast<int>(sm_currents.size()) == cs.n_sm,
          "supply_waveform: need one current trace per SM");

  if (config == VrConfig::OffChipVrm) {
    const std::vector<double> i_total = sum_traces(sm_currents, 0, cs.n_sm);
    return pdn::simulate_die_voltage(cs.pdn, cs.sys.vout_v, i_total, cs.trace_dt_s);
  }

  const int n_dom = vr_config_domains(config);
  require(ivr.feasible, "supply_waveform: IVR design must be feasible");
  require(ivr.n_distributed == n_dom, "supply_waveform: IVR design/distribution mismatch");
  const int sm_per_dom = cs.n_sm / n_dom;

  std::vector<double> worst;
  double worst_pp = -1.0;
  for (int d = 0; d < n_dom; ++d) {
    const std::vector<double> i_dom = sum_traces(sm_currents, d * sm_per_dom, sm_per_dom);
    core::DynWaveform wave =
        core::sc_combined_response(ivr.sc, cs.sys.vin_v, cs.sys.vout_v, i_dom, cs.trace_dt_s);
    // Grid path between the domain's IVR and its cores: a centralized IVR
    // spans the full die, a distributed one only its own domain — the path
    // impedance shrinks with the span (1/n), which is the physical lever
    // behind Fig. 11's distributed-noise reduction.
    const std::vector<double> grid =
        core::grid_noise(i_dom, cs.trace_dt_s, cs.pdn.grid_r_ohm / n_dom,
                         cs.pdn.grid_l_h / std::sqrt(static_cast<double>(n_dom)));
    for (std::size_t k = 0; k < wave.v.size(); ++k) wave.v[k] += grid[k];
    const double pp = settled_peak_to_peak(wave.v);
    if (pp > worst_pp) {
      worst_pp = pp;
      worst = std::move(wave.v);
    }
  }
  return worst;
}

double supply_noise_pp(const CaseStudy& cs, VrConfig config, const core::DseResult& ivr,
                       workload::Benchmark bench, std::uint64_t seed) {
  const auto currents = sm_current_traces(cs, bench, cs.sys.vout_v, seed);
  return settled_peak_to_peak(supply_waveform(cs, config, ivr, currents));
}

double guardband_for(const CaseStudy& cs, VrConfig config, const core::DseResult& ivr) {
  double worst = 0.0;
  for (workload::Benchmark bench : workload::kAllBenchmarks)
    worst = std::max(worst, supply_noise_pp(cs, config, ivr, bench));
  return worst;
}

}  // namespace ivory::bench
