// Shared machinery for the GPU-case-study benches (Section 5 of the paper:
// Table 2, Figs. 10, 11, 12, 13).
//
// Wires the pieces together exactly as the paper's flow does: synthetic
// per-SM power traces (GPGPU-Sim/GPUWattch substitute) -> load currents ->
// per-VR-configuration supply-voltage waveforms -> noise statistics ->
// guardbands -> end-to-end PDS efficiency.
#pragma once

#include <string>
#include <vector>

#include "core/ivory.hpp"

namespace ivory::bench {

/// The four VR configurations Figs. 10/11 sweep.
enum class VrConfig { OffChipVrm, CentralizedIvr, TwoDistributedIvrs, FourDistributedIvrs };

constexpr VrConfig kAllVrConfigs[] = {VrConfig::OffChipVrm, VrConfig::CentralizedIvr,
                                      VrConfig::TwoDistributedIvrs,
                                      VrConfig::FourDistributedIvrs};

const char* vr_config_name(VrConfig c);
int vr_config_domains(VrConfig c);  ///< 0 for the off-chip VRM.

/// Fixed system setup of the case study (paper Table 1): four Fermi-class
/// SMs at 5 W average each, 3.3 V board rail, 0.85 V nominal core voltage.
struct CaseStudy {
  core::SystemParams sys;            // vin 3.3, vout 1.0, 20 W, 20 mm^2.
  pdn::PdnParams pdn;
  int n_sm = 4;
  double sm_avg_w = 5.0;
  double v_core_nom = 0.85;
  double trace_duration_s = 60e-6;
  double trace_dt_s = 2e-9;

  CaseStudy();
};

/// Per-SM load-current traces for one benchmark at the given core voltage.
std::vector<std::vector<double>> sm_current_traces(const CaseStudy& cs,
                                                   workload::Benchmark bench, double v_core,
                                                   std::uint64_t seed = 1);

/// Supply-voltage waveform at the cores for one VR configuration. For IVR
/// configurations `ivr` must be the optimizer result for the matching
/// distribution count; it is ignored for the off-chip VRM. Returns the
/// worst (largest peak-to-peak) domain's waveform.
std::vector<double> supply_waveform(const CaseStudy& cs, VrConfig config,
                                    const core::DseResult& ivr,
                                    const std::vector<std::vector<double>>& sm_currents);

/// Peak-to-peak noise of the supply waveform for (benchmark, config).
double supply_noise_pp(const CaseStudy& cs, VrConfig config, const core::DseResult& ivr,
                       workload::Benchmark bench, std::uint64_t seed = 1);

/// Worst-case noise across all benchmarks (the guardband the configuration
/// needs).
double guardband_for(const CaseStudy& cs, VrConfig config, const core::DseResult& ivr);

}  // namespace ivory::bench
