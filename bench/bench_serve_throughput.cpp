// Throughput benchmark of the batch-evaluation service.
//
// Replays a mixed NDJSON request stream (static analyses, optimizer runs and
// a short transient, with deliberate duplicates) through `serve::run_batch`
// at several thread counts and with repeat=2, so both the cold path (all
// misses, every model evaluated) and the warm path (all hits, zero
// evaluations) are measured. Verifies the byte-identity contract along the
// way — every pass and every thread count must produce the same response
// bytes — and writes requests/sec plus hit rates to BENCH_serve.json so the
// service's perf trajectory is tracked across PRs.
//
// Usage: bench_serve_throughput [output.json]   (default: BENCH_serve.json)
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "serve/batch.hpp"
#include "serve/service.hpp"

using namespace ivory;

namespace {

/// Request mix: ~2/3 cheap static analyses (many duplicated so even the cold
/// pass exercises the cache), plus a few expensive optimizer sweeps.
std::string build_request_stream(int n_groups) {
  std::ostringstream out;
  int id = 0;
  for (int g = 0; g < n_groups; ++g) {
    // Distinct static points...
    out << R"({"op":"sc_static","id":)" << id++ << R"(,"n":3,"m":1,"cfly":4e-6,"gtot":)"
        << (10e3 + 1e3 * g) << R"(,"fsw":80e6,"iload":20})" << "\n";
    out << R"({"op":"buck_static","id":)" << id++ << R"(,"l":5e-9,"fsw":1e8,"phases":4,"iload":)"
        << (8 + g % 4) << "})" << "\n";
    out << R"({"op":"ldo_static","id":)" << id++ << R"(,"vin":1.2,"vout":1.0,"iload":)"
        << (2 + g % 3) << "})" << "\n";
    // ...and a duplicated one: same body every group, different id.
    out << R"({"op":"sc_static","id":)" << id++
        << R"(,"n":2,"m":1,"cfly":2e-6,"gtot":8e3,"fsw":60e6,"iload":10})" << "\n";
    if (g % 4 == 0)
      out << R"({"op":"optimize","id":)" << id++
          << R"(,"topology":"sc","dist":4,"power":20,"area":20})" << "\n";
  }
  return out.str();
}

struct Measurement {
  unsigned threads = 1;
  serve::BatchSummary summary;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::string input = build_request_stream(24);

  std::vector<Measurement> runs;
  std::string reference;  // response bytes of the first run
  for (const unsigned threads : {1u, 2u, 4u}) {
    par::set_global_threads(threads);
    serve::Service service;
    std::istringstream in(input);
    std::ostringstream out;
    serve::BatchOptions opt;
    opt.repeat = 2;
    Measurement m;
    m.threads = threads;
    m.summary = serve::run_batch(in, out, service, opt);
    runs.push_back(m);

    const std::string bytes = out.str();
    if (reference.empty()) reference = bytes;
    if (bytes != reference) {
      std::fprintf(stderr, "FATAL: %u-thread response bytes differ from 1-thread run\n",
                   threads);
      return 1;
    }
  }
  par::set_global_threads(1);

  TextTable t({"threads", "pass", "requests", "req/s", "hit rate", "evals"});
  std::string json = "{\"benchmark\":\"serve_throughput\",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    const double per_pass_s = m.summary.wall_s / static_cast<double>(m.summary.passes.size());
    for (std::size_t p = 0; p < m.summary.passes.size(); ++p) {
      const serve::BatchPassStats& s = m.summary.passes[p];
      const double rps = per_pass_s > 0 ? static_cast<double>(s.requests) / per_pass_s : 0.0;
      t.add_row({std::to_string(m.threads), p == 0 ? "cold" : "warm",
                 std::to_string(s.requests), TextTable::num(rps, 6),
                 TextTable::num(s.hit_rate() * 100, 1) + "%", std::to_string(s.evaluations)});
    }
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"threads\":%u,\"wall_s\":%.6f,\"requests\":%llu,"
                  "\"requests_per_s\":%.1f,\"cold_hit_rate\":%.4f,\"warm_hit_rate\":%.4f}",
                  i == 0 ? "" : ",", m.threads, m.summary.wall_s,
                  static_cast<unsigned long long>(m.summary.requests),
                  static_cast<double>(m.summary.requests) / m.summary.wall_s,
                  m.summary.passes[0].hit_rate(), m.summary.passes[1].hit_rate());
    json += buf;
  }
  json += "],\"byte_identical\":true}";

  std::printf("serve throughput (repeat=2: cold pass then warm pass)\n\n%s\n",
              t.render().c_str());
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
