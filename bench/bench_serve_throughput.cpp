// Throughput benchmark of the batch-evaluation service.
//
// Replays a mixed NDJSON request stream (static analyses, optimizer runs and
// a short transient, with deliberate duplicates) through `serve::run_batch`
// at several thread counts and with repeat=2, so both the cold path (all
// misses, every model evaluated) and the warm path (all hits, zero
// evaluations) are measured. Verifies the byte-identity contract along the
// way — every pass and every thread count must produce the same response
// bytes — and writes requests/sec plus hit rates to BENCH_serve.json so the
// service's perf trajectory is tracked across PRs.
//
// Two durability phases ride on the same stream:
//   - warm restart: a service with a durable store evaluates the stream
//     cold, is destroyed, and a fresh service over the same directory
//     replays it — the restart hit rate (expected ~100%) and cold/warm
//     byte-identity go into the JSON;
//   - fleet: a supervised multi-worker `ivory serve` fleet (real processes,
//     IVORY_CLI_BIN) serves the stream over its Unix socket at 1 and 2
//     workers, measuring mux + transport overhead end to end.
//
// Usage: bench_serve_throughput [--smoke] [output.json]
//   --smoke  tiny sizes (used by the perf-smoke ctest label)
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "serve/batch.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/supervisor.hpp"
#include "serve/wave_codec.hpp"

using namespace ivory;

namespace {

/// Request mix: ~2/3 cheap static analyses (many duplicated so even the cold
/// pass exercises the cache), plus a few expensive optimizer sweeps.
std::string build_request_stream(int n_groups) {
  std::ostringstream out;
  int id = 0;
  for (int g = 0; g < n_groups; ++g) {
    // Distinct static points...
    out << R"({"op":"sc_static","id":)" << id++ << R"(,"n":3,"m":1,"cfly":4e-6,"gtot":)"
        << (10e3 + 1e3 * g) << R"(,"fsw":80e6,"iload":20})" << "\n";
    out << R"({"op":"buck_static","id":)" << id++ << R"(,"l":5e-9,"fsw":1e8,"phases":4,"iload":)"
        << (8 + g % 4) << "}\n";
    out << R"({"op":"ldo_static","id":)" << id++ << R"(,"vin":1.2,"vout":1.0,"iload":)"
        << (2 + g % 3) << "}\n";
    // ...and a duplicated one: same body every group, different id.
    out << R"({"op":"sc_static","id":)" << id++
        << R"(,"n":2,"m":1,"cfly":2e-6,"gtot":8e3,"fsw":60e6,"iload":10})" << "\n";
    if (g % 4 == 0)
      out << R"({"op":"optimize","id":)" << id++
          << R"(,"topology":"sc","dist":4,"power":20,"area":20})" << "\n";
  }
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string l; std::getline(in, l);)
    if (!l.empty()) lines.push_back(l);
  return lines;
}

struct Measurement {
  unsigned threads = 1;
  serve::BatchSummary summary;
};

/// Cold-evaluate the stream into a durable store, tear the service down,
/// and replay against a fresh service over the same directory. Returns the
/// warm pass's hit rate (in-memory + durable tiers combined).
double warm_restart_phase(const std::string& input, bool* byte_identical) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "ivory-bench-store-XXXXXX").string();
  if (::mkdtemp(dir.data()) == nullptr) return -1.0;

  serve::BatchOptions opt;
  std::string cold_bytes;
  {
    serve::ServiceOptions so;
    so.cache_dir = dir;
    serve::Service cold(so);
    std::istringstream in(input);
    std::ostringstream out;
    serve::run_batch(in, out, cold, opt);
    cold_bytes = out.str();
  }  // service destroyed: only the durable tier carries over

  serve::ServiceOptions so;
  so.cache_dir = dir;
  serve::Service warm(so);
  std::istringstream in(input);
  std::ostringstream out;
  const serve::BatchSummary warm_run = serve::run_batch(in, out, warm, opt);
  *byte_identical = out.str() == cold_bytes;
  std::filesystem::remove_all(dir);
  return warm_run.passes.empty() ? -1.0 : warm_run.passes[0].hit_rate();
}

/// Requests/sec through a supervised fleet of real worker processes, driven
/// by `n_clients` concurrent connections in lock-step request/response.
double fleet_phase(const std::vector<std::string>& requests, int workers,
                   int n_clients) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "ivory-bench-fleet-XXXXXX").string();
  if (::mkdtemp(dir.data()) == nullptr) return -1.0;

  serve::SupervisorOptions o;
  o.socket_path = dir + "/sock";
  o.workers = workers;
  o.exe = IVORY_CLI_BIN;
  serve::Supervisor fleet(std::move(o));
  fleet.start();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < n_clients; ++c)
    clients.emplace_back([&] {
      serve::BlockingClient cli(fleet.socket_path());
      for (const std::string& r : requests) {
        cli.send_line(r);
        (void)cli.recv_line();
      }
    });
  for (std::thread& t : clients) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  fleet.stop();
  std::filesystem::remove_all(dir);
  return wall_s > 0 ? static_cast<double>(requests.size()) * n_clients / wall_s : -1.0;
}

/// Linear interpolation of quantile `q` from histogram buckets (the +inf
/// bucket reports the last finite bound — good enough for a trend line).
double histogram_quantile(const metrics::Histogram::Snapshot& s, double q) {
  if (s.count == 0) return 0.0;
  const double target = q * static_cast<double>(s.count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < s.counts.size(); ++b) {
    const std::uint64_t next = cum + s.counts[b];
    if (static_cast<double>(next) >= target && s.counts[b] > 0) {
      if (b >= s.bounds.size()) return s.bounds.empty() ? 0.0 : s.bounds.back();
      const double lo = b == 0 ? 0.0 : s.bounds[b - 1];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(s.counts[b]);
      return lo + frac * (s.bounds[b] - lo);
    }
    cum = next;
  }
  return s.bounds.empty() ? 0.0 : s.bounds.back();
}

struct StreamBenchResult {
  double rps = -1.0;
  double p50_ms = 0.0, p99_ms = 0.0;
  std::uint64_t streams = 0;
  bool byte_identical = false;
};

/// Streamed wave1 transients over the in-process socket server: `n_clients`
/// concurrent connections each run `per_client` streams of a ~2k-row SPICE
/// transient, every decoded stream checked byte-identical to the buffered
/// response. Per-stream wall time goes into a latency histogram; p50/p99
/// are interpolated from its buckets.
StreamBenchResult streaming_phase(int n_clients, int per_client) {
  const std::string request =
      R"({"id":1,"op":"transient","topology":"spice",)"
      R"("netlist":"* rc\nV1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1n\n.end",)"
      R"("tstop":2e-6,"dt":1e-9,"return_waveform":true})";
  json::Value root = json::Value::parse(request);
  root.set("stream", json::Value(true));
  root.set("encoding", json::Value(std::string("wave1")));
  root.set("chunk_bytes", json::Value(std::uint64_t{4096}));
  const std::string streamed = root.write();

  serve::ServerOptions opt;
  opt.socket_path = (std::filesystem::temp_directory_path() /
                     ("ivory-bench-stream-" + std::to_string(::getpid()) + ".sock"))
                        .string();
  serve::Server server(opt);
  server.start();

  std::string reference;
  {
    serve::BlockingClient cli(server.socket_path());
    cli.send_line(request);
    reference = cli.recv_line();
  }

  metrics::Histogram latency(metrics::Histogram::default_latency_bounds_ms());
  std::atomic<bool> identical{true};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < n_clients; ++c)
    clients.emplace_back([&] {
      serve::BlockingClient cli(server.socket_path());
      for (int i = 0; i < per_client; ++i) {
        const auto s0 = std::chrono::steady_clock::now();
        cli.send_line(streamed);
        const serve::StreamAssembler out =
            serve::read_stream([&cli](char* p, std::size_t cap) {
              return cli.recv_raw(p, cap);
            });
        latency.observe(
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      s0)
                .count());
        if (out.status() != "ok" || out.decoded() != reference)
          identical.store(false);
      }
    });
  for (std::thread& t : clients) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.stop();
  std::filesystem::remove(opt.socket_path);

  StreamBenchResult r;
  const metrics::Histogram::Snapshot snap = latency.snapshot();
  r.streams = snap.count;
  r.p50_ms = histogram_quantile(snap, 0.50);
  r.p99_ms = histogram_quantile(snap, 0.99);
  r.byte_identical = identical.load();
  r.rps = wall_s > 0 ? static_cast<double>(snap.count) / wall_s : -1.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out_path = argv[i];
  }
  const std::string input = build_request_stream(smoke ? 6 : 24);
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1u, 2u} : std::vector<unsigned>{1u, 2u, 4u};

  std::vector<Measurement> runs;
  std::string reference;  // response bytes of the first run
  for (const unsigned threads : thread_counts) {
    par::set_global_threads(threads);
    serve::Service service;
    std::istringstream in(input);
    std::ostringstream out;
    serve::BatchOptions opt;
    opt.repeat = 2;
    Measurement m;
    m.threads = threads;
    m.summary = serve::run_batch(in, out, service, opt);
    runs.push_back(m);

    const std::string bytes = out.str();
    if (reference.empty()) reference = bytes;
    if (bytes != reference) {
      std::fprintf(stderr, "FATAL: %u-thread response bytes differ from 1-thread run\n",
                   threads);
      return 1;
    }
  }
  par::set_global_threads(1);

  // Durable warm restart: the hit rate a restarted service gets purely from
  // its store directory. Anything below 100% means results failed to publish
  // or failed verification on the way back in.
  bool restart_identical = false;
  const double restart_hit_rate = warm_restart_phase(input, &restart_identical);
  if (restart_hit_rate < 0.999 || !restart_identical) {
    std::fprintf(stderr,
                 "FATAL: warm restart hit rate %.4f (want ~1.0), byte_identical=%d\n",
                 restart_hit_rate, restart_identical);
    return 1;
  }

  // Supervised fleet, real worker processes over the Unix socket.
  const std::vector<std::string> fleet_requests = split_lines(input);
  struct FleetRun {
    int workers;
    double rps;
  };
  std::vector<FleetRun> fleet_runs;
  for (const int workers : {1, 2}) {
    const double rps = fleet_phase(fleet_requests, workers, 2);
    if (rps < 0) {
      std::fprintf(stderr, "FATAL: fleet phase failed at %d workers\n", workers);
      return 1;
    }
    fleet_runs.push_back({workers, rps});
  }

  // Streamed wave1 transients over the socket server: latency distribution
  // (p50/p99 from histogram buckets) plus the byte-identity check against
  // the buffered response.
  const StreamBenchResult streaming =
      streaming_phase(smoke ? 2 : 4, smoke ? 10 : 50);
  if (!streaming.byte_identical || streaming.rps < 0) {
    std::fprintf(stderr, "FATAL: streaming phase failed (byte_identical=%d)\n",
                 streaming.byte_identical);
    return 1;
  }

  TextTable t({"threads", "pass", "requests", "req/s", "hit rate", "evals"});
  std::string json = "{\"benchmark\":\"serve_throughput\",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Measurement& m = runs[i];
    const double per_pass_s = m.summary.wall_s / static_cast<double>(m.summary.passes.size());
    for (std::size_t p = 0; p < m.summary.passes.size(); ++p) {
      const serve::BatchPassStats& s = m.summary.passes[p];
      const double rps = per_pass_s > 0 ? static_cast<double>(s.requests) / per_pass_s : 0.0;
      t.add_row({std::to_string(m.threads), p == 0 ? "cold" : "warm",
                 std::to_string(s.requests), TextTable::num(rps, 6),
                 TextTable::num(s.hit_rate() * 100, 1) + "%", std::to_string(s.evaluations)});
    }
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"threads\":%u,\"wall_s\":%.6f,\"requests\":%llu,"
                  "\"requests_per_s\":%.1f,\"cold_hit_rate\":%.4f,\"warm_hit_rate\":%.4f}",
                  i == 0 ? "" : ",", m.threads, m.summary.wall_s,
                  static_cast<unsigned long long>(m.summary.requests),
                  static_cast<double>(m.summary.requests) / m.summary.wall_s,
                  m.summary.passes[0].hit_rate(), m.summary.passes[1].hit_rate());
    json += buf;
  }
  json += "],\"byte_identical\":true";
  {
    char buf[128];
    std::snprintf(buf, sizeof buf, ",\"warm_restart_hit_rate\":%.4f", restart_hit_rate);
    json += buf;
  }
  json += ",\"fleet\":[";
  for (std::size_t i = 0; i < fleet_runs.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s{\"workers\":%d,\"requests_per_s\":%.1f}",
                  i == 0 ? "" : ",", fleet_runs[i].workers, fleet_runs[i].rps);
    json += buf;
  }
  json += "]";
  {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  ",\"streaming\":{\"streams\":%llu,\"requests_per_s\":%.1f,"
                  "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"byte_identical\":%s}",
                  static_cast<unsigned long long>(streaming.streams), streaming.rps,
                  streaming.p50_ms, streaming.p99_ms,
                  streaming.byte_identical ? "true" : "false");
    json += buf;
  }
  json += "}";

  std::printf("serve throughput (repeat=2: cold pass then warm pass)%s\n\n%s\n",
              smoke ? " (smoke)" : "", t.render().c_str());
  std::printf("warm restart hit rate: %.1f%% (byte-identical: yes)\n",
              restart_hit_rate * 100);
  for (const FleetRun& f : fleet_runs)
    std::printf("fleet %d worker%s: %.0f req/s\n", f.workers,
                f.workers == 1 ? "" : "s", f.rps);
  std::printf("streaming (wave1): %llu streams, %.0f req/s, p50 %.2f ms, p99 %.2f ms"
              " (byte-identical: yes)\n",
              static_cast<unsigned long long>(streaming.streams), streaming.rps,
              streaming.p50_ms, streaming.p99_ms);
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
