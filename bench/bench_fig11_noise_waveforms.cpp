// Reproduces Fig. 11: supply-voltage waveforms of the CFD workload under the
// four VR configurations, and their peak-to-peak noise ranges.
//
// Paper reference values: off-chip VRM 125 mV, centralized IVR 59 mV, two
// distributed IVRs 55 mV, four distributed IVRs 25 mV.
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "support/case_study.hpp"

using namespace ivory;
using namespace ivory::bench;

namespace {

// Compact ASCII rendering of a waveform (min/mean/max per column).
void print_sparkline(const std::vector<double>& v, double dt) {
  constexpr int kCols = 72;
  constexpr int kRows = 8;
  const std::size_t skip = v.size() * 3 / 20;
  const std::vector<double> w(v.begin() + static_cast<long>(skip), v.end());
  const double lo = min_value(w), hi = max_value(w);
  if (hi - lo < 1e-9) return;
  std::vector<std::string> grid(kRows, std::string(kCols, ' '));
  const std::size_t per_col = w.size() / kCols;
  for (int c = 0; c < kCols; ++c) {
    double cmin = 1e9, cmax = -1e9;
    for (std::size_t k = c * per_col; k < (c + 1) * per_col && k < w.size(); ++k) {
      cmin = std::min(cmin, w[k]);
      cmax = std::max(cmax, w[k]);
    }
    const int rlo = static_cast<int>((cmin - lo) / (hi - lo) * (kRows - 1));
    const int rhi = static_cast<int>((cmax - lo) / (hi - lo) * (kRows - 1));
    for (int r = rlo; r <= rhi; ++r) grid[static_cast<std::size_t>(kRows - 1 - r)][c] = '#';
  }
  std::printf("  %.3f V\n", hi);
  for (const std::string& row : grid) std::printf("  |%s|\n", row.c_str());
  std::printf("  %.3f V  (%.0f us window)\n", lo,
              static_cast<double>(w.size()) * dt * 1e6);
}

}  // namespace

int main() {
  std::printf("=== Fig. 11: voltage noise waveforms (CFD) with varying VR configurations ===\n");
  std::printf("Paper noise ranges: Off VRM 125 mV | 1 Cen IVR 59 mV | 2 Dis 55 mV | 4 Dis 25 mV\n\n");

  const CaseStudy cs;
  TextTable table({"VR configuration", "noise range (measured)", "paper"});
  const char* paper_vals[] = {"125 mV", "59 mV", "55 mV", "25 mV"};

  int idx = 0;
  for (VrConfig config : kAllVrConfigs) {
    core::DseResult ivr;
    if (config != VrConfig::OffChipVrm)
      ivr = core::optimize_topology(cs.sys, core::IvrTopology::SwitchedCapacitor,
                                    vr_config_domains(config));
    const auto currents = sm_current_traces(cs, workload::Benchmark::CFD, cs.sys.vout_v);
    const std::vector<double> wave = supply_waveform(cs, config, ivr, currents);

    const std::size_t skip = wave.size() * 3 / 20;
    const std::vector<double> tail(wave.begin() + static_cast<long>(skip), wave.end());
    const double pp = peak_to_peak(tail);
    table.add_row({vr_config_name(config), TextTable::si(pp, "V"), paper_vals[idx++]});

    std::printf("--- %s ---\n", vr_config_name(config));
    print_sparkline(wave, cs.trace_dt_s);
    std::printf("\n");
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
