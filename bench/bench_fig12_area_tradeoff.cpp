// Reproduces Fig. 12: IVR efficiency trade-off with area.
//
// Sweeps the area budget and re-optimizes each topology: the buck is less
// area-hungry at loose budgets (its inductor carries the energy), while the
// SC converter needs capacitor area but wins once a high-density capacitor
// process is available — the paper's Section 5.2 observation ("the buck has
// higher efficiency than the SC converter with more stringent area budget,
// although a high capacitor density process can be used to alleviate such
// hurdles").
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"

using namespace ivory;
using namespace ivory::core;

int main() {
  std::printf("=== Fig. 12: IVR efficiency trade-off with area ===\n\n");

  TextTable table({"area (mm^2)", "SC trench eff (%)", "SC MOS-cap eff (%)", "buck eff (%)",
                   "LDO eff (%)", "winner"});
  for (double area_mm2 : {4.0, 8.0, 12.0, 20.0, 30.0, 40.0}) {
    SystemParams sys;
    sys.area_max_m2 = area_mm2 * 1e-6;

    sys.cap_kind = tech::CapKind::DeepTrench;
    const DseResult sc_trench = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 1);
    sys.cap_kind = tech::CapKind::MosCap;
    const DseResult sc_mos = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 1);
    sys.cap_kind = tech::CapKind::DeepTrench;
    const DseResult buck = optimize_topology(sys, IvrTopology::Buck, 1);
    const DseResult ldo = optimize_topology(sys, IvrTopology::LinearRegulator, 1);

    auto cell = [](const DseResult& r) {
      return r.feasible ? TextTable::num(r.efficiency * 100.0, 3) : std::string("infeasible");
    };
    const DseResult* best = &sc_trench;
    const char* name = "SC (trench)";
    if (sc_mos.feasible && sc_mos.efficiency > best->efficiency) {
      best = &sc_mos;
      name = "SC (MOS)";
    }
    if (buck.feasible && (!best->feasible || buck.efficiency > best->efficiency)) {
      best = &buck;
      name = "buck";
    }
    if (ldo.feasible && (!best->feasible || ldo.efficiency > best->efficiency)) {
      best = &ldo;
      name = "LDO";
    }
    table.add_row({TextTable::num(area_mm2, 3), cell(sc_trench), cell(sc_mos), cell(buck),
                   cell(ldo), best->feasible ? name : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: efficiency rises with area for the switching topologies and\n"
              "saturates; the SC converter depends on capacitor density (trench vs MOS);\n"
              "the LDO is area-cheap but pinned at vout/vin.\n");
  return 0;
}
