// Extension bench: hierarchical two-stage power delivery (paper
// contribution: "hierarchical composition of multi-stage on-chip and
// off-chip power delivery networks").
//
// A centralized first-stage converter drops the 3.3 V board rail to an
// intermediate voltage; distributed second stages regulate each core domain.
// Compares the best single-stage design against the best two-stage cascade
// across intermediate rails.
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"

using namespace ivory;
using namespace ivory::core;

int main() {
  std::printf("=== Extension: single-stage vs hierarchical two-stage IVR delivery ===\n\n");
  const SystemParams sys;

  const DseResult single = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 4);
  std::printf("single stage (3.3 V -> 1.0 V, 4 distributed): %s, eff %.1f %%\n\n",
              single.label.c_str(), single.efficiency * 100.0);

  TextTable table({"v_mid (V)", "stage1", "eff1 (%)", "stage2 (x4)", "eff2 (%)",
                   "cascade eff (%)"});
  TwoStageResult best;
  for (double v_mid : {1.3, 1.6, 2.0, 2.15, 2.31}) {
    SystemParams probe = sys;
    TwoStageResult r;
    // Use the optimizer's own sweep but pin the rail by narrowing the probe.
    // (optimize_two_stage sweeps rails internally; here we show the full
    // landscape by restricting vin/vout around each candidate.)
    (void)probe;
    // Evaluate one rail directly: stage 2 then stage 1, 40% area to stage 1.
    SystemParams s2 = sys;
    s2.vin_v = v_mid;
    s2.area_max_m2 = sys.area_max_m2 * 0.6;
    const DseResult r2 = optimize_topology(s2, IvrTopology::SwitchedCapacitor, 4);
    SystemParams s1 = sys;
    s1.vout_v = v_mid;
    s1.area_max_m2 = sys.area_max_m2 * 0.4;
    s1.ripple_max_v = 5.0 * sys.ripple_max_v;
    if (r2.feasible) s1.p_load_w = sys.p_load_w / r2.efficiency;
    const DseResult r1 =
        r2.feasible ? optimize_topology(s1, IvrTopology::SwitchedCapacitor, 1) : DseResult{};
    if (r1.feasible && r2.feasible) {
      table.add_row({TextTable::num(v_mid, 3), r1.label, TextTable::num(r1.efficiency * 100, 3),
                     r2.label, TextTable::num(r2.efficiency * 100, 3),
                     TextTable::num(r1.efficiency * r2.efficiency * 100, 3)});
    } else {
      table.add_row({TextTable::num(v_mid, 3), r1.feasible ? r1.label : "infeasible", "-",
                     r2.feasible ? r2.label : "infeasible", "-", "-"});
    }
    (void)r;
  }
  std::printf("%s\n", table.render().c_str());

  const TwoStageResult two = optimize_two_stage(sys, 4);
  if (two.feasible) {
    std::printf("best two-stage: %.2f V rail, %s + %s, cascade eff %.1f %% "
                "(single stage: %.1f %%)\n",
                two.v_mid_v, two.stage1.label.c_str(), two.stage2.label.c_str(),
                two.efficiency * 100.0, single.efficiency * 100.0);
    std::printf("\nExpected shape: the cascade multiplies two conversion losses, so for this\n"
                "3.3:1 ratio a well-chosen single-stage SC wins — hierarchy pays off only\n"
                "when no single topology spans the full ratio efficiently.\n");
  } else {
    std::printf("no feasible two-stage cascade under these constraints\n");
  }
  return 0;
}
