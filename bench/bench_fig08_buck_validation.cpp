// Reproduces Fig. 8: buck-converter efficiency validation.
//
// Left: Ivory vs measurements of a 45 nm SOI 2.5D buck with integrated
// interposer inductors at 1 / 3 / 4 A load. Right: Ivory vs switch-level
// circuit simulation (ivory_spice) of a 10 nm-class buck at 1 / 2 A.
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "core/ivory.hpp"
#include "support/refdata.hpp"

using namespace ivory;
using ivory::bench::CurvePoint;

namespace {

// Ivory model of the published 2.5D part: interposer coupled inductors,
// 45 nm switches, a few phases at tens of MHz.
core::BuckDesign part_45nm() {
  core::BuckDesign d;
  d.node = tech::Node::n45;
  d.inductor = tech::InductorKind::IntegratedInterposer;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.l_per_phase_h = 13e-9;
  d.f_sw_hz = 75e6;
  d.n_phases = 2;
  d.w_high_m = 0.10;
  d.w_low_m = 0.13;
  d.c_out_f = 200e-9;
  return d;
}

// Simulates the single-phase equivalent buck switch-level and returns
// (vout, efficiency); the gate/driver losses the netlist cannot express are
// taken from the analytical model (the same treatment the paper applies
// when comparing against power-stage-only simulations).
struct SimPoint {
  double vout;
  double eff;
};
SimPoint simulate_buck(const core::BuckDesign& d, double vin, double i_load) {
  const core::BuckAnalysis a = core::analyze_buck(d, vin, 1.0, i_load);  // For duty + overheads.
  const tech::SwitchTech& core_dev = tech::switch_tech(d.node, tech::DeviceClass::Core);
  const tech::SwitchTech& dev =
      vin > core_dev.vmax_v ? tech::switch_tech(d.node, tech::DeviceClass::Io) : core_dev;
  const tech::InductorTech& ind = tech::inductor_tech(d.inductor);
  const double n = d.n_phases;
  const double r_hs = dev.ron(d.w_high_m) / n;  // N phases folded in parallel.
  const double r_ls = dev.ron(d.w_low_m) / n;
  const double l_eq = ind.inductance_at(d.l_per_phase_h, d.f_sw_hz) / n;
  const double r_dcr = ind.dcr(d.l_per_phase_h) / n;

  spice::Circuit ckt;
  const spice::NodeId vin_n = ckt.node("vin");
  const spice::NodeId sw = ckt.node("sw");
  const spice::NodeId lx = ckt.node("lx");
  const spice::NodeId out = ckt.node("out");
  ckt.add_vsource("v1", vin_n, spice::kGround, spice::Waveform::dc(vin));
  const spice::PhaseClock clk(d.f_sw_hz, 1, a.duty);
  ckt.add_switch("s_hs", vin_n, sw, r_hs, 1e8, clk.control(0), clk.edge_fn(0));
  ckt.add_switch("s_ls", sw, spice::kGround, r_ls, 1e8,
                 [clk](double t) { return !clk.active(0, t); }, clk.edge_fn(0));
  ckt.add_inductor_ic("l1", sw, lx, l_eq, i_load);
  ckt.add_resistor("r_dcr", lx, out, std::max(r_dcr, 1e-6));
  ckt.add_capacitor_ic("cout", out, spice::kGround, d.c_out_f, 1.0);
  ckt.add_isource("iload", out, spice::kGround, spice::Waveform::dc(i_load));

  spice::TranSpec spec;
  spec.tstop = 120.0 / d.f_sw_hz;
  spec.dt = 1.0 / (1600.0 * d.f_sw_hz);
  spec.use_ic = true;
  spec.record_nodes = {out, sw};
  const spice::TranResult res = spice::transient(ckt, spec);

  // Average over the settled last quarter.
  const std::vector<double>& vo = res.at(out);
  const std::vector<double>& vsw = res.at(sw);
  double vout_avg = 0.0, p_in = 0.0;
  std::size_t cnt = 0;
  for (std::size_t k = vo.size() * 3 / 4; k < vo.size(); ++k) {
    vout_avg += vo[k];
    const double t = res.time[k];
    const double i_in = clk.active(0, t) ? (vin - vsw[k]) / r_hs : 0.0;
    p_in += vin * i_in;
    ++cnt;
  }
  vout_avg /= static_cast<double>(cnt);
  p_in /= static_cast<double>(cnt);
  // Add the losses the power-stage netlist cannot express.
  p_in += a.p_gate_w + a.p_overlap_w + a.p_coss_w + a.p_deadtime_w + a.p_peripheral_w;
  return {vout_avg, vout_avg * i_load / p_in};
}

}  // namespace

int main() {
  std::printf("=== Fig. 8: efficiency validation for buck converters ===\n\n");

  // Left: measured 45 nm 2.5D buck at three load currents, Vin = 1.8 V.
  for (double i_load : {1.0, 3.0, 4.0}) {
    std::printf("--- %.0f A vs 45nm 2.5D measurements ---\n", i_load);
    TextTable table({"Vout (V)", "measured eff", "Ivory eff", "delta"});
    double worst = 0.0;
    for (const CurvePoint& p : ivory::bench::measured_buck_45nm(i_load)) {
      const core::BuckAnalysis a = core::analyze_buck(part_45nm(), 1.8, p.x, i_load);
      const double delta = a.efficiency - p.y;
      worst = std::max(worst, std::fabs(delta));
      table.add_row({TextTable::num(p.x, 3), TextTable::num(p.y, 3),
                     TextTable::num(a.efficiency, 3), TextTable::num(delta, 2)});
    }
    std::printf("%sworst |delta|: %.3f\n\n", table.render().c_str(), worst);
  }

  // Right: Ivory vs switch-level simulation, 10 nm-class design at 1 / 2 A.
  std::printf("--- 10nm buck, Ivory vs circuit simulation ---\n");
  TextTable table({"I load", "Ivory vout", "sim vout", "Ivory eff", "sim eff", "delta"});
  core::BuckDesign d;
  d.node = tech::Node::n10;
  d.inductor = tech::InductorKind::IntegratedInterposer;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.l_per_phase_h = 8e-9;
  d.f_sw_hz = 100e6;
  d.n_phases = 2;
  d.w_high_m = 0.05;
  d.w_low_m = 0.07;
  d.c_out_f = 150e-9;
  for (double i_load : {1.0, 2.0}) {
    const core::BuckAnalysis a = core::analyze_buck(d, 1.8, 1.0, i_load);
    const SimPoint sim = simulate_buck(d, 1.8, i_load);
    table.add_row({TextTable::num(i_load, 2), TextTable::num(a.vout_v, 3),
                   TextTable::num(sim.vout, 3), TextTable::num(a.efficiency, 3),
                   TextTable::num(sim.eff, 3), TextTable::num(a.efficiency - sim.eff, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: Ivory tracks the measured dome within a few percent and the\n"
              "switch-level simulation closely (same power stage, same overhead terms).\n");
  return 0;
}
