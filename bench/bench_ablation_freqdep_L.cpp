// Ablation: frequency-dependent inductance in the buck model (DESIGN.md
// design-choice study).
//
// "Compared to an off-chip voltage regulator with a low switching frequency,
// the change of inductor characteristics with frequency is more pronounced
// in buck IVRs and this effect is modeled in Ivory by a polynomial-fitted
// frequency-dependent coefficient of the inductance" (paper Section 3.2).
// This bench shows the error a model WITHOUT that coefficient makes.
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"

using namespace ivory;
using namespace ivory::core;

int main() {
  std::printf("=== Ablation: frequency-dependent inductance in the buck model ===\n\n");

  BuckDesign d;
  d.node = tech::Node::n32;
  d.inductor = tech::InductorKind::MagneticFilm;  // Knee at 100 MHz.
  d.cap_kind = tech::CapKind::DeepTrench;
  d.l_per_phase_h = 4e-9;
  d.n_phases = 4;
  d.w_high_m = 0.08;
  d.w_low_m = 0.10;
  d.c_out_f = 1e-6;

  TextTable table({"f_sw (MHz)", "L_eff/L0", "ripple w/ rolloff (mA)", "ripple w/o (mA)",
                   "eff w/ rolloff (%)", "eff w/o (%)", "eff error (pts)"});
  for (double f : {100e6, 150e6, 200e6, 300e6, 400e6, 800e6}) {
    d.f_sw_hz = f;
    d.ignore_l_rolloff = false;
    const BuckAnalysis with = analyze_buck(d, 3.3, 1.0, 10.0);
    d.ignore_l_rolloff = true;
    const BuckAnalysis without = analyze_buck(d, 3.3, 1.0, 10.0);
    table.add_row({TextTable::num(f / 1e6, 3),
                   TextTable::num(with.l_eff_h / d.l_per_phase_h, 3),
                   TextTable::num(with.i_ripple_phase_a * 1e3, 4),
                   TextTable::num(without.i_ripple_phase_a * 1e3, 4),
                   TextTable::num(with.efficiency * 100.0, 4),
                   TextTable::num(without.efficiency * 100.0, 4),
                   TextTable::num((without.efficiency - with.efficiency) * 100.0, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: above the magnetic-film knee (100 MHz) the constant-L model\n"
              "underestimates current ripple and overestimates efficiency — exactly the\n"
              "regime where buck IVRs operate.\n");
  return 0;
}
