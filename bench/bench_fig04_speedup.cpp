// Reproduces Fig. 4: speedup of Ivory's dynamic model over SPICE-level
// transient simulation, as a function of switching frequency.
//
// The paper reports 10^3 .. 10^5 x over Cadence across the sweep. Here both
// sides are measured on the same machine: the combined cycle-by-cycle +
// in-cycle model versus ivory_spice simulating the switch-level netlist of
// the identical converter over the identical time window.
#include <chrono>
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"

using namespace ivory;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  std::printf("=== Fig. 4: Ivory model speedup compared with SPICE ===\n");
  std::printf("Paper: speedup grows with f_sw into the 1e3..1e5 band.\n\n");

  TextTable table({"f_sw", "sim window", "SPICE steps", "t_spice", "t_ivory", "speedup"});

  // The paper's setting: a fixed-length study window (a workload snippet).
  // SPICE must resolve every switching event, so its cost grows linearly
  // with f_sw; the cycle-by-cycle model's cost stays tied to the trace.
  const double window = 50e-6;
  const double dt_trace_fixed = 10e-9;
  for (double f_sw : {1e6, 5e6, 2e7, 1e8}) {
    core::ScDesign d;
    d.node = tech::Node::n32;
    d.cap_kind = tech::CapKind::DeepTrench;
    d.n = 2;
    d.m = 1;
    d.c_fly_f = 10e-9;
    d.c_out_f = 5e-9;
    d.g_tot_s = 50.0;
    d.f_sw_hz = f_sw;
    const double i_load = 0.05;
    const double dt_trace = dt_trace_fixed;
    const std::vector<double> load(static_cast<std::size_t>(window / dt_trace), i_load);

    // --- SPICE side: switch-level netlist, 200 steps per switching cycle.
    const core::ScTopology topo = core::make_topology(2, 1);
    const core::ChargeVectors cv = core::charge_vectors(topo);
    spice::Circuit ckt;
    const core::ScNetlistResult nodes =
        core::build_sc_netlist(ckt, topo, cv, 3.3, d.c_fly_f, d.g_tot_s, f_sw, d.c_out_f);
    ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(i_load));
    spice::TranSpec spec;
    spec.tstop = window;
    spec.dt = 1.0 / (200.0 * f_sw);
    spec.use_ic = true;
    spec.record_nodes = {nodes.vout};

    const auto t0 = Clock::now();
    const spice::TranResult res = spice::transient(ckt, spec);
    const double t_spice = seconds_since(t0);

    // --- Ivory side: combined dynamic model over the same window, repeated
    // enough times to get a measurable duration.
    const int reps = 20;
    const auto t1 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      const core::DynWaveform w = core::sc_combined_response(
          d, 3.3, 0.0, load, dt_trace, core::ScControl::FreeRunning);
      if (w.v.empty()) return 1;  // Keep the optimizer honest.
    }
    const double t_ivory = seconds_since(t1) / reps;

    table.add_row({TextTable::si(f_sw, "Hz"), TextTable::si(window, "s"),
                   std::to_string(res.steps_taken), TextTable::si(t_spice, "s"),
                   TextTable::si(t_ivory, "s"), TextTable::num(t_spice / t_ivory, 3)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Note: ivory_spice is itself far faster than a full Cadence flow, so the\n"
              "absolute speedups here are a lower bound on the paper's 1e3..1e5.\n");
  return 0;
}
