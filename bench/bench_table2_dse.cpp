// Reproduces Table 2: the static design-space-exploration summary for the
// GPU case study — best design per topology and distribution count.
//
// Paper values: 3:1 SC eff 80.3/80.2/80.0 %, buck lower, LR ~30-33 %; the
// SC optimum is heavily interleaved (32x in the paper).
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"
#include "support/case_study.hpp"

using namespace ivory;
using namespace ivory::core;

int main() {
  std::printf("=== Table 2: summary of design space exploration ===\n\n");
  const bench::CaseStudy cs;

  TextTable table({"topology", "distribute no.", "efficiency (%)", "ripple (mV)",
                   "f_sw (MHz)", "interleave", "area (mm^2)", "feasible"});
  for (IvrTopology topo :
       {IvrTopology::SwitchedCapacitor, IvrTopology::Buck, IvrTopology::LinearRegulator}) {
    for (int n : {1, 2, 4}) {
      const DseResult r = optimize_topology(cs.sys, topo, n);
      table.add_row({r.label.empty() ? topology_name(topo) : r.label, std::to_string(n),
                     TextTable::num(r.efficiency * 100.0, 3),
                     TextTable::num(r.ripple_pp_v * 1e3, 3),
                     TextTable::num(r.f_sw_hz / 1e6, 3), std::to_string(r.n_interleave),
                     TextTable::num(r.area_m2 * 1e6, 3), r.feasible ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.render().c_str());

  const DseResult best = best_design(cs.sys);
  std::printf("Optimal design: %s, %d-way interleaved, %d distributed, eff %.1f%%\n",
              best.label.c_str(), best.n_interleave, best.n_distributed,
              best.efficiency * 100.0);
  std::printf("Paper: \"a 32 interleaved 3:1 switched-capacitor converter has the highest\n"
              "efficiency for this GPU system\" at 80.3%% (1x), 80.2%% (2x), 80.0%% (4x).\n");
  return 0;
}
