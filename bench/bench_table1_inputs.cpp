// Reproduces Table 1: the Ivory input parameters of the GPU case study,
// echoed together with the derived technology values the run will use.
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"
#include "support/case_study.hpp"

using namespace ivory;

int main() {
  std::printf("=== Table 1: summary of Ivory input parameters (GPU case study) ===\n\n");
  const bench::CaseStudy cs;
  const core::SystemParams& sys = cs.sys;

  TextTable table({"parameter", "value"});
  table.add_row({"Max. area", TextTable::num(sys.area_max_m2 * 1e6, 3) + " mm^2"});
  table.add_row({"Total average power", TextTable::num(sys.p_load_w, 3) + " W"});
  table.add_row({"Input / output voltage",
                 TextTable::num(sys.vin_v, 3) + " V / " + TextTable::num(sys.vout_v, 3) + " V"});
  table.add_row({"Max number of distributed IVRs", std::to_string(sys.max_distributed)});
  table.add_row({"Nominal core voltage", TextTable::num(cs.v_core_nom, 3) + " V"});
  table.add_row({"SMs (Fermi-class)", std::to_string(cs.n_sm) + " x " +
                                          TextTable::num(cs.sm_avg_w, 2) + " W"});
  table.add_row({"Static ripple budget", TextTable::si(sys.ripple_max_v, "V")});

  const tech::SwitchTech& sw = tech::switch_tech(sys.node, tech::DeviceClass::Core);
  const tech::CapacitorTech cap = tech::capacitor_tech(sys.node, sys.cap_kind);
  const tech::InductorTech& ind = tech::inductor_tech(sys.inductor);
  table.add_row({"Technology node", tech::node_name(sys.node)});
  table.add_row({"R_sw (ohm*um^2)",
                 TextTable::num(sw.ron_w_ohm_m * sw.area_per_w_m * 1e12, 3)});
  table.add_row({"L density (nH/mm^2)", TextTable::num(ind.density_h_m2 * 1e3, 3)});
  table.add_row({"C density (nF/mm^2), " + std::string(tech::cap_kind_name(sys.cap_kind)),
                 TextTable::num(cap.density_f_m2 * 1e3, 3)});

  const pdn::PdnParams& p = cs.pdn;
  table.add_row({"Off-chip PDN R (board+pkg+C4)",
                 TextTable::si(p.board.r_ohm + p.package.r_ohm + p.c4.r_ohm, "ohm")});
  table.add_row({"Off-chip PDN L",
                 TextTable::si(p.board.l_h + p.package.l_h + p.c4.l_h, "H")});
  table.add_row({"On-chip grid R / L",
                 TextTable::si(p.grid_r_ohm, "ohm") + " / " + TextTable::si(p.grid_l_h, "H")});
  table.add_row({"On-die decap", TextTable::si(p.ondie_decap_f, "F")});

  std::printf("%s\n", table.render().c_str());
  return 0;
}
