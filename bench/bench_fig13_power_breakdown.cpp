// Reproduces Fig. 13: power-delivery-subsystem optimization — the loss
// breakdown and end-to-end efficiency of each PDS design, with voltage
// guardbands taken from the worst-case dynamic noise of Fig. 10.
//
// Paper headline: "The optimal PDS solution by Ivory achieves a 9.5% power
// efficiency improvement over the previous off-chip VRM-based PDS, without
// any performance loss."
#include <cstdio>

#include "common/table.hpp"
#include "support/case_study.hpp"

using namespace ivory;
using namespace ivory::bench;
using core::PdsBreakdown;

int main() {
  std::printf("=== Fig. 13: power delivery system optimization ===\n\n");
  const CaseStudy cs;

  TextTable table({"PDS design", "guardband", "core useful (W)", "guardband loss",
                   "grid IR", "PDN IR", "IVR loss", "VRM loss", "total in (W)",
                   "efficiency (%)"});

  double eff_offchip = 0.0, eff_best = 0.0;
  std::string best_name;
  for (VrConfig config : kAllVrConfigs) {
    const int n_dom = vr_config_domains(config);
    core::DseResult ivr;
    if (n_dom > 0)
      ivr = core::optimize_topology(cs.sys, core::IvrTopology::SwitchedCapacitor, n_dom);

    // Guardband = worst-case supply noise across all benchmarks.
    const double guard = guardband_for(cs, config, ivr);

    const PdsBreakdown b =
        n_dom == 0
            ? core::evaluate_pds_offchip(cs.sys, cs.pdn, cs.v_core_nom, guard)
            : core::evaluate_pds_ivr(cs.sys, cs.pdn, ivr, cs.v_core_nom, guard);

    table.add_row({vr_config_name(config), TextTable::si(guard, "V"),
                   TextTable::num(b.p_core_useful_w, 3), TextTable::num(b.p_guardband_w, 3),
                   TextTable::num(b.p_grid_ir_w, 3), TextTable::num(b.p_pdn_ir_w, 3),
                   TextTable::num(b.p_ivr_loss_w, 3), TextTable::num(b.p_vrm_loss_w, 3),
                   TextTable::num(b.p_total_w, 4), TextTable::num(b.efficiency * 100.0, 3)});

    if (n_dom == 0) eff_offchip = b.efficiency;
    if (b.efficiency > eff_best) {
      eff_best = b.efficiency;
      best_name = vr_config_name(config);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Optimal PDS: %s. Power-efficiency improvement over the off-chip VRM PDS: "
              "%.1f points\n(paper: 9.5%%).\n",
              best_name.c_str(), (eff_best - eff_offchip) * 100.0);
  return 0;
}
