// Extension bench: fast per-core DVFS enabled by distributed IVRs (the
// paper's closing remark: "Fast DVFS could yield further improvement and can
// also be explored using Ivory, but detailed evaluation is left for future
// work").
//
// Compares core energy when the supply tracks per-SM activity at three
// reaction speeds: no DVFS (fixed nominal V), slow DVFS (off-chip VRM class,
// ~10 us reaction, chip-wide rail), and fast per-core DVFS (IVR class,
// ~100 ns reaction, per-SM rails). Voltage floor follows the classic
// V ~ f ~ activity model with a 0.6 V minimum.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"

using namespace ivory;

namespace {

// Required voltage for an activity level: linear V-f down to a floor.
double v_required(double activity) {
  const double v_nom = 1.0, v_min = 0.6;
  return std::clamp(v_nom * (0.55 + 0.45 * activity), v_min, v_nom);
}

// Core energy over the trace when the supply reacts with `t_react` and is
// shared by `shared` SMs (the rail must satisfy the fastest of them).
double core_energy(const std::vector<workload::PowerTrace>& traces, double dt, double t_react,
                   bool per_core) {
  const std::size_t n = traces[0].watts.size();
  const std::size_t lag = std::max<std::size_t>(static_cast<std::size_t>(t_react / dt), 1);
  double energy = 0.0;
  const int n_sm = static_cast<int>(traces.size());

  // Activity per SM per sample (normalized to its mean power).
  std::vector<std::vector<double>> act(traces.size());
  for (std::size_t s = 0; s < traces.size(); ++s) {
    act[s].resize(n);
    double avg = traces[s].average();
    for (std::size_t k = 0; k < n; ++k) act[s][k] = traces[s].watts[k] / (1.6 * avg);
  }

  std::vector<double> v_now(traces.size(), 1.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Update setpoints every `lag` samples using the max activity seen in
    // the last window (the governor cannot predict, only follow).
    if (k % lag == 0) {
      for (std::size_t s = 0; s < traces.size(); ++s) {
        double peak = 0.0;
        const std::size_t from = k >= lag ? k - lag : 0;
        for (std::size_t j = from; j <= k && j < n; ++j) peak = std::max(peak, act[s][j]);
        v_now[s] = v_required(peak);
      }
      if (!per_core) {
        // A shared rail must satisfy the hungriest SM.
        const double vmax = *std::max_element(v_now.begin(), v_now.end());
        std::fill(v_now.begin(), v_now.end(), vmax);
      }
    }
    for (int s = 0; s < n_sm; ++s) {
      // Undervolted throttling is not allowed: if activity needs more than
      // the rail provides, the core stalls and re-runs (energy at the rail,
      // time ignored — we compare energy at iso-work).
      const double v = std::max(v_now[static_cast<std::size_t>(s)],
                                v_required(act[static_cast<std::size_t>(s)][k]));
      const double p = traces[static_cast<std::size_t>(s)].watts[k] * (v * v) / (1.0 * 1.0);
      energy += p * dt;
    }
  }
  return energy;
}

}  // namespace

int main() {
  std::printf("=== Extension: fast per-core DVFS through distributed IVRs ===\n\n");
  const double dt = 10e-9, duration = 100e-6;

  TextTable table({"benchmark", "no DVFS (uJ)", "slow chip-wide (uJ)", "fast per-core (uJ)",
                   "fast saves vs none", "fast saves vs slow"});
  double total_none = 0.0, total_slow = 0.0, total_fast = 0.0;
  for (workload::Benchmark bench : workload::kAllBenchmarks) {
    const auto traces = workload::generate_gpu_traces(bench, 4, 5.0, duration, dt);
    const double e_none = core_energy(traces, dt, duration, /*per_core=*/false);
    const double e_slow = core_energy(traces, dt, 10e-6, /*per_core=*/false);
    const double e_fast = core_energy(traces, dt, 100e-9, /*per_core=*/true);
    total_none += e_none;
    total_slow += e_slow;
    total_fast += e_fast;
    table.add_row({workload::benchmark_name(bench), TextTable::num(e_none * 1e6, 4),
                   TextTable::num(e_slow * 1e6, 4), TextTable::num(e_fast * 1e6, 4),
                   TextTable::num((1.0 - e_fast / e_none) * 100.0, 3) + " %",
                   TextTable::num((1.0 - e_fast / e_slow) * 100.0, 3) + " %"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Across all benchmarks: fast per-core DVFS saves %.1f%% of core energy vs a\n"
              "fixed rail and %.1f%% vs slow chip-wide DVFS — on top of the delivery\n"
              "efficiency gains of Fig. 13. (IVR reaction time from the dynamic model:\n"
              "one interleave sub-cycle, ~1-10 ns; off-chip VRM: ~10 us.)\n",
              (1.0 - total_fast / total_none) * 100.0, (1.0 - total_fast / total_slow) * 100.0);
  return 0;
}
