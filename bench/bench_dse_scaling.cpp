// Thread-scaling benchmark of the parallel DSE engine.
//
// Times the full design-space sweep (`explore()` on the GPU case study, plus
// the hierarchical two-stage sweep) at 1, 2, 4 and hardware_concurrency
// threads, verifies the parallel result vectors are byte-identical to the
// serial ones, and writes the measurements to BENCH_dse.json so the perf
// trajectory is tracked across PRs.
//
// Usage: bench_dse_scaling [--smoke] [output.json]   (default: BENCH_dse.json)
//   --smoke  single rep, thread counts {1, 2} only (the perf-smoke ctest label)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/ivory.hpp"
#include "core/report_json.hpp"
#include "scenario/scenario.hpp"

using namespace ivory;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

bool identical(const core::DseResult& a, const core::DseResult& b) {
  return a.topology == b.topology && a.label == b.label &&
         a.n_distributed == b.n_distributed && a.feasible == b.feasible &&
         bits(a.efficiency) == bits(b.efficiency) &&
         bits(a.ripple_pp_v) == bits(b.ripple_pp_v) && bits(a.f_sw_hz) == bits(b.f_sw_hz) &&
         bits(a.area_m2) == bits(b.area_m2) && a.n_interleave == b.n_interleave;
}

bool identical(const std::vector<core::DseResult>& a, const std::vector<core::DseResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!identical(a[i], b[i])) return false;
  return true;
}

// Best-of-reps wall time of `fn` (first call warms caches and the pool).
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best, seconds_since(t0));
  }
  return best;
}

struct ScalePoint {
  unsigned threads = 1;
  double explore_s = 0.0;
  double two_stage_s = 0.0;
  double scenario_s = 0.0;
  double scenario_cells_per_s = 0.0;
  double funnel_s = 0.0;
  double funnel_cands_per_s = 0.0;
  bool identical_to_serial = false;
};

/// Residency-sweep workload for the scenario phase: hybrid delivery over the
/// three-state race-to-halt preset. Smoke shortens the traces, not the grid,
/// so the per-cell parallel_map shape stays representative.
scenario::ScenarioSpec scenario_workload(bool smoke) {
  scenario::ScenarioSpec spec;
  spec.name = "race-to-halt";
  spec.states = workload::residency_preset("race-to-halt");
  scenario::DomainSpec core_dom, uncore_dom;
  core_dom.name = "core";
  core_dom.power_frac = 0.75;
  core_dom.delivery = scenario::Delivery::OnChipIvr;
  uncore_dom.name = "uncore";
  uncore_dom.power_frac = 0.25;
  uncore_dom.delivery = scenario::Delivery::OffChipVrm;
  spec.domains = {core_dom, uncore_dom};
  spec.duration_s = smoke ? 4e-6 : 20e-6;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_dse.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out_path = argv[i];
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("=== DSE engine thread scaling (hardware threads: %u)%s ===\n\n", hw,
              smoke ? " (smoke)" : "");

  const core::SystemParams sys;  // GPU case study, paper Table 1.
  const int kReps = smoke ? 1 : 3;

  // Thread counts to sweep: 1, 2, 4, hardware (deduplicated, ascending).
  // Smoke keeps just {1, 2}: enough to exercise the pool and the
  // identical-to-serial check without burning tier-1 time.
  std::vector<unsigned> counts = smoke ? std::vector<unsigned>{1, 2}
                                       : std::vector<unsigned>{1, 2, 4, hw};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  // Warm the memo caches (charge vectors, tech tables) so every thread count
  // measures sweep work, not one-time derivations.
  par::set_global_threads(1);
  SweepReport exhaustive_rep;
  const std::vector<core::DseResult> reference =
      core::explore(sys, core::OptTarget::Efficiency, &exhaustive_rep);
  const core::TwoStageResult two_ref = core::optimize_two_stage(sys, 4);
  const scenario::ScenarioSpec spec = scenario_workload(smoke);
  const std::string scenario_ref =
      scenario::to_json(
          scenario::evaluate_scenario(sys, core::IvrTopology::SwitchedCapacitor, 4, spec))
          .write_canonical();

  // Multi-fidelity funnel phase: screen the dense grid, extract the Pareto
  // front, simulate only the frontier. Timed cold (stage-3 cache cleared per
  // rep) so the wall-time ratio against the exhaustive explore() is honest;
  // the canonical-JSON byte-identity check covers every thread count. Smoke
  // halves the grid density, keeping the funnel shape while trimming tier-1
  // time.
  const core::FunnelSpec funnel_spec = core::FunnelSpec{}.scaled(smoke ? 0.5 : 1.0);
  core::funnel_sim_cache_clear();
  const core::ParetoFront funnel_ref = core::funnel_explore(sys, funnel_spec);
  const std::string funnel_ref_json = core::to_json(funnel_ref).write_canonical();
  const double funnel_cands = static_cast<double>(funnel_ref.stats.n_screened);

  std::vector<ScalePoint> points;
  for (unsigned n : counts) {
    par::set_global_threads(n);
    ScalePoint p;
    p.threads = n;
    std::vector<core::DseResult> got;
    std::string scenario_got, funnel_got;
    p.explore_s = time_best(kReps, [&] { got = core::explore(sys); });
    p.two_stage_s = time_best(kReps, [&] { (void)core::optimize_two_stage(sys, 4); });
    p.scenario_s = time_best(kReps, [&] {
      scenario_got = scenario::to_json(scenario::evaluate_scenario(
                                           sys, core::IvrTopology::SwitchedCapacitor, 4, spec))
                         .write_canonical();
    });
    p.funnel_s = time_best(kReps, [&] {
      core::funnel_sim_cache_clear();
      funnel_got = core::to_json(core::funnel_explore(sys, funnel_spec)).write_canonical();
    });
    p.funnel_cands_per_s = funnel_cands / p.funnel_s;
    const double n_cells = static_cast<double>(spec.states.size() * spec.domains.size());
    p.scenario_cells_per_s = n_cells / p.scenario_s;
    p.identical_to_serial =
        identical(reference, got) && scenario_got == scenario_ref && funnel_got == funnel_ref_json;
    points.push_back(p);
  }
  par::set_global_threads(1);

  const double serial_explore = points.front().explore_s;
  const double serial_two_stage = points.front().two_stage_s;

  TextTable table({"threads", "explore()", "speedup", "two-stage", "speedup", "scenario",
                   "cells/s", "funnel", "cands/s", "identical"});
  for (const ScalePoint& p : points) {
    table.add_row({std::to_string(p.threads), TextTable::si(p.explore_s, "s"),
                   TextTable::num(serial_explore / p.explore_s, 2),
                   TextTable::si(p.two_stage_s, "s"),
                   TextTable::num(serial_two_stage / p.two_stage_s, 2),
                   TextTable::si(p.scenario_s, "s"),
                   TextTable::num(p.scenario_cells_per_s, 1),
                   TextTable::si(p.funnel_s, "s"),
                   TextTable::num(p.funnel_cands_per_s, 0),
                   p.identical_to_serial ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  const double exhaustive_cands =
      static_cast<double>(exhaustive_rep.n_evaluated == 0 ? 1 : exhaustive_rep.n_evaluated);
  std::printf("funnel: %.0f candidates screened -> frontier %llu "
              "(%.0fx the exhaustive grid's %zu candidates; wall-time ratio %.2fx)\n\n",
              funnel_cands, static_cast<unsigned long long>(funnel_ref.stats.frontier_size),
              funnel_cands / exhaustive_cands, exhaustive_rep.n_evaluated,
              points.front().funnel_s / serial_explore);

  bool all_identical = true;
  for (const ScalePoint& p : points) all_identical = all_identical && p.identical_to_serial;
  if (!all_identical)
    std::printf("ERROR: parallel explore() diverged from the serial baseline!\n");
  if (hw < 4)
    std::printf("Note: only %u hardware thread(s) available — speedups are bounded by the\n"
                "machine, not the engine; rerun on a multi-core host for the scaling curve.\n",
                hw);
  (void)two_ref;

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("ERROR: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"dse_scaling\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(f, "  \"reps\": %d,\n", kReps);
  std::fprintf(f, "  \"all_identical_to_serial\": %s,\n", all_identical ? "true" : "false");
  std::fprintf(f, "  \"funnel\": {\"candidates_screened\": %.0f, \"frontier_size\": %llu, "
               "\"exhaustive_candidates\": %zu, \"screen_ratio\": %.1f, "
               "\"wall_time_vs_explore\": %.3f},\n",
               funnel_cands, static_cast<unsigned long long>(funnel_ref.stats.frontier_size),
               exhaustive_rep.n_evaluated, funnel_cands / exhaustive_cands,
               points.front().funnel_s / serial_explore);
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"explore_s\": %.6e, \"explore_speedup\": %.3f, "
                 "\"two_stage_s\": %.6e, \"two_stage_speedup\": %.3f, "
                 "\"scenario_s\": %.6e, \"scenario_cells_per_s\": %.3f, "
                 "\"funnel_s\": %.6e, \"funnel_candidates_per_s\": %.0f, "
                 "\"identical_to_serial\": %s}%s\n",
                 p.threads, p.explore_s, serial_explore / p.explore_s, p.two_stage_s,
                 serial_two_stage / p.two_stage_s, p.scenario_s, p.scenario_cells_per_s,
                 p.funnel_s, p.funnel_cands_per_s,
                 p.identical_to_serial ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("Wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
