// Reproduces Fig. 9: transient voltage response validation of (a) the
// cycle-by-cycle model and (b) the in-cycle model against switch-level
// simulation of the identical converter.
#include <cmath>
#include <cstdio>

#include "common/fft.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/ivory.hpp"

using namespace ivory;

namespace {

core::ScDesign converter() {
  core::ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 2;
  d.m = 1;
  d.c_fly_f = 100e-9;
  d.c_out_f = 100e-9;
  // Strong switches: their on-resistance must stay well below the fly cap's
  // impedance at the highest validated noise frequency, or the fly is
  // R-isolated and stops decoupling (a real effect, outside the in-cycle
  // model's scope).
  d.g_tot_s = 2000.0;
  d.f_sw_hz = 20e6;
  return d;
}

spice::TranResult simulate(const core::ScDesign& d, const spice::Waveform& load,
                           double tstop, spice::NodeId* vout_node, spice::Circuit& ckt) {
  const core::ScTopology topo = core::make_topology(d.n, d.m, d.family);
  const core::ChargeVectors cv = core::charge_vectors(topo);
  const core::ScNetlistResult nodes =
      core::build_sc_netlist(ckt, topo, cv, 3.3, d.c_fly_f, d.g_tot_s, d.f_sw_hz, d.c_out_f);
  ckt.add_isource("iload", nodes.vout, spice::kGround, load);
  spice::TranSpec spec;
  spec.tstop = tstop;
  spec.dt = 1.0 / (400.0 * d.f_sw_hz);
  spec.use_ic = true;
  spec.method = spice::Integrator::BackwardEuler;
  spec.record_nodes = {nodes.vout};
  *vout_node = nodes.vout;
  return spice::transient(ckt, spec);
}

// Samples a recorded simulation waveform at time t (nearest step).
double sample_at(const spice::TranResult& res, spice::NodeId node, double t) {
  const std::vector<double>& v = res.at(node);
  std::size_t lo = 0, hi = res.time.size() - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    (res.time[mid] <= t ? lo : hi) = mid;
  }
  return v[lo];
}

}  // namespace

int main() {
  std::printf("=== Fig. 9: transient response validation vs switch-level simulation ===\n\n");
  const core::ScDesign d = converter();

  // ---- (a) cycle-by-cycle: response to a load current step ----
  {
    const double tstop = 40e-6;
    const double dt = 5e-9;
    const double t_step = 20e-6;
    const spice::Waveform load = spice::Waveform::custom(
        [t_step](double t) { return t < t_step ? 0.1 : 0.25; });
    std::vector<double> trace(static_cast<std::size_t>(tstop / dt));
    for (std::size_t k = 0; k < trace.size(); ++k)
      trace[k] = load(static_cast<double>(k) * dt);

    const core::DynWaveform model = core::sc_cycle_response(
        d, 3.3, 0.0, trace, dt, core::ScControl::FreeRunning);
    spice::Circuit ckt;
    spice::NodeId vout;
    const spice::TranResult sim = simulate(d, load, tstop, &vout, ckt);

    TextTable table({"t (us)", "cycle model (V)", "simulation (V)", "delta (mV)"});
    double worst = 0.0;
    for (double t_us : {5.0, 15.0, 20.5, 21.0, 22.0, 25.0, 35.0}) {
      const double t = t_us * 1e-6;
      const double vm = model.v[static_cast<std::size_t>(t / dt)];
      const double vs = sample_at(sim, vout, t);
      worst = std::max(worst, std::fabs(vm - vs));
      table.add_row({TextTable::num(t_us, 3), TextTable::num(vm, 4), TextTable::num(vs, 4),
                     TextTable::num((vm - vs) * 1e3, 2)});
    }
    std::printf("--- (a) cycle-by-cycle model, 0.1 -> 0.25 A load step at 20 us ---\n%s",
                table.render().c_str());
    std::printf("worst |delta| at probe points: %.1f mV\n\n", worst * 1e3);
  }

  // ---- (b) in-cycle: response to load noise above the switching frequency ----
  {
    // 4.65x the converter's 20 MHz — deliberately NOT a harmonic of f_sw so
    // the FFT bin isolates the tone from the converter's own ripple.
    const double f_noise = 93e6;
    const double amp = 0.05;
    const double tstop = 8e-6;
    const double dt = 0.5e-9;
    const spice::Waveform load = spice::Waveform::custom([=](double t) {
      return 0.1 + amp * std::sin(2.0 * pi * f_noise * t);
    });
    std::vector<double> trace(static_cast<std::size_t>(tstop / dt));
    for (std::size_t k = 0; k < trace.size(); ++k)
      trace[k] = load(static_cast<double>(k) * dt);

    // In-cycle model: HF deviation on the connected capacitance.
    const std::vector<double> hf =
        core::in_cycle_response(trace, dt, 1.0 / d.f_sw_hz, core::sc_output_hf_cap(d));

    // The switched network is linear time-varying and the clock pattern is
    // time-driven, so running the identical simulation with and without the
    // tone and subtracting isolates the tone response exactly (switching
    // ripple and charge-sharing glitches cancel by superposition).
    spice::Circuit ckt_a, ckt_b;
    spice::NodeId vout_a, vout_b;
    const spice::TranResult sim_with = simulate(d, load, tstop, &vout_a, ckt_a);
    const spice::TranResult sim_without =
        simulate(d, spice::Waveform::dc(0.1), tstop, &vout_b, ckt_b);
    const std::vector<double>& va = sim_with.at(vout_a);
    const std::vector<double>& vb = sim_without.at(vout_b);
    const double dt_sim = sim_with.time[1] - sim_with.time[0];
    std::vector<double> settled;
    for (std::size_t k = va.size() / 2; k < va.size() && k < vb.size(); ++k)
      settled.push_back(va[k] - vb[k]);
    const auto spectrum = amplitude_spectrum(settled, 1.0 / dt_sim);
    const double sim_amp = spectrum_amplitude_at(spectrum, f_noise);

    // The in-cycle model's prediction for the same tone, also by FFT.
    std::vector<double> hf_settled(hf.begin() + static_cast<long>(hf.size() / 2), hf.end());
    const auto model_spectrum = amplitude_spectrum(hf_settled, 1.0 / dt);
    const double model_tone = spectrum_amplitude_at(model_spectrum, f_noise);

    const double analytic = amp / (2.0 * pi * f_noise * core::sc_output_hf_cap(d));
    TextTable table({"quantity", "in-cycle model", "simulation", "analytic I/(wC)"});
    table.add_row({"93 MHz tone amplitude", TextTable::si(model_tone, "V"),
                   TextTable::si(sim_amp, "V"), TextTable::si(analytic, "V")});
    std::printf("--- (b) in-cycle model, 93 MHz load noise on a 20 MHz converter ---\n%s",
                table.render().c_str());
    std::printf("ratio model/simulation: %.2f\n\n", model_tone / sim_amp);
  }

  // ---- (c) reference regulation: vref step vs closed-loop circuit ----
  {
    core::ScDesign dr = converter();
    dr.c_fly_f = 20e-9;   // Fine charge packets for hysteretic control.
    dr.c_out_f = 500e-9;
    const double dt = 2e-9, tstop = 12e-6;
    const std::size_t n = static_cast<std::size_t>(tstop / dt);
    TextTable table({"vref", "cycle model mean (V)", "closed-loop sim mean (V)", "delta (mV)"});
    for (double vref : {0.80, 0.90}) {
      const core::DynWaveform model = core::sc_cycle_response_traces(
          dr, std::vector<double>(n, 3.3 / 1.65), std::vector<double>(n, vref),
          std::vector<double>(n, 0.05), dt);
      // Closed-loop switch-level simulation via gated switches.
      const core::ScTopology topo = core::make_topology(dr.n, dr.m, dr.family);
      const core::ChargeVectors cv = core::charge_vectors(topo);
      spice::Circuit ckt;
      const core::ScNetlistResult nodes = core::build_sc_netlist_regulated(
          ckt, topo, cv, spice::Waveform::dc(2.0), vref, 2e-3, dr.c_fly_f, dr.g_tot_s,
          dr.f_sw_hz, dr.c_out_f);
      ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(0.05));
      spice::TranSpec spec;
      spec.tstop = tstop;
      spec.dt = 1.0 / (200.0 * dr.f_sw_hz);
      spec.use_ic = true;
      spec.method = spice::Integrator::BackwardEuler;
      spec.record_nodes = {nodes.vout};
      const spice::TranResult res = spice::transient(ckt, spec);
      const std::vector<double>& vs = res.at(nodes.vout);
      std::vector<double> sim_tail(vs.end() - static_cast<long>(vs.size() / 4), vs.end());
      std::vector<double> mdl_tail(model.v.end() - static_cast<long>(model.v.size() / 4),
                                   model.v.end());
      table.add_row({TextTable::num(vref, 3), TextTable::num(mean(mdl_tail), 4),
                     TextTable::num(mean(sim_tail), 4),
                     TextTable::num((mean(mdl_tail) - mean(sim_tail)) * 1e3, 2)});
    }
    std::printf("--- (c) reference regulation (DVFS setpoints) vs closed-loop circuit ---\n%s\n",
                table.render().c_str());
  }

  std::printf("Expected shape: the cycle model tracks droop and recovery within a few mV;\n"
              "the in-cycle model reproduces the above-f_sw ripple amplitude; the\n"
              "regulated means agree across reference setpoints (line and load regulation\n"
              "are exercised in tests/test_regulation.cpp).\n");
  return 0;
}
