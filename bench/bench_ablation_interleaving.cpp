// Ablation: interleaving depth of the optimal SC design (DESIGN.md
// design-choice study).
//
// Interleaving slices the converter: output ripple falls ~1/N while the
// output impedance (and thus the conversion efficiency) stays put; only the
// replicated peripherals nibble at efficiency. This is why the case-study
// optimum is heavily interleaved (paper: 32x).
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"

using namespace ivory;
using namespace ivory::core;

int main() {
  std::printf("=== Ablation: SC interleaving depth ===\n\n");
  SystemParams sys;
  const DseResult base = optimize_topology(sys, IvrTopology::SwitchedCapacitor, 1);
  if (!base.feasible) {
    std::printf("optimizer produced no feasible design\n");
    return 1;
  }
  const double i_load = sys.p_load_w / sys.vout_v;

  TextTable table({"interleave N", "ripple (mV)", "efficiency (%)", "meets 10 mV budget"});
  for (int n_il : {1, 2, 4, 8, 16, 32, 64}) {
    ScDesign d = base.sc;
    d.n_interleave = n_il;
    const ScRegulated reg = analyze_sc_regulated(d, sys.vin_v, sys.vout_v, i_load);
    if (!reg.feasible) continue;
    const ScAnalysis& a = reg.analysis;
    table.add_row({std::to_string(n_il), TextTable::num(a.ripple_pp_v * 1e3, 3),
                   TextTable::num(a.efficiency * 100.0, 4),
                   a.ripple_pp_v <= sys.ripple_max_v ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: ripple ~ 1/N; efficiency nearly flat (slight peripheral\n"
              "cost per added slice). The optimizer picked N = %d.\n", base.n_interleave);
  return 0;
}
