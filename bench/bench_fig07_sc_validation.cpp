// Reproduces Fig. 7: SC-converter efficiency validation.
//
// Left plot: Ivory vs silicon measurements of a 32 nm SOI reconfigurable SC
// converter in its 3:2 and 2:1 configurations (efficiency vs regulated
// output voltage). Right plot: Ivory vs circuit simulation of 2:1 and 3:1
// designs in low and high capacitor-density processes.
#include <cstdio>

#include "common/table.hpp"
#include "core/ivory.hpp"
#include "support/refdata.hpp"

using namespace ivory;
using ivory::bench::CurvePoint;

namespace {

// An Ivory design matched to the published 32 nm part: ~1 nF-class fly
// capacitance, sized so the efficiency peak lands where the silicon's does.
core::ScDesign part_32nm(int n, int m) {
  core::ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::Mim;  // The SOI part's custom low-parasitic caps.
  d.n = n;
  d.m = m;
  d.family = core::ScFamily::Ladder;
  d.c_fly_f = 20e-9;
  d.c_out_f = 5e-9;
  d.g_tot_s = 12.0;
  d.f_sw_hz = 250e6;
  d.n_interleave = 2;
  return d;
}

void compare(const char* title, const std::vector<CurvePoint>& measured,
             const core::ScDesign& d, double vin, double i_load) {
  std::printf("--- %s ---\n", title);
  TextTable table({"Vout (V)", "measured eff", "Ivory eff", "delta"});
  double worst = 0.0;
  int compared = 0;
  double prev_y = 0.0;
  bool collapsed = false;
  for (const CurvePoint& p : measured) {
    // Past the efficiency cliff the silicon is non-functional (aggravated
    // leakage); the paper excludes these points and so do we.
    if (p.y < prev_y - 0.05) collapsed = true;
    prev_y = p.y;
    const core::ScRegulated r = core::analyze_sc_regulated(d, vin, p.x, i_load);
    if (collapsed || !r.feasible) {
      table.add_row({TextTable::num(p.x, 3), TextTable::num(p.y, 3), "(cliff)", "-"});
      continue;
    }
    const double delta = r.analysis.efficiency - p.y;
    worst = std::max(worst, std::fabs(delta));
    ++compared;
    table.add_row({TextTable::num(p.x, 3), TextTable::num(p.y, 3),
                   TextTable::num(r.analysis.efficiency, 3), TextTable::num(delta, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("functional-range points compared: %d, worst |delta|: %.3f\n\n", compared, worst);
}

}  // namespace

int main() {
  std::printf("=== Fig. 7: efficiency validation for SC converters ===\n\n");

  // Left: 32 nm SOI measurements (1.8 V rail).
  compare("3:2 config vs 32nm silicon", ivory::bench::measured_sc_32nm_3to2(), part_32nm(3, 2),
          1.8, 0.02);
  compare("2:1 config vs 32nm silicon", ivory::bench::measured_sc_32nm_2to1(), part_32nm(2, 1),
          1.8, 0.02);

  // Right: low vs high capacitor-density processes at 10 nm-class nodes;
  // the circuit-simulation baseline here is ivory_spice steady state.
  std::printf("--- 2:1 and 3:1, low (MOS) vs high (deep-trench) cap density, 10nm ---\n");
  TextTable table({"design", "cap", "Ivory eff", "spice-sim eff", "delta"});
  for (int n : {2, 3}) {
    for (tech::CapKind kind : {tech::CapKind::MosCap, tech::CapKind::DeepTrench}) {
      core::ScDesign d;
      d.node = tech::Node::n10;
      d.cap_kind = kind;
      d.n = n;
      d.m = 1;
      d.family = core::ScFamily::Ladder;
      d.c_fly_f = 4e-9;
      d.c_out_f = 1e-9;
      d.g_tot_s = 20.0;
      d.f_sw_hz = 100e6;
      const double vin = 1.5;
      const double i_load = 0.05;
      const core::ScAnalysis a = core::analyze_sc(d, vin, i_load);

      // Circuit-simulated efficiency: average output power / input power over
      // the settled tail of a switch-level transient.
      const core::ScTopology topo = core::make_topology(d.n, d.m, d.family);
      const core::ChargeVectors cv = core::charge_vectors(topo);
      spice::Circuit ckt;
      const core::ScNetlistResult nodes = core::build_sc_netlist(
          ckt, topo, cv, vin, d.c_fly_f, d.g_tot_s, d.f_sw_hz, d.c_out_f);
      ckt.add_isource("iload", nodes.vout, spice::kGround, spice::Waveform::dc(i_load));
      spice::TranSpec spec;
      spec.tstop = 60.0 / d.f_sw_hz;
      spec.dt = 1.0 / (200.0 * d.f_sw_hz);
      spec.use_ic = true;
      spec.method = spice::Integrator::BackwardEuler;
      spec.record_nodes = {nodes.vout};
      const spice::TranResult res = spice::transient(ckt, spec);
      const std::vector<double>& v = res.at(nodes.vout);
      double vo = 0.0;
      int cnt = 0;
      for (std::size_t k = v.size() * 3 / 4; k < v.size(); ++k) {
        vo += v[k];
        ++cnt;
      }
      vo /= cnt;
      // Simulated conversion chain: same input charge ratio, same switching
      // overheads as the model's estimate for everything the netlist does
      // not capture (gate drive is not in the switch-level netlist).
      const double p_out_sim = vo * i_load;
      const double p_in_sim = vin * topo.ideal_ratio() * i_load + a.p_gate_w +
                              a.p_bottom_plate_w + a.p_leakage_w + a.p_peripheral_w;
      const double eff_sim = p_out_sim / p_in_sim;

      table.add_row({std::to_string(n) + ":1", tech::cap_kind_name(kind),
                     TextTable::num(a.efficiency, 3), TextTable::num(eff_sim, 3),
                     TextTable::num(a.efficiency - eff_sim, 2)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: Ivory tracks measurement/simulation within a few percent over\n"
              "the functional range; high-density caps lift efficiency at both ratios.\n");
  return 0;
}
