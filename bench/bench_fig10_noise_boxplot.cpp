// Reproduces Fig. 10: box-plot statistics of core supply voltage across the
// Rodinia/CUDA benchmarks and the four VR configurations.
//
// Paper shape: distributed IVRs tighten the voltage distribution on every
// benchmark; the off-chip VRM configuration is the widest.
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "support/case_study.hpp"

using namespace ivory;
using namespace ivory::bench;

int main() {
  std::printf("=== Fig. 10: voltage noise across benchmarks and VR configurations ===\n\n");
  const CaseStudy cs;

  // Optimize each IVR distribution once.
  core::DseResult ivr_by_domains[5];
  for (int n : {1, 2, 4})
    ivr_by_domains[n] =
        core::optimize_topology(cs.sys, core::IvrTopology::SwitchedCapacitor, n);

  TextTable table({"benchmark", "VR config", "min (V)", "q1", "median", "q3", "max (V)",
                   "p-p (mV)"});
  double widest[4] = {0, 0, 0, 0};
  int cfg_idx;
  for (workload::Benchmark bench : workload::kAllBenchmarks) {
    cfg_idx = 0;
    for (VrConfig config : kAllVrConfigs) {
      const int n_dom = vr_config_domains(config);
      const core::DseResult& ivr = ivr_by_domains[n_dom == 0 ? 1 : n_dom];
      const auto currents = sm_current_traces(cs, bench, cs.sys.vout_v);
      const std::vector<double> wave = supply_waveform(cs, config, ivr, currents);
      const std::size_t skip = wave.size() * 3 / 20;
      const std::vector<double> tail(wave.begin() + static_cast<long>(skip), wave.end());
      const BoxStats b = box_stats(tail);
      widest[cfg_idx] = std::max(widest[cfg_idx], b.maximum - b.minimum);
      ++cfg_idx;
      table.add_row({workload::benchmark_name(bench), vr_config_name(config),
                     TextTable::num(b.minimum, 4), TextTable::num(b.q1, 4),
                     TextTable::num(b.median, 4), TextTable::num(b.q3, 4),
                     TextTable::num(b.maximum, 4),
                     TextTable::num((b.maximum - b.minimum) * 1e3, 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Worst-case noise per configuration (the guardband each needs):\n");
  cfg_idx = 0;
  for (VrConfig config : kAllVrConfigs)
    std::printf("  %-12s %6.1f mV\n", vr_config_name(config), widest[cfg_idx++] * 1e3);
  std::printf("\nExpected shape: lower voltage noise with distributed IVRs on every "
              "benchmark;\nthe 4-distributed configuration is the tightest.\n");
  return 0;
}
