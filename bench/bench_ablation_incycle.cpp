// Ablation: what the in-cycle model contributes on top of the cycle-by-cycle
// model (DESIGN.md design-choice study).
//
// The cycle-by-cycle model is blind to load-current content above the
// sub-cycle rate. For a converter with lean output decoupling driven by a
// spiky GPU trace, that blindness undersizes the noise estimate; the
// combined model recovers it. Switch-level simulation of the same converter
// provides ground truth.
#include <cstdio>

#include "common/statistics.hpp"
#include "common/table.hpp"
#include "support/case_study.hpp"

using namespace ivory;
using namespace ivory::bench;

namespace {

core::ScDesign lean_converter() {
  core::ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 2;
  d.m = 1;
  d.c_fly_f = 100e-9;
  d.c_out_f = 100e-9;
  d.g_tot_s = 2000.0;
  d.f_sw_hz = 20e6;
  return d;
}

double settled_pp(const std::vector<double>& v) {
  const std::size_t skip = v.size() * 3 / 20;
  return peak_to_peak(std::vector<double>(v.begin() + static_cast<long>(skip), v.end()));
}

}  // namespace

int main() {
  std::printf("=== Ablation: cycle-by-cycle only vs combined (+ in-cycle) model ===\n");
  std::printf("2:1 SC, 100 nF fly + 100 nF out, free-running; spiky per-SM GPU traces\n"
              "scaled to a 0.3 A average load. Ground truth: switch-level simulation.\n\n");

  CaseStudy cs;
  cs.trace_duration_s = 20e-6;
  cs.trace_dt_s = 1e-9;
  const core::ScDesign d = lean_converter();

  TextTable table({"benchmark", "cycle-only p-p (mV)", "combined p-p (mV)",
                   "spice truth (mV)", "cycle-only misses"});
  for (workload::Benchmark bench :
       {workload::Benchmark::CFD, workload::Benchmark::BFS2, workload::Benchmark::HOTSP}) {
    const auto currents = sm_current_traces(cs, bench, cs.sys.vout_v);
    std::vector<double> i_load = currents[0];
    for (double& x : i_load) x *= 0.06;  // ~0.3 A average.

    const core::DynWaveform cycle_only = core::sc_cycle_response(
        d, 3.3, 0.0, i_load, cs.trace_dt_s, core::ScControl::FreeRunning);
    const core::DynWaveform combined = core::sc_combined_response(
        d, 3.3, 0.0, i_load, cs.trace_dt_s, core::ScControl::FreeRunning);

    // Switch-level truth.
    const core::ScTopology topo = core::make_topology(d.n, d.m, d.family);
    const core::ChargeVectors cv = core::charge_vectors(topo);
    spice::Circuit ckt;
    const core::ScNetlistResult nodes =
        core::build_sc_netlist(ckt, topo, cv, 3.3, d.c_fly_f, d.g_tot_s, d.f_sw_hz, d.c_out_f);
    const std::vector<double> samples = i_load;
    const double dt = cs.trace_dt_s;
    ckt.add_isource("iload", nodes.vout, spice::kGround,
                    spice::Waveform::custom([samples, dt](double t) {
                      const std::size_t k = std::min(
                          static_cast<std::size_t>(std::max(t / dt, 0.0)), samples.size() - 1);
                      return samples[k];
                    }));
    spice::TranSpec spec;
    spec.tstop = cs.trace_duration_s;
    spec.dt = dt;
    spec.use_ic = true;
    spec.method = spice::Integrator::BackwardEuler;
    spec.record_nodes = {nodes.vout};
    const spice::TranResult res = spice::transient(ckt, spec);

    const double pp_cycle = settled_pp(cycle_only.v);
    const double pp_comb = settled_pp(combined.v);
    const double pp_true = settled_pp(res.at(nodes.vout));
    table.add_row({workload::benchmark_name(bench), TextTable::num(pp_cycle * 1e3, 3),
                   TextTable::num(pp_comb * 1e3, 3), TextTable::num(pp_true * 1e3, 3),
                   TextTable::num(1.0 - pp_cycle / pp_true, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: the combined model moves toward the switch-level truth; the\n"
              "cycle-only model undersizes the noise by the last column — the reason the\n"
              "paper pairs eq. (2) with the in-cycle model. The remaining gap is the\n"
              "converter's own charge-sharing ripple, which the static model reports\n"
              "separately (analyze_sc ripple_pp).\n");
  return 0;
}
