file(REMOVE_RECURSE
  "CMakeFiles/ivory_tech.dir/tech.cpp.o"
  "CMakeFiles/ivory_tech.dir/tech.cpp.o.d"
  "libivory_tech.a"
  "libivory_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivory_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
