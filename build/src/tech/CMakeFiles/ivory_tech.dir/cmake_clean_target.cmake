file(REMOVE_RECURSE
  "libivory_tech.a"
)
