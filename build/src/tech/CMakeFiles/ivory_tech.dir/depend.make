# Empty dependencies file for ivory_tech.
# This may be replaced when dependencies are built.
