file(REMOVE_RECURSE
  "CMakeFiles/ivory_core.dir/blocks.cpp.o"
  "CMakeFiles/ivory_core.dir/blocks.cpp.o.d"
  "CMakeFiles/ivory_core.dir/buck_model.cpp.o"
  "CMakeFiles/ivory_core.dir/buck_model.cpp.o.d"
  "CMakeFiles/ivory_core.dir/dynamic.cpp.o"
  "CMakeFiles/ivory_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/ivory_core.dir/ldo_model.cpp.o"
  "CMakeFiles/ivory_core.dir/ldo_model.cpp.o.d"
  "CMakeFiles/ivory_core.dir/optimizer.cpp.o"
  "CMakeFiles/ivory_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/ivory_core.dir/pds.cpp.o"
  "CMakeFiles/ivory_core.dir/pds.cpp.o.d"
  "CMakeFiles/ivory_core.dir/sc_model.cpp.o"
  "CMakeFiles/ivory_core.dir/sc_model.cpp.o.d"
  "CMakeFiles/ivory_core.dir/sc_topology.cpp.o"
  "CMakeFiles/ivory_core.dir/sc_topology.cpp.o.d"
  "libivory_core.a"
  "libivory_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivory_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
