# Empty dependencies file for ivory_core.
# This may be replaced when dependencies are built.
