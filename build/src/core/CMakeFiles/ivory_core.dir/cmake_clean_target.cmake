file(REMOVE_RECURSE
  "libivory_core.a"
)
