
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/blocks.cpp" "src/core/CMakeFiles/ivory_core.dir/blocks.cpp.o" "gcc" "src/core/CMakeFiles/ivory_core.dir/blocks.cpp.o.d"
  "/root/repo/src/core/buck_model.cpp" "src/core/CMakeFiles/ivory_core.dir/buck_model.cpp.o" "gcc" "src/core/CMakeFiles/ivory_core.dir/buck_model.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/core/CMakeFiles/ivory_core.dir/dynamic.cpp.o" "gcc" "src/core/CMakeFiles/ivory_core.dir/dynamic.cpp.o.d"
  "/root/repo/src/core/ldo_model.cpp" "src/core/CMakeFiles/ivory_core.dir/ldo_model.cpp.o" "gcc" "src/core/CMakeFiles/ivory_core.dir/ldo_model.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/ivory_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/ivory_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/pds.cpp" "src/core/CMakeFiles/ivory_core.dir/pds.cpp.o" "gcc" "src/core/CMakeFiles/ivory_core.dir/pds.cpp.o.d"
  "/root/repo/src/core/sc_model.cpp" "src/core/CMakeFiles/ivory_core.dir/sc_model.cpp.o" "gcc" "src/core/CMakeFiles/ivory_core.dir/sc_model.cpp.o.d"
  "/root/repo/src/core/sc_topology.cpp" "src/core/CMakeFiles/ivory_core.dir/sc_topology.cpp.o" "gcc" "src/core/CMakeFiles/ivory_core.dir/sc_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ivory_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ivory_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ivory_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/ivory_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ivory_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
