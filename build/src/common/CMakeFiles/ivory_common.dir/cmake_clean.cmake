file(REMOVE_RECURSE
  "CMakeFiles/ivory_common.dir/fft.cpp.o"
  "CMakeFiles/ivory_common.dir/fft.cpp.o.d"
  "CMakeFiles/ivory_common.dir/interp.cpp.o"
  "CMakeFiles/ivory_common.dir/interp.cpp.o.d"
  "CMakeFiles/ivory_common.dir/matrix.cpp.o"
  "CMakeFiles/ivory_common.dir/matrix.cpp.o.d"
  "CMakeFiles/ivory_common.dir/optimize.cpp.o"
  "CMakeFiles/ivory_common.dir/optimize.cpp.o.d"
  "CMakeFiles/ivory_common.dir/polynomial.cpp.o"
  "CMakeFiles/ivory_common.dir/polynomial.cpp.o.d"
  "CMakeFiles/ivory_common.dir/rng.cpp.o"
  "CMakeFiles/ivory_common.dir/rng.cpp.o.d"
  "CMakeFiles/ivory_common.dir/statistics.cpp.o"
  "CMakeFiles/ivory_common.dir/statistics.cpp.o.d"
  "CMakeFiles/ivory_common.dir/table.cpp.o"
  "CMakeFiles/ivory_common.dir/table.cpp.o.d"
  "libivory_common.a"
  "libivory_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivory_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
