file(REMOVE_RECURSE
  "libivory_common.a"
)
