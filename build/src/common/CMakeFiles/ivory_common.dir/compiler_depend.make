# Empty compiler generated dependencies file for ivory_common.
# This may be replaced when dependencies are built.
