file(REMOVE_RECURSE
  "libivory_pdn.a"
)
