file(REMOVE_RECURSE
  "CMakeFiles/ivory_pdn.dir/pdn.cpp.o"
  "CMakeFiles/ivory_pdn.dir/pdn.cpp.o.d"
  "libivory_pdn.a"
  "libivory_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivory_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
