# Empty compiler generated dependencies file for ivory_pdn.
# This may be replaced when dependencies are built.
