file(REMOVE_RECURSE
  "libivory_spice.a"
)
