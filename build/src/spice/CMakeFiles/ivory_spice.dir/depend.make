# Empty dependencies file for ivory_spice.
# This may be replaced when dependencies are built.
