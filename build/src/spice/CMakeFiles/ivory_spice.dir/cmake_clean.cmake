file(REMOVE_RECURSE
  "CMakeFiles/ivory_spice.dir/analysis.cpp.o"
  "CMakeFiles/ivory_spice.dir/analysis.cpp.o.d"
  "CMakeFiles/ivory_spice.dir/circuit.cpp.o"
  "CMakeFiles/ivory_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/ivory_spice.dir/parser.cpp.o"
  "CMakeFiles/ivory_spice.dir/parser.cpp.o.d"
  "CMakeFiles/ivory_spice.dir/waveform.cpp.o"
  "CMakeFiles/ivory_spice.dir/waveform.cpp.o.d"
  "libivory_spice.a"
  "libivory_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivory_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
