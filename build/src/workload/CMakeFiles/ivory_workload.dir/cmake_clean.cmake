file(REMOVE_RECURSE
  "CMakeFiles/ivory_workload.dir/workload.cpp.o"
  "CMakeFiles/ivory_workload.dir/workload.cpp.o.d"
  "libivory_workload.a"
  "libivory_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivory_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
