file(REMOVE_RECURSE
  "libivory_workload.a"
)
