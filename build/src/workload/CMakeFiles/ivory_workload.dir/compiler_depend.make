# Empty compiler generated dependencies file for ivory_workload.
# This may be replaced when dependencies are built.
