# Empty dependencies file for bench_fig09_transient_validation.
# This may be replaced when dependencies are built.
