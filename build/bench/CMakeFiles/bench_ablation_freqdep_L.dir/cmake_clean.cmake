file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_freqdep_L.dir/bench_ablation_freqdep_L.cpp.o"
  "CMakeFiles/bench_ablation_freqdep_L.dir/bench_ablation_freqdep_L.cpp.o.d"
  "bench_ablation_freqdep_L"
  "bench_ablation_freqdep_L.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_freqdep_L.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
