# Empty compiler generated dependencies file for bench_ablation_freqdep_L.
# This may be replaced when dependencies are built.
