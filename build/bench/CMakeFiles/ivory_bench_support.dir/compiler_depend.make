# Empty compiler generated dependencies file for ivory_bench_support.
# This may be replaced when dependencies are built.
