file(REMOVE_RECURSE
  "CMakeFiles/ivory_bench_support.dir/support/case_study.cpp.o"
  "CMakeFiles/ivory_bench_support.dir/support/case_study.cpp.o.d"
  "CMakeFiles/ivory_bench_support.dir/support/refdata.cpp.o"
  "CMakeFiles/ivory_bench_support.dir/support/refdata.cpp.o.d"
  "libivory_bench_support.a"
  "libivory_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivory_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
