file(REMOVE_RECURSE
  "libivory_bench_support.a"
)
