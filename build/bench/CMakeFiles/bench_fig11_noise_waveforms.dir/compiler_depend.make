# Empty compiler generated dependencies file for bench_fig11_noise_waveforms.
# This may be replaced when dependencies are built.
