file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_noise_boxplot.dir/bench_fig10_noise_boxplot.cpp.o"
  "CMakeFiles/bench_fig10_noise_boxplot.dir/bench_fig10_noise_boxplot.cpp.o.d"
  "bench_fig10_noise_boxplot"
  "bench_fig10_noise_boxplot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_noise_boxplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
