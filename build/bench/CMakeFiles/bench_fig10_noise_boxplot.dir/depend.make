# Empty dependencies file for bench_fig10_noise_boxplot.
# This may be replaced when dependencies are built.
