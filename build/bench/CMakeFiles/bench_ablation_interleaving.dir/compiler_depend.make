# Empty compiler generated dependencies file for bench_ablation_interleaving.
# This may be replaced when dependencies are built.
