file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interleaving.dir/bench_ablation_interleaving.cpp.o"
  "CMakeFiles/bench_ablation_interleaving.dir/bench_ablation_interleaving.cpp.o.d"
  "bench_ablation_interleaving"
  "bench_ablation_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
