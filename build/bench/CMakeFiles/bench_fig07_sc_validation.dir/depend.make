# Empty dependencies file for bench_fig07_sc_validation.
# This may be replaced when dependencies are built.
