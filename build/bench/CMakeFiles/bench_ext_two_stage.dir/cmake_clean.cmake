file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_two_stage.dir/bench_ext_two_stage.cpp.o"
  "CMakeFiles/bench_ext_two_stage.dir/bench_ext_two_stage.cpp.o.d"
  "bench_ext_two_stage"
  "bench_ext_two_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_two_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
