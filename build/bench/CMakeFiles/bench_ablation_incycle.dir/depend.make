# Empty dependencies file for bench_ablation_incycle.
# This may be replaced when dependencies are built.
