file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_incycle.dir/bench_ablation_incycle.cpp.o"
  "CMakeFiles/bench_ablation_incycle.dir/bench_ablation_incycle.cpp.o.d"
  "bench_ablation_incycle"
  "bench_ablation_incycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_incycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
