# Empty compiler generated dependencies file for ivory.
# This may be replaced when dependencies are built.
