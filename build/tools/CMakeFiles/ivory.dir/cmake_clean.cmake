file(REMOVE_RECURSE
  "CMakeFiles/ivory.dir/ivory_cli.cpp.o"
  "CMakeFiles/ivory.dir/ivory_cli.cpp.o.d"
  "ivory"
  "ivory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
