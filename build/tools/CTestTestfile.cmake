# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_explore "/root/repo/build/tools/ivory" "explore" "--area" "20" "--power" "20")
set_tests_properties(cli_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sc "/root/repo/build/tools/ivory" "sc" "--n" "3" "--m" "1" "--cfly" "4u" "--gtot" "15k" "--fsw" "80meg" "--iload" "20" "--regulate" "1.0")
set_tests_properties(cli_sc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_buck "/root/repo/build/tools/ivory" "buck" "--iload" "10")
set_tests_properties(cli_buck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_topology "/root/repo/build/tools/ivory" "topology" "--n" "3" "--m" "2")
set_tests_properties(cli_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dynamic "/root/repo/build/tools/ivory" "dynamic" "--benchmark" "CFD" "--dist" "4" "--duration" "20u")
set_tests_properties(cli_dynamic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pds "/root/repo/build/tools/ivory" "pds" "--dist" "4")
set_tests_properties(cli_pds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/ivory")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
