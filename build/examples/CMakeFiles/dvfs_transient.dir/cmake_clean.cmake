file(REMOVE_RECURSE
  "CMakeFiles/dvfs_transient.dir/dvfs_transient.cpp.o"
  "CMakeFiles/dvfs_transient.dir/dvfs_transient.cpp.o.d"
  "dvfs_transient"
  "dvfs_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
