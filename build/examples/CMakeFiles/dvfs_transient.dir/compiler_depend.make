# Empty compiler generated dependencies file for dvfs_transient.
# This may be replaced when dependencies are built.
