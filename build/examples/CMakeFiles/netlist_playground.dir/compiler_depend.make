# Empty compiler generated dependencies file for netlist_playground.
# This may be replaced when dependencies are built.
