file(REMOVE_RECURSE
  "CMakeFiles/gpu_pds_casestudy.dir/gpu_pds_casestudy.cpp.o"
  "CMakeFiles/gpu_pds_casestudy.dir/gpu_pds_casestudy.cpp.o.d"
  "gpu_pds_casestudy"
  "gpu_pds_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_pds_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
