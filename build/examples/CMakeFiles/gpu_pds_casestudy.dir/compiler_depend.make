# Empty compiler generated dependencies file for gpu_pds_casestudy.
# This may be replaced when dependencies are built.
