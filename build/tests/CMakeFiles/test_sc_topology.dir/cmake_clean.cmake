file(REMOVE_RECURSE
  "CMakeFiles/test_sc_topology.dir/test_sc_topology.cpp.o"
  "CMakeFiles/test_sc_topology.dir/test_sc_topology.cpp.o.d"
  "test_sc_topology"
  "test_sc_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sc_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
