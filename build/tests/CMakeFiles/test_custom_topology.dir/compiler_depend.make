# Empty compiler generated dependencies file for test_custom_topology.
# This may be replaced when dependencies are built.
