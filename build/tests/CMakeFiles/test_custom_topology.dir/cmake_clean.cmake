file(REMOVE_RECURSE
  "CMakeFiles/test_custom_topology.dir/test_custom_topology.cpp.o"
  "CMakeFiles/test_custom_topology.dir/test_custom_topology.cpp.o.d"
  "test_custom_topology"
  "test_custom_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_custom_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
