file(REMOVE_RECURSE
  "CMakeFiles/test_ldo_model.dir/test_ldo_model.cpp.o"
  "CMakeFiles/test_ldo_model.dir/test_ldo_model.cpp.o.d"
  "test_ldo_model"
  "test_ldo_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldo_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
