file(REMOVE_RECURSE
  "CMakeFiles/test_pds.dir/test_pds.cpp.o"
  "CMakeFiles/test_pds.dir/test_pds.cpp.o.d"
  "test_pds"
  "test_pds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
