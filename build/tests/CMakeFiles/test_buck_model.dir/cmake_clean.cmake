file(REMOVE_RECURSE
  "CMakeFiles/test_buck_model.dir/test_buck_model.cpp.o"
  "CMakeFiles/test_buck_model.dir/test_buck_model.cpp.o.d"
  "test_buck_model"
  "test_buck_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buck_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
