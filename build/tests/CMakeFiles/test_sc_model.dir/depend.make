# Empty dependencies file for test_sc_model.
# This may be replaced when dependencies are built.
