file(REMOVE_RECURSE
  "CMakeFiles/test_sc_model.dir/test_sc_model.cpp.o"
  "CMakeFiles/test_sc_model.dir/test_sc_model.cpp.o.d"
  "test_sc_model"
  "test_sc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
