# Empty dependencies file for test_spice_basic.
# This may be replaced when dependencies are built.
