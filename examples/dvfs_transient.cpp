// Fast per-core DVFS with an IVR: the motivating scenario of the paper's
// introduction. Steps the voltage/frequency setpoint mid-run and watches the
// IVR's dynamic response, including the load-current feedback (lower V and f
// draw less current — the model handles this natively via the digital load
// model).
//
//   ./dvfs_transient
#include <cstdio>

#include "common/statistics.hpp"
#include "core/ivory.hpp"

using namespace ivory;

int main() {
  std::printf("=== Fast DVFS through an integrated voltage regulator ===\n\n");

  // A per-core SC IVR (one quarter of the case-study budget).
  core::SystemParams sys;
  const core::DseResult ivr =
      core::optimize_topology(sys, core::IvrTopology::SwitchedCapacitor, 4);
  if (!ivr.feasible) {
    std::printf("no feasible IVR design\n");
    return 1;
  }
  std::printf("IVR: %s, %d-way interleaved, f_sw %.0f MHz\n\n", ivr.label.c_str(),
              ivr.n_interleave, ivr.f_sw_hz / 1e6);

  // DVFS schedule from the scenario engine's "gpu-dvfs-step" residency
  // preset: 1.0 V / 1.0 GHz -> 0.85 V / 0.7 GHz at 20 us -> back at 40 us.
  const workload::DvfsSchedule schedule = workload::down_and_back_schedule(
      workload::residency_preset("gpu-dvfs-step"), 20e-6);
  const workload::DigitalLoadModel load =
      workload::DigitalLoadModel::from_average_power(5.0, 1.0, 1e9, 0.2);

  // Build the load-current trace from a workload activity trace + schedule.
  const double dt = 2e-9;
  const double duration = 60e-6;
  const auto activity_trace =
      workload::generate_gpu_traces(workload::Benchmark::KMN, 1, 5.0, duration, dt)[0];
  std::vector<double> i_load(activity_trace.watts.size());
  std::vector<double> vref(activity_trace.watts.size());
  for (std::size_t k = 0; k < i_load.size(); ++k) {
    const double t = static_cast<double>(k) * dt;
    const workload::DvfsPoint& p = schedule.at(t);
    const double act = activity_trace.watts[k] / 5.0;  // Normalized activity.
    i_load[k] = load.current(p.v_v, p.f_hz, act);
    vref[k] = p.v_v;
  }

  // The cycle model regulates toward a fixed vref; run the three DVFS
  // segments back to back, carrying the load trace through.
  std::printf("%-12s %-10s %-10s %-12s %-10s\n", "segment", "target V", "mean V", "noise p-p",
              "mean I");
  const double seg_bounds[4] = {schedule.points()[0].t_s, schedule.points()[1].t_s,
                                schedule.points()[2].t_s, duration};
  for (int seg = 0; seg < 3; ++seg) {
    const std::size_t k0 = static_cast<std::size_t>(seg_bounds[seg] / dt);
    const std::size_t k1 = static_cast<std::size_t>(seg_bounds[seg + 1] / dt);
    const std::vector<double> i_seg(i_load.begin() + static_cast<long>(k0),
                                    i_load.begin() + static_cast<long>(k1));
    const double v_target = vref[k0];
    const core::DynWaveform w =
        core::sc_combined_response(ivr.sc, sys.vin_v, v_target, i_seg, dt);
    const std::vector<double> tail(w.v.begin() + static_cast<long>(w.v.size() / 5), w.v.end());
    std::printf("%-12d %-10.3f %-10.4f %-12.2f %-10.2f\n", seg, v_target, mean(tail),
                peak_to_peak(tail) * 1e3, mean(i_seg));
  }

  std::printf("\nVoltage transition speed: the IVR re-regulates within its feedback\n"
              "granularity (one interleave sub-cycle, %.1f ns) — the nanosecond-scale\n"
              "DVFS that off-chip VRMs (microseconds) cannot deliver.\n",
              1e9 / (ivr.f_sw_hz * ivr.n_interleave));
  return 0;
}
