// On-chip power-grid design space exploration with the sparse MNA kernel.
//
// Sweeps bump pitch and decap budget over an N x M on-chip grid, runs a
// step-load droop transient on each candidate, and reports worst-case droop
// at the grid center together with the factorization kernel the structural
// heuristic picked and the solver cost counters. A city-block-scale grid
// (thousands of nodes) is tractable here precisely because the stamped MNA
// system never goes through a dense matrix: the banded/sparse kernels factor
// in near-linear time.
//
// Build: cmake --build build --target grid_explorer
// Run:   ./build/examples/grid_explorer [nx [ny]]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pdn/pdn.hpp"
#include "spice/analysis.hpp"

using namespace ivory;

int main(int argc, char** argv) {
  const int nx = argc > 1 ? std::atoi(argv[1]) : 24;
  const int ny = argc > 2 ? std::atoi(argv[2]) : nx;

  std::printf("grid_explorer: %d x %d on-chip grid, step-load droop sweep\n\n", nx, ny);
  std::printf("%-10s %-12s %-10s %-12s %-12s %-10s\n", "pitch", "decap/tile", "kernel",
              "droop (mV)", "factor nnz", "steps");

  for (const int pitch : {2, 4, 8}) {
    if (pitch > nx || pitch > ny) continue;
    for (const double decap : {20e-12, 50e-12, 100e-12}) {
      pdn::GridParams gp;
      gp.nx = nx;
      gp.ny = ny;
      gp.bump_pitch = pitch;
      gp.tile_cap_f = decap;
      spice::Circuit ckt;
      const pdn::GridNodes nodes = pdn::build_grid_netlist(ckt, gp);

      spice::TranSpec spec;
      spec.tstop = 10e-9;
      spec.dt = 0.1e-9;
      spec.record_nodes = {nodes.center};
      const spice::TranResult res = spice::transient(ckt, spec);

      const std::vector<double>& v = res.at(nodes.center);
      double vmin = v.front();
      for (const double s : v) vmin = s < vmin ? s : vmin;
      const double droop_mv = 1e3 * (gp.vdd_v - vmin);

      std::printf("%-10d %-12.0f %-10s %-12.2f %-12zu %-10zu\n", pitch, decap * 1e12,
                  res.kernel.c_str(), droop_mv, res.factor_nnz, res.steps_taken);
    }
  }
  std::printf("\n(decap/tile in pF; droop measured at the grid center tile)\n");
  return 0;
}
