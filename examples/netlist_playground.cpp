// The circuit-simulation substrate, standalone: parse a SPICE-style netlist,
// run DC / transient / AC, and print the results. Useful for exploring PDN
// or converter fragments without writing C++.
//
//   ./netlist_playground [file.sp]
//
// Without an argument, runs a built-in demo netlist (a series-RLC PDN
// fragment excited by a load step).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.hpp"
#include "spice/spice.hpp"

using namespace ivory;

namespace {

const char* kDemoNetlist = R"(* PDN fragment: supply - R - L - die node with decap, load current step
Vsup in 0 DC 1.0
Rpdn in mid 2m
Lpdn mid die 25p
Cdecap die 0 500n IC=1.0
Rload die 0 1k
Iload die 0 PULSE(2 18 200n 1n 1n 400n 1u)
.end
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
    std::printf("netlist: %s\n\n", argv[1]);
  } else {
    text = kDemoNetlist;
    std::printf("built-in demo netlist:\n%s\n", kDemoNetlist);
  }

  spice::Circuit ckt = spice::parse_netlist(text);
  std::printf("parsed: %d nodes, %zu R, %zu C, %zu L, %zu V, %zu I\n\n", ckt.node_count(),
              ckt.resistors().size(), ckt.capacitors().size(), ckt.inductors().size(),
              ckt.vsources().size(), ckt.isources().size());

  // DC operating point.
  const spice::DcResult op = spice::dc_operating_point(ckt);
  TextTable dc({"node", "V(dc)"});
  for (int n = 1; n < ckt.node_count(); ++n)
    dc.add_row({ckt.node_name(n), TextTable::num(op.voltage(n), 5)});
  std::printf("--- DC operating point ---\n%s\n", dc.render().c_str());

  // Transient: 1 us at 0.5 ns, print a decimated table of every node.
  spice::TranSpec spec;
  spec.tstop = 1e-6;
  spec.dt = 0.5e-9;
  const spice::TranResult res = spice::transient(ckt, spec);
  TextTable tr({"t (ns)", "..."});
  std::printf("--- transient (%zu steps, %zu LU factorizations) ---\n", res.steps_taken,
              res.lu_factorizations);
  std::printf("%-10s", "t (ns)");
  for (spice::NodeId n : res.nodes) std::printf("%-12s", ckt.node_name(n).c_str());
  std::printf("\n");
  for (std::size_t k = 0; k < res.time.size(); k += res.time.size() / 16) {
    std::printf("%-10.1f", res.time[k] * 1e9);
    for (std::size_t i = 0; i < res.nodes.size(); ++i)
      std::printf("%-12.5f", res.voltages[i][k]);
    std::printf("\n");
  }

  // AC: impedance-style sweep of the first non-ground node.
  std::printf("\n--- AC sweep (drive: sources' ac magnitude; here Vsup = 0 -> "
              "homogeneous unless the netlist sets one) ---\n");
  std::printf("(Use the C++ API's Waveform::set_ac_magnitude for AC studies; see "
              "tests/test_spice_ac.cpp.)\n");
  return 0;
}
