// Topology explorer: charge-multiplier vectors, switch stress, and optimal
// operating points for any SC conversion ratio — the "expert mode" interface
// the paper mentions ("advanced users can plug-in their own switch topology
// by providing the charge multiplier vectors explicitly"; here the generic
// solver derives them for you).
//
//   ./topology_explorer [n] [m]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "core/ivory.hpp"

using namespace ivory;

namespace {

void describe(const core::ScTopology& topo) {
  std::printf("--- %s ---\n", topo.name.c_str());
  const core::ChargeVectors cv = core::charge_vectors(topo);
  const std::vector<double> stress = core::switch_stress_ratios(topo);

  std::printf("caps: %zu, switches: %zu, ideal ratio %.4f, q_in per q_out %.4f\n",
              topo.caps.size(), topo.switches.size(), topo.ideal_ratio(), cv.q_in);
  std::printf("sum|a_c| = %.4f  ->  R_SSL = %.4f / (C_tot * f_sw)\n", cv.sum_ac(),
              cv.sum_ac() * cv.sum_ac());
  std::printf("sum|a_r| = %.4f  ->  R_FSL = %.4f / (G_tot * D)\n", cv.sum_ar(),
              cv.sum_ar() * cv.sum_ar());

  TextTable caps({"cap", "type", "a_c", "holds (x Vin)"});
  for (std::size_t i = 0; i < topo.caps.size(); ++i)
    caps.add_row({"C" + std::to_string(i), topo.caps[i].is_dc ? "dc" : "fly",
                  TextTable::num(cv.a_cap[i], 4), TextTable::num(topo.caps[i].ideal_v_ratio, 4)});
  std::printf("%s", caps.render().c_str());

  TextTable sws({"switch", "phase", "a_r", "blocks (x Vin)"});
  for (std::size_t i = 0; i < topo.switches.size(); ++i)
    sws.add_row({"S" + std::to_string(i), topo.switches[i].phase == 0 ? "A" : "B",
                 TextTable::num(cv.a_switch[i], 4), TextTable::num(stress[i], 4)});
  std::printf("%s\n", sws.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    const int n = std::atoi(argv[1]);
    const int m = std::atoi(argv[2]);
    describe(core::make_topology(n, m, core::ScFamily::Ladder));
    if (m == 1) describe(core::make_topology(n, 1, core::ScFamily::SeriesParallel));
    return 0;
  }

  std::printf("=== SC topology explorer (pass n m for a specific ratio) ===\n\n");
  describe(core::series_parallel(2));
  describe(core::series_parallel(3));
  describe(core::ladder(3, 2));
  describe(core::ladder(4, 3));

  // Bonus: which family wins at each ratio for a 3.3 V input in 32 nm?
  std::printf("--- family comparison at 3.3 V in, 32 nm, 5 A, 5 mm^2 ---\n");
  TextTable cmp({"ratio", "family", "peak efficiency (%)", "f_sw (MHz)"});
  core::SystemParams sys;
  sys.area_max_m2 = 5e-6;
  sys.p_load_w = 5.0 * sys.vout_v;
  for (const auto& [n, m] : core::candidate_sc_ratios(sys.vin_v, sys.vout_v)) {
    for (core::ScFamily fam : {core::ScFamily::Ladder, core::ScFamily::SeriesParallel}) {
      if (fam == core::ScFamily::SeriesParallel && m != 1) continue;
      // Reuse the optimizer on a single-ratio system by restricting vout.
      core::DseResult r = core::optimize_topology(sys, core::IvrTopology::SwitchedCapacitor, 1);
      if (r.sc.n == n && r.sc.m == m && r.feasible) {
        cmp.add_row({std::to_string(n) + ":" + std::to_string(m),
                     r.sc.family == core::ScFamily::Ladder ? "ladder" : "series-parallel",
                     TextTable::num(r.efficiency * 100.0, 3),
                     TextTable::num(r.f_sw_hz / 1e6, 3)});
      }
    }
  }
  std::printf("%s", cmp.render().c_str());
  return 0;
}
