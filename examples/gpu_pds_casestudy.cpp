// End-to-end GPU power-delivery case study (paper Section 5), as a user
// would run it: static design-space exploration, dynamic noise analysis on a
// workload, and the final PDS efficiency comparison.
//
//   ./gpu_pds_casestudy
#include <cstdio>

#include "common/statistics.hpp"
#include "core/ivory.hpp"

using namespace ivory;

int main() {
  std::printf("==============================================================\n");
  std::printf(" Ivory case study: power delivery for a 4-SM embedded GPU\n");
  std::printf("==============================================================\n\n");

  // --- 1. System parameters (paper Table 1) -------------------------------
  core::SystemParams sys;  // 3.3 V board rail -> 1.0 V, 20 W, 20 mm^2 budget.
  std::printf("[1] system: %.1f V -> %.1f V, %.0f W over %d SMs, %.0f mm^2 IVR budget\n\n",
              sys.vin_v, sys.vout_v, sys.p_load_w, 4, sys.area_max_m2 * 1e6);

  // --- 2. Static design space exploration ---------------------------------
  std::printf("[2] exploring the design space (topology x distribution)...\n");
  const std::vector<core::DseResult> designs = core::explore(sys);
  for (const core::DseResult& r : designs) {
    if (!r.feasible) continue;
    std::printf("    %-8s x%d distributed: eff %.1f%%, ripple %.2f mV, f_sw %.0f MHz\n",
                r.label.c_str(), r.n_distributed, r.efficiency * 100.0, r.ripple_pp_v * 1e3,
                r.f_sw_hz / 1e6);
  }
  const core::DseResult best4 =
      core::optimize_topology(sys, core::IvrTopology::SwitchedCapacitor, 4);
  std::printf("    -> best: %s, %d-way interleaved\n\n", designs.front().label.c_str(),
              designs.front().n_interleave);

  // --- 3. Dynamic noise on a real workload --------------------------------
  std::printf("[3] dynamic analysis: CFD workload, four distributed IVRs...\n");
  const auto traces = workload::generate_gpu_traces(workload::Benchmark::CFD, 4, 5.0,
                                                    60e-6, 2e-9);
  const workload::DigitalLoadModel load =
      workload::DigitalLoadModel::from_average_power(5.0, sys.vout_v, 1e9, 0.2);
  // Each of the four IVRs regulates one SM.
  double worst_noise = 0.0;
  for (int sm = 0; sm < 4; ++sm) {
    const std::vector<double> i_sm =
        workload::power_to_current(traces[static_cast<std::size_t>(sm)], load, sys.vout_v);
    core::DynWaveform w =
        core::sc_combined_response(best4.sc, sys.vin_v, sys.vout_v, i_sm, 2e-9);
    // Local grid between the per-SM IVR and its core (quarter-die span).
    const pdn::PdnParams grid = pdn::PdnParams::gpuvolt_default();
    const std::vector<double> gn =
        core::grid_noise(i_sm, 2e-9, grid.grid_r_ohm / 4.0, grid.grid_l_h / 2.0);
    for (std::size_t k = 0; k < w.v.size(); ++k) w.v[k] += gn[k];
    const std::vector<double> tail(w.v.begin() + static_cast<long>(w.v.size() / 5), w.v.end());
    const double pp = peak_to_peak(tail);
    worst_noise = std::max(worst_noise, pp);
    std::printf("    SM%d: mean %.4f V, noise %.1f mV p-p\n", sm, mean(tail), pp * 1e3);
  }
  std::printf("    -> guardband needed: %.1f mV\n\n", worst_noise * 1e3);

  // --- 4. Put it together: PDS efficiency ---------------------------------
  std::printf("[4] end-to-end power delivery efficiency...\n");
  const pdn::PdnParams pdn_params = pdn::PdnParams::gpuvolt_default();
  const double v_core_nom = 0.85;
  const core::PdsBreakdown off =
      core::evaluate_pds_offchip(sys, pdn_params, v_core_nom, 0.110);
  const core::PdsBreakdown ivr =
      core::evaluate_pds_ivr(sys, pdn_params, best4, v_core_nom, worst_noise);
  std::printf("    off-chip VRM PDS:        %.1f %%\n", off.efficiency * 100.0);
  std::printf("    4 distributed IVRs PDS:  %.1f %%\n", ivr.efficiency * 100.0);
  std::printf("    improvement:             %.1f points (paper: 9.5)\n",
              (ivr.efficiency - off.efficiency) * 100.0);
  return 0;
}
