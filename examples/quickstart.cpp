// Quickstart: model one IVR in a few lines.
//
// Evaluates a 2:1 switched-capacitor IVR in 32 nm, prints its efficiency,
// ripple, loss breakdown, and area — the "hello world" of Ivory.
//
//   ./quickstart [vin] [iload]
#include <cstdio>
#include <cstdlib>

#include "core/ivory.hpp"

using namespace ivory;

int main(int argc, char** argv) {
  const double vin = argc > 1 ? std::atof(argv[1]) : 1.8;
  const double i_load = argc > 2 ? std::atof(argv[2]) : 2.0;

  // Describe the design: technology, topology, sizing.
  core::ScDesign d;
  d.node = tech::Node::n32;
  d.cap_kind = tech::CapKind::DeepTrench;
  d.n = 2;                 // 2:1 step-down.
  d.m = 1;
  d.c_fly_f = 400e-9;      // 400 nF of flying capacitance...
  d.c_out_f = 100e-9;      // ...plus 100 nF of output decap.
  d.g_tot_s = 2000.0;      // 2000 S of total switch conductance.
  d.f_sw_hz = 100e6;       // 100 MHz switching.
  d.n_interleave = 8;      // 8 interleaved slices.

  std::printf("Ivory quickstart: %d:%d SC IVR at %s, vin=%.2f V, load=%.2f A\n\n", d.n, d.m,
              tech::node_name(d.node), vin, i_load);

  // One call: full static analysis.
  const core::ScAnalysis a = core::analyze_sc(d, vin, i_load);

  std::printf("ideal output       %.3f V\n", a.vout_ideal_v);
  std::printf("actual output      %.3f V  (R_out = %.2f mOhm: SSL %.2f / FSL %.2f)\n",
              a.vout_v, a.rout_ohm * 1e3, a.rssl_ohm * 1e3, a.rfsl_ohm * 1e3);
  std::printf("efficiency         %.1f %%\n", a.efficiency * 100.0);
  std::printf("output ripple      %.2f mV peak-to-peak\n", a.ripple_pp_v * 1e3);
  std::printf("\nloss breakdown:\n");
  std::printf("  conduction       %.3f W\n", a.p_conduction_w);
  std::printf("  gate drive       %.3f W\n", a.p_gate_w);
  std::printf("  bottom plate     %.3f W\n", a.p_bottom_plate_w);
  std::printf("  leakage          %.3f W\n", a.p_leakage_w);
  std::printf("  peripherals      %.3f W\n", a.p_peripheral_w);
  std::printf("\narea: %.3f mm^2 (caps %.3f, switches %.3f, peripherals %.3f)\n",
              a.area_m2 * 1e6, a.area_caps_m2 * 1e6, a.area_switches_m2 * 1e6,
              a.area_peripheral_m2 * 1e6);

  // Regulated operation: what does holding 0.8 V cost?
  const core::ScRegulated reg = core::analyze_sc_regulated(d, vin, 0.8, i_load);
  if (reg.feasible)
    std::printf("\nregulated to 0.80 V: efficiency %.1f %% at f_sw = %.1f MHz\n",
                reg.analysis.efficiency * 100.0, reg.f_sw_used_hz / 1e6);
  else
    std::printf("\nregulation to 0.80 V is infeasible for this design\n");
  return 0;
}
