// Scenario engine: residency-weighted evaluation of a power-delivery design
// across a distribution of power states, FlexWatts-style (PAPERS.md).
//
// A scenario is a set of named power states (V/f point, activity, residency,
// optional power gating) shared by one or more load domains. Each domain
// chooses its delivery path: an on-chip IVR (the optimizer's design, shared
// pro rata by all IVR domains) or an off-chip board VRM whose current
// crosses the full PDN. A candidate design is then scored as the
// residency-weighted mix over every (domain, state) cell —
//
//   eta_weighted = sum(res * p_out) / sum(res * p_in)
//
// so power-gated idle states contribute their idle loss with zero useful
// output (the IVR power-gates to ~0; the shared board VRM cannot and keeps
// burning its fixed loss), and droop is the worst tail peak-to-peak of the
// per-cell dynamic response. Cells evaluate under per-candidate quarantine
// with a serial index-order merge, so results are byte-identical at any
// thread count and cacheable by content hash like every other sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/outcome.hpp"
#include "core/optimizer.hpp"
#include "workload/workload.hpp"

namespace ivory::scenario {

enum class Delivery { OnChipIvr, OffChipVrm };
const char* delivery_name(Delivery d);
Delivery delivery_from_string(const std::string& s);  ///< "ivr" | "vrm".

/// One load domain: its share of the system's nominal power, its delivery
/// path, and the benchmark shaping its synthesized activity trace.
struct DomainSpec {
  std::string name = "core";
  double power_frac = 1.0;  ///< Share of sys.p_load_w at the nominal state.
  Delivery delivery = Delivery::OnChipIvr;
  workload::Benchmark benchmark = workload::Benchmark::CFD;
};

struct ScenarioSpec {
  std::string name = "custom";
  std::vector<workload::PowerStateSpec> states;
  std::vector<DomainSpec> domains{DomainSpec{}};
  double f_nom_hz = 1e9;     ///< Nominal clock of the digital load model.
  double duration_s = 20e-6; ///< Synthesized trace length per (domain, state).
  double dt_s = 2e-9;
  std::uint64_t seed = 1;
};

/// Spec with one IVR "core" domain over workload::residency_preset(name).
ScenarioSpec preset_scenario(const std::string& name);

/// One evaluated (domain, state) cell.
struct StateEval {
  std::string domain;
  std::string state;
  Delivery delivery = Delivery::OnChipIvr;
  bool gated = false;
  double residency = 0.0;
  double v_v = 0.0, f_hz = 0.0;
  double i_avg_a = 0.0;      ///< Mean domain load current at the state's V/f.
  double p_out_w = 0.0;      ///< Useful power delivered (0 while gated).
  double p_in_w = 0.0;       ///< Power drawn from the input source.
  double efficiency = 0.0;   ///< p_out / p_in (0 while gated).
  double droop_pp_v = 0.0;   ///< Settled peak-to-peak of the dynamic response.
};

struct ScenarioReport {
  std::string scenario;
  bool complete = true;      ///< False when any cell was quarantined away.
  bool has_ivr = false;
  core::DseResult design;    ///< IVR design shared by the IVR domains.
  std::vector<StateEval> cells;  ///< Domain-major, state-minor order.
  double weighted_efficiency = 0.0;
  double p_out_avg_w = 0.0;  ///< Residency-weighted useful power.
  double p_in_avg_w = 0.0;   ///< Residency-weighted input power.
  double worst_droop_pp_v = 0.0;
  double area_m2 = 0.0;      ///< On-chip area of the IVR design (0 if none).
};

/// Optimizes `topo` for the IVR domains' share of the load, then scores it
/// across every (domain, state) cell of the scenario. Cell evaluations are
/// quarantined: a cell the design cannot serve (e.g. regulation infeasible at
/// that V/f) is recorded as a structured skip in `report`, excluded from the
/// weighted aggregates, and clears `complete`. Throws only on invalid input
/// or when every cell dies.
ScenarioReport evaluate_scenario(const core::SystemParams& sys, core::IvrTopology topo,
                                 int n_distributed, const ScenarioSpec& spec,
                                 SweepReport* report = nullptr);

/// Deterministic member-order serializer (see core/report_json.hpp contract).
json::Value to_json(const ScenarioReport& r);

}  // namespace ivory::scenario
