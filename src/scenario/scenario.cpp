#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "core/dynamic.hpp"
#include "core/report_json.hpp"
#include "pdn/pdn.hpp"

namespace ivory::scenario {

const char* delivery_name(Delivery d) {
  switch (d) {
    case Delivery::OnChipIvr: return "ivr";
    case Delivery::OffChipVrm: return "vrm";
  }
  return "?";
}

Delivery delivery_from_string(const std::string& s) {
  if (s == "ivr") return Delivery::OnChipIvr;
  if (s == "vrm") return Delivery::OffChipVrm;
  throw InvalidParameter("delivery_from_string: unknown delivery '" + s +
                         "' (known: ivr, vrm)");
}

ScenarioSpec preset_scenario(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.states = workload::residency_preset(name);
  return spec;
}

namespace {

// The board VRM serving a domain is rated at the workload peak (~2.5x the
// nominal mean, the optimizer's kPeakLoadFactor), like the IVR designs.
// The factor itself lives in pdn.hpp so the DSE funnel's hybrid candidates
// size their VRM share identically.
using pdn::kVrmRatingFactor;

double tail_peak_to_peak(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const std::size_t k0 = v.size() / 5;  // Skip the settling transient.
  double lo = v[k0], hi = v[k0];
  for (std::size_t k = k0; k < v.size(); ++k) {
    lo = std::min(lo, v[k]);
    hi = std::max(hi, v[k]);
  }
  return hi - lo;
}

// One (domain, state) cell. Runs under quarantine: a state the design cannot
// serve throws and becomes a structured skip.
StateEval evaluate_cell(const core::SystemParams& sys, const ScenarioSpec& spec,
                        const DomainSpec& dom, const workload::PowerStateSpec& st,
                        const core::DseResult& design, int n_dist, double ivr_frac,
                        const pdn::PdnParams& pdn_p, double r_pdn_ohm, std::uint64_t seed) {
  StateEval ev;
  ev.domain = dom.name;
  ev.state = st.name;
  ev.delivery = dom.delivery;
  ev.gated = st.gated;
  ev.residency = st.residency;
  ev.v_v = st.v_v;
  ev.f_hz = st.f_hz;

  const double p_dom_nom = sys.p_load_w * dom.power_frac;
  if (st.gated) {
    // Power-gated: no useful output. The on-chip IVR gates off with the
    // domain (negligible header leakage); the shared board VRM cannot be
    // turned off and keeps burning its load-independent fixed loss — the
    // FlexWatts asymmetry that makes hybrid delivery pay off on idle-heavy
    // residency mixes.
    if (dom.delivery == Delivery::OffChipVrm) {
      const pdn::VrmModel vrm =
          pdn::VrmModel::board_vrm(sys.vout_v, kVrmRatingFactor * p_dom_nom / sys.vout_v);
      ev.p_in_w = vrm.p_fixed_w;
    }
    return ev;
  }

  // Synthesize the domain's load current at this state's (V, f, activity):
  // per-sample activity from the benchmark trace, replayed through the
  // digital load model exactly like examples/dvfs_transient.cpp.
  const workload::DigitalLoadModel load =
      workload::DigitalLoadModel::from_average_power(p_dom_nom, sys.vout_v, spec.f_nom_hz);
  const workload::PowerTrace trace = workload::generate_gpu_traces(
      dom.benchmark, 1, p_dom_nom, spec.duration_s, spec.dt_s, seed)[0];
  std::vector<double> i_dom(trace.watts.size());
  double i_sum = 0.0;
  for (std::size_t k = 0; k < i_dom.size(); ++k) {
    const double act = trace.watts[k] / p_dom_nom * st.activity;
    i_dom[k] = load.current(st.v_v, st.f_hz, act);
    i_sum += i_dom[k];
  }
  const double i_avg = i_sum / static_cast<double>(i_dom.size());
  ev.i_avg_a = i_avg;
  ev.p_out_w = st.v_v * i_avg;

  if (dom.delivery == Delivery::OffChipVrm) {
    // Off-chip path: VRM conversion loss at this load plus the PDN IR loss
    // of carrying the full low-voltage current across board/package/C4.
    const pdn::VrmModel vrm =
        pdn::VrmModel::board_vrm(sys.vout_v, kVrmRatingFactor * p_dom_nom / sys.vout_v);
    const double p_vrm_loss =
        vrm.p_fixed_w + vrm.r_loss_ohm * i_avg * i_avg + vrm.v_drop_v * i_avg;
    ev.p_in_w = ev.p_out_w + p_vrm_loss + i_avg * i_avg * r_pdn_ohm;
    const std::vector<double> v_die =
        pdn::simulate_die_voltage(pdn_p, st.v_v, i_dom, spec.dt_s);
    ev.droop_pp_v = tail_peak_to_peak(v_die);
  } else {
    // On-chip path: this domain owns a pro-rata slice of the n_dist IVRs
    // (power_frac / ivr_frac of the fleet), so the per-IVR operating point
    // at the nominal state is exactly the optimizer's design point.
    const double scale = ivr_frac / (static_cast<double>(n_dist) * dom.power_frac);
    std::vector<double> i_ivr(i_dom);
    for (double& x : i_ivr) x *= scale;
    const double i_eval = i_avg * scale;

    double eta = 0.0;
    core::DynWaveform w;
    switch (design.topology) {
      case core::IvrTopology::SwitchedCapacitor: {
        const core::ScRegulated reg =
            core::analyze_sc_regulated(design.sc, sys.vin_v, st.v_v, i_eval);
        if (!reg.feasible)
          throw InvalidParameter("scenario: SC design cannot regulate to " +
                                 std::to_string(st.v_v) + " V in state '" + st.name + "'");
        eta = reg.analysis.efficiency;
        w = core::sc_combined_response(design.sc, sys.vin_v, st.v_v, i_ivr, spec.dt_s);
        break;
      }
      case core::IvrTopology::Buck: {
        const core::BuckAnalysis a =
            core::analyze_buck(design.buck, sys.vin_v, st.v_v, i_eval);
        eta = a.efficiency;
        w = core::buck_combined_response(design.buck, sys.vin_v, st.v_v, i_ivr, spec.dt_s);
        break;
      }
      case core::IvrTopology::LinearRegulator: {
        const core::LdoAnalysis a =
            core::analyze_ldo(design.ldo, sys.vin_v, st.v_v, i_eval);
        eta = a.efficiency;
        w = core::ldo_combined_response(design.ldo, sys.vin_v, st.v_v, i_ivr, spec.dt_s);
        break;
      }
      case core::IvrTopology::DigitalLdo: {
        const core::DldoAnalysis a =
            core::analyze_dldo(design.dldo, sys.vin_v, st.v_v, i_eval);
        eta = a.efficiency;
        w = core::dldo_combined_response(design.dldo, sys.vin_v, st.v_v, i_ivr, spec.dt_s);
        break;
      }
    }
    require(eta > 0.0, "scenario: non-positive efficiency in state '" + st.name + "'");
    // Fleet-wide input power at the same per-IVR efficiency; the PDN carries
    // the high-voltage input current (the IVR advantage: vin/vout times less
    // current crossing the board).
    const double p_ivr_in = ev.p_out_w / eta;
    const double i_pdn = p_ivr_in / sys.vin_v;
    ev.p_in_w = p_ivr_in + i_pdn * i_pdn * r_pdn_ohm;
    ev.droop_pp_v = tail_peak_to_peak(w.v);
  }
  ev.efficiency = ev.p_out_w / ev.p_in_w;
  IVORY_CHECK_FINITE(ev.efficiency, "evaluate_cell");
  IVORY_CHECK_FINITE(ev.droop_pp_v, "evaluate_cell");
  return ev;
}

}  // namespace

ScenarioReport evaluate_scenario(const core::SystemParams& sys, core::IvrTopology topo,
                                 int n_distributed, const ScenarioSpec& spec,
                                 SweepReport* report) {
  IVORY_TRACE("scenario.evaluate");
  metrics::registry().counter("scenario.evaluations").add();
  workload::check_power_states(spec.states);
  require(!spec.domains.empty(), "evaluate_scenario: need at least one domain");
  require(spec.f_nom_hz > 0.0, "evaluate_scenario: f_nom must be positive");
  require(spec.dt_s > 0.0 && spec.duration_s > spec.dt_s,
          "evaluate_scenario: bad duration/dt");
  double frac_total = 0.0, ivr_frac = 0.0;
  for (std::size_t i = 0; i < spec.domains.size(); ++i) {
    const DomainSpec& d = spec.domains[i];
    require(d.power_frac > 0.0, "evaluate_scenario: domain " + std::to_string(i) +
                                    " (" + d.name + "): power_frac must be positive");
    frac_total += d.power_frac;
    if (d.delivery == Delivery::OnChipIvr) ivr_frac += d.power_frac;
  }
  require(std::fabs(frac_total - 1.0) <= 1e-9,
          "evaluate_scenario: domain power fractions sum to " + std::to_string(frac_total) +
              ", expected 1");

  ScenarioReport rep;
  rep.scenario = spec.name;
  SweepReport merged;

  if (ivr_frac > 0.0) {
    // One design serves all IVR domains: optimize the topology for their
    // aggregate share of the load, distributed n_distributed ways.
    core::SystemParams s = sys;
    s.p_load_w = sys.p_load_w * ivr_frac;
    rep.design = core::optimize_topology(s, topo, n_distributed, &merged);
    rep.has_ivr = true;
    rep.area_m2 = rep.design.area_m2;
    if (!rep.design.feasible) {
      if (report) report->merge(merged);
      throw InvalidParameter(std::string("evaluate_scenario: no feasible ") +
                             core::topology_name(topo) + " design for the IVR domains");
    }
  }

  const pdn::PdnParams pdn_p = pdn::PdnParams::gpuvolt_default();
  const double r_pdn = pdn_p.board.r_ohm + pdn_p.package.r_ohm + pdn_p.c4.r_ohm;

  // Flatten the (domain, state) grid in domain-major order; each cell is an
  // independent pure task with a deterministic per-cell seed.
  std::vector<std::pair<std::size_t, std::size_t>> grid;
  for (std::size_t di = 0; di < spec.domains.size(); ++di)
    for (std::size_t si = 0; si < spec.states.size(); ++si) grid.emplace_back(di, si);

  const std::vector<EvalOutcome<StateEval>> outcomes =
      par::parallel_map<EvalOutcome<StateEval>>(grid.size(), [&](std::size_t gi) {
        const auto& [di, si] = grid[gi];
        const DomainSpec& dom = spec.domains[di];
        const workload::PowerStateSpec& st = spec.states[si];
        const std::string candidate =
            dom.name + "/" + st.name + " (" + delivery_name(dom.delivery) + ")";
        const std::uint64_t seed = spec.seed + 1000003u * di + 131u * si;
        return quarantine("scenario_eval", candidate, [&] {
          return evaluate_cell(sys, spec, dom, st, rep.design, n_distributed, ivr_frac,
                               pdn_p, r_pdn, seed);
        });
      });

  // Serial index-order merge: survivors, skips, and aggregates are all
  // byte-identical at any thread count.
  SweepReport cell_level;
  double w_out = 0.0, w_in = 0.0;
  for (const EvalOutcome<StateEval>& o : outcomes) {
    if (o.ok()) {
      cell_level.record_survivor();
      const StateEval& ev = o.value();
      w_out += ev.residency * ev.p_out_w;
      w_in += ev.residency * ev.p_in_w;
      rep.worst_droop_pp_v = std::max(rep.worst_droop_pp_v, ev.droop_pp_v);
      rep.cells.push_back(ev);
    } else {
      cell_level.record_skip(o.diagnostics());
      rep.complete = false;
    }
  }
  merged.merge(cell_level);
  if (report) report->merge(merged);
  if (cell_level.n_survived == 0 && cell_level.n_evaluated > 0)
    throw_all_failed("scenario_eval", cell_level);

  metrics::registry().counter("scenario.cells").add(rep.cells.size());
  rep.p_out_avg_w = w_out;
  rep.p_in_avg_w = w_in;
  rep.weighted_efficiency = w_in > 0.0 ? w_out / w_in : 0.0;
  IVORY_CHECK_FINITE(rep.weighted_efficiency, "evaluate_scenario");
  return rep;
}

json::Value to_json(const ScenarioReport& r) {
  using json::Value;
  Value::Array cells;
  cells.reserve(r.cells.size());
  for (const StateEval& ev : r.cells) {
    Value::Object c;
    c.emplace_back("domain", ev.domain);
    c.emplace_back("state", ev.state);
    c.emplace_back("delivery", delivery_name(ev.delivery));
    c.emplace_back("gated", ev.gated);
    c.emplace_back("residency", ev.residency);
    c.emplace_back("v_v", ev.v_v);
    c.emplace_back("f_hz", ev.f_hz);
    c.emplace_back("i_avg_a", ev.i_avg_a);
    c.emplace_back("p_out_w", ev.p_out_w);
    c.emplace_back("p_in_w", ev.p_in_w);
    c.emplace_back("efficiency", ev.efficiency);
    c.emplace_back("droop_pp_v", ev.droop_pp_v);
    cells.push_back(Value(std::move(c)));
  }
  Value::Object o;
  o.emplace_back("scenario", r.scenario);
  o.emplace_back("complete", r.complete);
  o.emplace_back("has_ivr", r.has_ivr);
  o.emplace_back("weighted_efficiency", r.weighted_efficiency);
  o.emplace_back("p_out_avg_w", r.p_out_avg_w);
  o.emplace_back("p_in_avg_w", r.p_in_avg_w);
  o.emplace_back("worst_droop_pp_v", r.worst_droop_pp_v);
  o.emplace_back("area_m2", r.area_m2);
  if (r.has_ivr) o.emplace_back("design", core::to_json(r.design));
  o.emplace_back("cells", Value(std::move(cells)));
  return Value(std::move(o));
}

}  // namespace ivory::scenario
