#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace ivory::workload {

double PowerTrace::average() const {
  require(!watts.empty(), "PowerTrace::average: empty trace");
  double acc = 0.0;
  for (double w : watts) acc += w;
  return acc / static_cast<double>(watts.size());
}

double PowerTrace::peak() const {
  require(!watts.empty(), "PowerTrace::peak: empty trace");
  return *std::max_element(watts.begin(), watts.end());
}

PowerTrace PowerTrace::sum(const std::vector<PowerTrace>& traces) {
  require(!traces.empty(), "PowerTrace::sum: no traces");
  PowerTrace out;
  out.dt_s = traces.front().dt_s;
  out.watts.assign(traces.front().watts.size(), 0.0);
  for (std::size_t ti = 0; ti < traces.size(); ++ti) {
    const PowerTrace& t = traces[ti];
    // Name the offending trace so a caller mixing generated and file-loaded
    // traces can tell which input is off (the diagnostics pipeline carries
    // this message through ErrorCode::InvalidParameter).
    if (t.dt_s != out.dt_s)
      throw InvalidParameter("PowerTrace::sum: trace " + std::to_string(ti) + ": dt " +
                             std::to_string(t.dt_s) + " != " + std::to_string(out.dt_s) +
                             " of trace 0");
    if (t.watts.size() != out.watts.size())
      throw InvalidParameter("PowerTrace::sum: trace " + std::to_string(ti) + ": length " +
                             std::to_string(t.watts.size()) + " != " +
                             std::to_string(out.watts.size()) + " of trace 0");
    for (std::size_t i = 0; i < t.watts.size(); ++i) out.watts[i] += t.watts[i];
  }
  return out;
}

const char* benchmark_name(Benchmark b) {
  switch (b) {
    case Benchmark::BACKP: return "BACKP";
    case Benchmark::BFS2: return "BFS2";
    case Benchmark::CFD: return "CFD";
    case Benchmark::HOTSP: return "HOTSP";
    case Benchmark::KMN: return "KMN";
    case Benchmark::LUD: return "LUD";
    case Benchmark::MGST: return "MGST";
  }
  return "?";
}

Benchmark benchmark_from_string(const std::string& name) {
  for (Benchmark b : kAllBenchmarks)
    if (name == benchmark_name(b)) return b;
  std::string known;
  for (Benchmark b : kAllBenchmarks) {
    if (!known.empty()) known += ", ";
    known += benchmark_name(b);
  }
  throw InvalidParameter("benchmark_from_string: unknown benchmark '" + name + "' (known: " +
                         known + ")");
}

TraceStyle benchmark_style(Benchmark b) {
  // Profiles chosen to mimic the per-benchmark behaviour visible in the
  // GPUVolt data: CFD is the noisiest (deep kernel phases, large swings) and
  // HOTSP the calmest; BFS2 is irregular and spiky; KMN bursts periodically.
  switch (b) {
    case Benchmark::BACKP: return {0.15, 0.8e-6, 0.20, 5e-6, 2e5, 0.4, 0.7};
    case Benchmark::BFS2:  return {0.30, 0.5e-6, 0.15, 7e-6, 6e5, 0.6, 0.5};
    case Benchmark::CFD:   return {0.25, 1.0e-6, 0.50, 8e-6, 3e5, 0.7, 0.8};
    case Benchmark::HOTSP: return {0.10, 1.2e-6, 0.10, 6e-6, 1e5, 0.3, 0.7};
    case Benchmark::KMN:   return {0.18, 0.6e-6, 0.40, 3e-6, 4e5, 0.5, 0.75};
    case Benchmark::LUD:   return {0.20, 0.9e-6, 0.30, 10e-6, 2e5, 0.5, 0.6};
    case Benchmark::MGST:  return {0.20, 0.7e-6, 0.25, 6e-6, 3e5, 0.4, 0.65};
  }
  throw InvalidParameter("benchmark_style: unknown benchmark");
}

std::vector<PowerTrace> generate_gpu_traces(Benchmark b, int n_sm, double sm_avg_w,
                                            double duration_s, double dt_s, std::uint64_t seed) {
  require(n_sm >= 1, "generate_gpu_traces: need at least one SM");
  require(sm_avg_w > 0.0, "generate_gpu_traces: average power must be positive");
  require(duration_s > dt_s && dt_s > 0.0, "generate_gpu_traces: bad duration/dt");

  const TraceStyle style = benchmark_style(b);
  const std::size_t n = static_cast<std::size_t>(duration_s / dt_s);

  // Common (cross-SM correlated) OU noise and shared kernel phase.
  Pcg32 common_rng(seed, 0x9e3779b97f4a7c15ULL);
  const double alpha = std::exp(-dt_s / style.noise_tau_s);
  const double sigma_step = std::sqrt(1.0 - alpha * alpha);
  std::vector<double> common_noise(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x = alpha * x + sigma_step * common_rng.normal();
    common_noise[i] = x;
  }

  std::vector<PowerTrace> out;
  out.reserve(static_cast<std::size_t>(n_sm));
  const double rho = style.sm_correlation;
  for (int sm = 0; sm < n_sm; ++sm) {
    Pcg32 rng(seed + 17u * static_cast<std::uint64_t>(sm + 1), 0xda3e39cb94b95bdbULL);
    PowerTrace trace;
    trace.dt_s = dt_s;
    trace.watts.resize(n);

    double own = 0.0;
    double spike = 0.0;
    // Microarchitectural events (pipeline flushes, warp stalls, barrier
    // releases) give GPU current its fast di/dt content: sharp-onset spikes
    // and dips with ~80 ns tails.
    const double spike_decay = std::exp(-dt_s / (80e-9));
    const double phase_shift = 0.03 * static_cast<double>(sm);  // SMs slightly skewed.
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) * dt_s;
      own = alpha * own + sigma_step * rng.normal();
      const double noise = rho * common_noise[i] + std::sqrt(1.0 - rho * rho) * own;

      // Kernel phases: clipped sine gives flat-topped compute phases with
      // dips at kernel boundaries.
      const double ph = std::sin(2.0 * pi * (t / style.phase_period_s + phase_shift));
      const double phase = style.phase_depth * std::clamp(1.5 * ph, -1.0, 1.0);

      spike *= spike_decay;
      if (rng.bernoulli(style.spike_rate_hz * dt_s)) {
        const double sign = rng.bernoulli(0.7) ? 1.0 : -0.8;
        spike += sign * style.spike_frac * rng.uniform(0.5, 1.0);
      }

      double w = sm_avg_w * (1.0 + phase + style.noise_frac * noise + spike);
      // Physical clamps: idle floor and thermal-limit ceiling.
      w = std::clamp(w, 0.2 * sm_avg_w, 2.5 * sm_avg_w);
      trace.watts[i] = w;
    }
    out.push_back(std::move(trace));
  }
  return out;
}

void write_traces_csv(std::ostream& out, const std::vector<PowerTrace>& traces) {
  require(!traces.empty(), "write_traces_csv: no traces");
  const double dt = traces.front().dt_s;
  const std::size_t n = traces.front().watts.size();
  require(n >= 2, "write_traces_csv: traces too short");
  for (const PowerTrace& t : traces) {
    require(t.dt_s == dt, "write_traces_csv: mismatched dt");
    require(t.watts.size() == n, "write_traces_csv: mismatched length");
  }
  out << "time_s";
  for (std::size_t s = 0; s < traces.size(); ++s) out << ",sm" << s << "_w";
  out << "\n";
  out.precision(9);
  for (std::size_t k = 0; k < n; ++k) {
    out << static_cast<double>(k) * dt;
    for (const PowerTrace& t : traces) out << ',' << t.watts[k];
    out << "\n";
  }
}

std::vector<PowerTrace> read_traces_csv(std::istream& in) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)), "read_traces_csv: empty input");
  // Column count from the header.
  std::size_t n_cols = 1;
  for (char ch : line)
    if (ch == ',') ++n_cols;
  require(n_cols >= 2, "read_traces_csv: need a time column and at least one trace");

  std::vector<double> times;
  std::vector<PowerTrace> traces(n_cols - 1);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t row = times.size();  // 0-based sample index of this data row.
    std::size_t pos = 0, col = 0;
    while (col < n_cols) {
      const std::size_t comma = line.find(',', pos);
      const std::string cell =
          line.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
      require(!cell.empty(), "read_traces_csv: empty cell at sample " + std::to_string(row) +
                                 ", column " + std::to_string(col));
      double v = 0.0;
      try {
        std::size_t used = 0;
        v = std::stod(cell, &used);
        require(used == cell.size(), "trailing garbage");
      } catch (const std::exception&) {
        throw InvalidParameter("read_traces_csv: unparseable cell '" + cell + "' at sample " +
                               std::to_string(row) + ", column " + std::to_string(col));
      }
      if (!std::isfinite(v))
        throw InvalidParameter("read_traces_csv: non-finite value at sample " +
                               std::to_string(row) + ", column " + std::to_string(col));
      if (col == 0)
        times.push_back(v);
      else
        traces[col - 1].watts.push_back(v);
      require(comma != std::string::npos || col == n_cols - 1,
              "read_traces_csv: row at sample " + std::to_string(row) + " has too few columns");
      pos = comma + 1;
      ++col;
    }
  }
  require(times.size() >= 2, "read_traces_csv: need at least two samples");
  const double dt = times[1] - times[0];
  require(dt > 0.0, "read_traces_csv: time column must increase (sample 1)");
  for (std::size_t k = 1; k < times.size(); ++k) {
    const double step = times[k] - times[k - 1];
    require(step > 0.0, "read_traces_csv: non-increasing timestamp at sample " +
                            std::to_string(k));
    require(std::fabs(step - dt) <= 0.01 * dt,
            "read_traces_csv: non-uniform sampling at sample " + std::to_string(k));
  }
  for (PowerTrace& t : traces) t.dt_s = dt;
  return traces;
}

double DigitalLoadModel::power(double v, double f_hz, double activity) const {
  require(v > 0.0 && f_hz > 0.0, "DigitalLoadModel::power: v and f must be positive");
  require(activity >= 0.0, "DigitalLoadModel::power: activity must be non-negative");
  const double vr = v / v_nom_v;
  const double dyn = p_dyn_nom_w * activity * vr * vr * (f_hz / f_nom_hz);
  const double leak = p_leak_nom_w * vr * vr * vr;
  return dyn + leak;
}

double DigitalLoadModel::current(double v, double f_hz, double activity) const {
  return power(v, f_hz, activity) / v;
}

DigitalLoadModel DigitalLoadModel::from_average_power(double p_avg_w, double v_nom_v,
                                                      double f_nom_hz, double leak_fraction) {
  require(p_avg_w > 0.0, "DigitalLoadModel: average power must be positive");
  require(leak_fraction >= 0.0 && leak_fraction < 1.0,
          "DigitalLoadModel: leak fraction must be in [0, 1)");
  DigitalLoadModel m;
  m.v_nom_v = v_nom_v;
  m.f_nom_hz = f_nom_hz;
  m.p_leak_nom_w = p_avg_w * leak_fraction;
  m.p_dyn_nom_w = p_avg_w - m.p_leak_nom_w;
  return m;
}

std::vector<double> power_to_current(const PowerTrace& trace, const DigitalLoadModel& load,
                                     double v) {
  require(!trace.watts.empty(), "power_to_current: empty trace");
  require(v > 0.0, "power_to_current: voltage must be positive");
  // Each sample's activity is inferred at nominal conditions, then replayed
  // at voltage v: dynamic power rescales by (v/vn)^2, leakage by (v/vn)^3.
  std::vector<double> out(trace.watts.size());
  for (std::size_t i = 0; i < trace.watts.size(); ++i) {
    const double p_dyn_nom = std::max(trace.watts[i] - load.p_leak_nom_w, 0.0);
    const double activity = load.p_dyn_nom_w > 0.0 ? p_dyn_nom / load.p_dyn_nom_w : 0.0;
    out[i] = load.current(v, load.f_nom_hz, activity);
  }
  return out;
}

void check_power_states(const std::vector<PowerStateSpec>& states) {
  require(!states.empty(), "check_power_states: need at least one state");
  double total = 0.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    const PowerStateSpec& s = states[i];
    const std::string where = "state " + std::to_string(i) +
                              (s.name.empty() ? "" : " (" + s.name + ")");
    require(s.v_v > 0.0 && s.f_hz > 0.0,
            "check_power_states: " + where + ": v and f must be positive");
    require(s.activity >= 0.0, "check_power_states: " + where + ": negative activity");
    require(s.residency >= 0.0, "check_power_states: " + where + ": negative residency");
    total += s.residency;
  }
  require(std::fabs(total - 1.0) <= 1e-9,
          "check_power_states: residencies sum to " + std::to_string(total) + ", expected 1");
}

std::vector<PowerStateSpec> residency_preset(const std::string& name) {
  // V/f points are expressed against the default 1.0 V / 1 GHz nominal of
  // the case study. "gpu-dvfs-step" encodes exactly the fast-DVFS excursion
  // of examples/dvfs_transient.cpp (1.00 V / 1 GHz <-> 0.85 V / 0.7 GHz).
  std::vector<PowerStateSpec> states;
  if (name == "gpu-dvfs-step") {
    states = {{"perf", 1.00, 1.0e9, 1.0, 0.65, false},
              {"eco", 0.85, 0.7e9, 1.0, 0.35, false}};
  } else if (name == "active-idle") {
    states = {{"active", 1.00, 1.0e9, 1.0, 0.30, false},
              {"idle", 0.70, 0.2e9, 0.05, 0.70, true}};
  } else if (name == "race-to-halt") {
    states = {{"burst", 1.00, 1.2e9, 1.0, 0.20, false},
              {"nominal", 0.95, 0.9e9, 0.70, 0.20, false},
              {"halt", 0.65, 0.1e9, 0.02, 0.60, true}};
  } else if (name == "server-diurnal") {
    states = {{"peak", 1.00, 1.1e9, 1.0, 0.35, false},
              {"typical", 0.92, 0.85e9, 0.60, 0.45, false},
              {"trough", 0.80, 0.5e9, 0.25, 0.20, false}};
  } else {
    std::string known;
    for (const std::string& n : residency_preset_names())
      known += (known.empty() ? "" : ", ") + n;
    throw InvalidParameter("residency_preset: unknown preset '" + name + "' (known: " + known +
                           ")");
  }
  check_power_states(states);
  return states;
}

std::vector<std::string> residency_preset_names() {
  return {"gpu-dvfs-step", "active-idle", "race-to-halt", "server-diurnal"};
}

DvfsSchedule down_and_back_schedule(const std::vector<PowerStateSpec>& states, double dwell_s) {
  require(dwell_s > 0.0, "down_and_back_schedule: dwell must be positive");
  std::vector<DvfsPoint> points;
  for (const PowerStateSpec& s : states) {
    if (s.gated) continue;  // A gated state has no DVFS setpoint to dwell on.
    points.push_back({static_cast<double>(points.size()) * dwell_s, s.v_v, s.f_hz});
  }
  require(!points.empty(), "down_and_back_schedule: no non-gated states");
  points.push_back({static_cast<double>(points.size()) * dwell_s, points.front().v_v,
                    points.front().f_hz});
  return DvfsSchedule(std::move(points));
}

DvfsSchedule::DvfsSchedule(std::vector<DvfsPoint> points) : points_(std::move(points)) {
  require(!points_.empty(), "DvfsSchedule: need at least one point");
  require(points_.front().t_s == 0.0, "DvfsSchedule: first point must be at t = 0");
  for (std::size_t i = 1; i < points_.size(); ++i)
    require(points_[i].t_s > points_[i - 1].t_s, "DvfsSchedule: times must increase");
  for (const DvfsPoint& p : points_)
    require(p.v_v > 0.0 && p.f_hz > 0.0, "DvfsSchedule: v and f must be positive");
}

const DvfsPoint& DvfsSchedule::at(double t) const {
  const DvfsPoint* best = &points_.front();
  for (const DvfsPoint& p : points_) {
    if (p.t_s <= t) best = &p;
    else break;
  }
  return *best;
}

DvfsSchedule DvfsSchedule::constant(double v, double f_hz) {
  return DvfsSchedule({{0.0, v, f_hz}});
}

}  // namespace ivory::workload
