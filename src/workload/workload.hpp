// Workload substrate: GPU power traces, digital load model, DVFS schedules.
//
// The paper's case study feeds Ivory with per-SM power traces from GPGPU-Sim
// + GPUWattch runs of CUDA SDK / Rodinia benchmarks. Those simulators are
// not reproducible here, so this module synthesizes per-SM traces with the
// published second-order characteristics instead (see DESIGN.md,
// substitutions): each benchmark is a seeded Ornstein-Uhlenbeck process
// around its mean power, modulated by kernel-phase oscillation and sprinkled
// with exponentially-decaying activity spikes. SMs within one benchmark run
// share a correlated common component (SIMT kernels launch across SMs
// together).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/interp.hpp"

namespace ivory::workload {

/// A sampled power (or current) trace.
struct PowerTrace {
  double dt_s = 0.0;
  std::vector<double> watts;

  double duration() const { return dt_s * static_cast<double>(watts.size()); }
  double average() const;
  double peak() const;
  /// Sum of several traces sample-by-sample (must share dt and length).
  static PowerTrace sum(const std::vector<PowerTrace>& traces);
};

/// The Rodinia / CUDA-SDK benchmarks the paper's Figs. 10-11 sweep.
enum class Benchmark { BACKP, BFS2, CFD, HOTSP, KMN, LUD, MGST };

constexpr Benchmark kAllBenchmarks[] = {Benchmark::BACKP, Benchmark::BFS2, Benchmark::CFD,
                                        Benchmark::HOTSP, Benchmark::KMN,  Benchmark::LUD,
                                        Benchmark::MGST};

const char* benchmark_name(Benchmark b);

/// Inverse of benchmark_name; throws InvalidParameter listing the known
/// names on a miss.
Benchmark benchmark_from_string(const std::string& name);

/// Statistical profile of one benchmark's per-SM power behaviour.
struct TraceStyle {
  double noise_frac;      ///< OU-noise standard deviation / mean.
  double noise_tau_s;     ///< OU correlation time.
  double phase_depth;     ///< Kernel-phase modulation amplitude / mean.
  double phase_period_s;  ///< Kernel-phase period.
  double spike_rate_hz;   ///< Activity-spike arrival rate.
  double spike_frac;      ///< Spike amplitude / mean.
  double sm_correlation;  ///< Correlation of the noise across SMs, in [0, 1].
};

TraceStyle benchmark_style(Benchmark b);

/// Generates per-SM power traces for `n_sm` SMs running `b`, each with
/// average power `sm_avg_w`, deterministically from `seed`.
std::vector<PowerTrace> generate_gpu_traces(Benchmark b, int n_sm, double sm_avg_w,
                                            double duration_s, double dt_s,
                                            std::uint64_t seed = 1);

/// Writes per-SM traces as CSV: a header line, then `time_s,sm0_w,sm1_w,...`
/// rows. All traces must share dt and length.
void write_traces_csv(std::ostream& out, const std::vector<PowerTrace>& traces);

/// Reads traces written by write_traces_csv (or produced by an external
/// power simulator in the same shape). The sample interval is inferred from
/// the time column and must be uniform to within 1%.
std::vector<PowerTrace> read_traces_csv(std::istream& in);

/// Digital-logic load: converts power at nominal conditions into current at
/// arbitrary voltage/frequency/activity (paper Section 3.2: "we also embed
/// the dynamic and leakage current model of a typical digital logic load to
/// handle DVFS natively").
struct DigitalLoadModel {
  double v_nom_v;
  double f_nom_hz;
  double p_dyn_nom_w;   ///< Dynamic power at (v_nom, f_nom, activity 1).
  double p_leak_nom_w;  ///< Leakage power at v_nom.

  /// Dynamic power scales as activity * (v/vn)^2 * (f/fn); leakage grows
  /// super-linearly with voltage (DIBL), modeled as (v/vn)^3.
  double power(double v, double f_hz, double activity) const;
  /// Load current drawn at the supply: power / v.
  double current(double v, double f_hz, double activity) const;

  /// Builds a model from a total average power split into dynamic + leakage.
  static DigitalLoadModel from_average_power(double p_avg_w, double v_nom_v, double f_nom_hz,
                                             double leak_fraction = 0.2);
};

/// Converts a power trace recorded at nominal voltage into the current trace
/// drawn from supply voltage `v` (activity inferred per sample).
std::vector<double> power_to_current(const PowerTrace& trace, const DigitalLoadModel& load,
                                     double v);

class DvfsSchedule;

/// One named operating point of a power-state residency scenario: a V/f
/// setpoint, the mean switching activity relative to nominal, the fraction
/// of time the domain is resident in the state, and whether the domain is
/// power-gated while resident (gated states draw no useful power).
struct PowerStateSpec {
  std::string name;
  double v_v = 0.0;
  double f_hz = 0.0;
  double activity = 1.0;
  double residency = 0.0;  ///< Fraction of time in this state; sums to 1.
  bool gated = false;
};

/// Residencies must be non-negative and sum to 1 (within 1e-9), states
/// non-empty with positive v/f; throws InvalidParameter naming the offending
/// state index otherwise.
void check_power_states(const std::vector<PowerStateSpec>& states);

/// Named residency mixes (FlexWatts-style power-state distributions):
/// "gpu-dvfs-step", "active-idle", "race-to-halt", "server-diurnal".
std::vector<PowerStateSpec> residency_preset(const std::string& name);
std::vector<std::string> residency_preset_names();

/// Piecewise-constant DVFS schedule that dwells `dwell_s` on each non-gated
/// state in order and then returns to the first: states[0] at t = 0,
/// states[1] at dwell, ..., states[0] again at n * dwell.
DvfsSchedule down_and_back_schedule(const std::vector<PowerStateSpec>& states, double dwell_s);

/// A DVFS schedule: piecewise-constant (v, f) setpoints over time.
struct DvfsPoint {
  double t_s;
  double v_v;
  double f_hz;
};

class DvfsSchedule {
 public:
  /// Points must have strictly increasing times, first at t = 0.
  explicit DvfsSchedule(std::vector<DvfsPoint> points);

  const DvfsPoint& at(double t) const;
  const std::vector<DvfsPoint>& points() const { return points_; }

  /// Constant (v, f) forever.
  static DvfsSchedule constant(double v, double f_hz);

 private:
  std::vector<DvfsPoint> points_;
};

}  // namespace ivory::workload
