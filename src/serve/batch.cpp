#include "serve/batch.hpp"

#include <chrono>
#include <istream>
#include <memory>
#include <ostream>
#include <thread>

namespace ivory::serve {

BatchSummary run_batch(std::istream& in, std::ostream& out, Service& service,
                       const BatchOptions& opt) {
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(std::move(line));
  }

  Scheduler::Options sopt;
  sopt.wave = opt.wave;
  sopt.queue_capacity = opt.queue_capacity;
  sopt.stream_slots = opt.stream_slots;
  Scheduler scheduler(service, sopt);

  BatchSummary summary;
  const auto t0 = std::chrono::steady_clock::now();
  const int passes = opt.repeat < 1 ? 1 : opt.repeat;
  for (int pass = 0; pass < passes; ++pass) {
    const ServiceStats before = service.stats();
    const int client = scheduler.open_client();
    // Same ordered-delivery machinery as the socket transport: one slot per
    // request in submission order, one writer draining to `out`, so plain
    // lines and streamed frame runs interleave exactly as submitted.
    DeliveryQueue dq(opt.stream_window);
    std::thread writer([&dq, &out] {
      std::string bytes;
      while (dq.next(bytes)) out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    });
    for (const std::string& line : lines) {
      const TransportDirective d = classify_line(line);
      if (d.is_cancel) {
        const bool hit = scheduler.cancel(client, d.cancel_id);
        std::string resp = "{\"id\":";
        resp += d.id.write();
        resp += ",\"ok\":true,\"result\":{\"cancelled\":";
        resp += hit ? "true" : "false";
        resp += "}}\n";
        dq.open_plain()->set(std::move(resp));
        continue;
      }
      if (d.is_stream) {
        scheduler.submit_stream(client, line, dq.open_stream());
        continue;
      }
      std::shared_ptr<DeliveryQueue::Plain> slot = dq.open_plain();
      scheduler.submit(client, line, [slot](const std::string& response) {
        slot->set(response + "\n");
      });
    }
    scheduler.drain();
    scheduler.close_client(client);
    dq.close_submit();
    writer.join();
    const ServiceStats after = service.stats();

    BatchPassStats p;
    p.requests = lines.size();
    p.hits = after.cache.hits - before.cache.hits;
    p.misses = after.cache.misses - before.cache.misses;
    p.evictions = after.cache.evictions - before.cache.evictions;
    p.evaluations = after.n_evaluations - before.n_evaluations;
    p.errors = after.n_errors - before.n_errors;
    p.store_hits = after.store_hits - before.store_hits;
    summary.passes.push_back(p);
    summary.requests += p.requests;
  }
  summary.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.flush();
  return summary;
}

std::string summary_json(const BatchSummary& summary) {
  json::Value::Array passes;
  for (const BatchPassStats& p : summary.passes) {
    json::Value::Object o;
    o.emplace_back("requests", p.requests);
    o.emplace_back("cache_hits", p.hits);
    o.emplace_back("cache_misses", p.misses);
    o.emplace_back("cache_evictions", p.evictions);
    o.emplace_back("evaluations", p.evaluations);
    o.emplace_back("errors", p.errors);
    o.emplace_back("store_hits", p.store_hits);
    o.emplace_back("hit_rate", p.hit_rate());
    passes.emplace_back(std::move(o));
  }
  json::Value::Object o;
  o.emplace_back("requests", summary.requests);
  o.emplace_back("wall_s", summary.wall_s);
  o.emplace_back("requests_per_s",
                 summary.wall_s > 0.0
                     ? static_cast<double>(summary.requests) / summary.wall_s
                     : 0.0);
  o.emplace_back("passes", json::Value(std::move(passes)));
  return json::Value(std::move(o)).write();
}

}  // namespace ivory::serve
