// Sharded LRU result cache, content-addressed by the canonical request form.
//
// Keys are (fnv1a64 hash, canonical JSON string); the full canonical string
// is stored and compared on lookup, so a 64-bit hash collision degrades to a
// miss instead of serving a wrong result. Values are the serialized response
// payloads — caching the exact bytes is what makes cached and cold responses
// byte-identical by construction.
//
// Sharding: the hash selects one of N independently-locked LRU shards, so
// concurrent pool workers rarely contend. Capacity is split evenly across
// shards (per-shard LRU, not global — an intentionally cheap approximation;
// a pathological key distribution can evict earlier than a global LRU
// would, which costs a re-evaluation, never a wrong answer).
// Counter discipline: hit/miss/eviction tallies are std::atomic — bumped at
// event time (inside the shard lock) but *read* lock-free by stats(), so
// concurrent clients polling the "stats"/"metrics" ops never contend with
// the lookup path and never read torn values. Every event is also routed to
// the process metrics registry ("serve.cache.*"), which aggregates across
// all caches in the process; the per-instance CacheStats remain the
// per-Service snapshot the batch transport diffs between passes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ivory::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;
};

class ResultCache {
 public:
  /// `capacity` is the total entry budget across all shards (min 1).
  /// `shards` is clamped so every shard holds at least one entry.
  explicit ResultCache(std::size_t capacity, std::size_t shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached payload and promotes the entry to most-recent, or
  /// nullopt (counting a miss).
  std::optional<std::string> lookup(std::uint64_t key_hash, std::string_view canonical_key);

  /// Inserts (or refreshes) an entry, evicting the shard's least-recently
  /// used entry when full.
  void insert(std::uint64_t key_hash, std::string canonical_key, std::string payload);

  CacheStats stats() const;
  void clear();

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::string payload;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    /// Views point into Entry::key of lru nodes (stable across splice).
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    /// Written under mu, read lock-free by stats().
    std::atomic<std::uint64_t> hits{0}, misses{0}, evictions{0};
    std::atomic<std::uint64_t> entries{0};  ///< == lru.size(), mirrored on change
  };

  Shard& shard_for(std::uint64_t key_hash) {
    return shards_[key_hash % shards_.size()];
  }

  std::size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace ivory::serve
