#include "serve/service.hpp"

#include <chrono>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/statistics.hpp"
#include "common/trace.hpp"
#include "core/dynamic.hpp"
#include "core/pds.hpp"
#include "core/report_json.hpp"
#include "scenario/scenario.hpp"
#include "serve/wave_codec.hpp"
#include "spice/parser.hpp"

namespace ivory::serve {

namespace {

/// Registry handles for the request pipeline, resolved once. The three
/// histograms split a request's wall time into its phases: decode (JSON
/// parse + envelope/body validation), eval (the model evaluation inside the
/// quarantine), encode (response serialization + cache publication).
struct ServeMetrics {
  metrics::Counter& requests = metrics::registry().counter("serve.requests");
  metrics::Counter& errors = metrics::registry().counter("serve.errors");
  metrics::Counter& evaluations = metrics::registry().counter("serve.evaluations");
  metrics::Histogram& decode_ms = metrics::registry().histogram("serve.decode_ms");
  metrics::Histogram& eval_ms = metrics::registry().histogram("serve.eval_ms");
  metrics::Histogram& encode_ms = metrics::registry().histogram("serve.encode_ms");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string ok_response(const json::Value& id, const std::string& payload) {
  std::string out = "{\"id\":";
  out += id.write();
  out += ",\"ok\":true,\"result\":";
  out += payload;
  out += "}";
  return out;
}

std::string error_envelope(const json::Value& id, const json::Value& error) {
  std::string out = "{\"id\":";
  out += id.write();
  out += ",\"ok\":false,\"error\":";
  out += error.write();
  out += "}";
  return out;
}

/// Candidate label for quarantine diagnostics: the canonical body, truncated
/// so one pathological request cannot bloat a report.
std::string candidate_label(const Request& req) {
  constexpr std::size_t kMax = 160;
  if (req.canonical.size() <= kMax) return req.canonical;
  return req.canonical.substr(0, kMax) + "...";
}

json::Value box_to_json(const BoxStats& b) {
  json::Value::Object o;
  o.emplace_back("minimum", b.minimum);
  o.emplace_back("whisker_low", b.whisker_low);
  o.emplace_back("q1", b.q1);
  o.emplace_back("median", b.median);
  o.emplace_back("q3", b.q3);
  o.emplace_back("whisker_high", b.whisker_high);
  o.emplace_back("maximum", b.maximum);
  o.emplace_back("n", static_cast<std::uint64_t>(b.n));
  return json::Value(std::move(o));
}

/// Switch-level transient setup shared by the buffered (evaluate) and
/// streamed (stream_wave1) paths: both must produce the same circuit, spec
/// and recorded-node names so their outputs are byte-identical.
struct SpicePrep {
  spice::Circuit ckt;
  spice::TranSpec spec;
  std::vector<std::string> names;  ///< names of the effective recorded nodes
};

SpicePrep prepare_spice(const TransientParams& p, std::size_t max_samples) {
  // Switch-level MNA transient. The same sample budget that bounds inline
  // traces bounds the step count here.
  require(p.tstop_s / p.dt_s <= static_cast<double>(max_samples),
          "transient: tstop/dt exceeds the per-request sample budget");
  SpicePrep sp;
  sp.ckt = spice::parse_netlist(p.netlist);
  sp.spec.tstop = p.tstop_s;
  sp.spec.dt = p.dt_s;
  sp.spec.method = p.trapezoidal ? spice::Integrator::Trapezoidal
                                 : spice::Integrator::BackwardEuler;
  sp.spec.use_ic = p.use_ic;
  sp.spec.record_every = p.record_every;
  sp.spec.adaptive = p.adaptive;
  sp.spec.dv_max_v = p.dv_max_v;
  sp.spec.dt_max = p.dt_max_s;
  sp.spec.lu_cache_capacity = p.lu_cache_capacity;
  sp.spec.kernel = p.kernel == "dense"    ? sparse::Kernel::Dense
                   : p.kernel == "banded" ? sparse::Kernel::Banded
                   : p.kernel == "sparse" ? sparse::Kernel::Sparse
                                          : sparse::Kernel::Auto;
  for (const std::string& name : p.record_nodes)
    sp.spec.record_nodes.push_back(sp.ckt.find_node(name));
  // Effective recorded nodes, mirroring the engine's default (empty = all
  // non-ground nodes) so the names are known before the run starts.
  std::vector<spice::NodeId> nodes = sp.spec.record_nodes;
  if (nodes.empty())
    for (int n = 1; n < sp.ckt.node_count(); ++n) nodes.push_back(n);
  sp.names.reserve(nodes.size());
  for (const spice::NodeId n : nodes) sp.names.push_back(sp.ckt.node_name(n));
  return sp;
}

/// Behavioural (cycle-model) waveform shared by both paths.
core::DynWaveform behavioural_waveform(const TransientParams& p,
                                       std::size_t max_samples) {
  std::vector<double> i_load;
  if (p.has_workload) {
    const std::size_t n_samples = static_cast<std::size_t>(p.duration_s / p.dt_s);
    require(n_samples <= max_samples,
            "transient: duration/dt exceeds the per-request sample budget");
    const auto traces = workload::generate_gpu_traces(p.benchmark, p.n_sm, p.sm_avg_w,
                                                      p.duration_s, p.dt_s, p.seed);
    const workload::DigitalLoadModel load =
        workload::DigitalLoadModel::from_average_power(p.sm_avg_w, p.vref_v, 1e9, 0.2);
    i_load.assign(traces[0].watts.size(), 0.0);
    for (const workload::PowerTrace& t : traces) {
      const std::vector<double> i = workload::power_to_current(t, load, p.vref_v);
      for (std::size_t k = 0; k < i_load.size(); ++k) i_load[k] += i[k];
    }
  } else {
    require(p.i_load_a.size() <= max_samples,
            "transient: inline trace exceeds the per-request sample budget");
    i_load = p.i_load_a;
  }
  core::DynWaveform w;
  switch (p.kind) {
    case TransientParams::Kind::Sc:
      w = core::sc_combined_response(p.sc, p.vin_v, p.vref_v, i_load, p.dt_s);
      break;
    case TransientParams::Kind::Buck:
      w = core::buck_combined_response(p.buck, p.vin_v, p.vref_v, i_load, p.dt_s);
      break;
    case TransientParams::Kind::Ldo:
      w = core::ldo_combined_response(p.ldo, p.vin_v, p.vref_v, i_load, p.dt_s);
      break;
    case TransientParams::Kind::Dldo:
      w = core::dldo_combined_response(p.dldo, p.vin_v, p.vref_v, i_load, p.dt_s);
      break;
    case TransientParams::Kind::Spice:
      throw InvalidParameter("transient: spice kind has no behavioural waveform");
  }
  return w;
}

/// The behavioural summary object *without* the trailing waveform member —
/// the streamed path splices the column in after these exact bytes.
json::Value behavioural_summary(const core::DynWaveform& w) {
  // Settled statistics skip the first fifth (startup transient), the same
  // warmup convention the CLI's `dynamic` subcommand uses.
  const std::vector<double> tail(w.v.begin() + static_cast<long>(w.v.size() / 5),
                                 w.v.end());
  json::Value::Object o;
  o.emplace_back("n_samples", static_cast<std::uint64_t>(w.v.size()));
  o.emplace_back("dt_s", w.dt_s);
  o.emplace_back("mean_v", mean(tail));
  o.emplace_back("p2p_v", peak_to_peak(tail));
  o.emplace_back("box", box_to_json(box_stats(tail)));
  return json::Value(std::move(o));
}

/// Registry handles for the streamed pipeline.
struct StreamMetrics {
  metrics::Counter& requests = metrics::registry().counter("serve.stream.requests");
  metrics::Counter& chunks = metrics::registry().counter("serve.stream.chunks");
  metrics::Counter& cancelled = metrics::registry().counter("serve.stream.cancelled");
  metrics::Counter& expired = metrics::registry().counter("serve.stream.expired");
  metrics::Counter& errors = metrics::registry().counter("serve.stream.errors");
};

StreamMetrics& stream_metrics() {
  static StreamMetrics m;
  return m;
}

}  // namespace

Service::Service(ServiceOptions opt)
    : opt_(opt), cache_(opt.cache_capacity, opt.cache_shards) {
  if (!opt_.cache_dir.empty()) {
    StoreOptions sopt;
    sopt.dir = opt_.cache_dir;
    sopt.max_bytes = opt_.store_max_bytes;
    store_ = std::make_unique<DurableStore>(sopt);
    if (opt_.warm_load) {
      // Replay survivors into the in-memory LRU, oldest-first, so recency
      // carries across the restart. Corrupt entries are quarantined by the
      // store's verified iteration and simply don't come back.
      warm_loaded_ = store_->for_each(
          [this](std::uint64_t hash, const std::string& key, const std::string& payload) {
            cache_.insert(hash, key, payload);
          });
    }
  }
}

std::string Service::error_response(const json::Value& id, const std::string& code,
                                    const std::string& detail) {
  json::Value::Object err;
  err.emplace_back("code", code);
  err.emplace_back("site", "serve");
  err.emplace_back("candidate", "");
  err.emplace_back("detail", detail);
  return error_envelope(id, json::Value(std::move(err)));
}

std::string Service::handle_line(const std::string& line) {
  IVORY_TRACE("serve.request");
  ServeMetrics& m = serve_metrics();
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  m.requests.add();
  json::Value id;  // null until the request proves it has one

  const auto t_decode = std::chrono::steady_clock::now();
  json::Value root;
  try {
    root = json::Value::parse(line);
  } catch (const std::exception& e) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    m.errors.add();
    return error_response(id, "bad_request", e.what());
  }
  // Echo the id even when envelope validation fails below.
  if (const json::Value* i = root.find("id"))
    if (i->is_null() || i->is_string() || i->is_number()) id = *i;

  Request req;
  try {
    req = parse_request(root);
  } catch (const std::exception& e) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    m.errors.add();
    return error_response(id, "bad_request", e.what());
  }
  m.decode_ms.observe(ms_since(t_decode));

  if (req.op == Op::Stats) {
    const ServiceStats s = stats();
    json::Value::Object cache;
    cache.emplace_back("hits", s.cache.hits);
    cache.emplace_back("misses", s.cache.misses);
    cache.emplace_back("evictions", s.cache.evictions);
    cache.emplace_back("entries", s.cache.entries);
    cache.emplace_back("capacity", s.cache.capacity);
    json::Value::Object o;
    o.emplace_back("cache", json::Value(std::move(cache)));
    if (s.durable) {
      // Only present when a cache_dir is configured, so the stats response
      // of a store-less service keeps its exact historical bytes.
      json::Value::Object store;
      store.emplace_back("hits", s.store.hits);
      store.emplace_back("misses", s.store.misses);
      store.emplace_back("puts", s.store.puts);
      store.emplace_back("put_failures", s.store.put_failures);
      store.emplace_back("quarantined", s.store.quarantined);
      store.emplace_back("gc_evictions", s.store.gc_evictions);
      store.emplace_back("entries", s.store.entries);
      store.emplace_back("bytes", s.store.bytes);
      store.emplace_back("warm_loaded", s.warm_loaded);
      o.emplace_back("store", json::Value(std::move(store)));
    }
    o.emplace_back("n_requests", s.n_requests);
    o.emplace_back("n_evaluations", s.n_evaluations);
    o.emplace_back("n_errors", s.n_errors);
    o.emplace_back("metrics_enabled", metrics::enabled());
    o.emplace_back("pool_threads", static_cast<std::uint64_t>(par::global_threads()));
    return ok_response(req.id, json::Value(std::move(o)).write());
  }

  if (req.op == Op::Metrics) {
    // Live registry snapshot; like "stats", never cached and never an
    // evaluation. The payload is canonical JSON so clients can hash or
    // diff snapshots bytewise.
    return ok_response(req.id, metrics::registry().to_json().write_canonical());
  }

  if (std::optional<std::string> hit = cache_.lookup(req.key, req.canonical))
    return ok_response(req.id, *hit);
  if (store_ != nullptr) {
    // Durable tier: a verified disk hit short-circuits the evaluation and
    // refills the in-memory LRU. Corrupt entries were quarantined inside
    // get() and fall through to a fresh evaluation.
    if (std::optional<std::string> hit = store_->get(req.key, req.canonical)) {
      store_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_.insert(req.key, req.canonical, *hit);
      return ok_response(req.id, *hit);
    }
  }

  const auto t_eval = std::chrono::steady_clock::now();
  const EvalOutcome<std::string> out =
      quarantine(std::string("serve.") + op_name(req.op), candidate_label(req), [&] {
        n_evaluations_.fetch_add(1, std::memory_order_relaxed);
        serve_metrics().evaluations.add();
        return evaluate(req);
      });
  m.eval_ms.observe(ms_since(t_eval));
  if (!out.ok()) {
    // Failures are never cached: the next identical request re-evaluates.
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    m.errors.add();
    const Diagnostics& d = out.diagnostics();
    json::Value::Object err;
    err.emplace_back("code", error_code_name(d.code));
    err.emplace_back("site", d.site);
    err.emplace_back("candidate", d.candidate);
    err.emplace_back("detail", d.detail);
    return error_envelope(req.id, json::Value(std::move(err)));
  }
  const auto t_encode = std::chrono::steady_clock::now();
  cache_.insert(req.key, req.canonical, out.value());
  // Write-through to the durable tier. A publish failure (disk full, torn
  // write) downgrades durability, never correctness: the response below is
  // built from the in-memory value either way.
  if (store_ != nullptr) store_->put(req.key, req.canonical, out.value());
  std::string resp = ok_response(req.id, out.value());
  m.encode_ms.observe(ms_since(t_encode));
  return resp;
}

std::string Service::evaluate(const Request& req) {
  using json::Value;
  switch (req.op) {
    case Op::ScStatic: {
      const ScStaticParams p = sc_static_params(req.body);
      Value::Object o;
      o.emplace_back("analysis",
                     core::to_json(core::analyze_sc(p.design, p.vin_v, p.i_load_a)));
      if (p.regulate_v > 0.0)
        o.emplace_back("regulated", core::to_json(core::analyze_sc_regulated(
                                        p.design, p.vin_v, p.regulate_v, p.i_load_a)));
      return Value(std::move(o)).write();
    }
    case Op::BuckStatic: {
      const BuckStaticParams p = buck_static_params(req.body);
      Value::Object o;
      o.emplace_back("analysis", core::to_json(core::analyze_buck(p.design, p.vin_v,
                                                                  p.vout_v, p.i_load_a)));
      return Value(std::move(o)).write();
    }
    case Op::LdoStatic: {
      const LdoStaticParams p = ldo_static_params(req.body);
      Value::Object o;
      o.emplace_back("analysis", core::to_json(core::analyze_ldo(p.design, p.vin_v,
                                                                 p.vout_v, p.i_load_a)));
      return Value(std::move(o)).write();
    }
    case Op::DldoStatic: {
      const DldoStaticParams p = dldo_static_params(req.body);
      Value::Object o;
      o.emplace_back("analysis", core::to_json(core::analyze_dldo(p.design, p.vin_v,
                                                                  p.vout_v, p.i_load_a)));
      return Value(std::move(o)).write();
    }
    case Op::Explore: {
      const ExploreParams p = explore_params(req.body);
      SweepReport report;
      std::vector<core::DseResult> results = core::explore(p.sys, p.target, &report);
      // top_k bounds the response, not the sweep: the report still covers
      // every candidate evaluated.
      if (p.top_k > 0 && results.size() > static_cast<std::size_t>(p.top_k))
        results.resize(static_cast<std::size_t>(p.top_k));
      Value::Array arr;
      arr.reserve(results.size());
      for (const core::DseResult& r : results) arr.push_back(core::to_json(r));
      Value::Object o;
      o.emplace_back("results", Value(std::move(arr)));
      o.emplace_back("report", to_json(report));
      return Value(std::move(o)).write();
    }
    case Op::Pareto: {
      const ParetoParams p = pareto_params(req.body);
      SweepReport report;
      core::ParetoFront front = core::funnel_explore(p.sys, p.spec, &report);
      if (p.top_k > 0 && front.points.size() > static_cast<std::size_t>(p.top_k))
        front.points.resize(static_cast<std::size_t>(p.top_k));
      Value::Object o;
      o.emplace_back("front", core::to_json(front));
      o.emplace_back("report", to_json(report));
      return Value(std::move(o)).write();
    }
    case Op::Optimize: {
      const OptimizeParams p = optimize_params(req.body);
      SweepReport report;
      Value::Object o;
      if (p.two_stage)
        o.emplace_back("result", core::to_json(core::optimize_two_stage(
                                     p.sys, p.n_distributed, &report)));
      else
        o.emplace_back("result", core::to_json(core::optimize_topology(
                                     p.sys, p.topology, p.n_distributed, &report)));
      o.emplace_back("report", to_json(report));
      return Value(std::move(o)).write();
    }
    case Op::ScenarioEval: {
      const ScenarioEvalParams p = scenario_eval_params(req.body);
      // Bound the per-cell trace synthesis by the same budget as transients.
      require(p.spec.duration_s / p.spec.dt_s <= static_cast<double>(opt_.max_samples),
              "scenario_eval: duration/dt exceeds the per-request sample budget");
      SweepReport report;
      const scenario::ScenarioReport res =
          scenario::evaluate_scenario(p.sys, p.topology, p.n_distributed, p.spec, &report);
      Value::Object o;
      o.emplace_back("scenario", scenario::to_json(res));
      o.emplace_back("report", to_json(report));
      return Value(std::move(o)).write();
    }
    case Op::Pds: {
      const PdsParams p = pds_params(req.body);
      const core::DseResult ivr = core::optimize_topology(
          p.sys, core::IvrTopology::SwitchedCapacitor, p.n_distributed);
      require(ivr.feasible, "pds: no feasible IVR design for these constraints");
      const pdn::PdnParams pdn_params = pdn::PdnParams::gpuvolt_default();
      const core::PdsBreakdown off =
          core::evaluate_pds_offchip(p.sys, pdn_params, p.v_nom_v, p.guard_off_v);
      const core::PdsBreakdown on =
          core::evaluate_pds_ivr(p.sys, pdn_params, ivr, p.v_nom_v, p.guard_ivr_v);
      Value::Object o;
      o.emplace_back("ivr_design", core::to_json(ivr));
      o.emplace_back("offchip", core::to_json(off));
      o.emplace_back("ivr", core::to_json(on));
      o.emplace_back("improvement_points", (on.efficiency - off.efficiency) * 100.0);
      return Value(std::move(o)).write();
    }
    case Op::Transient: {
      const TransientParams p = transient_params(req.body);
      if (p.kind == TransientParams::Kind::Spice) {
        SpicePrep sp = prepare_spice(p, opt_.max_samples);
        const spice::TranResult res = spice::transient(sp.ckt, sp.spec);
        return core::to_json(res, sp.names, p.return_waveform).write();
      }
      const core::DynWaveform w = behavioural_waveform(p, opt_.max_samples);
      Value summary = behavioural_summary(w);
      if (p.return_waveform) {
        Value::Array wave;
        wave.reserve(w.v.size());
        for (const double v : w.v) wave.push_back(v);
        summary.set("waveform", Value(std::move(wave)));
      }
      return summary.write();
    }
    case Op::Stats: break;    // handled before evaluate()
    case Op::Metrics: break;  // handled before evaluate()
  }
  throw NumericalError("serve: unreachable op dispatch");
}

void Service::handle_stream(const std::string& line, StreamEmitter& em) {
  IVORY_TRACE("serve.stream.request");
  StreamMetrics& sm = stream_metrics();
  json::Value id;  // null until the request proves it has one

  json::Value root;
  try {
    root = json::Value::parse(line);
  } catch (const std::exception& e) {
    n_requests_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().requests.add();
    sm.requests.add();
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().errors.add();
    sm.errors.add();
    em.error(error_response(id, "bad_request", e.what()));
    return;
  }
  if (const json::Value* i = root.find("id"))
    if (i->is_null() || i->is_string() || i->is_number()) id = *i;

  Request req;
  try {
    req = parse_request(root);
  } catch (const std::exception& e) {
    n_requests_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().requests.add();
    sm.requests.add();
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().errors.add();
    sm.errors.add();
    em.error(error_response(id, "bad_request", e.what()));
    return;
  }
  em.set_chunk_bytes(req.chunk_bytes);
  const std::string id_json = req.id.write();

  if (req.encoding != "wave1") {
    // json encoding: the full buffered pipeline (cache included) sliced
    // into CHUNK frames. handle_line counts the request itself. The END
    // status is "ok" even when the response is an {"ok":false,...}
    // envelope — transport success; the client decodes the envelope.
    sm.requests.add();
    try {
      const std::string resp = handle_line(line);
      em.header("{\"id\":" + id_json + ",\"encoding\":\"json\"}");
      em.chunk_split(resp);
      sm.chunks.add(em.chunks_emitted());
      em.end("{\"id\":" + id_json + ",\"status\":\"ok\",\"chunks\":" +
             std::to_string(em.chunks_emitted()) + "}");
    } catch (const StreamEmitter::Abort& a) {
      switch (a.reason) {
        case StreamEmitter::Abort::Reason::Cancelled:
          sm.cancelled.add();
          em.cancel_ack(stream_status_payload(id_json, "cancelled"));
          break;
        case StreamEmitter::Abort::Reason::Expired:
          sm.expired.add();
          em.end(stream_status_payload(id_json, "deadline_exceeded"));
          break;
        case StreamEmitter::Abort::Reason::ConsumerGone:
          break;  // nobody left to tell
      }
    }
    return;
  }

  // wave1: samples stream straight out of the engine; the cache is
  // bypassed (the response never exists as one contiguous buffer).
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().requests.add();
  sm.requests.add();
  try {
    if (req.op != Op::Transient)
      throw InvalidParameter("stream: encoding 'wave1' requires op 'transient'");
    stream_wave1(req, em);
    sm.chunks.add(em.chunks_emitted());
  } catch (const StreamEmitter::Abort& a) {
    switch (a.reason) {
      case StreamEmitter::Abort::Reason::Cancelled:
        sm.cancelled.add();
        em.cancel_ack(stream_status_payload(id_json, "cancelled"));
        break;
      case StreamEmitter::Abort::Reason::Expired:
        sm.expired.add();
        em.end(stream_status_payload(id_json, "deadline_exceeded"));
        break;
      case StreamEmitter::Abort::Reason::ConsumerGone:
        break;  // client hung up; frames have nowhere to go
    }
  } catch (const std::exception&) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().errors.add();
    sm.errors.add();
    const Diagnostics d = diagnose_current_exception(
        std::string("serve.stream.") + op_name(req.op), candidate_label(req));
    json::Value::Object err;
    err.emplace_back("code", error_code_name(d.code));
    err.emplace_back("site", d.site);
    err.emplace_back("candidate", d.candidate);
    err.emplace_back("detail", d.detail);
    em.error(error_envelope(req.id, json::Value(std::move(err))));
  }
}

void Service::stream_wave1(const Request& req, StreamEmitter& em) {
  const TransientParams p = transient_params(req.body);
  if (!p.return_waveform)
    throw InvalidParameter("stream: encoding 'wave1' requires return_waveform=true");
  const std::string id_json = req.id.write();
  n_evaluations_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().evaluations.add();

  if (p.kind == TransientParams::Kind::Spice) {
    SpicePrep sp = prepare_spice(p, opt_.max_samples);
    Wave1TransientStream ws(em, id_json, sp.names);
    sp.spec.sample_sink = ws.sink();
    const spice::TranResult res = spice::transient(sp.ckt, sp.spec);
    ws.finish(res);
    return;
  }
  const core::DynWaveform w = behavioural_waveform(p, opt_.max_samples);
  Wave1ColumnStream cs(em, id_json, "waveform");
  for (const double v : w.v) {
    em.check_abort();
    cs.push(v);
  }
  cs.finish(behavioural_summary(w).write());
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.cache = cache_.stats();
  if (store_ != nullptr) {
    s.durable = true;
    s.store = store_->stats();
    s.warm_loaded = warm_loaded_;
  }
  s.store_hits = store_hits_.load(std::memory_order_relaxed);
  s.n_requests = n_requests_.load(std::memory_order_relaxed);
  s.n_evaluations = n_evaluations_.load(std::memory_order_relaxed);
  s.n_errors = n_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ivory::serve
