// wave1: compact binary waveform encoding for streamed transient responses.
//
// A wave1 stream is a HEADER frame naming the value columns, CHUNK frames
// carrying self-contained binary blocks, and an END frame whose `layout`
// array tells the client how to splice the decoded columns back into the
// exact JSON text the non-streaming path would have produced — so a decoded
// wave1 stream is byte-identical to the single-line response at any chunk
// size, thread count or worker count.
//
// Block grammar (one CHUNK payload, all integers little-endian):
//
//   u32 n_rows                       (> 0)
//   if has_time: run records until n_rows time values are covered —
//     u8  kind                       0 = literal, 1 = arithmetic
//     u32 count                      (> 0)
//     kind 0: count x f64            raw samples
//     kind 1: f64 start, f64 step    row j decodes as start + j*step, summed
//                                    iteratively (cur += step); the encoder
//                                    only emits a run it verified reproduces
//                                    the original bits that way
//   per value column, in HEADER order: n_rows x f64
//
// Fixed-step transients collapse their whole time axis to one arithmetic
// run per block; adaptive stepping degrades gracefully to literal records.
//
// The END `layout` is a JSON array alternating literal text and column
// indices (0..n_cols-1 = value columns in HEADER order; index n_cols = the
// time column when has_time). The client concatenates the text pieces and
// renders each referenced column as comma-joined shortest-round-trip
// doubles (json::append_number — the exact Value::write() spelling).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "serve/frame.hpp"
#include "spice/analysis.hpp"

namespace ivory::serve {

/// Running per-column statistics in the exact floating-point accumulation
/// order of core::to_json(TranResult): min/max fold every sample (the first
/// one twice, harmlessly), sum adds in arrival order.
struct ColumnStats {
  double lo = 0.0, hi = 0.0, sum = 0.0, last = 0.0;
  std::size_t n = 0;

  void add(double s) {
    if (n == 0) { lo = s; hi = s; }
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    sum += s;
    last = s;
    ++n;
  }
  double final_v() const { return n ? last : 0.0; }
  double mean_v() const { return n ? sum / static_cast<double>(n) : 0.0; }
};

/// Buffers rows and encodes full wave1 blocks sized to a chunk budget.
class Wave1Encoder {
 public:
  Wave1Encoder(std::size_t n_value_cols, bool has_time);

  void add_row(double t, const double* v, std::size_t n);
  bool empty() const { return buffered_ == 0; }
  /// True once the encoded block would reach `chunk_bytes` (pre-collapse
  /// estimate; run collapsing only shrinks it).
  bool full(std::size_t chunk_bytes) const;
  /// Encodes and clears the buffered rows. Precondition: !empty().
  std::string encode_block();

 private:
  std::size_t n_cols_;
  bool has_time_;
  std::size_t buffered_ = 0;
  std::vector<double> time_;
  std::vector<std::vector<double>> cols_;
};

/// Decodes wave1 blocks, accumulating columns across chunks. Every length is
/// bounds-checked against the payload; any violation throws
/// StreamProtocolError.
class Wave1Decoder {
 public:
  Wave1Decoder(std::size_t n_value_cols, bool has_time);

  void decode_block(std::string_view payload);

  std::size_t rows() const { return rows_; }
  const std::vector<double>& time() const { return time_; }
  const std::vector<double>& column(std::size_t i) const { return cols_.at(i); }
  std::size_t n_value_cols() const { return cols_.size(); }
  bool has_time() const { return has_time_; }

 private:
  bool has_time_;
  std::size_t rows_ = 0;
  std::vector<double> time_;
  std::vector<std::vector<double>> cols_;
};

/// Producer for a streamed SPICE transient: emits the HEADER up front, turns
/// the engine's sample callback into wave1 CHUNKs, and builds the END layout
/// from the finished TranResult's counters plus the streamed statistics.
/// Reassembled output is byte-identical to
/// `{"id":<id>,"ok":true,"result":` + core::to_json(res, names, true).write() + `}`.
class Wave1TransientStream {
 public:
  /// Emits the HEADER frame. `id_json` is the request id already serialized.
  Wave1TransientStream(StreamEmitter& em, std::string id_json,
                       std::vector<std::string> names);

  /// Engine-facing sample callback (rows in record-node order).
  std::function<void(double, const double*, std::size_t)> sink();

  /// Flushes buffered rows and emits the END frame. `res` supplies the
  /// counters; its waveform vectors are expected to be empty (they streamed).
  void finish(const spice::TranResult& res);

  std::size_t rows() const { return rows_; }

 private:
  StreamEmitter& em_;
  std::string id_json_;
  std::vector<std::string> names_;
  Wave1Encoder enc_;
  std::vector<ColumnStats> stats_;
  std::size_t rows_ = 0;
};

/// Producer for a streamed single-column waveform (the behavioural transient
/// ops): one value column, no time axis. finish() splices the caller's
/// summary object (the result object *without* its trailing waveform member)
/// around the streamed column.
class Wave1ColumnStream {
 public:
  Wave1ColumnStream(StreamEmitter& em, std::string id_json, std::string column_name);

  void push(double v);

  /// `summary_object_json` is the result object as Value::write() renders it,
  /// without the waveform member. The reassembled line is byte-identical to
  /// ok_response(id, <summary with `"<column>":[...]` appended last>).
  void finish(const std::string& summary_object_json);

 private:
  StreamEmitter& em_;
  std::string id_json_;
  std::string column_name_;
  Wave1Encoder enc_;
  std::size_t rows_ = 0;
};

/// Client-side reassembly of one stream into the exact non-streaming
/// response line. Feed decoded frames in order; sequencing violations,
/// malformed payloads and row-count mismatches throw StreamProtocolError.
class StreamAssembler {
 public:
  void on_frame(const Frame& f);

  bool done() const { return done_; }
  /// "ok", "cancelled", "deadline_exceeded", or "error".
  const std::string& status() const { return status_; }
  /// The reassembled response line (status "ok"), the error envelope line
  /// (status "error"), or the terminal status payload otherwise.
  const std::string& decoded() const { return decoded_; }

 private:
  void render_layout(const json::Value& end_payload);

  bool saw_header_ = false;
  bool done_ = false;
  std::string encoding_;
  bool has_time_ = false;
  std::size_t n_cols_ = 0;
  std::string text_;  ///< json-encoding accumulation
  std::unique_ptr<Wave1Decoder> dec_;
  std::size_t chunks_ = 0;
  std::string status_;
  std::string decoded_;
};

/// Drives a FrameDecoder + StreamAssembler off a blocking read function
/// (returns bytes read, 0 on EOF) until the terminal frame. `on_frame`, when
/// set, observes every frame (transcript modes). Throws StreamProtocolError
/// on malformed bytes or EOF mid-stream.
StreamAssembler read_stream(const std::function<std::size_t(char*, std::size_t)>& read,
                            const std::function<void(const Frame&)>& on_frame = {});

}  // namespace ivory::serve
