// Job scheduler for the evaluation service.
//
// A single dispatcher thread drains a bounded FIFO queue in *waves*: it
// gathers up to `wave` jobs (round-robin across client queues, preserving
// each client's submission order — fairness across concurrent multi-request
// batches), evaluates the wave on the process-wide deterministic thread pool
// (`par::parallel_map`; a request's own inner sweep parallelism then runs
// inline per the pool's nesting rule), and delivers the responses serially
// in wave order. Per-client delivery order therefore always equals
// submission order, so transports can stream responses without reordering
// buffers.
//
// Back-pressure: `submit` blocks while `queue_capacity` jobs are pending —
// a slow consumer stalls its producer instead of growing memory without
// bound. Cancellation (`cancel`) and per-request deadlines (`deadline_ms`
// envelope field) apply to *queued* jobs: a job already evaluating runs to
// completion; a cancelled or expired job is delivered as a structured
// {"ok":false} response without touching a model.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "serve/service.hpp"

namespace ivory::serve {

class Scheduler {
 public:
  struct Options {
    std::size_t queue_capacity = 1024;
    std::size_t wave = 0;       ///< jobs per wave; 0 = 4x pool threads
    bool start_paused = false;  ///< tests: queue jobs, then resume()
  };

  /// Receives one response line (no trailing newline). Invoked from the
  /// dispatcher thread, serially, in per-client submission order.
  using Sink = std::function<void(const std::string&)>;

  Scheduler(Service& service, Options opt);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a request source (one per connection / batch).
  int open_client();

  /// Marks the client done; its already-queued jobs still run and deliver.
  void close_client(int client);

  /// Enqueues one request line. Blocks while the queue is at capacity.
  void submit(int client, std::string line, Sink sink);

  /// Cancels the oldest *queued* job of `client` whose request id equals
  /// `id`. Returns false when no such job is waiting (already dispatched,
  /// delivered, or never existed).
  bool cancel(int client, const json::Value& id);

  /// Releases a start_paused scheduler.
  void resume();

  /// Blocks until every job submitted so far has been delivered.
  void drain();

  std::size_t pending() const;

 private:
  struct Job {
    std::string line;
    json::Value id;  ///< pre-parsed for cancel/deadline bookkeeping
    Sink sink;
    bool cancelled = false;
    double deadline_ms = 0.0;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct ClientQueue {
    std::deque<Job> jobs;
    bool closed = false;
  };

  void dispatcher_loop();

  Service& service_;
  Options opt_;

  mutable std::mutex mu_;
  std::condition_variable cv_space_;     ///< queue below capacity
  std::condition_variable cv_work_;      ///< work available / state change
  std::condition_variable cv_drained_;   ///< outstanding == 0
  std::map<int, ClientQueue> clients_;   ///< ordered: stable round-robin
  int next_client_ = 0;
  int rr_cursor_ = 0;                    ///< round-robin position (client id)
  std::size_t queued_ = 0;
  std::size_t outstanding_ = 0;          ///< submitted, not yet delivered
  bool paused_ = false;
  bool stop_ = false;

  std::thread dispatcher_;
};

}  // namespace ivory::serve
