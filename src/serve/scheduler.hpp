// Job scheduler for the evaluation service.
//
// A single dispatcher thread drains a bounded FIFO queue in *waves*: it
// gathers up to `wave` jobs (round-robin across client queues, preserving
// each client's submission order — fairness across concurrent multi-request
// batches), evaluates the wave on the process-wide deterministic thread pool
// (`par::parallel_map`; a request's own inner sweep parallelism then runs
// inline per the pool's nesting rule), and delivers the responses serially
// in wave order. Per-client delivery order therefore always equals
// submission order, so transports can stream responses without reordering
// buffers.
//
// Back-pressure: `submit` blocks while `queue_capacity` jobs are pending —
// a slow consumer stalls its producer instead of growing memory without
// bound. Cancellation (`cancel`) and per-request deadlines (`deadline_ms`
// envelope field) apply to *queued* jobs: a job already evaluating runs to
// completion; a cancelled or expired job is delivered as a structured
// {"ok":false} response without touching a model.
//
// Streamed requests (`submit_stream`) ride the same per-client queues and
// wave gather for ordering/fairness, but evaluate on a small pool of
// dedicated stream-worker threads instead of inside the wave: a streamed
// transient runs for seconds and must not stall the dispatcher. Each stream
// job writes frames into its connection's DeliveryQueue slot; the slot's
// bounded window is the flow control — a slow reader blocks only its own
// stream worker. `cancel` reaches streams mid-flight via a shared flag the
// emitter polls per chunk.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace ivory::serve {

/// Per-connection ordered delivery of mixed plain and streamed responses.
///
/// Transports open one slot per request *in submission order* (a Plain slot
/// for line responses, a Stream slot for frame streams) and run one consumer
/// (`next`) that concatenates the slots' bytes in that order — so the wire
/// order always equals submission order even though plain responses come
/// from the dispatcher thread and stream frames from stream workers.
///
/// Flow control: a Stream slot holds at most `stream_window` undelivered
/// frames; `push` blocks past that, which backpressures exactly one stream
/// worker. Plain `set` never blocks (the dispatcher must never stall on a
/// slow reader). `shutdown` marks the consumer dead: pushes return false
/// (producers unwind via StreamEmitter::Abort) while `next` keeps draining
/// so producers already blocked always finish.
///
/// All handles share ownership of the internal state, so a producer may
/// outlive the queue object itself.
class DeliveryQueue {
 public:
  explicit DeliveryQueue(std::size_t stream_window = 8);

  class Plain {
   public:
    /// Delivers the response bytes (including any trailing newline). Never
    /// blocks; called once.
    void set(std::string bytes);

   private:
    friend class DeliveryQueue;
    struct Impl;
    std::shared_ptr<void> inner_;
    std::shared_ptr<Impl> impl_;
  };

  class Stream {
   public:
    /// Queues one frame write. Blocks while the window is full; returns
    /// false when the consumer is gone (bytes dropped).
    bool push(std::string bytes);
    /// Marks the stream complete; the consumer pops the slot once drained.
    void finish();
    /// Drops undelivered frames and wakes blocked producers (cancel path:
    /// the terminal CANCEL_ACK must not wait behind a full window). Does not
    /// poison the slot — subsequent pushes still deliver.
    void discard_pending();

   private:
    friend class DeliveryQueue;
    struct Impl;
    std::shared_ptr<void> inner_;
    std::shared_ptr<Impl> impl_;
  };

  /// Opens the next slot in delivery order.
  std::shared_ptr<Plain> open_plain();
  std::shared_ptr<Stream> open_stream();

  /// No further slots will be opened; `next` returns false once drained.
  void close_submit();

  /// Consumer is gone (write error / disconnect): stream pushes start
  /// returning false. `next` remains usable for draining.
  void shutdown();

  /// Blocks for the next bytes to write in delivery order. Returns false
  /// when the queue is closed and fully drained.
  bool next(std::string& bytes);

 private:
  struct Inner;
  std::shared_ptr<Inner> inner_;
};

class Scheduler {
 public:
  struct Options {
    std::size_t queue_capacity = 1024;
    std::size_t wave = 0;       ///< jobs per wave; 0 = 4x pool threads
    bool start_paused = false;  ///< tests: queue jobs, then resume()
    std::size_t stream_slots = 2;  ///< dedicated stream-worker threads
  };

  /// Receives one response line (no trailing newline). Invoked from the
  /// dispatcher thread, serially, in per-client submission order.
  using Sink = std::function<void(const std::string&)>;

  Scheduler(Service& service, Options opt);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a request source (one per connection / batch).
  int open_client();

  /// Marks the client done; its already-queued jobs still run and deliver.
  void close_client(int client);

  /// Enqueues one request line. Blocks while the queue is at capacity.
  void submit(int client, std::string line, Sink sink);

  /// Enqueues one streamed request line whose frames go to `out`. Ordering
  /// and fairness match submit(); evaluation runs on a stream worker. The
  /// scheduler always calls out->finish(), even on cancel or error.
  void submit_stream(int client, std::string line,
                     std::shared_ptr<DeliveryQueue::Stream> out);

  /// Cancels the oldest *queued* job of `client` whose request id equals
  /// `id`, or flags a matching *active stream* so it aborts at its next
  /// chunk (its pending frames are discarded and a CANCEL_ACK terminates
  /// the stream). Returns false when no such job exists.
  bool cancel(int client, const json::Value& id);

  /// Releases a start_paused scheduler.
  void resume();

  /// Blocks until every job submitted so far has been delivered.
  void drain();

  std::size_t pending() const;

 private:
  struct Job {
    std::string line;
    json::Value id;  ///< pre-parsed for cancel/deadline bookkeeping
    Sink sink;
    std::shared_ptr<DeliveryQueue::Stream> stream_out;  ///< non-null = stream job
    std::shared_ptr<std::atomic<bool>> cancel_flag;     ///< stream jobs only
    int client = -1;
    bool cancelled = false;
    double deadline_ms = 0.0;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct ClientQueue {
    std::deque<Job> jobs;
    bool closed = false;
  };
  struct ActiveStream {
    int client = -1;
    json::Value id;
    std::shared_ptr<std::atomic<bool>> cancel_flag;
    std::shared_ptr<DeliveryQueue::Stream> out;
  };

  void enqueue(int client, Job job);
  void dispatcher_loop();
  void stream_worker_loop();
  void run_stream_job(Job job);

  Service& service_;
  Options opt_;

  mutable std::mutex mu_;
  std::condition_variable cv_space_;     ///< queue below capacity
  std::condition_variable cv_work_;      ///< work available / state change
  std::condition_variable cv_stream_;    ///< stream_queue_ gained work
  std::condition_variable cv_drained_;   ///< outstanding == 0
  std::map<int, ClientQueue> clients_;   ///< ordered: stable round-robin
  int next_client_ = 0;
  int rr_cursor_ = 0;                    ///< round-robin position (client id)
  std::size_t queued_ = 0;
  std::size_t outstanding_ = 0;          ///< submitted, not yet delivered
  bool paused_ = false;
  bool stop_ = false;

  std::deque<Job> stream_queue_;         ///< dispatched, awaiting a stream worker
  std::vector<ActiveStream> active_streams_;

  std::thread dispatcher_;
  std::vector<std::thread> stream_workers_;
};

}  // namespace ivory::serve
