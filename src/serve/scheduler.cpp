#include "serve/scheduler.hpp"

#include <algorithm>
#include <vector>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace ivory::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

struct SchedulerMetrics {
  metrics::Counter& waves = metrics::registry().counter("serve.scheduler.waves");
  metrics::Counter& jobs = metrics::registry().counter("serve.scheduler.jobs");
  metrics::Counter& cancelled = metrics::registry().counter("serve.scheduler.cancelled");
  metrics::Counter& expired = metrics::registry().counter("serve.scheduler.expired");
  metrics::Gauge& queue_depth = metrics::registry().gauge("serve.scheduler.queue_depth");
  metrics::Gauge& wave_size = metrics::registry().gauge("serve.scheduler.wave_size");
  metrics::Histogram& queue_wait_ms =
      metrics::registry().histogram("serve.scheduler.queue_wait_ms");
  metrics::Histogram& wave_ms = metrics::registry().histogram("serve.scheduler.wave_ms");
};

SchedulerMetrics& sched_metrics() {
  static SchedulerMetrics m;
  return m;
}

}  // namespace

Scheduler::Scheduler(Service& service, Options opt)
    : service_(service), opt_(opt), paused_(opt.start_paused) {
  if (opt_.queue_capacity == 0) opt_.queue_capacity = 1;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  dispatcher_.join();
}

int Scheduler::open_client() {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_client_++;
  clients_[id];
  return id;
}

void Scheduler::close_client(int client) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = clients_.find(client);
  if (it == clients_.end()) return;
  it->second.closed = true;
  if (it->second.jobs.empty()) clients_.erase(it);
}

void Scheduler::submit(int client, std::string line, Sink sink) {
  Job job;
  job.line = std::move(line);
  job.sink = std::move(sink);
  job.enqueued = std::chrono::steady_clock::now();
  // Pre-parse the envelope so cancel/deadline handling does not depend on
  // the service; a malformed line keeps id=null and is rejected by the
  // service at dispatch time.
  try {
    const json::Value root = json::Value::parse(job.line);
    if (const json::Value* id = root.find("id"))
      if (id->is_null() || id->is_string() || id->is_number()) job.id = *id;
    if (const json::Value* dl = root.find("deadline_ms"))
      if (dl->is_number() && dl->as_number() > 0.0) job.deadline_ms = dl->as_number();
  } catch (const std::exception&) {
    // leave defaults; the service reports the parse error in the response
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock, [&] { return stop_ || queued_ < opt_.queue_capacity; });
  if (stop_) throw NumericalError("serve: submit on a stopped scheduler");
  const auto it = clients_.find(client);
  if (it == clients_.end() || it->second.closed)
    throw InvalidParameter("serve: submit on an unknown or closed client");
  it->second.jobs.push_back(std::move(job));
  ++queued_;
  ++outstanding_;
  sched_metrics().jobs.add();
  sched_metrics().queue_depth.set(static_cast<std::int64_t>(queued_));
  cv_work_.notify_one();
}

bool Scheduler::cancel(int client, const json::Value& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = clients_.find(client);
  if (it == clients_.end()) return false;
  for (Job& j : it->second.jobs)
    if (!j.cancelled && j.id == id) {
      j.cancelled = true;
      sched_metrics().cancelled.add();
      return true;
    }
  return false;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_drained_.wait(lock, [&] { return outstanding_ == 0; });
}

std::size_t Scheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

void Scheduler::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [&] { return stop_ || (!paused_ && queued_ > 0); });
    if (queued_ == 0) {
      if (stop_) return;
      continue;
    }
    if (paused_ && !stop_) continue;

    // Gather one wave, round-robin across clients in id order so each
    // concurrent batch makes progress; per-client FIFO order is preserved.
    const std::size_t target =
        opt_.wave ? opt_.wave : static_cast<std::size_t>(4) * par::global_threads();
    std::vector<Job> wave;
    wave.reserve(std::min(target, queued_));
    auto it = clients_.lower_bound(rr_cursor_);
    while (wave.size() < target && queued_ > 0) {
      if (it == clients_.end()) it = clients_.begin();
      ClientQueue& q = it->second;
      if (!q.jobs.empty()) {
        wave.push_back(std::move(q.jobs.front()));
        q.jobs.pop_front();
        --queued_;
      }
      if (q.closed && q.jobs.empty()) {
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
    rr_cursor_ = it == clients_.end() ? 0 : it->first;
    sched_metrics().queue_depth.set(static_cast<std::int64_t>(queued_));
    cv_space_.notify_all();
    lock.unlock();

    IVORY_TRACE("serve.wave");
    SchedulerMetrics& m = sched_metrics();
    m.waves.add();
    m.wave_size.set(static_cast<std::int64_t>(wave.size()));

    // Evaluate the wave on the deterministic pool. Cancelled and expired
    // jobs short-circuit to structured errors without touching a model.
    const auto now = std::chrono::steady_clock::now();
    for (const Job& j : wave) m.queue_wait_ms.observe(elapsed_ms(j.enqueued, now));
    std::vector<std::string> responses(wave.size());
    par::parallel_for(wave.size(), [&](std::size_t i) {
      const Job& j = wave[i];
      if (j.cancelled) {
        responses[i] = Service::error_response(j.id, "cancelled",
                                               "request cancelled before evaluation");
      } else if (j.deadline_ms > 0.0 && elapsed_ms(j.enqueued, now) > j.deadline_ms) {
        sched_metrics().expired.add();
        responses[i] = Service::error_response(j.id, "deadline_exceeded",
                                               "request waited past its deadline_ms");
      } else {
        responses[i] = service_.handle_line(j.line);
      }
    });

    // Deliver serially in wave order (= per-client submission order).
    for (std::size_t i = 0; i < wave.size(); ++i) wave[i].sink(responses[i]);
    m.wave_ms.observe(elapsed_ms(now, std::chrono::steady_clock::now()));

    lock.lock();
    outstanding_ -= wave.size();
    if (outstanding_ == 0) cv_drained_.notify_all();
  }
}

}  // namespace ivory::serve
