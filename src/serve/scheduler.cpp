#include "serve/scheduler.hpp"

#include <algorithm>
#include <vector>

#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "serve/frame.hpp"

namespace ivory::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

struct SchedulerMetrics {
  metrics::Counter& waves = metrics::registry().counter("serve.scheduler.waves");
  metrics::Counter& jobs = metrics::registry().counter("serve.scheduler.jobs");
  metrics::Counter& cancelled = metrics::registry().counter("serve.scheduler.cancelled");
  metrics::Counter& expired = metrics::registry().counter("serve.scheduler.expired");
  metrics::Gauge& queue_depth = metrics::registry().gauge("serve.scheduler.queue_depth");
  metrics::Gauge& wave_size = metrics::registry().gauge("serve.scheduler.wave_size");
  metrics::Histogram& queue_wait_ms =
      metrics::registry().histogram("serve.scheduler.queue_wait_ms");
  metrics::Histogram& wave_ms = metrics::registry().histogram("serve.scheduler.wave_ms");
};

SchedulerMetrics& sched_metrics() {
  static SchedulerMetrics m;
  return m;
}

/// High-water mark of undelivered stream-frame bytes buffered across all
/// DeliveryQueues — the acceptance gauge proving the server's resident
/// response footprint is bounded by the chunk budget, not waveform length.
metrics::Gauge& stream_buffer_peak() {
  static metrics::Gauge& g =
      metrics::registry().gauge("serve.stream.buffer_peak_bytes");
  return g;
}

}  // namespace

// ---------------------------------------------------------------------------
// DeliveryQueue
// ---------------------------------------------------------------------------

struct DeliveryQueue::Plain::Impl {
  std::string bytes;
  bool ready = false;
};

struct DeliveryQueue::Stream::Impl {
  std::deque<std::string> frames;
  bool finished = false;
};

struct DeliveryQueue::Inner {
  std::mutex mu;
  std::condition_variable cv_data;   ///< consumer: front slot has bytes
  std::condition_variable cv_space;  ///< producers: window opened / death
  struct Slot {
    std::shared_ptr<Plain::Impl> plain;
    std::shared_ptr<Stream::Impl> stream;
  };
  std::deque<Slot> slots;
  std::size_t window = 8;
  std::size_t stream_buffered = 0;  ///< undelivered stream-frame bytes
  bool closed = false;              ///< no further slots
  bool dead = false;                ///< consumer gone
};

DeliveryQueue::DeliveryQueue(std::size_t stream_window)
    : inner_(std::make_shared<Inner>()) {
  inner_->window = std::max<std::size_t>(1, stream_window);
}

void DeliveryQueue::Plain::set(std::string bytes) {
  auto inner = std::static_pointer_cast<Inner>(inner_);
  {
    std::lock_guard<std::mutex> lock(inner->mu);
    impl_->bytes = std::move(bytes);
    impl_->ready = true;
  }
  inner->cv_data.notify_all();
}

bool DeliveryQueue::Stream::push(std::string bytes) {
  auto inner = std::static_pointer_cast<Inner>(inner_);
  {
    std::unique_lock<std::mutex> lock(inner->mu);
    inner->cv_space.wait(
        lock, [&] { return inner->dead || impl_->frames.size() < inner->window; });
    if (inner->dead) return false;
    inner->stream_buffered += bytes.size();
    stream_buffer_peak().set_max(static_cast<std::int64_t>(inner->stream_buffered));
    impl_->frames.push_back(std::move(bytes));
  }
  inner->cv_data.notify_all();
  return true;
}

void DeliveryQueue::Stream::finish() {
  auto inner = std::static_pointer_cast<Inner>(inner_);
  {
    std::lock_guard<std::mutex> lock(inner->mu);
    impl_->finished = true;
  }
  inner->cv_data.notify_all();
}

void DeliveryQueue::Stream::discard_pending() {
  auto inner = std::static_pointer_cast<Inner>(inner_);
  {
    std::lock_guard<std::mutex> lock(inner->mu);
    for (const std::string& f : impl_->frames) inner->stream_buffered -= f.size();
    impl_->frames.clear();
  }
  inner->cv_space.notify_all();
}

std::shared_ptr<DeliveryQueue::Plain> DeliveryQueue::open_plain() {
  auto p = std::make_shared<Plain>();
  p->inner_ = inner_;
  p->impl_ = std::make_shared<Plain::Impl>();
  std::lock_guard<std::mutex> lock(inner_->mu);
  require(!inner_->closed, "serve: delivery slot opened after close_submit");
  inner_->slots.push_back({p->impl_, nullptr});
  return p;
}

std::shared_ptr<DeliveryQueue::Stream> DeliveryQueue::open_stream() {
  auto s = std::make_shared<Stream>();
  s->inner_ = inner_;
  s->impl_ = std::make_shared<Stream::Impl>();
  std::lock_guard<std::mutex> lock(inner_->mu);
  require(!inner_->closed, "serve: delivery slot opened after close_submit");
  inner_->slots.push_back({nullptr, s->impl_});
  return s;
}

void DeliveryQueue::close_submit() {
  {
    std::lock_guard<std::mutex> lock(inner_->mu);
    inner_->closed = true;
  }
  inner_->cv_data.notify_all();
}

void DeliveryQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(inner_->mu);
    inner_->dead = true;
  }
  inner_->cv_space.notify_all();
  inner_->cv_data.notify_all();
}

bool DeliveryQueue::next(std::string& bytes) {
  std::unique_lock<std::mutex> lock(inner_->mu);
  for (;;) {
    inner_->cv_data.wait(lock, [&] {
      if (!inner_->slots.empty()) {
        const Inner::Slot& s = inner_->slots.front();
        if (s.plain) return s.plain->ready;
        return !s.stream->frames.empty() || s.stream->finished;
      }
      return inner_->closed;
    });
    if (inner_->slots.empty()) return false;  // closed and fully drained
    Inner::Slot& s = inner_->slots.front();
    if (s.plain) {
      bytes = std::move(s.plain->bytes);
      inner_->slots.pop_front();
      return true;
    }
    if (!s.stream->frames.empty()) {
      bytes = std::move(s.stream->frames.front());
      s.stream->frames.pop_front();
      inner_->stream_buffered -= bytes.size();
      inner_->cv_space.notify_all();
      return true;
    }
    inner_->slots.pop_front();  // finished stream, drained: next slot
  }
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

Scheduler::Scheduler(Service& service, Options opt)
    : service_(service), opt_(opt), paused_(opt.start_paused) {
  if (opt_.queue_capacity == 0) opt_.queue_capacity = 1;
  if (opt_.stream_slots == 0) opt_.stream_slots = 1;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  stream_workers_.reserve(opt_.stream_slots);
  for (std::size_t i = 0; i < opt_.stream_slots; ++i)
    stream_workers_.emplace_back([this] { stream_worker_loop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  cv_stream_.notify_all();
  dispatcher_.join();
  cv_stream_.notify_all();  // dispatcher may have flushed a last wave
  for (std::thread& t : stream_workers_) t.join();
}

int Scheduler::open_client() {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_client_++;
  clients_[id];
  return id;
}

void Scheduler::close_client(int client) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = clients_.find(client);
  if (it == clients_.end()) return;
  it->second.closed = true;
  if (it->second.jobs.empty()) clients_.erase(it);
}

void Scheduler::enqueue(int client, Job job) {
  job.client = client;
  job.enqueued = std::chrono::steady_clock::now();
  // Pre-parse the envelope so cancel/deadline handling does not depend on
  // the service; a malformed line keeps id=null and is rejected by the
  // service at dispatch time.
  try {
    const json::Value root = json::Value::parse(job.line);
    if (const json::Value* id = root.find("id"))
      if (id->is_null() || id->is_string() || id->is_number()) job.id = *id;
    if (const json::Value* dl = root.find("deadline_ms"))
      if (dl->is_number() && dl->as_number() > 0.0) job.deadline_ms = dl->as_number();
  } catch (const std::exception&) {
    // leave defaults; the service reports the parse error in the response
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock, [&] { return stop_ || queued_ < opt_.queue_capacity; });
  if (stop_) throw NumericalError("serve: submit on a stopped scheduler");
  const auto it = clients_.find(client);
  if (it == clients_.end() || it->second.closed)
    throw InvalidParameter("serve: submit on an unknown or closed client");
  it->second.jobs.push_back(std::move(job));
  ++queued_;
  ++outstanding_;
  sched_metrics().jobs.add();
  sched_metrics().queue_depth.set(static_cast<std::int64_t>(queued_));
  cv_work_.notify_one();
}

void Scheduler::submit(int client, std::string line, Sink sink) {
  Job job;
  job.line = std::move(line);
  job.sink = std::move(sink);
  enqueue(client, std::move(job));
}

void Scheduler::submit_stream(int client, std::string line,
                              std::shared_ptr<DeliveryQueue::Stream> out) {
  Job job;
  job.line = std::move(line);
  job.stream_out = std::move(out);
  job.cancel_flag = std::make_shared<std::atomic<bool>>(false);
  enqueue(client, std::move(job));
}

bool Scheduler::cancel(int client, const json::Value& id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = clients_.find(client);
  if (it != clients_.end()) {
    for (Job& j : it->second.jobs)
      if (!j.cancelled && j.id == id) {
        j.cancelled = true;
        if (j.cancel_flag) j.cancel_flag->store(true);
        sched_metrics().cancelled.add();
        return true;
      }
  }
  // Stream jobs handed to the stream queue but not yet picked up.
  for (Job& j : stream_queue_)
    if (j.client == client && !j.cancelled && j.id == id) {
      j.cancelled = true;
      j.cancel_flag->store(true);
      sched_metrics().cancelled.add();
      return true;
    }
  // Mid-flight streams: flag the emitter (it aborts at its next chunk) and
  // free the delivery window so the CANCEL_ACK is not stuck behind it.
  for (ActiveStream& s : active_streams_)
    if (s.client == client && s.id == id &&
        !s.cancel_flag->load(std::memory_order_relaxed)) {
      s.cancel_flag->store(true);
      s.out->discard_pending();
      sched_metrics().cancelled.add();
      return true;
    }
  return false;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_drained_.wait(lock, [&] { return outstanding_ == 0; });
}

std::size_t Scheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

void Scheduler::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_work_.wait(lock, [&] { return stop_ || (!paused_ && queued_ > 0); });
    if (queued_ == 0) {
      if (stop_) return;
      continue;
    }
    if (paused_ && !stop_) continue;

    // Gather one wave, round-robin across clients in id order so each
    // concurrent batch makes progress; per-client FIFO order is preserved.
    const std::size_t target =
        opt_.wave ? opt_.wave : static_cast<std::size_t>(4) * par::global_threads();
    std::vector<Job> wave;
    wave.reserve(std::min(target, queued_));
    auto it = clients_.lower_bound(rr_cursor_);
    while (wave.size() < target && queued_ > 0) {
      if (it == clients_.end()) it = clients_.begin();
      ClientQueue& q = it->second;
      if (!q.jobs.empty()) {
        wave.push_back(std::move(q.jobs.front()));
        q.jobs.pop_front();
        --queued_;
      }
      if (q.closed && q.jobs.empty()) {
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
    rr_cursor_ = it == clients_.end() ? 0 : it->first;
    sched_metrics().queue_depth.set(static_cast<std::int64_t>(queued_));
    cv_space_.notify_all();

    // Stream jobs leave the wave here: they keep the gather's fairness and
    // ordering but evaluate on dedicated workers — a seconds-long streamed
    // transient must not stall the dispatcher's serial delivery.
    {
      std::size_t streams = 0;
      std::vector<Job> plain;
      plain.reserve(wave.size());
      for (Job& j : wave) {
        if (j.stream_out) {
          stream_queue_.push_back(std::move(j));
          ++streams;
        } else {
          plain.push_back(std::move(j));
        }
      }
      wave = std::move(plain);
      if (streams == 1) cv_stream_.notify_one();
      else if (streams > 1) cv_stream_.notify_all();
    }
    lock.unlock();

    if (!wave.empty()) {
      IVORY_TRACE("serve.wave");
      SchedulerMetrics& m = sched_metrics();
      m.waves.add();
      m.wave_size.set(static_cast<std::int64_t>(wave.size()));

      // Evaluate the wave on the deterministic pool. Cancelled and expired
      // jobs short-circuit to structured errors without touching a model.
      const auto now = std::chrono::steady_clock::now();
      for (const Job& j : wave) m.queue_wait_ms.observe(elapsed_ms(j.enqueued, now));
      std::vector<std::string> responses(wave.size());
      par::parallel_for(wave.size(), [&](std::size_t i) {
        const Job& j = wave[i];
        if (j.cancelled) {
          responses[i] = Service::error_response(j.id, "cancelled",
                                                 "request cancelled before evaluation");
        } else if (j.deadline_ms > 0.0 && elapsed_ms(j.enqueued, now) > j.deadline_ms) {
          sched_metrics().expired.add();
          responses[i] = Service::error_response(j.id, "deadline_exceeded",
                                                 "request waited past its deadline_ms");
        } else {
          responses[i] = service_.handle_line(j.line);
        }
      });

      // Deliver serially in wave order (= per-client submission order).
      for (std::size_t i = 0; i < wave.size(); ++i) wave[i].sink(responses[i]);
      m.wave_ms.observe(elapsed_ms(now, std::chrono::steady_clock::now()));
    }

    lock.lock();
    outstanding_ -= wave.size();
    if (outstanding_ == 0) cv_drained_.notify_all();
  }
}

void Scheduler::stream_worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_stream_.wait(lock, [&] { return stop_ || !stream_queue_.empty(); });
    if (stream_queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Job job = std::move(stream_queue_.front());
    stream_queue_.pop_front();
    const std::shared_ptr<std::atomic<bool>> flag = job.cancel_flag;
    active_streams_.push_back({job.client, job.id, flag, job.stream_out});
    lock.unlock();

    run_stream_job(std::move(job));

    lock.lock();
    for (auto it = active_streams_.begin(); it != active_streams_.end(); ++it)
      if (it->cancel_flag == flag) {
        active_streams_.erase(it);
        break;
      }
    --outstanding_;
    if (outstanding_ == 0) cv_drained_.notify_all();
  }
}

void Scheduler::run_stream_job(Job job) {
  IVORY_TRACE("serve.stream");
  const std::shared_ptr<DeliveryQueue::Stream> out = job.stream_out;
  StreamEmitter em([out](std::string&& bytes) { return out->push(std::move(bytes)); },
                   job.cancel_flag, job.deadline_ms, job.enqueued);
  const std::string id_json = job.id.write();
  try {
    const auto now = std::chrono::steady_clock::now();
    if (job.cancelled || job.cancel_flag->load(std::memory_order_relaxed)) {
      em.cancel_ack(stream_status_payload(id_json, "cancelled"));
    } else if (job.deadline_ms > 0.0 && elapsed_ms(job.enqueued, now) > job.deadline_ms) {
      sched_metrics().expired.add();
      em.end(stream_status_payload(id_json, "deadline_exceeded"));
    } else {
      service_.handle_stream(job.line, em);
    }
  } catch (...) {
    // handle_stream never throws and terminal emitters swallow write
    // failures; this is a last-resort guard so a stream worker cannot die.
  }
  out->finish();
}

}  // namespace ivory::serve
