// The batch-evaluation service: one NDJSON request line in, one NDJSON
// response line out.
//
// Response envelope (fixed member order, compact):
//   {"id":<echoed>,"ok":true,"result":{...}}
//   {"id":<echoed>,"ok":false,"error":{"code":...,"site":...,"candidate":...,
//                                      "detail":...}}
//
// Determinism contract: for a given request body, the success response bytes
// are identical whether the result was computed cold or served from the
// cache, at any thread count — the cache stores the serialized payload, the
// envelope is rebuilt deterministically around it, and the evaluators
// themselves are byte-identical across thread counts (the parallel-DSE
// contract). Cache/throughput counters are deliberately *not* embedded in
// per-request success responses (that would break the byte-identity
// guarantee); they are served by the "stats" op and by the batch/serve
// transports' out-of-band summaries.
//
// Failures are never cached: a candidate that dies (organically or under
// fault injection) is reported as a structured error and re-evaluated on the
// next request, so a transient fault cannot poison the cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/cache.hpp"
#include "serve/frame.hpp"
#include "serve/request.hpp"
#include "serve/store.hpp"

namespace ivory::serve {

struct ServiceOptions {
  std::size_t cache_capacity = 4096;  ///< entries across all shards
  std::size_t cache_shards = 8;
  /// Upper bound on 'transient' trace/waveform sample counts (guards a
  /// single request against absurd memory demands).
  std::size_t max_samples = 1u << 22;
  /// Non-empty: back the in-memory cache with a DurableStore in this
  /// directory — verified entries survive restarts and are shared across
  /// fleet workers. Successful results are published write-through;
  /// failures are never stored.
  std::string cache_dir;
  std::uint64_t store_max_bytes = 256ull << 20;
  /// Replay the durable store into the in-memory LRU at construction so a
  /// restarted service is warm from its first request.
  bool warm_load = true;
};

struct ServiceStats {
  CacheStats cache;
  StoreStats store;                 ///< zeros when no cache_dir is configured
  bool durable = false;             ///< a DurableStore is attached
  std::uint64_t store_hits = 0;     ///< misses answered by the durable tier
  std::uint64_t warm_loaded = 0;    ///< entries replayed at construction
  std::uint64_t n_requests = 0;     ///< lines handled (including bad ones)
  std::uint64_t n_evaluations = 0;  ///< model evaluations actually run
  std::uint64_t n_errors = 0;       ///< error responses produced
};

class Service {
 public:
  explicit Service(ServiceOptions opt = {});

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Full pipeline for one request line: parse, validate, cache lookup,
  /// evaluate under quarantine, serialize. Never throws; malformed input
  /// becomes an {"ok":false,...} response. Thread-safe — pool workers call
  /// this concurrently.
  std::string handle_line(const std::string& line);

  /// Streamed pipeline for one request line: emits HEADER/CHUNK/terminal
  /// frames through `em` instead of returning a line. Never throws.
  ///
  /// encoding "json" runs the full handle_line path (cache included) and
  /// slices the response into CHUNKs. encoding "wave1" requires a transient
  /// with return_waveform; it bypasses the result cache and streams samples
  /// straight out of the engine, so the resident response footprint is
  /// bounded by the chunk budget, not the waveform length. Cancel/deadline
  /// mid-stream terminate with CANCEL_ACK / END{deadline_exceeded}.
  void handle_stream(const std::string& line, StreamEmitter& em);

  ServiceStats stats() const;

  /// Builds an error response envelope (also used by the scheduler for
  /// cancelled / expired jobs so all failures share one shape).
  static std::string error_response(const json::Value& id, const std::string& code,
                                    const std::string& detail);

  /// The durable tier, or nullptr when cache_dir is empty.
  DurableStore* store() { return store_.get(); }

 private:
  std::string evaluate(const Request& req);  ///< result payload JSON; throws
  void stream_wave1(const Request& req, StreamEmitter& em);  ///< throws

  ServiceOptions opt_;
  ResultCache cache_;
  std::unique_ptr<DurableStore> store_;
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_evaluations_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> store_hits_{0};
  std::uint64_t warm_loaded_ = 0;
};

}  // namespace ivory::serve
