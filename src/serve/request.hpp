// Request schema of the batch-evaluation service.
//
// One NDJSON line = one request object:
//
//   {"id": 7, "op": "sc_static", "n": 3, "m": 1, "cfly": "4u", ...}
//
// Envelope fields (not part of the cached content):
//   id          optional string | number | null — echoed in the response
//   deadline_ms optional number > 0 — drop the job if it has waited longer
//   stream      optional bool — true: respond with a binary frame stream
//               (see serve/frame.hpp) instead of one JSON line
//   encoding    optional "json" (default) | "wave1" — streamed payload
//               encoding; wave1 requires a transient with return_waveform
//   chunk_bytes optional integer in [1, 16 MiB] — streamed chunk budget
//
// Everything else, including "op", is the request *body*. The cache key is
// fnv1a64 over the canonical form of the body: object keys sorted bytewise
// at every level, shortest-round-trip number formatting, no whitespace. Two
// requests that differ only in member order, number spelling ("0.10" vs
// "1e-1") or envelope fields therefore share one cache entry. Normalization
// is structural, not semantic: a request spelling out a default value hashes
// differently from one omitting it (both evaluate to the same result).
//
// Numeric parameter fields accept either JSON numbers or SPICE-suffixed
// strings ("4u", "80meg") — the same spellings the CLI takes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/optimizer.hpp"
#include "core/pareto.hpp"
#include "scenario/scenario.hpp"
#include "workload/workload.hpp"

namespace ivory::serve {

enum class Op {
  ScStatic,      ///< analyze one SC design (optionally regulated)
  BuckStatic,    ///< analyze one buck design
  LdoStatic,     ///< analyze one LDO design
  DldoStatic,    ///< analyze one discrete-time digital LDO design
  Explore,       ///< full topology x distribution sweep
  Pareto,        ///< multi-fidelity funnel: screen, extract front, simulate
  Optimize,      ///< optimize one topology family (or a two-stage cascade)
  ScenarioEval,  ///< residency-weighted power-state scenario evaluation
  Pds,           ///< end-to-end PDS composition, off-chip VRM vs IVR
  Transient,     ///< dynamic waveform summary for a workload trace
  Stats,         ///< service counters (never cached)
  Metrics,       ///< process metrics-registry snapshot (never cached)
};

const char* op_name(Op op);
Op op_from_string(const std::string& name);  ///< throws InvalidParameter

/// A validated request envelope plus its content-addressed identity.
struct Request {
  json::Value id;          ///< null when the request carried no id
  Op op = Op::Stats;
  json::Value body;        ///< the request object minus envelope fields
  std::string canonical;   ///< canonical JSON of `body`
  std::uint64_t key = 0;   ///< fnv1a64(canonical)
  double deadline_ms = 0;  ///< <= 0 means no deadline

  // Transport negotiation (envelope, excluded from the cache key: a streamed
  // and a non-streamed request for the same body share one cache entry).
  bool stream = false;
  std::string encoding = "json";   ///< "json" | "wave1"
  std::size_t chunk_bytes = 65536; ///< streamed chunk budget
};

/// Validates the envelope of a parsed request object and computes its
/// canonical form + cache key. Parameter validation happens at evaluation
/// time (see the builders below). Throws InvalidParameter.
Request parse_request(const json::Value& root);

/// Cheap transport-level peek at a raw request line, used by transports to
/// route it (plain response slot, stream slot, or cancel) before the service
/// sees it. Never throws: a malformed line classifies as a plain request and
/// the service reports the parse error in the ordinary response.
struct TransportDirective {
  bool is_stream = false;   ///< envelope asked for a frame-stream response
  bool is_cancel = false;   ///< {"cancel": <id>} control line (no "op")
  json::Value id;           ///< request id (null when absent/invalid)
  json::Value cancel_id;    ///< id named by a cancel line
};
TransportDirective classify_line(const std::string& line);

// ---------------------------------------------------------------------------
// Typed parameters per op. Builders perform strict field-level validation:
// unknown fields, wrong types and out-of-domain values are rejected with the
// offending field named.
// ---------------------------------------------------------------------------

struct ScStaticParams {
  core::ScDesign design;
  double vin_v = 3.3;
  double i_load_a = 10.0;
  double regulate_v = 0.0;  ///< > 0: also report the regulated operating point
};
ScStaticParams sc_static_params(const json::Value& body);

struct BuckStaticParams {
  core::BuckDesign design;
  double vin_v = 3.3;
  double vout_v = 1.0;
  double i_load_a = 10.0;
};
BuckStaticParams buck_static_params(const json::Value& body);

struct LdoStaticParams {
  core::LdoDesign design;
  double vin_v = 1.2;
  double vout_v = 1.0;
  double i_load_a = 10.0;
};
LdoStaticParams ldo_static_params(const json::Value& body);

struct DldoStaticParams {
  core::DldoDesign design;
  double vin_v = 1.2;
  double vout_v = 1.0;
  double i_load_a = 10.0;
};
DldoStaticParams dldo_static_params(const json::Value& body);

struct ExploreParams {
  core::SystemParams sys;
  core::OptTarget target = core::OptTarget::Efficiency;
  int top_k = 0;  ///< > 0: truncate the sorted result list (0 = all)
};
ExploreParams explore_params(const json::Value& body);

/// Funnel body: system fields (like explore) + optional "density" (every
/// FunnelSpec grid axis scaled by it), "front_cap", "simulate" and "top_k"
/// (truncates the reported points, 0 = all; stats keep the full counts).
struct ParetoParams {
  core::SystemParams sys;
  core::FunnelSpec spec;
  int top_k = 0;
};
ParetoParams pareto_params(const json::Value& body);

struct OptimizeParams {
  core::SystemParams sys;
  core::IvrTopology topology = core::IvrTopology::SwitchedCapacitor;
  bool two_stage = false;
  int n_distributed = 4;
};
OptimizeParams optimize_params(const json::Value& body);

struct PdsParams {
  core::SystemParams sys;
  double v_nom_v = 0.85;
  double guard_off_v = 0.110;
  double guard_ivr_v = 0.025;
  int n_distributed = 4;
};
PdsParams pds_params(const json::Value& body);

/// Scenario body: system fields (like optimize) + exactly one of "preset"
/// (a workload::residency_preset name) or "states" (inline array of state
/// objects), optional "domains" for hybrid delivery, "topology" and "dist"
/// for the IVR design.
struct ScenarioEvalParams {
  core::SystemParams sys;
  core::IvrTopology topology = core::IvrTopology::SwitchedCapacitor;
  int n_distributed = 4;
  scenario::ScenarioSpec spec;
};
ScenarioEvalParams scenario_eval_params(const json::Value& body);

struct TransientParams {
  enum class Kind { Sc, Buck, Ldo, Dldo, Spice };
  Kind kind = Kind::Sc;
  core::ScDesign sc;
  core::BuckDesign buck;
  core::LdoDesign ldo;
  core::DldoDesign dldo;
  double vin_v = 3.3;
  double vref_v = 1.0;
  double dt_s = 2e-9;
  /// Load: either an inline current trace ("iload": [amps...]) or a
  /// synthesized workload ("load": {"benchmark": "CFD", ...}).
  std::vector<double> i_load_a;
  bool has_workload = false;
  workload::Benchmark benchmark = workload::Benchmark::CFD;
  int n_sm = 4;
  double sm_avg_w = 5.0;
  double duration_s = 20e-6;
  std::uint64_t seed = 1;
  bool return_waveform = false;

  // Switch-level engine (topology "spice"): full MNA transient of an inline
  // netlist instead of the behavioural cycle models. The response carries
  // the simulator-cost counters (steps, LU factorizations, keyed-cache
  // hits/evictions) alongside per-node statistics.
  std::string netlist;                    ///< SPICE netlist text.
  double tstop_s = 0.0;                   ///< Required for Kind::Spice.
  bool trapezoidal = true;                ///< "method": "trap" (default) | "be".
  bool use_ic = false;                    ///< SPICE UIC semantics.
  int record_every = 1;
  std::vector<std::string> record_nodes;  ///< Empty = all non-ground nodes.
  bool adaptive = false;
  double dv_max_v = 1e-3;
  double dt_max_s = 0.0;
  int lu_cache_capacity = 8;              ///< See spice::TranSpec.
  /// Factorization kernel: "auto" (default) | "dense" | "banded" | "sparse".
  std::string kernel = "auto";
};
TransientParams transient_params(const json::Value& body);

}  // namespace ivory::serve
