#include "serve/request.hpp"

#include <cmath>
#include <limits>

#include "common/hash.hpp"
#include "spice/parser.hpp"
#include "tech/tech.hpp"

namespace ivory::serve {

namespace {

/// Strict reader over a request body: every field access marks the member
/// consumed, and finish() rejects any member the schema never asked for —
/// catching typos ("cflyy") instead of silently applying a default.
class FieldReader {
 public:
  FieldReader(const json::Value& body, std::string context)
      : obj_(&body.as_object()), ctx_(std::move(context)), used_(obj_->size(), false) {}

  [[noreturn]] void fail(std::string_view field, const std::string& what) const {
    throw InvalidParameter(ctx_ + ": field '" + std::string(field) + "': " + what);
  }

  const json::Value* get(std::string_view key) {
    for (std::size_t i = 0; i < obj_->size(); ++i)
      if ((*obj_)[i].first == key) {
        used_[i] = true;
        return &(*obj_)[i].second;
      }
    return nullptr;
  }

  bool has(std::string_view key) const {
    for (const auto& m : *obj_)
      if (m.first == key) return true;
    return false;
  }

  /// Numbers are JSON numbers or SPICE-suffixed strings ("4u", "80meg").
  double num(std::string_view key, double fallback) {
    const json::Value* v = get(key);
    if (!v) return fallback;
    if (v->is_number()) return v->as_number();
    if (v->is_string()) {
      try {
        return spice::parse_spice_value(v->as_string());
      } catch (const std::exception& e) {
        fail(key, std::string("bad SPICE-suffixed value: ") + e.what());
      }
    }
    fail(key, "expected a number or a SPICE-suffixed string");
  }

  int integer(std::string_view key, int fallback) {
    const double d = num(key, static_cast<double>(fallback));
    if (std::nearbyint(d) != d || d < std::numeric_limits<int>::min() ||
        d > std::numeric_limits<int>::max())
      fail(key, "expected an integer");
    return static_cast<int>(d);
  }

  std::string str(std::string_view key, std::string fallback) {
    const json::Value* v = get(key);
    if (!v) return fallback;
    if (!v->is_string()) fail(key, "expected a string");
    return v->as_string();
  }

  bool boolean(std::string_view key, bool fallback) {
    const json::Value* v = get(key);
    if (!v) return fallback;
    if (!v->is_bool()) fail(key, "expected true or false");
    return v->as_bool();
  }

  /// Rejects members no schema field consumed.
  void finish() const {
    for (std::size_t i = 0; i < obj_->size(); ++i)
      if (!used_[i])
        throw InvalidParameter(ctx_ + ": unknown field '" + (*obj_)[i].first + "'");
  }

 private:
  const json::Value::Object* obj_;
  std::string ctx_;
  std::vector<bool> used_;
};

tech::CapKind cap_kind_from(FieldReader& r, const std::string& s) {
  if (s == "mos") return tech::CapKind::MosCap;
  if (s == "mim") return tech::CapKind::Mim;
  if (s == "trench") return tech::CapKind::DeepTrench;
  r.fail("cap", "unknown capacitor kind '" + s + "' (mos|mim|trench)");
}

tech::InductorKind inductor_kind_from(FieldReader& r, const std::string& s) {
  if (s == "smt") return tech::InductorKind::SurfaceMount;
  if (s == "interposer") return tech::InductorKind::IntegratedInterposer;
  if (s == "magnetic") return tech::InductorKind::MagneticFilm;
  r.fail("inductor", "unknown inductor kind '" + s + "' (smt|interposer|magnetic)");
}

core::ScFamily sc_family_from(FieldReader& r, const std::string& s) {
  if (s == "auto") return core::ScFamily::Auto;
  if (s == "ladder") return core::ScFamily::Ladder;
  if (s == "series-parallel") return core::ScFamily::SeriesParallel;
  if (s == "dickson") return core::ScFamily::Dickson;
  r.fail("family", "unknown SC family '" + s + "' (auto|ladder|series-parallel|dickson)");
}

tech::Node node_from(FieldReader& r) {
  const std::string s = r.str("node", "32");
  try {
    return tech::node_from_string(s);
  } catch (const std::exception& e) {
    r.fail("node", e.what());
  }
}

core::SystemParams system_from(FieldReader& r) {
  core::SystemParams sys;
  sys.vin_v = r.num("vin", sys.vin_v);
  sys.vout_v = r.num("vout", sys.vout_v);
  sys.p_load_w = r.num("power", sys.p_load_w);
  sys.area_max_m2 = r.num("area", sys.area_max_m2 * 1e6) * 1e-6;  // mm^2, like the CLI.
  sys.node = node_from(r);
  sys.cap_kind = cap_kind_from(r, r.str("cap", "trench"));
  sys.inductor = inductor_kind_from(r, r.str("inductor", "magnetic"));
  sys.max_distributed = r.integer("max_dist", sys.max_distributed);
  sys.ripple_max_v = r.num("ripple", sys.ripple_max_v);
  return sys;
}

core::ScDesign sc_design_from(FieldReader& r) {
  core::ScDesign d;
  d.node = node_from(r);
  d.cap_kind = cap_kind_from(r, r.str("cap", "trench"));
  d.n = r.integer("n", 2);
  d.m = r.integer("m", 1);
  d.family = sc_family_from(r, r.str("family", "auto"));
  d.c_fly_f = r.num("cfly", 1e-6);
  d.c_out_f = r.num("cout", 0.2e-6);
  d.g_tot_s = r.num("gtot", 5000.0);
  d.f_sw_hz = r.num("fsw", 80e6);
  d.n_interleave = r.integer("interleave", 8);
  d.duty = r.num("duty", 0.5);
  return d;
}

core::BuckDesign buck_design_from(FieldReader& r) {
  core::BuckDesign d;
  d.node = node_from(r);
  d.cap_kind = cap_kind_from(r, r.str("cap", "trench"));
  d.inductor = inductor_kind_from(r, r.str("inductor", "interposer"));
  d.l_per_phase_h = r.num("l", 5e-9);
  d.f_sw_hz = r.num("fsw", 100e6);
  d.n_phases = r.integer("phases", 4);
  d.w_high_m = r.num("whs", 0.08);
  d.w_low_m = r.num("wls", 0.10);
  d.c_out_f = r.num("cout", 1e-6);
  return d;
}

core::LdoDesign ldo_design_from(FieldReader& r) {
  core::LdoDesign d;
  d.node = node_from(r);
  d.cap_kind = cap_kind_from(r, r.str("cap", "mos"));
  d.w_pass_m = r.num("wpass", 0.05);
  d.n_bits = r.integer("bits", 7);
  d.f_clk_hz = r.num("fclk", 500e6);
  d.c_out_f = r.num("cout", 0.5e-6);
  d.i_quiescent_a = r.num("iq", 1e-3);
  return d;
}

core::DldoDesign dldo_design_from(FieldReader& r) {
  core::DldoDesign d;
  d.node = node_from(r);
  d.cap_kind = cap_kind_from(r, r.str("cap", "mos"));
  d.w_pass_m = r.num("wpass", 0.05);
  d.n_bits = r.integer("bits", 7);
  d.f_clk_hz = r.num("fclk", 500e6);
  d.n_comparators = r.integer("ncomp", 1);
  d.c_out_f = r.num("cout", 0.5e-6);
  d.i_quiescent_a = r.num("iq", 1e-3);
  return d;
}

workload::Benchmark benchmark_from(FieldReader& r, const std::string& s) {
  for (const workload::Benchmark b : workload::kAllBenchmarks)
    if (s == workload::benchmark_name(b)) return b;
  r.fail("benchmark", "unknown benchmark '" + s + "'");
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::ScStatic: return "sc_static";
    case Op::BuckStatic: return "buck_static";
    case Op::LdoStatic: return "ldo_static";
    case Op::DldoStatic: return "dldo_static";
    case Op::Explore: return "explore";
    case Op::Pareto: return "pareto";
    case Op::Optimize: return "optimize";
    case Op::ScenarioEval: return "scenario_eval";
    case Op::Pds: return "pds";
    case Op::Transient: return "transient";
    case Op::Stats: return "stats";
    case Op::Metrics: return "metrics";
  }
  return "?";
}

Op op_from_string(const std::string& name) {
  for (const Op op : {Op::ScStatic, Op::BuckStatic, Op::LdoStatic, Op::DldoStatic, Op::Explore,
                      Op::Pareto, Op::Optimize, Op::ScenarioEval, Op::Pds, Op::Transient,
                      Op::Stats, Op::Metrics})
    if (name == op_name(op)) return op;
  throw InvalidParameter("unknown op '" + name +
                         "' (sc_static|buck_static|ldo_static|dldo_static|explore|pareto|"
                         "optimize|scenario_eval|pds|transient|stats|metrics)");
}

Request parse_request(const json::Value& root) {
  if (!root.is_object()) throw InvalidParameter("request must be a JSON object");
  Request req;
  json::Value::Object body;
  bool saw_op = false;
  for (const auto& m : root.as_object()) {
    if (m.first == "id") {
      if (!m.second.is_null() && !m.second.is_string() && !m.second.is_number())
        throw InvalidParameter("field 'id': expected string, number or null");
      req.id = m.second;
      continue;
    }
    if (m.first == "deadline_ms") {
      if (!m.second.is_number() || !(m.second.as_number() > 0.0))
        throw InvalidParameter("field 'deadline_ms': expected a positive number");
      req.deadline_ms = m.second.as_number();
      continue;
    }
    if (m.first == "stream") {
      if (!m.second.is_bool()) throw InvalidParameter("field 'stream': expected a bool");
      req.stream = m.second.as_bool();
      continue;
    }
    if (m.first == "encoding") {
      if (!m.second.is_string() ||
          (m.second.as_string() != "json" && m.second.as_string() != "wave1"))
        throw InvalidParameter("field 'encoding': expected \"json\" or \"wave1\"");
      req.encoding = m.second.as_string();
      continue;
    }
    if (m.first == "chunk_bytes") {
      if (!m.second.is_number() || m.second.as_number() < 1.0 ||
          m.second.as_number() > static_cast<double>(16u << 20) ||
          m.second.as_number() != static_cast<double>(
                                      static_cast<std::uint64_t>(m.second.as_number())))
        throw InvalidParameter(
            "field 'chunk_bytes': expected an integer in [1, 16777216]");
      req.chunk_bytes = static_cast<std::size_t>(m.second.as_number());
      continue;
    }
    if (m.first == "op") {
      if (!m.second.is_string()) throw InvalidParameter("field 'op': expected a string");
      req.op = op_from_string(m.second.as_string());
      saw_op = true;
    }
    body.push_back(m);
  }
  if (!saw_op) throw InvalidParameter("missing required field 'op'");
  req.body = json::Value(std::move(body));
  req.canonical = req.body.write_canonical();
  req.key = fnv1a64(req.canonical);
  return req;
}

TransportDirective classify_line(const std::string& line) {
  TransportDirective d;
  try {
    const json::Value root = json::Value::parse(line);
    if (!root.is_object()) return d;
    if (const json::Value* id = root.find("id"))
      if (id->is_null() || id->is_string() || id->is_number()) d.id = *id;
    if (const json::Value* c = root.find("cancel"); c != nullptr && !root.find("op")) {
      d.is_cancel = true;
      d.cancel_id = *c;
      return d;
    }
    if (const json::Value* s = root.find("stream"))
      d.is_stream = s->is_bool() && s->as_bool();
  } catch (const std::exception&) {
    // Malformed line: plain request; the service reports the parse error.
  }
  return d;
}

ScStaticParams sc_static_params(const json::Value& body) {
  FieldReader r(body, "sc_static");
  r.get("op");
  ScStaticParams p;
  p.design = sc_design_from(r);
  p.vin_v = r.num("vin", p.vin_v);
  p.i_load_a = r.num("iload", p.i_load_a);
  p.regulate_v = r.num("regulate", p.regulate_v);
  r.finish();
  return p;
}

BuckStaticParams buck_static_params(const json::Value& body) {
  FieldReader r(body, "buck_static");
  r.get("op");
  BuckStaticParams p;
  p.design = buck_design_from(r);
  p.vin_v = r.num("vin", p.vin_v);
  p.vout_v = r.num("vout", p.vout_v);
  p.i_load_a = r.num("iload", p.i_load_a);
  r.finish();
  return p;
}

LdoStaticParams ldo_static_params(const json::Value& body) {
  FieldReader r(body, "ldo_static");
  r.get("op");
  LdoStaticParams p;
  p.design = ldo_design_from(r);
  p.vin_v = r.num("vin", p.vin_v);
  p.vout_v = r.num("vout", p.vout_v);
  p.i_load_a = r.num("iload", p.i_load_a);
  r.finish();
  return p;
}

DldoStaticParams dldo_static_params(const json::Value& body) {
  FieldReader r(body, "dldo_static");
  r.get("op");
  DldoStaticParams p;
  p.design = dldo_design_from(r);
  p.vin_v = r.num("vin", p.vin_v);
  p.vout_v = r.num("vout", p.vout_v);
  p.i_load_a = r.num("iload", p.i_load_a);
  r.finish();
  return p;
}

namespace {

/// Optional response-size bound shared by explore and pareto: absent = all.
int top_k_from(FieldReader& r) {
  if (!r.has("top_k")) return 0;
  const int k = r.integer("top_k", 0);
  if (k < 1) r.fail("top_k", "must be >= 1 (omit the field to return all)");
  return k;
}

}  // namespace

ExploreParams explore_params(const json::Value& body) {
  FieldReader r(body, "explore");
  r.get("op");
  ExploreParams p;
  p.sys = system_from(r);
  const std::string t = r.str("target", "efficiency");
  if (t == "efficiency") p.target = core::OptTarget::Efficiency;
  else if (t == "area") p.target = core::OptTarget::Area;
  else if (t == "noise") p.target = core::OptTarget::Noise;
  else r.fail("target", "unknown target '" + t + "' (efficiency|area|noise)");
  p.top_k = top_k_from(r);
  r.finish();
  return p;
}

ParetoParams pareto_params(const json::Value& body) {
  FieldReader r(body, "pareto");
  r.get("op");
  ParetoParams p;
  p.sys = system_from(r);
  const double density = r.num("density", 1.0);
  if (!(density > 0.0) || density > 4.0)
    r.fail("density", "must be in (0, 4] (grid scale factor)");
  p.spec = p.spec.scaled(density);
  const int cap = r.integer("front_cap", static_cast<int>(p.spec.front_cap));
  if (cap < 1) r.fail("front_cap", "must be >= 1");
  p.spec.front_cap = static_cast<std::size_t>(cap);
  p.spec.simulate = r.boolean("simulate", p.spec.simulate);
  p.top_k = top_k_from(r);
  r.finish();
  return p;
}

OptimizeParams optimize_params(const json::Value& body) {
  FieldReader r(body, "optimize");
  r.get("op");
  OptimizeParams p;
  p.sys = system_from(r);
  p.n_distributed = r.integer("dist", p.n_distributed);
  if (p.n_distributed < 1) r.fail("dist", "must be >= 1");
  const std::string t = r.str("topology", "sc");
  if (t == "sc") p.topology = core::IvrTopology::SwitchedCapacitor;
  else if (t == "buck") p.topology = core::IvrTopology::Buck;
  else if (t == "ldo") p.topology = core::IvrTopology::LinearRegulator;
  else if (t == "dldo") p.topology = core::IvrTopology::DigitalLdo;
  else if (t == "two_stage") p.two_stage = true;
  else r.fail("topology", "unknown topology '" + t + "' (sc|buck|ldo|dldo|two_stage)");
  r.finish();
  return p;
}

ScenarioEvalParams scenario_eval_params(const json::Value& body) {
  FieldReader r(body, "scenario_eval");
  r.get("op");
  ScenarioEvalParams p;
  p.sys = system_from(r);
  p.n_distributed = r.integer("dist", p.n_distributed);
  if (p.n_distributed < 1) r.fail("dist", "must be >= 1");
  const std::string t = r.str("topology", "sc");
  if (t == "sc") p.topology = core::IvrTopology::SwitchedCapacitor;
  else if (t == "buck") p.topology = core::IvrTopology::Buck;
  else if (t == "ldo") p.topology = core::IvrTopology::LinearRegulator;
  else if (t == "dldo") p.topology = core::IvrTopology::DigitalLdo;
  else r.fail("topology", "unknown topology '" + t + "' (sc|buck|ldo|dldo)");

  const json::Value* preset = r.get("preset");
  const json::Value* states = r.get("states");
  if ((preset != nullptr) == (states != nullptr))
    throw InvalidParameter("scenario_eval: exactly one of 'preset' (residency preset name) or "
                           "'states' (inline state array) is required");
  if (preset) {
    if (!preset->is_string()) r.fail("preset", "expected a residency preset name");
    try {
      p.spec.states = workload::residency_preset(preset->as_string());
    } catch (const std::exception& e) {
      r.fail("preset", e.what());
    }
    p.spec.name = preset->as_string();
  } else {
    if (!states->is_array() || states->as_array().empty())
      r.fail("states", "expected a non-empty array of state objects");
    p.spec.states.clear();
    for (std::size_t i = 0; i < states->as_array().size(); ++i) {
      const json::Value& sv = states->as_array()[i];
      if (!sv.is_object()) r.fail("states", "expected state objects");
      FieldReader sr(sv, "scenario_eval.states[" + std::to_string(i) + "]");
      workload::PowerStateSpec st;
      st.name = sr.str("name", "state" + std::to_string(i));
      st.v_v = sr.num("v", 0.0);
      st.f_hz = sr.num("f", 0.0);
      st.activity = sr.num("activity", st.activity);
      st.residency = sr.num("residency", st.residency);
      st.gated = sr.boolean("gated", st.gated);
      sr.finish();
      p.spec.states.push_back(std::move(st));
    }
    p.spec.name = r.str("name", p.spec.name);
  }

  if (const json::Value* domains = r.get("domains")) {
    if (!domains->is_array() || domains->as_array().empty())
      r.fail("domains", "expected a non-empty array of domain objects");
    p.spec.domains.clear();
    for (std::size_t i = 0; i < domains->as_array().size(); ++i) {
      const json::Value& dv = domains->as_array()[i];
      if (!dv.is_object()) r.fail("domains", "expected domain objects");
      FieldReader dr(dv, "scenario_eval.domains[" + std::to_string(i) + "]");
      scenario::DomainSpec dom;
      dom.name = dr.str("name", "dom" + std::to_string(i));
      dom.power_frac = dr.num("power_frac", dom.power_frac);
      const std::string del = dr.str("delivery", scenario::delivery_name(dom.delivery));
      try {
        dom.delivery = scenario::delivery_from_string(del);
      } catch (const std::exception& e) {
        dr.fail("delivery", e.what());
      }
      dom.benchmark = benchmark_from(dr, dr.str("benchmark", workload::benchmark_name(dom.benchmark)));
      dr.finish();
      p.spec.domains.push_back(std::move(dom));
    }
  }

  p.spec.f_nom_hz = r.num("f_nom", p.spec.f_nom_hz);
  if (!(p.spec.f_nom_hz > 0.0)) r.fail("f_nom", "must be > 0");
  p.spec.duration_s = r.num("duration", p.spec.duration_s);
  if (!(p.spec.duration_s > 0.0)) r.fail("duration", "must be > 0");
  p.spec.dt_s = r.num("dt", p.spec.dt_s);
  if (!(p.spec.dt_s > 0.0)) r.fail("dt", "must be > 0");
  const int seed = r.integer("seed", static_cast<int>(p.spec.seed));
  if (seed < 0) r.fail("seed", "must be >= 0");
  p.spec.seed = static_cast<std::uint64_t>(seed);
  r.finish();
  return p;
}

PdsParams pds_params(const json::Value& body) {
  FieldReader r(body, "pds");
  r.get("op");
  PdsParams p;
  p.sys = system_from(r);
  p.v_nom_v = r.num("vnom", p.v_nom_v);
  p.guard_off_v = r.num("guard_off", p.guard_off_v);
  p.guard_ivr_v = r.num("guard_ivr", p.guard_ivr_v);
  p.n_distributed = r.integer("dist", p.n_distributed);
  if (p.n_distributed < 1) r.fail("dist", "must be >= 1");
  r.finish();
  return p;
}

TransientParams transient_params(const json::Value& body) {
  FieldReader r(body, "transient");
  r.get("op");
  TransientParams p;
  const std::string topo = r.str("topology", "sc");
  if (topo == "sc") p.kind = TransientParams::Kind::Sc;
  else if (topo == "buck") p.kind = TransientParams::Kind::Buck;
  else if (topo == "ldo") p.kind = TransientParams::Kind::Ldo;
  else if (topo == "dldo") p.kind = TransientParams::Kind::Dldo;
  else if (topo == "spice") p.kind = TransientParams::Kind::Spice;
  else r.fail("topology", "unknown topology '" + topo + "' (sc|buck|ldo|dldo|spice)");

  if (p.kind == TransientParams::Kind::Spice) {
    // Switch-level engine: an inline netlist instead of a design object;
    // sources live in the netlist, so no load trace is accepted.
    const json::Value* netlist = r.get("netlist");
    if (!netlist) throw InvalidParameter("transient: topology 'spice' requires 'netlist'");
    if (!netlist->is_string() || netlist->as_string().empty())
      r.fail("netlist", "expected a non-empty SPICE netlist string");
    p.netlist = netlist->as_string();
    p.tstop_s = r.num("tstop", 0.0);
    if (!(p.tstop_s > 0.0)) r.fail("tstop", "must be > 0");
    p.dt_s = r.num("dt", 0.0);
    if (!(p.dt_s > 0.0)) r.fail("dt", "must be > 0");
    const std::string method = r.str("method", "trap");
    if (method == "trap") p.trapezoidal = true;
    else if (method == "be") p.trapezoidal = false;
    else r.fail("method", "unknown integrator '" + method + "' (trap|be)");
    p.use_ic = r.boolean("uic", false);
    p.record_every = r.integer("record_every", 1);
    if (p.record_every < 1) r.fail("record_every", "must be >= 1");
    if (const json::Value* rec = r.get("record")) {
      if (!rec->is_array()) r.fail("record", "expected an array of node names");
      for (const json::Value& v : rec->as_array()) {
        if (!v.is_string()) r.fail("record", "expected node names (strings)");
        p.record_nodes.push_back(v.as_string());
      }
    }
    p.adaptive = r.boolean("adaptive", false);
    p.dv_max_v = r.num("dv_max", p.dv_max_v);
    p.dt_max_s = r.num("dt_max", p.dt_max_s);
    p.lu_cache_capacity = r.integer("lu_cache", p.lu_cache_capacity);
    if (p.lu_cache_capacity < 0) r.fail("lu_cache", "must be >= 0");
    p.kernel = r.str("kernel", p.kernel);
    if (p.kernel != "auto" && p.kernel != "dense" && p.kernel != "banded" &&
        p.kernel != "sparse")
      r.fail("kernel", "expected auto | dense | banded | sparse");
    p.return_waveform = r.boolean("return_waveform", false);
    r.finish();
    return p;
  }

  const json::Value* design = r.get("design");
  if (!design) throw InvalidParameter("transient: missing required field 'design'");
  if (!design->is_object()) r.fail("design", "expected an object");
  {
    FieldReader dr(*design, "transient.design");
    switch (p.kind) {
      case TransientParams::Kind::Sc: p.sc = sc_design_from(dr); break;
      case TransientParams::Kind::Buck: p.buck = buck_design_from(dr); break;
      case TransientParams::Kind::Ldo: p.ldo = ldo_design_from(dr); break;
      case TransientParams::Kind::Dldo: p.dldo = dldo_design_from(dr); break;
      case TransientParams::Kind::Spice: break;  // handled above
    }
    dr.finish();
  }

  p.vin_v = r.num("vin", p.vin_v);
  p.vref_v = r.num("vref", p.vref_v);
  p.dt_s = r.num("dt", p.dt_s);
  if (!(p.dt_s > 0.0)) r.fail("dt", "must be > 0");
  p.return_waveform = r.boolean("return_waveform", false);

  const json::Value* iload = r.get("iload");
  const json::Value* load = r.get("load");
  if ((iload != nullptr) == (load != nullptr))
    throw InvalidParameter("transient: exactly one of 'iload' (inline trace) or 'load' "
                           "(workload spec) is required");
  if (iload) {
    if (!iload->is_array() || iload->as_array().empty())
      r.fail("iload", "expected a non-empty array of currents [A]");
    for (const json::Value& v : iload->as_array()) {
      if (!v.is_number()) r.fail("iload", "expected numbers only");
      p.i_load_a.push_back(v.as_number());
    }
  } else {
    if (!load->is_object()) r.fail("load", "expected an object");
    FieldReader lr(*load, "transient.load");
    p.has_workload = true;
    p.benchmark = benchmark_from(lr, lr.str("benchmark", "CFD"));
    p.n_sm = lr.integer("n_sm", p.n_sm);
    if (p.n_sm < 1) lr.fail("n_sm", "must be >= 1");
    p.sm_avg_w = lr.num("sm_avg_w", p.sm_avg_w);
    p.duration_s = lr.num("duration", p.duration_s);
    if (!(p.duration_s > 0.0)) lr.fail("duration", "must be > 0");
    const int seed = lr.integer("seed", 1);
    if (seed < 0) lr.fail("seed", "must be >= 0");
    p.seed = static_cast<std::uint64_t>(seed);
    lr.finish();
  }
  r.finish();
  return p;
}

}  // namespace ivory::serve
