#include "serve/cache.hpp"

#include <algorithm>

#include "common/metrics.hpp"

namespace ivory::serve {

namespace {

// Process-wide cache counters (sum over every ResultCache instance). The
// references are resolved once; recording is the registry's lock-free path.
metrics::Counter& g_hits() {
  static metrics::Counter& c = metrics::registry().counter("serve.cache.hits");
  return c;
}
metrics::Counter& g_misses() {
  static metrics::Counter& c = metrics::registry().counter("serve.cache.misses");
  return c;
}
metrics::Counter& g_evictions() {
  static metrics::Counter& c = metrics::registry().counter("serve.cache.evictions");
  return c;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  capacity = std::max<std::size_t>(1, capacity);
  shards = std::max<std::size_t>(1, std::min(shards, capacity));
  per_shard_capacity_ = std::max<std::size_t>(1, capacity / shards);
  shards_ = std::vector<Shard>(shards);
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key_hash,
                                               std::string_view canonical_key) {
  Shard& s = shard_for(key_hash);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(canonical_key);
  if (it == s.index.end()) {
    s.misses.fetch_add(1, std::memory_order_relaxed);
    g_misses().add();
    return std::nullopt;
  }
  s.hits.fetch_add(1, std::memory_order_relaxed);
  g_hits().add();
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // promote; iterators stay valid
  return it->second->payload;
}

void ResultCache::insert(std::uint64_t key_hash, std::string canonical_key,
                         std::string payload) {
  Shard& s = shard_for(key_hash);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(std::string_view(canonical_key));
  if (it != s.index.end()) {
    // Concurrent evaluation of the same request already published the (by
    // construction identical) payload; just promote.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= per_shard_capacity_) {
    s.index.erase(std::string_view(s.lru.back().key));
    s.lru.pop_back();
    s.evictions.fetch_add(1, std::memory_order_relaxed);
    g_evictions().add();
  }
  s.lru.push_front(Entry{std::move(canonical_key), std::move(payload)});
  s.index.emplace(std::string_view(s.lru.front().key), s.lru.begin());
  s.entries.store(s.lru.size(), std::memory_order_relaxed);
}

CacheStats ResultCache::stats() const {
  // Lock-free aggregation: relaxed reads of the atomic tallies. Counters
  // may be mid-update while clients poll, but each read is a whole value —
  // never torn — and monotonicity makes interleaved snapshots meaningful.
  CacheStats out;
  out.capacity = per_shard_capacity_ * shards_.size();
  for (const Shard& s : shards_) {
    out.hits += s.hits.load(std::memory_order_relaxed);
    out.misses += s.misses.load(std::memory_order_relaxed);
    out.evictions += s.evictions.load(std::memory_order_relaxed);
    out.entries += s.entries.load(std::memory_order_relaxed);
  }
  return out;
}

void ResultCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.index.clear();
    s.lru.clear();
    s.entries.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ivory::serve
