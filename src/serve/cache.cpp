#include "serve/cache.hpp"

#include <algorithm>

namespace ivory::serve {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  capacity = std::max<std::size_t>(1, capacity);
  shards = std::max<std::size_t>(1, std::min(shards, capacity));
  per_shard_capacity_ = std::max<std::size_t>(1, capacity / shards);
  shards_ = std::vector<Shard>(shards);
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key_hash,
                                               std::string_view canonical_key) {
  Shard& s = shard_for(key_hash);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(canonical_key);
  if (it == s.index.end()) {
    ++s.misses;
    return std::nullopt;
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // promote; iterators stay valid
  return it->second->payload;
}

void ResultCache::insert(std::uint64_t key_hash, std::string canonical_key,
                         std::string payload) {
  Shard& s = shard_for(key_hash);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(std::string_view(canonical_key));
  if (it != s.index.end()) {
    // Concurrent evaluation of the same request already published the (by
    // construction identical) payload; just promote.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= per_shard_capacity_) {
    s.index.erase(std::string_view(s.lru.back().key));
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.push_front(Entry{std::move(canonical_key), std::move(payload)});
  s.index.emplace(std::string_view(s.lru.front().key), s.lru.begin());
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  out.capacity = per_shard_capacity_ * shards_.size();
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.entries += s.lru.size();
  }
  return out;
}

void ResultCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.index.clear();
    s.lru.clear();
  }
}

}  // namespace ivory::serve
