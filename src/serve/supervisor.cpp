#include "serve/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "serve/frame.hpp"

namespace ivory::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw InvalidParameter("fleet: " + what + ": " + std::strerror(errno));
}

void fill_addr(sockaddr_un& addr, const std::string& path) {
  addr = {};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "fleet: socket path longer than sockaddr_un allows: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
}

/// Connect to a Unix socket; returns -1 on failure. `timeout_ms` > 0 also
/// arms send/recv timeouts so a hung peer cannot wedge the caller.
int connect_unix(const std::string& path, int timeout_ms) {
  sockaddr_un addr;
  fill_addr(addr, path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  return fd;
}

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

std::size_t count_newlines(const char* data, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += data[i] == '\n';
  return c;
}

metrics::Counter& g_restarts() {
  static metrics::Counter& c = metrics::registry().counter("fleet.worker_restarts");
  return c;
}
metrics::Counter& g_retry_errors() {
  static metrics::Counter& c = metrics::registry().counter("fleet.retry_errors");
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker / Proxy state
// ---------------------------------------------------------------------------

struct Supervisor::Worker {
  enum class State { Stopped, Starting, Healthy, Backoff, Failed };

  int index = 0;
  std::string socket;
  pid_t pid = -1;
  State state = State::Stopped;
  std::uint64_t restarts = 0;
  std::uint64_t crashes = 0;
  int consecutive_failures = 0;
  int ping_failures = 0;
  std::chrono::steady_clock::time_point started_at;
  std::chrono::steady_clock::time_point restart_at;

  const char* state_name() const {
    switch (state) {
      case State::Stopped: return "stopped";
      case State::Starting: return "starting";
      case State::Healthy: return "healthy";
      case State::Backoff: return "backoff";
      case State::Failed: return "failed";
    }
    return "?";
  }
};

/// One client connection pinned to one worker: two pump threads and the
/// response bookkeeping that turns a worker crash into retryable errors.
/// Requests are always newline-delimited lines; responses may be binary
/// streams, so the w2c pump counts them through a frame-aware
/// ResponseScanner instead of counting newlines.
struct Supervisor::Proxy {
  int client_fd = -1;
  int worker_fd = -1;
  std::atomic<std::uint64_t> requests{0};   ///< newlines client -> worker
  std::atomic<std::uint64_t> responses{0};  ///< completed responses worker -> client
  ResponseScanner scanner;                  ///< w2c pump thread only
  std::atomic<bool> done_c2w{false};
  std::atomic<bool> done_w2c{false};
  std::thread t_c2w;
  std::thread t_w2c;

  bool done() const { return done_c2w.load() && done_w2c.load(); }

  void shutdown_both() {
    if (client_fd >= 0) ::shutdown(client_fd, SHUT_RDWR);
    if (worker_fd >= 0) ::shutdown(worker_fd, SHUT_RDWR);
  }

  ~Proxy() {
    // The destructor can run on one of the pump threads themselves (the
    // lambda's shared_ptr may be the last reference): joining yourself is
    // a deadlock, detaching a thread that is mid-return is fine.
    auto reap = [](std::thread& t) {
      if (!t.joinable()) return;
      if (t.get_id() == std::this_thread::get_id()) t.detach();
      else t.join();
    };
    reap(t_c2w);
    reap(t_w2c);
    if (client_fd >= 0) ::close(client_fd);
    if (worker_fd >= 0) ::close(worker_fd);
  }
};

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

Supervisor::Supervisor(SupervisorOptions opt) : opt_(std::move(opt)) {}

Supervisor::~Supervisor() { stop(); }

std::string Supervisor::retryable_error_line() {
  // Built once; id is null because a byte-level mux cannot know which
  // request ids died with the worker. "retryable":true is the client's cue
  // to resubmit — the evaluation is deterministic and the result cache
  // makes the retry cheap.
  json::Value::Object err;
  err.emplace_back("code", "worker_unavailable");
  err.emplace_back("site", "fleet");
  err.emplace_back("candidate", "");
  err.emplace_back("detail",
                   "worker crashed with the request in flight; safe to retry");
  err.emplace_back("retryable", true);
  json::Value::Object root;
  root.emplace_back("id", json::Value());
  root.emplace_back("ok", false);
  root.emplace_back("error", json::Value(std::move(err)));
  return json::Value(std::move(root)).write();
}

void Supervisor::start() {
  require(!opt_.socket_path.empty(), "fleet: socket_path is required");
  require(opt_.workers >= 1, "fleet: need at least one worker");
  ::signal(SIGPIPE, SIG_IGN);

  {
    std::lock_guard<std::mutex> lock(mu_);
    workers_.clear();
    for (int i = 0; i < opt_.workers; ++i) {
      auto w = std::make_unique<Worker>();
      w->index = i;
      w->socket = opt_.socket_path + ".w" + std::to_string(i);
      workers_.push_back(std::move(w));
    }
    for (auto& w : workers_) {
      spawn_locked(*w);
      if (!wait_ready(*w)) {
        const std::string sock = w->socket;
        for (auto& v : workers_)
          if (v->pid > 0) ::kill(v->pid, SIGKILL);
        for (auto& v : workers_)
          if (v->pid > 0) ::waitpid(v->pid, nullptr, 0);
        throw InvalidParameter("fleet: worker did not come up on " + sock);
      }
      w->state = Worker::State::Healthy;
    }
  }

  sockaddr_un addr;
  fill_addr(addr, opt_.socket_path);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  ::unlink(opt_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    sys_fail("bind " + opt_.socket_path);
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    sys_fail("listen");
  }

  running_.store(true);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  monitor_thread_ = std::thread([this] { monitor_loop(); });
}

void Supervisor::spawn_locked(Worker& w) {
  std::string exe = opt_.exe;
  if (exe.empty()) exe = "/proc/self/exe";

  std::vector<std::string> args = {exe,        "serve", "--socket",
                                   w.socket,   "--worker", "1"};
  for (const std::string& a : opt_.worker_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) sys_fail("fork");
  if (pid == 0) {
    // Child: restore default signal dispositions and a clear mask, then
    // exec — nothing of the multithreaded parent survives into the worker.
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGPIPE, SIG_DFL);
    sigset_t none;
    sigemptyset(&none);
    pthread_sigmask(SIG_SETMASK, &none, nullptr);
    ::execv(exe.c_str(), argv.data());
    ::_exit(127);
  }
  w.pid = pid;
  w.state = Worker::State::Starting;
  w.ping_failures = 0;
  w.started_at = std::chrono::steady_clock::now();
}

bool Supervisor::wait_ready(Worker& w) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opt_.spawn_wait_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = connect_unix(w.socket, 0);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    int status = 0;
    if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
      w.pid = -1;  // died before its socket came up (bad flags, port clash)
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

void Supervisor::note_death_locked(Worker& w,
                                   const std::chrono::steady_clock::time_point& now) {
  w.pid = -1;
  ++w.crashes;
  ++w.consecutive_failures;
  w.ping_failures = 0;
  if (w.consecutive_failures >= opt_.flap_limit) {
    // Crash loop: park the worker instead of burning the machine. The rest
    // of the fleet keeps serving; a stats() reader sees "failed".
    w.state = Worker::State::Failed;
    return;
  }
  int backoff = opt_.backoff_initial_ms;
  for (int i = 1; i < w.consecutive_failures && backoff < opt_.backoff_max_ms; ++i)
    backoff *= 2;
  if (backoff > opt_.backoff_max_ms) backoff = opt_.backoff_max_ms;
  w.state = Worker::State::Backoff;
  w.restart_at = now + std::chrono::milliseconds(backoff);
}

bool Supervisor::ping(const std::string& socket) const {
  const int fd = connect_unix(socket, opt_.ping_timeout_ms);
  if (fd < 0) return false;
  const std::string req = "{\"id\":\"fleet-health\",\"op\":\"stats\"}\n";
  bool ok = send_all(fd, req.data(), req.size());
  char buf[4096];
  bool got_line = false;
  while (ok && !got_line) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      ok = false;
      break;
    }
    got_line = std::memchr(buf, '\n', static_cast<std::size_t>(r)) != nullptr;
  }
  ::close(fd);
  return ok && got_line;
}

void Supervisor::monitor_loop() {
  while (!stopping_.load()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = std::chrono::steady_clock::now();
      for (auto& wp : workers_) {
        Worker& w = *wp;
        // 1. Process death (crash, OOM-kill, clean exit) via waitpid.
        if (w.pid > 0) {
          int status = 0;
          if (::waitpid(w.pid, &status, WNOHANG) == w.pid) note_death_locked(w, now);
        }
        // 2. Scheduled restarts once the backoff elapses.
        if (w.state == Worker::State::Backoff && now >= w.restart_at) {
          spawn_locked(w);
          if (wait_ready(w)) {
            w.state = Worker::State::Healthy;
            ++w.restarts;
            g_restarts().add();
          } else {
            if (w.pid > 0) {
              ::kill(w.pid, SIGKILL);
              ::waitpid(w.pid, nullptr, 0);
            }
            note_death_locked(w, std::chrono::steady_clock::now());
          }
        }
        // 3. A long stretch of good behaviour clears the crash streak.
        if (w.state == Worker::State::Healthy && w.consecutive_failures > 0 &&
            now - w.started_at > std::chrono::milliseconds(opt_.flap_reset_ms))
          w.consecutive_failures = 0;
      }
      prune_proxies_locked();
    }

    // 4. Liveness ping outside the lock (it blocks up to ping_timeout_ms).
    //    Process death is caught by waitpid above; this catches hangs.
    std::vector<std::pair<int, std::string>> to_ping;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& wp : workers_)
        if (wp->state == Worker::State::Healthy) to_ping.emplace_back(wp->index, wp->socket);
    }
    for (const auto& [idx, socket] : to_ping) {
      if (stopping_.load()) break;
      const bool ok = ping(socket);
      std::lock_guard<std::mutex> lock(mu_);
      Worker& w = *workers_[static_cast<std::size_t>(idx)];
      if (w.state != Worker::State::Healthy) continue;
      if (ok) {
        w.ping_failures = 0;
      } else if (++w.ping_failures >= opt_.ping_failures_to_kill && w.pid > 0) {
        // Alive but unresponsive: treat as crashed. SIGKILL (a hung worker
        // by definition ignores polite signals), reap, restart path.
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        note_death_locked(w, std::chrono::steady_clock::now());
      }
    }

    for (int slept = 0; slept < opt_.health_interval_ms && !stopping_.load(); slept += 20)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int Supervisor::pick_and_connect() {
  for (int attempt = 0; attempt < opt_.workers; ++attempt) {
    std::string socket;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const int n = static_cast<int>(workers_.size());
      for (int k = 0; k < n; ++k) {
        Worker& w = *workers_[static_cast<std::size_t>((rr_cursor_ + k) % n)];
        if (w.state == Worker::State::Healthy) {
          socket = w.socket;
          rr_cursor_ = (w.index + 1) % n;
          break;
        }
      }
    }
    if (socket.empty()) return -1;
    const int fd = connect_unix(socket, 0);
    if (fd >= 0) return fd;
    // Healthy-by-bookkeeping but not accepting: leave the diagnosis to the
    // monitor (waitpid/ping) and try the next worker.
  }
  return -1;
}

void Supervisor::prune_proxies_locked() {
  for (std::size_t i = 0; i < proxies_.size();) {
    if (proxies_[i]->done())
      proxies_.erase(proxies_.begin() + static_cast<long>(i));  // ~Proxy joins
    else
      ++i;
  }
}

void Supervisor::accept_loop() {
  while (running_.load()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by stop()
    }
    // A stuck client must not wedge a pump thread forever.
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

    const int worker = pick_and_connect();
    if (worker < 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++rejected_;
      const std::string line = retryable_error_line() + "\n";
      send_all(client, line.data(), line.size());
      ::close(client);
      continue;
    }

    auto p = std::make_shared<Proxy>();
    p->client_fd = client;
    p->worker_fd = worker;
    p->t_c2w = std::thread([p] {
      char buf[1 << 16];
      while (true) {
        const ssize_t r = ::recv(p->client_fd, buf, sizeof buf, 0);
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) break;
        p->requests.fetch_add(count_newlines(buf, static_cast<std::size_t>(r)));
        if (!send_all(p->worker_fd, buf, static_cast<std::size_t>(r))) break;
      }
      // Client EOF: half-close toward the worker so it drains in-flight
      // work and closes, which terminates the w2c pump naturally.
      ::shutdown(p->worker_fd, SHUT_WR);
      p->done_c2w.store(true);
    });
    p->t_w2c = std::thread([this, p] {
      char buf[1 << 16];
      std::string fwd;
      while (true) {
        const ssize_t r = ::recv(p->worker_fd, buf, sizeof buf, 0);
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) break;
        // Frame-aware accounting: '\n' inside a binary frame is payload, not
        // a response boundary. The scanner also withholds a partially
        // received frame, so a worker crash mid-frame forwards nothing torn.
        fwd.clear();
        p->responses.fetch_add(p->scanner.feed(buf, static_cast<std::size_t>(r), fwd));
        if (!fwd.empty() && !send_all(p->client_fd, fwd.data(), fwd.size())) break;
      }
      // Worker gone. Any unanswered request becomes a structured retryable
      // error — the contract that a crash never leaves a client hanging.
      std::uint64_t asked = p->requests.load();
      std::uint64_t answered = p->responses.load();
      if (p->scanner.mid_stream() && asked > answered) {
        // The stream that died mid-flight gets its retryable error as a
        // terminal ERROR frame, so the client's frame parser ends cleanly
        // instead of choking on a JSON line inside a binary stream.
        retry_errors_.fetch_add(1, std::memory_order_relaxed);
        g_retry_errors().add();
        ++answered;
        std::string bytes;
        encode_frame(bytes, FrameType::Error, retryable_error_line());
        send_all(p->client_fd, bytes.data(), bytes.size());
      }
      if (asked > answered) {
        const std::string line = retryable_error_line() + "\n";
        for (std::uint64_t i = answered; i < asked; ++i) {
          // Count before delivering: a client that reads the line must never
          // observe a stats() snapshot that has not counted it yet.
          retry_errors_.fetch_add(1, std::memory_order_relaxed);
          g_retry_errors().add();
          if (!send_all(p->client_fd, line.data(), line.size())) break;
        }
      }
      ::shutdown(p->client_fd, SHUT_RDWR);  // unblocks the c2w pump
      p->done_w2c.store(true);
    });

    std::lock_guard<std::mutex> lock(mu_);
    ++connections_;
    prune_proxies_locked();
    proxies_.push_back(std::move(p));
  }
}

void Supervisor::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // 1. Stop accepting.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();

  // 2. Graceful drain: SIGTERM lets each worker finish in-flight requests
  //    (its Server::stop waits for delivery) and exit.
  std::vector<pid_t> pids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& w : workers_)
      if (w->pid > 0) {
        ::kill(w->pid, SIGTERM);
        pids.push_back(w->pid);
      }
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt_.drain_deadline_ms);
  for (const pid_t pid : pids) {
    bool reaped = false;
    while (!reaped && std::chrono::steady_clock::now() < deadline) {
      if (::waitpid(pid, nullptr, WNOHANG) == pid) reaped = true;
      else std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      // Drain deadline blown: the bound matters more than politeness.
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }

  // 3. Tear down the proxies (worker exits have ended most of them; the
  //    destructor joins the pump threads).
  std::vector<std::shared_ptr<Proxy>> proxies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    proxies.swap(proxies_);
    for (auto& w : workers_) {
      w->pid = -1;
      w->state = Worker::State::Stopped;
    }
  }
  for (auto& p : proxies) p->shutdown_both();
  proxies.clear();  // joins

  ::unlink(opt_.socket_path.c_str());
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& w : workers_) ::unlink(w->socket.c_str());
}

FleetStats Supervisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetStats s;
  for (const auto& w : workers_) {
    WorkerStatus ws;
    ws.index = w->index;
    ws.pid = w->pid;
    ws.state = w->state_name();
    ws.socket = w->socket;
    ws.restarts = w->restarts;
    ws.crashes = w->crashes;
    s.workers.push_back(std::move(ws));
  }
  s.connections = connections_;
  s.rejected = rejected_;
  s.retry_errors = retry_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ivory::serve
