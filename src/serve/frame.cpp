#include "serve/frame.hpp"

#include <algorithm>
#include <cstring>

#include "common/hash.hpp"

namespace ivory::serve {

namespace {

// Explicit little-endian (de)serialization keeps the wire format identical
// across platforms regardless of host byte order.
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::Header) &&
         t <= static_cast<std::uint8_t>(FrameType::CancelAck);
}

constexpr std::size_t kFrameHeaderBytes = 5;  // u32 len + u8 type
constexpr std::size_t kChecksumBytes = 8;

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::Header: return "HEADER";
    case FrameType::Chunk: return "CHUNK";
    case FrameType::End: return "END";
    case FrameType::Error: return "ERROR";
    case FrameType::CancelAck: return "CANCEL_ACK";
  }
  return "?";
}

std::uint64_t frame_checksum(FrameType type, std::string_view payload) {
  const char type_byte = static_cast<char>(type);
  return fnv1a64(payload, fnv1a64(std::string_view(&type_byte, 1)));
}

void encode_frame(std::string& out, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload)
    throw InvalidParameter("stream: frame payload exceeds " +
                           std::to_string(kMaxFramePayload) + " bytes");
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.push_back(static_cast<char>(type));
  out.append(payload);
  put_u64(out, frame_checksum(type, payload));
}

std::optional<Frame> FrameDecoder::next() {
  if (!saw_magic_) {
    if (buf_.size() - pos_ < kStreamMagic.size()) return std::nullopt;
    if (std::string_view(buf_).substr(pos_, kStreamMagic.size()) != kStreamMagic)
      throw StreamProtocolError("bad magic (expected \"" + std::string(kStreamMagic) +
                                "\")");
    pos_ += kStreamMagic.size();
    saw_magic_ = true;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes) return std::nullopt;
  const std::uint32_t len = get_u32(buf_.data() + pos_);
  const std::uint8_t type = static_cast<std::uint8_t>(buf_[pos_ + 4]);
  if (len > kMaxFramePayload)
    throw StreamProtocolError("frame length " + std::to_string(len) + " exceeds " +
                              std::to_string(kMaxFramePayload));
  if (!valid_type(type))
    throw StreamProtocolError("unknown frame type " + std::to_string(type));
  const std::size_t total = kFrameHeaderBytes + len + kChecksumBytes;
  if (buf_.size() - pos_ < total) return std::nullopt;

  Frame f;
  f.type = static_cast<FrameType>(type);
  f.payload.assign(buf_, pos_ + kFrameHeaderBytes, len);
  const std::uint64_t want = get_u64(buf_.data() + pos_ + kFrameHeaderBytes + len);
  const std::uint64_t got = frame_checksum(f.type, f.payload);
  if (want != got)
    throw StreamProtocolError(std::string("checksum mismatch on ") +
                              frame_type_name(f.type) + " frame");
  pos_ += total;
  // Compact the buffer once the consumed prefix dominates, so a long stream
  // does not retain every byte it ever saw.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return f;
}

StreamEmitter::StreamEmitter(WriteFn write, std::shared_ptr<std::atomic<bool>> cancelled,
                             double deadline_ms,
                             std::chrono::steady_clock::time_point enqueued)
    : write_(std::move(write)),
      cancelled_(std::move(cancelled)),
      deadline_ms_(deadline_ms),
      enqueued_(enqueued) {}

void StreamEmitter::set_chunk_bytes(std::size_t n) {
  chunk_bytes_ = std::max<std::size_t>(1, std::min(n, kMaxFramePayload));
}

void StreamEmitter::check_abort() {
  if (cancelled_ && cancelled_->load(std::memory_order_relaxed))
    throw Abort{Abort::Reason::Cancelled};
  if (deadline_ms_ > 0.0) {
    const double waited = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - enqueued_)
                              .count();
    if (waited > deadline_ms_) throw Abort{Abort::Reason::Expired};
  }
}

void StreamEmitter::emit(FrameType type, std::string_view payload, bool terminal) {
  std::string bytes;
  bytes.reserve((wrote_magic_ ? 0 : kStreamMagic.size()) + kFrameHeaderBytes +
                payload.size() + kChecksumBytes);
  if (!wrote_magic_) {
    bytes.append(kStreamMagic);
    wrote_magic_ = true;
  }
  encode_frame(bytes, type, payload);
  const bool ok = write_(std::move(bytes));
  // Terminal frames swallow delivery failure: the consumer already left.
  if (!ok && !terminal) throw Abort{Abort::Reason::ConsumerGone};
}

void StreamEmitter::header(std::string_view payload) {
  emit(FrameType::Header, payload, /*terminal=*/false);
}

void StreamEmitter::chunk(std::string_view payload) {
  check_abort();
  emit(FrameType::Chunk, payload, /*terminal=*/false);
  ++chunks_;
}

void StreamEmitter::chunk_split(std::string_view text) {
  if (text.empty()) return;
  for (std::size_t off = 0; off < text.size(); off += chunk_bytes_)
    chunk(text.substr(off, std::min(chunk_bytes_, text.size() - off)));
}

void StreamEmitter::end(std::string_view payload) {
  emit(FrameType::End, payload, /*terminal=*/true);
}

void StreamEmitter::error(std::string_view payload) {
  emit(FrameType::Error, payload, /*terminal=*/true);
}

void StreamEmitter::cancel_ack(std::string_view payload) {
  emit(FrameType::CancelAck, payload, /*terminal=*/true);
}

std::string stream_status_payload(std::string_view id_json, std::string_view status) {
  std::string out = "{\"id\":";
  out.append(id_json);
  out.append(",\"status\":\"");
  out.append(status);
  out.append("\"}");
  return out;
}

std::size_t ResponseScanner::feed(const char* data, std::size_t n, std::string& forward) {
  std::size_t completed = 0;
  std::size_t i = 0;
  while (i < n) {
    switch (state_) {
      case State::Boundary: {
        // Accumulate while the bytes are still a prefix of the stream magic.
        while (i < n && held_.size() < kStreamMagic.size() &&
               data[i] == kStreamMagic[held_.size()])
          held_.push_back(data[i++]);
        if (held_.size() == kStreamMagic.size()) {
          forward.append(held_);
          held_.clear();
          in_stream_ = true;
          frame_total_ = 0;
          state_ = State::Frame;
        } else if (i < n) {
          // Diverged from the magic: it was an ordinary line all along.
          forward.append(held_);
          held_.clear();
          state_ = State::Line;
        }
        break;
      }
      case State::Line: {
        while (i < n) {
          const char c = data[i++];
          forward.push_back(c);
          if (c == '\n') {
            ++completed;
            state_ = State::Boundary;
            break;
          }
        }
        break;
      }
      case State::Frame: {
        // Gather the 5-byte frame header, then the full frame, into held_;
        // forward only complete frames so a dead worker leaks nothing torn.
        if (frame_total_ == 0) {
          while (i < n && held_.size() < 5) held_.push_back(data[i++]);
          if (held_.size() < 5) return completed;
          const std::uint32_t len = get_u32(held_.data());
          frame_total_ = 5 + static_cast<std::size_t>(len) + 8;
        }
        const std::size_t want = frame_total_ - held_.size();
        const std::size_t take = std::min(want, n - i);
        held_.append(data + i, take);
        i += take;
        if (held_.size() < frame_total_) return completed;
        const std::uint8_t type = static_cast<std::uint8_t>(held_[4]);
        forward.append(held_);
        held_.clear();
        frame_total_ = 0;
        if (valid_type(type) && is_terminal(static_cast<FrameType>(type))) {
          ++completed;
          in_stream_ = false;
          state_ = State::Boundary;
        }
        // Non-terminal (or unexpected) type: stay in Frame for the next one.
        break;
      }
    }
  }
  return completed;
}

}  // namespace ivory::serve
