// Length-prefixed binary framing for streamed serve responses.
//
// A streamed response is the 12-byte magic "ivorystream1" followed by frames.
// Each frame is:
//
//   u32 LE  payload_len          (<= kMaxFramePayload)
//   u8      type                 (FrameType below)
//   bytes   payload[payload_len]
//   u64 LE  checksum             fnv1a64(payload, seeded with the type byte)
//
// A stream carries exactly one HEADER, zero or more CHUNKs, and exactly one
// terminal frame (END, ERROR or CANCEL_ACK), after which the connection
// returns to line-delimited JSON. Frames never interleave between requests:
// per-connection response order equals submission order, streamed or not.
//
// This header also holds the two endpoints of the stream machinery:
//
//   StreamEmitter   — producer side. Wraps a write function, slices payloads
//                     into bounded CHUNKs, and converts cancel/deadline/
//                     consumer-gone conditions into StreamEmitter::Abort so
//                     the evaluation unwinds mid-waveform.
//   FrameDecoder    — consumer side. Incremental pull parser; throws
//                     StreamProtocolError on any malformed byte, never hangs
//                     on truncation (next() just returns nullopt until fed).
//   ResponseScanner — the supervisor's acceptor mux. Counts completed
//                     responses (lines and whole streams) in a worker's
//                     output and withholds partially-received frames so a
//                     worker crash mid-frame never leaks garbage to clients.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace ivory::serve {

inline constexpr std::string_view kStreamMagic = "ivorystream1";
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

enum class FrameType : std::uint8_t {
  Header = 1,     ///< JSON: {"id":...,"encoding":...[,"columns":...,"has_time":...]}
  Chunk = 2,      ///< encoding-dependent body bytes (JSON text or wave1 blocks)
  End = 3,        ///< JSON status, terminal: {"id":...,"status":"ok",...}
  Error = 4,      ///< the exact non-streaming error envelope line, terminal
  CancelAck = 5,  ///< JSON: {"id":...,"status":"cancelled"}, terminal
};

/// True for the frame types that end a stream.
inline bool is_terminal(FrameType t) {
  return t == FrameType::End || t == FrameType::Error || t == FrameType::CancelAck;
}

/// Human-readable frame-type name (for transcripts and test messages).
const char* frame_type_name(FrameType t);

/// The wire does not conform to the grammar above (bad magic, oversized
/// length, unknown type, checksum mismatch, malformed wave1 block, ...).
class StreamProtocolError : public InvalidParameter {
 public:
  explicit StreamProtocolError(const std::string& what)
      : InvalidParameter("stream: " + what) {}
};

/// Checksum of one frame: fnv1a64 over the payload, seeded with the hash of
/// the single type byte so the type is covered too.
std::uint64_t frame_checksum(FrameType type, std::string_view payload);

/// Appends one encoded frame (header + payload + checksum, no magic) to
/// `out`. Throws InvalidParameter when payload exceeds kMaxFramePayload.
void encode_frame(std::string& out, FrameType type, std::string_view payload);

struct Frame {
  FrameType type;
  std::string payload;
};

/// Incremental frame parser. feed() bytes as they arrive; next() yields one
/// decoded frame at a time, nullopt while more bytes are needed. The magic
/// prefix is consumed once per decoder lifetime (one decoder per stream).
/// Any grammar violation throws StreamProtocolError; truncation mid-frame is
/// not an error here — the caller decides whether EOF mid-frame is clean.
class FrameDecoder {
 public:
  std::optional<Frame> next();
  void feed(std::string_view bytes) { buf_.append(bytes); }

  /// True once the magic prefix has been consumed.
  bool saw_magic() const { return saw_magic_; }
  /// Bytes buffered but not yet consumed by next().
  std::size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool saw_magic_ = false;
};

/// Producer side of one stream. All frame emission for a response goes
/// through one emitter; it writes the magic lazily before the first frame.
///
/// The write function returns false when the consumer is gone (its delivery
/// queue was shut down); the emitter then throws Abort{ConsumerGone}. Cancel
/// and deadline are checked before every CHUNK and converted to
/// Abort{Cancelled}/Abort{Expired}; the service catches Abort and emits the
/// matching terminal frame. Terminal emitters swallow write failure — there
/// is nobody left to tell.
class StreamEmitter {
 public:
  /// Why chunk emission unwound. Thrown by check_abort()/chunk().
  struct Abort {
    enum class Reason { Cancelled, Expired, ConsumerGone };
    Reason reason;
  };

  using WriteFn = std::function<bool(std::string&&)>;

  StreamEmitter(WriteFn write, std::shared_ptr<std::atomic<bool>> cancelled,
                double deadline_ms, std::chrono::steady_clock::time_point enqueued);

  void set_chunk_bytes(std::size_t n);
  std::size_t chunk_bytes() const { return chunk_bytes_; }

  /// Throws Abort when the request is cancelled, past deadline, or the
  /// consumer is gone. Cheap; called before every chunk and safe to call
  /// from tight sample loops.
  void check_abort();

  void header(std::string_view payload);
  /// One CHUNK frame carrying `payload` verbatim (wave1 blocks size
  /// themselves to the chunk budget before calling this).
  void chunk(std::string_view payload);
  /// Slices `text` into chunk_bytes()-sized CHUNK frames (JSON encoding).
  void chunk_split(std::string_view text);
  void end(std::string_view payload);
  void error(std::string_view payload);
  void cancel_ack(std::string_view payload);

  std::size_t chunks_emitted() const { return chunks_; }

 private:
  void emit(FrameType type, std::string_view payload, bool terminal);

  WriteFn write_;
  std::shared_ptr<std::atomic<bool>> cancelled_;
  double deadline_ms_;
  std::chrono::steady_clock::time_point enqueued_;
  std::size_t chunk_bytes_ = 65536;
  std::size_t chunks_ = 0;
  bool wrote_magic_ = false;
};

/// JSON `{"id":<id>,"status":"<status>"}` for END/CANCEL_ACK payloads.
/// `id_json` is the request id already serialized (e.g. "7", "\"a\"", "null").
std::string stream_status_payload(std::string_view id_json, std::string_view status);

/// Counts completed responses in a worker's byte stream for the supervisor
/// mux, which must know how many requests were answered when a worker dies.
/// Plain lines count at '\n'; a stream counts once at its terminal frame.
/// Line bytes and complete frames are appended to `forward` immediately;
/// bytes of a partially received frame are withheld until the frame
/// completes, so a worker crash mid-frame forwards nothing torn. The worker
/// is trusted (same binary), so this scanner never throws — a malformed
/// prefix simply falls back to line accounting.
class ResponseScanner {
 public:
  /// Consumes `n` bytes, appends forwardable bytes to `forward`, returns the
  /// number of responses completed within this call.
  std::size_t feed(const char* data, std::size_t n, std::string& forward);

  /// True while inside a stream whose terminal frame has not been seen.
  bool mid_stream() const { return state_ == State::Frame || in_stream_; }

 private:
  enum class State { Boundary, Line, Frame };

  State state_ = State::Boundary;
  bool in_stream_ = false;   ///< between magic and terminal frame
  std::string held_;         ///< bytes withheld at a boundary or mid-frame
  std::size_t frame_total_ = 0;  ///< full size of the frame being gathered
};

}  // namespace ivory::serve
