#include "serve/wave_codec.hpp"

#include <cstring>

namespace ivory::serve {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
}

std::uint64_t bits_of(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

/// Bounds-checked little-endian reader over one block payload.
class BlockReader {
 public:
  explicit BlockReader(std::string_view p) : p_(p) {}

  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint8_t u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(p_[pos_++]);
  }

  double f64() {
    need(8, "f64");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      v_or(bits, i);
    pos_ += 8;
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }

  std::size_t remaining() const { return p_.size() - pos_; }

 private:
  void v_or(std::uint64_t& bits, int i) {
    bits |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[pos_ + i])) << (8 * i);
  }
  void need(std::size_t n, const char* what) {
    if (p_.size() - pos_ < n)
      throw StreamProtocolError(std::string("wave1 block truncated reading ") + what);
  }

  std::string_view p_;
  std::size_t pos_ = 0;
};

/// Length of the arithmetic run starting at `p`: the longest prefix that the
/// decoder's iterative `cur += step` replay reproduces bit-for-bit.
std::size_t arith_run_length(const std::vector<double>& t, std::size_t p, std::size_t n) {
  if (n - p < 2) return 1;
  const double step = t[p + 1] - t[p];
  double cur = t[p];
  std::size_t len = 1;
  while (p + len < n) {
    cur += step;
    if (bits_of(cur) != bits_of(t[p + len])) break;
    ++len;
  }
  return len;
}

constexpr std::size_t kMinArithRun = 4;

void encode_time_runs(std::string& out, const std::vector<double>& t) {
  const std::size_t n = t.size();
  std::size_t p = 0;
  while (p < n) {
    const std::size_t lit_start = p;
    while (p < n && arith_run_length(t, p, n) < kMinArithRun) ++p;
    if (p > lit_start) {
      out.push_back(0);  // kind: literal
      put_u32(out, static_cast<std::uint32_t>(p - lit_start));
      for (std::size_t i = lit_start; i < p; ++i) put_f64(out, t[i]);
    }
    if (p < n) {
      const std::size_t len = arith_run_length(t, p, n);
      out.push_back(1);  // kind: arithmetic
      put_u32(out, static_cast<std::uint32_t>(len));
      put_f64(out, t[p]);
      put_f64(out, len > 1 ? t[p + 1] - t[p] : 0.0);
      p += len;
    }
  }
}

/// Comma-joined shortest-round-trip rendering of a column.
void append_column(std::string& out, const std::vector<double>& col) {
  for (std::size_t i = 0; i < col.size(); ++i) {
    if (i) out.push_back(',');
    json::append_number(out, col[i]);
  }
}

/// `obj.write()` with the closing '}' removed, ready for member splicing.
std::string open_object(const json::Value& obj) {
  std::string s = obj.write();
  s.pop_back();  // write() of an object always ends in '}'
  return s;
}

}  // namespace

Wave1Encoder::Wave1Encoder(std::size_t n_value_cols, bool has_time)
    : n_cols_(n_value_cols), has_time_(has_time), cols_(n_value_cols) {}

void Wave1Encoder::add_row(double t, const double* v, std::size_t n) {
  require(n == n_cols_, "wave1: row width does not match the column count");
  if (has_time_) time_.push_back(t);
  for (std::size_t i = 0; i < n_cols_; ++i) cols_[i].push_back(v[i]);
  ++buffered_;
}

bool Wave1Encoder::full(std::size_t chunk_bytes) const {
  return 4 + buffered_ * 8 * (n_cols_ + (has_time_ ? 1 : 0)) >= chunk_bytes;
}

std::string Wave1Encoder::encode_block() {
  require(buffered_ > 0, "wave1: encode_block on an empty buffer");
  std::string out;
  out.reserve(4 + buffered_ * 8 * (n_cols_ + (has_time_ ? 1 : 0)));
  put_u32(out, static_cast<std::uint32_t>(buffered_));
  if (has_time_) encode_time_runs(out, time_);
  for (std::vector<double>& col : cols_) {
    for (const double s : col) put_f64(out, s);
    col.clear();
  }
  time_.clear();
  buffered_ = 0;
  return out;
}

Wave1Decoder::Wave1Decoder(std::size_t n_value_cols, bool has_time)
    : has_time_(has_time), cols_(n_value_cols) {}

void Wave1Decoder::decode_block(std::string_view payload) {
  BlockReader r(payload);
  const std::uint32_t n_rows = r.u32();
  if (n_rows == 0) throw StreamProtocolError("wave1 block with zero rows");
  // Cheap size sanity before any allocation: the columns alone need
  // n_rows * 8 bytes each, and time records need at least 5 bytes.
  const std::size_t min_bytes =
      static_cast<std::size_t>(n_rows) * 8 * cols_.size() + (has_time_ ? 5 : 0);
  if (r.remaining() < min_bytes)
    throw StreamProtocolError("wave1 block shorter than its declared row count");

  if (has_time_) {
    std::size_t covered = 0;
    while (covered < n_rows) {
      const std::uint8_t kind = r.u8();
      const std::uint32_t count = r.u32();
      if (count == 0) throw StreamProtocolError("wave1 time run with zero count");
      if (covered + count > n_rows)
        throw StreamProtocolError("wave1 time runs overrun the block row count");
      if (kind == 0) {
        for (std::uint32_t i = 0; i < count; ++i) time_.push_back(r.f64());
      } else if (kind == 1) {
        double cur = r.f64();
        const double step = r.f64();
        for (std::uint32_t i = 0; i < count; ++i) {
          time_.push_back(cur);
          cur += step;
        }
      } else {
        throw StreamProtocolError("wave1 time run with unknown kind " +
                                  std::to_string(kind));
      }
      covered += count;
    }
  }
  for (std::vector<double>& col : cols_)
    for (std::uint32_t i = 0; i < n_rows; ++i) col.push_back(r.f64());
  if (r.remaining() != 0)
    throw StreamProtocolError("wave1 block has trailing bytes");
  rows_ += n_rows;
}

Wave1TransientStream::Wave1TransientStream(StreamEmitter& em, std::string id_json,
                                           std::vector<std::string> names)
    : em_(em),
      id_json_(std::move(id_json)),
      names_(std::move(names)),
      enc_(names_.size(), /*has_time=*/true),
      stats_(names_.size()) {
  json::Value::Array cols;
  cols.reserve(names_.size());
  for (const std::string& n : names_) cols.push_back(n);
  std::string header = "{\"id\":" + id_json_ + ",\"encoding\":\"wave1\",\"columns\":" +
                       json::Value(std::move(cols)).write() + ",\"has_time\":true}";
  em_.header(header);
}

std::function<void(double, const double*, std::size_t)> Wave1TransientStream::sink() {
  return [this](double t, const double* v, std::size_t n) {
    enc_.add_row(t, v, n);
    for (std::size_t i = 0; i < n; ++i) stats_[i].add(v[i]);
    ++rows_;
    if (enc_.full(em_.chunk_bytes())) em_.chunk(enc_.encode_block());
  };
}

void Wave1TransientStream::finish(const spice::TranResult& res) {
  if (!enc_.empty()) em_.chunk(enc_.encode_block());

  // Counters object: the exact leading members of core::to_json(TranResult),
  // with n_points taken from the streamed row count.
  json::Value::Object o;
  o.emplace_back("steps_taken", static_cast<std::uint64_t>(res.steps_taken));
  o.emplace_back("lu_factorizations", static_cast<std::uint64_t>(res.lu_factorizations));
  o.emplace_back("lu_cache_hits", static_cast<std::uint64_t>(res.lu_cache_hits));
  o.emplace_back("lu_cache_evictions",
                 static_cast<std::uint64_t>(res.lu_cache_evictions));
  o.emplace_back("max_resident_factorizations",
                 static_cast<std::uint64_t>(res.max_resident_factorizations));
  o.emplace_back("kernel", res.kernel);
  o.emplace_back("symbolic_analyses", static_cast<std::uint64_t>(res.symbolic_analyses));
  o.emplace_back("factor_nnz", static_cast<std::uint64_t>(res.factor_nnz));
  o.emplace_back("n_points", static_cast<std::uint64_t>(rows_));

  json::Value::Array layout;
  std::string seg = "{\"id\":" + id_json_ + ",\"ok\":true,\"result\":" +
                    open_object(json::Value(std::move(o))) + ",\"nodes\":[";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i) seg += "]},";
    const ColumnStats& st = stats_[i];
    json::Value::Object n;
    n.emplace_back("node", names_[i]);
    n.emplace_back("final_v", st.final_v());
    n.emplace_back("mean_v", st.mean_v());
    n.emplace_back("min_v", st.lo);
    n.emplace_back("max_v", st.hi);
    seg += open_object(json::Value(std::move(n))) + ",\"v\":[";
    layout.push_back(std::move(seg));
    layout.push_back(static_cast<double>(i));
    seg.clear();
  }
  seg += names_.empty() ? "],\"time_s\":[" : "]}],\"time_s\":[";
  layout.push_back(std::move(seg));
  layout.push_back(static_cast<double>(names_.size()));  // the time column
  layout.push_back(std::string("]}}"));

  std::string payload = "{\"id\":" + id_json_ + ",\"status\":\"ok\",\"rows\":" +
                        std::to_string(rows_) + ",\"chunks\":" +
                        std::to_string(em_.chunks_emitted()) + ",\"layout\":" +
                        json::Value(std::move(layout)).write() + "}";
  em_.end(payload);
}

Wave1ColumnStream::Wave1ColumnStream(StreamEmitter& em, std::string id_json,
                                     std::string column_name)
    : em_(em),
      id_json_(std::move(id_json)),
      column_name_(std::move(column_name)),
      enc_(1, /*has_time=*/false) {
  std::string header = "{\"id\":" + id_json_ + ",\"encoding\":\"wave1\",\"columns\":[" +
                       json::escape_string(column_name_) + "],\"has_time\":false}";
  em_.header(header);
}

void Wave1ColumnStream::push(double v) {
  enc_.add_row(0.0, &v, 1);
  ++rows_;
  if (enc_.full(em_.chunk_bytes())) em_.chunk(enc_.encode_block());
}

void Wave1ColumnStream::finish(const std::string& summary_object_json) {
  if (!enc_.empty()) em_.chunk(enc_.encode_block());
  require(!summary_object_json.empty() && summary_object_json.back() == '}',
          "wave1: summary must be a serialized JSON object");
  std::string prefix = summary_object_json;
  prefix.pop_back();

  json::Value::Array layout;
  layout.push_back("{\"id\":" + id_json_ + ",\"ok\":true,\"result\":" + prefix + ",\"" +
                   column_name_ + "\":[");
  layout.push_back(0.0);
  layout.push_back(std::string("]}}"));

  std::string payload = "{\"id\":" + id_json_ + ",\"status\":\"ok\",\"rows\":" +
                        std::to_string(rows_) + ",\"chunks\":" +
                        std::to_string(em_.chunks_emitted()) + ",\"layout\":" +
                        json::Value(std::move(layout)).write() + "}";
  em_.end(payload);
}

void StreamAssembler::on_frame(const Frame& f) {
  if (done_) throw StreamProtocolError("frame after the terminal frame");
  switch (f.type) {
    case FrameType::Header: {
      if (saw_header_) throw StreamProtocolError("duplicate HEADER frame");
      json::Value h;
      try {
        h = json::Value::parse(f.payload);
      } catch (const std::exception& e) {
        throw StreamProtocolError(std::string("malformed HEADER payload: ") + e.what());
      }
      const json::Value* enc = h.find("encoding");
      if (enc == nullptr || !enc->is_string())
        throw StreamProtocolError("HEADER missing \"encoding\"");
      encoding_ = enc->as_string();
      if (encoding_ == "wave1") {
        const json::Value* cols = h.find("columns");
        const json::Value* ht = h.find("has_time");
        if (cols == nullptr || !cols->is_array() || ht == nullptr || !ht->is_bool())
          throw StreamProtocolError("wave1 HEADER missing columns/has_time");
        n_cols_ = cols->as_array().size();
        has_time_ = ht->as_bool();
        dec_ = std::make_unique<Wave1Decoder>(n_cols_, has_time_);
      } else if (encoding_ != "json") {
        throw StreamProtocolError("HEADER names unknown encoding \"" + encoding_ + "\"");
      }
      saw_header_ = true;
      return;
    }
    case FrameType::Chunk: {
      if (!saw_header_) throw StreamProtocolError("CHUNK before HEADER");
      ++chunks_;
      if (dec_) {
        dec_->decode_block(f.payload);
      } else {
        text_.append(f.payload);
      }
      return;
    }
    case FrameType::End: {
      if (!saw_header_) throw StreamProtocolError("END before HEADER");
      json::Value e;
      try {
        e = json::Value::parse(f.payload);
      } catch (const std::exception& ex) {
        throw StreamProtocolError(std::string("malformed END payload: ") + ex.what());
      }
      const json::Value* st = e.find("status");
      if (st == nullptr || !st->is_string())
        throw StreamProtocolError("END missing \"status\"");
      status_ = st->as_string();
      if (status_ == "ok") {
        if (dec_) {
          render_layout(e);
        } else {
          decoded_ = std::move(text_);
        }
      } else {
        decoded_ = f.payload;
      }
      done_ = true;
      return;
    }
    case FrameType::Error: {
      status_ = "error";
      decoded_ = f.payload;
      done_ = true;
      return;
    }
    case FrameType::CancelAck: {
      status_ = "cancelled";
      decoded_ = f.payload;
      done_ = true;
      return;
    }
  }
  throw StreamProtocolError("unhandled frame type");
}

void StreamAssembler::render_layout(const json::Value& end_payload) {
  const json::Value* rows = end_payload.find("rows");
  if (rows == nullptr || !rows->is_number())
    throw StreamProtocolError("wave1 END missing \"rows\"");
  if (static_cast<std::size_t>(rows->as_number()) != dec_->rows())
    throw StreamProtocolError("wave1 END row count does not match decoded rows (" +
                              std::to_string(dec_->rows()) + " decoded)");
  const json::Value* layout = end_payload.find("layout");
  if (layout == nullptr || !layout->is_array())
    throw StreamProtocolError("wave1 END missing \"layout\"");

  decoded_.clear();
  for (const json::Value& piece : layout->as_array()) {
    if (piece.is_string()) {
      decoded_ += piece.as_string();
    } else if (piece.is_number()) {
      const double d = piece.as_number();
      const std::size_t idx = static_cast<std::size_t>(d);
      if (d < 0.0 || static_cast<double>(idx) != d)
        throw StreamProtocolError("wave1 layout column index is not an integer");
      if (idx < n_cols_) {
        append_column(decoded_, dec_->column(idx));
      } else if (idx == n_cols_ && has_time_) {
        append_column(decoded_, dec_->time());
      } else {
        throw StreamProtocolError("wave1 layout column index out of range");
      }
    } else {
      throw StreamProtocolError("wave1 layout piece is neither text nor column index");
    }
  }
}

StreamAssembler read_stream(const std::function<std::size_t(char*, std::size_t)>& read,
                            const std::function<void(const Frame&)>& on_frame) {
  FrameDecoder dec;
  StreamAssembler asmb;
  char buf[4096];
  while (!asmb.done()) {
    while (!asmb.done()) {
      std::optional<Frame> f = dec.next();
      if (!f) break;
      if (on_frame) on_frame(*f);
      asmb.on_frame(*f);
    }
    if (asmb.done()) break;
    const std::size_t n = read(buf, sizeof buf);
    if (n == 0) throw StreamProtocolError("connection closed mid-stream");
    dec.feed(std::string_view(buf, n));
  }
  return asmb;
}

}  // namespace ivory::serve
