// NDJSON-over-Unix-domain-socket transport.
//
// `Server` binds a stream socket, accepts any number of concurrent clients,
// and runs each connection's request lines through the shared Scheduler /
// Service / ResultCache. Per connection, responses come back in request
// order (the scheduler's delivery contract), so the protocol over a socket
// is exactly `ivory batch`'s stdin/stdout protocol — the same request file
// piped through either transport yields the same per-request bytes.
//
// Lifecycle: one accept thread plus one reader and one writer thread per
// live connection. The reader classifies each line (plain, streamed, or
// cancel), opens a DeliveryQueue slot in submission order, and submits to the
// scheduler; the writer drains the DeliveryQueue to the socket, so plain
// responses (from the dispatcher) and stream frames (from stream workers)
// interleave on the wire in exactly submission order. A write error marks
// the consumer gone: in-flight streams unwind via StreamEmitter::Abort and
// the rest of the queue drains to the floor. On client EOF the reader closes
// the queue, joins the writer, then closes. `stop()` shuts down accepting,
// drains, and joins everything.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"
#include "serve/service.hpp"

namespace ivory::serve {

struct ServerOptions {
  std::string socket_path;  ///< required; unlinked on bind and on stop
  ServiceOptions service;
  std::size_t queue_capacity = 1024;
  std::size_t wave = 0;
  std::size_t stream_slots = 2;   ///< dedicated stream-worker threads
  std::size_t stream_window = 8;  ///< max in-flight frames per stream slot
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + starts accepting. Throws InvalidParameter on socket
  /// errors (path too long, bind failure, ...).
  void start();

  /// Stops accepting, drains in-flight work, joins all threads. Idempotent.
  void stop();

  bool running() const { return running_.load(); }
  const std::string& socket_path() const { return opt_.socket_path; }
  ServiceStats stats() const { return service_.stats(); }

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);

  ServerOptions opt_;
  Service service_;
  std::unique_ptr<Scheduler> scheduler_;

  // Atomic: stop() shuts down and invalidates the fd while accept_loop()
  // is blocked in accept() on it.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;
};

/// Minimal blocking client for tests and tooling: connect, send request
/// lines, read response lines.
class BlockingClient {
 public:
  explicit BlockingClient(const std::string& socket_path);  ///< throws on failure
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  void send_line(const std::string& line);

  /// Blocks until a full '\n'-terminated line arrives; returns it without
  /// the newline. Throws on EOF/error.
  std::string recv_line();

  /// Raw byte read for streamed responses: drains any bytes recv_line() has
  /// buffered first, then reads from the socket. Returns the count copied
  /// into `out`, 0 on EOF. Throws on socket error.
  std::size_t recv_raw(char* out, std::size_t cap);

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace ivory::serve
