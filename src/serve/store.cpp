#include "serve/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <charconv>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/hash.hpp"
#include "common/metrics.hpp"

namespace ivory::serve {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMagic = "ivorycas1";
/// Stale tmp/quarantine files older than this are swept at startup. Young
/// ones are left alone: a sibling fleet worker may still be writing them.
constexpr double kStaleSweepSeconds = 60.0;

struct CasMetrics {
  metrics::Counter& hits = metrics::registry().counter("serve.store.hits");
  metrics::Counter& misses = metrics::registry().counter("serve.store.misses");
  metrics::Counter& puts = metrics::registry().counter("serve.store.puts");
  metrics::Counter& quarantined = metrics::registry().counter("serve.store.quarantined");
};

CasMetrics& cas_metrics() {
  static CasMetrics m;
  return m;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return s;
}

bool parse_hex16(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), *out, 16);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), *out, 10);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

/// True when a deterministic fault site fires, whatever its armed action.
/// The common harness throws (Throw) or yields NaN (EmitNan); the store maps
/// either onto the filesystem failure the site models.
bool fault_fires(const char* site) {
  if (!fault::any_armed()) return false;
  try {
    return std::isnan(fault::inject(site));
  } catch (const std::exception&) {
    return true;
  }
}

std::uint64_t entry_checksum(std::string_view key, std::string_view payload) {
  return fnv1a64(payload, fnv1a64(key));
}

std::string entry_header(std::uint64_t key_hash, std::string_view key,
                         std::string_view payload) {
  std::string h(kMagic);
  h += ' ';
  h += hex16(key_hash);
  h += ' ';
  h += std::to_string(key.size());
  h += ' ';
  h += std::to_string(payload.size());
  h += ' ';
  h += hex16(entry_checksum(key, payload));
  h += '\n';
  return h;
}

bool write_full(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_whole_file(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  while (true) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    out->append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return true;
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

DurableStore::DurableStore(StoreOptions opt) : opt_(std::move(opt)) {
  require(!opt_.dir.empty(), "store: cache directory path is required");
  std::error_code ec;
  fs::create_directories(opt_.dir, ec);
  if (ec || !fs::is_directory(opt_.dir))
    throw InvalidParameter("store: cannot create cache directory '" + opt_.dir +
                           "': " + ec.message());
  std::lock_guard<std::mutex> lock(mu_);
  scan_locked();
}

std::string DurableStore::entry_path(std::uint64_t key_hash) const {
  return opt_.dir + "/e" + hex16(key_hash) + ".cas";
}

void DurableStore::scan_locked() {
  struct Found {
    std::uint64_t mtime_ns;
    std::uint64_t hash;
    std::uint64_t size;
  };
  std::vector<Found> found;
  const auto now = fs::file_time_type::clock::now();
  std::error_code ec;
  for (const fs::directory_entry& de : fs::directory_iterator(opt_.dir, ec)) {
    if (!de.is_regular_file(ec)) continue;
    const std::string name = de.path().filename().string();
    const bool stale_kind =
        name.rfind("tmp-", 0) == 0 || (name.size() > 4 && name.ends_with(".bad"));
    if (stale_kind) {
      // Crash leftovers (half-written tmp files, old quarantines). Young
      // ones may belong to a live sibling worker — only sweep old ones.
      const auto age = std::chrono::duration<double>(now - de.last_write_time(ec));
      if (!ec && age.count() > kStaleSweepSeconds) fs::remove(de.path(), ec);
      continue;
    }
    std::uint64_t hash = 0;
    if (name.size() == 21 && name[0] == 'e' && name.ends_with(".cas") &&
        parse_hex16(std::string_view(name).substr(1, 16), &hash)) {
      const std::uint64_t mtime_ns = static_cast<std::uint64_t>(
          de.last_write_time(ec).time_since_epoch().count());
      found.push_back({mtime_ns, hash, de.file_size(ec)});
    }
  }
  // Seed LRU order from mtimes: oldest file gets the smallest touch stamp.
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime_ns < b.mtime_ns; });
  for (const Found& f : found) {
    index_[f.hash] = Entry{f.size, ++touch_seq_};
    bytes_ += f.size;
  }
}

std::optional<std::string> DurableStore::read_verified(std::uint64_t key_hash,
                                                       std::string_view expect_key,
                                                       bool any_key,
                                                       std::string* actual_key,
                                                       bool* collision) {
  if (collision != nullptr) *collision = false;
  const std::string path = entry_path(key_hash);
  std::string blob;
  if (!read_whole_file(path, &blob)) return std::nullopt;  // absent: plain miss

  // Header: "ivorycas1 <hash:16hex> <key_len> <payload_len> <cksum:16hex>\n".
  const std::size_t nl = blob.find('\n');
  std::uint64_t hash = 0, key_len = 0, payload_len = 0, cksum = 0;
  bool ok = nl != std::string::npos;
  if (ok) {
    std::string_view line(blob.data(), nl);
    std::vector<std::string_view> tok;
    for (std::size_t pos = 0; pos <= line.size();) {
      const std::size_t sp = std::min(line.find(' ', pos), line.size());
      tok.push_back(line.substr(pos, sp - pos));
      pos = sp + 1;
    }
    ok = tok.size() == 5 && tok[0] == kMagic && parse_hex16(tok[1], &hash) &&
         parse_u64(tok[2], &key_len) && parse_u64(tok[3], &payload_len) &&
         parse_hex16(tok[4], &cksum);
  }
  ok = ok && hash == key_hash && blob.size() == nl + 1 + key_len + payload_len;
  std::string_view key, payload;
  if (ok) {
    key = std::string_view(blob).substr(nl + 1, key_len);
    payload = std::string_view(blob).substr(nl + 1 + key_len, payload_len);
    ok = entry_checksum(key, payload) == cksum;
  }
  if (!ok) {
    quarantine_locked(key_hash, "corrupt entry");
    return std::nullopt;
  }
  if (!any_key && key != expect_key) {
    // Intact entry, different key: a 64-bit hash collision. The entry is a
    // legitimate answer for *its* key, so it stays; this probe is a miss.
    if (collision != nullptr) *collision = true;
    return std::nullopt;
  }
  if (actual_key != nullptr) actual_key->assign(key);
  return std::string(payload);
}

void DurableStore::quarantine_locked(std::uint64_t key_hash, const std::string& why) {
  const std::string path = entry_path(key_hash);
  const std::string quar =
      opt_.dir + "/quar-" + hex16(key_hash) + "-" + std::to_string(quarantined_) + ".bad";
  if (::rename(path.c_str(), quar.c_str()) != 0) ::unlink(path.c_str());
  const auto it = index_.find(key_hash);
  if (it != index_.end()) {
    bytes_ -= std::min(bytes_, it->second.size);
    index_.erase(it);
  }
  ++quarantined_;
  cas_metrics().quarantined.add();
  (void)why;
}

void DurableStore::gc_locked(std::uint64_t protect_hash) {
  while (bytes_ > opt_.max_bytes && index_.size() > 1) {
    auto victim = index_.end();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (it->first == protect_hash) continue;
      if (victim == index_.end() || it->second.touch < victim->second.touch) victim = it;
    }
    if (victim == index_.end()) break;
    ::unlink(entry_path(victim->first).c_str());  // ENOENT fine: sibling GC'd it
    bytes_ -= std::min(bytes_, victim->second.size);
    ++gc_evictions_;
    index_.erase(victim);
  }
}

std::optional<std::string> DurableStore::get(std::uint64_t key_hash,
                                             std::string_view canonical_key) {
  std::lock_guard<std::mutex> lock(mu_);
  bool collision = false;
  std::optional<std::string> payload =
      read_verified(key_hash, canonical_key, /*any_key=*/false, nullptr, &collision);
  if (!payload.has_value()) {
    ++misses_;
    cas_metrics().misses.add();
    return std::nullopt;
  }
  // Another process may have published this entry after our startup scan.
  auto [it, inserted] = index_.try_emplace(key_hash, Entry{});
  if (inserted) bytes_ += payload->size();  // approximate; refreshed on next put
  it->second.touch = ++touch_seq_;
  // Refresh the file mtime so recency survives a restart: the startup scan
  // seeds LRU order from mtimes, and warm-load replays oldest-first.
  ::utimensat(AT_FDCWD, entry_path(key_hash).c_str(), nullptr, 0);
  ++hits_;
  cas_metrics().hits.add();
  return payload;
}

bool DurableStore::put(std::uint64_t key_hash, std::string_view canonical_key,
                       std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);

  const std::string header = entry_header(key_hash, canonical_key, payload);
  std::string blob;
  blob.reserve(header.size() + canonical_key.size() + payload.size());
  blob += header;
  blob += canonical_key;
  blob += payload;

  // `cas.bitflip`: silent media corruption — the damage lands *after* the
  // checksum is sealed, so the write succeeds and the corruption only
  // surfaces (and is quarantined) on a verified read.
  if (fault_fires("cas.bitflip") && !payload.empty())
    blob[header.size() + canonical_key.size() + payload.size() / 2] ^= 0x01;

  const std::string tmp =
      opt_.dir + "/tmp-" + std::to_string(::getpid()) + "-" + std::to_string(tmp_seq_++);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    ++put_failures_;
    return false;
  }
  // `cas.enospc`: the filesystem rejects the write outright (disk full).
  if (fault_fires("cas.enospc")) {
    ::close(fd);
    ::unlink(tmp.c_str());
    ++put_failures_;
    return false;
  }
  // `cas.short_write`: crash mid-write — half the bytes land, then nothing.
  // The truncated tmp file is deliberately left behind (that is what a real
  // crash leaves); it is never addressable and startup sweeps it.
  if (fault_fires("cas.short_write")) {
    write_full(fd, blob.data(), blob.size() / 2);
    ::close(fd);
    ++put_failures_;
    return false;
  }
  if (!write_full(fd, blob.data(), blob.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    ++put_failures_;
    return false;
  }
  ::close(fd);

  std::uint64_t published_size = blob.size();
  // `cas.torn_rename`: the worst publish failure — a truncated file becomes
  // visible under the *final* name (models a crash that tears the data but
  // not the metadata). Readers must detect and quarantine it.
  if (fault_fires("cas.torn_rename")) {
    if (::truncate(tmp.c_str(), static_cast<off_t>(blob.size() * 2 / 3)) == 0)
      published_size = blob.size() * 2 / 3;
    ::rename(tmp.c_str(), entry_path(key_hash).c_str());
    auto [it, inserted] = index_.try_emplace(key_hash, Entry{});
    if (!inserted) bytes_ -= std::min(bytes_, it->second.size);
    it->second = Entry{published_size, ++touch_seq_};
    bytes_ += published_size;
    ++put_failures_;
    return false;
  }

  if (::rename(tmp.c_str(), entry_path(key_hash).c_str()) != 0) {
    ::unlink(tmp.c_str());
    ++put_failures_;
    return false;
  }
  fsync_dir(opt_.dir);

  auto [it, inserted] = index_.try_emplace(key_hash, Entry{});
  if (!inserted) bytes_ -= std::min(bytes_, it->second.size);
  it->second = Entry{published_size, ++touch_seq_};
  bytes_ += published_size;
  ++puts_;
  cas_metrics().puts.add();
  gc_locked(key_hash);
  return true;
}

std::size_t DurableStore::for_each(
    const std::function<void(std::uint64_t, const std::string&, const std::string&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // (touch, hash)
  order.reserve(index_.size());
  for (const auto& [hash, e] : index_) order.emplace_back(e.touch, hash);
  std::sort(order.begin(), order.end());
  std::size_t delivered = 0;
  for (const auto& [touch, hash] : order) {
    std::string key;
    std::optional<std::string> payload =
        read_verified(hash, {}, /*any_key=*/true, &key, nullptr);
    if (!payload.has_value()) continue;  // corrupt: quarantined in-place
    fn(hash, key, *payload);
    ++delivered;
  }
  return delivered;
}

StoreStats DurableStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.puts = puts_;
  s.put_failures = put_failures_;
  s.quarantined = quarantined_;
  s.gc_evictions = gc_evictions_;
  s.entries = index_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace ivory::serve
