// NDJSON batch transport: requests on an input stream, responses on an
// output stream, strictly order-preserving.
//
// `repeat` replays the request stream N times through the same service (and
// therefore the same result cache): pass 2 of an identical stream is served
// almost entirely from the cache, which is how `ivory batch --repeat 2`
// demonstrates the warm-path speedup — the per-pass summaries report the
// hit/miss/eviction/evaluation deltas, and the response bytes of every pass
// are identical by the service's byte-identity contract.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"
#include "serve/service.hpp"

namespace ivory::serve {

struct BatchOptions {
  int repeat = 1;                   ///< replay the request stream N times
  std::size_t wave = 0;             ///< scheduler wave size (0 = auto)
  std::size_t queue_capacity = 1024;
  std::size_t stream_slots = 2;   ///< dedicated stream-worker threads
  std::size_t stream_window = 8;  ///< max in-flight frames per stream slot
};

/// Counter deltas for one replay pass.
struct BatchPassStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t errors = 0;
  std::uint64_t store_hits = 0;  ///< in-memory misses answered by the durable tier

  /// Memory + durable tiers combined: a durable-store hit counted as a miss
  /// by the in-memory LRU still avoided an evaluation.
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits + store_hits) / static_cast<double>(total);
  }
};

struct BatchSummary {
  std::vector<BatchPassStats> passes;
  std::uint64_t requests = 0;  ///< total across all passes
  double wall_s = 0.0;
};

/// Runs every non-empty line of `in` through `service` via a Scheduler,
/// writing one response line per request to `out` in submission order.
BatchSummary run_batch(std::istream& in, std::ostream& out, Service& service,
                       const BatchOptions& opt = {});

/// One-line JSON rendering of the summary (for stderr / BENCH files).
std::string summary_json(const BatchSummary& summary);

}  // namespace ivory::serve
