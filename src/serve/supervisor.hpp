// Supervised multi-process serve fleet.
//
// `ivory serve --workers N` runs one Supervisor in the parent process and N
// worker processes, each a plain `ivory serve --worker 1` on its own Unix
// socket (`<path>.w<i>`). The supervisor owns the public socket and a tiny
// byte-level mux: every accepted client connection is pinned round-robin to
// a healthy worker and proxied full-duplex, so the NDJSON protocol (and the
// per-connection response ordering contract) is exactly the single-process
// server's. Workers share nothing in memory but may share one DurableStore
// directory — that is what makes a worker restart cheap and a fleet restart
// warm.
//
// Fault containment:
//   - A crashed worker (kill -9, OOM, abort) costs only the connections
//     pinned to it. The proxy counts request/response newlines; when the
//     worker side dies with requests still unanswered, each missing
//     response is synthesized as a structured, *retryable* error line
//     ({"ok":false,"error":{"code":"worker_unavailable","retryable":true,..}})
//     so clients never hang on a dead worker.
//   - The monitor thread reaps dead workers and restarts them with
//     exponential backoff (base doubles per consecutive failure, capped).
//     A worker that keeps dying trips the flap limit and is parked as
//     Failed instead of burning CPU in a crash loop; the rest of the fleet
//     keeps serving.
//   - Liveness is checked two ways: waitpid (process death) and a periodic
//     stats ping over the worker's socket (hung-but-alive detection; two
//     consecutive ping timeouts get the worker killed and restarted).
//
// Graceful drain: stop() (the CLI calls it on SIGTERM/SIGINT) stops
// accepting, SIGTERMs the workers — each finishes its in-flight requests
// and exits via its own Server::stop() — and SIGKILLs any straggler after
// a bounded drain deadline. In-flight client connections then see either
// their final responses or synthesized retryable errors, never a hang.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ivory::serve {

struct SupervisorOptions {
  std::string socket_path;  ///< public socket; workers get <path>.w<i>
  int workers = 2;
  /// Binary to exec for workers; empty resolves /proc/self/exe (correct
  /// when the supervisor runs inside the ivory CLI).
  std::string exe;
  /// Extra flags appended to each worker's `serve` command line
  /// (--cache-dir, --threads, --cache, ...). Pairs of flag and value.
  std::vector<std::string> worker_args;

  int spawn_wait_ms = 8000;       ///< worker socket must accept within this
  int health_interval_ms = 250;   ///< monitor loop period
  int ping_timeout_ms = 10000;    ///< stats-ping send/recv timeout
  int ping_failures_to_kill = 2;  ///< consecutive timeouts before SIGKILL
  int backoff_initial_ms = 100;   ///< restart delay after the first crash
  int backoff_max_ms = 5000;      ///< backoff ceiling
  int flap_limit = 5;             ///< consecutive crashes before parking
  int flap_reset_ms = 10000;      ///< uptime that clears the crash streak
  int drain_deadline_ms = 5000;   ///< stop(): SIGTERM -> SIGKILL budget
};

struct WorkerStatus {
  int index = 0;
  pid_t pid = -1;               ///< -1 when not running
  std::string state;            ///< starting|healthy|backoff|failed|stopped
  std::string socket;
  std::uint64_t restarts = 0;   ///< successful respawns
  std::uint64_t crashes = 0;    ///< deaths observed (incl. ping kills)
};

struct FleetStats {
  std::vector<WorkerStatus> workers;
  std::uint64_t connections = 0;       ///< client connections accepted
  std::uint64_t retry_errors = 0;      ///< synthesized retryable error lines
  std::uint64_t rejected = 0;          ///< connections refused (no healthy worker)
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions opt);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns the workers (waiting for each socket to accept), binds the
  /// public socket, starts the acceptor and monitor threads. Throws
  /// InvalidParameter when the fleet cannot come up.
  void start();

  /// Graceful drain; see the header comment. Idempotent.
  void stop();

  bool running() const { return running_.load(); }
  const std::string& socket_path() const { return opt_.socket_path; }
  FleetStats stats() const;

  /// The one-line JSON a client receives for a request lost to a worker
  /// crash (exposed for tests and the crash-recovery smoke).
  static std::string retryable_error_line();

 private:
  struct Worker;
  struct Proxy;

  void accept_loop();
  void monitor_loop();
  void spawn_locked(Worker& w);                  ///< fork+exec; sets pid/state
  bool wait_ready(Worker& w);                    ///< poll-connect until accept
  void note_death_locked(Worker& w, const std::chrono::steady_clock::time_point& now);
  int pick_and_connect();                        ///< worker fd, or -1
  void prune_proxies_locked();
  bool ping(const std::string& socket) const;    ///< stats round-trip

  SupervisorOptions opt_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Atomic: stop() shuts down and invalidates the fd while accept_loop()
  // is blocked in accept() on it.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::thread monitor_thread_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::shared_ptr<Proxy>> proxies_;
  int rr_cursor_ = 0;
  std::uint64_t connections_ = 0;
  std::uint64_t rejected_ = 0;
  std::atomic<std::uint64_t> retry_errors_{0};
};

}  // namespace ivory::serve
