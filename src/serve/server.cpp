#include "serve/server.hpp"

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace ivory::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw InvalidParameter("serve: " + what + ": " + std::strerror(errno));
}

/// Socket write that can never raise SIGPIPE: a client that disconnects
/// mid-response must cost exactly its own connection, not the process.
/// MSG_NOSIGNAL turns the signal into an EPIPE return. Returns false when
/// the peer is gone (EPIPE, ECONNRESET, ...), so the caller can mark the
/// consumer dead and stop producing for it.
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // client went away; drop its remaining responses
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

/// Shared between the reader thread, the writer thread, and the scheduler's
/// producers (dispatcher sink sets plain slots, stream workers push frames).
struct Server::Connection {
  int fd = -1;
  int client = -1;  ///< scheduler client id
  std::mutex mu;    ///< guards fd teardown vs stop()'s SHUT_RD
  std::atomic<bool> alive{true};  ///< false after a write error
  std::unique_ptr<DeliveryQueue> delivery;
};

Server::Server(ServerOptions opt) : opt_(std::move(opt)), service_(opt_.service) {}

Server::~Server() { stop(); }

void Server::start() {
  require(!opt_.socket_path.empty(), "serve: socket_path is required");
  // Belt to MSG_NOSIGNAL's suspenders: any stray write to a dead peer (e.g.
  // through a library that bypasses write_all) must not kill the server.
  ::signal(SIGPIPE, SIG_IGN);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(opt_.socket_path.size() < sizeof(addr.sun_path),
          "serve: socket path longer than sockaddr_un allows: " + opt_.socket_path);
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  ::unlink(opt_.socket_path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    sys_fail("bind " + opt_.socket_path);
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    sys_fail("listen");
  }

  Scheduler::Options sopt;
  sopt.queue_capacity = opt_.queue_capacity;
  sopt.wave = opt_.wave;
  sopt.stream_slots = opt_.stream_slots;
  scheduler_ = std::make_unique<Scheduler>(service_, sopt);

  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Closing the listen socket makes accept() fail and the accept loop exit.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock readers stuck on read(): shut down every live connection's
  // receive side; readers then close their delivery queues, join their
  // writers (which drain every already-submitted response), and exit.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& c : conns_) {
      std::lock_guard<std::mutex> conn_lock(c->mu);
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
    }
  }
  for (std::thread& t : reader_threads_)
    if (t.joinable()) t.join();
  reader_threads_.clear();

  scheduler_.reset();  // drains nothing further; all jobs were delivered
  ::unlink(opt_.socket_path.c_str());
}

void Server::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by stop()
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->client = scheduler_->open_client();
    conn->delivery = std::make_unique<DeliveryQueue>(opt_.stream_window);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  // Writer: the single consumer of this connection's DeliveryQueue. A write
  // error marks the consumer gone, which unwinds in-flight stream producers;
  // the loop keeps draining so every producer finishes.
  std::thread writer([conn] {
    std::string bytes;
    while (conn->delivery->next(bytes)) {
      if (!conn->alive.load(std::memory_order_relaxed)) continue;
      if (!write_all(conn->fd, bytes.data(), bytes.size())) {
        conn->alive.store(false, std::memory_order_relaxed);
        conn->delivery->shutdown();
      }
    }
  });

  std::string buf;
  char chunk[4096];
  while (true) {
    const ssize_t r = ::read(conn->fd, chunk, sizeof chunk);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;  // EOF or error: stop reading, flush what we have
    buf.append(chunk, static_cast<std::size_t>(r));
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const TransportDirective d = classify_line(line);
      if (d.is_cancel) {
        // Answered inline (in submission order via its own plain slot): a
        // cancel directive must not wait behind the queue it is pruning.
        const bool hit = scheduler_->cancel(conn->client, d.cancel_id);
        std::string resp = "{\"id\":";
        resp += d.id.write();
        resp += ",\"ok\":true,\"result\":{\"cancelled\":";
        resp += hit ? "true" : "false";
        resp += "}}\n";
        conn->delivery->open_plain()->set(std::move(resp));
        continue;
      }
      if (d.is_stream) {
        scheduler_->submit_stream(conn->client, std::move(line),
                                  conn->delivery->open_stream());
        continue;
      }
      std::shared_ptr<DeliveryQueue::Plain> slot = conn->delivery->open_plain();
      scheduler_->submit(conn->client, std::move(line),
                         [slot](const std::string& response) {
                           slot->set(response + "\n");
                         });
    }
    buf.erase(0, start);
  }
  // Every already-submitted job still delivers; the writer drains them all
  // (or drops them past a write error) before the queue reports empty.
  conn->delivery->close_submit();
  writer.join();
  scheduler_->close_client(conn->client);
  std::lock_guard<std::mutex> lock(conn->mu);
  ::close(conn->fd);
  conn->fd = -1;
}

// ---------------------------------------------------------------------------
// BlockingClient
// ---------------------------------------------------------------------------

BlockingClient::BlockingClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(socket_path.size() < sizeof(addr.sun_path),
          "serve: socket path longer than sockaddr_un allows: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) sys_fail("socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    sys_fail("connect " + socket_path);
  }
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockingClient::send_line(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  write_all(fd_, out.data(), out.size());
}

std::string BlockingClient::recv_line() {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t r = ::read(fd_, chunk, sizeof chunk);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) throw NumericalError("serve: connection closed while awaiting response");
    buf_.append(chunk, static_cast<std::size_t>(r));
  }
}

std::size_t BlockingClient::recv_raw(char* out, std::size_t cap) {
  if (!buf_.empty()) {
    const std::size_t n = std::min(cap, buf_.size());
    std::memcpy(out, buf_.data(), n);
    buf_.erase(0, n);
    return n;
  }
  while (true) {
    const ssize_t r = ::read(fd_, out, cap);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0) throw NumericalError("serve: socket read failed while streaming");
    return static_cast<std::size_t>(r);
  }
}

}  // namespace ivory::serve
