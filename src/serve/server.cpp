#include "serve/server.hpp"

#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ivory::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw InvalidParameter("serve: " + what + ": " + std::strerror(errno));
}

/// Socket write that can never raise SIGPIPE: a client that disconnects
/// mid-response must cost exactly its own connection, not the process.
/// MSG_NOSIGNAL turns the signal into an EPIPE return, which — like any
/// other send error here — drops the remaining bytes for that connection.
void write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // client went away (EPIPE, ECONNRESET, ...); drop its responses
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

/// Shared between the reader thread and the scheduler's delivery sink.
struct Server::Connection {
  int fd = -1;
  int client = -1;  ///< scheduler client id
  std::mutex mu;
  std::condition_variable cv;
  std::size_t in_flight = 0;  ///< submitted, response not yet written
  std::atomic<bool> closing{false};

  void job_done() {
    std::lock_guard<std::mutex> lock(mu);
    --in_flight;
    cv.notify_all();
  }
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_flight == 0; });
  }
};

Server::Server(ServerOptions opt) : opt_(std::move(opt)), service_(opt_.service) {}

Server::~Server() { stop(); }

void Server::start() {
  require(!opt_.socket_path.empty(), "serve: socket_path is required");
  // Belt to MSG_NOSIGNAL's suspenders: any stray write to a dead peer (e.g.
  // through a library that bypasses write_all) must not kill the server.
  ::signal(SIGPIPE, SIG_IGN);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(opt_.socket_path.size() < sizeof(addr.sun_path),
          "serve: socket path longer than sockaddr_un allows: " + opt_.socket_path);
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(), sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  ::unlink(opt_.socket_path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    sys_fail("bind " + opt_.socket_path);
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    sys_fail("listen");
  }

  Scheduler::Options sopt;
  sopt.queue_capacity = opt_.queue_capacity;
  sopt.wave = opt_.wave;
  scheduler_ = std::make_unique<Scheduler>(service_, sopt);

  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  // Closing the listen socket makes accept() fail and the accept loop exit.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();

  // Unblock readers stuck on read(): shut down every live connection's
  // receive side; readers then drain their in-flight jobs and exit.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& c : conns_) {
      c->closing.store(true);
      std::lock_guard<std::mutex> conn_lock(c->mu);
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
    }
  }
  for (std::thread& t : reader_threads_)
    if (t.joinable()) t.join();
  reader_threads_.clear();

  scheduler_.reset();  // drains nothing further; all jobs were delivered
  ::unlink(opt_.socket_path.c_str());
}

void Server::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by stop()
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->client = scheduler_->open_client();
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buf;
  char chunk[4096];
  while (true) {
    const ssize_t r = ::read(conn->fd, chunk, sizeof chunk);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;  // EOF or error: stop reading, flush what we have
    buf.append(chunk, static_cast<std::size_t>(r));
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        ++conn->in_flight;
      }
      std::shared_ptr<Connection> c = conn;
      scheduler_->submit(conn->client, std::move(line), [c](const std::string& response) {
        if (!c->closing.load()) {
          std::string out = response;
          out.push_back('\n');
          write_all(c->fd, out.data(), out.size());
        }
        c->job_done();
      });
    }
    buf.erase(0, start);
  }
  // Let every already-submitted job deliver its response before closing.
  conn->wait_idle();
  scheduler_->close_client(conn->client);
  std::lock_guard<std::mutex> lock(conn->mu);
  ::close(conn->fd);
  conn->fd = -1;
}

// ---------------------------------------------------------------------------
// BlockingClient
// ---------------------------------------------------------------------------

BlockingClient::BlockingClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(socket_path.size() < sizeof(addr.sun_path),
          "serve: socket path longer than sockaddr_un allows: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) sys_fail("socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    sys_fail("connect " + socket_path);
  }
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockingClient::send_line(const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  write_all(fd_, out.data(), out.size());
}

std::string BlockingClient::recv_line() {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t r = ::read(fd_, chunk, sizeof chunk);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) throw NumericalError("serve: connection closed while awaiting response");
    buf_.append(chunk, static_cast<std::size_t>(r));
  }
}

}  // namespace ivory::serve
