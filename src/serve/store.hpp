// Disk-backed content-addressed result store (the durable tier under the
// in-memory sharded LRU).
//
// One entry per canonical request: the file `e<fnv1a64:16hex>.cas` holds a
// fixed header line, the full canonical key, and the serialized response
// payload. The header carries both byte lengths and an fnv1a64 checksum over
// key+payload, so *every* read is fully verified:
//
//   - header malformed / lengths disagree with the file  -> corrupt
//   - checksum mismatch (bit flip, torn write)           -> corrupt
//   - checksum good but key differs from the probe's key -> hash collision
//
// A corrupt entry is quarantined (renamed to `quar-*.bad`, never addressable
// again) and counted — a durable-store defect is always a miss plus a
// re-evaluation, never a wrong answer. A collision is a plain miss: the
// store keeps whichever key wrote last, exactly like the in-memory cache's
// full-key compare.
//
// Crash safety: writes go to `tmp-<pid>-<seq>.tmp`, are fsync'd, then
// renamed over the final name, then the directory is fsync'd. A crash at
// any point leaves either the old entry, the new entry, or a tmp file that
// the next startup sweeps away — never a half-written addressable entry.
// Multiple processes (the serve fleet) share one directory safely: tmp
// names are pid-unique, rename is atomic, and concurrent GC unlinks
// tolerate ENOENT.
//
// GC: `max_bytes` caps the sum of entry sizes. Inserting past the cap
// evicts least-recently-used entries first (access order is tracked in
// memory and seeded from file mtimes at startup).
//
// Fault injection (deterministic, via common/fault): sites
// `cas.short_write` (tmp file truncated mid-write, put fails),
// `cas.enospc` (write rejected as if the disk were full, put fails),
// `cas.torn_rename` (a truncated file becomes visible under the final
// name — the worst-case torn publish a read must catch), and
// `cas.bitflip` (payload corrupted in flight, caught by the read-side
// checksum). Tests arm them through fault::arm_on_hit/arm_probability.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ivory::serve {

struct StoreOptions {
  std::string dir;                              ///< required; created if absent
  std::uint64_t max_bytes = 256ull << 20;       ///< entry-byte budget before GC
};

struct StoreStats {
  std::uint64_t hits = 0;          ///< verified reads served
  std::uint64_t misses = 0;        ///< absent entries (incl. collisions)
  std::uint64_t puts = 0;          ///< entries durably published
  std::uint64_t put_failures = 0;  ///< failed publishes (fs errors, faults)
  std::uint64_t quarantined = 0;   ///< corrupt entries detected and removed
  std::uint64_t gc_evictions = 0;  ///< entries evicted by the size cap
  std::uint64_t entries = 0;       ///< addressable entries right now
  std::uint64_t bytes = 0;         ///< their total size on disk
};

/// Thread-safe; a single instance may also share its directory with other
/// processes holding their own instances (the fleet case).
class DurableStore {
 public:
  /// Opens (creating if needed) the store directory, sweeps stale tmp
  /// files, and indexes the existing entries. Throws InvalidParameter when
  /// the directory cannot be created or opened.
  explicit DurableStore(StoreOptions opt);

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// Verified read. Returns the payload only when the entry's checksum is
  /// intact *and* its stored key equals `canonical_key` byte-for-byte.
  /// Corruption quarantines the entry and reports a miss.
  std::optional<std::string> get(std::uint64_t key_hash, std::string_view canonical_key);

  /// Crash-safe publish (write-temp, fsync, rename, fsync dir). Returns
  /// false when the entry could not be durably published; the store is
  /// left readable either way.
  bool put(std::uint64_t key_hash, std::string_view canonical_key,
           std::string_view payload);

  /// Verified iteration over every entry, oldest-first (warm-load order:
  /// the most recently used entry is visited last, so feeding an LRU in
  /// this order preserves recency). Corrupt entries are quarantined and
  /// skipped. Returns the number of entries delivered.
  std::size_t for_each(
      const std::function<void(std::uint64_t key_hash, const std::string& key,
                               const std::string& payload)>& fn);

  StoreStats stats() const;
  const std::string& dir() const { return opt_.dir; }

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::uint64_t touch = 0;  ///< LRU stamp (monotonic, seeded from mtime order)
  };

  std::string entry_path(std::uint64_t key_hash) const;
  /// Reads + verifies one entry file. Returns nullopt (after quarantining)
  /// when corrupt; sets `collision` instead when the entry is intact but
  /// keyed differently. Caller holds mu_.
  std::optional<std::string> read_verified(std::uint64_t key_hash,
                                           std::string_view expect_key, bool any_key,
                                           std::string* actual_key, bool* collision);
  void quarantine_locked(std::uint64_t key_hash, const std::string& why);
  void gc_locked(std::uint64_t protect_hash);
  void scan_locked();

  StoreOptions opt_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> index_;
  std::uint64_t bytes_ = 0;
  std::uint64_t touch_seq_ = 0;
  std::uint64_t tmp_seq_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, puts_ = 0, put_failures_ = 0;
  std::uint64_t quarantined_ = 0, gc_evictions_ = 0;
};

}  // namespace ivory::serve
