// Sparse and banded MNA factorization kernels.
//
// Stamped MNA matrices for PDN ladders and on-chip power grids are
// overwhelmingly sparse (a handful of nonzeros per row) and, after a
// bandwidth-reducing permutation, near-banded. Dense LU (O(n^3) factor,
// O(n^2) solve) makes a 100x100 on-chip grid (~10k unknowns) intractable;
// the kernels here bring that to interactive speed while staying
// byte-deterministic, allocation-free on the solve path, and behind the same
// `solve_into` interface the transient integrator already uses.
//
// Pieces:
//
//  - SparseStamp: triplet accumulator filled directly by the MNA stamp
//    helpers — no dense intermediate is ever built.
//  - CscMatrix: compressed-sparse-column form with duplicates summed in
//    insertion order (so a dense matrix assembled from it is bit-identical
//    to one stamped directly — the dense kernel reproduces the legacy path
//    byte for byte).
//  - analyze(): one-time structural analysis per sparsity pattern — kernel
//    selection (density/bandwidth heuristic with an explicit override),
//    reverse-Cuthill-McKee ordering for the banded kernel, minimum-degree
//    ordering for the general sparse kernel. The returned Symbolic is
//    immutable and shared (shared_ptr) across every numeric factorization
//    with the same pattern, so a switch-state change refactorizes
//    numerically without re-running symbolic analysis.
//  - BandedLu: LAPACK-style band-storage LU with partial pivoting
//    (dgbtf2/dgbtrs shape). Inner elimination and substitution loops run
//    over contiguous band columns — stride-1, SIMD-amenable.
//  - SparseLu: left-looking Gilbert-Peierls LU with partial pivoting and
//    diagonal preference, over a fill-reducing column order.
//  - MnaFactorization: the kernel-dispatching factorization the transient
//    LU cache stores; `solve_into` matches LuFactorization's contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/matrix.hpp"

namespace ivory::sparse {

enum class Kernel { Auto, Dense, Banded, Sparse };

/// Lower-case kernel name ("auto", "dense", "banded", "sparse").
const char* kernel_name(Kernel k);

/// Triplet (COO) accumulator for MNA stamping. `add` appends; duplicates are
/// summed at compression time in insertion order, matching the accumulation
/// order of stamping straight into a dense matrix.
class SparseStamp {
 public:
  explicit SparseStamp(std::size_t n) : n_(n) {}

  std::size_t n() const { return n_; }
  std::size_t triplet_count() const { return row_.size(); }

  void add(std::size_t r, std::size_t c, double v) {
    row_.push_back(static_cast<std::int32_t>(r));
    col_.push_back(static_cast<std::int32_t>(c));
    val_.push_back(v);
  }

  /// Clears the triplets (capacity retained) for re-stamping.
  void reset() {
    row_.clear();
    col_.clear();
    val_.clear();
  }

  const std::vector<std::int32_t>& rows() const { return row_; }
  const std::vector<std::int32_t>& cols() const { return col_; }
  const std::vector<double>& vals() const { return val_; }

 private:
  std::size_t n_;
  std::vector<std::int32_t> row_, col_;
  std::vector<double> val_;
};

/// Compressed sparse column matrix. Row indices are sorted within each
/// column; duplicate stamps have been summed in insertion order.
struct CscMatrix {
  std::size_t n = 0;
  std::vector<std::int32_t> col_ptr;  ///< n + 1 entries.
  std::vector<std::int32_t> row_ind;  ///< nnz entries.
  std::vector<double> val;            ///< nnz entries.

  std::size_t nnz() const { return row_ind.size(); }

  /// FNV-1a over (n, col_ptr, row_ind): identifies the sparsity pattern, not
  /// the values — the key for sharing Symbolic analyses.
  std::uint64_t pattern_hash() const;
};

/// Compresses `s` into `out`, reusing `out`'s storage.
void compress(const SparseStamp& s, CscMatrix& out);

/// Immutable structural analysis of one sparsity pattern: the selected
/// kernel plus the orderings it needs. Shared across all numeric
/// factorizations with the same pattern (the symbolic/numeric split).
struct Symbolic {
  Kernel kernel = Kernel::Dense;
  std::size_t n = 0;
  std::size_t nnz = 0;
  std::uint64_t pattern_hash = 0;

  /// Banded kernel: symmetric permutation (perm[new] = old) and half
  /// bandwidths of the permuted matrix.
  std::vector<std::int32_t> perm;
  int kl = 0, ku = 0;

  /// Sparse kernel: fill-reducing column order (colperm[k] = original
  /// column eliminated at step k).
  std::vector<std::int32_t> colperm;

  /// RCM bandwidth observed during selection (0 when the dense shortcut
  /// skipped the ordering work).
  int rcm_bandwidth = 0;
};

/// One-time structural analysis. `request` = Kernel::Auto applies the
/// density/bandwidth heuristic; any other value forces that kernel.
///
/// Heuristic: dense for small or dense systems (n <= 48 or density >= 25%,
/// where dense LU's constant factors win and the legacy byte-exact path is
/// preserved); banded when the RCM bandwidth b satisfies b <= max(8, n/8)
/// (covers PDN ladders and regular grids); general sparse otherwise.
std::shared_ptr<const Symbolic> analyze(const CscMatrix& a, Kernel request);

/// Band-storage LU with partial pivoting on the symmetrically permuted
/// matrix A(p,p). Storage is the LAPACK band layout: ldab = 2*kl + ku + 1
/// rows per column, diagonal at row kl + ku, with kl extra superdiagonals
/// absorbing pivoting fill.
class BandedLu {
 public:
  BandedLu(const CscMatrix& a, const std::vector<std::int32_t>& perm, int kl, int ku);

  /// Allocation-free after first use; `b` and `x` must not alias.
  void solve_into(const std::vector<double>& b, std::vector<double>& x) const;

  /// Occupied band-storage entries (the banded analogue of nnz(L+U)).
  std::size_t factor_nnz() const { return static_cast<std::size_t>(ldab_) * n_; }

 private:
  std::size_t n_ = 0;
  int kl_ = 0, ku_ = 0, kv_ = 0, ldab_ = 0;
  std::vector<double> ab_;             ///< Column-major band storage.
  std::vector<std::int32_t> piv_;      ///< Row pivot at each elimination step.
  std::vector<std::int32_t> perm_;     ///< perm[new] = old.
  mutable std::vector<double> pb_;     ///< Permuted-RHS scratch.
};

/// Left-looking Gilbert-Peierls sparse LU with partial pivoting (diagonal
/// preference with a relative threshold, so structurally dominant diagonals
/// keep their pivot and the row permutation stays stable across same-pattern
/// refactorizations).
class SparseLu {
 public:
  SparseLu(const CscMatrix& a, const std::vector<std::int32_t>& colperm);

  void solve_into(const std::vector<double>& b, std::vector<double>& x) const;

  /// nnz(L) + nnz(U) + n diagonal entries: the fill-in the ordering bought.
  std::size_t factor_nnz() const { return li_.size() + ui_.size() + n_; }

 private:
  std::size_t n_ = 0;
  // L (strictly lower, unit diagonal) and U (strictly upper) in CSC over
  // pivotal indices; d_ is the diagonal of U.
  std::vector<std::int32_t> lp_, li_;
  std::vector<double> lx_;
  std::vector<std::int32_t> up_, ui_;
  std::vector<double> ux_;
  std::vector<double> d_;
  std::vector<std::int32_t> pinv_;     ///< original row -> pivotal position.
  std::vector<std::int32_t> q_;        ///< colperm[k] = original column.
  mutable std::vector<double> y_;      ///< Solve scratch.
};

/// Kernel-dispatching factorization: dense LuFactorization, BandedLu, or
/// SparseLu per the shared Symbolic. This is what the transient keyed LU
/// cache stores; `solve_into` has the same contract as LuFactorization's.
class MnaFactorization {
 public:
  MnaFactorization(const CscMatrix& a, std::shared_ptr<const Symbolic> sym);

  void solve_into(const std::vector<double>& b, std::vector<double>& x) const;

  std::vector<double> solve(const std::vector<double>& b) const {
    std::vector<double> x;
    solve_into(b, x);
    return x;
  }

  Kernel kernel() const { return sym_->kernel; }
  const Symbolic& symbolic() const { return *sym_; }
  std::size_t factor_nnz() const;

 private:
  std::shared_ptr<const Symbolic> sym_;
  std::optional<LuFactorization<double>> dense_;
  std::optional<BandedLu> banded_;
  std::optional<SparseLu> sparse_;
};

}  // namespace ivory::sparse
