// Radix-2 FFT for spectrum analysis.
//
// Used to reproduce Fig. 6 of the paper (regulation effect of an SC converter
// vs. a bare decoupling capacitor, compared in the frequency domain) and by
// tests that check the noise transfer functions of the dynamic models.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ivory {

/// In-place iterative radix-2 Cooley-Tukey FFT. `data.size()` must be a power
/// of two. `inverse` computes the unscaled inverse transform (caller divides
/// by N).
///
/// Per-stage twiddle factors are served from a size-indexed table memoized on
/// the first transform of each size (the same `w *= wlen` recurrence as the
/// inline computation, so results are bit-identical), instead of being
/// recomputed from scratch on every call. Safe for concurrent callers.
void fft_radix2(std::vector<std::complex<double>>& data, bool inverse = false);

/// Enables/disables the memoized twiddle tables (default: enabled). Returns
/// the previous setting. Exists so the micro-benchmarks can measure the
/// cached-vs-uncached delta; production code should leave the cache on.
bool fft_use_twiddle_cache(bool enabled);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (length = padded size).
std::vector<std::complex<double>> fft_real(const std::vector<double>& signal);

/// Single-sided amplitude spectrum of a real signal sampled at `fs` Hz.
/// Returns (frequency, amplitude) pairs for bins 0 .. N/2. Amplitudes are
/// scaled so that a pure tone of amplitude A shows A at its bin.
struct SpectrumPoint {
  double frequency_hz;
  double amplitude;
};
std::vector<SpectrumPoint> amplitude_spectrum(const std::vector<double>& signal, double fs);

/// Amplitude of the spectrum bin closest to `f0` (helper for tone tracking in
/// tests and the Fig. 6 bench).
double spectrum_amplitude_at(const std::vector<SpectrumPoint>& spectrum, double f0);

}  // namespace ivory
