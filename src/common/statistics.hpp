// Descriptive statistics over sampled waveforms.
//
// The GPU case study (Section 5 of the paper) summarizes supply-voltage noise
// as box plots per benchmark and VR configuration (Fig. 10) and as min/max
// noise ranges per waveform (Fig. 11). These helpers compute exactly those
// summaries.
#pragma once

#include <cstddef>
#include <vector>

namespace ivory {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  ///< Population variance.
double stddev(const std::vector<double>& xs);
double min_value(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1].
double quantile(std::vector<double> xs, double q);

/// Box-plot summary (Tukey): quartiles plus whiskers at the most extreme data
/// points within 1.5*IQR of the box.
struct BoxStats {
  double minimum;
  double whisker_low;
  double q1;
  double median;
  double q3;
  double whisker_high;
  double maximum;
  std::size_t n;
};
BoxStats box_stats(const std::vector<double>& xs);

/// Peak-to-peak range (max - min); the paper's "voltage noise range".
double peak_to_peak(const std::vector<double>& xs);

/// Root-mean-square of the deviation from the mean.
double rms_deviation(const std::vector<double>& xs);

}  // namespace ivory
