#include "common/json.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

namespace ivory::json {

namespace {

const char* kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::Null: return "null";
    case Value::Kind::Bool: return "bool";
    case Value::Kind::Number: return "number";
    case Value::Kind::String: return "string";
    case Value::Kind::Array: return "array";
    case Value::Kind::Object: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(Value::Kind want, Value::Kind got) {
  throw InvalidParameter(std::string("json: expected ") + kind_name(want) + ", value is " +
                         kind_name(got));
}


void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

void write_value(std::string& out, const Value& v, bool canonical);

void write_object(std::string& out, const Value::Object& o, bool canonical) {
  out.push_back('{');
  if (canonical) {
    std::vector<std::size_t> idx(o.size());
    for (std::size_t i = 0; i < o.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return o[a].first < o[b].first; });
    for (std::size_t k = 0; k < idx.size(); ++k) {
      if (k) out.push_back(',');
      out += escape_string(o[idx[k]].first);
      out.push_back(':');
      write_value(out, o[idx[k]].second, canonical);
    }
  } else {
    for (std::size_t k = 0; k < o.size(); ++k) {
      if (k) out.push_back(',');
      out += escape_string(o[k].first);
      out.push_back(':');
      write_value(out, o[k].second, canonical);
    }
  }
  out.push_back('}');
}

void write_value(std::string& out, const Value& v, bool canonical) {
  switch (v.kind()) {
    case Value::Kind::Null: out += "null"; return;
    case Value::Kind::Bool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Kind::Number: append_number(out, v.as_number()); return;
    case Value::Kind::String: out += escape_string(v.as_string()); return;
    case Value::Kind::Array: {
      out.push_back('[');
      const auto& a = v.as_array();
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out.push_back(',');
        write_value(out, a[i], canonical);
      }
      out.push_back(']');
      return;
    }
    case Value::Kind::Object: write_object(out, v.as_object(), canonical); return;
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth) : s_(text), max_depth_(max_depth) {}

  Value run() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const { throw ParseError(what, pos_); }

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  char get() {
    if (eof()) fail("unexpected end of input");
    return s_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  void expect_literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0)
      fail("invalid literal (expected '" + std::string(lit) + "')");
    pos_ += lit.size();
  }

  Value parse_value() {
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case 'n': expect_literal("null"); return Value(nullptr);
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case '"': return Value(parse_string());
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  Value parse_array() {
    enter();
    ++pos_;  // '['
    Value::Array a;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      leave();
      return Value(std::move(a));
    }
    while (true) {
      skip_ws();
      a.push_back(parse_value());
      skip_ws();
      const char c = get();
      if (c == ']') break;
      if (c != ',') { --pos_; fail("expected ',' or ']' in array"); }
    }
    leave();
    return Value(std::move(a));
  }

  Value parse_object() {
    enter();
    ++pos_;  // '{'
    Value::Object o;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      leave();
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected string key in object");
      std::string key = parse_string();
      for (const auto& m : o)
        if (m.first == key) fail("duplicate object key '" + key + "'");
      skip_ws();
      if (get() != ':') { --pos_; fail("expected ':' after object key"); }
      skip_ws();
      o.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = get();
      if (c == '}') break;
      if (c != ',') { --pos_; fail("expected ',' or '}' in object"); }
    }
    leave();
    return Value(std::move(o));
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = get();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else { --pos_; fail("invalid hex digit in \\u escape"); }
    }
    return v;
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      const char c = get();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        { --pos_; fail("raw control character in string"); }
      if (c != '\\') { out.push_back(c); continue; }
      const char e = get();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          const std::uint32_t hi = parse_hex4();
          if (hi >= 0xDC00 && hi <= 0xDFFF) fail("lone low surrogate in \\u escape");
          if (hi >= 0xD800 && hi <= 0xDBFF) {
            if (get() != '\\' || get() != 'u')
              { --pos_; fail("high surrogate not followed by \\u escape"); }
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate in \\u escape");
            append_utf8(out, 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00));
          } else {
            append_utf8(out, hi);
          }
          break;
        }
        default: --pos_; fail("invalid escape character in string");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    // Integer part: 0 | [1-9][0-9]*
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    if (peek() == '0') {
      ++pos_;
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        fail("leading zero in number");
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("expected digit after decimal point");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        fail("expected digit in exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    double d = 0.0;
    const auto r = std::from_chars(s_.data() + start, s_.data() + pos_, d);
    if (r.ec == std::errc::result_out_of_range || !std::isfinite(d))
      fail("number out of range for double");
    if (r.ec != std::errc() || r.ptr != s_.data() + pos_) fail("invalid number");
    return Value(d);
  }

  void enter() {
    if (++depth_ > max_depth_)
      fail("nesting deeper than " + std::to_string(max_depth_) + " levels");
  }
  void leave() { --depth_; }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::size_t max_depth_;
};

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) kind_error(Kind::Bool, kind());
  return std::get<bool>(v_);
}
double Value::as_number() const {
  if (!is_number()) kind_error(Kind::Number, kind());
  return std::get<double>(v_);
}
const std::string& Value::as_string() const {
  if (!is_string()) kind_error(Kind::String, kind());
  return std::get<std::string>(v_);
}
const Value::Array& Value::as_array() const {
  if (!is_array()) kind_error(Kind::Array, kind());
  return std::get<Array>(v_);
}
const Value::Object& Value::as_object() const {
  if (!is_object()) kind_error(Kind::Object, kind());
  return std::get<Object>(v_);
}
Value::Array& Value::as_array() {
  if (!is_array()) kind_error(Kind::Array, kind());
  return std::get<Array>(v_);
}
Value::Object& Value::as_object() {
  if (!is_object()) kind_error(Kind::Object, kind());
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& m : std::get<Object>(v_))
    if (m.first == key) return &m.second;
  return nullptr;
}

void Value::set(std::string key, Value v) {
  Object& o = as_object();
  for (auto& m : o)
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  o.emplace_back(std::move(key), std::move(v));
}

std::string Value::write() const {
  std::string out;
  write_value(out, *this, /*canonical=*/false);
  return out;
}

std::string Value::write_canonical() const {
  std::string out;
  write_value(out, *this, /*canonical=*/true);
  return out;
}

Value Value::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d))
    throw NumericalError("json: cannot serialize non-finite number");
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, r.ptr);
}

std::string escape_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace ivory::json
