// Plain-text table rendering for benches and examples.
//
// Every bench binary reproduces one of the paper's tables or figures as rows
// of text; this helper keeps their output aligned and uniform.
#pragma once

#include <string>
#include <vector>

namespace ivory {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string num(double v, int precision = 4);
  /// Formats in engineering style with SI suffix (e.g. "125 MHz", "1.2 nF").
  static std::string si(double v, const std::string& unit, int precision = 3);

  /// Renders with a header rule and column alignment.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ivory
