#include "common/outcome.hpp"

#include <algorithm>
#include <map>

#include "common/metrics.hpp"

namespace ivory {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::InvalidParameter: return "invalid-parameter";
    case ErrorCode::Numerical: return "numerical";
    case ErrorCode::NonFinite: return "non-finite";
    case ErrorCode::Structural: return "structural";
    case ErrorCode::Unknown: return "unknown";
  }
  return "unknown";
}

std::string Diagnostics::to_string() const {
  std::string s = error_code_name(code);
  s += " at '";
  s += site;
  s += "'";
  if (!candidate.empty()) {
    s += " [";
    s += candidate;
    s += "]";
  }
  if (!detail.empty()) {
    s += ": ";
    s += detail;
  }
  return s;
}

Diagnostics diagnose_current_exception(std::string site, std::string candidate) {
  Diagnostics d;
  d.site = std::move(site);
  d.candidate = std::move(candidate);
  // Most-derived types first; NonFiniteError before its base NumericalError.
  try {
    throw;
  } catch (const SweepError& e) {
    // A whole nested sweep died: keep its dominant inner classification so
    // outer aggregation names the root cause, not "some sweep failed".
    d.code = e.dominant().code;
    d.detail = e.what();
  } catch (const NonFiniteError& e) {
    d.code = ErrorCode::NonFinite;
    d.detail = e.what();
  } catch (const NumericalError& e) {
    d.code = ErrorCode::Numerical;
    d.detail = e.what();
  } catch (const StructuralError& e) {
    d.code = ErrorCode::Structural;
    d.detail = e.what();
  } catch (const InvalidParameter& e) {
    d.code = ErrorCode::InvalidParameter;
    d.detail = e.what();
  } catch (const std::exception& e) {
    d.code = ErrorCode::Unknown;
    d.detail = e.what();
  } catch (...) {
    d.code = ErrorCode::Unknown;
    d.detail = "non-standard exception";
  }
  return d;
}

void SweepReport::record_survivor() {
  ++n_evaluated;
  ++n_survived;
  static metrics::Counter& evaluated = metrics::registry().counter("dse.candidates.evaluated");
  static metrics::Counter& survived = metrics::registry().counter("dse.candidates.survived");
  evaluated.add();
  survived.add();
}

void SweepReport::record_skip(Diagnostics d) {
  ++n_evaluated;
  skips.push_back(std::move(d));
  static metrics::Counter& evaluated = metrics::registry().counter("dse.candidates.evaluated");
  static metrics::Counter& quarantined =
      metrics::registry().counter("dse.candidates.quarantined");
  evaluated.add();
  quarantined.add();
}

void SweepReport::merge(const SweepReport& other) {
  n_evaluated += other.n_evaluated;
  n_survived += other.n_survived;
  skips.insert(skips.end(), other.skips.begin(), other.skips.end());
}

Diagnostics SweepReport::dominant() const {
  if (skips.empty()) return Diagnostics{};
  // Count by (code, site); the winner is the most frequent pair, ties broken
  // by first appearance so the result is independent of map iteration order.
  std::map<std::pair<int, std::string>, std::size_t> counts;
  for (const Diagnostics& d : skips)
    ++counts[{static_cast<int>(d.code), d.site}];
  const Diagnostics* best = nullptr;
  std::size_t best_count = 0;
  for (const Diagnostics& d : skips) {
    const std::size_t c = counts[{static_cast<int>(d.code), d.site}];
    if (!best || c > best_count) {
      best = &d;
      best_count = c;
    }
  }
  return *best;
}

std::string SweepReport::summary() const {
  std::string s = std::to_string(n_skipped()) + " of " + std::to_string(n_evaluated) +
                  " candidate evaluations skipped (" + std::to_string(n_survived) +
                  " survived)";
  if (skips.empty()) return s;
  const Diagnostics dom = dominant();
  std::size_t dom_count = 0;
  for (const Diagnostics& d : skips)
    if (d.code == dom.code && d.site == dom.site) ++dom_count;
  s += "; dominant: " + std::string(error_code_name(dom.code)) + " at '" + dom.site +
       "' (" + std::to_string(dom_count) + " skips)";
  for (const Diagnostics& d : skips) {
    s += "\n  - ";
    s += d.to_string();
  }
  return s;
}

void throw_all_failed(const std::string& sweep, const SweepReport& report) {
  const Diagnostics dom = report.dominant();
  std::size_t dom_count = 0;
  for (const Diagnostics& d : report.skips)
    if (d.code == dom.code && d.site == dom.site) ++dom_count;
  std::string what = sweep + ": all " + std::to_string(report.n_evaluated) +
                     " candidates failed; dominant reason: " +
                     error_code_name(dom.code) + " at '" + dom.site + "' (" +
                     std::to_string(dom_count) + "/" + std::to_string(report.n_skipped()) +
                     " skips)";
  if (!dom.detail.empty()) what += ": " + dom.detail;
  throw SweepError(what, dom);
}

}  // namespace ivory
