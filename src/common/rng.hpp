// Deterministic pseudo-random number generation.
//
// Workload traces must be reproducible across runs and platforms, so Ivory
// carries its own small PCG-style generator instead of relying on
// implementation-defined std::default_random_engine behaviour.
#pragma once

#include <cstdint>

namespace ivory {

/// PCG32 (O'Neill): small, fast, statistically solid, fully deterministic.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const std::uint32_t xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u32()) * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box-Muller (one value per call; the pair's second
  /// member is discarded to keep the generator stateless beyond `state_`).
  double normal();

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace ivory
