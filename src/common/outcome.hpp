// Fault-isolated evaluation results for sweep-level code.
//
// A DSE sweep evaluates thousands of candidates; one ill-conditioned circuit
// must not abort (or silently poison) the whole run. The types here carry a
// structured failure record — error code + site + candidate context — across
// the thread pool so the sweep can quarantine the bad candidate, keep the
// rest, and report every skip deterministically.
//
// Invariant maintained by all quarantined sweeps: for each quarantine level,
// n_evaluated == n_survived + (skips recorded at that level). Nested sweeps
// (explore -> optimize_sc -> variants) each count their own candidates, so a
// merged report sums the levels.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace ivory {

/// Coarse failure taxonomy mirroring the exception types in error.hpp.
/// Scoped enum: the names intentionally shadow the exception classes.
enum class ErrorCode {
  None = 0,         ///< evaluation succeeded
  InvalidParameter, ///< candidate parameters outside the model's domain
  Numerical,        ///< solver/model numerical failure (incl. injected faults)
  NonFinite,        ///< NaN/Inf intercepted at a guarded model boundary
  Structural,       ///< malformed topology or netlist
  Unknown,          ///< any other exception type
};

const char* error_code_name(ErrorCode code);

/// One structured skip: what failed, where, and which candidate was being
/// evaluated. Cheap to copy; stored in SweepReport::skips.
struct Diagnostics {
  ErrorCode code = ErrorCode::None;
  std::string site;       ///< quarantine site that recorded the failure
  std::string candidate;  ///< human-readable candidate parameters
  std::string detail;     ///< the exception's message

  /// "non-finite at 'optimize_sc' [3:1 ladder SC @ dist 2]: analyze_sc ..."
  std::string to_string() const;
};

/// Classifies the in-flight exception (call inside a catch block) into a
/// Diagnostics record. A nested SweepError keeps its dominant inner code so
/// aggregation at the outer level names the true root cause.
Diagnostics diagnose_current_exception(std::string site, std::string candidate);

/// Value-or-diagnostics result of one quarantined evaluation. Default state
/// is a failure with code None ("not evaluated"), so parallel_map slots can
/// be default-constructed before the task fills them in.
template <typename T>
class EvalOutcome {
 public:
  EvalOutcome() = default;

  static EvalOutcome success(T value) {
    EvalOutcome o;
    o.value_ = std::move(value);
    o.ok_ = true;
    return o;
  }

  static EvalOutcome failure(Diagnostics diag) {
    EvalOutcome o;
    o.diag_ = std::move(diag);
    return o;
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  const T& value() const& {
    if (!ok_) throw NumericalError("EvalOutcome::value on failed evaluation: " + diag_.to_string());
    return value_;
  }
  T& value() & {
    if (!ok_) throw NumericalError("EvalOutcome::value on failed evaluation: " + diag_.to_string());
    return value_;
  }

  const Diagnostics& diagnostics() const { return diag_; }

 private:
  T value_{};
  Diagnostics diag_{};
  bool ok_ = false;
};

/// Runs `fn`, capturing any exception as a structured failure. The workhorse
/// of per-candidate quarantine: sweep loops call this per candidate and
/// record failures instead of letting them abort sibling evaluations.
template <typename Fn>
auto quarantine(std::string site, std::string candidate, Fn&& fn)
    -> EvalOutcome<decltype(fn())> {
  using Out = EvalOutcome<decltype(fn())>;
  try {
    return Out::success(fn());
  } catch (...) {
    return Out::failure(diagnose_current_exception(std::move(site), std::move(candidate)));
  }
}

/// Per-sweep account of what was evaluated, what survived, and every skip.
/// Sweeps build one local report per pool task and merge them serially in
/// index order, so the report is byte-identical at any thread count.
struct SweepReport {
  std::size_t n_evaluated = 0;
  std::size_t n_survived = 0;
  std::vector<Diagnostics> skips;

  std::size_t n_skipped() const { return skips.size(); }
  bool clean() const { return skips.empty(); }

  // Out of line: each records the candidate on the process metrics registry
  // ("dse.candidates.*") in addition to this report — every sweep layer
  // (explore points, optimize variants, cascades) funnels through here
  // exactly once per candidate, while merge() only sums already-counted
  // fields.
  void record_survivor();
  void record_skip(Diagnostics d);

  /// Appends `other` (counters summed, skips concatenated in order).
  void merge(const SweepReport& other);

  /// The most frequent (code, site) failure among skips; ties break toward
  /// the earliest occurrence. Returns a default Diagnostics when clean.
  Diagnostics dominant() const;

  /// Multi-line human-readable account, one line per skip.
  std::string summary() const;
};

/// Aggregated hard failure: raised only when *every* candidate in a sweep
/// died. Names the dominant failure reason, not the first exception hit.
class SweepError : public std::runtime_error {
 public:
  SweepError(const std::string& what, Diagnostics dominant)
      : std::runtime_error(what), dominant_(std::move(dominant)) {}

  const Diagnostics& dominant() const { return dominant_; }

 private:
  Diagnostics dominant_;
};

/// Throws SweepError describing a sweep in which all candidates failed.
[[noreturn]] void throw_all_failed(const std::string& sweep, const SweepReport& report);

}  // namespace ivory
