#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ivory {

double mean(const std::vector<double>& xs) {
  require(!xs.empty(), "mean: empty sample");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  require(!xs.empty(), "variance: empty sample");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min_value(const std::vector<double>& xs) {
  require(!xs.empty(), "min_value: empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(const std::vector<double>& xs) {
  require(!xs.empty(), "max_value: empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::vector<double> xs, double q) {
  require(!xs.empty(), "quantile: empty sample");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

BoxStats box_stats(const std::vector<double>& xs) {
  require(!xs.empty(), "box_stats: empty sample");
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  BoxStats b{};
  b.n = sorted.size();
  b.minimum = sorted.front();
  b.maximum = sorted.back();
  b.q1 = quantile(sorted, 0.25);
  b.median = quantile(sorted, 0.5);
  b.q3 = quantile(sorted, 0.75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_low = b.maximum;
  b.whisker_high = b.minimum;
  for (double x : sorted) {
    if (x >= lo_fence) {
      b.whisker_low = x;
      break;
    }
  }
  for (std::size_t i = sorted.size(); i-- > 0;) {
    if (sorted[i] <= hi_fence) {
      b.whisker_high = sorted[i];
      break;
    }
  }
  return b;
}

double peak_to_peak(const std::vector<double>& xs) { return max_value(xs) - min_value(xs); }

double rms_deviation(const std::vector<double>& xs) {
  require(!xs.empty(), "rms_deviation: empty sample");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

}  // namespace ivory
