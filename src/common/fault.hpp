// Deterministic fault-injection harness.
//
// Tests arm named sites ("sc_static_analysis", "lu_solve", "fft",
// "cycle_model", ...) to throw NumericalError or emit NaN, either on the
// k-th hit or at a seeded probability. Instrumented code calls
// fault::inject(site) at the boundary; the fast path is one relaxed atomic
// load, so probes are always compiled in and cost nothing when disarmed.
//
// Determinism across thread counts: the thread pool wraps every top-level
// task in a fault::TaskScope, so hits are counted per (site, task) rather
// than in global arrival order, and probability decisions hash
// (seed, site, task index, within-task hit index). Nested parallel regions
// run inline on the owning task's thread and inherit its scope; code running
// outside any pool task counts hits in a shared serial stream (cleared by
// reset_hits()). Arming or disarming sites mid-sweep is not supported.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace ivory::fault {

enum class Action {
  Throw,    ///< probe throws NumericalError("fault-injection: ...")
  EmitNan,  ///< probe returns NaN for the caller to fold into its data
};

/// Arms `site` to fire exactly once, on the k-th hit (1-based) of its
/// counting stream (per pool task, or the serial stream outside tasks).
void arm_on_hit(const std::string& site, Action action, std::uint64_t k);

/// Arms `site` to fire on each hit with probability `p`, decided by a
/// deterministic hash of (seed, site, task, hit) — independent of thread
/// count and of any other armed site.
void arm_probability(const std::string& site, Action action, double p, std::uint64_t seed);

void disarm(const std::string& site);
void disarm_all();

/// Clears the serial-stream hit counters of every armed site (task-scoped
/// counters reset automatically at task start). Call between repeated runs
/// that must see identical injection patterns.
void reset_hits();

bool any_armed();

/// Number of times `site` actually fired since it was armed.
std::uint64_t trip_count(const std::string& site);

namespace detail {
extern std::atomic<int> g_armed_sites;
double inject_slow(const char* site);
}  // namespace detail

/// Probe placed at instrumented boundaries. Returns 0.0 (or NaN when the
/// site fires in EmitNan mode — add it to a local value); throws in Throw
/// mode. Disarmed cost: one relaxed atomic load.
inline double inject(const char* site) {
  if (detail::g_armed_sites.load(std::memory_order_relaxed) == 0) return 0.0;
  return detail::inject_slow(site);
}

/// RAII marker the thread pool places around each top-level task so hit
/// counting is attributed to the task index, not to global arrival order.
/// No-op while nothing is armed.
class TaskScope {
 public:
  explicit TaskScope(std::uint64_t task_index);
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  bool engaged_ = false;
};

}  // namespace ivory::fault
