#include "common/fft.hpp"

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"

namespace ivory {

namespace {
bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::atomic<bool> g_twiddle_cache_enabled{true};

// Forward twiddles for all stages of a size-n transform, flattened: stage
// len = 2, 4, ..., n contributes its len/2 factors w^0..w^(len/2-1) in order
// (n - 1 entries total). Built with the same `w *= wlen` recurrence as the
// inline path so cached and uncached transforms agree bit-for-bit; the
// inverse transform conjugates on access (an exact sign flip).
std::shared_ptr<const std::vector<std::complex<double>>> twiddles_for(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const std::vector<std::complex<double>>>> cache;
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(n);
    if (it != cache.end()) return it->second;
  }
  auto table = std::make_shared<std::vector<std::complex<double>>>();
  table->reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    std::complex<double> w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      table->push_back(w);
      w *= wlen;
    }
  }
  std::lock_guard<std::mutex> lock(mutex);
  const auto [it, inserted] = cache.try_emplace(n, std::move(table));
  (void)inserted;  // A racing builder may have won; share its table.
  return it->second;
}

}  // namespace

bool fft_use_twiddle_cache(bool enabled) {
  return g_twiddle_cache_enabled.exchange(enabled);
}

void fft_radix2(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  require(is_power_of_two(n), "fft_radix2: size must be a power of two");
  if (n <= 1) return;
  data[0] += fault::inject("fft");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  std::shared_ptr<const std::vector<std::complex<double>>> table;
  if (g_twiddle_cache_enabled.load(std::memory_order_relaxed)) table = twiddles_for(n);

  std::size_t stage_base = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::complex<double>* tw = nullptr;
    std::vector<std::complex<double>> local;
    if (table) {
      tw = table->data() + stage_base;
    } else {
      const double angle = -2.0 * pi / static_cast<double>(len);
      const std::complex<double> wlen(std::cos(angle), std::sin(angle));
      local.reserve(len / 2);
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        local.push_back(w);
        w *= wlen;
      }
      tw = local.data();
    }
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> w = inverse ? std::conj(tw[k]) : tw[k];
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
    stage_base += len / 2;
  }
  // One NaN input sample poisons every output bin; report it as a contextful
  // error instead of handing a NaN spectrum to the noise models.
  for (std::size_t i = 0; i < n; ++i)
    if (!std::isfinite(data[i].real()) || !std::isfinite(data[i].imag()))
      throw NonFiniteError("fft_radix2: non-finite output at bin " + std::to_string(i) +
                           " (non-finite input sample?)");
}

std::vector<std::complex<double>> fft_real(const std::vector<double>& signal) {
  require(!signal.empty(), "fft_real: empty signal");
  const std::size_t n = next_power_of_two(signal.size());
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
  fft_radix2(data);
  return data;
}

std::vector<SpectrumPoint> amplitude_spectrum(const std::vector<double>& signal, double fs) {
  require(fs > 0.0, "amplitude_spectrum: sample rate must be positive");
  const std::vector<std::complex<double>> spec = fft_real(signal);
  const std::size_t n = spec.size();
  // Scale by the *original* signal length: zero padding does not add energy.
  const double scale = 2.0 / static_cast<double>(signal.size());
  std::vector<SpectrumPoint> out;
  out.reserve(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double amp = std::abs(spec[k]) * (k == 0 || k == n / 2 ? 0.5 * scale : scale);
    out.push_back({fs * static_cast<double>(k) / static_cast<double>(n), amp});
  }
  return out;
}

double spectrum_amplitude_at(const std::vector<SpectrumPoint>& spectrum, double f0) {
  require(!spectrum.empty(), "spectrum_amplitude_at: empty spectrum");
  // Bins are uniformly spaced; search the neighbourhood of the nearest bin for
  // the local peak to be robust to small leakage.
  std::size_t best = 0;
  double bestdist = std::fabs(spectrum[0].frequency_hz - f0);
  for (std::size_t i = 1; i < spectrum.size(); ++i) {
    const double d = std::fabs(spectrum[i].frequency_hz - f0);
    if (d < bestdist) {
      bestdist = d;
      best = i;
    }
  }
  double amp = spectrum[best].amplitude;
  const std::size_t lo = best >= 2 ? best - 2 : 0;
  const std::size_t hi = best + 2 < spectrum.size() ? best + 2 : spectrum.size() - 1;
  for (std::size_t i = lo; i <= hi; ++i) amp = std::max(amp, spectrum[i].amplitude);
  return amp;
}

}  // namespace ivory
