// Lightweight per-request span tracer.
//
// `IVORY_TRACE("name")` opens a scope guard that records one completed span
// (name, start, duration, thread) into a process-wide bounded ring buffer
// when it closes. Spans sit at coarse granularity — a pool batch, a serve
// request phase, a whole transient run — so the steady-state cost is two
// steady_clock reads plus one short critical section per span, never
// per-step work.
//
// The ring keeps the most recent `capacity` spans (default 65536); older
// spans are overwritten and counted as dropped. `to_chrome_json()` dumps the
// buffer in Chrome `trace_event` format — load the file at chrome://tracing
// (or https://ui.perfetto.dev) to see where the time went.
//
// Span names must be string literals (or otherwise outlive the process):
// the ring stores the pointer, not a copy, keeping recording allocation-free.
//
// Runtime switch: `set_enabled(false)` (or environment IVORY_TRACE=0) makes
// the guard a no-op. Building with -DIVORY_NO_METRICS compiles the guard
// away entirely; the dump surfaces then report an empty trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ivory::trace {

struct Event {
  const char* name = nullptr;  ///< static string; never null in a snapshot
  unsigned tid = 0;            ///< metrics::thread_index() of the recording thread
  std::int64_t start_us = 0;   ///< microseconds since the process trace epoch
  std::int64_t dur_us = 0;
};

bool enabled();
void set_enabled(bool on);

/// Records one completed span (called by the Span guard; public so tests and
/// replayers can inject events).
void record(const char* name, std::int64_t start_us, std::int64_t dur_us);

/// Microseconds since the process trace epoch (first use).
std::int64_t now_us();

/// Completed spans currently resident, oldest first. `dropped`, when
/// non-null, receives the number of spans overwritten since the last clear.
std::vector<Event> snapshot(std::uint64_t* dropped = nullptr);

/// Chrome trace_event JSON: {"traceEvents":[{"name":...,"ph":"X",...}],
/// "displayTimeUnit":"ms"}. Valid strict JSON (parseable by json::Value).
std::string to_chrome_json();

void clear();

/// Resizes the ring (drops resident spans). Capacity 0 disables recording.
void set_capacity(std::size_t capacity);

#if !defined(IVORY_NO_METRICS)

class Span {
 public:
  explicit Span(const char* name) : name_(name), start_us_(enabled() ? now_us() : -1) {}
  ~Span() {
    if (start_us_ >= 0) record(name_, start_us_, now_us() - start_us_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_;
};

#define IVORY_TRACE_CONCAT2(a, b) a##b
#define IVORY_TRACE_CONCAT(a, b) IVORY_TRACE_CONCAT2(a, b)
#define IVORY_TRACE(name) \
  ::ivory::trace::Span IVORY_TRACE_CONCAT(ivory_trace_span_, __LINE__)(name)

#else

class Span {
 public:
  explicit Span(const char*) {}
};

#define IVORY_TRACE(name) \
  do {                    \
  } while (false)

#endif  // IVORY_NO_METRICS

}  // namespace ivory::trace
