#include "common/optimize.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ivory {

namespace {
constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
}

ScalarOptimum golden_minimize(const std::function<double(double)>& f, double lo, double hi,
                              double tol, int max_iter) {
  require(lo < hi, "golden_minimize: lo must be < hi");
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c), fd = f(d);
  for (int it = 0; it < max_iter && (b - a) > tol * (1.0 + std::fabs(a) + std::fabs(b)); ++it) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
  }
  const double x = 0.5 * (a + b);
  return {x, f(x)};
}

ScalarOptimum golden_maximize(const std::function<double(double)>& f, double lo, double hi,
                              double tol, int max_iter) {
  ScalarOptimum r = golden_minimize([&](double x) { return -f(x); }, lo, hi, tol, max_iter);
  r.f = -r.f;
  return r;
}

ScalarOptimum log_grid_minimize(const std::function<double(double)>& f, double lo, double hi,
                                int n) {
  require(lo > 0.0 && hi > lo, "log_grid_minimize: need 0 < lo < hi");
  require(n >= 3, "log_grid_minimize: need n >= 3");
  const double llo = std::log(lo), lhi = std::log(hi);
  double best_x = lo, best_f = f(lo);
  int best_i = 0;
  for (int i = 1; i < n; ++i) {
    const double x = std::exp(llo + (lhi - llo) * i / (n - 1));
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
      best_i = i;
    }
  }
  // Refine inside the bracketing grid cells.
  const int i0 = best_i > 0 ? best_i - 1 : 0;
  const int i1 = best_i < n - 1 ? best_i + 1 : n - 1;
  const double rlo = std::exp(llo + (lhi - llo) * i0 / (n - 1));
  const double rhi = std::exp(llo + (lhi - llo) * i1 / (n - 1));
  if (rhi > rlo) {
    ScalarOptimum refined = golden_minimize(f, rlo, rhi, 1e-6);
    if (refined.f < best_f) return refined;
  }
  return {best_x, best_f};
}

double bisect_root(const std::function<double(double)>& f, double lo, double hi, double tol,
                   int max_iter) {
  double flo = f(lo), fhi = f(hi);
  require(flo == 0.0 || fhi == 0.0 || (flo < 0.0) != (fhi < 0.0),
          "bisect_root: endpoints must bracket a sign change");
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  for (int it = 0; it < max_iter && (hi - lo) > tol * (1.0 + std::fabs(lo) + std::fabs(hi)); ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace ivory
