// Polynomials: evaluation and least-squares fitting.
//
// Ivory uses polynomial fits for the frequency-dependent inductance
// coefficient of integrated inductors (Section 3.2 of the paper) and for
// smoothing measured reference curves in the validation benches.
#pragma once

#include <cstddef>
#include <vector>

namespace ivory {

/// Polynomial with coefficients in ascending-power order:
/// p(x) = c[0] + c[1]*x + c[2]*x^2 + ...
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> coeffs);

  /// Evaluates by Horner's rule.
  double operator()(double x) const;

  /// Derivative polynomial.
  Polynomial derivative() const;

  std::size_t degree() const { return coeffs_.empty() ? 0 : coeffs_.size() - 1; }
  const std::vector<double>& coeffs() const { return coeffs_; }

 private:
  std::vector<double> coeffs_{0.0};
};

/// Least-squares fit of a degree-`degree` polynomial to the points (x, y).
/// Requires x.size() == y.size() and at least degree+1 points.
Polynomial polyfit(const std::vector<double>& x, const std::vector<double>& y,
                   std::size_t degree);

}  // namespace ivory
