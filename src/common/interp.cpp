#include "common/interp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ivory {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  require(xs_.size() == ys_.size(), "PiecewiseLinear: xs and ys must match in length");
  require(!xs_.empty(), "PiecewiseLinear: need at least one breakpoint");
  for (std::size_t i = 1; i < xs_.size(); ++i)
    require(xs_[i] > xs_[i - 1], "PiecewiseLinear: xs must be strictly increasing");
}

double PiecewiseLinear::operator()(double x) const {
  require(!xs_.empty(), "PiecewiseLinear: evaluating empty function");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] * (1.0 - t) + ys_[hi] * t;
}

double PiecewiseLinear::integral(double a, double b) const {
  require(!xs_.empty(), "PiecewiseLinear: integrating empty function");
  if (a > b) return -integral(b, a);
  // Collect all breakpoints inside [a, b] plus the endpoints, then trapezoid.
  std::vector<double> knots;
  knots.push_back(a);
  for (double x : xs_)
    if (x > a && x < b) knots.push_back(x);
  knots.push_back(b);
  double acc = 0.0;
  for (std::size_t i = 1; i < knots.size(); ++i) {
    const double x0 = knots[i - 1], x1 = knots[i];
    acc += 0.5 * ((*this)(x0) + (*this)(x1)) * (x1 - x0);
  }
  return acc;
}

std::vector<double> sample_uniform(const PiecewiseLinear& f, double a, double b, int n) {
  require(n >= 2, "sample_uniform: need at least two samples");
  require(b > a, "sample_uniform: need b > a");
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double x = a + (b - a) * static_cast<double>(i) / static_cast<double>(n - 1);
    out[static_cast<std::size_t>(i)] = f(x);
  }
  return out;
}

}  // namespace ivory
