#include "common/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/fault.hpp"
#include "common/hash.hpp"

namespace ivory::sparse {

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::Auto: return "auto";
    case Kernel::Dense: return "dense";
    case Kernel::Banded: return "banded";
    case Kernel::Sparse: return "sparse";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Compression
// ---------------------------------------------------------------------------

void compress(const SparseStamp& s, CscMatrix& out) {
  const std::size_t n = s.n();
  const std::size_t nt = s.triplet_count();
  out.n = n;
  out.col_ptr.assign(n + 1, 0);

  // Counting sort by column, preserving triplet order within each column so
  // duplicate stamps later sum in insertion order (bit-identical to
  // accumulating into a dense matrix directly).
  std::vector<std::int32_t> count(n, 0);
  for (std::size_t t = 0; t < nt; ++t) ++count[static_cast<std::size_t>(s.cols()[t])];
  std::vector<std::size_t> start(n + 1, 0);
  for (std::size_t c = 0; c < n; ++c) start[c + 1] = start[c] + static_cast<std::size_t>(count[c]);
  std::vector<std::int32_t> rtmp(nt);
  std::vector<double> vtmp(nt);
  {
    std::vector<std::size_t> next(start.begin(), start.end() - 1);
    for (std::size_t t = 0; t < nt; ++t) {
      const std::size_t slot = next[static_cast<std::size_t>(s.cols()[t])]++;
      rtmp[slot] = s.rows()[t];
      vtmp[slot] = s.vals()[t];
    }
  }

  out.row_ind.clear();
  out.val.clear();
  out.row_ind.reserve(nt);
  out.val.reserve(nt);
  std::vector<std::size_t> order;
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t b = start[c], e = start[c + 1];
    order.resize(e - b);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = b + i;
    // Stable by row: equal rows keep insertion order for the merge below.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) { return rtmp[x] < rtmp[y]; });
    for (std::size_t i = 0; i < order.size();) {
      const std::int32_t r = rtmp[order[i]];
      double sum = vtmp[order[i]];
      for (++i; i < order.size() && rtmp[order[i]] == r; ++i) sum += vtmp[order[i]];
      out.row_ind.push_back(r);
      out.val.push_back(sum);
    }
    out.col_ptr[c + 1] = static_cast<std::int32_t>(out.row_ind.size());
  }
}

std::uint64_t CscMatrix::pattern_hash() const {
  const std::uint64_t n64 = n;
  std::uint64_t h = fnv1a64({reinterpret_cast<const char*>(&n64), sizeof n64});
  h = fnv1a64({reinterpret_cast<const char*>(col_ptr.data()),
               col_ptr.size() * sizeof(std::int32_t)},
              h);
  h = fnv1a64({reinterpret_cast<const char*>(row_ind.data()),
               row_ind.size() * sizeof(std::int32_t)},
              h);
  return h;
}

// ---------------------------------------------------------------------------
// Orderings
// ---------------------------------------------------------------------------

namespace {

// Sorted adjacency of the symmetric pattern of A + A^T, diagonal dropped.
std::vector<std::vector<std::int32_t>> symmetric_adjacency(const CscMatrix& a) {
  const std::size_t n = a.n;
  std::vector<std::vector<std::int32_t>> adj(n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::int32_t k = a.col_ptr[c]; k < a.col_ptr[c + 1]; ++k) {
      const std::int32_t r = a.row_ind[static_cast<std::size_t>(k)];
      if (static_cast<std::size_t>(r) == c) continue;
      adj[static_cast<std::size_t>(r)].push_back(static_cast<std::int32_t>(c));
      adj[c].push_back(r);
    }
  for (auto& nb : adj) {
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  }
  return adj;
}

// Breadth-first levels from `root` over unvisited nodes; returns the nodes
// reached in BFS order and the index of a farthest node among them.
std::vector<std::int32_t> bfs_component(const std::vector<std::vector<std::int32_t>>& adj,
                                        std::int32_t root, std::vector<char>& seen,
                                        std::int32_t* farthest) {
  std::vector<std::int32_t> order{root};
  seen[static_cast<std::size_t>(root)] = 1;
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const std::int32_t nb : adj[static_cast<std::size_t>(order[head])])
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = 1;
        order.push_back(nb);
      }
  }
  *farthest = order.back();
  return order;
}

// Reverse Cuthill-McKee over the symmetric pattern: per connected component,
// start from a pseudo-peripheral node (double BFS), append neighbours in
// (degree, id) order, reverse at the end. Deterministic. perm[new] = old.
std::vector<std::int32_t> rcm_order(const std::vector<std::vector<std::int32_t>>& adj) {
  const std::size_t n = adj.size();
  std::vector<std::int32_t> perm;
  perm.reserve(n);
  std::vector<char> seen(n, 0);
  const auto degree_less = [&](std::int32_t x, std::int32_t y) {
    const std::size_t dx = adj[static_cast<std::size_t>(x)].size();
    const std::size_t dy = adj[static_cast<std::size_t>(y)].size();
    return dx != dy ? dx < dy : x < y;
  };
  for (std::size_t s = 0; s < n; ++s) {
    if (seen[s]) continue;
    // Pseudo-peripheral start: BFS twice from the component's first node.
    std::vector<char> tmp(n, 0);
    std::int32_t far1 = 0, far2 = 0;
    bfs_component(adj, static_cast<std::int32_t>(s), tmp, &far1);
    std::fill(tmp.begin(), tmp.end(), 0);
    bfs_component(adj, far1, tmp, &far2);
    const std::int32_t root = far2;

    // Cuthill-McKee: BFS with neighbours appended in (degree, id) order.
    const std::size_t comp_begin = perm.size();
    perm.push_back(root);
    seen[static_cast<std::size_t>(root)] = 1;
    std::vector<std::int32_t> nbr;
    for (std::size_t head = comp_begin; head < perm.size(); ++head) {
      nbr.clear();
      for (const std::int32_t nb : adj[static_cast<std::size_t>(perm[head])])
        if (!seen[static_cast<std::size_t>(nb)]) {
          seen[static_cast<std::size_t>(nb)] = 1;
          nbr.push_back(nb);
        }
      std::sort(nbr.begin(), nbr.end(), degree_less);
      perm.insert(perm.end(), nbr.begin(), nbr.end());
    }
    std::reverse(perm.begin() + static_cast<std::ptrdiff_t>(comp_begin), perm.end());
  }
  return perm;
}

// Half bandwidth of A under the symmetric permutation perm (perm[new]=old).
int bandwidth_under(const CscMatrix& a, const std::vector<std::int32_t>& perm) {
  std::vector<std::int32_t> inv(a.n);
  for (std::size_t i = 0; i < a.n; ++i) inv[static_cast<std::size_t>(perm[i])] =
      static_cast<std::int32_t>(i);
  int bw = 0;
  for (std::size_t c = 0; c < a.n; ++c)
    for (std::int32_t k = a.col_ptr[c]; k < a.col_ptr[c + 1]; ++k) {
      const int d = std::abs(inv[static_cast<std::size_t>(
                        a.row_ind[static_cast<std::size_t>(k)])] -
                    inv[c]);
      bw = std::max(bw, d);
    }
  return bw;
}

// Greedy minimum-degree ordering on the symmetric fill graph (sorted-vector
// clique merge). Deterministic: ties break toward the lower node id. Bails
// out (empty result) if fill-graph storage exceeds `storage_cap` — the
// caller falls back to the RCM order, whose fill is bounded by the band
// profile.
std::vector<std::int32_t> min_degree_order(std::vector<std::vector<std::int32_t>> adj,
                                           std::size_t storage_cap) {
  const std::size_t n = adj.size();
  std::vector<std::int32_t> order;
  order.reserve(n);
  std::vector<char> dead(n, 0);
  // Degree buckets: bucket[d] holds candidate nodes of (possibly stale)
  // degree d; nodes are re-checked against their live degree when popped.
  std::size_t storage = 0;
  for (const auto& nb : adj) storage += nb.size();
  std::vector<std::vector<std::int32_t>> bucket(n + 1);
  for (std::size_t v = 0; v < n; ++v)
    bucket[adj[v].size()].push_back(static_cast<std::int32_t>(v));
  std::vector<std::int32_t> merged, tmp;
  std::size_t d = 0;
  while (order.size() < n) {
    while (d <= n && bucket[d].empty()) ++d;
    if (d > n) break;  // Defensive; every live node sits in some bucket.
    // Lowest id among this bucket's live, degree-accurate entries.
    std::int32_t v = -1;
    auto& bk = bucket[d];
    for (std::size_t i = 0; i < bk.size(); ++i) {
      const std::int32_t u = bk[i];
      if (!dead[static_cast<std::size_t>(u)] &&
          adj[static_cast<std::size_t>(u)].size() == d && (v < 0 || u < v))
        v = u;
    }
    if (v < 0) {
      bk.clear();  // All entries stale or dead; d stays (lazy re-check).
      d = 0;
      continue;
    }
    dead[static_cast<std::size_t>(v)] = 1;
    order.push_back(v);
    // Merge v's neighbourhood into a clique.
    const std::vector<std::int32_t> nv = std::move(adj[static_cast<std::size_t>(v)]);
    adj[static_cast<std::size_t>(v)] = {};
    for (const std::int32_t u : nv) {
      if (dead[static_cast<std::size_t>(u)]) continue;
      auto& au = adj[static_cast<std::size_t>(u)];
      storage -= au.size();
      merged.clear();
      // au ∪ nv, minus u, v, and dead nodes.
      tmp.clear();
      std::set_union(au.begin(), au.end(), nv.begin(), nv.end(), std::back_inserter(tmp));
      for (const std::int32_t w : tmp)
        if (w != u && w != v && !dead[static_cast<std::size_t>(w)]) merged.push_back(w);
      au = merged;
      storage += au.size();
      bucket[au.size()].push_back(u);
      if (au.size() < d) d = au.size();
    }
    if (storage > storage_cap) return {};
    d = 0;
  }
  return order;
}

}  // namespace

// ---------------------------------------------------------------------------
// Structural analysis / kernel selection
// ---------------------------------------------------------------------------

std::shared_ptr<const Symbolic> analyze(const CscMatrix& a, Kernel request) {
  require(a.n > 0, "sparse::analyze: empty system");
  auto sym = std::make_shared<Symbolic>();
  sym->n = a.n;
  sym->nnz = a.nnz();
  sym->pattern_hash = a.pattern_hash();

  const double density =
      static_cast<double>(a.nnz()) / (static_cast<double>(a.n) * static_cast<double>(a.n));
  Kernel k = request;
  if (k == Kernel::Auto && (a.n <= 48 || density >= 0.25)) {
    // Small or genuinely dense systems: dense LU's constant factors win, and
    // the legacy byte-exact dense path is preserved for the converter-scale
    // circuits every existing test and bench pins down.
    k = Kernel::Dense;
  }
  if (k == Kernel::Dense) {
    sym->kernel = Kernel::Dense;
    return sym;
  }

  const auto adj = symmetric_adjacency(a);
  const std::vector<std::int32_t> rcm = rcm_order(adj);
  const int bw = bandwidth_under(a, rcm);
  sym->rcm_bandwidth = bw;

  if (k == Kernel::Auto)
    k = bw <= std::max<int>(8, static_cast<int>(a.n / 8)) ? Kernel::Banded : Kernel::Sparse;

  sym->kernel = k;
  if (k == Kernel::Banded) {
    sym->perm = rcm;
    sym->kl = sym->ku = bw;
  } else {
    // Fill-reducing column order; RCM fallback when the fill-graph merge
    // exceeds its storage budget (profile fill is then the bound anyway).
    std::vector<std::int32_t> md = min_degree_order(adj, 64 * (a.nnz() + a.n));
    sym->colperm = md.empty() ? rcm : std::move(md);
  }
  return sym;
}

// ---------------------------------------------------------------------------
// Banded LU (dgbtf2 / dgbtrs shape)
// ---------------------------------------------------------------------------

BandedLu::BandedLu(const CscMatrix& a, const std::vector<std::int32_t>& perm, int kl, int ku)
    : n_(a.n),
      kl_(kl),
      ku_(ku),
      kv_(kl + ku),
      ldab_(2 * kl + ku + 1),
      ab_(static_cast<std::size_t>(2 * kl + ku + 1) * a.n, 0.0),
      piv_(a.n),
      perm_(perm) {
  require(perm.size() == n_, "BandedLu: permutation size mismatch");
  std::vector<std::int32_t> inv(n_);
  for (std::size_t i = 0; i < n_; ++i) inv[static_cast<std::size_t>(perm_[i])] =
      static_cast<std::int32_t>(i);
  // Scatter A(p,p) into band storage: entry (i,j) at ab(kv + i - j, j).
  for (std::size_t c = 0; c < n_; ++c) {
    const std::int32_t j = inv[c];
    for (std::int32_t k = a.col_ptr[c]; k < a.col_ptr[c + 1]; ++k) {
      const std::int32_t i = inv[static_cast<std::size_t>(a.row_ind[static_cast<std::size_t>(k)])];
      require(i - j <= kl_ && j - i <= ku_, "BandedLu: entry outside declared band");
      ab_[static_cast<std::size_t>(j) * ldab_ + static_cast<std::size_t>(kv_ + i - j)] +=
          a.val[static_cast<std::size_t>(k)];
    }
  }

  const std::int32_t n = static_cast<std::int32_t>(n_);
  for (std::int32_t j = 0; j < n; ++j) {
    double* colj = &ab_[static_cast<std::size_t>(j) * ldab_];
    const std::int32_t km = std::min<std::int32_t>(kl_, n - 1 - j);
    // Partial pivot within the column's subdiagonal window.
    std::int32_t p = 0;
    double best = std::fabs(colj[kv_]);
    for (std::int32_t i = 1; i <= km; ++i) {
      const double v = std::fabs(colj[kv_ + i]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    // Negated comparison: a NaN pivot column is reported here, not solved
    // through. The offending column is reported in original indices.
    if (!(best >= 1e-300))
      throw SingularMatrixError(
          "BandedLu: singular or non-finite matrix (n=" + std::to_string(n_) +
              ", pivot column " + std::to_string(perm_[static_cast<std::size_t>(j)]) + ")",
          n_, static_cast<std::size_t>(perm_[static_cast<std::size_t>(j)]));
    piv_[static_cast<std::size_t>(j)] = j + p;
    const std::int32_t ju = std::min<std::int32_t>(j + kv_, n - 1);
    if (p != 0) {
      for (std::int32_t jj = j; jj <= ju; ++jj) {
        double* cj = &ab_[static_cast<std::size_t>(jj) * ldab_];
        std::swap(cj[kv_ + j - jj], cj[kv_ + j + p - jj]);
      }
    }
    const double pivot = colj[kv_];
    for (std::int32_t i = 1; i <= km; ++i) colj[kv_ + i] /= pivot;
    for (std::int32_t jj = j + 1; jj <= ju; ++jj) {
      double* cj = &ab_[static_cast<std::size_t>(jj) * ldab_];
      const double f = cj[kv_ + j - jj];
      if (f == 0.0) continue;
      double* dst = &cj[kv_ + j - jj];  // dst[i] = entry (j + i, jj).
      // Stride-1 AXPY over the column slice: SIMD-amenable.
      for (std::int32_t i = 1; i <= km; ++i) dst[i] -= colj[kv_ + i] * f;
    }
  }
}

void BandedLu::solve_into(const std::vector<double>& b, std::vector<double>& x) const {
  require(b.size() == n_, "BandedLu::solve_into: dimension mismatch");
  require(&b != &x, "BandedLu::solve_into: b and x must not alias");
  const double injected = fault::inject("lu_solve");
  pb_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) pb_[i] = b[static_cast<std::size_t>(perm_[i])];
  if (n_ > 0) pb_[0] += injected;

  const std::int32_t n = static_cast<std::int32_t>(n_);
  // Forward: apply row interchanges and the unit-lower multipliers.
  for (std::int32_t j = 0; j < n; ++j) {
    const std::int32_t pj = piv_[static_cast<std::size_t>(j)];
    if (pj != j) std::swap(pb_[static_cast<std::size_t>(j)], pb_[static_cast<std::size_t>(pj)]);
    const double* colj = &ab_[static_cast<std::size_t>(j) * ldab_];
    const std::int32_t km = std::min<std::int32_t>(kl_, n - 1 - j);
    const double yj = pb_[static_cast<std::size_t>(j)];
    if (yj == 0.0) continue;
    double* y = &pb_[static_cast<std::size_t>(j)];
    for (std::int32_t i = 1; i <= km; ++i) y[i] -= colj[kv_ + i] * yj;
  }
  // Backward over U (bandwidth kv_).
  for (std::int32_t j = n - 1; j >= 0; --j) {
    const double* colj = &ab_[static_cast<std::size_t>(j) * ldab_];
    const double xj = pb_[static_cast<std::size_t>(j)] / colj[kv_];
    pb_[static_cast<std::size_t>(j)] = xj;
    if (xj == 0.0) continue;
    const std::int32_t lm = std::min<std::int32_t>(kv_, j);
    double* y = &pb_[static_cast<std::size_t>(j)];
    for (std::int32_t i = 1; i <= lm; ++i) y[-i] -= colj[kv_ - i] * xj;
  }

  x.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) x[static_cast<std::size_t>(perm_[i])] = pb_[i];
  for (std::size_t i = 0; i < n_; ++i)
    if (!std::isfinite(x[i]))
      throw NonFiniteError("BandedLu::solve: non-finite solution component " +
                           std::to_string(i) + " (ill-conditioned or non-finite system)");
}

// ---------------------------------------------------------------------------
// Gilbert-Peierls sparse LU
// ---------------------------------------------------------------------------

SparseLu::SparseLu(const CscMatrix& a, const std::vector<std::int32_t>& colperm)
    : n_(a.n), pinv_(a.n, -1), q_(colperm) {
  require(q_.size() == n_, "SparseLu: column order size mismatch");
  const std::int32_t n = static_cast<std::int32_t>(n_);

  // Columns of L and U built incrementally with ORIGINAL row indices for L
  // (remapped to pivotal indices once factorization completes).
  std::vector<std::vector<std::int32_t>> lcols_i(n_), ucols_i(n_);
  std::vector<std::vector<double>> lcols_x(n_), ucols_x(n_);
  d_.assign(n_, 0.0);

  std::vector<double> x(n_, 0.0);
  std::vector<std::int32_t> mark(n_, -1);
  std::vector<std::int32_t> reach;       // Topological post-order (reversed).
  std::vector<std::int32_t> stack, edge; // Iterative DFS state.
  reach.reserve(64);

  for (std::int32_t k = 0; k < n; ++k) {
    const std::int32_t col = q_[static_cast<std::size_t>(k)];
    reach.clear();
    // DFS over the L-column DAG from the nonzero rows of A(:, col); nodes
    // are original row indices, pivotal nodes expand to their L column.
    for (std::int32_t t = a.col_ptr[static_cast<std::size_t>(col)];
         t < a.col_ptr[static_cast<std::size_t>(col) + 1]; ++t) {
      const std::int32_t r0 = a.row_ind[static_cast<std::size_t>(t)];
      if (mark[static_cast<std::size_t>(r0)] == k) continue;
      stack.assign(1, r0);
      edge.assign(1, 0);
      mark[static_cast<std::size_t>(r0)] = k;
      while (!stack.empty()) {
        const std::int32_t r = stack.back();
        const std::int32_t pr = pinv_[static_cast<std::size_t>(r)];
        const auto& children = pr >= 0 ? lcols_i[static_cast<std::size_t>(pr)] : lcols_i[0];
        const std::int32_t nchild = pr >= 0 ? static_cast<std::int32_t>(children.size()) : 0;
        bool descended = false;
        while (edge.back() < nchild) {
          const std::int32_t c = children[static_cast<std::size_t>(edge.back()++)];
          if (mark[static_cast<std::size_t>(c)] != k) {
            mark[static_cast<std::size_t>(c)] = k;
            stack.push_back(c);
            edge.push_back(0);
            descended = true;
            break;
          }
        }
        if (!descended && !stack.empty() && stack.back() == r && edge.back() >= nchild) {
          reach.push_back(r);
          stack.pop_back();
          edge.pop_back();
        }
      }
    }
    // reach is in post-order: reversed it is topological (parents first).
    for (auto it = reach.begin(); it != reach.end(); ++it) x[static_cast<std::size_t>(*it)] = 0.0;
    for (std::int32_t t = a.col_ptr[static_cast<std::size_t>(col)];
         t < a.col_ptr[static_cast<std::size_t>(col) + 1]; ++t)
      x[static_cast<std::size_t>(a.row_ind[static_cast<std::size_t>(t)])] =
          a.val[static_cast<std::size_t>(t)];
    for (auto it = reach.rbegin(); it != reach.rend(); ++it) {
      const std::int32_t r = *it;
      const std::int32_t pr = pinv_[static_cast<std::size_t>(r)];
      if (pr < 0) continue;
      const double xr = x[static_cast<std::size_t>(r)];
      if (xr == 0.0) continue;
      const auto& li = lcols_i[static_cast<std::size_t>(pr)];
      const auto& lx = lcols_x[static_cast<std::size_t>(pr)];
      for (std::size_t e = 0; e < li.size(); ++e)
        x[static_cast<std::size_t>(li[e])] -= lx[e] * xr;
    }

    // Pivot: max |x| over non-pivotal rows, with diagonal preference — if the
    // structural diagonal is within 1e-3 of the best it keeps the pivot, so
    // same-pattern refactorizations see a stable row permutation.
    std::int32_t prow = -1;
    double best = 0.0;
    for (auto it = reach.rbegin(); it != reach.rend(); ++it) {
      const std::int32_t r = *it;
      if (pinv_[static_cast<std::size_t>(r)] >= 0) continue;
      const double v = std::fabs(x[static_cast<std::size_t>(r)]);
      if (v > best) {
        best = v;
        prow = r;
      }
    }
    if (mark[static_cast<std::size_t>(col)] == k && pinv_[static_cast<std::size_t>(col)] < 0 &&
        std::fabs(x[static_cast<std::size_t>(col)]) >= 1e-3 * best)
      prow = col;
    if (prow < 0 || !(std::fabs(x[static_cast<std::size_t>(prow)]) >= 1e-300))
      throw SingularMatrixError(
          "SparseLu: singular or non-finite matrix (n=" + std::to_string(n_) +
              ", pivot column " + std::to_string(col) + ")",
          n_, static_cast<std::size_t>(col));

    pinv_[static_cast<std::size_t>(prow)] = k;
    const double pivot = x[static_cast<std::size_t>(prow)];
    d_[static_cast<std::size_t>(k)] = pivot;
    auto& ui = ucols_i[static_cast<std::size_t>(k)];
    auto& ux = ucols_x[static_cast<std::size_t>(k)];
    auto& li = lcols_i[static_cast<std::size_t>(k)];
    auto& lx = lcols_x[static_cast<std::size_t>(k)];
    for (auto it = reach.rbegin(); it != reach.rend(); ++it) {
      const std::int32_t r = *it;
      if (r == prow) continue;
      const std::int32_t pr = pinv_[static_cast<std::size_t>(r)];
      if (pr >= 0 && pr != k) {
        ui.push_back(pr);
        ux.push_back(x[static_cast<std::size_t>(r)]);
      } else if (pr < 0) {
        li.push_back(r);
        lx.push_back(x[static_cast<std::size_t>(r)] / pivot);
      }
    }
  }

  // Flatten to CSC, remapping L's row indices to pivotal positions.
  lp_.assign(n_ + 1, 0);
  up_.assign(n_ + 1, 0);
  std::size_t lnnz = 0, unnz = 0;
  for (std::size_t k = 0; k < n_; ++k) {
    lnnz += lcols_i[k].size();
    unnz += ucols_i[k].size();
  }
  li_.reserve(lnnz);
  lx_.reserve(lnnz);
  ui_.reserve(unnz);
  ux_.reserve(unnz);
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t e = 0; e < lcols_i[k].size(); ++e) {
      li_.push_back(pinv_[static_cast<std::size_t>(lcols_i[k][e])]);
      lx_.push_back(lcols_x[k][e]);
    }
    lp_[k + 1] = static_cast<std::int32_t>(li_.size());
    ui_.insert(ui_.end(), ucols_i[k].begin(), ucols_i[k].end());
    ux_.insert(ux_.end(), ucols_x[k].begin(), ucols_x[k].end());
    up_[k + 1] = static_cast<std::int32_t>(ui_.size());
  }
}

void SparseLu::solve_into(const std::vector<double>& b, std::vector<double>& x) const {
  require(b.size() == n_, "SparseLu::solve_into: dimension mismatch");
  require(&b != &x, "SparseLu::solve_into: b and x must not alias");
  const double injected = fault::inject("lu_solve");
  y_.resize(n_);
  for (std::size_t r = 0; r < n_; ++r) y_[static_cast<std::size_t>(pinv_[r])] = b[r];
  if (n_ > 0) y_[0] += injected;

  const std::int32_t n = static_cast<std::int32_t>(n_);
  for (std::int32_t k = 0; k < n; ++k) {
    const double yk = y_[static_cast<std::size_t>(k)];
    if (yk == 0.0) continue;
    for (std::int32_t e = lp_[static_cast<std::size_t>(k)];
         e < lp_[static_cast<std::size_t>(k) + 1]; ++e)
      y_[static_cast<std::size_t>(li_[static_cast<std::size_t>(e)])] -=
          lx_[static_cast<std::size_t>(e)] * yk;
  }
  for (std::int32_t k = n - 1; k >= 0; --k) {
    const double xk = y_[static_cast<std::size_t>(k)] / d_[static_cast<std::size_t>(k)];
    y_[static_cast<std::size_t>(k)] = xk;
    if (xk == 0.0) continue;
    for (std::int32_t e = up_[static_cast<std::size_t>(k)];
         e < up_[static_cast<std::size_t>(k) + 1]; ++e)
      y_[static_cast<std::size_t>(ui_[static_cast<std::size_t>(e)])] -=
          ux_[static_cast<std::size_t>(e)] * xk;
  }

  x.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) x[static_cast<std::size_t>(q_[k])] = y_[k];
  for (std::size_t i = 0; i < n_; ++i)
    if (!std::isfinite(x[i]))
      throw NonFiniteError("SparseLu::solve: non-finite solution component " +
                           std::to_string(i) + " (ill-conditioned or non-finite system)");
}

// ---------------------------------------------------------------------------
// Kernel dispatch
// ---------------------------------------------------------------------------

MnaFactorization::MnaFactorization(const CscMatrix& a, std::shared_ptr<const Symbolic> sym)
    : sym_(std::move(sym)) {
  require(sym_ != nullptr, "MnaFactorization: null symbolic");
  require(sym_->n == a.n, "MnaFactorization: symbolic/matrix size mismatch");
  switch (sym_->kernel) {
    case Kernel::Auto:
      throw InvalidParameter("MnaFactorization: symbolic carries unresolved Auto kernel");
    case Kernel::Dense: {
      // CSC holds each entry once, summed in insertion order — assembling the
      // dense matrix from it is bit-identical to stamping it directly.
      Matrix<double> m(a.n, a.n);
      for (std::size_t c = 0; c < a.n; ++c)
        for (std::int32_t k = a.col_ptr[c]; k < a.col_ptr[c + 1]; ++k)
          m(static_cast<std::size_t>(a.row_ind[static_cast<std::size_t>(k)]), c) =
              a.val[static_cast<std::size_t>(k)];
      dense_.emplace(std::move(m));
      break;
    }
    case Kernel::Banded:
      banded_.emplace(a, sym_->perm, sym_->kl, sym_->ku);
      break;
    case Kernel::Sparse:
      sparse_.emplace(a, sym_->colperm);
      break;
  }
}

void MnaFactorization::solve_into(const std::vector<double>& b, std::vector<double>& x) const {
  if (dense_) dense_->solve_into(b, x);
  else if (banded_) banded_->solve_into(b, x);
  else sparse_->solve_into(b, x);
}

std::size_t MnaFactorization::factor_nnz() const {
  if (dense_) return sym_->n * sym_->n;
  if (banded_) return banded_->factor_nnz();
  return sparse_->factor_nnz();
}

}  // namespace ivory::sparse
