// Piecewise-linear functions of one variable.
//
// Used for PWL sources in the circuit simulator, resampling workload power
// traces onto converter switching grids, and representing digitized reference
// curves in the validation benches.
#pragma once

#include <vector>

namespace ivory {

/// A piecewise-linear function defined by (x, y) breakpoints with strictly
/// increasing x. Evaluation outside the breakpoint range clamps to the end
/// values (the natural behaviour for both sources and traces).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;
  PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

  double operator()(double x) const;

  /// Integral over [a, b] (exact for the PWL representation).
  double integral(double a, double b) const;

  bool empty() const { return xs_.empty(); }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

/// Uniformly resamples f at n points on [a, b] (inclusive endpoints).
std::vector<double> sample_uniform(const PiecewiseLinear& f, double a, double b, int n);

}  // namespace ivory
