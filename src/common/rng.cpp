#include "common/rng.hpp"

#include <cmath>

#include "common/units.hpp"

namespace ivory {

double Pcg32::normal() {
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = uniform();
  while (u1 <= 1e-12) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * pi * u2);
}

}  // namespace ivory
