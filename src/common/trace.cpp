#include "common/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/json.hpp"
#include "common/metrics.hpp"

namespace ivory::trace {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("IVORY_TRACE");
    return !(env != nullptr && std::strcmp(env, "0") == 0);
  }()};
  return flag;
}

// Bounded ring under a mutex: spans are coarse (requests, batches, runs), so
// contention is negligible and a mutex keeps snapshot() trivially race-free
// under ThreadSanitizer — the lock-free budget is spent on the metric
// stripes, where the call rate is orders of magnitude higher.
// Storage grows lazily up to `cap` as spans land, so a process that records
// a handful of spans never pays for (or faults in) the full ring, and the
// first instrumented operation is not taxed with a megabyte resize.
struct Ring {
  std::mutex mu;
  std::size_t cap = 65536;    ///< maximum resident spans
  std::vector<Event> events;  ///< grows to cap, then becomes the ring storage
  std::size_t head = 0;       ///< next write position once full
  std::uint64_t total = 0;    ///< spans ever recorded since last clear
};

Ring& ring() {
  static Ring* r = new Ring;
  return *r;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch())
      .count();
}

void record(const char* name, std::int64_t start_us, std::int64_t dur_us) {
  if (name == nullptr || !enabled()) return;
  const unsigned tid = metrics::thread_index();
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.cap == 0) return;  // capacity 0: recording disabled
  if (r.events.size() < r.cap)
    r.events.push_back(Event{name, tid, start_us, dur_us});
  else
    r.events[r.head] = Event{name, tid, start_us, dur_us};
  r.head = (r.head + 1) % r.cap;
  ++r.total;
}

std::vector<Event> snapshot(std::uint64_t* dropped) {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  const std::size_t cap = r.cap;
  const std::size_t resident = static_cast<std::size_t>(
      r.total < static_cast<std::uint64_t>(cap) ? r.total : cap);
  if (dropped != nullptr) *dropped = r.total - resident;
  std::vector<Event> out;
  out.reserve(resident);
  // Oldest first: when full the oldest slot is the next write position.
  const std::size_t start = r.total >= cap ? r.head : 0;
  for (std::size_t i = 0; i < resident; ++i)
    out.push_back(r.events[(start + i) % cap]);
  return out;
}

std::string to_chrome_json() {
  std::uint64_t dropped = 0;
  const std::vector<Event> events = snapshot(&dropped);
  json::Value::Array arr;
  arr.reserve(events.size());
  for (const Event& e : events) {
    json::Value::Object o;
    o.emplace_back("name", std::string(e.name));
    o.emplace_back("ph", "X");  // complete event: ts + dur
    o.emplace_back("ts", static_cast<double>(e.start_us));
    o.emplace_back("dur", static_cast<double>(e.dur_us));
    o.emplace_back("pid", 1);
    o.emplace_back("tid", static_cast<std::uint64_t>(e.tid));
    arr.emplace_back(std::move(o));
  }
  json::Value::Object root;
  root.emplace_back("traceEvents", json::Value(std::move(arr)));
  root.emplace_back("displayTimeUnit", "ms");
  root.emplace_back("droppedEvents", dropped);
  return json::Value(std::move(root)).write();
}

void clear() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  r.events.clear();  // keeps the allocation; records append from slot 0 again
  r.head = 0;
  r.total = 0;
}

void set_capacity(std::size_t capacity) {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mu);
  r.cap = capacity;
  r.events.clear();
  r.events.shrink_to_fit();
  r.head = 0;
  r.total = 0;
}

}  // namespace ivory::trace
