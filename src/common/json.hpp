// Minimal strict JSON value type, parser and writer.
//
// The wire format of the batch-evaluation service (src/serve). Design goals,
// in order: (1) deterministic bytes — writing the same Value always produces
// the same string, and numbers use the shortest round-trip representation
// (std::to_chars), so canonical forms are stable enough to content-hash;
// (2) strictness — the parser rejects NaN/Inf (including literals that
// overflow double), duplicate object keys, nesting beyond a fixed depth,
// trailing garbage, malformed \u escapes (lone surrogates included) and raw
// control characters; (3) no dependencies beyond the standard library.
//
// Objects preserve insertion order; `write()` emits members in that order,
// `write_canonical()` sorts keys bytewise at every level (the form the result
// cache hashes). Both emit compact JSON (no whitespace).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace ivory::json {

/// Parse failure: names the byte offset and what was expected.
class ParseError : public InvalidParameter {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : InvalidParameter("json: " + what + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value;

/// One JSON document node. Small enough to pass by value in tests; request
/// bodies hold at most a few hundred nodes.
class Value {
 public:
  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;  ///< insertion order preserved

  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : v_(b) {}                // NOLINT(google-explicit-constructor)
  Value(double d) : v_(d) {}              // NOLINT(google-explicit-constructor)
  Value(int i) : v_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor)
  Value(std::uint64_t i) : v_(static_cast<double>(i)) {}  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  Value(std::string s) : v_(std::move(s)) {}    // NOLINT(google-explicit-constructor)
  Value(Array a) : v_(std::move(a)) {}          // NOLINT(google-explicit-constructor)
  Value(Object o) : v_(std::move(o)) {}         // NOLINT(google-explicit-constructor)

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_null() const { return kind() == Kind::Null; }
  bool is_bool() const { return kind() == Kind::Bool; }
  bool is_number() const { return kind() == Kind::Number; }
  bool is_string() const { return kind() == Kind::String; }
  bool is_array() const { return kind() == Kind::Array; }
  bool is_object() const { return kind() == Kind::Object; }

  /// Typed accessors; throw InvalidParameter on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup; nullptr when `this` is not an object or the key
  /// is absent.
  const Value* find(std::string_view key) const;

  /// Sets (replacing) an object member; `this` must be an object.
  void set(std::string key, Value v);

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Compact serialization, object members in insertion order. Throws
  /// NumericalError if any number is non-finite (the strict format has no
  /// representation for NaN/Inf).
  std::string write() const;

  /// Compact serialization with object keys sorted bytewise at every level —
  /// the canonical form the result cache hashes. Number formatting is
  /// identical to write() (shortest round-trip).
  std::string write_canonical() const;

  /// Strict parse of a complete document. `max_depth` bounds array/object
  /// nesting. Throws ParseError on any deviation.
  static Value parse(std::string_view text, std::size_t max_depth = 64);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string escape_string(std::string_view s);

/// Appends `d` to `out` in the exact spelling Value::write() uses (shortest
/// round-trip, std::to_chars). Exposed so streamed transports can render
/// number columns byte-identically to a whole-document write(). Throws
/// NumericalError on non-finite input.
void append_number(std::string& out, double d);

}  // namespace ivory::json
