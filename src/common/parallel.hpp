// Deterministic fork-join parallelism for the DSE sweeps.
//
// A single process-wide thread pool executes index-space loops
// (`parallel_for`) and ordered map operations (`parallel_map`). The design
// contract is *bit-identical results regardless of thread count*:
//
//  - every task is a pure function of its index (no RNG, no shared state),
//  - per-index results land in a pre-sized slot vector, and
//  - all reductions happen serially, in index order, on the calling thread.
//
// Scheduling is dynamic (atomic index grab with chunking) — which thread
// computes an index never affects the value stored for it, so dynamic
// scheduling does not threaten determinism.
//
// Nested parallelism is rejected from the pool: a `parallel_for` issued from
// inside a pool worker runs inline on that worker, serially. This keeps the
// outer `explore()` fan-out free to call `optimize_topology` (which has its
// own inner `parallel_for`) without deadlocking a bounded pool.
//
// Thread count: `IVORY_THREADS` env var if set (>= 1), otherwise
// `std::thread::hardware_concurrency()`. Tests may override at runtime with
// `set_global_threads`.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace ivory::par {

/// Thread count the global pool resolves on first use: `IVORY_THREADS` if
/// set to a positive integer, else `hardware_concurrency()` (min 1).
unsigned configured_threads();

/// Threads the global pool is currently running (1 means fully serial).
unsigned global_threads();

/// Replaces the global pool with one of `n` workers (n >= 1). Intended for
/// tests and benchmarks that compare scaling; must not be called from inside
/// a parallel region.
void set_global_threads(unsigned n);

/// True while the calling thread is executing a pool task. A `parallel_for`
/// issued in this state runs inline (serial) instead of re-entering the pool.
bool in_parallel_region();

/// Runs `fn(i)` for every i in [0, n). Blocks until all indices complete.
/// Exceptions thrown by tasks are captured and the one for the *lowest*
/// index is rethrown on the caller — deterministic error reporting.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Maps `fn` over [0, n) and returns the results in index order. `T` must be
/// default-constructible. Reduction over the returned vector (done by the
/// caller, serially) is then independent of the thread count by construction.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace ivory::par
