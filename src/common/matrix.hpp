// Dense matrix with LU factorization and least-squares solves.
//
// Ivory's linear-algebra needs are modest: MNA systems of a few hundred
// unknowns (real for DC/transient, complex for AC) and small least-squares
// systems for the charge-multiplier solver and polynomial fitting. A dense
// matrix with partial-pivoted LU and Householder QR covers all of them with
// no external dependencies.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace ivory {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Accumulating store: the MNA stamp helpers call this so the same
  /// templated stamping code drives both the dense matrix and the sparse
  /// triplet accumulator.
  void add(std::size_t r, std::size_t c, T v) { data_[r * cols_ + c] += v; }

  /// Matrix-vector product.
  std::vector<T> mul(const std::vector<T>& x) const {
    require(x.size() == cols_, "Matrix::mul: dimension mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      T acc{};
      for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
      y[r] = acc;
    }
    return y;
  }

  Matrix mul(const Matrix& b) const {
    require(b.rows() == cols_, "Matrix::mul: dimension mismatch");
    Matrix y(rows_, b.cols());
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = (*this)(r, k);
        if (a == T{}) continue;
        for (std::size_t c = 0; c < b.cols(); ++c) y(r, c) += a * b(k, c);
      }
    return y;
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

namespace detail {
inline double abs_val(double x) { return std::fabs(x); }
inline double abs_val(const std::complex<double>& x) { return std::abs(x); }
inline bool is_finite_val(double x) { return std::isfinite(x); }
inline bool is_finite_val(const std::complex<double>& x) {
  return std::isfinite(x.real()) && std::isfinite(x.imag());
}
}  // namespace detail

/// LU factorization with partial pivoting. Factorizes once; solves many
/// right-hand sides (the transient integrator reuses the factorization for
/// every accepted step with an unchanged conductance matrix).
template <typename T>
class LuFactorization {
 public:
  explicit LuFactorization(Matrix<T> a) : lu_(std::move(a)), piv_(lu_.rows()) {
    require(lu_.rows() == lu_.cols(), "LuFactorization: matrix must be square");
    const std::size_t n = lu_.rows();
    for (std::size_t i = 0; i < n; ++i) piv_[i] = i;
    for (std::size_t k = 0; k < n; ++k) {
      // Pivot selection.
      std::size_t p = k;
      double best = detail::abs_val(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const double v = detail::abs_val(lu_(i, k));
        if (v > best) {
          best = v;
          p = i;
        }
      }
      // Negated comparison so a NaN pivot column (non-finite input matrix)
      // is reported here instead of propagating NaN through the solve.
      if (!(best >= 1e-300))
        throw SingularMatrixError(
            "LuFactorization: singular or non-finite matrix (n=" + std::to_string(n) +
                ", pivot column " + std::to_string(k) + ")",
            n, k);
      if (p != k) {
        for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(p, c));
        std::swap(piv_[k], piv_[p]);
      }
      const T pivot = lu_(k, k);
      for (std::size_t i = k + 1; i < n; ++i) {
        const T m = lu_(i, k) / pivot;
        lu_(i, k) = m;
        if (m == T{}) continue;
        for (std::size_t c = k + 1; c < n; ++c) lu_(i, c) -= m * lu_(k, c);
      }
    }
  }

  std::vector<T> solve(const std::vector<T>& b) const {
    std::vector<T> x(lu_.rows());
    solve_into(b, x);
    return x;
  }

  /// Allocation-free solve: writes the solution into `x` (resized on first
  /// use, reused afterwards). `b` and `x` must not alias — the row
  /// permutation is applied while reading `b`. The transient integrator calls
  /// this once per step with hoisted buffers, keeping the inner loop free of
  /// heap traffic.
  void solve_into(const std::vector<T>& b, std::vector<T>& x) const {
    const std::size_t n = lu_.rows();
    require(b.size() == n, "LuFactorization::solve: dimension mismatch");
    require(&b != &x, "LuFactorization::solve_into: b and x must not alias");
    const double injected = fault::inject("lu_solve");
    x.resize(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
    if (n > 0) x[0] += T{injected};
    // Forward substitution (unit lower triangular).
    for (std::size_t i = 1; i < n; ++i) {
      T acc = x[i];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
      x[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
      x[ii] = acc / lu_(ii, ii);
    }
    for (std::size_t i = 0; i < n; ++i)
      if (!detail::is_finite_val(x[i]))
        throw NonFiniteError("LuFactorization::solve: non-finite solution component " +
                             std::to_string(i) + " (ill-conditioned or non-finite system)");
  }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> piv_;
};

/// Solves the square system a*x = b via LU.
template <typename T>
std::vector<T> solve_linear(Matrix<T> a, const std::vector<T>& b) {
  return LuFactorization<T>(std::move(a)).solve(b);
}

/// Minimum-residual solution of the (possibly overdetermined) system a*x = b
/// via Householder QR. For rank-deficient systems the caller gets a
/// NumericalError; Ivory's charge-flow systems are full rank for well-posed
/// switched-capacitor topologies.
std::vector<double> solve_least_squares(const Matrix<double>& a, const std::vector<double>& b);

/// Residual 2-norm ||a*x - b||.
double residual_norm(const Matrix<double>& a, const std::vector<double>& x,
                     const std::vector<double>& b);

/// Minimum-norm least-squares solution of a*x = b, tolerant of rank
/// deficiency (ridge-regularized normal equations with iterative
/// refinement). Used by the charge-multiplier solver, where topologies with
/// capacitors in parallel produce structurally rank-deficient charge-flow
/// systems whose physical solution (equal split among equal capacitors) is
/// exactly the minimum-norm one.
std::vector<double> solve_min_norm(const Matrix<double>& a, const std::vector<double>& b);

}  // namespace ivory
