#include "common/fault.hpp"

#include <limits>
#include <map>
#include <mutex>

#include "common/error.hpp"

namespace ivory::fault {

namespace detail {
std::atomic<int> g_armed_sites{0};
}  // namespace detail

namespace {

struct SiteState {
  Action action = Action::Throw;
  bool probabilistic = false;
  std::uint64_t on_hit = 0;     // k-th-hit mode
  double probability = 0.0;     // probability mode
  std::uint64_t seed = 0;
  std::uint64_t serial_hits = 0;  // hits outside any pool task
  std::uint64_t trips = 0;
};

std::mutex g_mutex;

std::map<std::string, SiteState>& registry() {
  static std::map<std::string, SiteState> r;
  return r;
}

// Hit stream of the pool task currently running on this thread. Task-scoped
// counters start empty at each TaskScope, so the hit index a probe sees
// depends only on the task's own (serial, deterministic) execution.
struct TaskCtx {
  bool active = false;
  std::uint64_t id = 0;
  std::map<std::string, std::uint64_t> hits;
};
thread_local TaskCtx t_task;

constexpr std::uint64_t kSerialTask = ~std::uint64_t{0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (; *s; ++s) h = (h ^ static_cast<unsigned char>(*s)) * 1099511628211ULL;
  return h;
}

void arm(const std::string& site, SiteState s) {
  require(!site.empty(), "fault::arm: site name must be non-empty");
  std::lock_guard<std::mutex> lock(g_mutex);
  registry()[site] = s;  // re-arming resets hit and trip counters
  detail::g_armed_sites.store(static_cast<int>(registry().size()), std::memory_order_relaxed);
}

}  // namespace

void arm_on_hit(const std::string& site, Action action, std::uint64_t k) {
  require(k >= 1, "fault::arm_on_hit: hit index is 1-based");
  SiteState s;
  s.action = action;
  s.on_hit = k;
  arm(site, s);
}

void arm_probability(const std::string& site, Action action, double p, std::uint64_t seed) {
  require(p >= 0.0 && p <= 1.0, "fault::arm_probability: p must be in [0, 1]");
  SiteState s;
  s.action = action;
  s.probabilistic = true;
  s.probability = p;
  s.seed = seed;
  arm(site, s);
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  registry().erase(site);
  detail::g_armed_sites.store(static_cast<int>(registry().size()), std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  registry().clear();
  detail::g_armed_sites.store(0, std::memory_order_relaxed);
}

void reset_hits() {
  std::lock_guard<std::mutex> lock(g_mutex);
  for (auto& [site, s] : registry()) s.serial_hits = 0;
}

bool any_armed() {
  return detail::g_armed_sites.load(std::memory_order_relaxed) != 0;
}

std::uint64_t trip_count(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = registry().find(site);
  return it == registry().end() ? 0 : it->second.trips;
}

namespace detail {

double inject_slow(const char* site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = registry().find(site);
  if (it == registry().end()) return 0.0;
  SiteState& s = it->second;

  const std::uint64_t task = t_task.active ? t_task.id : kSerialTask;
  std::uint64_t& counter = t_task.active ? t_task.hits[site] : s.serial_hits;
  const std::uint64_t hit = ++counter;

  bool fire;
  if (s.probabilistic) {
    // Pure function of (seed, site, task, hit): identical decisions at any
    // thread count, and unaffected by which other sites are armed.
    const std::uint64_t h = splitmix64(s.seed ^ fnv1a(site) ^ splitmix64(task) ^
                                       splitmix64(hit * 0x632be59bd9b4e019ULL));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    fire = u < s.probability;
  } else {
    fire = hit == s.on_hit;
  }
  if (!fire) return 0.0;

  ++s.trips;
  if (s.action == Action::EmitNan) return std::numeric_limits<double>::quiet_NaN();
  throw NumericalError(std::string("fault-injection: site '") + site +
                       "' armed to throw (task " +
                       (task == kSerialTask ? std::string("serial") : std::to_string(task)) +
                       ", hit " + std::to_string(hit) + ")");
}

}  // namespace detail

TaskScope::TaskScope(std::uint64_t task_index) {
  if (detail::g_armed_sites.load(std::memory_order_relaxed) == 0) return;
  // Tasks don't nest: nested parallel regions run inline and inherit the
  // enclosing task's stream, so an active context here would be a pool bug.
  if (t_task.active) return;
  t_task.active = true;
  t_task.id = task_index;
  t_task.hits.clear();
  engaged_ = true;
}

TaskScope::~TaskScope() {
  if (!engaged_) return;
  t_task.active = false;
  t_task.hits.clear();
}

}  // namespace ivory::fault
