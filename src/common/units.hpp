// Unit helpers and physical constants used across Ivory.
//
// All internal computation is in SI base units (volts, amps, ohms, farads,
// henries, seconds, hertz, watts, square metres). The literals below exist so
// that model code and tests can state magnitudes the way the paper does
// (nF/mm^2, mOhm, MHz, ...) without sprinkling powers of ten around.
#pragma once

namespace ivory {

inline constexpr double kilo  = 1e3;
inline constexpr double mega  = 1e6;
inline constexpr double giga  = 1e9;
inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano  = 1e-9;
inline constexpr double pico  = 1e-12;
inline constexpr double femto = 1e-15;

/// Square millimetres -> square metres.
inline constexpr double mm2 = 1e-6;

/// Boltzmann constant [J/K].
inline constexpr double k_boltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double q_electron = 1.602176634e-19;
/// Thermal voltage at 300 K [V].
inline constexpr double vt_300k = 0.02585;

inline constexpr double pi = 3.14159265358979323846;

}  // namespace ivory
