// Error handling for Ivory.
//
// Per the C++ Core Guidelines (E.2) we throw exceptions to signal that a
// function cannot perform its task. Every throwing site in Ivory uses one of
// the domain exception types below so callers can distinguish bad user input
// from numerical failure.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace ivory {

/// Invalid user-supplied parameters (negative capacitance, Vout > Vin for a
/// step-down converter, empty trace, ...).
class InvalidParameter : public std::invalid_argument {
 public:
  explicit InvalidParameter(const std::string& what) : std::invalid_argument(what) {}
};

/// A numerical routine failed to produce a usable answer (singular matrix,
/// non-convergent transient, ...).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// A netlist or model is structurally malformed (dangling node, unknown
/// element, phase graph without a path to the output, ...).
class StructuralError : public std::runtime_error {
 public:
  explicit StructuralError(const std::string& what) : std::runtime_error(what) {}
};

/// LU factorization hit a zero (or non-finite) pivot. Carries the matrix
/// dimension and the offending pivot column (in the caller's original index
/// space) so the analysis layer can name the MNA unknown behind it.
class SingularMatrixError : public NumericalError {
 public:
  SingularMatrixError(const std::string& what, std::size_t dim, std::size_t pivot_col)
      : NumericalError(what), dim_(dim), pivot_col_(pivot_col) {}

  std::size_t dim() const { return dim_; }
  std::size_t pivot_col() const { return pivot_col_; }

 private:
  std::size_t dim_;
  std::size_t pivot_col_;
};

/// A NaN or Inf crossed a guarded model boundary. Distinguished from the
/// general NumericalError so sweep reports can separate "solver gave up"
/// from "a model silently produced garbage".
class NonFiniteError : public NumericalError {
 public:
  explicit NonFiniteError(const std::string& what) : NumericalError(what) {}
};

/// Throws InvalidParameter with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidParameter(msg);
}

/// Returns `v` unchanged when finite; otherwise throws NonFiniteError naming
/// `site`. Placed at model boundaries so NaN/Inf surfaces as a contextful
/// error instead of silently poisoning downstream rankings.
inline double check_finite(double v, const char* site) {
  if (!std::isfinite(v))
    throw NonFiniteError(std::string(site) + ": non-finite value (" +
                         (std::isnan(v) ? "NaN" : "Inf") + ")");
  return v;
}

inline std::complex<double> check_finite(std::complex<double> v, const char* site) {
  if (!std::isfinite(v.real()) || !std::isfinite(v.imag()))
    throw NonFiniteError(std::string(site) + ": non-finite complex value");
  return v;
}

/// Vector overload: names the first offending index.
inline const std::vector<double>& check_finite(const std::vector<double>& v,
                                               const char* site) {
  for (std::size_t i = 0; i < v.size(); ++i)
    if (!std::isfinite(v[i]))
      throw NonFiniteError(std::string(site) + ": non-finite value (" +
                           (std::isnan(v[i]) ? "NaN" : "Inf") + ") at index " +
                           std::to_string(i) + " of " + std::to_string(v.size()));
  return v;
}

/// Boundary-guard macro: annotates the site string with the guarded
/// expression, e.g. IVORY_CHECK_FINITE(a.rout_ohm, "analyze_sc") throws
/// "analyze_sc [a.rout_ohm]: non-finite value (NaN)".
#define IVORY_CHECK_FINITE(expr, site) ::ivory::check_finite((expr), site " [" #expr "]")

}  // namespace ivory
