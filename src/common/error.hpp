// Error handling for Ivory.
//
// Per the C++ Core Guidelines (E.2) we throw exceptions to signal that a
// function cannot perform its task. Every throwing site in Ivory uses one of
// the domain exception types below so callers can distinguish bad user input
// from numerical failure.
#pragma once

#include <stdexcept>
#include <string>

namespace ivory {

/// Invalid user-supplied parameters (negative capacitance, Vout > Vin for a
/// step-down converter, empty trace, ...).
class InvalidParameter : public std::invalid_argument {
 public:
  explicit InvalidParameter(const std::string& what) : std::invalid_argument(what) {}
};

/// A numerical routine failed to produce a usable answer (singular matrix,
/// non-convergent transient, ...).
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// A netlist or model is structurally malformed (dangling node, unknown
/// element, phase graph without a path to the output, ...).
class StructuralError : public std::runtime_error {
 public:
  explicit StructuralError(const std::string& what) : std::runtime_error(what) {}
};

/// Throws InvalidParameter with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidParameter(msg);
}

}  // namespace ivory
