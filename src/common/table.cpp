#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace ivory {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "TextTable: row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string TextTable::si(double v, const std::string& unit, int precision) {
  static const struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {{1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
                   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}};
  const double mag = std::fabs(v);
  if (mag == 0.0) return "0 " + unit;
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.9999) {
      return num(v / p.scale, precision) + " " + p.prefix + unit;
    }
  }
  return num(v, precision) + " " + unit;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|";
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace ivory
