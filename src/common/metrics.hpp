// Process-wide observability primitives: a metrics registry of monotonic
// counters, gauges and fixed-bucket latency histograms.
//
// Design goals, in order:
//
//  1. *Never perturb results.* No metric feeds back into any computation;
//     every existing output (batch NDJSON, transient waveforms, DSE reports)
//     is byte-identical with metrics enabled, runtime-disabled, or compiled
//     out. Tests lock this down (tests/test_observability.cpp).
//  2. *Cheap on the hot path.* Counter increments are a relaxed fetch_add on
//     one of a small set of cacheline-padded per-thread stripes — lock-free,
//     no false sharing between pool workers. Aggregation (summing the
//     stripes) happens only on read. Instrumentation sites sit at batch /
//     request / run granularity, never inside per-step loops: the transient
//     engine accumulates its counters locally (TranResult snapshots) and
//     folds them into the registry once per run.
//  3. *Deterministic where the computation is.* Counter values are exact sums
//     of the work performed, so a serial section produces byte-identical
//     counter values across runs; a parallel section produces identical
//     totals at any thread count (per-stripe distribution varies, the sum
//     does not). Latency histograms and gauges are time-dependent by nature
//     and carry no determinism contract.
//
// Compile-time kill switch: building with -DIVORY_NO_METRICS turns every
// type in this header into a zero-cost stub (empty structs, no-op inline
// methods, empty registry output) — the A/B the perf-smoke overhead check
// compares against. A runtime switch (`set_enabled(false)`, or environment
// `IVORY_METRICS=0`) short-circuits recording without recompiling.
//
// Naming: dotted lowercase paths ("serve.cache.hits"). The Prometheus
// renderer mangles '.' to '_' to satisfy the exposition-format grammar.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace ivory::metrics {

/// Stable small integer id of the calling thread (assigned on first use,
/// monotonically). Shared by the metric stripes and the span tracer.
unsigned thread_index();

/// Runtime kill switch. Defaults to on unless the environment sets
/// IVORY_METRICS=0. Disabling stops recording; already-recorded values remain
/// readable.
bool enabled();
void set_enabled(bool on);

#if !defined(IVORY_NO_METRICS)

/// Stripe count for the lock-free fast path. Threads map onto stripes by
/// index modulo; totals are exact regardless of the mapping.
inline constexpr std::size_t kStripes = 16;

namespace detail {
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
inline std::size_t stripe() { return thread_index() % kStripes; }
}  // namespace detail

/// Monotonic counter. add() is lock-free (relaxed fetch_add on the calling
/// thread's stripe); value() sums the stripes.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    slots_[detail::stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedU64 slots_[kStripes];
};

/// Last-write-wins signed gauge (queue depths, thread counts, high-water
/// marks via set_max).
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (!enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if below (monotonic high-water mark).
  void set_max(std::int64_t v) {
    if (!enabled()) return;
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram. Bucket upper bounds are set at registration and
/// immutable; observe() finds the bucket by linear scan (bound counts are
/// single digits) and bumps a striped counter, plus a striped sum (bit-cast
/// CAS — doubles have no atomic fetch_add pre-C++20 on all toolchains).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        ///< finite upper bounds, ascending
    std::vector<std::uint64_t> counts; ///< per-bucket (bounds.size()+1: +inf last)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  void reset();

  /// Default latency bucket bounds in milliseconds: 0.01 .. 10000, decades
  /// split 1/2.5/5.
  static std::vector<double> default_latency_bounds_ms();

 private:
  std::vector<double> bounds_;
  /// counts_[bucket * kStripes + stripe]; last bucket row is +inf.
  std::vector<detail::PaddedU64> counts_;
  detail::PaddedU64 sums_[kStripes];  ///< double bits accumulated via CAS
};

#else  // IVORY_NO_METRICS: zero-cost stubs with the same surface.

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  void set_max(std::int64_t) {}
  std::int64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double>) {}
  void observe(double) {}
  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const { return {}; }
  void reset() {}
  static std::vector<double> default_latency_bounds_ms() { return {}; }
};

#endif  // IVORY_NO_METRICS

/// Process-wide named-metric registry. Registration (first call for a name)
/// takes a mutex; the returned reference is stable for the process lifetime,
/// so call sites cache it in a function-local static and hit only the
/// lock-free recording path afterwards.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Registers with explicit bucket bounds (ignored if already registered).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  Histogram& histogram(std::string_view name) {
    return histogram(name, Histogram::default_latency_bounds_ms());
  }

  /// Canonical JSON snapshot:
  ///   {"counters":{name:value,...},
  ///    "gauges":{name:value,...},
  ///    "histograms":{name:{"buckets":[{"le":b,"count":c},...],
  ///                        "count":n,"sum":s},...}}
  /// Keys sort bytewise when written with write_canonical(); bucket counts
  /// are cumulative (Prometheus convention); the final +inf bucket is the
  /// total "count" member (JSON has no Inf literal).
  json::Value to_json() const;

  /// Zeroes every registered metric (tests; registration survives).
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
  mutable std::unique_ptr<Impl> impl_;

 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
};

/// The process-wide registry every layer instruments into.
Registry& registry();

/// Prometheus text exposition (version 0.0.4) of a registry JSON snapshot:
/// `# TYPE` lines, '.'->'_' name mangling, histogram `_bucket{le="..."}` /
/// `_sum` / `_count` series. Taking the JSON form (rather than the Registry)
/// lets `ivory metrics` render a snapshot fetched from a remote server.
std::string render_prometheus(const json::Value& snapshot);

/// render_prometheus(registry().to_json()) convenience.
std::string render_prometheus();

}  // namespace ivory::metrics
