#include "common/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace ivory::par {

namespace {

thread_local bool t_in_region = false;

// One fork-join batch: workers grab chunks of [0, n) until exhausted. The
// batch lives on the submitting thread's stack, so `run` may not return
// until every worker has both finished its indices *and* released its
// pointer to the batch (`active` == 0).
struct Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  /// When the batch became visible to workers; each worker's pickup latency
  /// against this is the pool's queue-wait metric.
  std::chrono::steady_clock::time_point published{};
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<unsigned> active{0};

  std::mutex err_mutex;
  std::exception_ptr error;
  std::size_t error_index = 0;

  std::mutex done_mutex;
  std::condition_variable done_cv;

  void record_error(std::size_t index, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(err_mutex);
    if (!error || index < error_index) {
      error = std::move(e);
      error_index = index;
    }
  }

  bool complete() {
    return done.load(std::memory_order_acquire) == n &&
           active.load(std::memory_order_acquire) == 0;
  }

  void notify() {
    std::lock_guard<std::mutex> lock(done_mutex);
    done_cv.notify_all();
  }

  // Processes chunks until the index space is drained.
  void work() {
    const bool was = t_in_region;
    t_in_region = true;
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          // Attribute fault-injection hit counting to the task index so
          // injected failures land on the same tasks at any thread count.
          fault::TaskScope fault_scope(i);
          (*fn)(i);
        } catch (...) {
          record_error(i, std::current_exception());
        }
      }
      if (done.fetch_add(end - begin, std::memory_order_acq_rel) + (end - begin) == n) notify();
    }
    t_in_region = was;
  }

  void wait() {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return complete(); });
  }
};

class ThreadPool {
 public:
  explicit ThreadPool(unsigned n_threads) : size_(n_threads < 1 ? 1 : n_threads) {
    // The submitting thread acts as worker 0; spawn only size_-1 extras.
    workers_.reserve(size_ - 1);
    for (unsigned t = 0; t + 1 < size_; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  unsigned size() const { return size_; }

  void run(Batch& batch) {
    batch.published = std::chrono::steady_clock::now();
    if (size_ > 1) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        current_ = &batch;
        ++generation_;
      }
      cv_.notify_all();
    }
    batch.work();  // The caller participates.
    if (size_ > 1) {
      // Retract the batch so late-waking workers cannot pick it up, then
      // wait for the ones that did to let go of it.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        current_ = nullptr;
      }
      batch.wait();
    }
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stopping_ || (current_ && generation_ != seen); });
        if (stopping_) return;
        batch = current_;
        seen = generation_;
        batch->active.fetch_add(1, std::memory_order_acq_rel);
      }
      // Pickup latency: how long the batch sat published before this worker
      // reached it (scheduler wake + contention, the pool's "queue wait").
      static metrics::Histogram& queue_wait =
          metrics::registry().histogram("pool.queue_wait_ms");
      queue_wait.observe(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - batch->published)
                             .count());
      batch->work();
      if (batch->active.fetch_sub(1, std::memory_order_acq_rel) == 1) batch->notify();
    }
  }

  const unsigned size_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  Batch* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
};

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(configured_threads());
  return *g_pool;
}

}  // namespace

unsigned configured_threads() {
  if (const char* env = std::getenv("IVORY_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

unsigned global_threads() { return global_pool().size(); }

void set_global_threads(unsigned n) {
  require(n >= 1, "set_global_threads: thread count must be >= 1");
  require(!t_in_region, "set_global_threads: cannot resize the pool from a parallel region");
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool && g_pool->size() == n) return;
  g_pool.reset();  // Join the old workers before spawning the replacement.
  g_pool = std::make_unique<ThreadPool>(n);
}

bool in_parallel_region() { return t_in_region; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (t_in_region || n == 1) {
    // Nested region (or trivial loop): rejected from the pool — runs inline,
    // serially, on the calling thread. See the header for why.
    static metrics::Counter& inline_batches =
        metrics::registry().counter("pool.inline_batches");
    static metrics::Counter& inline_indices =
        metrics::registry().counter("pool.inline_indices");
    inline_batches.add();
    inline_indices.add(n);
    const bool was = t_in_region;
    t_in_region = true;
    try {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    } catch (...) {
      t_in_region = was;
      throw;
    }
    t_in_region = was;
    return;
  }

  static metrics::Counter& batches = metrics::registry().counter("pool.batches");
  static metrics::Counter& indices = metrics::registry().counter("pool.indices");
  static metrics::Histogram& batch_ms = metrics::registry().histogram("pool.batch_ms");
  batches.add();
  indices.add(n);
  IVORY_TRACE("pool.parallel_for");
  const auto t0 = std::chrono::steady_clock::now();

  ThreadPool& pool = global_pool();
  metrics::registry().gauge("pool.threads").set(static_cast<std::int64_t>(pool.size()));
  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  // A few chunks per worker: dynamic load balance without contention. Which
  // thread runs which chunk never affects results — slots are per-index and
  // reductions are serial.
  batch.chunk = std::max<std::size_t>(1, n / (4 * static_cast<std::size_t>(pool.size())));
  pool.run(batch);
  batch_ms.observe(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace ivory::par
