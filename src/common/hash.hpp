// Content hashing for the result cache.
//
// 64-bit FNV-1a over bytes: tiny, dependency-free, deterministic across
// platforms and runs — exactly what a content-addressed cache key needs
// (cryptographic strength is not required; the cache stores the full
// canonical key alongside the hash and compares it on lookup, so a hash
// collision costs a miss, never a wrong answer).
#pragma once

#include <cstdint>
#include <string_view>

namespace ivory {

inline constexpr std::uint64_t kFnv1a64Offset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

/// FNV-1a over `bytes`, continuing from `seed` (chainable).
constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnv1a64Offset) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace ivory
