#include "common/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "common/error.hpp"

namespace ivory::metrics {

unsigned thread_index() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("IVORY_METRICS");
    return !(env != nullptr && std::strcmp(env, "0") == 0);
  }()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

#if !defined(IVORY_NO_METRICS)

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  require(std::is_sorted(bounds_.begin(), bounds_.end()),
          "metrics: histogram bounds must be ascending");
  counts_ = std::vector<detail::PaddedU64>((bounds_.size() + 1) * kStripes);
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  std::size_t bucket = 0;
  while (bucket < bounds_.size() && v > bounds_[bucket]) ++bucket;
  const std::size_t s = detail::stripe();
  counts_[bucket * kStripes + s].v.fetch_add(1, std::memory_order_relaxed);
  // Accumulate the sum through a bit-cast CAS loop: atomic<double> fetch_add
  // is not universally available, and contention here is one-per-observe on
  // a private stripe.
  std::atomic<std::uint64_t>& cell = sums_[s].v;
  std::uint64_t old_bits = cell.load(std::memory_order_relaxed);
  for (;;) {
    double d;
    std::memcpy(&d, &old_bits, sizeof d);
    d += v;
    std::uint64_t new_bits;
    std::memcpy(&new_bits, &d, sizeof new_bits);
    if (cell.compare_exchange_weak(old_bits, new_bits, std::memory_order_relaxed)) break;
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t b = 0; b < out.counts.size(); ++b)
    for (std::size_t s = 0; s < kStripes; ++s)
      out.counts[b] += counts_[b * kStripes + s].v.load(std::memory_order_relaxed);
  for (const std::uint64_t c : out.counts) out.count += c;
  for (std::size_t s = 0; s < kStripes; ++s) {
    const std::uint64_t bits = sums_[s].v.load(std::memory_order_relaxed);
    double d;
    std::memcpy(&d, &bits, sizeof d);
    out.sum += d;
  }
  return out;
}

void Histogram::reset() {
  for (auto& c : counts_) c.v.store(0, std::memory_order_relaxed);
  for (auto& s : sums_) s.v.store(0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_latency_bounds_ms() {
  std::vector<double> b;
  for (double decade = 0.01; decade < 1e4 * 1.0001; decade *= 10.0) {
    b.push_back(decade);
    b.push_back(decade * 2.5);
    b.push_back(decade * 5.0);
  }
  b.pop_back();  // trim above 1e4
  b.pop_back();
  return b;  // 0.01 .. 10000 ms
}

#endif  // !IVORY_NO_METRICS

// The registry itself is identical in both builds; in the IVORY_NO_METRICS
// build it hands out stub metrics and renders empty sections, so exposition
// surfaces (`ivory metrics`, the serve "metrics" op) stay wire-compatible.
struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: deterministic (sorted) iteration for JSON output, and node
  // stability so handed-out references survive later registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;
Registry::Impl& Registry::impl() const { return *impl_; }

Counter& Registry::counter(std::string_view name) {
#if defined(IVORY_NO_METRICS)
  (void)name;
  static Counter stub;
  return stub;
#else
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.counters[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
#endif
}

Gauge& Registry::gauge(std::string_view name) {
#if defined(IVORY_NO_METRICS)
  (void)name;
  static Gauge stub;
  return stub;
#else
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.gauges[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
#endif
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
#if defined(IVORY_NO_METRICS)
  (void)name;
  static Histogram stub{std::move(bounds)};
  return stub;
#else
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto& slot = im.histograms[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
#endif
}

json::Value Registry::to_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  json::Value::Object counters;
  for (const auto& [name, c] : im.counters) counters.emplace_back(name, c->value());
  json::Value::Object gauges;
  for (const auto& [name, g] : im.gauges)
    gauges.emplace_back(name, static_cast<double>(g->value()));
  json::Value::Object histograms;
  for (const auto& [name, h] : im.histograms) {
    const Histogram::Snapshot s = h->snapshot();
    json::Value::Array buckets;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < s.bounds.size(); ++b) {
      cumulative += s.counts[b];
      json::Value::Object bucket;
      bucket.emplace_back("le", s.bounds[b]);
      bucket.emplace_back("count", cumulative);
      buckets.emplace_back(std::move(bucket));
    }
    json::Value::Object o;
    o.emplace_back("buckets", json::Value(std::move(buckets)));
    o.emplace_back("count", s.count);  // == the +inf cumulative bucket
    o.emplace_back("sum", s.sum);
    histograms.emplace_back(name, json::Value(std::move(o)));
  }
  json::Value::Object root;
  root.emplace_back("counters", json::Value(std::move(counters)));
  root.emplace_back("gauges", json::Value(std::move(gauges)));
  root.emplace_back("histograms", json::Value(std::move(histograms)));
  return json::Value(std::move(root));
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

Registry& registry() {
  static Registry r;
  return r;
}

namespace {

/// Prometheus metric names: '.' and any other non-[a-zA-Z0-9_:] byte
/// becomes '_'; a leading digit gains a '_' prefix.
std::string mangle(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') out.push_back('_');
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string format_number(double v) {
  // Reuse the codec's shortest-round-trip formatting for value bytes.
  return json::Value(v).write();
}

}  // namespace

std::string render_prometheus(const json::Value& snapshot) {
  require(snapshot.is_object(), "render_prometheus: snapshot must be an object");
  std::string out;
  const auto section = [&](const char* key) -> const json::Value::Object* {
    const json::Value* v = snapshot.find(key);
    return v != nullptr && v->is_object() ? &v->as_object() : nullptr;
  };
  if (const json::Value::Object* counters = section("counters"))
    for (const auto& [name, v] : *counters) {
      const std::string m = mangle(name);
      out += "# TYPE " + m + " counter\n";
      out += m + " " + format_number(v.as_number()) + "\n";
    }
  if (const json::Value::Object* gauges = section("gauges"))
    for (const auto& [name, v] : *gauges) {
      const std::string m = mangle(name);
      out += "# TYPE " + m + " gauge\n";
      out += m + " " + format_number(v.as_number()) + "\n";
    }
  if (const json::Value::Object* histograms = section("histograms"))
    for (const auto& [name, v] : *histograms) {
      const std::string m = mangle(name);
      out += "# TYPE " + m + " histogram\n";
      if (const json::Value* buckets = v.find("buckets"))
        for (const json::Value& b : buckets->as_array()) {
          out += m + "_bucket{le=\"" + format_number(b.find("le")->as_number()) + "\"} " +
                 format_number(b.find("count")->as_number()) + "\n";
        }
      const json::Value* count = v.find("count");
      const json::Value* sum = v.find("sum");
      require(count != nullptr && sum != nullptr,
              "render_prometheus: histogram entry missing count/sum");
      out += m + "_bucket{le=\"+Inf\"} " + format_number(count->as_number()) + "\n";
      out += m + "_sum " + format_number(sum->as_number()) + "\n";
      out += m + "_count " + format_number(count->as_number()) + "\n";
    }
  return out;
}

std::string render_prometheus() { return render_prometheus(registry().to_json()); }

}  // namespace ivory::metrics
