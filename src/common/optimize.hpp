// Scalar optimization and root finding used by the design modules.
#pragma once

#include <functional>

namespace ivory {

/// Result of a 1-D optimization.
struct ScalarOptimum {
  double x = 0.0;  ///< Arg-optimum.
  double f = 0.0;  ///< Objective value at x.
};

/// Minimizes f on [lo, hi] by golden-section search. f must be unimodal on
/// the interval for a guaranteed global answer; Ivory's per-frequency loss
/// curves are.
ScalarOptimum golden_minimize(const std::function<double(double)>& f, double lo, double hi,
                              double tol = 1e-9, int max_iter = 200);

/// Maximizes f on [lo, hi] (golden section on -f).
ScalarOptimum golden_maximize(const std::function<double(double)>& f, double lo, double hi,
                              double tol = 1e-9, int max_iter = 200);

/// Minimizes f over a log-spaced grid of `n` points on [lo, hi] followed by a
/// golden-section refinement around the best grid cell. Robust when f is only
/// piecewise smooth (e.g. efficiency with discrete feasibility cliffs).
ScalarOptimum log_grid_minimize(const std::function<double(double)>& f, double lo, double hi,
                                int n = 64);

/// Root of f on [lo, hi] by bisection. f(lo) and f(hi) must have opposite
/// signs.
double bisect_root(const std::function<double(double)>& f, double lo, double hi,
                   double tol = 1e-12, int max_iter = 200);

}  // namespace ivory
