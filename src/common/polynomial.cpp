#include "common/polynomial.hpp"

#include "common/error.hpp"
#include "common/matrix.hpp"

namespace ivory {

Polynomial::Polynomial(std::vector<double> coeffs) : coeffs_(std::move(coeffs)) {
  require(!coeffs_.empty(), "Polynomial: coefficient vector must not be empty");
}

double Polynomial::operator()(double x) const {
  double acc = 0.0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) acc = acc * x + coeffs_[i];
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coeffs_.size() <= 1) return Polynomial({0.0});
  std::vector<double> d(coeffs_.size() - 1);
  for (std::size_t i = 1; i < coeffs_.size(); ++i) d[i - 1] = coeffs_[i] * static_cast<double>(i);
  return Polynomial(std::move(d));
}

Polynomial polyfit(const std::vector<double>& x, const std::vector<double>& y,
                   std::size_t degree) {
  require(x.size() == y.size(), "polyfit: x and y must have the same length");
  require(x.size() >= degree + 1, "polyfit: need at least degree+1 points");
  Matrix<double> vand(x.size(), degree + 1);
  for (std::size_t r = 0; r < x.size(); ++r) {
    double p = 1.0;
    for (std::size_t c = 0; c <= degree; ++c) {
      vand(r, c) = p;
      p *= x[r];
    }
  }
  return Polynomial(solve_least_squares(vand, y));
}

}  // namespace ivory
