#include "common/matrix.hpp"

#include <cmath>

namespace ivory {

std::vector<double> solve_least_squares(const Matrix<double>& a, const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  require(b.size() == m, "solve_least_squares: dimension mismatch");
  require(m >= n, "solve_least_squares: system must have rows >= cols");

  // Householder QR applied in place to a working copy [R | Q^T b].
  Matrix<double> r = a;
  std::vector<double> y = b;
  if (m > 0) y[0] += fault::inject("least_squares");

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-300) throw NumericalError("solve_least_squares: rank-deficient matrix");
    if (r(k, k) > 0.0) norm = -norm;

    std::vector<double> v(m - k);
    v[0] = r(k, k) - norm;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv < 1e-300) continue;  // Column already triangular.

    // Apply H = I - 2 v v^T / (v^T v) to the remaining columns and to y.
    for (std::size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, c);
      const double s = 2.0 * dot / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= s * v[i - k];
    }
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * y[i];
    const double s = 2.0 * dot / vtv;
    for (std::size_t i = k; i < m; ++i) y[i] -= s * v[i - k];
  }

  // Back substitution on the upper-triangular R.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * x[j];
    if (std::fabs(r(ii, ii)) < 1e-300)
      throw NumericalError("solve_least_squares: rank-deficient matrix");
    x[ii] = acc / r(ii, ii);
  }
  return check_finite(x, "solve_least_squares: solution");
}

std::vector<double> solve_min_norm(const Matrix<double>& a, const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  require(b.size() == m, "solve_min_norm: dimension mismatch");

  // Normal equations with a tiny ridge: (A^T A + lambda I) x = A^T b.
  Matrix<double> ata = a.transposed().mul(a);
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, ata(i, i));
  if (max_diag <= 0.0) throw NumericalError("solve_min_norm: zero matrix");
  const double lambda = 1e-10 * max_diag;
  for (std::size_t i = 0; i < n; ++i) ata(i, i) += lambda;
  const LuFactorization<double> lu(std::move(ata));

  auto atv = [&](const std::vector<double>& v) {
    std::vector<double> out(n, 0.0);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c) out[c] += a(r, c) * v[r];
    return out;
  };

  std::vector<double> x = lu.solve(atv(b));
  // Two refinement steps push the ridge bias well below solver tolerance.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<double> r = a.mul(x);
    for (std::size_t i = 0; i < m; ++i) r[i] = b[i] - r[i];
    const std::vector<double> dx = lu.solve(atv(r));
    for (std::size_t i = 0; i < n; ++i) x[i] += dx[i];
  }
  return x;
}

double residual_norm(const Matrix<double>& a, const std::vector<double>& x,
                     const std::vector<double>& b) {
  const std::vector<double> ax = a.mul(x);
  double acc = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double d = ax[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace ivory
