#include "spice/parser.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "spice/phase_clock.hpp"

namespace ivory::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw StructuralError("netlist line " + std::to_string(line) + ": " + msg);
}

// Splits a line into tokens, treating '(' ')' ',' '=' as separators that are
// themselves dropped (so "PULSE(0 1 0 ...)" and "IC=1.2" tokenize cleanly —
// IC becomes the token "ic" followed by its value).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == '(' || ch == ')' || ch == ',' ||
        ch == '=') {
      if (!cur.empty()) {
        out.push_back(lower(cur));
        cur.clear();
      }
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(lower(cur));
  return out;
}

// Wraps parse_spice_value so a bad token surfaces as a StructuralError that
// names the line, the role of the value, and the offending token itself —
// "netlist line 7: bad resistance token '1x5': ...".
double value_at(const std::vector<std::string>& tok, std::size_t i, int line, const char* what) {
  if (i >= tok.size()) fail(line, std::string("missing ") + what + " token (line has only " +
                                      std::to_string(tok.size()) + " tokens)");
  try {
    return parse_spice_value(tok[i]);
  } catch (const std::exception& e) {
    fail(line, std::string("bad ") + what + " token '" + tok[i] + "': " + e.what());
  }
}

}  // namespace

double parse_spice_value(const std::string& token) {
  require(!token.empty(), "parse_spice_value: empty token");
  const std::string t = lower(token);
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw InvalidParameter("parse_spice_value: unparseable value '" + token + "'");
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix[0]) {
    case 'f': return value * 1e-15;
    case 'p': return value * 1e-12;
    case 'n': return value * 1e-9;
    case 'u': return value * 1e-6;
    case 'm': return value * 1e-3;
    case 'k': return value * 1e3;
    case 'g': return value * 1e9;
    case 't': return value * 1e12;
    default:
      throw InvalidParameter("parse_spice_value: unknown suffix in '" + token + "'");
  }
}

namespace {

Waveform parse_source(const std::vector<std::string>& tok, std::size_t i, int line) {
  if (i >= tok.size()) fail(line, "missing source value");
  const std::string& kind = tok[i];
  if (kind == "dc") {
    if (i + 1 >= tok.size()) fail(line, "DC needs a value");
    return Waveform::dc(value_at(tok, i + 1, line, "DC value"));
  }
  if (kind == "pulse") {
    if (i + 7 >= tok.size())
      fail(line, "PULSE needs 7 values, got " + std::to_string(tok.size() - i - 1));
    double v[7];
    for (int k = 0; k < 7; ++k)
      v[k] = value_at(tok, i + 1 + static_cast<std::size_t>(k), line, "PULSE value");
    return Waveform::pulse(v[0], v[1], v[2], v[3], v[4], v[5], v[6]);
  }
  if (kind == "sin") {
    if (i + 3 >= tok.size())
      fail(line, "SIN needs at least 3 values, got " + std::to_string(tok.size() - i - 1));
    const double off = value_at(tok, i + 1, line, "SIN offset");
    const double amp = value_at(tok, i + 2, line, "SIN amplitude");
    const double freq = value_at(tok, i + 3, line, "SIN frequency");
    const double td = i + 4 < tok.size() ? value_at(tok, i + 4, line, "SIN delay") : 0.0;
    const double ph = i + 5 < tok.size() ? value_at(tok, i + 5, line, "SIN phase") : 0.0;
    return Waveform::sine(off, amp, freq, td, ph);
  }
  if (kind == "pwl") {
    const std::size_t nvals = tok.size() - (i + 1);
    if (nvals < 2 || nvals % 2 != 0)
      fail(line,
           "PWL needs an even number of values (>= 2), got " + std::to_string(nvals));
    std::vector<std::pair<double, double>> pts;
    for (std::size_t k = i + 1; k + 1 < tok.size(); k += 2)
      pts.emplace_back(value_at(tok, k, line, "PWL time"),
                       value_at(tok, k + 1, line, "PWL value"));
    return Waveform::pwl(std::move(pts));
  }
  // Bare value: treat as DC.
  return Waveform::dc(value_at(tok, i, line, "source value"));
}

}  // namespace

Circuit parse_netlist(const std::string& text) {
  Circuit c;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::vector<std::string> tok = tokenize(raw);
    if (tok.empty() || tok[0][0] == '*') continue;
    if (tok[0] == ".end") break;
    if (tok[0][0] == '.') continue;  // Other directives are ignored.
    if (tok.size() < 4)
      fail(line_no, "element needs name, two nodes, and a value (got " +
                        std::to_string(tok.size()) + " tokens, first '" + tok[0] + "')");

    const std::string& name = tok[0];
    const NodeId a = c.node(tok[1]);
    const NodeId b = c.node(tok[2]);

    // Optional trailing IC= clause for C and L cards.
    double ic = 0.0;
    bool has_ic = false;
    for (std::size_t i = 3; i + 1 < tok.size(); ++i) {
      if (tok[i] == "ic") {
        ic = value_at(tok, i + 1, line_no, "IC value");
        has_ic = true;
      }
    }

    switch (name[0]) {
      case 'r':
        c.add_resistor(name, a, b, value_at(tok, 3, line_no, "resistance"));
        break;
      case 'c':
        if (has_ic)
          c.add_capacitor_ic(name, a, b, value_at(tok, 3, line_no, "capacitance"), ic);
        else
          c.add_capacitor(name, a, b, value_at(tok, 3, line_no, "capacitance"));
        break;
      case 'l':
        if (has_ic)
          c.add_inductor_ic(name, a, b, value_at(tok, 3, line_no, "inductance"), ic);
        else
          c.add_inductor(name, a, b, value_at(tok, 3, line_no, "inductance"));
        break;
      case 'v':
        c.add_vsource(name, a, b, parse_source(tok, 3, line_no));
        break;
      case 'i':
        c.add_isource(name, a, b, parse_source(tok, 3, line_no));
        break;
      case 's': {
        // S<name> n+ n- ron roff CLOCK(fsw nphases duty [phase])
        // Time-controlled switch driven by a multi-phase clock: closed while
        // its phase slot is active. Announces edges so the transient driver
        // lands steps on them (and the keyed LU cache sees recurring steps).
        const double ron = value_at(tok, 3, line_no, "on-resistance");
        const double roff = value_at(tok, 4, line_no, "off-resistance");
        if (tok.size() < 6 || tok[5] != "clock")
          fail(line_no, "switch needs a CLOCK(fsw nphases duty [phase]) drive");
        const double fsw = value_at(tok, 6, line_no, "CLOCK frequency");
        const double nph_raw = value_at(tok, 7, line_no, "CLOCK phase count");
        const int nph = static_cast<int>(nph_raw);
        if (nph < 1 || static_cast<double>(nph) != nph_raw)
          fail(line_no, "CLOCK phase count must be a positive integer");
        const double duty = value_at(tok, 8, line_no, "CLOCK duty");
        const double k_raw =
            tok.size() > 9 ? value_at(tok, 9, line_no, "CLOCK phase index") : 0.0;
        const int k = static_cast<int>(k_raw);
        if (k < 0 || k >= nph || static_cast<double>(k) != k_raw)
          fail(line_no, "CLOCK phase index must be an integer in [0, nphases)");
        try {
          const PhaseClock clk(fsw, nph, duty);
          c.add_switch(name, a, b, ron, roff, clk.control(k), clk.edge_fn(k));
        } catch (const std::exception& e) {
          fail(line_no, std::string("bad CLOCK drive: ") + e.what());
        }
        break;
      }
      default:
        fail(line_no, "unsupported element '" + name + "'");
    }
  }
  return c;
}

}  // namespace ivory::spice
