// Minimal SPICE-netlist text parser.
//
// Supports the element cards Ivory's tests and examples use:
//
//   R<name> n+ n- value
//   C<name> n+ n- value [IC=v0]
//   L<name> n+ n- value [IC=i0]
//   V<name> n+ n- DC value | PULSE(v1 v2 td tr tf pw per) |
//                 SIN(off amp freq [td [phase]]) | PWL(t1 v1 t2 v2 ...)
//   I<name> n+ n- (same source forms)
//   S<name> n+ n- ron roff CLOCK(fsw nphases duty [phase])
//
// '*' comment lines, blank lines, and a trailing '.end' are accepted. Values
// take SPICE suffixes (f p n u m k meg g t). Parsing is case-insensitive.
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace ivory::spice {

/// Parses `text` into a Circuit; throws StructuralError with a line number on
/// malformed input.
Circuit parse_netlist(const std::string& text);

/// Parses a single SPICE value literal like "4.7k" or "100meg".
double parse_spice_value(const std::string& token);

}  // namespace ivory::spice
