// Source waveforms for the circuit simulator.
//
// Supports the SPICE source shapes Ivory needs (DC, PULSE, SIN, PWL) plus an
// escape hatch for arbitrary time functions (used to inject workload power
// traces as load currents).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/interp.hpp"

namespace ivory::spice {

class Waveform {
 public:
  /// Constant value.
  static Waveform dc(double value);

  /// SPICE PULSE(v1 v2 td tr tf pw period). Periodic after td.
  static Waveform pulse(double v1, double v2, double delay_s, double rise_s, double fall_s,
                        double width_s, double period_s);

  /// offset + amplitude * sin(2*pi*freq*(t - delay) + phase), 0 phase ramp
  /// before delay (value = offset).
  static Waveform sine(double offset, double amplitude, double freq_hz, double delay_s = 0.0,
                       double phase_rad = 0.0);

  /// Piecewise-linear through the given (t, v) points; clamps outside.
  static Waveform pwl(std::vector<std::pair<double, double>> points);

  /// Arbitrary function of time (not parseable from netlists).
  static Waveform custom(std::function<double(double)> fn);

  Waveform() : Waveform(dc(0.0)) {}

  double operator()(double t) const { return eval_(t); }

  /// Small-signal magnitude used by AC analysis (0 for sources that are
  /// DC-only in AC runs).
  double ac_magnitude() const { return ac_mag_; }
  Waveform& set_ac_magnitude(double mag) {
    ac_mag_ = mag;
    return *this;
  }

 private:
  explicit Waveform(std::function<double(double)> fn) : eval_(std::move(fn)) {}

  std::function<double(double)> eval_;
  double ac_mag_ = 0.0;
};

}  // namespace ivory::spice
