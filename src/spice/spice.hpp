// Umbrella header for the ivory_spice circuit-simulation substrate.
//
// The simulator exists for two reasons: it is the in-repo stand-in for the
// Cadence/HSPICE baseline the paper validates against (Figs. 4, 7, 8, 9), and
// it lets the test suite verify Ivory's analytical models against actual
// switch-level circuit behaviour rather than against themselves.
#pragma once

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/parser.hpp"
#include "spice/phase_clock.hpp"
#include "spice/waveform.hpp"
